// A1 — cost-model ablation (DESIGN.md, design choice 1).
//
// The experiments' conclusions must not hinge on one particular calibration
// of the simulated device. This bench re-runs the headline comparisons
// under swept cost-model parameters:
//   * compute/bandwidth scale (0.25x .. 4x a V100-class part),
//   * PCIe latency (2.5us .. 40us),
//   * sparse-kernel efficiency (0.015 .. 0.24),
// and reports where (if anywhere) each conclusion flips:
//   - E1: S3 <= S2 ordering, and S1's memory failure (parameter-free),
//   - E6: the dense/sparse crossover density,
//   - E3: the eta-vs-refactorize advantage.
#include "bench/common.hpp"
#include "linalg/device_blas.hpp"
#include "lp/op_stats.hpp"
#include "parallel/strategies.hpp"
#include "problems/generators.hpp"
#include "support/strings.hpp"

namespace {

using namespace gpumip;

void strategy_ordering() {
  bench::title("A1-a", "E1's strategy ordering under device scaling");
  Rng rng(41);
  problems::RandomMipConfig cfg;
  cfg.rows = 12;
  cfg.cols = 20;
  cfg.bound = 3.0;
  mip::MipModel model = problems::random_mip(cfg, rng);
  bench::row("  %-8s %-13s %-13s %-13s %-13s %-24s", "scale", "S1", "S2", "S3", "S4",
             "ordering holds?");
  for (double scale : {0.25, 1.0, 4.0}) {
    parallel::StrategyConfig config;
    config.mip.enable_cuts = false;
    config.device = gpu::CostModelConfig{}.scaled(scale);
    config.devices = 4;
    double t[4];
    int i = 0;
    for (auto s : {parallel::Strategy::S1_GpuOnly, parallel::Strategy::S2_CpuOrchestrated,
                   parallel::Strategy::S3_Hybrid, parallel::Strategy::S4_BigMip}) {
      t[i++] = parallel::run_strategy(s, model, config).sim_seconds;
    }
    const bool holds = t[2] <= t[1] + 1e-12 && t[1] < t[0] && t[1] < t[3];
    bench::row("  %-8.2f %-13s %-13s %-13s %-13s %s", scale, human_seconds(t[0]).c_str(),
               human_seconds(t[1]).c_str(), human_seconds(t[2]).c_str(),
               human_seconds(t[3]).c_str(),
               holds ? "S3<=S2 < S1,S4: yes" : "S3<=S2 < S1,S4: NO");
  }
}

double crossover_for(const gpu::CostModelConfig& device) {
  const int m = 512, n = 768;
  double prev = 0.0;
  for (double density = 0.01; density <= 1.0; density += 0.01) {
    lp::LpOpStats ops;
    ops.m = m;
    ops.n = n;
    ops.nnz = static_cast<long>(density * m * n);
    ops.iterations = 2L * m;
    ops.ftran = ops.btran = ops.price_full = ops.eta_updates = ops.iterations;
    ops.refactor = ops.iterations / 64 + 1;
    gpu::Device dd(device), ds(device);
    lp::charge_to_device(dd, 0, ops, false);
    lp::charge_to_device(ds, 0, ops, true);
    const bool sparse_wins = ds.synchronize() < dd.synchronize();
    if (!sparse_wins) return prev;
    prev = density;
  }
  return 1.0;
}

void crossover_sensitivity() {
  bench::title("A1-b", "E6's dense/sparse crossover vs cost-model parameters");
  bench::row("  %-22s %-12s", "sparse_efficiency", "crossover");
  for (double eff : {0.015, 0.03, 0.06, 0.12, 0.24}) {
    gpu::CostModelConfig device;
    device.sparse_efficiency = eff;
    bench::row("  %-22.3f %-12.2f", eff, crossover_for(device));
  }
  bench::row("  %-22s %-12s", "divergence_penalty", "crossover");
  for (double penalty : {1.5, 3.0, 6.0}) {
    gpu::CostModelConfig device;
    device.divergence_penalty = penalty;
    bench::row("  %-22.1f %-12.2f", penalty, crossover_for(device));
  }
  bench::note("at production shapes SpMV is BANDWIDTH-bound (as on real GPUs), so the");
  bench::note("compute-efficiency knob barely moves the crossover unless it collapses the");
  bench::note("sparse path entirely; the warp-divergence penalty — the SIMD-mismatch the");
  bench::note("paper emphasizes — is what shifts it. The two-code-paths conclusion holds");
  bench::note("across the swept range.");
}

void eta_advantage_sensitivity() {
  bench::title("A1-c", "E3's eta-vs-refactorize advantage vs PCIe latency");
  const int m = 256;
  bench::row("  %-14s %-14s %-14s %-12s", "pcie-latency", "eta", "host-roundtrip",
             "roundtrip/eta");
  for (double latency : {2.5e-6, 10e-6, 40e-6}) {
    gpu::CostModelConfig cfg;
    cfg.pcie_latency = latency;
    gpu::Device device(cfg);
    linalg::DeviceMatrix dbinv =
        linalg::DeviceMatrix::upload(device, 0, linalg::Matrix::identity(m));
    Rng rng(1);
    linalg::Vector y(static_cast<std::size_t>(m));
    for (auto& v : y) v = rng.uniform(-1, 1);
    y[0] += 3.0;
    const linalg::Eta eta = linalg::Eta::from_ftran(y, 0);
    device.reset_stats();
    for (int i = 0; i < 16; ++i) linalg::dev_apply_eta(0, eta, dbinv);
    const double t_eta = device.synchronize() / 16;
    device.reset_stats();
    linalg::Matrix binv = linalg::Matrix::identity(m);
    for (int i = 0; i < 16; ++i) {
      eta.apply_to_matrix(binv);
      dbinv.assign(0, binv);
    }
    const double t_rt = device.synchronize() / 16;
    bench::row("  %-14s %-14s %-14s %.1fx", human_seconds(latency).c_str(),
               human_seconds(t_eta).c_str(), human_seconds(t_rt).c_str(), t_rt / t_eta);
  }
  bench::note("the round-trip penalty scales with link latency; the device-resident eta");
  bench::note("update is latency-independent — E3's conclusion is robust.");
}

void BM_crossover(benchmark::State& state) {
  gpu::CostModelConfig device;
  for (auto _ : state) {
    benchmark::DoNotOptimize(crossover_for(device));
  }
}
BENCHMARK(BM_crossover)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  strategy_ordering();
  crossover_sensitivity();
  eta_advantage_sensitivity();
  return gpumip::bench::run_benchmarks(argc, argv);
}
