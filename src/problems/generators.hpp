// Synthetic instance generators — the stand-in for MIPLIB/production
// instances (see DESIGN.md, hardware substitution). Each family exercises a
// structure the paper's discussion depends on: knapsack (binary, dense
// rows), set cover (sparse 0/1), generalized assignment (equality +
// capacity mix), unit commitment (the paper's cited application: linked
// binary/continuous), random MIPs with controllable density, and pure LPs
// for the linear-algebra experiments.
#pragma once

#include "mip/model.hpp"
#include "support/rng.hpp"

namespace gpumip::problems {

/// 0/1 knapsack: max Σ v_j x_j st Σ w_j x_j <= capacity.
mip::MipModel knapsack(int items, Rng& rng, double capacity_ratio = 0.5);

/// Set cover: min Σ x_j st every element covered. Feasible by construction.
mip::MipModel set_cover(int elements, int sets, Rng& rng, double cover_prob = 0.2);

/// Generalized assignment: max profit, each job to exactly one agent,
/// agent capacities. Generous capacities keep it feasible.
mip::MipModel generalized_assignment(int agents, int jobs, Rng& rng);

/// Unit commitment (simplified): T periods, G generators; binary commit
/// u[g,t], continuous output p[g,t] <= Pmax u[g,t]; demand per period;
/// min fixed + variable cost. Feasible by construction.
mip::MipModel unit_commitment(int generators, int periods, Rng& rng);

struct RandomMipConfig {
  int rows = 20;
  int cols = 30;
  double density = 0.3;
  double integer_fraction = 0.7;
  double bound = 5.0;  ///< integer variables range in [0, bound]
};

/// Random feasible MIP: <= rows with nonnegative coefficients (x = 0 is
/// feasible), maximization objective.
mip::MipModel random_mip(const RandomMipConfig& config, Rng& rng);

/// Dense bounded LP (for linear-algebra experiments): min cᵀx, Ax <= b,
/// 0 <= x <= u with dense A.
lp::LpModel dense_lp(int rows, int cols, Rng& rng);

/// Sparse bounded LP with the given density.
lp::LpModel sparse_lp(int rows, int cols, double density, Rng& rng);

}  // namespace gpumip::problems
