// Checked-build invariant macros.
//
// GPUMIP_ASSERT / GPUMIP_INVARIANT guard internal consistency conditions on
// hot paths. In a GPUMIP_CHECKED build (cmake -DGPUMIP_CHECKED=ON, or the
// `checked` preset) a failed condition throws Error(kInternal) carrying the
// source location; in a normal build the condition is not evaluated at all,
// so validators can be arbitrarily expensive (O(tree), O(m^2) residuals)
// without taxing release runs.
//
//   GPUMIP_ASSERT(x.size() == y.size(), "ftran: size mismatch");
//   GPUMIP_INVARIANT(check_tree(pool), "tree corrupt after prune");
//
// The two names are synonyms; by convention ASSERT guards a local condition
// and INVARIANT guards a structural/whole-datastructure property.
#pragma once

#include <string>

#include "support/error.hpp"

namespace gpumip {

/// True when this translation unit was compiled with invariant checking.
#ifdef GPUMIP_CHECKED
inline constexpr bool kCheckedBuild = true;
#else
inline constexpr bool kCheckedBuild = false;
#endif

namespace detail {
[[noreturn]] void assert_fail(const char* condition, const std::string& message,
                              const char* file, int line);
}  // namespace detail

}  // namespace gpumip

#ifdef GPUMIP_CHECKED
#define GPUMIP_ASSERT(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) ::gpumip::detail::assert_fail(#cond, msg, __FILE__, __LINE__); \
  } while (false)
#else
// Not evaluated, but still parsed: the condition stays syntactically and
// semantically checked in every build, so checked-only code cannot rot.
#define GPUMIP_ASSERT(cond, msg)                        \
  do {                                                  \
    if (false) { static_cast<void>(cond); static_cast<void>(msg); } \
  } while (false)
#endif

#define GPUMIP_INVARIANT(cond, msg) GPUMIP_ASSERT(cond, msg)

// Runs a (typically throwing) validator statement only in checked builds:
//   GPUMIP_VALIDATE(check::check_tree(*pool_));
// The statement is compiled in every build (so it cannot rot) but the
// branch is constant-false outside GPUMIP_CHECKED and is dead-stripped.
#ifdef GPUMIP_CHECKED
#define GPUMIP_VALIDATE(stmt) \
  do {                        \
    stmt;                     \
  } while (false)
#else
#define GPUMIP_VALIDATE(stmt) \
  do {                        \
    if (false) { stmt; }      \
  } while (false)
#endif
