// gpumip-lint — repo-native static analysis for the gpumip codebase.
//
// Enforces contracts that neither the compiler nor clang-tidy can express
// (DESIGN.md, "Static analysis"): where raw device-side data may appear
// (R1), that every host<->device byte movement goes through the Device
// transfer API so the C3-C5 transfer ledger stays truthful (R2), that every
// throw site carries a gpumip::ErrorCode (R3), that observability metric
// and trace-event name literals follow the gpumip.* grammar and are
// documented in docs/METRICS.md resp. docs/TRACING.md (R4), and that every
// public header is self-contained
// (R5). On top of the token stream sits a declaration indexer and an
// over-approximate call graph (index.hpp, callgraph.hpp) that power the
// hot-path rules R6-R9 (hotpath.hpp): no heap allocation, no by-value
// payload copies, no blocking calls, and mandatory instrumentation on the
// paths reachable from the roots declared in the checked-in manifest
// (tools/gpumip-lint/hotpaths.txt). A third layer builds per-function
// control-flow graphs (cfg.hpp) and runs forward dataflow over them
// (dataflow.hpp) for the path-sensitive lifetime rules R10-R12
// (lifetime.hpp): use-after-move, arena use-after-reset, and unbalanced
// trace spans. A fourth layer reuses the same CFGs for the protocol rules
// R13-R14 (protocol.hpp): wire-format symmetry between each
// ByteWriter serializer and its ByteReader deserializer compared per CFG
// path, send-tag handler coverage, and mandatory exhausted() checks — and
// runs the replay-determinism rules R15-R16 (determinism.hpp): no
// wall-clock, unseeded randomness, or unordered-container iteration in
// replay-relevant code, and explicit seed plumbing for every RNG engine.
// Implemented as a lexer plus lightweight
// semantic matching — deliberately no libclang dependency, so the tool
// builds everywhere the library builds and runs in milliseconds over src/.
//
// The engine is a library so the test suite (tests/test_lint.cpp) can feed
// it fixture sources in memory; tools/gpumip-lint/main.cpp is the CLI that
// scripts/check.sh gate 7 drives.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace gpumip::lint {

/// One diagnostic. `rule` is "R1".."R16", "SUP" (suppression-file problems:
/// syntax errors, missing justification, stale entries), or "HOT"
/// (hot-path manifest problems: syntax errors, entries matching no indexed
/// function). SUP and HOT findings are not themselves suppressible.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// A source file to analyze. `path` is the repo-relative path (used for
/// the R1 confinement allowlist and suppression matching); `content` is
/// the full text.
struct SourceFile {
  std::string path;
  std::string content;
};

/// One entry of the checked-in suppression file. Grammar (one per line):
///
///   <rule> <path-suffix> <line-substring> -- <justification>
///
/// e.g.
///   R2 parallel/simmpi.cpp std::memcpy -- host-only message serialization
///
/// A finding is suppressed when its rule matches, its file path ends with
/// <path-suffix>, and the offending source line contains <line-substring>.
/// The justification after "--" is mandatory; entries that never match any
/// finding are reported as stale (rule SUP) so suppressions cannot outlive
/// the code they excuse. '#' starts a comment line.
struct Suppression {
  std::string rule;
  std::string path_suffix;
  std::string needle;
  std::string justification;
  int line = 0;     ///< line in the suppression file (for stale reports)
  bool used = false;
};

struct Options {
  /// Full text of docs/METRICS.md. When `have_metrics_doc` is set, R4
  /// additionally requires every metric name literal to appear backticked
  /// in this text.
  std::string metrics_doc;
  bool have_metrics_doc = false;

  /// Full text of docs/TRACING.md. When `have_tracing_doc` is set, R4
  /// additionally requires every trace event-name literal (GPUMIP_TRACE_*
  /// sites) to appear backticked in this text. Trace names share the
  /// metric-name grammar but live in their own catalog.
  std::string tracing_doc;
  bool have_tracing_doc = false;

  /// Path stems (matched against "<stem>.") whose files form the device
  /// context: raw DeviceBuffer::as<T>() access is legal there (R1), and
  /// their copy primitives are still subject to R2's device-span test.
  std::vector<std::string> device_context = {
      "linalg/batched",
      "linalg/device_blas",
      "sparse/device_sparse",
      "gpu/device",
  };

  /// The one file allowed to move raw bytes (memcpy & friends): the
  /// Device transfer engine, which is what the H2D/D2H ledger instruments.
  std::string transfer_engine = "gpu/device.cpp";

  /// Full text of the hot-path manifest (tools/gpumip-lint/hotpaths.txt).
  /// When `have_hotpaths` is set, the call-graph rules R6-R9 run rooted at
  /// its entries; `hotpaths_path` labels manifest findings (rule HOT).
  std::string hotpaths;
  bool have_hotpaths = false;
  std::string hotpaths_path = "(hotpaths)";

  /// The path-sensitive lifetime rules R10-R12 (lifetime.hpp): per-function
  /// CFGs + forward dataflow over them. On by default; a test can switch
  /// them off to isolate the token rules.
  bool lifetime_rules = true;

  /// The protocol rules R13-R14 (protocol.hpp): wire-format symmetry per
  /// CFG path, tag-protocol coverage, and mandatory exhausted() checks.
  bool protocol_rules = true;

  /// The replay-determinism rules R15-R16 (determinism.hpp).
  bool determinism_rules = true;

  /// Path prefixes (also matched after any '/') inside which R15-R16
  /// apply. Defaults to all of src/: the repo's replay invariant covers
  /// the whole solve, so exceptions are waivers, not scope carve-outs.
  std::vector<std::string> determinism_scope = {"src/"};

  /// Worker threads for the per-file scan phase (lex + token index):
  /// 0 = hardware_concurrency capped at 8. Findings and their order are
  /// identical at any job count (per-file slots, merged in input order).
  std::size_t jobs = 0;
};

/// Wall-time and size accounting for one run_lint call, filled when the
/// caller passes a RunStats. The scan (lex + token index) happens once and
/// every rule family reads from it; `index_ms` likewise covers the one
/// declaration-indexer + call-graph build shared by R6-R9 and R10-R12.
struct RunStats {
  double scan_ms = 0.0;         ///< lex + token-index build, all files (wall)
  double scan_serial_ms = 0.0;  ///< sum of per-file scan times (serial equivalent)
  std::size_t scan_jobs = 1;    ///< threads the scan phase actually used
  double rules_ms = 0.0;        ///< token rules R1-R4
  double index_ms = 0.0;        ///< declaration indexer + call graph (shared)
  double hotpath_ms = 0.0;      ///< R6-R9 traversal
  double lifetime_ms = 0.0;     ///< CFG build + dataflow R10-R12
  double protocol_ms = 0.0;     ///< wire-format + tag rules R13-R14
  double determinism_ms = 0.0;  ///< replay-determinism rules R15-R16
  std::size_t files = 0;
  std::size_t functions = 0;
};

/// Parses the suppression file text. Syntax problems (missing fields,
/// empty justification) are reported as SUP findings against `path`.
std::vector<Suppression> parse_suppressions(const std::string& text, const std::string& path,
                                            std::vector<Finding>& findings);

/// Runs rules R1-R4, the lifetime dataflow rules R10-R12, the protocol
/// rules R13-R14, the determinism rules R15-R16 (each family has an
/// Options toggle) — and, when `options.have_hotpaths` is
/// set, the call-graph hot-path rules R6-R9 — over `files`, consuming
/// `suppressions` (marking used entries) and appending stale-suppression
/// findings. Returns all unsuppressed findings, ordered by file then line.
/// When `stats` is non-null it receives per-phase wall times; when
/// `waived_out` is non-null it receives the findings a suppression entry
/// silenced (for --format=json reporting).
std::vector<Finding> run_lint(const std::vector<SourceFile>& files, const Options& options,
                              std::vector<Suppression>& suppressions,
                              RunStats* stats = nullptr,
                              std::vector<Finding>* waived_out = nullptr);

/// R5: compiles one translation unit `#include "<header>"` per header with
/// `compiler -std=c++20 -fsyntax-only -I include_dir`, using `scratch_dir`
/// for the generated TUs and captured compiler output. `headers` are paths
/// relative to `include_dir`. Probes are independent, so they run on a
/// small thread pool: `jobs` threads, or hardware_concurrency (capped at
/// 8) when 0. Returns one finding per header that fails, in header order.
std::vector<Finding> check_headers_standalone(const std::vector<std::string>& headers,
                                              const std::string& include_dir,
                                              const std::string& compiler,
                                              const std::string& scratch_dir,
                                              std::size_t jobs = 0);

/// Built-in seeded-violation fixtures: one per rule R1-R4 and R6-R16
/// proving the rule fires, one clean fixture per rule proving it stays
/// quiet, the suppression/annotation round trips, call-graph transitivity
/// and stop-pruning, CFG edge cases for the dataflow rules (early return,
/// loop back edges, switch fallthrough, lambda carving), and manifest
/// staleness (HOT). Prints a report to
/// `out` with per-rule wall time; returns true when every expectation
/// holds. (R5 is exercised by tests/test_lint.cpp and the gate itself,
/// since it needs a compiler.)
bool run_self_test(std::ostream& out);

}  // namespace gpumip::lint
