// Minimal leveled logger. Thread-safe, writes to stderr.
//
// Usage:
//   GPUMIP_LOG(Info) << "ranks=" << n << " nodes=" << pool.size();
//
// The stream body is only evaluated when the level is enabled, so hot-path
// logging at Debug level is free in production runs.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace gpumip {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global minimum level; messages below it are discarded.
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

namespace detail {

/// Accumulates one log line and emits it on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  ~LogLine();
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace gpumip

#define GPUMIP_LOG(severity)                                              \
  if (::gpumip::LogLevel::severity < ::gpumip::log_level()) {             \
  } else                                                                  \
    ::gpumip::detail::LogLine(::gpumip::LogLevel::severity, __FILE__, __LINE__)
