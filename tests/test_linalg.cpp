#include <gtest/gtest.h>

#include <cmath>

#include "linalg/batched.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/device_blas.hpp"
#include "linalg/eta.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"

namespace gpumip::linalg {
namespace {

Matrix mat3() {
  Matrix a(3, 3);
  a(0, 0) = 4;  a(0, 1) = -2; a(0, 2) = 1;
  a(1, 0) = -2; a(1, 1) = 5;  a(1, 2) = -1;
  a(2, 0) = 1;  a(2, 1) = -1; a(2, 2) = 3;
  return a;
}

TEST(Matrix, IdentityAndIndexing) {
  Matrix id = Matrix::identity(4);
  EXPECT_EQ(id(2, 2), 1.0);
  EXPECT_EQ(id(2, 1), 0.0);
  id(1, 3) = 7.5;
  EXPECT_EQ(id.col(3)[1], 7.5);
}

TEST(Matrix, TransposeRoundTrip) {
  Rng rng(3);
  Matrix a = Matrix::random(5, 3, rng);
  EXPECT_EQ(max_abs_diff(a.transposed().transposed(), a), 0.0);
}

TEST(Blas1, DotNormAxpy) {
  Vector x = {1, 2, 3};
  Vector y = {4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(x, y), 32.0);
  EXPECT_DOUBLE_EQ(nrm2(x), std::sqrt(14.0));
  EXPECT_DOUBLE_EQ(asum(y), 15.0);
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[2], 12.0);
  EXPECT_EQ(iamax(y), 2);
  scal(0.5, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
}

TEST(Blas2, GemvMatchesManual) {
  Matrix a = mat3();
  Vector x = {1, 2, 3};
  Vector y = {1, 1, 1};
  gemv(1.0, a, x, 1.0, y);  // y = A x + y
  EXPECT_DOUBLE_EQ(y[0], 4 - 4 + 3 + 1);
  EXPECT_DOUBLE_EQ(y[1], -2 + 10 - 3 + 1);
  EXPECT_DOUBLE_EQ(y[2], 1 - 2 + 9 + 1);
}

TEST(Blas2, GemvTransposeConsistent) {
  Rng rng(5);
  Matrix a = Matrix::random(4, 6, rng);
  Vector x(4, 0.0), y(6, 0.0);
  for (auto& v : x) v = rng.uniform();
  gemv_t(1.0, a, x, 0.0, y);
  Vector y2(6, 0.0);
  gemv(1.0, a.transposed(), x, 0.0, y2);
  EXPECT_LT(max_abs_diff(y, y2), 1e-14);
}

TEST(Blas2, GerIsRankOneUpdate) {
  Matrix a(2, 2, 0.0);
  Vector x = {1, 2}, y = {3, 4};
  ger(1.0, x, y, a);
  EXPECT_DOUBLE_EQ(a(0, 0), 3);
  EXPECT_DOUBLE_EQ(a(1, 1), 8);
}

TEST(Blas3, GemmMatchesGemvColumns) {
  Rng rng(9);
  Matrix a = Matrix::random(4, 3, rng);
  Matrix b = Matrix::random(3, 5, rng);
  Matrix c(4, 5);
  gemm(1.0, a, b, 0.0, c);
  for (int j = 0; j < 5; ++j) {
    Vector y(4, 0.0);
    gemv(1.0, a, b.col(j), 0.0, y);
    for (int i = 0; i < 4; ++i) EXPECT_NEAR(c(i, j), y[i], 1e-13);
  }
}

TEST(LU, ReconstructsPAasLU) {
  Rng rng(17);
  for (int n : {1, 2, 5, 20, 60}) {
    Matrix a = Matrix::random(n, n, rng);
    for (int i = 0; i < n; ++i) a(i, i) += 2.0;  // keep well-conditioned
    DenseLU lu(a);
    // Rebuild PA from factors and compare.
    Matrix pa = a;
    for (int k = 0; k < n; ++k) {
      const int p = lu.pivots()[static_cast<std::size_t>(k)];
      if (p != k) {
        for (int c = 0; c < n; ++c) std::swap(pa(k, c), pa(p, c));
      }
    }
    const Matrix& f = lu.packed();
    Matrix rebuilt(n, n);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        double sum = 0.0;
        const int kmax = std::min(i, j);
        for (int k = 0; k <= kmax; ++k) {
          const double lik = (k == i) ? 1.0 : f(i, k);
          sum += lik * f(k, j);
        }
        rebuilt(i, j) = sum;
      }
    }
    EXPECT_LT(max_abs_diff(rebuilt, pa), 1e-10) << "n=" << n;
  }
}

TEST(LU, SolveAndTransposeSolve) {
  Rng rng(21);
  Matrix a = Matrix::random(12, 12, rng);
  for (int i = 0; i < 12; ++i) a(i, i) += 4.0;
  DenseLU lu(a);
  Vector xtrue(12);
  for (auto& v : xtrue) v = rng.uniform(-5, 5);
  Vector b(12, 0.0), bt(12, 0.0);
  gemv(1.0, a, xtrue, 0.0, b);
  gemv_t(1.0, a, xtrue, 0.0, bt);
  EXPECT_LT(max_abs_diff(lu.solve(b), xtrue), 1e-9);
  EXPECT_LT(max_abs_diff(lu.solve_transpose(bt), xtrue), 1e-9);
}

TEST(LU, SingularThrows) {
  Matrix a(3, 3, 0.0);
  a(0, 0) = 1;
  a(1, 1) = 1;  // column/row 2 all zero
  EXPECT_THROW(DenseLU{a}, NumericalError);
}

TEST(LU, InverseTimesAIsIdentity) {
  Rng rng(23);
  Matrix a = Matrix::random(8, 8, rng);
  for (int i = 0; i < 8; ++i) a(i, i) += 3.0;
  DenseLU lu(a);
  Matrix inv = lu.inverse();
  Matrix prod(8, 8);
  gemm(1.0, inv, a, 0.0, prod);
  EXPECT_LT(max_abs_diff(prod, Matrix::identity(8)), 1e-9);
}

TEST(Cholesky, SolvesSpdSystem) {
  Rng rng(29);
  for (int n : {1, 4, 16, 40}) {
    Matrix a = Matrix::random_spd(n, rng);
    DenseCholesky chol(a);
    Vector xtrue(static_cast<std::size_t>(n));
    for (auto& v : xtrue) v = rng.uniform(-1, 1);
    Vector b(static_cast<std::size_t>(n), 0.0);
    gemv(1.0, a, xtrue, 0.0, b);
    EXPECT_LT(max_abs_diff(chol.solve(b), xtrue), 1e-8) << "n=" << n;
  }
}

TEST(Cholesky, ReconstructsLLt) {
  Rng rng(31);
  Matrix a = Matrix::random_spd(10, rng);
  DenseCholesky chol(a);
  const Matrix& l = chol.l();
  Matrix rebuilt(10, 10);
  gemm(1.0, l, l.transposed(), 0.0, rebuilt);
  EXPECT_LT(max_abs_diff(rebuilt, a), 1e-9);
}

TEST(Cholesky, IndefiniteThrows) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 2; a(1, 1) = 1;  // eigenvalues 3, -1
  EXPECT_THROW(DenseCholesky{a}, NumericalError);
}

TEST(Cholesky, RidgeRescuesSemidefinite) {
  Matrix a(2, 2, 0.0);
  a(0, 0) = 1.0;  // rank 1
  EXPECT_THROW(DenseCholesky{a}, NumericalError);
  EXPECT_NO_THROW(DenseCholesky(a, 1e-6));
}

TEST(QR, LeastSquaresMatchesNormalEquations) {
  Rng rng(37);
  Matrix a = Matrix::random(10, 4, rng);
  Vector b(10);
  for (auto& v : b) v = rng.uniform(-2, 2);
  HouseholderQR qr(a);
  Vector x = qr.solve(b);
  // Residual must be orthogonal to the column space: Aᵀ(Ax - b) = 0.
  Vector r(10, 0.0);
  gemv(1.0, a, x, 0.0, r);
  axpy(-1.0, b, r);
  Vector atr(4, 0.0);
  gemv_t(1.0, a, r, 0.0, atr);
  for (double v : atr) EXPECT_NEAR(v, 0.0, 1e-10);
}

TEST(QR, ExactSolveOnSquare) {
  Rng rng(41);
  Matrix a = Matrix::random(6, 6, rng);
  for (int i = 0; i < 6; ++i) a(i, i) += 3.0;
  Vector xtrue(6);
  for (auto& v : xtrue) v = rng.uniform(-1, 1);
  Vector b(6, 0.0);
  gemv(1.0, a, xtrue, 0.0, b);
  HouseholderQR qr(a);
  EXPECT_LT(max_abs_diff(qr.solve(b), xtrue), 1e-9);
}

TEST(QR, RankDeficientThrows) {
  Matrix a(4, 2, 0.0);
  a(0, 0) = 1.0;  // second column zero
  EXPECT_THROW(HouseholderQR{a}, NumericalError);
}

// --- Eta / PFI updates: the paper's core rank-1 reuse primitive ---

TEST(Eta, MatchesExplicitBasisInverse) {
  Rng rng(43);
  const int m = 8;
  Matrix b0 = Matrix::random(m, m, rng);
  for (int i = 0; i < m; ++i) b0(i, i) += 3.0;
  DenseLU lu0(b0);
  Matrix binv = lu0.inverse();

  // Replace column r of B with a new column a_q, via eta update.
  Vector aq(m);
  for (auto& v : aq) v = rng.uniform(-1, 1);
  aq[2] += 4.0;
  const int r = 2;
  Vector y = lu0.solve(aq);  // y = B⁻¹ a_q
  Eta eta = Eta::from_ftran(y, r);
  eta.apply_to_matrix(binv);  // binv := E binv

  Matrix bnew = b0;
  bnew.set_col(r, aq);
  DenseLU lu1(bnew);
  EXPECT_LT(max_abs_diff(binv, lu1.inverse()), 1e-9);
}

TEST(Eta, FtranBtranAgreeWithFactorization) {
  Rng rng(47);
  const int m = 6;
  Matrix b = Matrix::random(m, m, rng);
  for (int i = 0; i < m; ++i) b(i, i) += 3.0;
  DenseLU lu(b);
  EtaFile etas;
  Matrix bcur = b;
  // Three successive column replacements tracked with etas.
  for (int step = 0; step < 3; ++step) {
    Vector aq(m);
    for (auto& v : aq) v = rng.uniform(-1, 1);
    const int r = step * 2 % m;
    aq[static_cast<std::size_t>(r)] += 5.0;
    // FTRAN through current representation.
    Vector y = lu.solve(aq);
    etas.ftran(y);
    Eta eta = Eta::from_ftran(y, r);
    etas.push(eta);
    bcur.set_col(r, aq);
  }
  DenseLU lucur(bcur);
  // FTRAN: B⁻¹ v.
  Vector v(m);
  for (auto& x : v) x = rng.uniform(-1, 1);
  Vector via_eta = lu.solve(v);
  etas.ftran(via_eta);
  EXPECT_LT(max_abs_diff(via_eta, lucur.solve(v)), 1e-8);
  // BTRAN: B⁻ᵀ w.
  Vector w(m);
  for (auto& x : w) x = rng.uniform(-1, 1);
  Vector wb = w;
  etas.btran(wb);
  Vector via_eta_t = lu.solve_transpose(wb);
  EXPECT_LT(max_abs_diff(via_eta_t, lucur.solve_transpose(w)), 1e-8);
}

TEST(Eta, TinyPivotRejected) {
  Vector y = {0.5, 1e-14, 2.0};
  EXPECT_THROW(Eta::from_ftran(y, 1), NumericalError);
  EXPECT_NO_THROW(Eta::from_ftran(y, 2));
}

// --- device-resident wrappers ---

TEST(DeviceBlas, GemvMatchesHost) {
  gpu::Device dev;
  Rng rng(53);
  Matrix a = Matrix::random(20, 12, rng);
  Vector x(12), y(20, 0.0);
  for (auto& v : x) v = rng.uniform(-1, 1);
  auto da = DeviceMatrix::upload(dev, 0, a);
  auto dx = DeviceVector::upload(dev, 0, x);
  DeviceVector dy(dev, 20);
  dy.assign(0, y);
  dev_gemv(0, 1.0, da, dx, 0.0, dy);
  Vector host_y(20, 0.0);
  gemv(1.0, a, x, 0.0, host_y);
  EXPECT_LT(max_abs_diff(dy.download(0), host_y), 1e-13);
  EXPECT_GE(dev.stats().kernels, 1u);
  EXPECT_GT(dev.synchronize(), 0.0);
}

TEST(DeviceBlas, GetrfGetrsSolve) {
  gpu::Device dev;
  Rng rng(59);
  Matrix a = Matrix::random(16, 16, rng);
  for (int i = 0; i < 16; ++i) a(i, i) += 4.0;
  Vector xtrue(16);
  for (auto& v : xtrue) v = rng.uniform(-1, 1);
  Vector b(16, 0.0);
  gemv(1.0, a, xtrue, 0.0, b);
  auto da = DeviceMatrix::upload(dev, 0, a);
  auto pivots = dev_getrf(0, da);
  auto db = DeviceVector::upload(dev, 0, b);
  dev_getrs(0, da, pivots, db);
  EXPECT_LT(max_abs_diff(db.download(0), xtrue), 1e-9);
}

TEST(DeviceBlas, EtaUpdateOnDeviceMatchesHost) {
  gpu::Device dev;
  Rng rng(61);
  const int m = 10;
  Matrix binv = Matrix::random(m, m, rng);
  Vector y(m);
  for (auto& v : y) v = rng.uniform(-1, 1);
  y[4] += 3.0;
  Eta eta = Eta::from_ftran(y, 4);
  Matrix host_result = binv;
  eta.apply_to_matrix(host_result);
  auto dbinv = DeviceMatrix::upload(dev, 0, binv);
  dev_apply_eta(0, eta, dbinv);
  EXPECT_LT(max_abs_diff(dbinv.download(0), host_result), 1e-13);
}

TEST(DeviceBlas, MixedDeviceOperandsRejected) {
  gpu::Device dev_a, dev_b;
  Matrix a = Matrix::identity(4);
  Vector x(4, 1.0);
  auto da = DeviceMatrix::upload(dev_a, 0, a);
  auto dx = DeviceVector::upload(dev_b, 0, x);
  DeviceVector dy(dev_a, 4);
  EXPECT_THROW(dev_gemv(0, 1.0, da, dx, 0.0, dy), Error);
}

TEST(Batched, FactorAndSolveManySmall) {
  gpu::Device dev;
  Rng rng(67);
  const int n = 6, count = 20;
  std::vector<Matrix> mats;
  std::vector<Vector> xs, bs;
  for (int i = 0; i < count; ++i) {
    Matrix a = Matrix::random(n, n, rng);
    for (int d = 0; d < n; ++d) a(d, d) += 3.0;
    Vector x(n);
    for (auto& v : x) v = rng.uniform(-1, 1);
    Vector b(n, 0.0);
    gemv(1.0, a, x, 0.0, b);
    mats.push_back(std::move(a));
    xs.push_back(std::move(x));
    bs.push_back(std::move(b));
  }
  auto batch = DeviceBatch::upload(dev, 0, mats);
  auto pivots = batched_getrf(0, batch);
  Vector rhs;
  for (const auto& b : bs) rhs.insert(rhs.end(), b.begin(), b.end());
  auto drhs = DeviceVector::upload(dev, 0, rhs);
  batched_getrs(0, batch, pivots, drhs);
  Vector solved = drhs.download(0);
  for (int i = 0; i < count; ++i) {
    for (int j = 0; j < n; ++j) {
      EXPECT_NEAR(solved[static_cast<std::size_t>(i) * n + j], xs[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)], 1e-9);
    }
  }
  // All batch work ran in exactly two kernels (factor + solve) and two transfers.
  EXPECT_EQ(dev.stats().kernels, 2u);
  EXPECT_EQ(dev.stats().transfers_h2d, 2u);
}

TEST(Batched, SingularMemberIsolated) {
  gpu::Device dev;
  Rng rng(71);
  const int n = 4;
  std::vector<Matrix> mats;
  Matrix good = Matrix::random(n, n, rng);
  for (int d = 0; d < n; ++d) good(d, d) += 3.0;
  mats.push_back(good);
  mats.push_back(Matrix(n, n, 0.0));  // singular
  mats.push_back(good);
  auto batch = DeviceBatch::upload(dev, 0, mats);
  std::vector<int> singular;
  auto pivots = batched_getrf(0, batch, &singular);
  ASSERT_EQ(singular.size(), 1u);
  EXPECT_EQ(singular[0], 1);
  EXPECT_FALSE(pivots[0].empty());
  EXPECT_TRUE(pivots[1].empty());
  EXPECT_FALSE(pivots[2].empty());
}

TEST(Batched, OccupancyGrowsWithBatch) {
  EXPECT_LT(occupancy_for_elements(100), occupancy_for_elements(100000));
  EXPECT_DOUBLE_EQ(occupancy_for_elements(1 << 20), 1.0);
}

}  // namespace
}  // namespace gpumip::linalg
