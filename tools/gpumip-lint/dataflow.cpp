#include "dataflow.hpp"

#include <deque>

namespace gpumip::lint {

bool join_into(AbstractState& dst, const AbstractState& src) {
  bool changed = false;
  for (const auto& [key, bits] : src) {
    std::uint32_t& slot = dst[key];
    if ((slot | bits) != slot) {
      slot |= bits;
      changed = true;
    }
  }
  return changed;
}

std::vector<AbstractState> fixpoint(const Cfg& cfg, const AbstractState& entry_state,
                                    const Transfer& transfer) {
  std::vector<AbstractState> in(cfg.nodes.size());
  if (cfg.nodes.empty()) return in;
  in[static_cast<std::size_t>(cfg.entry)] = entry_state;

  std::deque<int> work = {cfg.entry};
  std::vector<char> queued(cfg.nodes.size(), 0);
  queued[static_cast<std::size_t>(cfg.entry)] = 1;
  // Monotone join over a finite lattice terminates on its own; the cap is
  // a pure backstop against builder bugs, far above any real iteration
  // count (each node can requeue at most keys*32 times).
  std::size_t steps = 0;
  const std::size_t cap = (cfg.nodes.size() + 1) * 1024;
  while (!work.empty() && steps++ < cap) {
    const int n = work.front();
    work.pop_front();
    queued[static_cast<std::size_t>(n)] = 0;
    AbstractState out = in[static_cast<std::size_t>(n)];
    for (const CfgStmt& s : cfg.nodes[static_cast<std::size_t>(n)].stmts) transfer(s, out);
    for (int m : cfg.nodes[static_cast<std::size_t>(n)].succ) {
      if (join_into(in[static_cast<std::size_t>(m)], out) &&
          queued[static_cast<std::size_t>(m)] == 0) {
        work.push_back(m);
        queued[static_cast<std::size_t>(m)] = 1;
      }
    }
  }
  return in;
}

}  // namespace gpumip::lint
