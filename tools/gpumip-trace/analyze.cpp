#include "analyze.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <map>
#include <ostream>
#include <sstream>
#include <utility>

#include "json.hpp"

namespace gpumip::tracetool {

namespace {

// The JSON DOM lives in json.{hpp,cpp}, shared with gpumip-report.

// ---- interval arithmetic ---------------------------------------------------

using Interval = std::pair<double, double>;  // [begin, end) in microseconds

/// Total length covered by the union of `intervals` (merges overlaps).
double union_length(std::vector<Interval> intervals) {
  std::sort(intervals.begin(), intervals.end());
  double total = 0.0;
  double cur_begin = 0.0;
  double cur_end = -1.0;
  bool open = false;
  for (const Interval& iv : intervals) {
    if (iv.second <= iv.first) continue;
    if (!open || iv.first > cur_end) {
      if (open) total += cur_end - cur_begin;
      cur_begin = iv.first;
      cur_end = iv.second;
      open = true;
    } else {
      cur_end = std::max(cur_end, iv.second);
    }
  }
  if (open) total += cur_end - cur_begin;
  return total;
}

/// Length of union(a) ∩ union(b): sweep both merged edge lists.
double intersection_length(const std::vector<Interval>& a, const std::vector<Interval>& b) {
  // Merge each side first so intra-side overlaps do not double-count.
  struct Edge {
    double at;
    int side;
    int delta;
  };
  std::vector<Edge> edges;
  auto add_side = [&edges](std::vector<Interval> ivs, int side) {
    std::sort(ivs.begin(), ivs.end());
    double cur_begin = 0.0;
    double cur_end = -1.0;
    bool open = false;
    auto flush = [&] {
      if (open) {
        edges.push_back({cur_begin, side, +1});
        edges.push_back({cur_end, side, -1});
      }
    };
    for (const Interval& iv : ivs) {
      if (iv.second <= iv.first) continue;
      if (!open || iv.first > cur_end) {
        flush();
        cur_begin = iv.first;
        cur_end = iv.second;
        open = true;
      } else {
        cur_end = std::max(cur_end, iv.second);
      }
    }
    flush();
  };
  add_side(a, 0);
  add_side(b, 1);
  std::sort(edges.begin(), edges.end(), [](const Edge& x, const Edge& y) {
    if (x.at != y.at) return x.at < y.at;
    return x.delta < y.delta;  // close before open at the same instant
  });
  int depth[2] = {0, 0};
  double overlap = 0.0;
  double last = 0.0;
  for (const Edge& e : edges) {
    if (depth[0] > 0 && depth[1] > 0) overlap += e.at - last;
    depth[e.side] += e.delta;
    last = e.at;
  }
  return overlap;
}

/// B/E pairing per (pid, tid): returns [begin, end) intervals for events
/// whose name satisfies `pick` (nested pairs pair LIFO, like the recorder).
std::vector<Interval> span_intervals(const std::vector<AnalyzerEvent>& events,
                                     int pid, long long tid, bool wait_spans) {
  auto is_wait = [](const AnalyzerEvent& ev) { return ev.name == "gpumip.simmpi.recv.wait"; };
  std::vector<Interval> out;
  std::vector<const AnalyzerEvent*> stack;
  for (const AnalyzerEvent& ev : events) {
    if (ev.pid != pid || ev.tid != tid) continue;
    if (ev.ph == 'B') {
      stack.push_back(&ev);
    } else if (ev.ph == 'E' && !stack.empty()) {
      const AnalyzerEvent* begin = stack.back();
      stack.pop_back();
      if (is_wait(*begin) == wait_spans) out.emplace_back(begin->ts, ev.ts);
    } else if (ev.ph == 'X' && !wait_spans) {
      out.emplace_back(ev.ts, ev.ts + ev.dur);
    }
  }
  return out;
}

constexpr double kMicro = 1e-6;  // exported ts/dur are microseconds

}  // namespace

bool parse_trace(const std::string& json, Trace& out, std::string& error) {
  JsonValue root;
  JsonReader reader(json);
  if (!reader.parse(root, error)) return false;

  const JsonValue* events = nullptr;
  if (root.type == JsonValue::Type::kArray) {
    events = &root;  // bare-array form of the trace-event format
  } else if (root.type == JsonValue::Type::kObject) {
    events = root.find("traceEvents");
    if (const JsonValue* other = root.find("otherData"); other != nullptr) {
      out.dropped = static_cast<std::uint64_t>(number_or(other->find("dropped"), 0.0));
    }
  }
  if (events == nullptr || events->type != JsonValue::Type::kArray) {
    error = "document has no traceEvents array";
    return false;
  }

  out.events.clear();
  for (const JsonValue& e : events->array) {
    if (e.type != JsonValue::Type::kObject) {
      error = "traceEvents entry is not an object";
      return false;
    }
    AnalyzerEvent ev;
    ev.name = string_or(e.find("name"), "");
    const std::string ph = string_or(e.find("ph"), "?");
    ev.ph = ph.empty() ? '?' : ph[0];
    ev.pid = static_cast<int>(number_or(e.find("pid"), 0.0));
    ev.tid = static_cast<long long>(number_or(e.find("tid"), 0.0));
    ev.ts = number_or(e.find("ts"), 0.0);
    ev.dur = number_or(e.find("dur"), 0.0);
    ev.flow_id = string_or(e.find("id"), "");
    if (const JsonValue* args = e.find("args"); args != nullptr) {
      ev.rank = static_cast<int>(number_or(args->find("rank"), -1.0));
      ev.lane = string_or(args->find("lane"), "");
      ev.arg = number_or(args->find("arg"), 0.0);
      // Metadata events label the processes; remember which pid carries the
      // simulated timeline (the exporter's default is pid 1).
      if (ev.ph == 'M' && ev.name == "process_name" &&
          string_or(args->find("name"), "") == "simulated time") {
        out.sim_pid = ev.pid;
      }
    }
    out.events.push_back(std::move(ev));
  }
  return true;
}

Report analyze(const Trace& trace) {
  Report report;
  report.dropped = trace.dropped;

  // Stable per-(pid,tid) time order; the exporter sorts, but analysis
  // should not depend on it (hand-written fixtures, other producers).
  std::vector<AnalyzerEvent> events = trace.events;
  std::stable_sort(events.begin(), events.end(), [](const AnalyzerEvent& a, const AnalyzerEvent& b) {
    if (a.pid != b.pid) return a.pid < b.pid;
    if (a.tid != b.tid) return a.tid < b.tid;
    return a.ts < b.ts;
  });

  for (const AnalyzerEvent& ev : events) {
    if (ev.ph != 'M') ++report.events;
  }

  // ---- per-rank breakdown (simulated pid, cpu lane) ------------------------
  std::map<int, std::vector<const AnalyzerEvent*>> by_rank;
  for (const AnalyzerEvent& ev : events) {
    if (ev.pid != trace.sim_pid || ev.ph == 'M') continue;
    report.makespan_seconds = std::max(report.makespan_seconds, (ev.ts + ev.dur) * kMicro);
    if (ev.rank >= 0 && ev.lane == "cpu") by_rank[ev.rank].push_back(&ev);
  }
  for (const auto& [rank, evs] : by_rank) {
    RankBreakdown rb;
    rb.rank = rank;
    rb.events = static_cast<long>(evs.size());
    double first = evs.front()->ts;
    double last = evs.front()->ts;
    long long tid = evs.front()->tid;
    for (const AnalyzerEvent* ev : evs) {
      first = std::min(first, ev->ts);
      last = std::max(last, ev->ts);
    }
    std::vector<Interval> busy = span_intervals(events, trace.sim_pid, tid, /*wait_spans=*/false);
    std::vector<Interval> blocked = span_intervals(events, trace.sim_pid, tid, /*wait_spans=*/true);
    rb.span_seconds = (last - first) * kMicro;
    rb.blocked_seconds = union_length(blocked) * kMicro;
    // Busy excludes blocked (a wait nested under a span is not compute);
    // idle is whatever the union of both leaves uncovered.
    const double busy_len = union_length(busy);
    rb.busy_seconds = (busy_len - intersection_length(busy, blocked)) * kMicro;
    std::vector<Interval> either = busy;
    either.insert(either.end(), blocked.begin(), blocked.end());
    rb.idle_seconds = rb.span_seconds - union_length(either) * kMicro;
    report.ranks.push_back(rb);
  }

  // ---- flow matching and the critical path ---------------------------------
  struct FlowPair {
    const AnalyzerEvent* start = nullptr;
    const AnalyzerEvent* finish = nullptr;
  };
  std::map<std::string, FlowPair> flows;
  for (const AnalyzerEvent& ev : events) {
    if (ev.ph == 's') flows[ev.flow_id].start = &ev;
    if (ev.ph == 'f') flows[ev.flow_id].finish = &ev;
  }
  report.flows_total = static_cast<long>(flows.size());
  for (const auto& [id, pair] : flows) {
    if (pair.start != nullptr && pair.finish != nullptr) ++report.flows_matched;
  }

  // Backward chaining: start from the rank that finishes last; repeatedly
  // jump from the latest matched delivery at or before the cursor to its
  // send site on the source rank. Each jump is one dependency hop of the
  // makespan's critical path.
  const AnalyzerEvent* tail = nullptr;
  for (const auto& [rank, evs] : by_rank) {
    for (const AnalyzerEvent* ev : evs) {
      if (tail == nullptr || ev->ts > tail->ts) tail = ev;
    }
  }
  if (tail != nullptr) {
    report.critical_end_seconds = tail->ts * kMicro;
    int rank = tail->rank;
    double cursor = tail->ts;
    double start_ts = cursor;
    for (int guard = 0; guard < 100000; ++guard) {
      const AnalyzerEvent* best = nullptr;
      const AnalyzerEvent* best_src = nullptr;
      for (const auto& [id, pair] : flows) {
        if (pair.start == nullptr || pair.finish == nullptr) continue;
        if (pair.finish->rank != rank || pair.finish->ts > cursor) continue;
        if (pair.start->ts >= pair.finish->ts) continue;  // refuse time travel
        if (best == nullptr || pair.finish->ts > best->ts) {
          best = pair.finish;
          best_src = pair.start;
        }
      }
      if (best == nullptr) {
        auto it = by_rank.find(rank);
        if (it != by_rank.end()) {
          for (const AnalyzerEvent* ev : it->second) start_ts = std::min(start_ts, ev->ts);
        }
        break;
      }
      CriticalHop hop;
      hop.from_rank = best_src->rank;
      hop.to_rank = rank;
      hop.send_ts_seconds = best_src->ts * kMicro;
      hop.recv_ts_seconds = best->ts * kMicro;
      report.critical_path.push_back(hop);
      rank = best_src->rank;
      cursor = best_src->ts;
      start_ts = cursor;
    }
    report.critical_start_seconds = start_ts * kMicro;
    std::reverse(report.critical_path.begin(), report.critical_path.end());
  }

  // ---- device lanes: transfer/compute overlap per rank ---------------------
  std::map<int, std::array<std::vector<Interval>, 3>> lanes;  // 0=h2d 1=d2h 2=kernel
  for (const AnalyzerEvent& ev : events) {
    if (ev.ph != 'X' || ev.pid != trace.sim_pid) continue;
    int lane = -1;
    if (ev.lane == "h2d") lane = 0;
    if (ev.lane == "d2h") lane = 1;
    if (ev.lane == "kernel") lane = 2;
    if (lane < 0) continue;
    lanes[ev.rank][static_cast<std::size_t>(lane)].emplace_back(ev.ts, ev.ts + ev.dur);
  }
  for (const auto& [rank, lns] : lanes) {
    DeviceBreakdown db;
    db.rank = rank;
    db.h2d_seconds = union_length(lns[0]) * kMicro;
    db.d2h_seconds = union_length(lns[1]) * kMicro;
    db.kernel_seconds = union_length(lns[2]) * kMicro;
    std::vector<Interval> transfers = lns[0];
    transfers.insert(transfers.end(), lns[1].begin(), lns[1].end());
    db.overlap_seconds = intersection_length(transfers, lns[2]) * kMicro;
    report.devices.push_back(db);
  }

  // ---- cut round-trip latency ----------------------------------------------
  std::map<std::pair<int, long long>, std::vector<double>> cut_stack;
  for (const AnalyzerEvent& ev : events) {
    if (ev.name != "gpumip.mip.cuts.round") continue;
    auto& stack = cut_stack[{ev.pid, ev.tid}];
    if (ev.ph == 'B') {
      stack.push_back(ev.ts);
    } else if (ev.ph == 'E' && !stack.empty()) {
      const double latency = (ev.ts - stack.back()) * kMicro;
      stack.pop_back();
      ++report.cut_rounds;
      report.cut_latency_total_seconds += latency;
      report.cut_latency_max_seconds = std::max(report.cut_latency_max_seconds, latency);
    }
  }

  return report;
}

std::string format_report(const Report& report) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(6);
  out << "trace: " << report.events << " events, " << report.flows_matched << "/"
      << report.flows_total << " flows matched, " << report.dropped << " dropped, makespan "
      << report.makespan_seconds << "s\n";

  out << "critical path: " << report.critical_path.size() << " cross-rank hop(s), "
      << report.critical_start_seconds << "s -> " << report.critical_end_seconds << "s\n";
  for (const CriticalHop& hop : report.critical_path) {
    out << "  rank " << hop.from_rank << " @" << hop.send_ts_seconds << "s -> rank "
        << hop.to_rank << " @" << hop.recv_ts_seconds << "s\n";
  }

  out << "ranks:\n";
  for (const RankBreakdown& rb : report.ranks) {
    out << "  rank " << rb.rank << ": span " << rb.span_seconds << "s, busy " << rb.busy_seconds
        << "s, blocked-on-recv " << rb.blocked_seconds << "s, idle " << rb.idle_seconds << "s ("
        << rb.events << " events)\n";
  }

  if (!report.devices.empty()) {
    out << "device lanes:\n";
    for (const DeviceBreakdown& db : report.devices) {
      out << "  rank " << db.rank << ": h2d " << db.h2d_seconds << "s, d2h " << db.d2h_seconds
          << "s, kernel " << db.kernel_seconds << "s, transfer/compute overlap "
          << db.overlap_seconds << "s\n";
    }
  }

  if (report.cut_rounds > 0) {
    out << "cut rounds: " << report.cut_rounds << ", mean latency "
        << report.cut_latency_total_seconds / static_cast<double>(report.cut_rounds)
        << "s, max " << report.cut_latency_max_seconds << "s\n";
  }
  return out.str();
}

std::string verify_nontrivial(const Report& report) {
  if (report.events < 10) return "fewer than 10 events";
  if (report.ranks.size() < 2) return "fewer than 2 ranks in the timeline";
  if (report.flows_matched < 1) return "no matched cross-rank flow";
  if (report.flows_total > 0 && report.flows_matched < report.flows_total) {
    return "unmatched flow halves (" + std::to_string(report.flows_matched) + "/" +
           std::to_string(report.flows_total) + ")";
  }
  if (report.critical_path.empty()) return "critical path has no cross-rank hop";
  if (report.makespan_seconds <= 0.0) return "zero makespan";
  for (const RankBreakdown& rb : report.ranks) {
    if (rb.idle_seconds < -1e-9 || rb.busy_seconds < -1e-9 || rb.blocked_seconds < -1e-9) {
      return "negative time in rank " + std::to_string(rb.rank) + " breakdown";
    }
  }
  return "";
}

// ---- self-check fixtures ---------------------------------------------------

namespace {

/// Hand-written two-rank trace with exactly known answers: rank 0 works
/// [0,10]µs then sends; rank 1 blocks [2,11]µs, receives at 11, works to
/// 20, sends back; rank 0 receives at 25. One kernel [0,8]µs overlapping an
/// h2d transfer [4,12]µs by 4µs. One cut round [1,5]µs.
const char* kFixture = R"json({
  "traceEvents": [
    {"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"simulated time"}},
    {"name":"gpumip.mip.solve","ph":"B","ts":0.0,"pid":1,"tid":4,"args":{"rank":0,"lane":"cpu","arg":0}},
    {"name":"gpumip.mip.cuts.round","ph":"B","ts":1.0,"pid":1,"tid":4,"args":{"rank":0,"lane":"cpu","arg":0}},
    {"name":"gpumip.mip.cuts.round","ph":"E","ts":5.0,"pid":1,"tid":4,"args":{"rank":0,"lane":"cpu","arg":0}},
    {"name":"gpumip.mip.solve","ph":"E","ts":10.0,"pid":1,"tid":4,"args":{"rank":0,"lane":"cpu","arg":0}},
    {"name":"gpumip.simmpi.send","ph":"i","s":"t","ts":10.0,"pid":1,"tid":4,"args":{"rank":0,"lane":"cpu","arg":16}},
    {"name":"gpumip.simmpi.msg","ph":"s","cat":"gpumip.flow","id":"0x1","ts":10.0,"pid":1,"tid":4,"args":{"rank":0,"lane":"cpu","arg":0}},
    {"name":"gpumip.simmpi.msg","ph":"f","bp":"e","cat":"gpumip.flow","id":"0x2","ts":25.0,"pid":1,"tid":4,"args":{"rank":0,"lane":"cpu","arg":0}},
    {"name":"gpumip.simmpi.recv","ph":"i","s":"t","ts":25.0,"pid":1,"tid":4,"args":{"rank":0,"lane":"cpu","arg":16}},
    {"name":"gpumip.simmpi.recv.wait","ph":"B","ts":2.0,"pid":1,"tid":8,"args":{"rank":1,"lane":"cpu","arg":0}},
    {"name":"gpumip.simmpi.msg","ph":"f","bp":"e","cat":"gpumip.flow","id":"0x1","ts":11.0,"pid":1,"tid":8,"args":{"rank":1,"lane":"cpu","arg":0}},
    {"name":"gpumip.simmpi.recv.wait","ph":"E","ts":11.0,"pid":1,"tid":8,"args":{"rank":1,"lane":"cpu","arg":0}},
    {"name":"gpumip.mip.solve","ph":"B","ts":11.0,"pid":1,"tid":8,"args":{"rank":1,"lane":"cpu","arg":0}},
    {"name":"gpumip.mip.solve","ph":"E","ts":20.0,"pid":1,"tid":8,"args":{"rank":1,"lane":"cpu","arg":0}},
    {"name":"gpumip.simmpi.msg","ph":"s","cat":"gpumip.flow","id":"0x2","ts":20.0,"pid":1,"tid":8,"args":{"rank":1,"lane":"cpu","arg":0}},
    {"name":"gpumip.gpu.kernel","ph":"X","ts":0.0,"dur":8.0,"pid":1,"tid":7,"args":{"rank":0,"lane":"kernel","arg":0}},
    {"name":"gpumip.gpu.h2d","ph":"X","ts":4.0,"dur":8.0,"pid":1,"tid":5,"args":{"rank":0,"lane":"h2d","arg":256}}
  ],
  "otherData": {"schema": "gpumip.trace.v1", "dropped": 3}
})json";

bool near(double a, double b) { return std::fabs(a - b) < 1e-12; }

}  // namespace

bool run_self_check(std::ostream& out) {
  bool ok = true;
  auto expect = [&](bool cond, const std::string& what) {
    out << "  [" << (cond ? "PASS" : "FAIL") << "] " << what << "\n";
    if (!cond) ok = false;
  };

  Trace trace;
  std::string error;
  expect(parse_trace(kFixture, trace, error), "fixture parses (" + error + ")");
  expect(trace.dropped == 3, "otherData.dropped decoded");
  const Report report = analyze(trace);
  expect(report.events == 16, "16 non-metadata events");
  expect(report.flows_total == 2 && report.flows_matched == 2, "both flows matched");
  expect(near(report.makespan_seconds, 25.0 * 1e-6), "makespan 25us");
  expect(report.critical_path.size() == 2, "critical path has 2 hops");
  if (report.critical_path.size() == 2) {
    expect(report.critical_path[0].from_rank == 0 && report.critical_path[0].to_rank == 1 &&
               report.critical_path[1].from_rank == 1 && report.critical_path[1].to_rank == 0,
           "hops chain 0 -> 1 -> 0");
    expect(near(report.critical_start_seconds, 0.0) && near(report.critical_end_seconds, 25e-6),
           "path spans the whole run");
  }
  expect(report.ranks.size() == 2, "two ranks in breakdown");
  for (const RankBreakdown& rb : report.ranks) {
    if (rb.rank == 0) {
      expect(near(rb.busy_seconds, 10e-6) && near(rb.blocked_seconds, 0.0) &&
                 near(rb.idle_seconds, 15e-6),
             "rank 0: busy 10us, idle 15us");
    }
    if (rb.rank == 1) {
      expect(near(rb.busy_seconds, 9e-6) && near(rb.blocked_seconds, 9e-6) &&
                 near(rb.idle_seconds, 0.0),
             "rank 1: busy 9us, blocked 9us");
    }
  }
  expect(report.devices.size() == 1, "one device rank");
  if (report.devices.size() == 1) {
    const DeviceBreakdown& db = report.devices.front();
    expect(near(db.kernel_seconds, 8e-6) && near(db.h2d_seconds, 8e-6) &&
               near(db.overlap_seconds, 4e-6),
           "kernel 8us, h2d 8us, overlap 4us");
  }
  expect(report.cut_rounds == 1 && near(report.cut_latency_max_seconds, 4e-6),
         "one cut round of 4us");
  expect(verify_nontrivial(report).empty(), "fixture verdict: non-trivial");

  // Degenerate inputs must be rejected, not misreported.
  Trace bad;
  expect(!parse_trace("{\"traceEvents\": 7}", bad, error), "non-array traceEvents rejected");
  expect(!parse_trace("{\"traceEvents\": [", bad, error), "truncated document rejected");
  Trace empty;
  expect(parse_trace("{\"traceEvents\": []}", empty, error) &&
             !verify_nontrivial(analyze(empty)).empty(),
         "empty trace parses but is trivial");
  return ok;
}

}  // namespace gpumip::tracetool
