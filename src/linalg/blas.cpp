#include "linalg/blas.hpp"

#include <cmath>

namespace gpumip::linalg {

double dot(std::span<const double> x, std::span<const double> y) {
  check_arg(x.size() == y.size(), "dot: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) sum += x[i] * y[i];
  return sum;
}

double nrm2(std::span<const double> x) { return std::sqrt(dot(x, x)); }

double asum(std::span<const double> x) {
  double sum = 0.0;
  for (double v : x) sum += std::fabs(v);
  return sum;
}

int iamax(std::span<const double> x) {
  int best = -1;
  double best_abs = -1.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double a = std::fabs(x[i]);
    if (a > best_abs) {
      best_abs = a;
      best = static_cast<int>(i);
    }
  }
  return best;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  check_arg(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scal(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

void gemv(double alpha, const Matrix& a, std::span<const double> x, double beta,
          std::span<double> y) {
  check_arg(static_cast<int>(x.size()) == a.cols(), "gemv: x size mismatch");
  check_arg(static_cast<int>(y.size()) == a.rows(), "gemv: y size mismatch");
  for (double& v : y) v *= beta;
  for (int c = 0; c < a.cols(); ++c) {
    const double xc = alpha * x[c];
    if (xc == 0.0) continue;
    auto column = a.col(c);
    for (int r = 0; r < a.rows(); ++r) y[r] += xc * column[r];
  }
}

void gemv_t(double alpha, const Matrix& a, std::span<const double> x, double beta,
            std::span<double> y) {
  check_arg(static_cast<int>(x.size()) == a.rows(), "gemv_t: x size mismatch");
  check_arg(static_cast<int>(y.size()) == a.cols(), "gemv_t: y size mismatch");
  for (int c = 0; c < a.cols(); ++c) {
    auto column = a.col(c);
    double sum = 0.0;
    for (int r = 0; r < a.rows(); ++r) sum += column[r] * x[r];
    y[c] = alpha * sum + beta * y[c];
  }
}

void ger(double alpha, std::span<const double> x, std::span<const double> y, Matrix& a) {
  check_arg(static_cast<int>(x.size()) == a.rows(), "ger: x size mismatch");
  check_arg(static_cast<int>(y.size()) == a.cols(), "ger: y size mismatch");
  for (int c = 0; c < a.cols(); ++c) {
    const double yc = alpha * y[c];
    if (yc == 0.0) continue;
    auto column = a.col(c);
    for (int r = 0; r < a.rows(); ++r) column[r] += x[r] * yc;
  }
}

void gemm(double alpha, const Matrix& a, const Matrix& b, double beta, Matrix& c) {
  check_arg(a.cols() == b.rows(), "gemm: inner dimension mismatch");
  check_arg(c.rows() == a.rows() && c.cols() == b.cols(), "gemm: output shape mismatch");
  for (int j = 0; j < c.cols(); ++j) {
    auto cj = c.col(j);
    for (double& v : cj) v *= beta;
    auto bj = b.col(j);
    for (int k = 0; k < a.cols(); ++k) {
      const double bkj = alpha * bj[k];
      if (bkj == 0.0) continue;
      auto ak = a.col(k);
      for (int i = 0; i < a.rows(); ++i) cj[i] += ak[i] * bkj;
    }
  }
}

void trsv_lower(const Matrix& l, std::span<double> b, bool unit_diagonal) {
  const int n = l.rows();
  check_arg(l.cols() == n && static_cast<int>(b.size()) == n, "trsv_lower: shape mismatch");
  for (int i = 0; i < n; ++i) {
    double sum = b[i];
    for (int j = 0; j < i; ++j) sum -= l(i, j) * b[j];
    if (unit_diagonal) {
      b[i] = sum;
    } else {
      const double d = l(i, i);
      if (d == 0.0) throw NumericalError("trsv_lower: zero diagonal");
      b[i] = sum / d;
    }
  }
}

void trsv_upper(const Matrix& u, std::span<double> b) {
  const int n = u.rows();
  check_arg(u.cols() == n && static_cast<int>(b.size()) == n, "trsv_upper: shape mismatch");
  for (int i = n - 1; i >= 0; --i) {
    double sum = b[i];
    for (int j = i + 1; j < n; ++j) sum -= u(i, j) * b[j];
    const double d = u(i, i);
    if (d == 0.0) throw NumericalError("trsv_upper: zero diagonal");
    b[i] = sum / d;
  }
}

void trsv_lower_t(const Matrix& l, std::span<double> b, bool unit_diagonal) {
  const int n = l.rows();
  check_arg(l.cols() == n && static_cast<int>(b.size()) == n, "trsv_lower_t: shape mismatch");
  for (int i = n - 1; i >= 0; --i) {
    double sum = b[i];
    for (int j = i + 1; j < n; ++j) sum -= l(j, i) * b[j];
    if (unit_diagonal) {
      b[i] = sum;
    } else {
      const double d = l(i, i);
      if (d == 0.0) throw NumericalError("trsv_lower_t: zero diagonal");
      b[i] = sum / d;
    }
  }
}

void trsv_upper_t(const Matrix& u, std::span<double> b) {
  const int n = u.rows();
  check_arg(u.cols() == n && static_cast<int>(b.size()) == n, "trsv_upper_t: shape mismatch");
  for (int i = 0; i < n; ++i) {
    double sum = b[i];
    for (int j = 0; j < i; ++j) sum -= u(j, i) * b[j];
    const double d = u(i, i);
    if (d == 0.0) throw NumericalError("trsv_upper_t: zero diagonal");
    b[i] = sum / d;
  }
}

}  // namespace gpumip::linalg
