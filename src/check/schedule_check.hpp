// Schedule-space validators (header-only, like the structural validators in
// invariants.hpp: no link dependency on the modules they inspect).
//
// PR 1's validators prove properties of one state; these prove properties
// ACROSS executions: a parallel solve must produce the same answer under
// every legal message-delivery order (order-independence, the property the
// paper's consistent-snapshot argument in §2.1 leans on), and every run's
// delivery trace must respect the simmpi concurrency model (Lamport clocks
// never regress, per-source FIFO never violated).
//
// Usage (see tests/test_schedule.cpp and scripts/check.sh):
//
//   check::check_schedule_determinism(
//       [&](std::uint64_t seed) { return outcome_of(solve_under(seed)); },
//       seeds);
//
// Outcomes are compared bit-for-bit: the supervised search is exhaustive,
// so the incumbent objective/bound/point must not depend on which schedule
// the fuzzer produced. Any divergence throws Error(kInternal) naming the
// two seeds.
#pragma once

#include <cmath>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "check/registry.hpp"
#include "parallel/schedule.hpp"
#include "support/error.hpp"

namespace gpumip::check {

/// The order-independent fingerprint of one parallel solve.
struct ScheduleOutcome {
  bool has_solution = false;
  double objective = 0.0;
  double bound = 0.0;
  std::vector<double> x;

  friend bool operator==(const ScheduleOutcome& a, const ScheduleOutcome& b) {
    // Bit-identical comparison on purpose: these are outputs of the same
    // deterministic numeric search, only the message schedule differed.
    return a.has_solution == b.has_solution && a.objective == b.objective &&
           a.bound == b.bound && a.x == b.x;
  }

  std::string to_string() const {
    std::ostringstream out;
    out.precision(17);
    out << (has_solution ? "solution" : "no-solution") << " objective=" << objective
        << " bound=" << bound << " |x|=" << x.size();
    return out.str();
  }
};

/// Runs `run(seed)` for every seed and throws Error(kInternal) on the first
/// outcome that differs from the first seed's outcome. `run` must return a
/// ScheduleOutcome (or something convertible to one).
template <typename RunFn>
void check_schedule_determinism(RunFn&& run, std::span<const std::uint64_t> seeds) {
  count_check(Subsystem::kSchedule);
  check_arg(!seeds.empty(), "check_schedule_determinism: need at least one seed");
  std::optional<ScheduleOutcome> reference;
  std::uint64_t reference_seed = 0;
  for (const std::uint64_t seed : seeds) {
    ScheduleOutcome outcome = run(seed);
    if (!reference.has_value()) {
      reference = std::move(outcome);
      reference_seed = seed;
      continue;
    }
    if (!(outcome == *reference)) {
      count_failure(Subsystem::kSchedule);
      throw Error(ErrorCode::kInternal,
                  "schedule determinism violated: seed " + std::to_string(reference_seed) +
                      " -> " + reference->to_string() + " but seed " + std::to_string(seed) +
                      " -> " + outcome.to_string());
    }
  }
}

/// Structural validation of one recorded delivery order:
///  * per-rank Lamport monotonicity — a receiver's simulated clock never
///    regresses across its deliveries (recv merges with max(), advance()
///    only adds nonnegative charges, so a regression means clock
///    accounting is broken);
///  * per-(source, rank) FIFO — sequence numbers are delivered strictly
///    increasing, i.e. the fuzzer's reordering stayed inside the
///    eligibility rule (MPI non-overtaking);
///  * well-formed records (ranks in range when `world_size` is given,
///    nonzero seq, finite clocks).
inline void check_delivery_trace(const parallel::DeliveryTrace& trace, int world_size = -1) {
  count_check(Subsystem::kSchedule);
  auto fail = [](const std::string& message) {
    count_failure(Subsystem::kSchedule);
    throw Error(ErrorCode::kInternal, "delivery trace: " + message);
  };
  std::map<int, double> last_clock;                             // rank -> clock
  std::map<std::pair<int, int>, std::uint64_t> last_seq;        // (source, rank) -> seq
  for (std::size_t i = 0; i < trace.deliveries.size(); ++i) {
    const parallel::DeliveryRecord& record = trace.deliveries[i];
    const std::string at = " (record " + std::to_string(i) + ")";
    if (record.rank < 0 || record.source < 0) fail("negative rank or source" + at);
    if (world_size >= 0 && (record.rank >= world_size || record.source >= world_size)) {
      fail("rank or source out of range" + at);
    }
    if (record.seq == 0) fail("zero sequence number" + at);
    if (!std::isfinite(record.clock) || record.clock < 0.0) {
      fail("non-finite or negative clock" + at);
    }
    auto [clock_it, clock_new] = last_clock.try_emplace(record.rank, record.clock);
    if (!clock_new) {
      if (record.clock < clock_it->second) {
        fail("Lamport clock regressed at rank " + std::to_string(record.rank) + at);
      }
      clock_it->second = record.clock;
    }
    auto [seq_it, seq_new] =
        last_seq.try_emplace({record.source, record.rank}, record.seq);
    if (!seq_new) {
      if (record.seq <= seq_it->second) {
        fail("per-source FIFO violated: source " + std::to_string(record.source) + " -> rank " +
             std::to_string(record.rank) + " delivered seq " + std::to_string(record.seq) +
             " after seq " + std::to_string(seq_it->second) + at);
      }
      seq_it->second = record.seq;
    }
  }
}

}  // namespace gpumip::check
