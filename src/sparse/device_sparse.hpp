// Device-resident CSR matrix and priced sparse kernels.
//
// Sparse kernels are charged at the cost model's sparse efficiency with a
// divergence estimate derived from row-length irregularity — this is what
// makes the dense-vs-sparse crossover (paper section 5.4, experiment E6)
// emerge from the simulation rather than being hard-coded.
#pragma once

#include "gpu/device.hpp"
#include "linalg/device_blas.hpp"
#include "sparse/formats.hpp"
#include "sparse/ops.hpp"

namespace gpumip::sparse {

/// CSR matrix living in (simulated) device memory.
class DeviceCsr {
 public:
  DeviceCsr() = default;

  /// Allocates and uploads in one transfer per array.
  static DeviceCsr upload(gpu::Device& device, gpu::StreamId stream, const Csr& host,
                          std::string label = "devcsr");

  Csr download(gpu::StreamId stream) const;

  int rows() const noexcept { return rows_; }
  int cols() const noexcept { return cols_; }
  int nnz() const noexcept { return nnz_; }
  bool valid() const noexcept { return values_.valid(); }
  gpu::Device* device() const noexcept { return values_.device(); }
  double divergence() const noexcept { return divergence_; }

  std::span<const int> row_start() const { return row_start_.as<int>(); }
  std::span<const int> col_index() const { return col_index_.as<int>(); }
  std::span<const double> values() const { return values_.as<double>(); }

 private:
  gpu::DeviceBuffer row_start_;
  gpu::DeviceBuffer col_index_;
  gpu::DeviceBuffer values_;
  int rows_ = 0;
  int cols_ = 0;
  int nnz_ = 0;
  double divergence_ = 0.0;
};

/// y = alpha A x + beta y on the device (sparse-priced kernel).
void dev_spmv(gpu::StreamId stream, double alpha, const DeviceCsr& a,
              const linalg::DeviceVector& x, double beta, linalg::DeviceVector& y);

/// y = alpha Aᵀ x + beta y on the device.
void dev_spmv_t(gpu::StreamId stream, double alpha, const DeviceCsr& a,
                const linalg::DeviceVector& x, double beta, linalg::DeviceVector& y);

}  // namespace gpumip::sparse
