// Shared helpers for the experiment benches. Every bench binary prints its
// experiment's series (the paper-shaped table) deterministically from the
// simulated clocks, then runs google-benchmark wall-time measurements of
// the underlying operations.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gpumip::bench {

inline void title(const std::string& id, const std::string& text) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), text.c_str());
  std::printf("================================================================\n");
}

inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

inline void note(const std::string& text) { std::printf("  %s\n", text.c_str()); }

/// Prints the table then hands over to google-benchmark. On exit, dumps the
/// process-wide metrics registry to $GPUMIP_METRICS_OUT if set (this is how
/// scripts/bench.sh harvests the observability counters; the simulated
/// tables above are deterministic, so the export is too) and the event
/// trace to $GPUMIP_TRACE_OUT if set (obs/trace.hpp).
inline int run_benchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const std::string exported = obs::export_if_requested();
  if (!exported.empty()) std::printf("metrics written to %s\n", exported.c_str());
  const std::string traced = obs::trace::export_if_requested();
  if (!traced.empty()) std::printf("trace written to %s\n", traced.c_str());
  return 0;
}

}  // namespace gpumip::bench
