#include "support/log.hpp"

#include <atomic>
#include <cstdio>

namespace gpumip {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};
std::mutex g_emit_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "D";
    case LogLevel::Info: return "I";
    case LogLevel::Warn: return "W";
    case LogLevel::Error: return "E";
    case LogLevel::Off: return "?";
  }
  return "?";
}
}  // namespace

LogLevel log_level() noexcept { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace detail {

LogLine::LogLine(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << level_tag(level) << " " << base << ":" << line << "] ";
}

LogLine::~LogLine() {
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fputs((stream_.str() + "\n").c_str(), stderr);
}

}  // namespace detail
}  // namespace gpumip
