// Sequential branch-and-bound / cut-and-branch MIP engine.
//
// The engine keeps the tree in host memory (the paper's recommended
// strategy 2 layout), solves each node's LP relaxation with the revised
// simplex (dual-simplex warm starts from the parent basis), strengthens the
// root with GMI/cover cuts, and runs primal heuristics for incumbents. All
// linear algebra performed per node is recorded as a NodeTrace so the
// strategy layer (parallel/strategies.hpp) can replay it onto simulated
// GPU/CPU timelines.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "lp/interior_point.hpp"
#include "lp/path_chooser.hpp"
#include "lp/pdhg.hpp"
#include "lp/simplex.hpp"
#include "mip/branching.hpp"
#include "mip/cuts.hpp"
#include "mip/heuristics.hpp"
#include "mip/model.hpp"
#include "mip/snapshot.hpp"
#include "mip/tree.hpp"

namespace gpumip::gpu {
class Device;
class DeviceArena;
}  // namespace gpumip::gpu

namespace gpumip::mip {

enum class MipStatus {
  Optimal,
  Infeasible,
  Unbounded,
  NodeLimit,
};

const char* mip_status_name(MipStatus status) noexcept;

struct MipOptions {
  long max_nodes = 200000;
  double gap_tol = 1e-9;        ///< relative optimality gap to stop at
  double int_tol = 1e-6;
  NodeSelection node_selection = NodeSelection::BestFirst;
  double locality_slack = 0.1;  ///< GpuLocality policy slack
  BranchRule branching = BranchRule::MostFractional;
  bool enable_cuts = true;
  int cut_rounds = 3;           ///< root cut-and-branch rounds
  CutOptions cuts;
  bool enable_heuristics = true;
  lp::SimplexOptions lp;
  /// Force every node relaxation onto one LP method. Unset: lp::choose_method
  /// picks per node (warm basis -> dual simplex, etc.; see docs/METHODS.md).
  /// The GPUMIP_LP_METHOD env var overrides both.
  std::optional<lp::LpMethod> lp_method;
  lp::InteriorPointOptions ipm;
  lp::PdhgOptions pdhg;
  lp::MethodChoiceOptions method_choice;
  /// Emit a consistent snapshot every N evaluated nodes (0 = never).
  int snapshot_interval = 0;
  std::function<void(const ConsistentSnapshot&)> on_snapshot;
  /// Known upper bound (min form) from outside, e.g. a supervisor's global
  /// incumbent: nodes at or above it are pruned immediately.
  double initial_cutoff = 1e300;
  /// Optional per-node device-residency modeling (ROADMAP item 4): when
  /// set, every evaluated node charges its relaxation's device footprint
  /// to this device — through `relax_arena` when also set (reset + allot
  /// per node: zero device allocations once the arena slab is warm), or
  /// as a naive per-node alloc/free pair otherwise. The numerics are
  /// unchanged; only gpumip.gpu.* accounting differs. Both pointers must
  /// outlive the solver.
  gpu::Device* relax_device = nullptr;
  gpu::DeviceArena* relax_arena = nullptr;
};

/// Linear-algebra record of one node evaluation, for timeline replay.
struct NodeTrace {
  int node_id = -1;
  int parent = -1;
  bool hot = false;  ///< parent was the previously evaluated node (locality)
  lp::LpStatus lp_status = lp::LpStatus::NumericalTrouble;
  lp::LpOpStats ops;
};

struct MipStats {
  long nodes_evaluated = 0;
  long lp_iterations = 0;
  long cuts_added = 0;
  int cut_rounds_used = 0;
  long heuristic_incumbents = 0;
  long hot_nodes = 0;  ///< nodes warm-continuing from the previous node
  double root_bound = 0.0;  ///< LP bound after cuts (min form)
  lp::LpOpStats total_ops;
  TreeAnatomy anatomy;
};

struct MipResult {
  MipStatus status = MipStatus::Infeasible;
  double objective = 0.0;  ///< user-sense incumbent objective (if any)
  bool has_solution = false;
  linalg::Vector x;        ///< structural variable values
  double bound = 0.0;      ///< user-sense best dual bound
  MipStats stats;

  double gap() const;
};

class BnbSolver {
 public:
  BnbSolver(const MipModel& model, MipOptions options = {});
  ~BnbSolver();
  BnbSolver(const BnbSolver&) = delete;
  BnbSolver& operator=(const BnbSolver&) = delete;

  /// Full solve from the root.
  [[nodiscard]] MipResult solve();

  /// Continue a search from a consistent snapshot (checkpoint restart).
  [[nodiscard]] MipResult solve_from(const ConsistentSnapshot& snapshot);

  /// A consistent snapshot of the current frontier (valid during/after
  /// solve; between node evaluations the active set is exactly consistent).
  [[nodiscard]] ConsistentSnapshot capture_snapshot() const;

  /// Tree inspection (Figure 1 reproduction).
  const NodePool& pool() const;

  /// Per-node linear-algebra traces in evaluation order.
  const std::vector<NodeTrace>& trace() const noexcept { return trace_; }

  /// The (possibly cut-strengthened) model the search ran on.
  const MipModel& working_model() const noexcept { return model_; }

 private:
  struct Impl;
  MipResult run(const ConsistentSnapshot* snapshot);
  void root_cut_loop();

  MipModel model_;  // private copy; cuts append rows
  MipOptions options_;
  std::unique_ptr<lp::StandardForm> form_;
  std::unique_ptr<lp::SimplexSolver> lp_solver_;
  std::unique_ptr<lp::InteriorPointSolver> ipm_solver_;
  std::unique_ptr<lp::PdhgSolver> pdhg_solver_;
  std::unique_ptr<NodePool> pool_;
  std::vector<NodeTrace> trace_;
  MipStats stats_;
  // Incumbent in min form.
  double incumbent_obj_ = 1e300;
  linalg::Vector incumbent_x_;
  PseudocostTable pseudocosts_;
};

/// Solves a MIP by brute-force enumeration over integer assignments with an
/// LP for the continuous part. Exponential; only for cross-checking the
/// engine on tiny instances in tests.
[[nodiscard]] MipResult solve_by_enumeration(const MipModel& model, double int_tol = 1e-6);

}  // namespace gpumip::mip
