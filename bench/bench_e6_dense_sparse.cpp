// E6 — dense vs sparse code paths and the runtime crossover (paper
// section 5.4, claim C6).
//
// The same LP relaxation is priced through both code paths: dense kernels
// (bandwidth-bound, uniform warps) and sparse kernels (per-nonzero work at
// the sparse efficiency with divergence). Sweeping matrix density locates
// the crossover and checks that lp::choose_path picks the right side.
#include "bench/common.hpp"
#include "lp/path_chooser.hpp"
#include "lp/simplex.hpp"
#include "problems/generators.hpp"
#include "support/strings.hpp"

namespace {

using namespace gpumip;

struct PathTimes {
  double dense = 0.0;
  double sparse = 0.0;
  long iterations = 0;
};

/// Prices one LP-solve recipe through both code paths.
PathTimes price_ops(const lp::LpOpStats& ops) {
  PathTimes out;
  out.iterations = ops.iterations;
  {
    gpu::Device device;
    lp::charge_to_device(device, 0, ops, /*sparse_pricing=*/false);
    out.dense = device.synchronize();
  }
  {
    gpu::Device device;
    lp::charge_to_device(device, 0, ops, /*sparse_pricing=*/true);
    out.sparse = device.synchronize();
  }
  return out;
}

/// A representative simplex recipe for an m x n problem: ~2m iterations,
/// one FTRAN/BTRAN/pricing/eta per iteration, refactor every 64.
lp::LpOpStats synthetic_recipe(int m, int n, double density) {
  lp::LpOpStats ops;
  ops.m = m;
  ops.n = n;
  ops.nnz = static_cast<long>(density * m * n);
  ops.iterations = 2L * m;
  ops.ftran = ops.btran = ops.price_full = ops.eta_updates = ops.iterations;
  ops.refactor = ops.iterations / 64 + 1;
  return ops;
}

void print_experiment() {
  bench::title("E6", "dense vs sparse LP code path across matrix density");
  // Production-scale shapes (the regime the paper talks about): kernels
  // leave the launch-latency floor and the per-nonzero asymmetry shows.
  const int rows = 512, cols = 768;
  bench::row("  problem shape %d x %d, simplex recipe of %ld iterations", rows, cols,
             synthetic_recipe(rows, cols, 1.0).iterations);
  bench::row("  %-9s %-10s %-13s %-13s %-8s %-12s", "density", "nnz", "dense-path",
             "sparse-path", "winner", "chooser");
  double crossover = -1.0;
  double prev_density = 0.0;
  bool prev_sparse_won = true;
  Rng rng(301);
  for (double density : {0.02, 0.05, 0.10, 0.20, 0.30, 0.40, 0.60, 0.80, 1.00}) {
    const lp::LpOpStats ops = synthetic_recipe(rows, cols, density);
    const PathTimes t = price_ops(ops);
    const bool sparse_wins = t.sparse < t.dense;
    if (prev_sparse_won && !sparse_wins && crossover < 0) {
      crossover = 0.5 * (prev_density + density);
    }
    prev_sparse_won = sparse_wins;
    prev_density = density;
    // A structurally matching random matrix for the chooser.
    std::vector<sparse::Triplet> triplets;
    for (long e = 0; e < ops.nnz; ++e) {
      triplets.push_back({static_cast<int>(rng.index(static_cast<std::size_t>(rows))),
                          static_cast<int>(rng.index(static_cast<std::size_t>(cols))), 1.0});
    }
    const sparse::Csr matrix = sparse::csr_from_triplets(rows, cols, triplets);
    bench::row("  %-9.2f %-10ld %-13s %-13s %-8s %-12s", density, ops.nnz,
               human_seconds(t.dense).c_str(), human_seconds(t.sparse).c_str(),
               sparse_wins ? "sparse" : "dense",
               lp::code_path_name(lp::choose_path(matrix)));
  }
  if (crossover > 0) {
    bench::row("  measured crossover ~ %.2f (chooser threshold %.2f)", crossover,
               lp::PathChooserOptions{}.density_threshold);
  }
  bench::note("expected shape: sparse path wins at low density, dense at high; the runtime");
  bench::note("chooser's threshold sits near the measured crossover.");

  // Cross-check on a real (small) solve: at this scale both paths sit on
  // the kernel-launch latency floor, so they nearly tie — the paper's
  // latency argument for small problems (section 5.5).
  lp::LpModel small = problems::sparse_lp(100, 150, 0.05, rng);
  const lp::StandardForm form = lp::build_standard_form(small);
  lp::SimplexSolver solver(form);
  lp::LpResult r = solver.solve_default();
  if (r.status == lp::LpStatus::Optimal) {
    const PathTimes t = price_ops(r.ops);
    bench::row("  real 100x150 solve at density 0.05: dense %s vs sparse %s (latency floor)",
               human_seconds(t.dense).c_str(), human_seconds(t.sparse).c_str());
  }
}

void memory_comparison() {
  bench::title("E6-b", "device memory: dense image vs CSR at each density");
  const int rows = 512, cols = 1024;
  bench::row("  %-9s %-14s %-14s %-8s", "density", "dense-bytes", "csr-bytes", "ratio");
  Rng rng(302);
  for (double density : {0.02, 0.10, 0.30, 1.00}) {
    lp::LpModel model = problems::sparse_lp(rows, cols, density, rng);
    const sparse::Csr a = model.matrix();
    const std::uint64_t dense_bytes = static_cast<std::uint64_t>(rows) * cols * sizeof(double);
    const std::uint64_t csr_bytes = a.values.size() * sizeof(double) +
                                    a.col_index.size() * sizeof(int) +
                                    a.row_start.size() * sizeof(int);
    bench::row("  %-9.2f %-14s %-14s %.2f", density, human_bytes(dense_bytes).c_str(),
               human_bytes(csr_bytes).c_str(),
               static_cast<double>(csr_bytes) / static_cast<double>(dense_bytes));
  }
}

void BM_price_paths(benchmark::State& state) {
  const lp::LpOpStats ops =
      synthetic_recipe(256, 384, static_cast<double>(state.range(0)) / 100.0);
  double dense = 0, sparse = 0;
  for (auto _ : state) {
    const PathTimes t = price_ops(ops);
    dense = t.dense;
    sparse = t.sparse;
    benchmark::DoNotOptimize(t.iterations);
  }
  state.counters["sim_dense_us"] = dense * 1e6;
  state.counters["sim_sparse_us"] = sparse * 1e6;
}
BENCHMARK(BM_price_paths)->Arg(5)->Arg(30)->Arg(100)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  memory_comparison();
  return gpumip::bench::run_benchmarks(argc, argv);
}
