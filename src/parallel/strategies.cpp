#include "parallel/strategies.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/device_blas.hpp"

namespace gpumip::parallel {

const char* strategy_name(Strategy strategy) noexcept {
  switch (strategy) {
    case Strategy::S1_GpuOnly: return "S1-gpu-only";
    case Strategy::S2_CpuOrchestrated: return "S2-cpu-orchestrated";
    case Strategy::S3_Hybrid: return "S3-hybrid";
    case Strategy::S4_BigMip: return "S4-big-mip";
  }
  return "?";
}

std::uint64_t lp_device_footprint(const lp::StandardForm& form) {
  return lp::dense_lp_device_bytes(form.num_rows, form.num_vars);
}

namespace {

/// Per-node host-side tree handling cost (pop, bound bookkeeping, child
/// creation: ~copies of the bound vectors).
double tree_op_seconds(const lp::CpuCostModel& cpu, int num_vars) {
  return 6.0 * static_cast<double>(num_vars) / cpu.flops + 3.0 * cpu.per_op_overhead;
}

/// Gathers transfer/kernels/peak-memory counters from a device.
void harvest(const gpu::Device& device, StrategyReport& report) {
  const auto& stats = device.stats();
  report.bytes_h2d += stats.bytes_h2d;
  report.bytes_d2h += stats.bytes_d2h;
  report.transfers += stats.transfers_h2d + stats.transfers_d2h;
  report.device_peak_bytes = std::max(report.device_peak_bytes, stats.peak_allocated_bytes);
}

/// S1: whole search resident on one device.
void replay_s1(const mip::BnbSolver& solver, const lp::StandardForm& form,
               const StrategyConfig& config, StrategyReport& report) {
  // Without a CPU orchestrator every kernel is device-launched (dynamic-
  // parallelism style), which roughly doubles the launch latency — one more
  // face of the SIMD/MIMD mismatch of section 3.
  gpu::CostModelConfig s1_config = config.device;
  s1_config.launch_overhead *= 2.0;
  gpu::Device device(s1_config);
  try {
    // Residency: LP matrix + basis inverse + the tree at its peak width.
    auto matrix_buf = device.alloc(lp_device_footprint(form), "s1.lp");
    const std::uint64_t node_bytes =
        2ull * static_cast<std::uint64_t>(form.num_vars) * sizeof(double)  // bounds
        + static_cast<std::uint64_t>(form.num_rows) * sizeof(int)          // basis heads
        + static_cast<std::uint64_t>(form.num_vars);                       // statuses
    const long peak = std::max<long>(1, solver.pool().anatomy().active_peak);
    auto tree_buf = device.alloc(static_cast<std::uint64_t>(peak) * node_bytes, "s1.tree");

    // One upload (model), then everything on-device.
    std::vector<double> model_image(static_cast<std::size_t>(form.num_rows) + 1, 0.0);
    device.copy_h2d(0, matrix_buf, model_image.data(), model_image.size() * sizeof(double));

    for (const mip::NodeTrace& node : solver.trace()) {
      // Tree manipulation as a divergent, low-occupancy kernel (the SIMD
      // mismatch of section 3, strategy 1).
      gpu::KernelCost tree_cost;
      tree_cost.flops = 8.0 * form.num_vars;
      tree_cost.bytes = static_cast<double>(node_bytes);
      tree_cost.divergence = 0.9;
      tree_cost.occupancy = 1.0 / 1024.0;
      device.launch(0, tree_cost, {});
      // With no CPU orchestrator, the simplex control flow (entering/
      // leaving selection, ratio-test decisions) also runs on the device:
      // two extra divergent micro-kernels per iteration. This is the
      // concrete price of the SIMD/MIMD mismatch that made GPU-only ports
      // of CPU solvers fare poorly (section 2.3).
      gpu::KernelCost control;
      control.flops = 32.0;
      control.bytes = 256.0;
      control.divergence = 1.0;
      control.occupancy = 1.0 / 1024.0;
      for (long it = 0; it < 2 * std::max<long>(node.ops.iterations, 1); ++it) {
        device.launch(0, control, {});
      }
      lp::charge_to_device(device, 0, node.ops, /*sparse_pricing=*/false);
    }
    // Result download.
    std::vector<double> solution(static_cast<std::size_t>(form.num_struct), 0.0);
    device.copy_d2h(0, matrix_buf, solution.data(), solution.size() * sizeof(double));
    report.device_seconds = device.synchronize();
    report.sim_seconds = report.device_seconds;
    report.completed = true;
  } catch (const DeviceOutOfMemory& oom) {
    report.completed = false;
    report.failure = oom.what();
    report.device_seconds = device.synchronize();
    report.sim_seconds = report.device_seconds;
  }
  harvest(device, report);
}

/// S2/S3: host tree, device LP. `overlap` selects hybrid overlap (S3).
void replay_s2_s3(const mip::BnbSolver& solver, const lp::StandardForm& form,
                  const StrategyConfig& config, bool overlap, StrategyReport& report) {
  gpu::Device device(config.device);
  try {
    auto lp_buf = device.alloc(lp_device_footprint(form), "s2.lp");

    // Matrix upload once.
    std::vector<double> matrix_image(
        static_cast<std::size_t>(form.num_rows) * form.num_vars, 0.0);
    device.copy_h2d(0, lp_buf, matrix_image.data(),
                    std::min(matrix_image.size() * sizeof(double),
                             static_cast<std::size_t>(lp_buf.size_bytes())));

    double host = 0.0;
    std::vector<double> bound_delta(2, 0.0);
    std::vector<double> full_bounds(2ull * static_cast<std::size_t>(form.num_vars), 0.0);
    std::vector<std::byte> basis_image(static_cast<std::size_t>(form.num_rows) * sizeof(int) +
                                       static_cast<std::size_t>(form.num_vars));

    for (const mip::NodeTrace& node : solver.trace()) {
      host += tree_op_seconds(config.cpu, form.num_vars);
      lp::LpOpStats ops = node.ops;
      if (node.hot) {
        // Resident basis continues: skip the warm-start refactorization and
        // ship only the branched bound change.
        ops.refactor = std::max<long>(0, ops.refactor - 1);
        device.copy_h2d(0, lp_buf, bound_delta.data(), bound_delta.size() * sizeof(double));
      } else {
        // Jump to a distant node: full bound vectors + basis reload.
        device.copy_h2d(0, lp_buf, full_bounds.data(), full_bounds.size() * sizeof(double));
        device.copy_h2d(0, lp_buf, basis_image.data(), basis_image.size());
      }
      lp::charge_to_device(device, 0, ops, /*sparse_pricing=*/false);
      // Objective/solution readback per node (small).
      double obj = 0.0;
      device.copy_d2h(0, lp_buf, &obj, sizeof(obj));
    }
    report.device_seconds = device.synchronize();
    report.host_seconds = host;
    report.sim_seconds = overlap ? std::max(report.device_seconds, host)
                                 : report.device_seconds + host;
    report.completed = true;
  } catch (const DeviceOutOfMemory& oom) {
    report.completed = false;
    report.failure = oom.what();
    report.device_seconds = device.synchronize();
    report.sim_seconds = report.device_seconds;
  }
  harvest(device, report);
}

/// S4: LP matrix column-partitioned over `devices`; each simplex iteration
/// is a distributed operation.
void replay_s4(const mip::BnbSolver& solver, const lp::StandardForm& form,
               const StrategyConfig& config, StrategyReport& report) {
  const int d = std::max(2, config.devices);
  std::vector<gpu::Device> devices;
  devices.reserve(static_cast<std::size_t>(d));
  for (int i = 0; i < d; ++i) devices.emplace_back(config.device, i);

  const std::uint64_t m = static_cast<std::uint64_t>(form.num_rows);
  const std::uint64_t n = static_cast<std::uint64_t>(form.num_vars);
  try {
    // Shard A by columns; device 0 additionally holds B⁻¹ and work vectors.
    const std::uint64_t cols_per_dev = (n + static_cast<std::uint64_t>(d) - 1) / d;
    std::vector<gpu::DeviceBuffer> shards;
    for (int i = 0; i < d; ++i) {
      shards.push_back(devices[static_cast<std::size_t>(i)].alloc(
          m * cols_per_dev * sizeof(double), "s4.shard"));
    }
    auto basis_buf = devices[0].alloc((m * m + 4 * (m + n)) * sizeof(double), "s4.basis");
    (void)basis_buf;

    // Upload each shard once.
    std::vector<double> shard_image(m * cols_per_dev, 0.0);
    for (int i = 0; i < d; ++i) {
      devices[static_cast<std::size_t>(i)].copy_h2d(
          0, shards[static_cast<std::size_t>(i)], shard_image.data(),
          shard_image.size() * sizeof(double));
    }

    // Analytic per-iteration critical path.
    const double mm = static_cast<double>(m);
    gpu::KernelCost basis_op = gpu::KernelCost::dense(2.0 * mm * mm, mm * mm);
    basis_op.occupancy = linalg::occupancy_for_elements(static_cast<std::size_t>(m * m));
    const double t_basis = gpu::kernel_seconds(config.device, basis_op);
    gpu::KernelCost price_op = gpu::KernelCost::dense(
        2.0 * mm * static_cast<double>(cols_per_dev), mm * static_cast<double>(cols_per_dev));
    price_op.occupancy =
        linalg::occupancy_for_elements(static_cast<std::size_t>(m * cols_per_dev));
    const double t_price = gpu::kernel_seconds(config.device, price_op);
    // Each broadcast/gather also costs a pair of device-side kernel
    // launches (pack/unpack or NCCL-style ring step) per hop.
    const double hop_overhead = 2.0 * config.device.launch_overhead;
    const double t_bcast =
        static_cast<double>(d - 1) *
        (config.interconnect.wire_time(m * sizeof(double)) + hop_overhead);
    const double t_gather =
        static_cast<double>(d - 1) *
        (config.interconnect.wire_time(2 * sizeof(double)) + hop_overhead);
    gpu::KernelCost refactor_op =
        gpu::KernelCost::dense((2.0 / 3.0 + 1.0) * mm * mm * mm, mm * mm);
    refactor_op.occupancy = basis_op.occupancy;
    const double t_refactor = gpu::kernel_seconds(config.device, refactor_op);

    double network = 0.0;
    double host = 0.0;
    double timeline = 0.0;
    double dev0_busy = 0.0;
    for (const mip::NodeTrace& node : solver.trace()) {
      host += tree_op_seconds(config.cpu, form.num_vars);
      // btran + bcast + parallel price + gather + ftran + eta update.
      const double iter_path = t_basis + t_bcast + t_price + t_gather + 2.0 * t_basis;
      const long iters = std::max<long>(node.ops.iterations, 1);
      timeline += static_cast<double>(iters) * iter_path +
                  static_cast<double>(node.ops.refactor) * t_refactor;
      dev0_busy += static_cast<double>(iters) * 3.0 * t_basis +
                   static_cast<double>(node.ops.refactor) * t_refactor;
      network += static_cast<double>(iters) * (t_bcast + t_gather);
    }
    report.device_seconds = dev0_busy + static_cast<double>(solver.trace().size()) * t_price;
    report.network_seconds = network;
    report.host_seconds = host;
    report.sim_seconds = timeline + host;
    report.completed = true;
  } catch (const DeviceOutOfMemory& oom) {
    report.completed = false;
    report.failure = oom.what();
  }
  for (const gpu::Device& device : devices) harvest(device, report);
}

}  // namespace

StrategyReport run_strategy(Strategy strategy, const mip::MipModel& model,
                            const StrategyConfig& config) {
  StrategyReport report;
  report.strategy = strategy;

  // The search itself (host numerics): identical across strategies, so all
  // four land on the same optimum; replay prices it on the configured hw.
  mip::BnbSolver solver(model, config.mip);
  report.result = solver.solve();
  const lp::StandardForm form = lp::build_standard_form(solver.working_model().lp());

  switch (strategy) {
    case Strategy::S1_GpuOnly:
      replay_s1(solver, form, config, report);
      break;
    case Strategy::S2_CpuOrchestrated:
      replay_s2_s3(solver, form, config, /*overlap=*/false, report);
      break;
    case Strategy::S3_Hybrid:
      replay_s2_s3(solver, form, config, /*overlap=*/true, report);
      break;
    case Strategy::S4_BigMip:
      replay_s4(solver, form, config, report);
      break;
  }
  return report;
}

}  // namespace gpumip::parallel
