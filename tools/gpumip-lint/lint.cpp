#include "lint.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>
#include <thread>

#include "callgraph.hpp"
#include "cfg.hpp"
#include "determinism.hpp"
#include "hotpath.hpp"
#include "index.hpp"
#include "lexer.hpp"
#include "lifetime.hpp"
#include "protocol.hpp"

namespace gpumip::lint {
namespace {

/// True when `path` names a file of the confinement stem `stem`, i.e. the
/// path contains "<stem>." — "gpu/device" matches gpu/device.cpp and
/// gpu/device.hpp but not gpu/device_other.cpp.
bool matches_stem(const std::string& path, const std::string& stem) {
  std::size_t at = path.find(stem + ".");
  if (at == std::string::npos) return false;
  return at == 0 || path[at - 1] == '/';
}

bool in_device_context(const std::string& path, const Options& options) {
  return std::any_of(options.device_context.begin(), options.device_context.end(),
                     [&](const std::string& stem) { return matches_stem(path, stem); });
}

bool mentions_device_span(const std::string& text) {
  return text.find(".as<") != std::string::npos || text.find("->as<") != std::string::npos;
}

// ---- R1: memory-space confinement -----------------------------------------

void check_r1(const Scanned& f, const Options& options, std::vector<Finding>& findings) {
  if (in_device_context(f.src->path, options)) return;
  for (const char* pattern : {".as<", "->as<"}) {
    const std::string needle(pattern);
    for (std::size_t at = f.clean.find(needle); at != std::string::npos;
         at = f.clean.find(needle, at + 1)) {
      const int line = line_of(f, at);
      if (has_annotation(f, line, "device-context")) continue;
      findings.push_back(
          {f.src->path, line, "R1",
           "raw device-side access DeviceBuffer::as<T>() outside the device context "
           "(kernel/transfer-engine files); route through the typed wrappers or annotate "
           "'// gpumip-lint: device-context(reason)'"});
    }
  }
}

// ---- R2: transfer accounting ----------------------------------------------

void check_r2(const Scanned& f, const Options& options, std::vector<Finding>& findings) {
  const std::string& path = f.src->path;
  if (path.size() >= options.transfer_engine.size() &&
      path.compare(path.size() - options.transfer_engine.size(), options.transfer_engine.size(),
                   options.transfer_engine) == 0) {
    return;  // the transfer engine itself: the one audited home of raw copies
  }
  // (a) Untyped byte copies are invisible to the H2D/D2H ledger, so they
  // are banned everywhere outside the transfer engine.
  for (const char* prim : {"memcpy", "memmove", "memset"}) {
    for (std::size_t at : word_positions(f, prim)) {
      const int line = line_of(f, at);
      if (has_annotation(f, line, "host-only")) continue;
      findings.push_back(
          {path, line, "R2",
           std::string("raw byte copy '") + prim +
               "' outside the Device transfer engine bypasses the H2D/D2H ledger; use "
               "Device::copy_h2d/copy_d2h (or typed std algorithms for host-only data and "
               "annotate '// gpumip-lint: host-only(reason)')"});
    }
  }
  // (b) Typed copy algorithms whose statement touches a raw device span
  // move bytes across the host/device boundary without charging the copy
  // engine. Device-context files are exempt: their kernel bodies shuffle
  // device-resident data by design.
  if (in_device_context(path, options)) return;
  for (const char* algo : {"copy", "copy_n", "fill", "fill_n"}) {
    for (std::size_t at : word_positions(f, algo)) {
      if (at < 2 || f.clean.compare(at - 2, 2, "::") != 0) continue;  // only std:: algorithms
      const std::string stmt = statement_around(f.clean, at);
      if (!mentions_device_span(stmt)) continue;
      const int line = line_of(f, at);
      if (has_annotation(f, line, "host-only")) continue;
      findings.push_back(
          {path, line, "R2",
           std::string("'std::") + algo +
               "' over a device span bypasses transfer accounting; stage through a host "
               "buffer and Device::copy_h2d/copy_d2h"});
    }
  }
}

// ---- R3: error contract ----------------------------------------------------

/// Scans every file for `class/struct X : ... Base` declarations and
/// returns the transitive set of gpumip::Error subclasses (seeded with
/// Error itself). Lightweight semantic matching: qualified bases compare
/// by their last component.
std::set<std::string> collect_error_classes(const std::vector<Scanned>& files) {
  struct Decl {
    std::string name;
    std::vector<std::string> bases;
  };
  std::vector<Decl> decls;
  for (const Scanned& f : files) {
    for (const char* kw : {"class", "struct"}) {
      for (std::size_t at : word_positions(f, kw)) {
        std::size_t pos = skip_ws(f.clean, at + std::string(kw).size());
        std::string name;
        while (pos < f.clean.size() && is_ident_char(f.clean[pos])) name += f.clean[pos++];
        if (name.empty()) continue;
        pos = skip_ws(f.clean, pos);
        if (f.clean.compare(pos, 5, "final") == 0) pos = skip_ws(f.clean, pos + 5);
        if (pos >= f.clean.size() || f.clean[pos] != ':' ||
            (pos + 1 < f.clean.size() && f.clean[pos + 1] == ':')) {
          continue;  // no base clause (fwd decl, template param, etc.)
        }
        std::size_t brace = f.clean.find('{', pos);
        std::size_t semi = f.clean.find(';', pos);
        if (brace == std::string::npos || semi < brace) continue;
        Decl d;
        d.name = name;
        std::string base_clause = f.clean.substr(pos + 1, brace - pos - 1);
        std::istringstream bs(base_clause);
        std::string piece;
        while (std::getline(bs, piece, ',')) {
          // Last identifier component of the base name, sans qualifiers.
          std::string last;
          for (std::size_t i = 0; i < piece.size(); ++i) {
            if (is_ident_char(piece[i])) {
              last += piece[i];
            } else if (piece[i] == '<') {
              break;  // ignore template arguments
            } else if (!last.empty() && piece[i] == ':') {
              last.clear();  // qualifier: keep only the final component
            } else if (!last.empty() && is_space(piece[i])) {
              // A later word replaces an access specifier (public/virtual).
              if (last == "public" || last == "private" || last == "protected" ||
                  last == "virtual") {
                last.clear();
              }
            }
          }
          if (last == "public" || last == "private" || last == "protected" || last == "virtual") {
            last.clear();
          }
          if (!last.empty()) d.bases.push_back(last);
        }
        decls.push_back(std::move(d));
      }
    }
  }
  std::set<std::string> errors = {"Error"};
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Decl& d : decls) {
      if (errors.count(d.name) != 0) continue;
      for (const std::string& b : d.bases) {
        if (errors.count(b) != 0) {
          errors.insert(d.name);
          changed = true;
          break;
        }
      }
    }
  }
  return errors;
}

void check_r3(const Scanned& f, const std::set<std::string>& error_classes,
              std::vector<Finding>& findings) {
  for (std::size_t at : word_positions(f, "throw")) {
    std::size_t pos = skip_ws(f.clean, at + 5);
    if (pos >= f.clean.size()) break;
    const int line = line_of(f, at);
    if (f.clean[pos] == ';') continue;  // rethrow of the in-flight exception
    if (has_annotation(f, line, "error-contract")) continue;
    // Parse the thrown expression's leading qualified name.
    std::string last;
    bool any_component = false;
    while (pos < f.clean.size()) {
      if (is_ident_char(f.clean[pos])) {
        last += f.clean[pos++];
      } else if (f.clean.compare(pos, 2, "::") == 0) {
        last.clear();
        any_component = true;
        pos += 2;
      } else {
        break;
      }
    }
    (void)any_component;
    if (!last.empty() && error_classes.count(last) != 0) continue;
    std::string what = last.empty() ? "a non-class expression" : "'" + last + "'";
    findings.push_back(
        {f.src->path, line, "R3",
         "throw of " + what +
             " violates the error contract: every failure must be a gpumip::Error "
             "subclass carrying an ErrorCode (support/error.hpp) so callers can "
             "dispatch on code() without string matching"});
  }
}

// ---- R4: metric-name grammar ----------------------------------------------

/// gpumip metric grammar: `gpumip.` then >= 2 further dot-separated
/// components of [a-z0-9_]+, each starting with a letter or digit.
bool valid_metric_name(const std::string& name) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : name) {
    if (c == '.') {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  parts.push_back(cur);
  if (parts.size() < 3 || parts[0] != "gpumip") return false;
  for (std::size_t i = 1; i < parts.size(); ++i) {
    if (parts[i].empty()) return false;
    for (char c : parts[i]) {
      if ((std::islower(static_cast<unsigned char>(c)) == 0 &&
           std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '_')) {
        return false;
      }
    }
  }
  return true;
}

/// One R4 call site: the macro/function name and which argument carries the
/// exported name literal (0-based; GPUMIP_TRACE_SPAN_OPEN takes the guard
/// first, so its name is argument 1). `labeled` marks sites whose trailing
/// arguments may carry {"key", value} obs::Label pairs (the *_L macros and
/// the registry lookups): their keys are checked against the label-key
/// grammar and their documentation entry is the key-only family form
/// `name{key1,key2}` instead of the bare name.
struct R4Site {
  std::string name;
  int name_arg = 0;
  bool labeled = false;
};

/// Label-key grammar: [a-z_]+, nonempty. Values are free-form (they carry
/// runtime dimensions like rank numbers); keys are the schema.
bool valid_label_key(const std::string& key) {
  if (key.empty()) return false;
  for (char c : key) {
    if (std::islower(static_cast<unsigned char>(c)) == 0 && c != '_') return false;
  }
  return true;
}

/// Extracts the label keys of a labeled call site. `pos` is the offset of
/// the metric name's opening quote inside `f.clean`; the scan covers the
/// rest of the argument list (depth-tracked to the call's closing paren)
/// and records the first string literal of every brace group — the key of
/// one {"key", value} pair. Works for both the macro form
/// ({"k","v"}, {"k2","v2"} as separate arguments) and the registry form
/// (one {{"k", expr}} initializer list): the registry's outer brace opens
/// with another brace, not a literal, so it never reads as a pair. Sets
/// `dynamic` when a pair's key is not a compile-time literal (then the
/// family cannot be checked statically, like dynamic-name sites).
std::vector<std::string> collect_label_keys(const Scanned& f, std::size_t pos,
                                            bool* dynamic) {
  std::vector<std::string> keys;
  std::size_t scan = f.clean.find('"', pos + 1);  // closing quote of the name
  if (scan == std::string::npos) return keys;
  int depth = 1;  // inside the call's parens
  for (++scan; scan < f.clean.size() && depth > 0; ++scan) {
    const char c = f.clean[scan];
    if (c == '(' || c == '[') {
      ++depth;
    } else if (c == ')' || c == ']' || c == '}') {
      --depth;
    } else if (c == '{') {
      ++depth;
      const std::size_t first = skip_ws(f.clean, scan + 1);
      if (first < f.clean.size() && f.clean[first] == '"') {
        auto key_lit = f.literals.find(first);
        if (key_lit != f.literals.end()) keys.push_back(key_lit->second);
      } else if (first < f.clean.size() && f.clean[first] != '{' && f.clean[first] != '}') {
        *dynamic = true;
      }
    }
  }
  return keys;
}

/// The documented form of a labeled family: keys sorted and deduplicated,
/// values dropped — `gpumip.lp.solves{method}` (docs/METRICS.md "Labels").
std::string family_form(const std::string& name, std::vector<std::string> keys) {
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  std::string out = name + "{";
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (i > 0) out += ",";
    out += keys[i];
  }
  return out + "}";
}

/// Shared engine for both R4 name families: metric names (GPUMIP_OBS_* /
/// obs registry calls, documented in docs/METRICS.md) and trace event names
/// (GPUMIP_TRACE_* sites, documented in docs/TRACING.md). Same grammar,
/// separate catalogs.
void check_r4_names(const Scanned& f, const std::vector<R4Site>& sites,
                    bool registry_needs_obs_prefix, const std::string& kind,
                    const std::string& doc_name, bool have_doc, const std::string& doc,
                    std::vector<Finding>& findings) {
  for (const R4Site& site_entry : sites) {
    const std::string& site = site_entry.name;
    const bool is_registry_call = site == "counter" || site == "gauge" || site == "histogram";
    for (std::size_t at : word_positions(f, site)) {
      if (is_registry_call && registry_needs_obs_prefix) {
        // Only the obs registry lookups, not arbitrary identifiers.
        if (at < 5 || f.clean.compare(at - 5, 5, "obs::") != 0) continue;
      }
      std::size_t pos = skip_ws(f.clean, at + site.size());
      if (pos >= f.clean.size() || f.clean[pos] != '(') continue;
      pos = skip_ws(f.clean, pos + 1);
      // Step over leading non-name arguments (depth-0 commas).
      for (int skip = 0; skip < site_entry.name_arg && pos < f.clean.size(); ++skip) {
        int depth = 0;
        while (pos < f.clean.size()) {
          const char c = f.clean[pos];
          if (c == '(' || c == '[' || c == '{') ++depth;
          if (c == ')' || c == ']' || c == '}') {
            if (depth == 0) break;  // ran out of arguments
            --depth;
          }
          ++pos;
          if (c == ',' && depth == 0) break;
        }
        pos = skip_ws(f.clean, pos);
      }
      if (pos >= f.clean.size() || f.clean[pos] != '"') continue;  // dynamic name: not checkable
      auto lit = f.literals.find(pos);
      if (lit == f.literals.end()) continue;
      const std::string& name = lit->second;
      const int line = line_of(f, at);
      if (has_annotation(f, line, "metric-name")) continue;
      if (!valid_metric_name(name)) {
        findings.push_back(
            {f.src->path, line, "R4",
             kind + " name '" + name +
                 "' violates the grammar gpumip.[a-z_]+(.[a-z_0-9]+)+ — every exported "
                 "name is namespaced under gpumip. (" + doc_name + ")"});
        continue;
      }
      bool dynamic_key = false;
      std::vector<std::string> keys;
      if (site_entry.labeled) {
        keys = collect_label_keys(f, pos, &dynamic_key);
        bool bad_key = false;
        for (const std::string& key : keys) {
          if (!valid_label_key(key)) {
            findings.push_back(
                {f.src->path, line, "R4",
                 "label key '" + key + "' on " + kind + " '" + name +
                     "' violates the key grammar [a-z_]+ — keys are the schema "
                     "(values are free-form); see docs/METRICS.md \"Labels\""});
            bad_key = true;
          }
        }
        if (bad_key) continue;
      }
      if (!keys.empty()) {
        const std::string family = family_form(name, keys);
        if (have_doc && doc.find("`" + family + "`") == std::string::npos) {
          findings.push_back(
              {f.src->path, line, "R4",
               "labeled " + kind + " family '" + family + "' is not documented in " +
                   doc_name + "; every labeled family must appear (backticked) in "
                   "key-only form in the catalog"});
        }
      } else if (!dynamic_key &&
                 have_doc && doc.find("`" + name + "`") == std::string::npos) {
        findings.push_back(
            {f.src->path, line, "R4",
             kind + " name '" + name + "' is not documented in " + doc_name +
                 "; every name a hot path can export must appear (backticked) in the "
                 "catalog"});
      }
    }
  }
}

void check_r4(const Scanned& f, const Options& options, std::vector<Finding>& findings) {
  static const std::vector<R4Site> kMetricSites = {
      {"GPUMIP_OBS_COUNT"}, {"GPUMIP_OBS_ADD"},    {"GPUMIP_OBS_GAUGE_SET"},
      {"GPUMIP_OBS_GAUGE_MAX"}, {"GPUMIP_OBS_RECORD"}, {"GPUMIP_OBS_SPAN"},
      {"GPUMIP_OBS_COUNT_L", 0, true},     {"GPUMIP_OBS_ADD_L", 0, true},
      {"GPUMIP_OBS_GAUGE_SET_L", 0, true}, {"GPUMIP_OBS_RECORD_L", 0, true},
      {"GPUMIP_OBS_SPAN_L", 0, true},
      {"counter", 0, true}, {"gauge", 0, true}, {"histogram", 0, true},
  };
  static const std::vector<R4Site> kTraceSites = {
      {"GPUMIP_TRACE_BEGIN"},      {"GPUMIP_TRACE_END"},      {"GPUMIP_TRACE_INSTANT"},
      {"GPUMIP_TRACE_COMPLETE"},   {"GPUMIP_TRACE_FLOW_BEGIN"}, {"GPUMIP_TRACE_FLOW_END"},
      {"GPUMIP_TRACE_SPAN_OPEN", 1}, {"GPUMIP_TRACE_SCOPE"},
  };
  check_r4_names(f, kMetricSites, /*registry_needs_obs_prefix=*/true, "metric",
                 "docs/METRICS.md", options.have_metrics_doc, options.metrics_doc, findings);
  check_r4_names(f, kTraceSites, /*registry_needs_obs_prefix=*/true, "trace event",
                 "docs/TRACING.md", options.have_tracing_doc, options.tracing_doc, findings);
}

}  // namespace

std::vector<Suppression> parse_suppressions(const std::string& text, const std::string& path,
                                            std::vector<Finding>& findings) {
  std::vector<Suppression> out;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::size_t sep = line.find(" -- ");
    if (sep == std::string::npos) {
      findings.push_back({path, lineno, "SUP",
                          "suppression entry is missing ' -- <justification>'"});
      continue;
    }
    std::string head = line.substr(0, sep);
    std::string justification = line.substr(sep + 4);
    while (!justification.empty() && is_space(justification.back())) justification.pop_back();
    std::istringstream hs(head);
    Suppression s;
    hs >> s.rule >> s.path_suffix;
    std::getline(hs, s.needle);
    std::size_t ns = s.needle.find_first_not_of(" \t");
    s.needle = (ns == std::string::npos) ? "" : s.needle.substr(ns);
    s.justification = justification;
    s.line = lineno;
    if (s.rule.empty() || s.path_suffix.empty() || s.needle.empty()) {
      findings.push_back({path, lineno, "SUP",
                          "suppression entry needs '<rule> <path-suffix> <line-substring> -- "
                          "<justification>'"});
      continue;
    }
    if (s.justification.empty()) {
      findings.push_back({path, lineno, "SUP", "suppression justification must be non-empty"});
      continue;
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<Finding> run_lint(const std::vector<SourceFile>& files, const Options& options,
                              std::vector<Suppression>& suppressions, RunStats* stats,
                              std::vector<Finding>* waived_out) {
  using Clock = std::chrono::steady_clock;
  auto elapsed_ms = [](Clock::time_point since) {
    return std::chrono::duration<double, std::milli>(Clock::now() - since).count();
  };

  std::vector<Finding> findings;
  auto t0 = Clock::now();
  // The per-file scan (lex + token index) is embarrassingly parallel: a
  // small pool pulls file indices off a shared counter (same shape as the
  // R5 header probes). Per-file finding slots and per-file timings keep
  // the output and the serial-equivalent cost deterministic at any job
  // count; everything downstream reads the shared Scanned array.
  std::size_t jobs = options.jobs;
  if (jobs == 0) {
    jobs = std::max<std::size_t>(1, std::min<std::size_t>(8, std::thread::hardware_concurrency()));
  }
  jobs = std::min(jobs, std::max<std::size_t>(1, files.size()));
  std::vector<Scanned> scanned(files.size());
  std::vector<std::vector<Finding>> scan_slots(files.size());
  std::vector<double> scan_times(files.size(), 0.0);
  auto scan_one = [&](std::size_t idx) {
    const auto file_t0 = Clock::now();
    scanned[idx] = scan(files[idx], scan_slots[idx]);
    scan_times[idx] = elapsed_ms(file_t0);
  };
  if (jobs == 1) {
    for (std::size_t i = 0; i < files.size(); ++i) scan_one(i);
  } else {
    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
      for (;;) {
        const std::size_t idx = next.fetch_add(1);
        if (idx >= files.size()) return;
        scan_one(idx);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::size_t t = 0; t < jobs; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  for (std::vector<Finding>& slot : scan_slots) {
    findings.insert(findings.end(), std::make_move_iterator(slot.begin()),
                    std::make_move_iterator(slot.end()));
  }
  if (stats != nullptr) {
    stats->scan_ms = elapsed_ms(t0);
    stats->scan_jobs = jobs;
    for (double ms : scan_times) stats->scan_serial_ms += ms;
    stats->files = files.size();
  }

  t0 = Clock::now();
  const std::set<std::string> error_classes = collect_error_classes(scanned);
  for (const Scanned& f : scanned) {
    check_r1(f, options, findings);
    check_r2(f, options, findings);
    check_r3(f, error_classes, findings);
    check_r4(f, options, findings);
  }
  if (stats != nullptr) stats->rules_ms = elapsed_ms(t0);

  // The declaration index and call graph are built once and shared by the
  // hot-path rules (R6-R9), the lifetime rules (R10-R12), and the
  // protocol rules (R13-R14).
  std::vector<FunctionDecl> functions;
  CallGraph graph;
  if (options.have_hotpaths || options.lifetime_rules || options.protocol_rules) {
    t0 = Clock::now();
    functions = index_functions(scanned);
    graph = build_call_graph(scanned, functions);
    if (stats != nullptr) {
      stats->index_ms = elapsed_ms(t0);
      stats->functions = functions.size();
    }
  }

  // Hot-path rules R6-R9: walk the call graph from the manifest roots.
  if (options.have_hotpaths) {
    t0 = Clock::now();
    const HotPathManifest manifest =
        parse_hotpaths(options.hotpaths, options.hotpaths_path, findings);
    check_hotpaths(scanned, manifest, options.hotpaths_path, functions, graph, findings);
    if (stats != nullptr) stats->hotpath_ms = elapsed_ms(t0);
  }

  // The noreturn set feeds both CFG consumers (lifetime and protocol).
  std::set<std::string> noreturn_names;
  if (options.lifetime_rules || options.protocol_rules) {
    noreturn_names = collect_noreturn_names(scanned);
  }

  // Lifetime rules R10-R12: per-function CFGs + forward dataflow.
  if (options.lifetime_rules) {
    t0 = Clock::now();
    check_lifetimes(scanned, functions, graph, noreturn_names, findings);
    if (stats != nullptr) stats->lifetime_ms = elapsed_ms(t0);
  }

  // Protocol rules R13-R14: serializer/deserializer symmetry per CFG path,
  // tag-protocol coverage, exhausted() checks.
  if (options.protocol_rules) {
    t0 = Clock::now();
    check_protocol(scanned, functions, graph, noreturn_names, findings);
    if (stats != nullptr) stats->protocol_ms = elapsed_ms(t0);
  }

  // Determinism rules R15-R16: replay-relevant nondeterminism sources and
  // seed plumbing.
  if (options.determinism_rules) {
    t0 = Clock::now();
    check_determinism(scanned, options, findings);
    if (stats != nullptr) stats->determinism_ms = elapsed_ms(t0);
  }

  // Apply the suppression file: a finding survives unless an entry matches
  // its rule, file suffix, and offending source line.
  auto source_line = [&](const Finding& fi) -> std::string {
    for (const Scanned& f : scanned) {
      if (f.src->path == fi.file && fi.line >= 1 &&
          static_cast<std::size_t>(fi.line) <= f.lines.size()) {
        return f.lines[static_cast<std::size_t>(fi.line - 1)];
      }
    }
    return "";
  };
  std::vector<Finding> kept;
  for (Finding& fi : findings) {
    bool suppressed = false;
    if (fi.rule != "SUP" && fi.rule != "HOT") {
      for (Suppression& s : suppressions) {
        if (s.rule == fi.rule && fi.file.size() >= s.path_suffix.size() &&
            fi.file.compare(fi.file.size() - s.path_suffix.size(), s.path_suffix.size(),
                            s.path_suffix) == 0 &&
            source_line(fi).find(s.needle) != std::string::npos) {
          s.used = true;
          suppressed = true;
          break;
        }
      }
    }
    if (suppressed && waived_out != nullptr) waived_out->push_back(fi);
    if (!suppressed) kept.push_back(std::move(fi));
  }
  // Stale entries are findings too: a suppression must not outlive the
  // code it excuses.
  for (const Suppression& s : suppressions) {
    if (!s.used) {
      kept.push_back({"(suppressions)", s.line, "SUP",
                      "stale suppression (matched no finding): " + s.rule + " " + s.path_suffix +
                          " '" + s.needle + "'"});
    }
  }
  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
  });
  return kept;
}

std::vector<Finding> check_headers_standalone(const std::vector<std::string>& headers,
                                              const std::string& include_dir,
                                              const std::string& compiler,
                                              const std::string& scratch_dir,
                                              std::size_t jobs) {
  namespace fs = std::filesystem;
  fs::create_directories(scratch_dir);
  if (jobs == 0) {
    jobs = std::max<std::size_t>(1, std::min<std::size_t>(8, std::thread::hardware_concurrency()));
  }
  jobs = std::min(jobs, std::max<std::size_t>(1, headers.size()));

  // One probe per header, each its own compiler invocation — independent
  // work, so a small pool pulls headers off a shared counter. Results land
  // in per-header slots to keep the output in header order.
  std::vector<std::vector<Finding>> slots(headers.size());
  std::atomic<std::size_t> next{0};
  auto probe = [&]() {
    for (;;) {
      const std::size_t idx = next.fetch_add(1);
      if (idx >= headers.size()) return;
      const std::string& header = headers[idx];
      std::string mangled = header;
      std::replace(mangled.begin(), mangled.end(), '/', '_');
      const fs::path tu = fs::path(scratch_dir) / (mangled + ".standalone.cpp");
      const fs::path log = fs::path(scratch_dir) / (mangled + ".log");
      {
        std::ofstream out(tu);
        out << "// generated by gpumip-lint R5: the header must compile alone\n"
            << "#include \"" << header << "\"\n";
      }
      const std::string cmd = compiler + " -std=c++20 -fsyntax-only -I \"" + include_dir +
                              "\" \"" + tu.string() + "\" > \"" + log.string() + "\" 2>&1";
      const int rc = std::system(cmd.c_str());  // NOLINT: deliberate tool invocation
      if (rc == 0) continue;
      std::string detail;
      {
        std::ifstream in(log);
        std::string line;
        int kept_lines = 0;
        while (std::getline(in, line) && kept_lines < 6) {
          detail += "\n    " + line;
          ++kept_lines;
        }
      }
      slots[idx].push_back({include_dir + "/" + header, 1, "R5",
                            "header is not self-contained (fails to compile as its own "
                            "translation unit):" + detail});
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(jobs);
  for (std::size_t t = 0; t < jobs; ++t) pool.emplace_back(probe);
  for (std::thread& t : pool) t.join();

  std::vector<Finding> findings;
  for (std::vector<Finding>& slot : slots) {
    findings.insert(findings.end(), std::make_move_iterator(slot.begin()),
                    std::make_move_iterator(slot.end()));
  }
  return findings;
}

namespace {

/// Runs the engine over one fixture and reports whether `rule` fired.
bool fires(const std::string& path, const std::string& content, const std::string& rule,
           const Options& options) {
  std::vector<Suppression> none;
  std::vector<Finding> findings = run_lint({{path, content}}, options, none);
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

/// Like `fires`, but with a hot-path manifest installed first.
bool fires_hot(const std::string& content, const std::string& manifest, const std::string& rule,
               Options options) {
  options.hotpaths = manifest;
  options.have_hotpaths = true;
  return fires("src/lp/fixture.cpp", content, rule, options);
}

}  // namespace

bool run_self_test(std::ostream& out) {
  Options options;
  options.metrics_doc = "| `gpumip.test.documented.total` | — | — | fixture |\n"
                        "| `gpumip.test.labeled.total{method}` | — | — | fixture |\n";
  options.have_metrics_doc = true;
  options.tracing_doc = "| `gpumip.test.documented.event` | i | — | fixture |\n";
  options.have_tracing_doc = true;
  int failed = 0;
  auto expect = [&](bool ok, const std::string& what) {
    out << "    [" << (ok ? "ok" : "FAIL") << "] " << what << "\n";
    if (!ok) ++failed;
  };
  // Per-rule wall time: `mark("Rn")` closes the section that started at
  // the previous mark (or at entry) and prints its elapsed time.
  auto section_start = std::chrono::steady_clock::now();
  auto mark = [&](const char* rule) {
    const auto now = std::chrono::steady_clock::now();
    const auto us =
        std::chrono::duration_cast<std::chrono::microseconds>(now - section_start).count();
    out << "    [time] " << rule << " fixtures: " << (static_cast<double>(us) / 1000.0)
        << " ms\n";
    section_start = now;
  };

  // R1: raw device access fires outside the device context, is quiet
  // inside it, and the inline annotation waives it.
  const std::string r1 = "void f(B& b) { auto s = b.as<double>(); }\n";
  expect(fires("src/mip/fixture.cpp", r1, "R1", options), "R1 fires outside device context");
  expect(!fires("src/linalg/device_blas.cpp", r1, "R1", options),
         "R1 quiet in a device-context file");
  expect(!fires("src/mip/fixture.cpp",
                "// gpumip-lint: device-context(fixture kernel body)\n" + r1, "R1", options),
         "R1 waived by device-context annotation");
  mark("R1");

  // R2a: raw byte copies fire outside the transfer engine only.
  const std::string r2 = "void f() { std::memcpy(d, s, n); }\n";
  expect(fires("src/lp/fixture.cpp", r2, "R2", options), "R2 fires on memcpy outside engine");
  expect(!fires("src/gpu/device.cpp", r2, "R2", options), "R2 quiet in the transfer engine");
  expect(!fires("src/lp/fixture.cpp",
                "// gpumip-lint: host-only(fixture serializer)\n" + r2, "R2", options),
         "R2 waived by host-only annotation");
  // R2b: typed algorithms over a device span.
  expect(fires("src/lp/fixture.cpp",
               "void f(B& b) { std::copy(v.begin(), v.end(), b.as<double>().data()); }\n", "R2",
               options),
         "R2 fires on std::copy into a device span");
  expect(!fires("src/lp/fixture.cpp", "void f() { std::copy(v.begin(), v.end(), w.begin()); }\n",
                "R2", options),
         "R2 quiet on host-to-host std::copy");
  mark("R2");

  // R3: raw std exceptions fire; locally declared Error subclasses do not.
  expect(fires("src/lp/fixture.cpp", "void f() { throw std::runtime_error(\"x\"); }\n", "R3",
               options),
         "R3 fires on std::runtime_error");
  expect(fires("src/lp/fixture.cpp", "void f() { throw \"bare literal\"; }\n", "R3", options),
         "R3 fires on a literal throw");
  expect(!fires("src/lp/fixture.cpp",
                "struct FixtureError : Error {};\n"
                "void f() { throw FixtureError(); }\n",
                "R3", options),
         "R3 quiet on a declared Error subclass");
  expect(!fires("src/lp/fixture.cpp", "void f() { try { g(); } catch (...) { throw; } }\n", "R3",
                options),
         "R3 quiet on rethrow");
  mark("R3");

  // R4: grammar violations and undocumented names fire; documented
  // conforming names do not.
  expect(fires("src/lp/fixture.cpp", "void f() { GPUMIP_OBS_COUNT(\"lp.fixture.calls\"); }\n",
               "R4", options),
         "R4 fires on a name outside the gpumip. namespace");
  expect(fires("src/lp/fixture.cpp",
               "void f() { GPUMIP_OBS_COUNT(\"gpumip.fixture.undocumented\"); }\n", "R4", options),
         "R4 fires on an undocumented name");
  expect(!fires("src/lp/fixture.cpp",
                "void f() { GPUMIP_OBS_COUNT(\"gpumip.test.documented.total\"); }\n", "R4",
                options),
         "R4 quiet on a documented conforming name");

  // R4 trace-event surface: GPUMIP_TRACE_* sites check the same grammar
  // against the docs/TRACING.md catalog instead of docs/METRICS.md.
  expect(fires("src/lp/fixture.cpp", "void f() { GPUMIP_TRACE_INSTANT(\"lp.fixture.event\", 0); }\n",
               "R4", options),
         "R4 fires on a trace name outside the gpumip. namespace");
  expect(fires("src/lp/fixture.cpp",
               "void f() { GPUMIP_TRACE_BEGIN(\"gpumip.fixture.undocumented\", 0); }\n", "R4",
               options),
         "R4 fires on an undocumented trace name");
  expect(fires("src/lp/fixture.cpp",
               "void f() { GPUMIP_TRACE_INSTANT(\"gpumip.test.documented.total\", 0); }\n", "R4",
               options),
         "R4 keeps the trace and metric catalogs separate");
  expect(!fires("src/lp/fixture.cpp",
                "void f() { GPUMIP_TRACE_INSTANT(\"gpumip.test.documented.event\", 0); }\n", "R4",
                options),
         "R4 quiet on a documented trace name");
  expect(!fires("src/lp/fixture.cpp",
                "// gpumip-lint: metric-name(fixture dynamic event)\n"
                "void f() { GPUMIP_TRACE_INSTANT(\"gpumip.fixture.undocumented\", 0); }\n",
                "R4", options),
         "R4 trace finding waived by metric-name annotation");

  // R4 labeled surface: *_L macros and labeled registry lookups check the
  // key grammar and document the key-only family form (docs/METRICS.md
  // "Labels"); label values stay free-form, including runtime expressions.
  expect(fires("src/lp/fixture.cpp",
               "void f() { GPUMIP_OBS_COUNT_L(\"gpumip.test.labeled.total\","
               " {\"Method\", \"x\"}); }\n",
               "R4", options),
         "R4 fires on a label key outside the [a-z_]+ grammar");
  expect(fires("src/lp/fixture.cpp",
               "void f() { GPUMIP_OBS_COUNT_L(\"gpumip.test.documented.total\","
               " {\"method\", \"x\"}); }\n",
               "R4", options),
         "R4 fires on an undocumented labeled family (bare name is not enough)");
  expect(!fires("src/lp/fixture.cpp",
                "void f() { GPUMIP_OBS_COUNT_L(\"gpumip.test.labeled.total\","
                " {\"method\", \"x\"}); }\n",
                "R4", options),
         "R4 quiet on a documented labeled family");
  expect(!fires("src/lp/fixture.cpp",
                "void f(const std::string& r) {"
                " obs::counter(\"gpumip.test.labeled.total\", {{\"method\", r}}).add(1); }\n",
                "R4", options),
         "R4 quiet on a registry lookup with a literal key and a runtime value");
  mark("R4");

  // Suppression round trip: a matching entry silences the finding and is
  // marked used; an unmatched entry is reported stale.
  {
    std::vector<Finding> parse_findings;
    std::vector<Suppression> sups = parse_suppressions(
        "R2 lp/fixture.cpp std::memcpy -- fixture: host-only serialization\n", "(suppressions)",
        parse_findings);
    std::vector<Finding> findings = run_lint({{"src/lp/fixture.cpp", r2}}, options, sups);
    expect(parse_findings.empty() && findings.empty() && sups.size() == 1 && sups[0].used,
           "suppression with justification silences the finding");
  }
  {
    std::vector<Finding> parse_findings;
    std::vector<Suppression> sups = parse_suppressions(
        "R2 lp/fixture.cpp std::memcpy -- excuse without offender\n", "(suppressions)",
        parse_findings);
    std::vector<Finding> findings =
        run_lint({{"src/lp/clean.cpp", "void f() {}\n"}}, options, sups);
    expect(findings.size() == 1 && findings[0].rule == "SUP",
           "stale suppression is itself a finding");
  }
  {
    std::vector<Finding> parse_findings;
    parse_suppressions("R2 lp/fixture.cpp std::memcpy\n", "(suppressions)", parse_findings);
    expect(parse_findings.size() == 1 && parse_findings[0].rule == "SUP",
           "suppression without justification is rejected");
  }
  mark("SUP");

  // ---- hot-path rules R6-R9 (call-graph-rooted, manifest-driven) ----
  const std::string manifest =
      "root hot_loop -- fixture: the iteration loop\n"
      "wave wave_loop -- fixture: device-wave critical section\n"
      "stop cold_setup -- fixture: once-per-solve setup path\n"
      "payload Payload -- fixture: message payloads must not copy\n"
      "blocking blocking_recv -- fixture: simulated blocking receive\n";
  const std::string instrumented =
      "void hot_loop() { GPUMIP_OBS_COUNT(\"gpumip.test.documented.total\"); body(); }\n";

  // R6: allocation in the root fires; transitive allocation through a
  // callee fires; preallocated indexing stays quiet; throw statements and
  // the hot-alloc annotation waive.
  expect(fires_hot("void hot_loop() {\n"
                   "  GPUMIP_OBS_COUNT(\"gpumip.test.documented.total\");\n"
                   "  buf.push_back(1.0);\n"
                   "}\n",
                   manifest, "R6", options),
         "R6 fires on container growth in a root");
  expect(fires_hot("void helper() { auto* p = new int(3); use(p); }\n"
                   "void hot_loop() {\n"
                   "  GPUMIP_OBS_COUNT(\"gpumip.test.documented.total\");\n"
                   "  helper();\n"
                   "}\n",
                   manifest, "R6", options),
         "R6 fires transitively through the call graph");
  expect(!fires_hot("void hot_loop() {\n"
                    "  GPUMIP_OBS_COUNT(\"gpumip.test.documented.total\");\n"
                    "  buf[i] = buf[i] * 2.0;\n"
                    "}\n",
                    manifest, "R6", options),
         "R6 quiet on preallocated indexing");
  expect(!fires_hot("void cold_setup() { buf.push_back(1.0); }\n"
                    "void hot_loop() {\n"
                    "  GPUMIP_OBS_COUNT(\"gpumip.test.documented.total\");\n"
                    "  cold_setup();\n"
                    "}\n",
                    manifest, "R6", options),
         "R6 quiet past a stop entry (traversal prunes)");
  expect(!fires_hot("void hot_loop() {\n"
                    "  GPUMIP_OBS_COUNT(\"gpumip.test.documented.total\");\n"
                    "  if (bad) throw FixtureError(std::string(\"context\"));\n"
                    "}\n",
                    manifest, "R6", options),
         "R6 quiet on allocation inside a throw statement");
  expect(!fires_hot("void hot_loop() {\n"
                    "  GPUMIP_OBS_COUNT(\"gpumip.test.documented.total\");\n"
                    "  buf.push_back(1.0);  // gpumip-lint: hot-alloc(fixture amortized)\n"
                    "}\n",
                    manifest, "R6", options),
         "R6 waived by hot-alloc annotation");
  expect(fires_hot("void target_fn() { auto* p = new int(1); use(p); }\n"
                   "void hot_loop() {\n"
                   "  GPUMIP_OBS_COUNT(\"gpumip.test.documented.total\");\n"
                   "  std::function<void()> cb = target_fn;  "
                   "// gpumip-lint: hot-alloc(fixture dispatch setup)\n"
                   "  cb();\n"
                   "}\n",
                   manifest, "R6", options),
         "R6 follows conservative std::function edges to address-taken functions");
  mark("R6");

  // R7: by-value payload parameters and returns fire; references, views,
  // and the hot-copy annotation stay quiet.
  expect(fires_hot("void handle(Payload p) { use(p); }\n" + instrumented +
                       "void body() { handle(x); }\n",
                   manifest, "R7", options),
         "R7 fires on a by-value payload parameter");
  expect(fires_hot("Payload make() { return y; }\n" + instrumented +
                       "void body() { auto m = make(); }\n",
                   manifest, "R7", options),
         "R7 fires on a by-value payload return");
  expect(!fires_hot("void handle(const Payload& p) { use(p); }\n" + instrumented +
                        "void body() { handle(x); }\n",
                    manifest, "R7", options),
         "R7 quiet on a payload reference");
  expect(!fires_hot("// gpumip-lint: hot-copy(fixture: NRVO, payload is moved)\n"
                    "Payload make() { return y; }\n" +
                        instrumented + "void body() { auto m = make(); }\n",
                    manifest, "R7", options),
         "R7 waived by hot-copy annotation");
  expect(!fires_hot("void unreachable(Payload p) { use(p); }\n" + instrumented +
                        "void body() { work(); }\n",
                    manifest, "R7", options),
         "R7 quiet on functions unreachable from any root");
  mark("R7");

  // R8: blocking sites fire under a wave root only; the hot-block
  // annotation and manifest-declared blocking names behave.
  const std::string wave_instrumented =
      "void wave_loop() { GPUMIP_TRACE_BEGIN(\"gpumip.test.documented.event\", 0); step(); }\n";
  expect(fires_hot(wave_instrumented +
                       "void step() { std::lock_guard<std::mutex> g(mu); work(); }\n",
                   manifest, "R8", options),
         "R8 fires on a lock inside a device-wave critical section");
  expect(fires_hot(wave_instrumented + "void step() { blocking_recv(); }\n", manifest, "R8",
                   options),
         "R8 fires on a manifest-declared blocking call");
  expect(!fires_hot("void hot_loop() {\n"
                    "  GPUMIP_OBS_COUNT(\"gpumip.test.documented.total\");\n"
                    "  std::lock_guard<std::mutex> g(mu);\n"
                    "}\n",
                    manifest, "R8", options),
         "R8 quiet outside wave roots (plain roots may lock)");
  expect(!fires_hot(wave_instrumented +
                        "void step() {\n"
                        "  std::lock_guard<std::mutex> g(mu);  "
                        "// gpumip-lint: hot-block(fixture: uncontended stats lock)\n"
                        "}\n",
                    manifest, "R8", options),
         "R8 waived by hot-block annotation");
  mark("R8");

  // R9: an uninstrumented root fires; any GPUMIP_OBS_/GPUMIP_TRACE_/obs::
  // site in its extent satisfies the rule.
  expect(fires_hot("void hot_loop() { work(); }\n", manifest, "R9", options),
         "R9 fires on an uninstrumented root");
  expect(!fires_hot(instrumented + "void body() { work(); }\n", manifest, "R9", options),
         "R9 quiet on an instrumented root");
  mark("R9");

  // HOT: stale and malformed manifest entries are findings. The fixture
  // defines every root/wave/stop the base manifest names, so any HOT
  // finding comes from the entry under test.
  const std::string complete =
      "void hot_loop() { GPUMIP_OBS_COUNT(\"gpumip.test.documented.total\"); }\n"
      "void wave_loop() { GPUMIP_TRACE_BEGIN(\"gpumip.test.documented.event\", 0); }\n"
      "void cold_setup() { setup(); }\n";
  expect(fires_hot(complete, manifest + "root vanished_fn -- fixture: stale entry\n", "HOT",
                   options),
         "HOT fires on a root entry matching no function");
  expect(fires_hot(complete, manifest + "root orphan_entry_without_reason\n", "HOT", options),
         "HOT fires on an entry missing its justification");
  expect(!fires_hot(complete, manifest, "HOT", options),
         "HOT quiet on a manifest that matches the code");
  mark("HOT");

  // ---- lifetime dataflow rules R10-R12 (CFG + fixpoint, lifetime.hpp) ----

  // R10: use-after-move on some path; reassignment kills; branches that
  // divert (early return) keep moved and used paths apart.
  expect(fires("src/lp/fixture.cpp",
               "void f() { auto v = make(); sink(std::move(v)); use(v.size()); }\n", "R10",
               options),
         "R10 fires on a straight-line use after move");
  expect(!fires("src/lp/fixture.cpp",
                "void f() { auto v = make(); sink(std::move(v)); v = make(); use(v.size()); }\n",
                "R10", options),
         "R10 quiet when the local is reassigned after the move");
  expect(!fires("src/lp/fixture.cpp",
                "void f() {\n"
                "  auto v = make();\n"
                "  if (c) { sink(std::move(v)); return; }\n"
                "  use(v.size());\n"
                "}\n",
                "R10", options),
         "R10 quiet when an early return keeps the moved path apart");
  expect(fires("src/lp/fixture.cpp",
               "void f() { auto v = make(); while (go()) { use(v.size()); sink(std::move(v)); } }\n",
               "R10", options),
         "R10 fires through a loop back edge (moved last iteration)");
  expect(fires("src/lp/fixture.cpp",
               "void f() { auto v = make(); sink(std::move(v)); auto cb = [v]() { return 0; }; cb(); }\n",
               "R10", options),
         "R10 fires on a lambda capturing a moved-from local");
  expect(!fires("src/lp/fixture.cpp",
                "void f() { auto v = make(); sink(std::move(v));\n"
                "  use(v.size());  // gpumip-lint: moved-ok(fixture: intentional reuse)\n"
                "}\n",
                "R10", options),
         "R10 waived by moved-ok annotation");
  mark("R10");

  // R11: a derived arena block/span is stale after its source resets —
  // directly, on only one branch (may-analysis), or through a call-graph-
  // proven resetter. Re-deriving kills the stale bit.
  expect(fires("src/lp/fixture.cpp",
               "void f(Arena& arena) { auto blk = arena.allot(64); arena.reset(); use(blk); }\n",
               "R11", options),
         "R11 fires on use after a direct arena reset");
  expect(!fires("src/lp/fixture.cpp",
                "void f(Arena& arena) {\n"
                "  auto blk = arena.allot(64);\n"
                "  arena.reset();\n"
                "  blk = arena.allot(64);\n"
                "  use(blk);\n"
                "}\n",
                "R11", options),
         "R11 quiet when the block is re-derived after the reset");
  expect(fires("src/lp/fixture.cpp",
               "void f(Arena& arena) { auto blk = arena.allot(64); if (c) arena.reset(); use(blk); }\n",
               "R11", options),
         "R11 fires when only one branch resets (may-analysis)");
  expect(fires("src/lp/fixture.cpp",
               "void shrink(Arena& a) { a.reset(); }\n"
               "void f(Arena& arena) { auto blk = arena.allot(64); shrink(arena); use(blk); }\n",
               "R11", options),
         "R11 fires through a call-graph-proven resetter");
  expect(!fires("src/lp/fixture.cpp",
                "void f(Arena& arena) { auto blk = arena.allot(64); arena.reset();\n"
                "  use(blk);  // gpumip-lint: arena-ok(fixture: slab persists)\n"
                "}\n",
                "R11", options),
         "R11 waived by arena-ok annotation");
  mark("R11");

  // R12: raw GPUMIP_TRACE_BEGIN/END balance over every path. RAII forms
  // are exempt; lambda bodies are separate graphs.
  const std::string beg = "GPUMIP_TRACE_BEGIN(\"gpumip.test.documented.event\", 0);";
  const std::string fin = "GPUMIP_TRACE_END(\"gpumip.test.documented.event\", 0);";
  expect(fires("src/lp/fixture.cpp",
               "void f() { " + beg + " if (c) return; " + fin + " }\n", "R12", options),
         "R12 fires on an early return inside an open span");
  expect(!fires("src/lp/fixture.cpp",
                "void f() { if (c) return; " + beg + " work(); " + fin + " }\n", "R12", options),
         "R12 quiet on a balanced span (early return before it opens)");
  expect(fires("src/lp/fixture.cpp", "void f() { " + beg + " work(); }\n", "R12", options),
         "R12 fires on a span left open when falling off the end");
  expect(fires("src/lp/fixture.cpp",
               "void f(int k) {\n"
               "  switch (k) {\n"
               "    case 0: " + beg + " case 1: " + fin + " break;\n"
               "  }\n"
               "}\n",
               "R12", options),
         "R12 fires on switch fallthrough unbalancing a span");
  expect(fires("src/lp/fixture.cpp",
               "void f() { " + beg + " if (bad) throw Error(); " + fin + " }\n", "R12", options),
         "R12 fires on a throw escaping an open span");
  expect(fires("src/lp/fixture.cpp",
               "[[noreturn]] void die();\n"
               "void f() { " + beg + " if (bad) die(); " + fin + " }\n",
               "R12", options),
         "R12 fires on a noreturn call escaping an open span");
  expect(!fires("src/lp/fixture.cpp",
                "void f() { GPUMIP_TRACE_SCOPE(\"gpumip.test.documented.event\", 0); work(); }\n",
                "R12", options),
         "R12 quiet on the RAII span forms");
  expect(!fires("src/lp/fixture.cpp",
                "void f() {\n"
                "  auto cb = []() { " + beg + " work(); " + fin + " };\n"
                "  " + beg + " cb(); " + fin + "\n"
                "}\n",
                "R12", options),
         "R12 quiet when function and lambda each balance their own span");
  expect(fires("src/lp/fixture.cpp",
               "void f() { auto cb = []() { " + beg + " }; cb(); }\n", "R12", options),
         "R12 fires on a span left open inside a lambda body");
  expect(!fires("src/lp/fixture.cpp",
                "void f() { " + beg + "\n"
                "  if (c) return;  // gpumip-lint: span-ok(fixture: caller closes)\n"
                "  " + fin + " }\n",
                "R12", options),
         "R12 waived by span-ok annotation");
  mark("R12");

  // ---- protocol rules R13-R14 (wire-format + tags, protocol.hpp) ----

  // R13: a serializer/deserializer pair (encode_/decode_ convention) whose
  // typed op sequences disagree fires; matching sequences (deduced-type
  // writes are wildcards), mirrored loops, and the wire-ok waiver behave.
  const std::string decode_ok =
      "Item decode_item(std::span<const std::byte> p) {\n"
      "  ByteReader r(p);\n"
      "  Item it;\n"
      "  it.a = r.read<double>();\n"
      "  it.b = r.read<int>();\n"
      "  check_arg(r.exhausted(), \"trailing bytes\");\n"
      "  return it;\n"
      "}\n";
  expect(fires("src/lp/fixture.cpp",
               "void encode_item(const Item& it, ByteWriter& w) {\n"
               "  w.write<double>(it.a);\n"
               "  w.write<double>(it.b);\n"
               "}\n" + decode_ok,
               "R13", options),
         "R13 fires on a write<double>/read<int> type mismatch");
  expect(fires("src/lp/fixture.cpp",
               "void encode_item(const Item& it, ByteWriter& w) {\n"
               "  w.write<double>(it.a);\n"
               "}\n" + decode_ok,
               "R13", options),
         "R13 fires on a field-count mismatch");
  expect(!fires("src/lp/fixture.cpp",
                "void encode_item(const Item& it, ByteWriter& w) {\n"
                "  w.write<double>(it.a);\n"
                "  w.write(it.b);\n"
                "}\n" + decode_ok,
                "R13", options),
         "R13 quiet on matching sequences (deduced write matches any scalar)");
  expect(fires("src/lp/fixture.cpp",
               "void encode_item(const Item& it, ByteWriter& w) {\n"
               "  w.write<double>(it.a);\n"
               "  if (it.extended) { w.write<int>(it.b); }\n"
               "}\n" + decode_ok,
               "R13", options),
         "R13 fires on branch asymmetry (writer branches, reader does not)");
  expect(!fires("src/lp/fixture.cpp",
                "void encode_list(const L& l, ByteWriter& w) {\n"
                "  w.write<std::uint64_t>(l.count);\n"
                "  for (const auto& v : l.items) { w.write_doubles(v); }\n"
                "}\n"
                "L decode_list(std::span<const std::byte> p) {\n"
                "  ByteReader r(p);\n"
                "  L l;\n"
                "  l.count = r.read<std::uint64_t>();\n"
                "  for (std::uint64_t i = 0; i < l.count; ++i) { l.items.push_back(r.read_doubles()); }\n"
                "  check_arg(r.exhausted(), \"trailing bytes\");\n"
                "  return l;\n"
                "}\n",
                "R13", options),
         "R13 quiet on mirrored count-prefixed loops");
  expect(!fires("src/lp/fixture.cpp",
                "// gpumip-lint: wire-ok(fixture: versioned decode accepts the legacy layout)\n"
                "void encode_item(const Item& it, ByteWriter& w) {\n"
                "  w.write<double>(it.a);\n"
                "}\n" + decode_ok,
                "R13", options),
         "R13 waived by wire-ok annotation");
  mark("R13");

  // R14a: a tag only ever sent fires; an ==/case/filtered-recv handler
  // anywhere in the set satisfies it. R14b: constructing a ByteReader
  // without an exhausted() check fires.
  const std::string send_site = "void p(Comm& c) { c.send(1, kTagPing, payload); }\n";
  expect(fires("src/lp/fixture.cpp", send_site, "R14", options),
         "R14 fires on a tag no handler examines");
  expect(!fires("src/lp/fixture.cpp",
                send_site +
                    "void q(Comm& c) { Message m = c.recv(); if (m.tag == kTagPing) { on(m); } }\n",
                "R14", options),
         "R14 quiet when a dispatch site compares the tag");
  expect(!fires("src/lp/fixture.cpp",
                send_site + "void q(int t) { switch (t) { case kTagPing: on(); break; } }\n",
                "R14", options),
         "R14 quiet when a case label matches the tag");
  expect(!fires("src/lp/fixture.cpp",
                "// gpumip-lint: wire-ok(fixture: peer handles it in another repo)\n" + send_site,
                "R14", options),
         "R14 tag finding waived by wire-ok annotation");
  expect(fires("src/lp/fixture.cpp",
               "int decode_one(std::span<const std::byte> p) { ByteReader r(p); return r.read<int>(); }\n",
               "R14", options),
         "R14 fires on a deserializer that never checks exhausted()");
  expect(!fires("src/lp/fixture.cpp",
                "int decode_one(std::span<const std::byte> p) {\n"
                "  ByteReader r(p);\n"
                "  int v = r.read<int>();\n"
                "  check_arg(r.exhausted(), \"trailing bytes\");\n"
                "  return v;\n"
                "}\n",
                "R14", options),
         "R14 quiet when the deserializer checks exhausted()");
  expect(!fires("src/lp/fixture.cpp",
                "int decode_one(std::span<const std::byte> p) {\n"
                "  // gpumip-lint: wire-ok(fixture: framing layer validates length)\n"
                "  ByteReader r(p);\n"
                "  return r.read<int>();\n"
                "}\n",
                "R14", options),
         "R14 exhausted finding waived by wire-ok annotation");
  mark("R14");

  // ---- determinism rules R15-R16 (determinism.hpp) ----

  // R15: wall clocks, unseeded randomness, and unordered iteration fire
  // inside the determinism scope; out-of-scope files and ordered
  // containers stay quiet; determinism-ok waives.
  const std::string clock_use =
      "double now_s() { return std::chrono::steady_clock::now().time_since_epoch().count(); }\n";
  expect(fires("src/lp/fixture.cpp", clock_use, "R15", options),
         "R15 fires on a wall-clock read in replay-relevant code");
  expect(!fires("bench/fixture.cpp", clock_use, "R15", options),
         "R15 quiet outside the determinism scope");
  expect(fires("src/lp/fixture.cpp", "void f() { std::random_device rd; use(rd()); }\n", "R15",
               options),
         "R15 fires on random_device entropy");
  expect(fires("src/lp/fixture.cpp",
               "std::unordered_map<int, double> table_;\n"
               "void dump() { for (const auto& kv : table_) { emit(kv); } }\n",
               "R15", options),
         "R15 fires on iteration over an unordered container");
  expect(!fires("src/lp/fixture.cpp",
                "std::map<int, double> table_;\n"
                "void dump() { for (const auto& kv : table_) { emit(kv); } }\n",
                "R15", options),
         "R15 quiet on iteration over an ordered map");
  expect(!fires("src/lp/fixture.cpp",
                "std::unordered_map<int, double> table_;\n"
                "void dump() {\n"
                "  // gpumip-lint: determinism-ok(fixture: debug dump, never feeds the solve)\n"
                "  for (const auto& kv : table_) { emit(kv); }\n"
                "}\n",
                "R15", options),
         "R15 waived by determinism-ok annotation");
  mark("R15");

  // R16: default-constructed engines fire; explicitly seeded engines and
  // ctor-init-seeded members stay quiet; determinism-ok waives.
  expect(fires("src/lp/fixture.cpp", "void f() { std::mt19937_64 gen; use(gen()); }\n", "R16",
               options),
         "R16 fires on a default-constructed std engine");
  expect(fires("src/lp/fixture.cpp", "void f() { Rng rng; use(rng.uniform(0.0, 1.0)); }\n",
               "R16", options),
         "R16 fires on a default-constructed Rng wrapper");
  expect(!fires("src/lp/fixture.cpp",
                "void f(std::uint64_t seed) { std::mt19937_64 gen(seed); use(gen()); }\n", "R16",
                options),
         "R16 quiet on an explicitly seeded engine");
  expect(!fires("src/lp/fixture.cpp",
                "struct S {\n"
                "  explicit S(std::uint64_t seed) : engine_(seed) {}\n"
                "  std::mt19937_64 engine_;\n"
                "};\n",
                "R16", options),
         "R16 quiet on a member seeded in the constructor init list");
  expect(!fires("src/lp/fixture.cpp",
                "void f() {\n"
                "  std::mt19937_64 gen;  // gpumip-lint: determinism-ok(fixture: self-test only)\n"
                "  use(gen());\n"
                "}\n",
                "R16", options),
         "R16 waived by determinism-ok annotation");
  mark("R16");

  out << (failed == 0 ? "    self-test: all fixtures behaved\n"
                      : "    self-test: FIXTURE FAILURES\n");
  return failed == 0;
}

}  // namespace gpumip::lint
