#include "lp/op_stats.hpp"

#include <cmath>

#include "linalg/device_blas.hpp"
#include "obs/obs.hpp"

namespace gpumip::lp {

double cpu_seconds(const LpOpStats& stats, const CpuCostModel& cpu) {
  const double m = stats.m;
  const double n = stats.n;
  const double mm = 2.0 * m * m;
  double seconds = 0.0;
  seconds += (stats.ftran + stats.btran + stats.eta_updates) * (mm / cpu.flops);
  seconds += stats.price_full * (2.0 * static_cast<double>(stats.nnz) / cpu.sparse_flops);
  seconds += stats.refactor * ((2.0 / 3.0 + 1.0) * m * m * m / cpu.flops);
  seconds += stats.cholesky * ((1.0 / 3.0) * m * m * m / cpu.flops);
  seconds += stats.matvec_n * (2.0 * n / cpu.flops);
  seconds += stats.spmv * (2.0 * static_cast<double>(stats.nnz) / cpu.sparse_flops);
  const long ops = stats.ftran + stats.btran + stats.price_full + stats.eta_updates +
                   stats.refactor + stats.cholesky + stats.matvec_n + stats.spmv;
  seconds += static_cast<double>(ops) * cpu.per_op_overhead;
  return seconds;
}

void publish_op_stats(const LpOpStats& stats) {
  auto as_u64 = [](long v) { return static_cast<std::uint64_t>(v < 0 ? 0 : v); };
  GPUMIP_OBS_ADD("gpumip.lp.ops.ftran", as_u64(stats.ftran));
  GPUMIP_OBS_ADD("gpumip.lp.ops.btran", as_u64(stats.btran));
  GPUMIP_OBS_ADD("gpumip.lp.ops.price_full", as_u64(stats.price_full));
  GPUMIP_OBS_ADD("gpumip.lp.ops.eta_updates", as_u64(stats.eta_updates));
  GPUMIP_OBS_ADD("gpumip.lp.ops.refactor", as_u64(stats.refactor));
  GPUMIP_OBS_ADD("gpumip.lp.ops.iterations", as_u64(stats.iterations));
  GPUMIP_OBS_ADD("gpumip.lp.ops.bound_flips", as_u64(stats.bound_flips));
  GPUMIP_OBS_ADD("gpumip.lp.ops.cholesky", as_u64(stats.cholesky));
  GPUMIP_OBS_ADD("gpumip.lp.ops.matvec_n", as_u64(stats.matvec_n));
  GPUMIP_OBS_ADD("gpumip.lp.ops.spmv", as_u64(stats.spmv));
  GPUMIP_OBS_ADD("gpumip.lp.ops.restarts", as_u64(stats.restarts));
}

void charge_to_device(gpu::Device& device, gpu::StreamId stream, const LpOpStats& stats,
                      bool sparse_pricing) {
  using gpu::KernelCost;
  const double m = stats.m;
  const double n = stats.n;
  const std::size_t mm_elems = static_cast<std::size_t>(stats.m) * stats.m;
  const double occ_mm = linalg::occupancy_for_elements(mm_elems);

  auto launch_many = [&](long count, KernelCost cost) {
    for (long i = 0; i < count; ++i) device.launch(stream, cost, {});
  };

  KernelCost mm_cost = KernelCost::dense(2.0 * m * m, m * m);
  mm_cost.occupancy = occ_mm;
  launch_many(stats.ftran + stats.btran + stats.eta_updates, mm_cost);

  KernelCost price_cost =
      sparse_pricing
          ? KernelCost::sparse_irregular(2.0 * static_cast<double>(stats.nnz),
                                         1.5 * static_cast<double>(stats.nnz) + n)
          : KernelCost::dense(2.0 * m * n, m * n);
  price_cost.occupancy = linalg::occupancy_for_elements(
      sparse_pricing ? static_cast<std::size_t>(stats.nnz)
                     : static_cast<std::size_t>(stats.m) * stats.n);
  launch_many(stats.price_full, price_cost);

  KernelCost refactor_cost = KernelCost::dense((2.0 / 3.0 + 1.0) * m * m * m, m * m);
  refactor_cost.occupancy = occ_mm;
  launch_many(stats.refactor, refactor_cost);

  KernelCost chol_cost = KernelCost::dense((1.0 / 3.0) * m * m * m, m * m);
  chol_cost.occupancy = occ_mm;
  launch_many(stats.cholesky, chol_cost);

  KernelCost vec_cost = KernelCost::dense(2.0 * n, n);
  vec_cost.occupancy = linalg::occupancy_for_elements(static_cast<std::size_t>(stats.n));
  launch_many(stats.matvec_n, vec_cost);

  // Matrix-free SpMV passes (PDHG): always sparse-irregular — the whole
  // point of the first-order backend is that it never densifies A.
  KernelCost spmv_cost = KernelCost::sparse_irregular(
      2.0 * static_cast<double>(stats.nnz), 1.5 * static_cast<double>(stats.nnz) + n);
  spmv_cost.occupancy =
      linalg::occupancy_for_elements(static_cast<std::size_t>(stats.nnz < 0 ? 0 : stats.nnz));
  launch_many(stats.spmv, spmv_cost);
}

std::uint64_t dense_lp_device_bytes(int m, int n) {
  const std::uint64_t a = static_cast<std::uint64_t>(m) * n;
  const std::uint64_t binv = static_cast<std::uint64_t>(m) * m;
  const std::uint64_t vectors = 4ull * (static_cast<std::uint64_t>(m) + n);
  return (a + binv + vectors) * sizeof(double);
}

std::uint64_t pdhg_lp_device_bytes(int m, int n, long nnz) {
  const std::uint64_t z = static_cast<std::uint64_t>(nnz < 0 ? 0 : nnz);
  const std::uint64_t csr = z * (sizeof(double) + sizeof(int)) +
                            (static_cast<std::uint64_t>(m) + 1) * sizeof(int);
  // x, x̄, Aᵀy, running x-sum, per-column steps + bounds on the primal side;
  // y, Ax̄, running y-sum, per-row steps + rhs on the dual side.
  const std::uint64_t vectors =
      (6ull * static_cast<std::uint64_t>(n) + 5ull * static_cast<std::uint64_t>(m)) *
      sizeof(double);
  return csr + vectors;
}

}  // namespace gpumip::lp
