#include "gpu/device.hpp"

#include <algorithm>
#include <cstring>

#include "check/registry.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"

namespace gpumip::gpu {

DeviceBuffer::DeviceBuffer(Device* device, std::size_t bytes, std::string label,
                           std::uint64_t alloc_id)
    : device_(device), storage_(bytes), label_(std::move(label)), alloc_id_(alloc_id) {}

DeviceBuffer::~DeviceBuffer() { release(); }

DeviceBuffer::DeviceBuffer(DeviceBuffer&& other) noexcept
    : device_(other.device_),
      storage_(std::move(other.storage_)),
      label_(std::move(other.label_)),
      alloc_id_(other.alloc_id_) {
  other.device_ = nullptr;
  other.storage_.clear();
  other.alloc_id_ = 0;
}

DeviceBuffer& DeviceBuffer::operator=(DeviceBuffer&& other) noexcept {
  if (this != &other) {
    release();
    device_ = other.device_;
    storage_ = std::move(other.storage_);
    label_ = std::move(other.label_);
    alloc_id_ = other.alloc_id_;
    other.device_ = nullptr;
    other.storage_.clear();
    other.alloc_id_ = 0;
  }
  return *this;
}

void DeviceBuffer::release() noexcept {
  if (device_ != nullptr) {
    device_->on_free(alloc_id_, storage_.size());
    device_ = nullptr;
    alloc_id_ = 0;
  }
  storage_.clear();
  storage_.shrink_to_fit();
}

Device::Device(CostModelConfig config, int id) : config_(config), id_(id) {
  streams_.push_back(0.0);  // stream 0
}

Device::~Device() {
  // Destructors cannot throw; surface teardown leaks loudly instead. Checked
  // flows should call audit() explicitly before the device goes away.
  if (!ledger_.empty()) {
    GPUMIP_LOG(Warn) << "device " << id_ << " destroyed with " << ledger_.size()
                     << " leaked block(s); first: "
                     << (ledger_.begin()->second.label.empty() ? "<unlabeled>"
                                                               : ledger_.begin()->second.label);
  }
}

DeviceBuffer Device::alloc(std::size_t bytes, std::string label) {
  if (stats_.allocated_bytes + bytes > config_.memory_bytes) {
    throw DeviceOutOfMemory("device " + std::to_string(id_) + ": request of " +
                            human_bytes(bytes) + " exceeds free " + human_bytes(free_bytes()) +
                            (label.empty() ? "" : " (for " + label + ")"));
  }
  stats_.allocated_bytes += bytes;
  stats_.peak_allocated_bytes = std::max(stats_.peak_allocated_bytes, stats_.allocated_bytes);
  ++stats_.allocations;
  GPUMIP_OBS_COUNT("gpumip.gpu.alloc.calls");
  GPUMIP_OBS_ADD("gpumip.gpu.alloc.bytes", bytes);
  GPUMIP_OBS_GAUGE_MAX("gpumip.gpu.mem.peak_bytes", static_cast<double>(stats_.peak_allocated_bytes));
  const std::uint64_t alloc_id = next_alloc_id_++;
  ledger_.emplace(alloc_id, LedgerEntry{bytes, label});
  return DeviceBuffer(this, bytes, std::move(label), alloc_id);
}

DeviceBuffer Device::alloc_doubles(std::size_t count, std::string label) {
  return alloc(count * sizeof(double), std::move(label));
}

StreamId Device::create_stream() {
  streams_.push_back(clock_);
  return static_cast<StreamId>(streams_.size() - 1);
}

void Device::validate_stream(StreamId stream) const {
  check_arg(stream >= 0 && stream < static_cast<StreamId>(streams_.size()),
            "invalid stream id " + std::to_string(stream));
}

void Device::copy_h2d(StreamId stream, DeviceBuffer& dst, const void* src, std::size_t bytes,
                      std::size_t dst_offset) {
  validate_stream(stream);
  check_arg(dst.valid() && dst.device() == this, "copy_h2d: buffer not on this device");
  check_arg(dst_offset + bytes <= dst.size_bytes(), "copy_h2d: out of range");
  // Zero-byte transfers carry a null host pointer (empty vectors); memcpy
  // with null is UB even for size 0. Still charged below: a real cudaMemcpy
  // of 0 bytes pays the launch latency too.
  if (bytes > 0) std::memcpy(dst.storage_.data() + dst_offset, src, bytes);
  const double duration = transfer_seconds(config_, bytes);
  const double start = std::max(streams_[stream], h2d_engine_);
  const double end = start + duration;
  h2d_engine_ = end;
  streams_[stream] = end;
  stats_.bytes_h2d += bytes;
  ++stats_.transfers_h2d;
  stats_.transfer_seconds += duration;
  GPUMIP_OBS_COUNT("gpumip.gpu.xfer.h2d.calls");
  GPUMIP_OBS_ADD("gpumip.gpu.xfer.h2d.bytes", bytes);
  GPUMIP_TRACE_COMPLETE("gpumip.gpu.h2d", obs::trace::Lane::kH2D, start, duration, bytes);
}

void Device::copy_d2h(StreamId stream, const DeviceBuffer& src, void* dst, std::size_t bytes,
                      std::size_t src_offset) {
  validate_stream(stream);
  check_arg(src.valid() && src.device() == this, "copy_d2h: buffer not on this device");
  check_arg(src_offset + bytes <= src.size_bytes(), "copy_d2h: out of range");
  if (bytes > 0) std::memcpy(dst, src.storage_.data() + src_offset, bytes);
  const double duration = transfer_seconds(config_, bytes);
  const double start = std::max(streams_[stream], d2h_engine_);
  const double end = start + duration;
  d2h_engine_ = end;
  streams_[stream] = end;
  stats_.bytes_d2h += bytes;
  ++stats_.transfers_d2h;
  stats_.transfer_seconds += duration;
  GPUMIP_OBS_COUNT("gpumip.gpu.xfer.d2h.calls");
  GPUMIP_OBS_ADD("gpumip.gpu.xfer.d2h.bytes", bytes);
  GPUMIP_TRACE_COMPLETE("gpumip.gpu.d2h", obs::trace::Lane::kD2H, start, duration, bytes);
}

void Device::upload(StreamId stream, DeviceBuffer& dst, std::span<const double> src,
                    std::size_t dst_offset_doubles) {
  copy_h2d(stream, dst, src.data(), src.size_bytes(), dst_offset_doubles * sizeof(double));
}

void Device::download(StreamId stream, const DeviceBuffer& src, std::span<double> dst,
                      std::size_t src_offset_doubles) {
  copy_d2h(stream, src, dst.data(), dst.size_bytes(), src_offset_doubles * sizeof(double));
}

double Device::acquire_kernel_slot(double ready, double duration) {
  // Drop slots that end before `ready`: they are free by then.
  while (!slot_ends_.empty() && slot_ends_.top() <= ready) slot_ends_.pop();
  double start = ready;
  if (static_cast<int>(slot_ends_.size()) >= config_.parallel_slots) {
    start = slot_ends_.top();
    slot_ends_.pop();
  }
  slot_ends_.push(start + duration);
  return start;
}

void Device::launch(StreamId stream, const KernelCost& cost, const std::function<void()>& body) {
  validate_stream(stream);
  if (body) body();  // host-side effect happens eagerly
  const double duration = kernel_seconds(config_, cost);
  const double start = acquire_kernel_slot(streams_[stream], duration);
  streams_[stream] = start + duration;
  ++stats_.kernels;
  stats_.kernel_seconds += duration;
  GPUMIP_OBS_COUNT("gpumip.gpu.kernel.launches");
  GPUMIP_OBS_RECORD("gpumip.gpu.kernel.occupancy", cost.occupancy);
  GPUMIP_TRACE_COMPLETE("gpumip.gpu.kernel", obs::trace::Lane::kKernel, start, duration,
                        static_cast<std::uint64_t>(stream));
}

Event Device::record(StreamId stream) {
  validate_stream(stream);
  return Event{streams_[stream]};
}

void Device::wait(StreamId stream, const Event& event) {
  validate_stream(stream);
  streams_[stream] = std::max(streams_[stream], event.ready_time);
}

double Device::synchronize() {
  double frontier = std::max(h2d_engine_, d2h_engine_);
  for (double t : streams_) frontier = std::max(frontier, t);
  clock_ = std::max(clock_, frontier);
  return clock_;
}

double Device::stream_clock(StreamId stream) const {
  validate_stream(stream);
  return streams_[stream];
}

void Device::reset_stats() {
  const auto allocated = stats_.allocated_bytes;
  const auto double_frees = stats_.double_frees;  // correctness flag, not activity
  stats_ = DeviceStats{};
  stats_.allocated_bytes = allocated;
  stats_.peak_allocated_bytes = allocated;
  stats_.double_frees = double_frees;
  clock_ = 0.0;
  h2d_engine_ = d2h_engine_ = 0.0;
  std::fill(streams_.begin(), streams_.end(), 0.0);
  while (!slot_ends_.empty()) slot_ends_.pop();
}

void Device::on_free(std::uint64_t alloc_id, std::size_t bytes) noexcept {
  auto it = ledger_.find(alloc_id);
  if (it == ledger_.end()) {
    // Freeing an id the ledger does not consider live: a double-free (or a
    // free of foreign memory). Recorded, not thrown — this runs inside
    // buffer destructors; audit() reports it.
    ++stats_.double_frees;
    GPUMIP_LOG(Error) << "device " << id_ << ": double free of allocation id " << alloc_id;
    return;
  }
  ledger_.erase(it);
  stats_.allocated_bytes -= bytes;
}

void Device::audit() const {
  check::count_check(check::Subsystem::kLedger);
  std::string what;
  if (!ledger_.empty()) {
    what += std::to_string(ledger_.size()) + " leaked block(s):";
    for (const auto& [alloc_id, entry] : ledger_) {
      what += " [id " + std::to_string(alloc_id) + ", " + human_bytes(entry.bytes) +
              (entry.label.empty() ? "" : ", " + entry.label) + "]";
    }
  }
  if (stats_.double_frees > 0) {
    if (!what.empty()) what += "; ";
    what += std::to_string(stats_.double_frees) + " double free(s) recorded";
  }
  if (!what.empty()) {
    check::count_failure(check::Subsystem::kLedger);
    throw Error(ErrorCode::kInternal,
                "device " + std::to_string(id_) + " memory ledger audit failed: " + what);
  }
}

}  // namespace gpumip::gpu
