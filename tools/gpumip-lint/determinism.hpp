// gpumip-lint determinism analysis: replay determinism (R15) and seed
// plumbing (R16) over the replay-relevant source set.
//
// The repo's signature invariant is bit-identical schedule replay
// (GPUMIP_SCHEDULE_REPLAY): a recorded delivery trace must reproduce the
// exact solve, so nothing on the solve path may consult a source of
// nondeterminism the trace does not capture. R15 flags the three ways
// that invariant silently breaks: wall-clock reads (system_clock /
// steady_clock / high_resolution_clock), unseeded randomness (rand /
// srand / random_device), and iteration over unordered_map/unordered_set
// — whose order varies across libc++ versions, ASLR runs, and platforms,
// and leaks into any report, trace, or decision derived from the walk.
// R16 closes the remaining gap: every RNG engine (std::mt19937 family,
// the repo's Rng wrapper) must be constructed from an explicit seed
// expression traceable to GPUMIP_SCHEDULE_SEED/options — a
// default-constructed engine is reproducible only by accident of the
// implementation's default seed and invisible to the replay harness.
//
// Both rules apply inside Options::determinism_scope (path prefixes,
// default "src/": the whole solve is replay-relevant) and share the
// `determinism-ok` inline waiver — e.g. the host-lane wall timer keeps
// its steady_clock with a justification, because its readings feed
// reports, never the sim lane.
#pragma once

#include <vector>

#include "lexer.hpp"
#include "lint.hpp"

namespace gpumip::lint {

/// Runs R15 + R16 over the scanned set, restricted to files inside
/// `options.determinism_scope`.
void check_determinism(const std::vector<Scanned>& files, const Options& options,
                       std::vector<Finding>& findings);

}  // namespace gpumip::lint
