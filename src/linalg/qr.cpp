#include "linalg/qr.hpp"

#include <cmath>

#include "linalg/blas.hpp"

namespace gpumip::linalg {

HouseholderQR::HouseholderQR(const Matrix& a) : qr_(a) {
  const int m = a.rows();
  const int n = a.cols();
  check_arg(m >= n, "HouseholderQR requires rows >= cols");
  tau_.resize(static_cast<std::size_t>(n), 0.0);
  for (int k = 0; k < n; ++k) {
    // Build the Householder reflector for column k.
    double norm = 0.0;
    for (int i = k; i < m; ++i) norm += qr_(i, k) * qr_(i, k);
    norm = std::sqrt(norm);
    if (norm == 0.0) {
      qr_ = Matrix();
      throw NumericalError("QR: rank-deficient at column " + std::to_string(k));
    }
    const double alpha = qr_(k, k) >= 0 ? -norm : norm;
    const double v0 = qr_(k, k) - alpha;
    // v = (v0, a_{k+1..m-1,k}); H = I - tau v vᵀ with tau = -v0/alpha... use
    // the standard normalization v := v / v0, tau = -v0 / alpha.
    for (int i = k + 1; i < m; ++i) qr_(i, k) /= v0;
    tau_[static_cast<std::size_t>(k)] = -v0 / alpha;
    qr_(k, k) = alpha;  // R diagonal entry
    // Apply H to remaining columns.
    for (int j = k + 1; j < n; ++j) {
      double s = qr_(k, j);
      for (int i = k + 1; i < m; ++i) s += qr_(i, k) * qr_(i, j);
      s *= tau_[static_cast<std::size_t>(k)];
      qr_(k, j) -= s;
      for (int i = k + 1; i < m; ++i) qr_(i, j) -= s * qr_(i, k);
    }
  }
}

void HouseholderQR::apply_qt(std::span<double> v) const {
  check_arg(valid(), "QR::apply_qt on empty factorization");
  const int m = rows();
  const int n = cols();
  check_arg(static_cast<int>(v.size()) == m, "QR::apply_qt size mismatch");
  for (int k = 0; k < n; ++k) {
    double s = v[static_cast<std::size_t>(k)];
    for (int i = k + 1; i < m; ++i) s += qr_(i, k) * v[static_cast<std::size_t>(i)];
    s *= tau_[static_cast<std::size_t>(k)];
    v[static_cast<std::size_t>(k)] -= s;
    for (int i = k + 1; i < m; ++i) v[static_cast<std::size_t>(i)] -= s * qr_(i, k);
  }
}

Vector HouseholderQR::solve(std::span<const double> b) const {
  check_arg(valid(), "QR::solve on empty factorization");
  const int m = rows();
  const int n = cols();
  check_arg(static_cast<int>(b.size()) == m, "QR::solve size mismatch");
  Vector work(b.begin(), b.end());
  apply_qt(work);
  Vector x(static_cast<std::size_t>(n));
  for (int i = n - 1; i >= 0; --i) {
    double sum = work[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < n; ++j) sum -= qr_(i, j) * x[static_cast<std::size_t>(j)];
    const double d = qr_(i, i);
    if (d == 0.0) throw NumericalError("QR::solve: zero diagonal in R");
    x[static_cast<std::size_t>(i)] = sum / d;
  }
  return x;
}

Matrix HouseholderQR::r() const {
  check_arg(valid(), "QR::r on empty factorization");
  const int n = cols();
  Matrix out(n, n);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i <= j; ++i) out(i, j) = qr_(i, j);
  }
  return out;
}

}  // namespace gpumip::linalg
