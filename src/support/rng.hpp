// Deterministic random number generation.
//
// All stochastic components of gpumip (instance generators, randomized
// heuristics) draw from Rng so that a run is fully reproducible from a seed.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "support/error.hpp"

namespace gpumip {

/// Seeded pseudo-random source; a thin, testable wrapper over mt19937_64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi). Requires lo < hi.
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Normal variate.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli draw with probability p of true.
  bool flip(double p = 0.5);

  /// Uniformly chosen index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::swap(values[i - 1], values[index(i)]);
    }
  }

  /// Random permutation of 0..n-1.
  std::vector<int> permutation(int n);

  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace gpumip
