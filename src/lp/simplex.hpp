// Revised bounded-variable simplex with an explicit dense basis inverse
// maintained by product-form (eta) rank-1 updates and periodic
// refactorization — the exterior-point engine of the paper's sections 4.3
// and 5.1. Includes:
//
//  * primal simplex with a phase-1 of artificial variables (cold start or
//    warm start from a basis),
//  * dual simplex for re-solving after bound changes (the warm-start path
//    a branch-and-bound child takes, section 5.3),
//  * Dantzig pricing with Bland's-rule fallback for anti-cycling,
//  * bound flips for ranged variables,
//  * full operation accounting (LpOpStats) so strategies can charge the
//    work to a simulated GPU or CPU timeline.
//
// The explicit dense B⁻¹ mirrors how a GPU implementation would hold the
// basis inverse device-resident and update it with uniform m x m kernels
// (cf. the modified-product-form-of-inverse GPU simplex line of work the
// paper cites).
#pragma once

#include <optional>

#include "lp/result.hpp"
#include "lp/standard_form.hpp"

namespace gpumip::lp {

struct SimplexOptions {
  double tol = 1e-7;            ///< primal/dual feasibility tolerance
  double pivot_tol = 1e-9;      ///< smallest acceptable pivot magnitude
  long max_iterations = 50000;
  int refactor_interval = 64;   ///< eta updates between refactorizations
  int bland_threshold = 80;     ///< degenerate pivots before Bland's rule
};

class SimplexSolver {
 public:
  explicit SimplexSolver(const StandardForm& form, SimplexOptions options = {});

  /// Primal solve under the given variable bounds (sizes = form.num_vars).
  /// A warm basis is used when it is primal feasible under the bounds;
  /// otherwise a cold phase-1 start runs.
  [[nodiscard]] LpResult solve(std::span<const double> lb, std::span<const double> ub,
                 const Basis* warm = nullptr);

  /// Solve with the form's own bounds.
  [[nodiscard]] LpResult solve_default() { return solve(form_->lb, form_->ub, nullptr); }

  /// Dual-simplex re-solve from a basis that is dual feasible (typically a
  /// parent's optimal basis after branching tightened some bounds). Falls
  /// back to a primal cold start if the basis is not usable.
  [[nodiscard]] LpResult resolve_dual(std::span<const double> lb, std::span<const double> ub,
                        const Basis& basis);

  const SimplexOptions& options() const noexcept { return options_; }

 private:
  // ---- shared state for one solve ----
  struct Workspace;
  enum class PhaseResult { Optimal, Unbounded, IterationLimit, Singular };

  void init_workspace(Workspace& ws, std::span<const double> lb,
                      std::span<const double> ub) const;
  /// Rebuilds the basis matrix B from the current basic set (checked-mode
  /// residual validation and refactorization share this).
  linalg::Matrix basis_matrix(const Workspace& ws) const;
  bool try_warm_start(Workspace& ws, const Basis& warm) const;
  void cold_start(Workspace& ws) const;
  void refactorize(Workspace& ws) const;
  void recompute_basic_values(Workspace& ws) const;
  /// Both return references into Workspace scratch (ftran_w / dual_y) so
  /// the per-pivot path stays allocation-free; each call overwrites the
  /// previous result for its buffer.
  const linalg::Vector& ftran_column(Workspace& ws, int var) const;
  const linalg::Vector& compute_duals(Workspace& ws, const linalg::Vector& cost) const;
  double reduced_cost(const Workspace& ws, const linalg::Vector& y,
                      const linalg::Vector& cost, int var) const;
  PhaseResult primal_loop(Workspace& ws, const linalg::Vector& cost, bool phase_one);
  LpResult finish(Workspace& ws, LpStatus status) const;
  LpResult run_primal(std::span<const double> lb, std::span<const double> ub,
                      const Basis* warm);

  const StandardForm* form_;
  SimplexOptions options_;
};

}  // namespace gpumip::lp
