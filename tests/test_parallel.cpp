#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "obs/metrics.hpp"
#include "parallel/simmpi.hpp"
#include "parallel/strategies.hpp"
#include "parallel/supervisor.hpp"
#include "problems/generators.hpp"

namespace gpumip::parallel {
namespace {

using problems::RandomMipConfig;

TEST(SimMpi, PingPong) {
  RunReport report = run_ranks(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      ByteWriter w;
      w.write<int>(42);
      comm.send(1, 7, std::move(w).take());
      Message reply = comm.recv(1, 8);
      ByteReader r(reply.payload);
      EXPECT_EQ(r.read<int>(), 43);
    } else {
      Message msg = comm.recv(0, 7);
      ByteReader r(msg.payload);
      ByteWriter w;
      w.write<int>(r.read<int>() + 1);
      comm.send(0, 8, std::move(w).take());
    }
  });
  EXPECT_EQ(report.network.messages, 2u);
  EXPECT_GT(report.makespan, 0.0);  // two wire latencies at least
}

TEST(SimMpi, MoveSendDeliversIdenticalPayload) {
  // The zero-copy overload must be wire-identical to the span overload:
  // same bytes delivered, same traffic accounting.
  RunReport report = run_ranks(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<std::byte> owned(64);
      for (std::size_t i = 0; i < owned.size(); ++i) owned[i] = static_cast<std::byte>(i);
      const std::vector<std::byte> kept = owned;  // lvalue -> span (copy) path
      comm.send(1, 1, std::move(owned));          // rvalue -> move path
      comm.send(1, 2, kept);
      comm.send(1, 3, std::span<const std::byte>{});  // explicit empty payload
    } else {
      const Message moved = comm.recv(0, 1);
      const Message copied = comm.recv(0, 2);
      const Message empty = comm.recv(0, 3);
      ASSERT_EQ(moved.payload.size(), 64u);
      EXPECT_EQ(moved.payload, copied.payload);
      EXPECT_TRUE(empty.payload.empty());
    }
  });
  EXPECT_EQ(report.network.messages, 3u);
  EXPECT_EQ(report.network.bytes, 128u);
}

TEST(SimMpi, MessageClocksPropagate) {
  // Receiver's clock must jump to at least sender's clock + wire time.
  RunReport report = run_ranks(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.advance(1.0);  // sender does 1s of work first
      comm.send(1, 0, std::span<const std::byte>{});
    } else {
      comm.recv(0, 0);
      EXPECT_GE(comm.now(), 1.0);
    }
  });
  EXPECT_GE(report.makespan, 1.0);
}

TEST(SimMpi, TaggedAndWildcardReceive) {
  run_ranks(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 5, std::span<const std::byte>{});
      comm.send(1, 6, std::span<const std::byte>{});
    } else {
      // Receive out of order by tag.
      Message m6 = comm.recv(0, 6);
      EXPECT_EQ(m6.tag, 6);
      Message any = comm.recv();
      EXPECT_EQ(any.tag, 5);
    }
  });
}

TEST(SimMpi, TryRecvNonBlocking) {
  run_ranks(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      Message out;
      EXPECT_FALSE(comm.try_recv(out, 1, 99));
      comm.send(1, 1, std::span<const std::byte>{});
      Message confirm = comm.recv(1, 2);
      EXPECT_TRUE(comm.try_recv(out, 1, 3) || true);  // may or may not have arrived
    } else {
      comm.recv(0, 1);
      comm.send(0, 2, std::span<const std::byte>{});
      comm.send(0, 3, std::span<const std::byte>{});
    }
  });
}

TEST(SimMpi, BarrierAlignsClocks) {
  RunReport report = run_ranks(3, [](Comm& comm) {
    comm.advance(comm.rank() * 1.0);  // ranks at 0s, 1s, 2s
    comm.barrier();
    EXPECT_GE(comm.now(), 2.0);
  });
  EXPECT_GE(report.makespan, 2.0);
}

TEST(SimMpi, RankExceptionPropagates) {
  EXPECT_THROW(run_ranks(2,
                         [](Comm& comm) {
                           if (comm.rank() == 1) {
                             throw Error(ErrorCode::kInternal, "worker crash");
                           }
                         }),
               Error);
}

TEST(SimMpi, SerializationRoundTrip) {
  ByteWriter w;
  w.write<double>(3.25);
  w.write_doubles(std::vector<double>{1, 2, 3});
  w.write_ints(std::vector<int>{7, 8});
  const std::vector<std::byte> bytes = std::move(w).take();
  ByteReader r(bytes);
  EXPECT_DOUBLE_EQ(r.read<double>(), 3.25);
  EXPECT_EQ(r.read_doubles(), (std::vector<double>{1, 2, 3}));
  EXPECT_EQ(r.read_ints(), (std::vector<int>{7, 8}));
  EXPECT_TRUE(r.exhausted());
  ByteReader bad(bytes);
  bad.read<double>();
  bad.read_doubles();
  bad.read_ints();
  EXPECT_THROW(bad.read<double>(), Error);
}

namespace {

// A representative wire payload: the same field mix the supervisor's
// subproblem/report messages use (scalars + counted arrays).
std::vector<std::byte> fuzz_payload() {
  ByteWriter w;
  w.write<std::uint64_t>(42);
  w.write<double>(-1.5);
  w.write<int>(7);
  w.write_doubles(std::vector<double>{0.5, 1.5, 2.5});
  w.write_ints(std::vector<int>{3, 1, 4, 1, 5});
  return std::move(w).take();
}

// Decodes the fuzz_payload field sequence and enforces full consumption,
// mirroring how decode_subproblem/decode_report end with check_protocol.
void decode_all(std::span<const std::byte> bytes) {
  ByteReader r(bytes);
  (void)r.read<std::uint64_t>();
  (void)r.read<double>();
  (void)r.read<int>();
  (void)r.read_doubles();
  (void)r.read_ints();
  check_protocol(r.exhausted(), "decode_all: trailing bytes after payload");
}

}  // namespace

TEST(SimMpi, TruncatedPayloadRaisesProtocolError) {
  // Every strict prefix of a valid payload must fail decoding with the
  // typed wire error -- never an unchecked read past the buffer.
  const std::vector<std::byte> bytes = fuzz_payload();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    try {
      decode_all(std::span<const std::byte>(bytes.data(), len));
      FAIL() << "decode succeeded on a " << len << "-byte prefix of "
             << bytes.size() << " bytes";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kProtocolError) << "prefix length " << len;
    }
  }
}

TEST(SimMpi, OverlongPayloadRaisesProtocolError) {
  // Trailing garbage after a well-formed payload must trip the
  // exhausted() check, not be silently ignored (version-skew detector).
  std::vector<std::byte> bytes = fuzz_payload();
  bytes.push_back(std::byte{0xAB});
  try {
    decode_all(bytes);
    FAIL() << "decode accepted trailing bytes";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kProtocolError);
  }
}

TEST(SimMpi, CorruptCountHeaderRaisesProtocolError) {
  // A count header of 2^61 makes `count * sizeof(double)` wrap to 8 in
  // u64 arithmetic; the overflow-safe bound check must still reject it
  // with the typed error instead of attempting a huge allocation.
  ByteWriter w;
  w.write<std::uint64_t>((std::uint64_t{1} << 61) + 1);
  w.write<double>(0.0);
  const std::vector<std::byte> bytes = std::move(w).take();
  ByteReader r(bytes);
  try {
    (void)r.read_doubles();
    FAIL() << "read_doubles accepted an impossible count header";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kProtocolError);
  }

  ByteWriter wi;
  wi.write<std::uint64_t>((std::uint64_t{1} << 62) + 3);
  wi.write<int>(0);
  const std::vector<std::byte> ibytes = std::move(wi).take();
  ByteReader ri(ibytes);
  try {
    (void)ri.read_ints();
    FAIL() << "read_ints accepted an impossible count header";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kProtocolError);
  }
}

TEST(SimMpi, MutationFuzzOnlyRaisesTypedErrors) {
  // Seeded byte-flip fuzzing: whatever a corrupted payload decodes to,
  // the only acceptable failure mode is the typed protocol error. Any
  // other exception (std::length_error from a wild vector size, ASan
  // aborts from reads past the span) is a decoder bug.
  const std::vector<std::byte> original = fuzz_payload();
  Rng rng(0xFACEu);
  int typed_failures = 0;
  for (int trial = 0; trial < 512; ++trial) {
    std::vector<std::byte> bytes = original;
    const int flips = 1 + static_cast<int>(rng.index(4));
    for (int f = 0; f < flips; ++f) {
      const std::size_t at = rng.index(bytes.size());
      bytes[at] = static_cast<std::byte>(rng.index(256));
    }
    try {
      decode_all(bytes);
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kProtocolError) << "trial " << trial;
      ++typed_failures;
    }
  }
  // The count headers are easy to corrupt, so a healthy fraction of
  // trials must have exercised the failure path.
  EXPECT_GT(typed_failures, 0);
}

// ---------------- supervisor-worker ----------------

mip::MipModel test_mip(std::uint64_t seed, int rows = 10, int cols = 18) {
  Rng rng(seed);
  RandomMipConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  cfg.bound = 4.0;
  return problems::random_mip(cfg, rng);
}

TEST(Supervisor, MatchesSequentialOptimum) {
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    mip::MipModel m = test_mip(seed);
    mip::MipOptions seq_opts;
    seq_opts.enable_cuts = false;
    mip::MipResult sequential = mip::BnbSolver(m, seq_opts).solve();
    ASSERT_EQ(sequential.status, mip::MipStatus::Optimal);

    SupervisorOptions opts;
    opts.workers = 3;
    opts.worker_node_budget = 30;
    opts.ramp_up_nodes = 10;
    opts.mip.enable_cuts = false;
    SupervisorResult parallel = solve_supervised(m, opts);
    ASSERT_EQ(parallel.result.status, mip::MipStatus::Optimal) << "seed " << seed;
    EXPECT_NEAR(parallel.result.objective, sequential.objective, 1e-6) << "seed " << seed;
  }
}

TEST(Supervisor, SolvedEntirelyInRampUp) {
  mip::MipModel m = test_mip(44, 5, 6);
  SupervisorOptions opts;
  opts.workers = 2;
  opts.ramp_up_nodes = 100000;  // ramp-up alone finishes the search
  opts.mip.enable_cuts = false;
  SupervisorResult r = solve_supervised(m, opts);
  EXPECT_EQ(r.result.status, mip::MipStatus::Optimal);
  EXPECT_EQ(r.subproblems_dispatched, 0);
}

TEST(Supervisor, LoadIsDistributed) {
  mip::MipModel m = test_mip(55, 14, 26);
  SupervisorOptions opts;
  opts.workers = 4;
  opts.worker_node_budget = 8;  // force many round trips
  opts.ramp_up_nodes = 12;
  opts.mip.enable_cuts = false;
  SupervisorResult r = solve_supervised(m, opts);
  ASSERT_EQ(r.result.status, mip::MipStatus::Optimal);
  int busy_workers = 0;
  for (long nodes : r.worker_nodes) busy_workers += nodes > 0 ? 1 : 0;
  EXPECT_GE(busy_workers, 2) << "work never spread beyond one worker";
  EXPECT_GT(r.network.messages, 8u);
}

// ROADMAP item 4: per-node LP solves inside run_supervised go through a
// per-worker DeviceArena. With the arena, device allocations are bounded
// by slab growth; naive mode pays one Device::alloc per evaluated node.
TEST(Supervisor, WorkerArenaCutsPerNodeDeviceAllocs) {
  mip::MipModel m = test_mip(77, 14, 26);
  SupervisorOptions opts;
  opts.workers = 3;
  opts.worker_node_budget = 8;
  opts.ramp_up_nodes = 12;
  opts.mip.enable_cuts = false;
  opts.model_worker_device = true;

  auto alloc_calls = [] {
    return obs::kObsEnabled ? obs::counter("gpumip.gpu.alloc.calls").value() : 0;
  };

  const std::uint64_t before_naive = alloc_calls();
  opts.worker_arena = false;
  SupervisorResult naive = solve_supervised(m, opts);
  ASSERT_EQ(naive.result.status, mip::MipStatus::Optimal);
  const std::uint64_t naive_allocs = alloc_calls() - before_naive;

  const std::uint64_t before_arena = alloc_calls();
  opts.worker_arena = true;
  SupervisorResult arena = solve_supervised(m, opts);
  ASSERT_EQ(arena.result.status, mip::MipStatus::Optimal);
  const std::uint64_t arena_allocs = alloc_calls() - before_arena;

  // Residency modeling must not change the answer.
  EXPECT_NEAR(arena.result.objective, naive.result.objective, 1e-9);

  long worker_nodes = 0;
  for (long nodes : naive.worker_nodes) worker_nodes += nodes;
  ASSERT_GT(worker_nodes, 0) << "fixture too small: no work reached the workers";

  if (obs::kObsEnabled) {
    // Naive mode: at least one device alloc per worker-evaluated node.
    EXPECT_GE(naive_allocs, static_cast<std::uint64_t>(worker_nodes));
    // Arena mode: allocations are slab growth only — far below node count.
    EXPECT_LT(arena_allocs, naive_allocs / 2);
  }
}

TEST(Supervisor, CheckpointAndResume) {
  mip::MipModel m = test_mip(66, 12, 22);
  mip::MipOptions seq_opts;
  seq_opts.enable_cuts = false;
  mip::MipResult sequential = mip::BnbSolver(m, seq_opts).solve();

  std::vector<mip::ConsistentSnapshot> checkpoints;
  SupervisorOptions opts;
  opts.workers = 3;
  opts.worker_node_budget = 10;
  opts.ramp_up_nodes = 8;
  opts.mip.enable_cuts = false;
  opts.checkpoint_interval = 2;
  opts.on_checkpoint = [&](const mip::ConsistentSnapshot& snap) { checkpoints.push_back(snap); };
  SupervisorResult first = solve_supervised(m, opts);
  ASSERT_EQ(first.result.status, mip::MipStatus::Optimal);

  if (!checkpoints.empty()) {
    // Resume from an early checkpoint; same optimum must come out.
    SupervisorOptions resume_opts = opts;
    resume_opts.checkpoint_interval = 0;
    SupervisorResult resumed = resume_supervised(m, checkpoints.front(), resume_opts);
    if (resumed.result.has_solution) {
      EXPECT_NEAR(resumed.result.objective, sequential.objective, 1e-6);
    } else {
      // The checkpoint's incumbent was already optimal; the resumed run
      // only proves no better solution exists.
      EXPECT_TRUE(checkpoints.front().has_incumbent());
    }
  }
}

TEST(Supervisor, MoreWorkersNoWorseMakespan) {
  mip::MipModel m = test_mip(77, 14, 24);
  auto run_with = [&](int workers) {
    SupervisorOptions opts;
    opts.workers = workers;
    opts.worker_node_budget = 6;
    opts.ramp_up_nodes = 16;
    opts.mip.enable_cuts = false;
    return solve_supervised(m, opts);
  };
  SupervisorResult one = run_with(1);
  SupervisorResult four = run_with(4);
  ASSERT_EQ(one.result.status, mip::MipStatus::Optimal);
  ASSERT_EQ(four.result.status, mip::MipStatus::Optimal);
  EXPECT_NEAR(one.result.objective, four.result.objective, 1e-6);
  // Parallelism should help (generous 20% slack: dispatch order differs).
  EXPECT_LT(four.makespan, one.makespan * 1.2);
}

// ---------------- strategies ----------------

TEST(Strategies, AllFourReachTheSameOptimum) {
  mip::MipModel m = test_mip(88, 10, 16);
  StrategyConfig cfg;
  cfg.mip.enable_cuts = false;
  double reference = 0.0;
  bool first = true;
  for (Strategy s : {Strategy::S1_GpuOnly, Strategy::S2_CpuOrchestrated, Strategy::S3_Hybrid,
                     Strategy::S4_BigMip}) {
    StrategyReport r = run_strategy(s, m, cfg);
    ASSERT_EQ(r.result.status, mip::MipStatus::Optimal) << strategy_name(s);
    EXPECT_TRUE(r.completed) << strategy_name(s) << ": " << r.failure;
    if (first) {
      reference = r.result.objective;
      first = false;
    } else {
      EXPECT_NEAR(r.result.objective, reference, 1e-6) << strategy_name(s);
    }
    EXPECT_GT(r.sim_seconds, 0.0) << strategy_name(s);
  }
}

TEST(Strategies, HybridNoSlowerThanCpuOrchestrated) {
  mip::MipModel m = test_mip(99, 12, 20);
  StrategyConfig cfg;
  cfg.mip.enable_cuts = false;
  StrategyReport s2 = run_strategy(Strategy::S2_CpuOrchestrated, m, cfg);
  StrategyReport s3 = run_strategy(Strategy::S3_Hybrid, m, cfg);
  ASSERT_TRUE(s2.completed);
  ASSERT_TRUE(s3.completed);
  EXPECT_LE(s3.sim_seconds, s2.sim_seconds + 1e-12);
}

TEST(Strategies, S1FailsWhenTreeExceedsDeviceMemory) {
  mip::MipModel m = test_mip(111, 14, 26);
  const lp::StandardForm form = lp::build_standard_form(m.lp());
  StrategyConfig cfg;
  cfg.mip.enable_cuts = false;
  // Room for the LP matrix plus only a couple of tree nodes.
  cfg.device.memory_bytes = lp_device_footprint(form) + 1024;
  StrategyReport s1 = run_strategy(Strategy::S1_GpuOnly, m, cfg);
  EXPECT_FALSE(s1.completed);
  EXPECT_NE(s1.failure.find("OutOfDeviceMemory"), std::string::npos);
  // The search itself (host replay) still certified the optimum.
  EXPECT_EQ(s1.result.status, mip::MipStatus::Optimal);
  // S2 keeps the tree host-side and fits the same device fine.
  StrategyReport s2 = run_strategy(Strategy::S2_CpuOrchestrated, m, cfg);
  EXPECT_TRUE(s2.completed) << s2.failure;
}

TEST(Strategies, OnlyBigMipSurvivesHugeMatrix) {
  // Device memory sized so one dense LP matrix does not fit a single
  // device but the column shards + basis do (the paper's Big-MIP
  // scenario). The search is node-capped: memory behaviour, not the
  // optimum, is under test.
  mip::MipModel m = test_mip(122, 24, 48);
  const lp::StandardForm form = lp::build_standard_form(m.lp());
  StrategyConfig cfg;
  cfg.mip.enable_cuts = false;
  cfg.mip.max_nodes = 50;
  cfg.devices = 4;
  cfg.device.memory_bytes = lp_device_footprint(form) * 6 / 10;
  StrategyReport s2 = run_strategy(Strategy::S2_CpuOrchestrated, m, cfg);
  StrategyReport s4 = run_strategy(Strategy::S4_BigMip, m, cfg);
  EXPECT_FALSE(s2.completed);
  EXPECT_TRUE(s4.completed) << s4.failure;
  EXPECT_GT(s4.network_seconds, 0.0);
}

TEST(Strategies, S2TransfersLessOnHotNodes) {
  // GpuLocality node selection -> more hot nodes -> fewer H2D bytes in S2.
  mip::MipModel m = test_mip(133, 12, 22);
  StrategyConfig best_first;
  best_first.mip.enable_cuts = false;
  best_first.mip.node_selection = mip::NodeSelection::BestFirst;
  StrategyConfig locality = best_first;
  locality.mip.node_selection = mip::NodeSelection::GpuLocality;
  StrategyReport a = run_strategy(Strategy::S2_CpuOrchestrated, m, best_first);
  StrategyReport b = run_strategy(Strategy::S2_CpuOrchestrated, m, locality);
  ASSERT_TRUE(a.completed && b.completed);
  EXPECT_NEAR(a.result.objective, b.result.objective, 1e-6);
  const double a_bytes_per_node =
      static_cast<double>(a.bytes_h2d) / std::max<long>(1, a.result.stats.nodes_evaluated);
  const double b_bytes_per_node =
      static_cast<double>(b.bytes_h2d) / std::max<long>(1, b.result.stats.nodes_evaluated);
  EXPECT_LT(b_bytes_per_node, a_bytes_per_node);
}

}  // namespace
}  // namespace gpumip::parallel
