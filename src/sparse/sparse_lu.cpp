#include "sparse/sparse_lu.hpp"

#include <cmath>

namespace gpumip::sparse {

SparseLU::SparseLU(const Csc& a, double pivot_tol) {
  check_arg(a.rows == a.cols, "SparseLU: square matrix required");
  n_ = a.rows;
  l_cols_.resize(static_cast<std::size_t>(n_));
  u_cols_.resize(static_cast<std::size_t>(n_));
  u_diag_.assign(static_cast<std::size_t>(n_), 0.0);
  pivot_row_.assign(static_cast<std::size_t>(n_), -1);
  pinv_.assign(static_cast<std::size_t>(n_), -1);

  std::vector<double> x(static_cast<std::size_t>(n_), 0.0);  // dense work vector by original row
  std::vector<int> touched;

  for (int j = 0; j < n_; ++j) {
    // Scatter A(:, j).
    touched.clear();
    for (int k = a.col_start[static_cast<std::size_t>(j)];
         k < a.col_start[static_cast<std::size_t>(j) + 1]; ++k) {
      const int r = a.row_index[static_cast<std::size_t>(k)];
      x[static_cast<std::size_t>(r)] = a.values[static_cast<std::size_t>(k)];
      touched.push_back(r);
    }
    // Left-looking update: apply previous columns in pivot order. U(k,j) is
    // the value at the pivot row of column k once all updates from columns
    // < k are in; processing k in increasing order guarantees that.
    for (int k = 0; k < j; ++k) {
      const int rk = pivot_row_[static_cast<std::size_t>(k)];
      const double ukj = x[static_cast<std::size_t>(rk)];
      if (ukj == 0.0) continue;
      u_cols_[static_cast<std::size_t>(j)].push_back({k, ukj});
      for (const Entry& e : l_cols_[static_cast<std::size_t>(k)]) {
        if (x[static_cast<std::size_t>(e.index)] == 0.0) touched.push_back(e.index);
        x[static_cast<std::size_t>(e.index)] -= ukj * e.value;
      }
      x[static_cast<std::size_t>(rk)] = 0.0;  // consumed into U
    }
    // Partial pivot among rows not yet pivotal.
    int pivot = -1;
    double pivot_abs = pivot_tol;
    for (int r : touched) {
      if (pinv_[static_cast<std::size_t>(r)] >= 0) continue;
      const double v = std::fabs(x[static_cast<std::size_t>(r)]);
      if (v > pivot_abs) {
        pivot_abs = v;
        pivot = r;
      }
    }
    if (pivot < 0) {
      n_ = 0;
      throw NumericalError("SparseLU: numerically singular at column " + std::to_string(j));
    }
    const double diag = x[static_cast<std::size_t>(pivot)];
    u_diag_[static_cast<std::size_t>(j)] = diag;
    pivot_row_[static_cast<std::size_t>(j)] = pivot;
    pinv_[static_cast<std::size_t>(pivot)] = j;
    x[static_cast<std::size_t>(pivot)] = 0.0;
    // Remaining non-pivotal entries form L(:, j).
    for (int r : touched) {
      const double v = x[static_cast<std::size_t>(r)];
      x[static_cast<std::size_t>(r)] = 0.0;
      if (v == 0.0 || pinv_[static_cast<std::size_t>(r)] >= 0) continue;
      l_cols_[static_cast<std::size_t>(j)].push_back({r, v / diag});
    }
  }
}

linalg::Vector SparseLU::solve(std::span<const double> b) const {
  check_arg(valid(), "SparseLU::solve on empty factorization");
  check_arg(static_cast<int>(b.size()) == n_, "SparseLU::solve: size mismatch");
  // Forward: L y = P b, working in position space.
  linalg::Vector y(static_cast<std::size_t>(n_));
  linalg::Vector bp(b.begin(), b.end());
  for (int k = 0; k < n_; ++k) {
    const double yk = bp[static_cast<std::size_t>(pivot_row_[static_cast<std::size_t>(k)])];
    y[static_cast<std::size_t>(k)] = yk;
    if (yk == 0.0) continue;
    for (const Entry& e : l_cols_[static_cast<std::size_t>(k)]) {
      bp[static_cast<std::size_t>(e.index)] -= e.value * yk;
    }
  }
  // Backward: U x = y. U stored by columns with position-space row indices.
  linalg::Vector x = y;
  for (int j = n_ - 1; j >= 0; --j) {
    const double xj = x[static_cast<std::size_t>(j)] / u_diag_[static_cast<std::size_t>(j)];
    x[static_cast<std::size_t>(j)] = xj;
    if (xj == 0.0) continue;
    for (const Entry& e : u_cols_[static_cast<std::size_t>(j)]) {
      x[static_cast<std::size_t>(e.index)] -= e.value * xj;
    }
  }
  return x;
}

long SparseLU::factor_nnz() const noexcept {
  long nnz = n_;  // diagonals
  for (const auto& col : l_cols_) nnz += static_cast<long>(col.size());
  for (const auto& col : u_cols_) nnz += static_cast<long>(col.size());
  return nnz;
}

}  // namespace gpumip::sparse
