#include "obs/sampler.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/obs.hpp"
#include "support/error.hpp"

namespace gpumip::obs {

namespace {

thread_local Sampler* g_bound_sampler = nullptr;

std::string json_number(double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

const char* kind_name(ColumnKind kind) {
  switch (kind) {
    case ColumnKind::Counter: return "counter";
    case ColumnKind::Gauge: return "gauge";
    case ColumnKind::HistCount: return "hist_count";
    case ColumnKind::HistSum: return "hist_sum";
  }
  return "counter";
}

bool solver_metric(const std::string& name) { return name.rfind("gpumip.", 0) == 0; }

}  // namespace

Sampler::Sampler(SamplerOptions options) : options_(std::move(options)) {
  check_arg(options_.period > 0.0, "sampler: period must be positive");
  const Registry& reg = Registry::instance();
  if (options_.columns.empty()) {
    // Registry-wide default: every solver instrument registered so far.
    // Instruments registered *after* construction are not picked up —
    // construct the sampler after a warmup pass (the benches do).
    for (const std::string& name : reg.counter_names()) {
      if (solver_metric(name)) columns_.push_back({name, ColumnKind::Counter});
    }
    for (const std::string& name : reg.gauge_names()) {
      if (solver_metric(name)) columns_.push_back({name, ColumnKind::Gauge});
    }
    for (const std::string& name : reg.histogram_names()) {
      if (!solver_metric(name)) continue;
      columns_.push_back({name, ColumnKind::HistCount});
      columns_.push_back({name, ColumnKind::HistSum});
    }
  } else {
    // Explicit columns: kind resolved by probing the registry (counter,
    // then gauge, then histogram — a histogram name becomes two columns).
    for (const std::string& name : options_.columns) {
      if (reg.find_gauge(name) != nullptr && reg.find_counter(name) == nullptr) {
        columns_.push_back({name, ColumnKind::Gauge});
      } else if (reg.find_histogram(name) != nullptr && reg.find_counter(name) == nullptr) {
        columns_.push_back({name, ColumnKind::HistCount});
        columns_.push_back({name, ColumnKind::HistSum});
      } else {
        columns_.push_back({name, ColumnKind::Counter});
      }
    }
  }
  snapshot_baseline();
}

double Sampler::read_column(std::size_t i) const {
  const Registry& reg = Registry::instance();
  const SamplerColumn& col = columns_[i];
  switch (col.kind) {
    case ColumnKind::Counter: {
      const Counter* c = reg.find_counter(col.name);
      return c == nullptr ? 0.0 : static_cast<double>(c->value());
    }
    case ColumnKind::Gauge: {
      const Gauge* g = reg.find_gauge(col.name);
      return g == nullptr ? 0.0 : g->value();
    }
    case ColumnKind::HistCount: {
      const Histogram* h = reg.find_histogram(col.name);
      return h == nullptr ? 0.0 : static_cast<double>(h->count());
    }
    case ColumnKind::HistSum: {
      const Histogram* h = reg.find_histogram(col.name);
      return h == nullptr ? 0.0 : h->sum();
    }
  }
  return 0.0;
}

void Sampler::snapshot_baseline() {
  baseline_.resize(columns_.size());
  for (std::size_t i = 0; i < columns_.size(); ++i) baseline_[i] = read_column(i);
}

void Sampler::sample_now(double ts, bool sim_time) {
  if (rows_.size() >= options_.max_samples) {
    ++dropped_;
    GPUMIP_OBS_COUNT("gpumip.obs.sampler.dropped");
    return;
  }
  SampleRow row;
  row.ts = ts;
  row.sim_time = sim_time;
  row.values.resize(columns_.size());
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    const double cur = read_column(i);
    // Gauges are level quantities; everything else is reported as the
    // delta since the previous row.
    row.values[i] = columns_[i].kind == ColumnKind::Gauge ? cur : cur - baseline_[i];
    baseline_[i] = cur;
  }
  rows_.push_back(std::move(row));
  GPUMIP_OBS_COUNT("gpumip.obs.sampler.samples");
}

void Sampler::tick_sim(double sim_now) {
  if (!sim_started_) {
    // First tick anchors the boundary grid at period multiples at or
    // after the current sim time; no row yet (nothing elapsed).
    sim_started_ = true;
    next_due_ = (std::floor(sim_now / options_.period) + 1.0) * options_.period;
    return;
  }
  if (sim_now < next_due_) return;
  // Coalesce: one row stamped at the last boundary this tick crossed.
  const double crossed = std::floor((sim_now - next_due_) / options_.period);
  const double stamp = next_due_ + crossed * options_.period;
  sample_now(stamp, /*sim_time=*/true);
  next_due_ = stamp + options_.period;
}

void Sampler::tick_wall() {
  // gpumip-lint: determinism-ok(wall ticks are the documented non-replay-stable clock domain; rows carry sim=false)
  const auto wall = std::chrono::steady_clock::now().time_since_epoch();
  const double now = std::chrono::duration<double>(wall).count();
  if (!wall_started_) {
    wall_started_ = true;
    wall_epoch_ = now;
    wall_last_ = 0.0;
    return;
  }
  const double t = now - wall_epoch_;
  if (t - wall_last_ < options_.period) return;
  sample_now(t, /*sim_time=*/false);
  wall_last_ = t;
}

std::string Sampler::to_json() const {
  std::ostringstream out;
  out << "{\n  \"schema\": \"gpumip.timeseries.v1\",\n";
  out << "  \"period\": " << json_number(options_.period) << ",\n";
  out << "  \"dropped\": " << dropped_ << ",\n";

  out << "  \"columns\": [";
  bool first = true;
  for (const SamplerColumn& col : columns_) {
    out << (first ? "\n" : ",\n") << "    {\"name\": \"" << json_escape(col.name)
        << "\", \"kind\": \"" << kind_name(col.kind) << "\"}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "],\n";

  out << "  \"rows\": [";
  first = true;
  for (const SampleRow& row : rows_) {
    out << (first ? "\n" : ",\n") << "    {\"ts\": " << json_number(row.ts)
        << ", \"sim\": " << (row.sim_time ? "true" : "false") << ", \"values\": [";
    for (std::size_t i = 0; i < row.values.size(); ++i) {
      if (i != 0) out << ", ";
      out << json_number(row.values[i]);
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "]\n}\n";
  return out.str();
}

void Sampler::export_json(const std::string& path) const {
  const std::string body = to_json();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw Error(ErrorCode::kIoError, "timeseries export: cannot open '" + path + "' for writing");
  }
  out << body;
  out.flush();
  if (!out) {
    throw Error(ErrorCode::kIoError, "timeseries export: write to '" + path + "' failed");
  }
}

std::string Sampler::export_if_requested() const {
  const char* path = std::getenv("GPUMIP_TIMESERIES_OUT");
  if (path == nullptr || *path == '\0') return "";
  export_json(path);
  return path;
}

Sampler::Bind::Bind(Sampler& sampler) noexcept : previous_(g_bound_sampler) {
  g_bound_sampler = &sampler;
}

Sampler::Bind::~Bind() { g_bound_sampler = previous_; }

Sampler* Sampler::bound() noexcept { return g_bound_sampler; }

void Sampler::tick_bound(double sim_now) {
  if (g_bound_sampler != nullptr) g_bound_sampler->tick_sim(sim_now);
}

}  // namespace gpumip::obs
