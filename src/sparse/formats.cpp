#include "sparse/formats.hpp"

#include <algorithm>
#include <cmath>

#include "check/invariants.hpp"
#include "support/assert.hpp"

namespace gpumip::sparse {

namespace {

void validate_triplets(int rows, int cols, const std::vector<Triplet>& triplets) {
  for (const Triplet& t : triplets) {
    check_arg(t.row >= 0 && t.row < rows && t.col >= 0 && t.col < cols,
              "triplet index out of range: (" + std::to_string(t.row) + "," +
                  std::to_string(t.col) + ")");
  }
}

}  // namespace

Csr csr_from_triplets(int rows, int cols, const std::vector<Triplet>& triplets, double drop_tol) {
  check_arg(rows >= 0 && cols >= 0, "csr_from_triplets: negative dimensions");
  validate_triplets(rows, cols, triplets);
  std::vector<Triplet> sorted = triplets;
  std::sort(sorted.begin(), sorted.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });
  Csr out;
  out.rows = rows;
  out.cols = cols;
  out.row_start.assign(static_cast<std::size_t>(rows) + 1, 0);
  std::size_t i = 0;
  for (int r = 0; r < rows; ++r) {
    out.row_start[static_cast<std::size_t>(r)] = static_cast<int>(out.col_index.size());
    while (i < sorted.size() && sorted[i].row == r) {
      const int c = sorted[i].col;
      double sum = 0.0;
      while (i < sorted.size() && sorted[i].row == r && sorted[i].col == c) {
        sum += sorted[i].value;
        ++i;
      }
      if (std::fabs(sum) > drop_tol) {
        out.col_index.push_back(c);
        out.values.push_back(sum);
      }
    }
  }
  out.row_start[static_cast<std::size_t>(rows)] = static_cast<int>(out.col_index.size());
  GPUMIP_VALIDATE(check::check_sparse(out));
  return out;
}

Csc csc_from_triplets(int rows, int cols, const std::vector<Triplet>& triplets, double drop_tol) {
  return csr_to_csc(csr_from_triplets(rows, cols, triplets, drop_tol));
}

Csc csr_to_csc(const Csr& a) {
  Csc out;
  out.rows = a.rows;
  out.cols = a.cols;
  out.col_start.assign(static_cast<std::size_t>(a.cols) + 1, 0);
  out.row_index.resize(static_cast<std::size_t>(a.nnz()));
  out.values.resize(static_cast<std::size_t>(a.nnz()));
  // Counting sort by column.
  for (int c : a.col_index) ++out.col_start[static_cast<std::size_t>(c) + 1];
  for (int c = 0; c < a.cols; ++c) {
    out.col_start[static_cast<std::size_t>(c) + 1] += out.col_start[static_cast<std::size_t>(c)];
  }
  std::vector<int> cursor(out.col_start.begin(), out.col_start.end() - 1);
  for (int r = 0; r < a.rows; ++r) {
    for (int k = a.row_start[static_cast<std::size_t>(r)];
         k < a.row_start[static_cast<std::size_t>(r) + 1]; ++k) {
      const int c = a.col_index[static_cast<std::size_t>(k)];
      const int dst = cursor[static_cast<std::size_t>(c)]++;
      out.row_index[static_cast<std::size_t>(dst)] = r;
      out.values[static_cast<std::size_t>(dst)] = a.values[static_cast<std::size_t>(k)];
    }
  }
  GPUMIP_VALIDATE(check::check_sparse(out));
  return out;
}

Csr csc_to_csr(const Csc& a) {
  Csr out;
  out.rows = a.rows;
  out.cols = a.cols;
  out.row_start.assign(static_cast<std::size_t>(a.rows) + 1, 0);
  out.col_index.resize(static_cast<std::size_t>(a.nnz()));
  out.values.resize(static_cast<std::size_t>(a.nnz()));
  for (int r : a.row_index) ++out.row_start[static_cast<std::size_t>(r) + 1];
  for (int r = 0; r < a.rows; ++r) {
    out.row_start[static_cast<std::size_t>(r) + 1] += out.row_start[static_cast<std::size_t>(r)];
  }
  std::vector<int> cursor(out.row_start.begin(), out.row_start.end() - 1);
  for (int c = 0; c < a.cols; ++c) {
    for (int k = a.col_start[static_cast<std::size_t>(c)];
         k < a.col_start[static_cast<std::size_t>(c) + 1]; ++k) {
      const int r = a.row_index[static_cast<std::size_t>(k)];
      const int dst = cursor[static_cast<std::size_t>(r)]++;
      out.col_index[static_cast<std::size_t>(dst)] = c;
      out.values[static_cast<std::size_t>(dst)] = a.values[static_cast<std::size_t>(k)];
    }
  }
  GPUMIP_VALIDATE(check::check_sparse(out));
  return out;
}

Csr transpose(const Csr& a) {
  const Csc csc = csr_to_csc(a);
  Csr out;
  out.rows = a.cols;
  out.cols = a.rows;
  out.row_start = csc.col_start;
  out.col_index = csc.row_index;
  out.values = csc.values;
  GPUMIP_VALIDATE(check::check_sparse(out));
  return out;
}

linalg::Matrix to_dense(const Csr& a) {
  linalg::Matrix out(a.rows, a.cols);
  for (int r = 0; r < a.rows; ++r) {
    for (int k = a.row_start[static_cast<std::size_t>(r)];
         k < a.row_start[static_cast<std::size_t>(r) + 1]; ++k) {
      out(r, a.col_index[static_cast<std::size_t>(k)]) = a.values[static_cast<std::size_t>(k)];
    }
  }
  return out;
}

linalg::Matrix to_dense(const Csc& a) {
  linalg::Matrix out(a.rows, a.cols);
  for (int c = 0; c < a.cols; ++c) {
    for (int k = a.col_start[static_cast<std::size_t>(c)];
         k < a.col_start[static_cast<std::size_t>(c) + 1]; ++k) {
      out(a.row_index[static_cast<std::size_t>(k)], c) = a.values[static_cast<std::size_t>(k)];
    }
  }
  return out;
}

Csr csr_from_dense(const linalg::Matrix& a, double drop_tol) {
  std::vector<Triplet> triplets;
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) {
      if (std::fabs(a(r, c)) > drop_tol) triplets.push_back({r, c, a(r, c)});
    }
  }
  return csr_from_triplets(a.rows(), a.cols(), triplets);
}

bool approx_equal(const Csr& a, const Csr& b, double tol) {
  if (a.rows != b.rows || a.cols != b.cols) return false;
  return linalg::max_abs_diff(to_dense(a), to_dense(b)) <= tol;
}

linalg::Vector dense_column(const Csc& a, int j) {
  check_arg(j >= 0 && j < a.cols, "dense_column: bad column");
  linalg::Vector out(static_cast<std::size_t>(a.rows), 0.0);
  for (int k = a.col_start[static_cast<std::size_t>(j)];
       k < a.col_start[static_cast<std::size_t>(j) + 1]; ++k) {
    out[static_cast<std::size_t>(a.row_index[static_cast<std::size_t>(k)])] =
        a.values[static_cast<std::size_t>(k)];
  }
  return out;
}

}  // namespace gpumip::sparse
