// Branching-variable selection rules.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace gpumip::mip {

enum class BranchRule {
  MostFractional,  ///< variable with fractional part closest to 1/2
  Pseudocost,      ///< history-based degradation estimates (product score)
  Strong,          ///< trial-solve both children for top candidates
};

const char* branch_rule_name(BranchRule rule) noexcept;

/// Per-variable pseudocost history: average objective degradation per unit
/// of fractionality, separately for the down and up child.
class PseudocostTable {
 public:
  void init(int num_vars, std::span<const double> objective);

  /// Records an observed child degradation.
  void update(int var, bool up, double objective_delta, double fractionality);

  /// Product score (larger = better branching candidate).
  double score(int var, double frac) const;

  long observations(int var) const;

 private:
  std::vector<double> up_sum_, down_sum_;
  std::vector<long> up_count_, down_count_;
  std::vector<double> initial_;  // |c_j| seed before any observation
};

/// Fractional integer variables of a point (indices + fractional parts).
std::vector<std::pair<int, double>> fractional_vars(std::span<const double> x,
                                                    const std::vector<bool>& integer_cols,
                                                    double int_tol);

/// Selects the branching variable, or -1 if x is integral.
/// `strong_probe(var, up)` must return the child LP bound (min form; +inf
/// for infeasible children); only called for rule == Strong.
int select_branch_var(BranchRule rule, std::span<const double> x,
                      const std::vector<bool>& integer_cols, double int_tol,
                      const PseudocostTable* pseudocosts,
                      const std::function<double(int, bool)>& strong_probe,
                      int strong_candidates = 4);

}  // namespace gpumip::mip
