#include "mip/cuts.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/lu.hpp"
#include "obs/obs.hpp"
#include "sparse/ops.hpp"

namespace gpumip::mip {

double Cut::activity(std::span<const double> x) const {
  double sum = 0.0;
  for (const auto& [j, v] : terms) sum += v * x[static_cast<std::size_t>(j)];
  return sum;
}

double Cut::violation(std::span<const double> x) const {
  const double a = activity(x);
  double viol = 0.0;
  if (std::isfinite(lb)) viol = std::max(viol, lb - a);
  if (std::isfinite(ub)) viol = std::max(viol, a - ub);
  return viol;
}

namespace {

double frac(double v) { return v - std::floor(v); }

/// Rebuilds the basis matrix of `result` and returns its LU factorization.
linalg::DenseLU factor_basis(const lp::StandardForm& form, const lp::Basis& basis) {
  const int m = form.num_rows;
  linalg::Matrix b(m, m);
  for (int i = 0; i < m; ++i) {
    const int v = basis.basic[static_cast<std::size_t>(i)];
    const auto& a = form.a_cols;
    for (int e = a.col_start[static_cast<std::size_t>(v)];
         e < a.col_start[static_cast<std::size_t>(v) + 1]; ++e) {
      b(a.row_index[static_cast<std::size_t>(e)], i) = a.values[static_cast<std::size_t>(e)];
    }
  }
  return linalg::DenseLU(b);
}

}  // namespace

std::vector<Cut> gomory_cuts(const MipModel& model, const lp::StandardForm& form,
                             const lp::LpResult& result, const CutOptions& options) {
  std::vector<Cut> cuts;
  if (result.status != lp::LpStatus::Optimal || result.basis.empty()) return cuts;
  const int m = form.num_rows;
  const int n = form.num_vars;
  const int n_struct = form.num_struct;

  // Reject bases that still contain artificials (finish() purges in the
  // normal case; be safe).
  for (int v : result.basis.basic) {
    if (v < 0 || v >= n) return cuts;
  }

  linalg::DenseLU lu;
  try {
    lu = factor_basis(form, result.basis);
  } catch (const NumericalError&) {
    return cuts;
  }

  // Integer flags in standard-form space (slacks are continuous).
  auto is_int_var = [&](int v) {
    return v < n_struct && model.is_integer(v);
  };

  for (int i = 0; i < m && static_cast<int>(cuts.size()) < options.max_cuts; ++i) {
    const int bv = result.basis.basic[static_cast<std::size_t>(i)];
    if (!is_int_var(bv)) continue;
    const double xb = result.x[static_cast<std::size_t>(bv)];
    const double f0 = frac(xb);
    if (f0 < 1e-4 || f0 > 1.0 - 1e-4) continue;

    // Tableau row i over nonbasic variables: rho = B⁻ᵀ e_i.
    linalg::Vector e(static_cast<std::size_t>(m), 0.0);
    e[static_cast<std::size_t>(i)] = 1.0;
    linalg::Vector rho = lu.solve_transpose(e);

    // GMI in the shifted nonbasic space x'_j >= 0:
    //   x_B + Σ ᾱ_j x'_j = x*_B  with ᾱ_j = ±alpha_j by bound side.
    Cut cut;
    cut.lb = f0;
    double shift_constant = 0.0;  // accumulates Σ g_j · (shift terms)
    bool usable = true;
    double max_coef = 0.0;
    for (int v = 0; v < n && usable; ++v) {
      const std::size_t k = static_cast<std::size_t>(v);
      const lp::VarStatus st = result.basis.status.size() > k
                                   ? result.basis.status[k]
                                   : lp::VarStatus::AtLower;
      if (st == lp::VarStatus::Basic) continue;
      const double alpha = sparse::column_dot(form.a_cols, v, rho);
      if (std::fabs(alpha) < 1e-12) continue;
      double abar;
      double bound;
      bool at_lower;
      if (st == lp::VarStatus::AtLower) {
        bound = form.lb[k];
        abar = alpha;
        at_lower = true;
      } else if (st == lp::VarStatus::AtUpper) {
        bound = form.ub[k];
        abar = -alpha;
        at_lower = false;
      } else {
        usable = false;  // free nonbasic with nonzero tableau entry
        break;
      }
      if (!std::isfinite(bound)) {
        usable = false;
        break;
      }
      double g;
      if (is_int_var(v) && std::fabs(bound - std::round(bound)) < 1e-9) {
        const double fj = frac(abar);
        g = fj <= f0 ? fj : f0 * (1.0 - fj) / (1.0 - f0);
      } else {
        g = abar >= 0.0 ? abar : -f0 * abar / (1.0 - f0);
      }
      if (g == 0.0) continue;
      max_coef = std::max(max_coef, std::fabs(g));
      // g · x'_v with x'_v = (x_v - lb) or (ub - x_v). Slack variables get
      // substituted out below; structural variables contribute directly.
      const double sign = at_lower ? 1.0 : -1.0;
      shift_constant += at_lower ? g * bound : -g * bound;  // move to rhs later
      if (v < n_struct) {
        cut.terms.push_back({v, sign * g});
      } else {
        // Slack of some row r: a_r·x + σ s = b_r  =>  s = σ (b_r - a_r·x).
        int row = -1;
        for (int r = 0; r < m; ++r) {
          if (form.slack_of_row[static_cast<std::size_t>(r)] == v) {
            row = r;
            break;
          }
        }
        check_internal(row >= 0, "slack variable without a row");
        // Coefficient of the slack in its row (±1).
        double sigma = 0.0;
        const auto& a = form.a_cols;
        for (int eidx = a.col_start[k]; eidx < a.col_start[k + 1]; ++eidx) {
          if (a.row_index[static_cast<std::size_t>(eidx)] == row) {
            sigma = a.values[static_cast<std::size_t>(eidx)];
          }
        }
        // term: sign*g*s = sign*g*sigma*(b_r - a_r·x_struct)
        const double coef = sign * g * sigma;
        shift_constant -= coef * form.b[static_cast<std::size_t>(row)];
        // subtract coef * a_r·x: walk row r of the ORIGINAL model columns.
        const auto& ar = form.a_rows;
        for (int eidx = ar.row_start[static_cast<std::size_t>(row)];
             eidx < ar.row_start[static_cast<std::size_t>(row) + 1]; ++eidx) {
          const int col = ar.col_index[static_cast<std::size_t>(eidx)];
          if (col >= n_struct) continue;  // the slack itself
          cut.terms.push_back({col, -coef * ar.values[static_cast<std::size_t>(eidx)]});
        }
      }
    }
    if (!usable || max_coef > options.max_coefficient) continue;
    // Merge duplicate terms.
    std::sort(cut.terms.begin(), cut.terms.end());
    std::vector<lp::Term> merged;
    for (const auto& t : cut.terms) {
      if (!merged.empty() && merged.back().first == t.first) {
        merged.back().second += t.second;
      } else {
        merged.push_back(t);
      }
    }
    std::erase_if(merged, [](const lp::Term& t) { return std::fabs(t.second) < 1e-11; });
    cut.terms = std::move(merged);
    // Σ g x' >= f0  with Σ g x' = Σ terms·x - shift-part. The shift part
    // accumulated above: Σ_L g·lb - Σ_U g·ub (x' = ±(x - bound)), and slack
    // substitution constants; so terms·x >= f0 + shift_constant.
    cut.lb = f0 + shift_constant;
    cut.ub = lp::kInf;
    if (cut.terms.empty()) continue;
    if (cut.violation(result.x) < options.min_violation) continue;
    cuts.push_back(std::move(cut));
  }
  GPUMIP_OBS_ADD("gpumip.mip.cuts.gomory", static_cast<std::uint64_t>(cuts.size()));
  return cuts;
}

std::vector<Cut> cover_cuts(const MipModel& model, std::span<const double> x,
                            const CutOptions& options) {
  std::vector<Cut> cuts;
  const sparse::Csr a = model.lp().matrix();
  for (int r = 0; r < model.num_rows() && static_cast<int>(cuts.size()) < options.max_cuts; ++r) {
    const auto& row = model.lp().row(r);
    if (!std::isfinite(row.ub)) continue;
    // Knapsack shape: all entries positive, all variables binary.
    bool knapsack = true;
    std::vector<std::pair<int, double>> items;  // (col, weight)
    for (int k = a.row_start[static_cast<std::size_t>(r)];
         k < a.row_start[static_cast<std::size_t>(r) + 1]; ++k) {
      const int j = a.col_index[static_cast<std::size_t>(k)];
      const double w = a.values[static_cast<std::size_t>(k)];
      const auto& col = model.lp().col(j);
      if (w <= 0 || !model.is_integer(j) || col.lb != 0.0 || col.ub != 1.0) {
        knapsack = false;
        break;
      }
      items.push_back({j, w});
    }
    if (!knapsack || items.size() < 2) continue;
    // Greedy cover: take items by descending LP value until weight > ub.
    std::sort(items.begin(), items.end(), [&](const auto& p, const auto& q) {
      return x[static_cast<std::size_t>(p.first)] > x[static_cast<std::size_t>(q.first)];
    });
    double weight = 0.0;
    std::vector<int> cover;
    for (const auto& [j, w] : items) {
      cover.push_back(j);
      weight += w;
      if (weight > row.ub + 1e-9) break;
    }
    if (weight <= row.ub + 1e-9) continue;  // no cover
    // Cut: Σ_{j in C} x_j <= |C| - 1.
    Cut cut;
    for (int j : cover) cut.terms.push_back({j, 1.0});
    cut.ub = static_cast<double>(cover.size()) - 1.0;
    if (cut.violation(x) < options.min_violation) continue;
    cuts.push_back(std::move(cut));
  }
  GPUMIP_OBS_ADD("gpumip.mip.cuts.cover", static_cast<std::uint64_t>(cuts.size()));
  return cuts;
}

bool CutPool::add(const Cut& cut) {
  // Tolerant comparison that also matches equal infinities (inf - inf is
  // NaN, so a plain fabs test would treat identical one-sided cuts as new).
  auto close = [](double a, double b) { return a == b || std::fabs(a - b) < 1e-9; };
  for (const Cut& existing : cuts_) {
    if (existing.terms.size() != cut.terms.size()) continue;
    bool same = close(existing.lb, cut.lb) && close(existing.ub, cut.ub);
    for (std::size_t i = 0; same && i < cut.terms.size(); ++i) {
      same = existing.terms[i].first == cut.terms[i].first &&
             std::fabs(existing.terms[i].second - cut.terms[i].second) < 1e-9;
    }
    if (same) return false;
  }
  cuts_.push_back(cut);
  return true;
}

}  // namespace gpumip::mip
