// Device-resident dense linear algebra.
//
// DeviceMatrix/DeviceVector own simulated device memory; the dev_* kernels
// compute on that memory directly (the simulator backs device memory with
// host storage) and charge the device's cost model. This is the layer that
// plays the role of cuBLAS/cuSOLVER/MAGMA in the paper's design (section 4):
// GEMV/GEMM/GER, LU factorization, triangular solves, and the eta (PFI)
// basis update as a dense device kernel.
#pragma once

#include <string>
#include <vector>

#include "gpu/device.hpp"
#include "linalg/eta.hpp"
#include "linalg/matrix.hpp"

namespace gpumip::linalg {

/// SIMD occupancy a kernel over `elements` data items can achieve: tiny
/// problems cannot fill a device (paper section 5.5); saturation is reached
/// around 2^17 elements (loosely: 80 SMs x 2048 threads).
double occupancy_for_elements(std::size_t elements);

/// Column-major dense matrix living in (simulated) device memory.
class DeviceMatrix {
 public:
  DeviceMatrix() = default;
  DeviceMatrix(gpu::Device& device, int rows, int cols, std::string label = "devmat");

  /// Allocates and uploads a host matrix (charges H2D transfer).
  static DeviceMatrix upload(gpu::Device& device, gpu::StreamId stream, const Matrix& host,
                             std::string label = "devmat");

  /// Downloads to host (charges D2H transfer).
  Matrix download(gpu::StreamId stream) const;

  /// Overwrites device contents from host (charges H2D).
  void assign(gpu::StreamId stream, const Matrix& host);

  /// Overwrites one column from host data (charges a column-sized H2D).
  void assign_col(gpu::StreamId stream, int col, std::span<const double> values);

  int rows() const noexcept { return rows_; }
  int cols() const noexcept { return cols_; }
  bool valid() const noexcept { return buffer_.valid(); }
  gpu::Device* device() const noexcept { return buffer_.device(); }
  std::size_t size_bytes() const noexcept { return buffer_.size_bytes(); }

  double* data() { return buffer_.as<double>().data(); }
  const double* data() const { return buffer_.as<double>().data(); }
  double& at(int r, int c) { return data()[static_cast<std::size_t>(c) * rows_ + r]; }
  double at(int r, int c) const { return data()[static_cast<std::size_t>(c) * rows_ + r]; }

 private:
  gpu::DeviceBuffer buffer_;
  int rows_ = 0;
  int cols_ = 0;
};

/// Dense vector living in (simulated) device memory.
class DeviceVector {
 public:
  DeviceVector() = default;
  DeviceVector(gpu::Device& device, int n, std::string label = "devvec");
  static DeviceVector upload(gpu::Device& device, gpu::StreamId stream,
                             std::span<const double> host, std::string label = "devvec");
  Vector download(gpu::StreamId stream) const;
  void assign(gpu::StreamId stream, std::span<const double> host);

  int size() const noexcept { return n_; }
  bool valid() const noexcept { return buffer_.valid(); }
  gpu::Device* device() const noexcept { return buffer_.device(); }
  std::span<double> span() { return buffer_.as<double>(); }
  std::span<const double> span() const { return buffer_.as<double>(); }

 private:
  gpu::DeviceBuffer buffer_;
  int n_ = 0;
};

// ---- device kernels (compute + charge) ----

/// y = alpha A x + beta y
void dev_gemv(gpu::StreamId stream, double alpha, const DeviceMatrix& a, const DeviceVector& x,
              double beta, DeviceVector& y);
/// y = alpha Aᵀ x + beta y
void dev_gemv_t(gpu::StreamId stream, double alpha, const DeviceMatrix& a, const DeviceVector& x,
                double beta, DeviceVector& y);
/// C = alpha A B + beta C
void dev_gemm(gpu::StreamId stream, double alpha, const DeviceMatrix& a, const DeviceMatrix& b,
              double beta, DeviceMatrix& c);
/// A += alpha x yᵀ
void dev_ger(gpu::StreamId stream, double alpha, const DeviceVector& x, const DeviceVector& y,
             DeviceMatrix& a);
/// In-place LU with partial pivoting; returns pivot rows. Charges 2/3 n³.
std::vector<int> dev_getrf(gpu::StreamId stream, DeviceMatrix& a);
/// Solves using factors from dev_getrf (in place on device vector b).
void dev_getrs(gpu::StreamId stream, const DeviceMatrix& lu, const std::vector<int>& pivots,
               DeviceVector& b);
/// B⁻¹ := E B⁻¹ — the PFI basis update as one dense device kernel.
void dev_apply_eta(gpu::StreamId stream, const Eta& eta, DeviceMatrix& binv);
/// x := E_k … E_1 x on a device vector.
void dev_apply_eta_vec(gpu::StreamId stream, const Eta& eta, DeviceVector& x);

}  // namespace gpumip::linalg
