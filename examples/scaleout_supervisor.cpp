// UG-style supervisor-worker scale-out (the ParaSCIP coordination pattern
// the paper builds on), with checkpoint/restart: solves a random MIP on a
// simulated rank fleet, writes a consistent snapshot mid-run, and restarts
// from it.
//
//   ./scaleout_supervisor [workers] [seed]
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/gpumip.hpp"
#include "obs/trace.hpp"
#include "support/strings.hpp"

int main(int argc, char** argv) {
  using namespace gpumip;
  const int workers = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 17;

  Rng rng(seed);
  problems::RandomMipConfig cfg;
  cfg.rows = 14;
  cfg.cols = 24;
  cfg.bound = 4.0;
  mip::MipModel model = problems::random_mip(cfg, rng);
  std::printf("model: %d cols (%d integer), %d rows\n", model.num_cols(), model.num_integer(),
              model.num_rows());

  parallel::SupervisorOptions opts;
  opts.workers = workers;
  opts.worker_node_budget = 20;
  opts.ramp_up_nodes = 4 * workers;
  opts.mip.enable_cuts = false;  // resumable runs need a stable formulation
  opts.checkpoint_interval = 4;
  const std::string checkpoint_path = "/tmp/gpumip_checkpoint.snap";
  long checkpoints = 0;
  opts.on_checkpoint = [&](const mip::ConsistentSnapshot& snap) {
    std::ofstream out(checkpoint_path);
    snap.serialize(out);
    ++checkpoints;
  };

  parallel::SupervisorResult run = parallel::solve_supervised(model, opts);
  std::printf("\n[supervisor + %d workers]\n", workers);
  std::printf("  status %s, objective %.4f\n", mip::mip_status_name(run.result.status),
              run.result.objective);
  std::printf("  simulated makespan %s (ramp-up %s)\n", human_seconds(run.makespan).c_str(),
              human_seconds(run.ramp_up_seconds).c_str());
  std::printf("  %ld subproblems dispatched, %llu messages (%s), %ld checkpoints\n",
              run.subproblems_dispatched,
              static_cast<unsigned long long>(run.network.messages),
              human_bytes(run.network.bytes).c_str(), checkpoints);
  std::printf("  load balance (nodes/worker):");
  for (long nodes : run.worker_nodes) std::printf(" %ld", nodes);
  std::printf("\n");

  if (checkpoints > 0) {
    std::ifstream in(checkpoint_path);
    mip::ConsistentSnapshot snap = mip::ConsistentSnapshot::deserialize(in);
    std::printf("\n[restart from checkpoint: %zu frontier nodes, incumbent %s]\n",
                snap.frontier.size(), snap.has_incumbent() ? "yes" : "no");
    parallel::SupervisorOptions resume_opts = opts;
    resume_opts.checkpoint_interval = 0;
    parallel::SupervisorResult resumed = parallel::resume_supervised(model, snap, resume_opts);
    std::printf("  resumed run: status %s, objective %.4f (must match %.4f)\n",
                mip::mip_status_name(resumed.result.status),
                resumed.result.has_solution ? resumed.result.objective : 0.0,
                run.result.objective);
  }
  // GPUMIP_TRACE_OUT=trace.json dumps the per-rank timeline of everything
  // above (open in ui.perfetto.dev; analyze with tools/gpumip-trace).
  const std::string traced = obs::trace::export_if_requested();
  if (!traced.empty()) std::printf("\ntrace written to %s\n", traced.c_str());
  return 0;
}
