// Branch-and-bound tree: node storage, the active set under pluggable
// selection policies, and the tree-anatomy accounting that reproduces the
// paper's Figure 1 (feasible / infeasible / pruned leaves, branched
// interior nodes, active frontier).
#pragma once

#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "lp/basis.hpp"

namespace gpumip::mip {

/// Lifecycle tag of a tree node (Figure 1's labels).
enum class NodeState {
  Active,          ///< in the frontier, not yet evaluated
  Branched,        ///< evaluated, children generated (interior node)
  FeasibleLeaf,    ///< LP solution integral (incumbent candidate)
  InfeasibleLeaf,  ///< LP relaxation infeasible
  PrunedLeaf,      ///< bound no better than incumbent
};

const char* node_state_name(NodeState state) noexcept;

struct BnbNode {
  int id = -1;
  int parent = -1;
  int depth = 0;
  int branch_var = -1;     ///< variable the parent branched on (-1 for root)
  bool branch_up = false;  ///< true: lower bound was raised (ceil side)
  double bound = -1e300;   ///< parent LP objective (min form): lower bound
  linalg::Vector lb, ub;   ///< full standard-form bound vectors of this node
  lp::Basis warm_basis;    ///< parent's optimal basis for warm starting
  /// Parent's primal/dual iterates when the parent was solved by PDHG
  /// (basis-free): the first-order warm-start currency. Empty otherwise.
  linalg::Vector warm_x, warm_y;
  NodeState state = NodeState::Active;
  double lp_objective = 0.0;  ///< set when evaluated
};

/// Node-selection policies (paper section 5.3 argues for a GPU-aware one).
enum class NodeSelection {
  BestFirst,   ///< lowest bound first (default CPU-solver policy)
  DepthFirst,  ///< LIFO dive
  /// Prefer a child of the most recently evaluated node when its bound is
  /// within `locality_slack` of the best bound; otherwise best-first.
  /// Maximizes device-resident matrix/basis reuse between consecutive LP
  /// solves (fewer host<->device transfers and refactorizations).
  GpuLocality,
};

const char* node_selection_name(NodeSelection policy) noexcept;

/// Aggregate tree statistics (the data behind Figure 1).
struct TreeAnatomy {
  long branched = 0;
  long feasible_leaves = 0;
  long infeasible_leaves = 0;
  long pruned_leaves = 0;
  long active_peak = 0;
  int max_depth = 0;
  long total_nodes = 0;

  long leaves() const noexcept { return feasible_leaves + infeasible_leaves + pruned_leaves; }
};

/// Stores every node ever created (for anatomy/rendering) plus the active
/// frontier under a selection policy.
class NodePool {
 public:
  explicit NodePool(NodeSelection policy = NodeSelection::BestFirst,
                    double locality_slack = 0.1);

  /// Adds a node (takes ownership); returns its id. The node becomes active.
  int push(BnbNode node);

  /// Pops the next node to evaluate per the policy. `last_evaluated` is the
  /// id of the node whose LP was just solved (-1 initially); the GpuLocality
  /// policy uses it. `best_known` is the incumbent objective (min form) used
  /// by GpuLocality's slack test. Returns -1 when the frontier is empty.
  int pop(int last_evaluated, double best_known);

  bool active_empty() const noexcept { return active_count_ == 0; }
  std::size_t active_size() const noexcept { return active_count_; }

  /// Lowest bound among active nodes (the global dual bound), min form.
  double best_active_bound() const;

  BnbNode& node(int id) { return nodes_[static_cast<std::size_t>(id)]; }
  const BnbNode& node(int id) const { return nodes_[static_cast<std::size_t>(id)]; }
  int size() const noexcept { return static_cast<int>(nodes_.size()); }

  /// Re-tags a node and maintains anatomy counters.
  void set_state(int id, NodeState state);

  /// Ids of currently active nodes (a consistent snapshot's frontier).
  std::vector<int> active_ids() const;

  /// Removes all active nodes whose bound is >= cutoff (they become
  /// PrunedLeaf); returns how many were pruned.
  long prune_worse_than(double cutoff);

  const TreeAnatomy& anatomy() const noexcept { return anatomy_; }

  /// ASCII rendering of the tree (small trees; Figure 1 reproduction).
  std::string render_ascii(int max_nodes = 200) const;

 private:
  NodeSelection policy_;
  double locality_slack_;
  std::vector<BnbNode> nodes_;
  std::vector<int> active_;  // ids, maintained as needed per policy
  std::size_t active_count_ = 0;
  TreeAnatomy anatomy_;
};

}  // namespace gpumip::mip
