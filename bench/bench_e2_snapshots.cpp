// E2 — consistent snapshots (paper section 2.1, claim C2).
//
// Sequentially, a consistent snapshot is free to define (the active set
// between evaluations); in parallel, in-flight assignments make it
// non-trivial. This bench measures snapshot size/cost along a sequential
// search, verifies resume-equality from every snapshot, and reports the
// supervisor's quiesced-checkpoint behaviour.
#include "bench/common.hpp"
#include "parallel/supervisor.hpp"
#include "problems/generators.hpp"
#include "support/strings.hpp"
#include "support/timer.hpp"

namespace {

using namespace gpumip;

mip::MipModel instance(std::uint64_t seed) {
  Rng rng(seed);
  problems::RandomMipConfig cfg;
  cfg.rows = 12;
  cfg.cols = 20;
  cfg.bound = 4.0;
  return problems::random_mip(cfg, rng);
}

void sequential_snapshots() {
  bench::title("E2-a", "sequential snapshots along the search");
  mip::MipModel model = instance(71);
  std::vector<mip::ConsistentSnapshot> snaps;
  mip::MipOptions opts;
  opts.enable_cuts = false;
  opts.enable_heuristics = false;
  opts.snapshot_interval = 10;
  opts.on_snapshot = [&](const mip::ConsistentSnapshot& s) { snaps.push_back(s); };
  mip::BnbSolver solver(model, opts);
  mip::MipResult full = solver.solve();
  bench::row("  full solve: %s obj=%.4f nodes=%ld, %zu snapshots taken",
             mip::mip_status_name(full.status), full.objective, full.stats.nodes_evaluated,
             snaps.size());
  bench::row("  %-10s %-10s %-12s %-10s", "at-node", "frontier", "bytes", "resume-obj");
  mip::MipOptions resume_opts;
  resume_opts.enable_cuts = false;
  resume_opts.enable_heuristics = false;
  for (std::size_t i = 0; i < snaps.size(); i += std::max<std::size_t>(1, snaps.size() / 6)) {
    const auto& snap = snaps[i];
    const std::string serialized = snap.to_string();
    mip::BnbSolver resumed(model, resume_opts);
    mip::MipResult r = resumed.solve_from(snap);
    bench::row("  %-10ld %-10zu %-12s %-10.4f%s", snap.nodes_solved_so_far,
               snap.frontier.size(), human_bytes(serialized.size()).c_str(),
               r.has_solution ? r.objective : 0.0,
               std::abs(r.objective - full.objective) < 1e-6 ? "" : "  MISMATCH");
  }
  bench::note("expected shape: every snapshot resumes to the same optimum; snapshot bytes");
  bench::note("grow with the frontier, not with nodes already solved.");
}

void parallel_checkpoints() {
  bench::title("E2-b", "parallel (supervisor) checkpoints with in-flight accounting");
  mip::MipModel model = instance(72);
  long checkpoints = 0;
  std::size_t max_frontier = 0;
  parallel::SupervisorOptions opts;
  opts.workers = 4;
  opts.worker_node_budget = 10;
  opts.ramp_up_nodes = 12;
  opts.mip.enable_cuts = false;
  opts.checkpoint_interval = 2;
  opts.on_checkpoint = [&](const mip::ConsistentSnapshot& snap) {
    ++checkpoints;
    max_frontier = std::max(max_frontier, snap.frontier.size());
  };
  parallel::SupervisorResult with = parallel::solve_supervised(model, opts);
  opts.checkpoint_interval = 0;
  opts.on_checkpoint = nullptr;
  parallel::SupervisorResult without = parallel::solve_supervised(model, opts);
  bench::row("  with checkpoints   : obj=%.4f makespan=%s (%ld checkpoints, frontier<=%zu)",
             with.result.objective, human_seconds(with.makespan).c_str(), checkpoints,
             max_frontier);
  bench::row("  without checkpoints: obj=%.4f makespan=%s", without.result.objective,
             human_seconds(without.makespan).c_str());
  bench::note("checkpoints are only emitted at quiesced points (no in-flight subproblem):");
  bench::note("naive snapshots that ignore in-flight work would drop exactly those nodes.");
}

void BM_capture_snapshot(benchmark::State& state) {
  mip::MipModel model = instance(73);
  mip::MipOptions opts;
  opts.enable_cuts = false;
  opts.enable_heuristics = false;
  opts.max_nodes = state.range(0);
  mip::BnbSolver solver(model, opts);
  static_cast<void>(solver.solve());
  for (auto _ : state) {
    mip::ConsistentSnapshot snap = solver.capture_snapshot();
    benchmark::DoNotOptimize(snap.frontier.size());
  }
  state.counters["frontier"] = static_cast<double>(solver.capture_snapshot().frontier.size());
}
BENCHMARK(BM_capture_snapshot)->Arg(10)->Arg(50)->Arg(200)->Unit(benchmark::kMicrosecond);

void BM_serialize_snapshot(benchmark::State& state) {
  mip::MipModel model = instance(74);
  mip::MipOptions opts;
  opts.enable_cuts = false;
  opts.max_nodes = state.range(0);
  mip::BnbSolver solver(model, opts);
  static_cast<void>(solver.solve());
  const mip::ConsistentSnapshot snap = solver.capture_snapshot();
  for (auto _ : state) {
    const std::string s = snap.to_string();
    benchmark::DoNotOptimize(s.size());
  }
}
BENCHMARK(BM_serialize_snapshot)->Arg(50)->Arg(200)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  sequential_snapshots();
  parallel_checkpoints();
  return gpumip::bench::run_benchmarks(argc, argv);
}
