// Permutation flow-shop scheduling — the benchmark problem of the GPU
// branch-and-bound literature the paper surveys (Chakroun et al., Gmys et
// al., Vu & Derbel). Makespan evaluation and the Ignall-Schrage one-machine
// lower bound.
#pragma once

#include <span>
#include <vector>

#include "support/rng.hpp"

namespace gpumip::ivm {

struct FlowshopInstance {
  int machines = 0;
  int jobs = 0;
  /// processing[m * jobs + j]: time of job j on machine m.
  std::vector<double> processing;

  double p(int machine, int job) const {
    return processing[static_cast<std::size_t>(machine) * jobs + job];
  }

  /// Taillard-style uniform random instance.
  static FlowshopInstance random(int machines, int jobs, Rng& rng, double lo = 1.0,
                                 double hi = 99.0);

  /// Makespan of a complete permutation.
  double makespan(std::span<const int> permutation) const;

  /// Lower bound on the makespan of any completion of `prefix` (jobs not in
  /// prefix remain unscheduled). Equal to makespan when prefix is complete.
  double lower_bound(std::span<const int> prefix) const;

  /// NEH-style greedy sequence (a good initial incumbent).
  std::vector<int> greedy_sequence() const;
  /// Makespan of greedy_sequence().
  double greedy_upper_bound() const;
};

}  // namespace gpumip::ivm
