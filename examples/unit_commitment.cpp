// Unit commitment — the power-systems application the paper cites as a
// flagship MIP use case. Generates a fleet/horizon instance, solves it
// under two execution strategies, and contrasts their simulated platform
// behaviour.
//
//   ./unit_commitment [generators] [periods] [seed]
#include <cstdio>
#include <cstdlib>

#include "core/gpumip.hpp"
#include "support/strings.hpp"

int main(int argc, char** argv) {
  using namespace gpumip;
  const int generators = argc > 1 ? std::atoi(argv[1]) : 4;
  const int periods = argc > 2 ? std::atoi(argv[2]) : 6;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;

  Rng rng(seed);
  mip::MipModel model = problems::unit_commitment(generators, periods, rng);
  std::printf("unit commitment: %d generators x %d periods -> %d vars (%d binary), %d rows\n",
              generators, periods, model.num_cols(), model.num_integer(), model.num_rows());

  for (parallel::Strategy strategy :
       {parallel::Strategy::S2_CpuOrchestrated, parallel::Strategy::S3_Hybrid}) {
    SolverOptions opts;
    opts.strategy = strategy;
    Solver solver(opts);
    SolveReport report = solver.solve(model);
    std::printf("\n[%s]\n", parallel::strategy_name(strategy));
    std::printf("  status %s, cost %.2f, %ld nodes, %ld LP iterations\n",
                mip::mip_status_name(report.status), report.objective,
                report.stats.nodes_evaluated, report.stats.lp_iterations);
    std::printf("  simulated %s (device %s, host %s), transfers %s\n",
                human_seconds(report.sim_seconds).c_str(),
                human_seconds(report.device_seconds).c_str(),
                human_seconds(report.host_seconds).c_str(),
                human_bytes(report.bytes_transferred).c_str());
    if (report.has_solution) {
      // Commitment schedule of the first period.
      std::printf("  period-0 commitments:");
      for (int g = 0; g < generators; ++g) {
        // Columns are laid out u/p alternating per (g, t); u[g][0] is at
        // index g * 2 * periods.
        const int u_gt = g * 2 * periods;
        std::printf(" G%d=%s", g, report.x[static_cast<std::size_t>(u_gt)] > 0.5 ? "on" : "off");
      }
      std::printf("\n");
    }
  }
  return 0;
}
