#include "mip/snapshot.hpp"

#include <cstdlib>
#include <iomanip>
#include <sstream>

#include "support/error.hpp"

namespace gpumip::mip {

namespace {

void write_vector(std::ostream& out, const linalg::Vector& v) {
  out << v.size();
  for (double x : v) out << ' ' << x;
  out << '\n';
}

/// Reads one double, accepting "inf"/"-inf"/"nan" tokens (bound vectors
/// routinely contain infinities; istream's num_get rejects them).
double read_double(std::istream& in) {
  std::string token;
  in >> token;
  check_arg(!token.empty(), "snapshot: missing number");
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  check_arg(end != nullptr && *end == '\0', "snapshot: bad number '" + token + "'");
  return value;
}

linalg::Vector read_vector(std::istream& in) {
  std::size_t n = 0;
  in >> n;
  check_arg(in.good() && n < (1u << 26), "snapshot: corrupt vector length");
  linalg::Vector v(n);
  for (double& x : v) x = read_double(in);
  check_arg(!in.fail(), "snapshot: corrupt vector data");
  return v;
}

}  // namespace

void ConsistentSnapshot::serialize(std::ostream& out) const {
  out << std::setprecision(17);
  out << "gpumip-snapshot-v1\n";
  out << incumbent_objective << ' ' << nodes_solved_so_far << '\n';
  write_vector(out, incumbent_x);
  out << frontier.size() << '\n';
  for (const SnapshotNode& node : frontier) {
    out << node.bound << ' ' << node.depth << '\n';
    write_vector(out, node.lb);
    write_vector(out, node.ub);
  }
}

ConsistentSnapshot ConsistentSnapshot::deserialize(std::istream& in) {
  std::string magic;
  in >> magic;
  check_arg(magic == "gpumip-snapshot-v1", "snapshot: bad magic '" + magic + "'");
  ConsistentSnapshot snap;
  snap.incumbent_objective = read_double(in);
  in >> snap.nodes_solved_so_far;
  snap.incumbent_x = read_vector(in);
  std::size_t count = 0;
  in >> count;
  check_arg(in.good() && count < (1u << 24), "snapshot: corrupt frontier count");
  snap.frontier.resize(count);
  for (SnapshotNode& node : snap.frontier) {
    node.bound = read_double(in);
    in >> node.depth;
    node.lb = read_vector(in);
    node.ub = read_vector(in);
  }
  check_arg(!in.fail(), "snapshot: truncated data");
  return snap;
}

std::string ConsistentSnapshot::to_string() const {
  std::ostringstream out;
  serialize(out);
  return out.str();
}

ConsistentSnapshot ConsistentSnapshot::from_string(const std::string& text) {
  std::istringstream in(text);
  return deserialize(in);
}

}  // namespace gpumip::mip
