// Operation accounting for one LP solve, and the chargers that price those
// operations onto a simulated GPU timeline or a CPU time estimate.
//
// The simplex/IPM numerics run on the host; they record *what* linear
// algebra they performed (how many FTRANs of what size, etc.). A charger
// then replays that recipe as device kernel launches (one per logical
// kernel, so launch-latency effects are preserved) or prices it at CPU
// rates. This keeps the numerics engine independent of where the paper's
// strategies decide to run each piece (sections 3, 5).
#pragma once

#include <cstdint>

#include "gpu/device.hpp"

namespace gpumip::lp {

/// Counts of the linear-algebra operations of one LP solve.
struct LpOpStats {
  int m = 0;    ///< basis dimension
  int n = 0;    ///< number of variables
  long nnz = 0; ///< constraint matrix nonzeros

  long ftran = 0;        ///< B⁻¹ a_q applications (dense m x m)
  long btran = 0;        ///< yᵀB⁻¹ applications (dense m x m)
  long price_full = 0;   ///< reduced-cost passes over the matrix (nnz work)
  long eta_updates = 0;  ///< rank-1 PFI updates of B⁻¹ (dense m x m)
  long refactor = 0;     ///< basis refactorizations (LU, 2/3 m³ + inverse m³)
  long iterations = 0;   ///< simplex iterations (or IPM/PDHG iterations)
  long bound_flips = 0;
  long cholesky = 0;     ///< normal-equation factorizations (IPM), m³/3
  long matvec_n = 0;     ///< assorted n-sized vector ops
  long spmv = 0;         ///< matrix-free Ax / Aᵀy passes (PDHG), nnz work each
  long restarts = 0;     ///< PDHG average-iterate restarts

  void add(const LpOpStats& other) {
    ftran += other.ftran;
    btran += other.btran;
    price_full += other.price_full;
    eta_updates += other.eta_updates;
    refactor += other.refactor;
    iterations += other.iterations;
    bound_flips += other.bound_flips;
    cholesky += other.cholesky;
    matvec_n += other.matvec_n;
    spmv += other.spmv;
    restarts += other.restarts;
  }
};

/// Host CPU cost model (effective rates for a beefy multicore host; the
/// paper's CPU-vs-GPU comparisons use the ratio, not the absolute value).
struct CpuCostModel {
  double flops = 60.0e9;          ///< effective dense fp64 rate
  double sparse_flops = 12.0e9;   ///< effective sparse rate (cache-friendlier than GPU's ratio)
  double per_op_overhead = 0.2e-6;
};

/// Seconds the recorded operations take on the host CPU.
double cpu_seconds(const LpOpStats& stats, const CpuCostModel& cpu = {});

/// Adds one finished solve's op recipe to the process-wide obs registry
/// (lp.ops.* counters). No-op when the observability layer is compiled out.
void publish_op_stats(const LpOpStats& stats);

/// Replays the recorded operations as device kernel launches on `stream`
/// (empty bodies; the numerics already ran). `sparse_pricing` selects
/// whether pricing passes are charged at sparse or dense rates.
void charge_to_device(gpu::Device& device, gpu::StreamId stream, const LpOpStats& stats,
                      bool sparse_pricing);

/// Device memory (bytes) the dense-GPU LP backend keeps resident for a
/// standard form of shape (m, n, nnz): dense A (m*n), B⁻¹ (m*m), and
/// work vectors. Used for capacity accounting by the strategies.
std::uint64_t dense_lp_device_bytes(int m, int n);

/// Device memory (bytes) a matrix-free PDHG instance keeps resident: the
/// CSR image (values + column indices + row offsets) and the iterate /
/// average / scratch vectors. No basis inverse, no factorization — this is
/// the footprint argument for batching many instances per device.
std::uint64_t pdhg_lp_device_bytes(int m, int n, long nnz);

}  // namespace gpumip::lp
