#include "parallel/simmpi.hpp"

#include <atomic>
#include <thread>

#include "support/assert.hpp"
#include "support/log.hpp"

namespace gpumip::parallel {

namespace detail {

struct Mailbox {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Message> queue;
};

struct World {
  int size = 0;
  NetworkConfig network;
  std::vector<std::unique_ptr<Mailbox>> mailboxes;
  std::mutex stats_mutex;
  NetworkStats stats;
  /// Set when any rank exits with an exception; blocked recv()/barrier()
  /// calls on the surviving ranks then throw instead of waiting forever for
  /// a peer that will never send (run_ranks rethrows the original error
  /// after the join). Without this, a checked-mode invariant failure inside
  /// one rank would deadlock the whole run.
  std::atomic<bool> aborted{false};

  // Barrier state.
  std::mutex barrier_mutex;
  std::condition_variable barrier_cv;
  int barrier_waiting = 0;
  std::uint64_t barrier_generation = 0;
  double barrier_clock = 0.0;
};

}  // namespace detail

int Comm::size() const noexcept { return world_->size; }

void Comm::send(int dest, int tag, std::span<const std::byte> payload) {
  check_arg(dest >= 0 && dest < world_->size, "send: bad destination rank");
  Message msg;
  msg.source = rank_;
  msg.tag = tag;
  msg.payload.assign(payload.begin(), payload.end());
  msg.send_time = clock_ + world_->network.wire_time(payload.size());
  {
    std::lock_guard<std::mutex> lock(world_->stats_mutex);
    ++world_->stats.messages;
    world_->stats.bytes += payload.size();
  }
  detail::Mailbox& box = *world_->mailboxes[static_cast<std::size_t>(dest)];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.queue.push_back(std::move(msg));
  }
  box.cv.notify_all();
}

namespace {

bool matches(const Message& msg, int source, int tag) {
  return (source < 0 || msg.source == source) && (tag < 0 || msg.tag == tag);
}

}  // namespace

Message Comm::recv(int source, int tag) {
  detail::Mailbox& box = *world_->mailboxes[static_cast<std::size_t>(rank_)];
  std::unique_lock<std::mutex> lock(box.mutex);
  for (;;) {
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if (matches(*it, source, tag)) {
        Message msg = std::move(*it);
        box.queue.erase(it);
        GPUMIP_ASSERT(msg.source >= 0 && msg.source < world_->size,
                      "recv: message from out-of-range rank");
        GPUMIP_ASSERT(msg.send_time >= 0.0, "recv: negative arrival time");
        clock_ = std::max(clock_, msg.send_time);
        return msg;
      }
    }
    if (world_->aborted.load()) {
      throw Error(ErrorCode::kInternal,
                  "rank " + std::to_string(rank_) + ": run aborted by a failure on another rank");
    }
    box.cv.wait(lock);
  }
}

bool Comm::try_recv(Message& out, int source, int tag) {
  detail::Mailbox& box = *world_->mailboxes[static_cast<std::size_t>(rank_)];
  std::lock_guard<std::mutex> lock(box.mutex);
  for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
    if (matches(*it, source, tag)) {
      out = std::move(*it);
      box.queue.erase(it);
      clock_ = std::max(clock_, out.send_time);
      return true;
    }
  }
  return false;
}

void Comm::barrier() {
  std::unique_lock<std::mutex> lock(world_->barrier_mutex);
  world_->barrier_clock = std::max(world_->barrier_clock, clock_);
  const std::uint64_t generation = world_->barrier_generation;
  if (++world_->barrier_waiting == world_->size) {
    world_->barrier_waiting = 0;
    ++world_->barrier_generation;
    world_->barrier_cv.notify_all();
  } else {
    world_->barrier_cv.wait(lock, [&] {
      return world_->barrier_generation != generation || world_->aborted.load();
    });
    if (world_->barrier_generation == generation) {
      throw Error(ErrorCode::kInternal,
                  "rank " + std::to_string(rank_) + ": run aborted by a failure on another rank");
    }
  }
  clock_ = std::max(clock_, world_->barrier_clock + world_->network.latency);
}

RunReport run_ranks(int n, const std::function<void(Comm&)>& body, NetworkConfig network) {
  check_arg(n >= 1, "run_ranks: need at least one rank");
  detail::World world;
  world.size = n;
  world.network = network;
  for (int i = 0; i < n; ++i) world.mailboxes.push_back(std::make_unique<detail::Mailbox>());

  std::vector<double> clocks(static_cast<std::size_t>(n), 0.0);
  std::exception_ptr first_error;
  std::mutex error_mutex;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(&world, r);
      try {
        body(comm);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        // Unblock every rank waiting on this (now dead) one. Notifying under
        // each mailbox mutex closes the check-then-wait race in recv().
        world.aborted.store(true);
        for (auto& box : world.mailboxes) {
          std::lock_guard<std::mutex> box_lock(box->mutex);
          box->cv.notify_all();
        }
        {
          std::lock_guard<std::mutex> barrier_lock(world.barrier_mutex);
          world.barrier_cv.notify_all();
        }
      }
      clocks[static_cast<std::size_t>(r)] = comm.now();
      // Wake everyone so blocked recvs in crashed protocols do not hang the
      // process forever (a rank waiting on a dead peer will still deadlock
      // logically, but error propagation paths get a chance).
      for (auto& box : world.mailboxes) box->cv.notify_all();
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);

  RunReport report;
  report.rank_clocks = clocks;
  for (double c : clocks) report.makespan = std::max(report.makespan, c);
  report.network = world.stats;
  for (const auto& box : world.mailboxes) {
    report.network.undelivered += box->queue.size();
  }
  if (report.network.undelivered > 0) {
    GPUMIP_LOG(Debug) << "run_ranks: " << report.network.undelivered
                      << " message(s) never received before shutdown";
  }
  return report;
}

// The empty-payload guards below matter: memcpy/insert with a null source
// pointer is undefined behaviour even for zero bytes (UBSan flags it), and
// empty vectors legitimately cross the wire (e.g. a report with no frontier).

void ByteWriter::write_doubles(std::span<const double> values) {
  write<std::uint64_t>(values.size());
  if (values.empty()) return;
  const auto* p = reinterpret_cast<const std::byte*>(values.data());
  buffer_.insert(buffer_.end(), p, p + values.size_bytes());
}

void ByteWriter::write_ints(std::span<const int> values) {
  write<std::uint64_t>(values.size());
  if (values.empty()) return;
  const auto* p = reinterpret_cast<const std::byte*>(values.data());
  buffer_.insert(buffer_.end(), p, p + values.size_bytes());
}

std::vector<double> ByteReader::read_doubles() {
  const auto count = read<std::uint64_t>();
  check_arg(pos_ + count * sizeof(double) <= data_.size(), "read_doubles: out of data");
  std::vector<double> out(count);
  if (count == 0) return out;
  std::memcpy(out.data(), data_.data() + pos_, count * sizeof(double));
  pos_ += count * sizeof(double);
  return out;
}

std::vector<int> ByteReader::read_ints() {
  const auto count = read<std::uint64_t>();
  check_arg(pos_ + count * sizeof(int) <= data_.size(), "read_ints: out of data");
  std::vector<int> out(count);
  if (count == 0) return out;
  std::memcpy(out.data(), data_.data() + pos_, count * sizeof(int));
  pos_ += count * sizeof(int);
  return out;
}

}  // namespace gpumip::parallel
