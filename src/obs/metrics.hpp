// Observability primitives: counters, gauges, histograms, and the
// process-wide registry that owns them (see DESIGN.md, "Observability").
//
// These are *measurement* instruments, not correctness validators (that is
// check/): a counter records how often a hot path ran, a histogram records
// a distribution (batch sizes, kernel occupancy, span durations), a gauge
// records a last-written or running-maximum value. All mutation paths are
// lock-free atomics so instruments can be bumped from any thread or simmpi
// rank concurrently; registration (first lookup of a name) takes a lock.
//
// Call sites in the solver go through the macros in obs/obs.hpp, which
// compile to nothing when the GPUMIP_OBS CMake option is OFF. The classes
// here are always compiled so tests and exporters work in either build.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

namespace gpumip::obs {

/// True when this translation unit was compiled with observability wiring
/// (the GPUMIP_OBS CMake option; ON by default).
#ifdef GPUMIP_OBS_ENABLED
inline constexpr bool kObsEnabled = true;
#else
inline constexpr bool kObsEnabled = false;
#endif

/// Monotonically increasing event/volume count (messages sent, bytes
/// transferred, refactorizations performed).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written (or accumulated / running-maximum) double. Unlike a
/// Counter it can move in any direction and carries fractional values
/// (hit rates, idle seconds).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  /// Accumulates (CAS loop; gauges are low-frequency instruments).
  void add(double v) noexcept;
  /// Raises the gauge to `v` if `v` is larger (running maximum).
  void set_max(double v) noexcept;
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-footprint log2-bucketed histogram over nonnegative values, with
/// exact count/sum/min/max. Bucket b holds values in (2^(b-kZeroBucket-1),
/// 2^(b-kZeroBucket)]; values <= 0 land in bucket 0. Quantiles are
/// bucket-resolution estimates (within a factor of 2), which is enough to
/// read occupancy, batch-size, and latency distributions.
class Histogram {
 public:
  /// 2^-40 .. 2^47 — covers nanosecond spans through terabyte volumes.
  static constexpr int kBuckets = 88;
  static constexpr int kZeroBucket = 40;

  void record(double v) noexcept;

  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  /// Smallest / largest recorded value; 0 when empty.
  double min() const noexcept;
  double max() const noexcept;
  double mean() const noexcept;
  /// Upper edge of the bucket containing the q-quantile (0 <= q <= 1);
  /// 0 when empty.
  double quantile(double q) const noexcept;
  std::uint64_t bucket_count(int bucket) const noexcept;
  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // Seeded so the first record() wins both races; min()/max() report 0
  // until something was recorded.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Process-wide instrument registry. Instruments are created on first
/// lookup of a name and live for the rest of the process, so call sites
/// may cache the returned reference (the macros in obs/obs.hpp do).
/// Names are dot-separated, lowercase, documented in docs/METRICS.md.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Sorted names of all registered instruments of each kind.
  std::vector<std::string> counter_names() const;
  std::vector<std::string> gauge_names() const;
  std::vector<std::string> histogram_names() const;

  /// Zeroes every instrument (registrations survive). Test isolation and
  /// bench phase boundaries only; not thread-safe against concurrent
  /// recording in the sense that racing increments may survive the sweep.
  void reset();

  /// The full registry as a JSON document (schema gpumip.metrics.v1; see
  /// docs/METRICS.md for the layout).
  std::string to_json() const;

  /// Writes to_json() to `path` atomically enough for collection scripts
  /// (write + flush + close). Throws Error(kIoError) on any failure.
  void export_json(const std::string& path) const;

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

// ---- convenience free functions over the singleton ----

inline Counter& counter(std::string_view name) { return Registry::instance().counter(name); }
inline Gauge& gauge(std::string_view name) { return Registry::instance().gauge(name); }
inline Histogram& histogram(std::string_view name) {
  return Registry::instance().histogram(name);
}
inline std::string to_json() { return Registry::instance().to_json(); }
inline void export_json(const std::string& path) { Registry::instance().export_json(path); }
inline void reset_all() { Registry::instance().reset(); }

/// Exports to the path named by the GPUMIP_METRICS_OUT environment
/// variable, if set. Returns the path written to ("" when the variable is
/// unset). Used by bench mains and scripts/bench.sh.
std::string export_if_requested();

}  // namespace gpumip::obs
