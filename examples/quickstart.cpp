// Quickstart: build a tiny MIP, solve it with the default strategy
// (S2, CPU-orchestration of GPU execution), and inspect the report —
// including the simulated-GPU accounting that distinguishes this library.
//
//   ./quickstart
#include <cstdio>

#include "core/gpumip.hpp"
#include "support/strings.hpp"

int main() {
  using namespace gpumip;

  // maximize  x + y
  // s.t.      2x +  y <= 5
  //            x + 3y <= 7
  //            x, y integer in [0, 10]
  mip::MipModel model;
  model.lp().set_sense(lp::Sense::Maximize);
  const int x = model.add_int_col(1.0, 0, 10, "x");
  const int y = model.add_int_col(1.0, 0, 10, "y");
  model.lp().add_row_le({{x, 2.0}, {y, 1.0}}, 5.0, "c1");
  model.lp().add_row_le({{x, 1.0}, {y, 3.0}}, 7.0, "c2");

  Solver solver;  // default options: strategy S2, auto LP code path
  SolveReport report = solver.solve(model);

  std::printf("%s\n", version());
  std::printf("status      : %s\n", mip::mip_status_name(report.status));
  std::printf("objective   : %.6f\n", report.objective);
  std::printf("x = %.0f, y = %.0f\n", report.x[0], report.x[1]);
  std::printf("lp code path: %s\n", lp::code_path_name(report.lp_path));
  std::printf("tree        : %ld nodes (%ld branched, %ld feasible, %ld infeasible, %ld pruned)\n",
              report.anatomy.total_nodes, report.anatomy.branched,
              report.anatomy.feasible_leaves, report.anatomy.infeasible_leaves,
              report.anatomy.pruned_leaves);
  std::printf("simulated   : %s end-to-end (%s on device), %s over PCIe, peak %s on device\n",
              human_seconds(report.sim_seconds).c_str(),
              human_seconds(report.device_seconds).c_str(),
              human_bytes(report.bytes_transferred).c_str(),
              human_bytes(report.device_peak_bytes).c_str());
  return report.status == mip::MipStatus::Optimal ? 0 : 1;
}
