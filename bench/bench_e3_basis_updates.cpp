// E3 — basis maintenance on the device (paper sections 4.3 / 5.1, claim C3).
//
// The simplex revisits the basis matrix every iteration. Three regimes:
//   (a) PFI rank-1 eta update of a device-resident B⁻¹ (what the paper
//       advocates: uniform m x m kernels, zero transfers),
//   (b) refactorize every iteration on the device (LU, 2/3 m³),
//   (c) host-side update + re-upload of B⁻¹ each iteration (the chatty
//       pattern the paper warns about: PCIe latency dominates).
// Simulated per-iteration time across basis sizes shows why (a) wins and
// where (b) becomes competitive (large m amortizes, error control).
#include "bench/common.hpp"
#include "linalg/blas.hpp"
#include "linalg/device_blas.hpp"
#include "linalg/lu.hpp"
#include "support/strings.hpp"

namespace {

using namespace gpumip;
using linalg::DeviceMatrix;
using linalg::DeviceVector;
using linalg::Matrix;
using linalg::Vector;

struct Regime {
  double eta = 0.0;       // (a)
  double refactor = 0.0;  // (b)
  double roundtrip = 0.0; // (c)
};

Regime measure(int m, int iterations) {
  Rng rng(static_cast<std::uint64_t>(m));
  Matrix binv = Matrix::identity(m);
  Vector y(static_cast<std::size_t>(m));
  Regime out;

  // (a) eta updates on the device.
  {
    gpu::Device device;
    DeviceMatrix dbinv = DeviceMatrix::upload(device, 0, binv);
    device.reset_stats();
    for (int it = 0; it < iterations; ++it) {
      for (auto& v : y) v = rng.uniform(-1, 1);
      y[static_cast<std::size_t>(it % m)] += 3.0;
      const linalg::Eta eta = linalg::Eta::from_ftran(y, it % m);
      linalg::dev_apply_eta(0, eta, dbinv);
    }
    out.eta = device.synchronize() / iterations;
  }
  // (b) refactorization each iteration.
  {
    gpu::Device device;
    Matrix b = Matrix::random(m, m, rng);
    for (int i = 0; i < m; ++i) b(i, i) += 4.0;
    DeviceMatrix db = DeviceMatrix::upload(device, 0, b);
    device.reset_stats();
    for (int it = 0; it < iterations; ++it) {
      DeviceMatrix work = DeviceMatrix::upload(device, 0, b);
      auto pivots = linalg::dev_getrf(0, work);
      benchmark::DoNotOptimize(pivots.size());
    }
    out.refactor = device.synchronize() / iterations;
  }
  // (c) host update + full B⁻¹ re-upload per iteration.
  {
    gpu::Device device;
    DeviceMatrix dbinv = DeviceMatrix::upload(device, 0, binv);
    device.reset_stats();
    for (int it = 0; it < iterations; ++it) {
      for (auto& v : y) v = rng.uniform(-1, 1);
      y[static_cast<std::size_t>(it % m)] += 3.0;
      const linalg::Eta eta = linalg::Eta::from_ftran(y, it % m);
      eta.apply_to_matrix(binv);  // on the host
      dbinv.assign(0, binv);      // ship the whole inverse back
    }
    out.roundtrip = device.synchronize() / iterations;
  }
  return out;
}

void print_experiment() {
  bench::title("E3", "basis update regimes: PFI eta vs refactorize vs host round trip");
  bench::row("  %-6s %-14s %-14s %-14s %-22s", "m", "eta-update", "refactorize",
             "host-roundtrip", "eta advantage");
  for (int m : {32, 64, 128, 256, 512}) {
    const Regime r = measure(m, 24);
    bench::row("  %-6d %-14s %-14s %-14s refactor/eta=%-6.1f roundtrip/eta=%.1f", m,
               human_seconds(r.eta).c_str(), human_seconds(r.refactor).c_str(),
               human_seconds(r.roundtrip).c_str(), r.refactor / r.eta, r.roundtrip / r.eta);
  }
  bench::note("expected shape: eta (rank-1, O(m^2)) beats refactorize (O(m^3)) increasingly");
  bench::note("with m; the host round trip pays a PCIe latency floor that dominates small m.");
}

void BM_eta_update_device(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  Rng rng(1);
  gpu::Device device;
  DeviceMatrix dbinv = DeviceMatrix::upload(device, 0, Matrix::identity(m));
  Vector y(static_cast<std::size_t>(m));
  for (auto& v : y) v = rng.uniform(-1, 1);
  y[0] += 3.0;
  const linalg::Eta eta = linalg::Eta::from_ftran(y, 0);
  for (auto _ : state) {
    linalg::dev_apply_eta(0, eta, dbinv);
    benchmark::DoNotOptimize(dbinv.data());
  }
  state.counters["sim_us_per_op"] = 1e6 * device.synchronize() / state.iterations();
}
BENCHMARK(BM_eta_update_device)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);

void BM_dense_lu_host(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  Rng rng(2);
  Matrix a = Matrix::random(m, m, rng);
  for (int i = 0; i < m; ++i) a(i, i) += 4.0;
  for (auto _ : state) {
    linalg::DenseLU lu(a);
    benchmark::DoNotOptimize(lu.order());
  }
}
BENCHMARK(BM_dense_lu_host)->Arg(64)->Arg(128)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  return gpumip::bench::run_benchmarks(argc, argv);
}
