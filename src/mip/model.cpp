#include "mip/model.hpp"

#include <cmath>

#include "sparse/ops.hpp"

namespace gpumip::mip {

void MipModel::reset_lp(lp::LpModel lp, std::vector<bool> integer) {
  if (integer.empty()) integer.assign(static_cast<std::size_t>(lp.num_cols()), false);
  check_arg(static_cast<int>(integer.size()) == lp.num_cols(),
            "reset_lp: integrality flag count mismatch");
  lp_ = std::move(lp);
  integer_ = std::move(integer);
}

int MipModel::add_col(double obj, double lb, double ub, std::string name) {
  const int j = lp_.add_col(obj, lb, ub, std::move(name));
  integer_.push_back(false);
  return j;
}

int MipModel::add_int_col(double obj, double lb, double ub, std::string name) {
  const int j = lp_.add_col(obj, lb, ub, std::move(name));
  integer_.push_back(true);
  return j;
}

int MipModel::add_bin_col(double obj, std::string name) {
  return add_int_col(obj, 0.0, 1.0, std::move(name));
}

void MipModel::set_integer(int col, bool integer) {
  check_arg(col >= 0 && col < num_cols(), "set_integer: bad column");
  integer_[static_cast<std::size_t>(col)] = integer;
}

int MipModel::num_integer() const {
  int count = 0;
  for (bool b : integer_) count += b ? 1 : 0;
  return count;
}

bool MipModel::is_integral(std::span<const double> x, double tol) const {
  for (int j = 0; j < num_cols(); ++j) {
    if (!integer_[static_cast<std::size_t>(j)]) continue;
    const double v = x[static_cast<std::size_t>(j)];
    if (std::fabs(v - std::round(v)) > tol) return false;
  }
  return true;
}

bool MipModel::is_feasible(std::span<const double> x, double tol) const {
  for (int j = 0; j < num_cols(); ++j) {
    const auto& c = lp_.col(j);
    const double v = x[static_cast<std::size_t>(j)];
    if (v < c.lb - tol || v > c.ub + tol) return false;
  }
  const sparse::Csr a = lp_.matrix();
  linalg::Vector activity(static_cast<std::size_t>(num_rows()), 0.0);
  sparse::spmv(1.0, a, x.subspan(0, static_cast<std::size_t>(num_cols())), 0.0, activity);
  for (int i = 0; i < num_rows(); ++i) {
    const auto& r = lp_.row(i);
    const double v = activity[static_cast<std::size_t>(i)];
    if (v < r.lb - tol || v > r.ub + tol) return false;
  }
  return true;
}

void MipModel::validate() const {
  lp_.validate();
  check_arg(static_cast<int>(integer_.size()) == lp_.num_cols(),
            "MipModel: integrality flag count mismatch");
}

}  // namespace gpumip::mip
