// Conversion of an LpModel to the computational ("standard") form the
// solvers consume:
//
//     minimize    cᵀ x
//     subject to  A x = b,    l ≤ x ≤ u,
//
// where x = (structural variables, one slack per non-equality row). A
// maximization objective is negated (obj_sign records the flip). Each row
// of the user model becomes one equality:
//
//   L ≤ aᵀy ≤ U  (ranged)   ->  aᵀy + s = U,  s ∈ [0, U - L]
//   aᵀy ≤ U                 ->  aᵀy + s = U,  s ∈ [0, ∞)
//   aᵀy ≥ L                 ->  aᵀy - s = L,  s ∈ [0, ∞)
//   aᵀy = b                 ->  aᵀy     = b   (no slack)
#pragma once

#include <vector>

#include "lp/model.hpp"

namespace gpumip::lp {

struct StandardForm {
  int num_rows = 0;       ///< m: equality constraints
  int num_struct = 0;     ///< structural (user) variables
  int num_vars = 0;       ///< structural + slack variables
  sparse::Csr a_rows;     ///< m x num_vars
  sparse::Csc a_cols;     ///< column view of the same matrix
  linalg::Vector b;       ///< rhs
  linalg::Vector c;       ///< minimization objective over all vars
  linalg::Vector lb, ub;  ///< variable bounds
  std::vector<int> slack_of_row;  ///< slack var index per row, -1 for equalities
  double obj_sign = 1.0;  ///< +1 if the model minimized, -1 if it maximized

  /// Maps a solver objective (min cᵀx) back to the user's sense.
  double user_objective(double min_objective) const { return obj_sign * min_objective; }

  /// Density of the constraint matrix.
  double density() const { return a_rows.density(); }
};

/// Builds the standard form. Validates the model first.
StandardForm build_standard_form(const LpModel& model);

/// Residual ||Ax - b||_inf of a point in standard-form space (tests).
double equality_residual(const StandardForm& form, std::span<const double> x);

/// True when l ≤ x ≤ u within tol.
bool within_bounds(const StandardForm& form, std::span<const double> x, double tol);

}  // namespace gpumip::lp
