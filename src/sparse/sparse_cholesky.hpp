// Simplicial sparse Cholesky (up-looking, dense work vector) for symmetric
// positive definite systems — the sparse normal-equations path of the
// interior-point solver (paper sections 2.3, 4.2).
//
// No pivoting (SPD); combine with a fill-reducing ordering from
// ordering.hpp for low fill.
#pragma once

#include <vector>

#include "sparse/formats.hpp"

namespace gpumip::sparse {

class SparseCholesky {
 public:
  SparseCholesky() = default;

  /// Factors A = L Lᵀ for SPD A (CSC, full matrix given; only the lower
  /// triangle is read). `ridge` is added to the diagonal. Throws
  /// NumericalError if not positive definite.
  explicit SparseCholesky(const Csc& a, double ridge = 0.0);

  int order() const noexcept { return n_; }
  bool valid() const noexcept { return n_ > 0; }

  linalg::Vector solve(std::span<const double> b) const;

  long factor_nnz() const noexcept;

 private:
  struct Entry {
    int row;
    double value;
  };
  int n_ = 0;
  std::vector<std::vector<Entry>> l_cols_;  // strictly-lower entries
  std::vector<double> diag_;
};

}  // namespace gpumip::sparse
