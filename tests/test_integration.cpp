// End-to-end integration tests crossing module boundaries: facade ->
// strategies -> engine -> LP -> device model; MPS files -> supervisor ->
// checkpoint files -> resume; presolve/scaling pipelines.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/gpumip.hpp"

namespace gpumip {
namespace {

using problems::RandomMipConfig;

class FamilySweep : public ::testing::TestWithParam<int> {};

mip::MipModel family_instance(int family, Rng& rng) {
  switch (family) {
    case 0: return problems::knapsack(14, rng);
    case 1: return problems::set_cover(10, 8, rng);
    case 2: return problems::generalized_assignment(3, 5, rng);
    case 3: return problems::unit_commitment(3, 3, rng);
    default: {
      RandomMipConfig cfg;
      cfg.rows = 8;
      cfg.cols = 14;
      cfg.bound = 3.0;
      return problems::random_mip(cfg, rng);
    }
  }
}

TEST_P(FamilySweep, AllStrategiesAgreeOnEveryFamily) {
  Rng rng(900 + static_cast<std::uint64_t>(GetParam()));
  mip::MipModel model = family_instance(GetParam(), rng);
  double reference = 0.0;
  bool first = true;
  for (auto strategy : {parallel::Strategy::S1_GpuOnly, parallel::Strategy::S2_CpuOrchestrated,
                        parallel::Strategy::S3_Hybrid, parallel::Strategy::S4_BigMip}) {
    SolverOptions opts;
    opts.strategy = strategy;
    opts.devices = 2;
    Solver solver(opts);
    SolveReport r = solver.solve(model);
    ASSERT_EQ(r.status, mip::MipStatus::Optimal)
        << parallel::strategy_name(strategy) << " family " << GetParam();
    ASSERT_TRUE(r.has_solution);
    EXPECT_TRUE(model.is_feasible(r.x, 1e-5));
    EXPECT_TRUE(model.is_integral(r.x, 1e-5));
    if (first) {
      reference = r.objective;
      first = false;
    } else {
      EXPECT_NEAR(r.objective, reference, 1e-6) << parallel::strategy_name(strategy);
    }
  }
}

TEST_P(FamilySweep, SupervisedMatchesFacadeOnEveryFamily) {
  Rng rng(910 + static_cast<std::uint64_t>(GetParam()));
  mip::MipModel model = family_instance(GetParam(), rng);
  SolverOptions seq_opts;
  seq_opts.mip.enable_cuts = false;
  Solver seq(seq_opts);
  SolveReport s = seq.solve(model);
  SolverOptions par_opts = seq_opts;
  par_opts.workers = 3;
  par_opts.supervisor.worker_node_budget = 20;
  Solver par(par_opts);
  SolveReport p = par.solve(model);
  ASSERT_EQ(s.status, mip::MipStatus::Optimal);
  ASSERT_EQ(p.status, mip::MipStatus::Optimal);
  EXPECT_NEAR(p.objective, s.objective, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Families, FamilySweep, ::testing::Range(0, 5));

TEST(Pipeline, ScalingPresolveSolveEquality) {
  // A badly scaled model: solve directly, and via scaling -> presolve ->
  // solve -> unscale; objectives must match.
  Rng rng(920);
  lp::LpModel model;
  const int n = 8;
  for (int j = 0; j < n; ++j) {
    model.add_col(rng.uniform(-2.0, -0.5) * (j % 2 == 0 ? 1e3 : 1e-3), 0.0, 10.0);
  }
  for (int i = 0; i < 6; ++i) {
    std::vector<lp::Term> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.flip(0.6)) terms.push_back({j, rng.uniform(0.1, 1.0) * (i % 2 == 0 ? 1e2 : 1e-2)});
    }
    if (terms.empty()) terms.push_back({i % n, 1.0});
    model.add_row_le(terms, rng.uniform(5.0, 10.0) * (i % 2 == 0 ? 1e2 : 1e-2));
  }
  const lp::StandardForm direct_form = lp::build_standard_form(model);
  lp::LpResult direct = lp::SimplexSolver(direct_form).solve_default();
  ASSERT_EQ(direct.status, lp::LpStatus::Optimal);

  lp::ScalingResult scaled = lp::geometric_scaling(model);
  EXPECT_LT(lp::coefficient_spread(scaled.scaled), lp::coefficient_spread(model));
  const lp::StandardForm scaled_form = lp::build_standard_form(scaled.scaled);
  lp::LpResult via_scaled = lp::SimplexSolver(scaled_form).solve_default();
  ASSERT_EQ(via_scaled.status, lp::LpStatus::Optimal);
  linalg::Vector x =
      scaled.unscale_solution(std::span<const double>(via_scaled.x.data(), static_cast<std::size_t>(n)));
  EXPECT_NEAR(model.objective_value(x), direct.objective, 1e-6 * (1 + std::abs(direct.objective)));
}

TEST(Pipeline, MpsToSupervisorToCheckpointFile) {
  // Full loop: generate -> write MPS -> read MPS -> supervised solve with
  // file checkpoints -> resume from the file.
  Rng rng(930);
  RandomMipConfig cfg;
  cfg.rows = 10;
  cfg.cols = 18;
  cfg.bound = 3.0;
  mip::MipModel original = problems::random_mip(cfg, rng);
  const std::string mps_path = "/tmp/gpumip_integration.mps";
  {
    std::ofstream out(mps_path);
    problems::write_mps(original, out);
  }
  mip::MipModel parsed = problems::read_mps_file(mps_path);

  const std::string snap_path = "/tmp/gpumip_integration.snap";
  long checkpoints = 0;
  parallel::SupervisorOptions opts;
  opts.workers = 2;
  opts.worker_node_budget = 8;
  opts.ramp_up_nodes = 10;
  opts.mip.enable_cuts = false;
  opts.checkpoint_interval = 2;
  opts.on_checkpoint = [&](const mip::ConsistentSnapshot& snap) {
    std::ofstream out(snap_path);
    snap.serialize(out);
    ++checkpoints;
  };
  parallel::SupervisorResult run = parallel::solve_supervised(parsed, opts);
  ASSERT_EQ(run.result.status, mip::MipStatus::Optimal);

  if (checkpoints > 0) {
    std::ifstream in(snap_path);
    mip::ConsistentSnapshot snap = mip::ConsistentSnapshot::deserialize(in);
    parallel::SupervisorOptions resume_opts = opts;
    resume_opts.checkpoint_interval = 0;
    resume_opts.on_checkpoint = nullptr;
    parallel::SupervisorResult resumed = parallel::resume_supervised(parsed, snap, resume_opts);
    if (resumed.result.has_solution) {
      EXPECT_NEAR(resumed.result.objective, run.result.objective, 1e-6);
    }
  }
  std::remove(mps_path.c_str());
  std::remove(snap_path.c_str());
}

TEST(Pipeline, IpmAsRootCrossCheck) {
  // The IPM and simplex must agree on every family's root relaxation.
  Rng rng(940);
  for (int family = 0; family < 5; ++family) {
    mip::MipModel model = family_instance(family, rng);
    const lp::StandardForm form = lp::build_standard_form(model.lp());
    lp::LpResult spx = lp::SimplexSolver(form).solve_default();
    lp::LpResult ipm = lp::InteriorPointSolver(form).solve_default();
    ASSERT_EQ(spx.status, lp::LpStatus::Optimal) << "family " << family;
    ASSERT_EQ(ipm.status, lp::LpStatus::Optimal) << "family " << family;
    EXPECT_NEAR(spx.objective, ipm.objective, 1e-4 * (1 + std::abs(spx.objective)))
        << "family " << family;
  }
}

TEST(Pipeline, DeterministicAcrossRuns) {
  // Identical seeds -> bit-identical trajectories (node counts, objective,
  // simulated times).
  Rng rng1(950), rng2(950);
  RandomMipConfig cfg;
  cfg.rows = 9;
  cfg.cols = 15;
  mip::MipModel m1 = problems::random_mip(cfg, rng1);
  mip::MipModel m2 = problems::random_mip(cfg, rng2);
  Solver solver;
  SolveReport r1 = solver.solve(m1);
  SolveReport r2 = solver.solve(m2);
  EXPECT_EQ(r1.stats.nodes_evaluated, r2.stats.nodes_evaluated);
  EXPECT_DOUBLE_EQ(r1.objective, r2.objective);
  EXPECT_DOUBLE_EQ(r1.sim_seconds, r2.sim_seconds);
  EXPECT_EQ(r1.bytes_transferred, r2.bytes_transferred);
}

}  // namespace
}  // namespace gpumip
