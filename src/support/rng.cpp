#include "support/rng.hpp"

#include <numeric>

namespace gpumip {

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  check_arg(lo <= hi, "uniform_int requires lo <= hi");
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::uniform(double lo, double hi) {
  check_arg(lo < hi, "uniform requires lo < hi");
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

bool Rng::flip(double p) {
  check_arg(p >= 0.0 && p <= 1.0, "flip requires p in [0,1]");
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

std::size_t Rng::index(std::size_t n) {
  check_arg(n > 0, "index requires n > 0");
  std::uniform_int_distribution<std::size_t> dist(0, n - 1);
  return dist(engine_);
}

std::vector<int> Rng::permutation(int n) {
  check_arg(n >= 0, "permutation requires n >= 0");
  std::vector<int> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  shuffle(perm);
  return perm;
}

}  // namespace gpumip
