#include "lp/batched_lp.hpp"

#include <algorithm>

#include "linalg/device_blas.hpp"
#include "obs/obs.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"

namespace gpumip::lp {

const char* batch_mode_name(BatchMode mode) noexcept {
  switch (mode) {
    case BatchMode::Sequential: return "sequential";
    case BatchMode::Streams: return "streams";
    case BatchMode::Lockstep: return "lockstep";
  }
  return "?";
}

namespace {

/// Batched kernel covering one operation type for `active` problems of
/// (m, n, nnz) shape each.
gpu::KernelCost wave_cost(int active, int m, int n, double flops_each, double doubles_each) {
  gpu::KernelCost cost = gpu::KernelCost::dense(flops_each * active, doubles_each * active);
  (void)m;
  (void)n;
  cost.occupancy =
      linalg::occupancy_for_elements(static_cast<std::size_t>(active) * static_cast<std::size_t>(doubles_each));
  return cost;
}

}  // namespace

BatchedLpReport solve_batched(const std::vector<const StandardForm*>& problems,
                              gpu::Device& device, gpu::DeviceArena& arena, BatchMode mode,
                              const SimplexOptions& options, int streams) {
  check_arg(!problems.empty(), "solve_batched: empty batch");
  check_arg(streams >= 1, "solve_batched: need at least one stream");
  BatchedLpReport report;
  GPUMIP_OBS_COUNT_L("gpumip.lp.batch.solves", {"method", "simplex"});
  GPUMIP_OBS_RECORD_L("gpumip.lp.batch.size", static_cast<double>(problems.size()),
                      {"method", "simplex"});

  // Device residency for the whole batch, served from the caller's arena
  // (capacity is still checked for real: arena growth goes through
  // Device::alloc). Sizing the reserve up front keeps the arena at one
  // exactly-fitting slab; repeat batches of similar shape reuse it with no
  // device allocation at all.
  arena.reset();
  std::size_t residency_bytes = 0;
  for (const StandardForm* form : problems) {
    check_arg(form != nullptr, "solve_batched: null problem");
    residency_bytes += gpu::DeviceArena::aligned_size(
        static_cast<std::size_t>(dense_lp_device_bytes(form->num_rows, form->num_vars)));
  }
  // gpumip-lint: hot-alloc(arena reserve: at most one amortized slab allocation, zero once warm)
  arena.reserve(residency_bytes);
  for (const StandardForm* form : problems) {
    (void)arena.allot(
        static_cast<std::size_t>(dense_lp_device_bytes(form->num_rows, form->num_vars)));
  }

  // Host numerics: exact solves, recording the per-problem recipes.
  for (const StandardForm* form : problems) {
    SimplexSolver solver(*form, options);
    // gpumip-lint: hot-alloc(one result slot per problem in the batch report; sized by the batch, not the pivot count)
    report.results.push_back(solver.solve_default());
  }

  device.synchronize();
  device.reset_stats();
  const std::uint64_t kernels_before = device.stats().kernels;

  switch (mode) {
    case BatchMode::Sequential: {
      for (const LpResult& r : report.results) {
        charge_to_device(device, 0, r.ops, /*sparse_pricing=*/false);
      }
      break;
    }
    case BatchMode::Streams: {
      // gpumip-lint: hot-alloc(stream-id table bounded by --streams, built at batch setup before the timed section)
      std::vector<gpu::StreamId> ids = {0};
      // gpumip-lint: hot-alloc(same stream-id table growth, bounded by --streams)
      while (static_cast<int>(ids.size()) < streams) ids.push_back(device.create_stream());
      for (std::size_t p = 0; p < report.results.size(); ++p) {
        charge_to_device(device, ids[p % ids.size()], report.results[p].ops,
                         /*sparse_pricing=*/false);
      }
      break;
    }
    case BatchMode::Lockstep: {
      // Wave w executes iteration w of every problem still active. Four
      // batched kernels per wave (BTRAN, pricing, FTRAN, eta update), plus
      // batched refactorizations at the configured interval.
      long max_iters = 0;
      for (const LpResult& r : report.results) {
        max_iters = std::max(max_iters, r.ops.iterations);
      }
      for (long w = 0; w < max_iters; ++w) {
        int active = 0;
        double m_avg = 0, n_avg = 0;
        for (std::size_t p = 0; p < problems.size(); ++p) {
          if (report.results[p].ops.iterations > w) {
            ++active;
            m_avg += problems[p]->num_rows;
            n_avg += problems[p]->num_vars;
          }
        }
        if (active == 0) break;
        m_avg /= active;
        n_avg /= active;
        ++report.waves;
        GPUMIP_OBS_COUNT_L("gpumip.lp.batch.waves", {"method", "simplex"});
        GPUMIP_TRACE_SCOPE("gpumip.lp.batch.wave", active);
        // Paper C7: fraction of the batch still pivoting in this wave.
        GPUMIP_OBS_RECORD_L("gpumip.lp.batch.occupancy",
                            static_cast<double>(active) / static_cast<double>(problems.size()),
                            {"method", "simplex"});
        const double mm = 2.0 * m_avg * m_avg;
        // BTRAN + FTRAN + eta update (dense m x m each).
        device.launch(0, wave_cost(active, static_cast<int>(m_avg), static_cast<int>(n_avg),
                                   mm, m_avg * m_avg), {});
        device.launch(0, wave_cost(active, static_cast<int>(m_avg), static_cast<int>(n_avg),
                                   mm, m_avg * m_avg), {});
        device.launch(0, wave_cost(active, static_cast<int>(m_avg), static_cast<int>(n_avg),
                                   mm, m_avg * m_avg), {});
        // Pricing (dense m x n pass).
        device.launch(0, wave_cost(active, static_cast<int>(m_avg), static_cast<int>(n_avg),
                                   2.0 * m_avg * n_avg, m_avg * n_avg), {});
        // Periodic batched refactorization.
        if (options.refactor_interval > 0 && w > 0 && w % options.refactor_interval == 0) {
          device.launch(0, wave_cost(active, static_cast<int>(m_avg), static_cast<int>(n_avg),
                                     (2.0 / 3.0 + 1.0) * m_avg * m_avg * m_avg, m_avg * m_avg),
                        {});
        }
        // Time-series hook: a bound sampler sees the occupancy curve wave
        // by wave on the device stream clock (no-op when unbound).
        GPUMIP_OBS_SAMPLE_TICK(device.stream_clock(0));
      }
      break;
    }
  }
  report.sim_seconds = device.synchronize();
  report.kernels = device.stats().kernels - kernels_before;
  return report;
}

BatchedLpReport solve_batched(const std::vector<const StandardForm*>& problems,
                              gpu::Device& device, BatchMode mode,
                              const SimplexOptions& options, int streams) {
  gpu::DeviceArena arena(device, "batch.lp");
  return solve_batched(problems, device, arena, mode, options, streams);
}

namespace {

/// Batched sparse kernel covering one SpMV-shaped operation across the
/// active problems: nnz_total nonzeros touched, vec_total output elements.
gpu::KernelCost sparse_wave_cost(double nnz_total, double vec_total) {
  gpu::KernelCost cost = gpu::KernelCost::sparse_irregular(2.0 * nnz_total,
                                                           1.5 * nnz_total + vec_total);
  cost.occupancy = linalg::occupancy_for_elements(static_cast<std::size_t>(nnz_total));
  return cost;
}

}  // namespace

BatchedLpReport solve_batched_pdhg(const std::vector<const StandardForm*>& problems,
                                   gpu::Device& device, gpu::DeviceArena& arena,
                                   const PdhgOptions& options) {
  check_arg(!problems.empty(), "solve_batched_pdhg: empty batch");
  BatchedLpReport report;
  GPUMIP_OBS_COUNT_L("gpumip.lp.batch.solves", {"method", "pdhg"});
  GPUMIP_OBS_RECORD_L("gpumip.lp.batch.size", static_cast<double>(problems.size()),
                      {"method", "pdhg"});

  // Residency: the CSR image plus iterate vectors per instance — no basis
  // inverse, no dense expansion, which is why far more PDHG instances
  // co-reside than simplex ones (pdhg_lp_device_bytes vs dense_lp_device_bytes).
  arena.reset();
  std::size_t residency_bytes = 0;
  for (const StandardForm* form : problems) {
    check_arg(form != nullptr, "solve_batched_pdhg: null problem");
    residency_bytes += gpu::DeviceArena::aligned_size(static_cast<std::size_t>(
        pdhg_lp_device_bytes(form->num_rows, form->num_vars,
                             static_cast<long>(form->a_rows.nnz()))));
  }
  // gpumip-lint: hot-alloc(arena reserve: at most one amortized slab allocation, zero once warm)
  arena.reserve(residency_bytes);
  for (const StandardForm* form : problems) {
    (void)arena.allot(static_cast<std::size_t>(
        pdhg_lp_device_bytes(form->num_rows, form->num_vars,
                             static_cast<long>(form->a_rows.nnz()))));
  }

  // Host numerics: the batched path is exact — bit-identical to sequential
  // PdhgSolver calls (tests assert this under the schedule fuzzer).
  for (const StandardForm* form : problems) {
    PdhgSolver solver(*form, options);
    // gpumip-lint: hot-alloc(one result slot per problem in the batch report; sized by the batch, not the iteration count)
    report.results.push_back(solver.solve_default());
  }

  device.synchronize();
  device.reset_stats();
  const std::uint64_t kernels_before = device.stats().kernels;

  // Wave w executes iteration w of every still-active instance as four
  // batched kernels: SpMVᵀ (Aᵀy), primal update/project, SpMV (A·x̄), dual
  // update. Every check_interval waves, two more batched SpMV-shaped
  // kernels score the KKT candidates.
  long max_iters = 0;
  for (const LpResult& r : report.results) {
    max_iters = std::max(max_iters, r.ops.iterations);
  }
  for (long w = 0; w < max_iters; ++w) {
    int active = 0;
    double nnz_sum = 0, m_sum = 0, n_sum = 0;
    for (std::size_t p = 0; p < problems.size(); ++p) {
      if (report.results[p].ops.iterations > w) {
        ++active;
        nnz_sum += problems[p]->a_rows.nnz();
        m_sum += problems[p]->num_rows;
        n_sum += problems[p]->num_vars;
      }
    }
    if (active == 0) break;
    ++report.waves;
    GPUMIP_OBS_COUNT_L("gpumip.lp.batch.waves", {"method", "pdhg"});
    GPUMIP_TRACE_SCOPE("gpumip.lp.batch.wave", active);
    GPUMIP_OBS_RECORD_L("gpumip.lp.batch.occupancy",
                        static_cast<double>(active) / static_cast<double>(problems.size()),
                        {"method", "pdhg"});
    // The whole iteration fuses into ONE batched launch: unlike a simplex
    // pivot, whose ratio test feeds the host's choice of the next entering
    // column, a PDHG iteration has no host-side decision in it — SpMVᵀ,
    // primal update/project, SpMV and dual update chain on-device with
    // fixed shapes. The host only intervenes at the periodic KKT check.
    // This is the launch-amortization half of the crossover argument; the
    // K·nnz-vs-K·m² bytes asymmetry is the other half (docs/METHODS.md).
    gpu::KernelCost fused = gpu::KernelCost::sparse_irregular(
        4.0 * nnz_sum + 4.0 * n_sum + 3.0 * m_sum,
        3.0 * nnz_sum + 4.0 * n_sum + 3.0 * m_sum);
    fused.occupancy = linalg::occupancy_for_elements(static_cast<std::size_t>(nnz_sum));
    device.launch(0, fused, {});
    if (options.check_interval > 0 && w > 0 && w % options.check_interval == 0) {
      // Batched KKT scoring (a host sync point: the restart/termination
      // verdict is read back), two SpMV-shaped launches.
      device.launch(0, sparse_wave_cost(nnz_sum, m_sum), {});
      device.launch(0, sparse_wave_cost(nnz_sum, n_sum), {});
    }
    GPUMIP_OBS_SAMPLE_TICK(device.stream_clock(0));
  }
  report.sim_seconds = device.synchronize();
  report.kernels = device.stats().kernels - kernels_before;
  return report;
}

BatchedLpReport solve_batched_pdhg(const std::vector<const StandardForm*>& problems,
                                   gpu::Device& device, const PdhgOptions& options) {
  gpu::DeviceArena arena(device, "batch.lp");
  return solve_batched_pdhg(problems, device, arena, options);
}

}  // namespace gpumip::lp
