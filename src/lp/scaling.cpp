#include "lp/scaling.hpp"

#include <cmath>

namespace gpumip::lp {

linalg::Vector ScalingResult::unscale_solution(std::span<const double> scaled_x) const {
  linalg::Vector out(col_scale.size());
  for (std::size_t j = 0; j < col_scale.size(); ++j) out[j] = scaled_x[j] * col_scale[j];
  return out;
}

ScalingResult geometric_scaling(const LpModel& model, int passes) {
  model.validate();
  const int m = model.num_rows();
  const int n = model.num_cols();
  ScalingResult result;
  result.row_scale.assign(static_cast<std::size_t>(m), 1.0);
  result.col_scale.assign(static_cast<std::size_t>(n), 1.0);

  // Iteratively set each row/col scale to 1/sqrt(max*min) of its (scaled)
  // nonzero magnitudes.
  for (int pass = 0; pass < passes; ++pass) {
    for (int axis = 0; axis < 2; ++axis) {
      std::vector<double> max_abs(axis == 0 ? static_cast<std::size_t>(m)
                                            : static_cast<std::size_t>(n),
                                  0.0);
      std::vector<double> min_abs(max_abs.size(), kInf);
      for (const auto& t : model.entries()) {
        const double v = std::fabs(t.value * result.row_scale[static_cast<std::size_t>(t.row)] *
                                   result.col_scale[static_cast<std::size_t>(t.col)]);
        if (v == 0.0) continue;
        const std::size_t idx = axis == 0 ? static_cast<std::size_t>(t.row)
                                          : static_cast<std::size_t>(t.col);
        max_abs[idx] = std::max(max_abs[idx], v);
        min_abs[idx] = std::min(min_abs[idx], v);
      }
      auto& scale = axis == 0 ? result.row_scale : result.col_scale;
      for (std::size_t i = 0; i < scale.size(); ++i) {
        if (max_abs[i] > 0.0 && std::isfinite(min_abs[i])) {
          scale[i] /= std::sqrt(max_abs[i] * min_abs[i]);
        }
      }
    }
  }

  // Build the scaled model: A' = R A C, bounds transform accordingly.
  // Row i: L ≤ a x ≤ U becomes r L ≤ (r a C)(C⁻¹ x) ≤ r U with r > 0.
  // Column j: x_j = c_j · x'_j, so bounds divide by c_j and objective
  // multiplies by c_j.
  result.scaled.set_sense(model.sense());
  for (int j = 0; j < n; ++j) {
    const auto& col = model.col(j);
    const double cs = result.col_scale[static_cast<std::size_t>(j)];
    result.scaled.add_col(col.obj * cs, col.lb / cs, col.ub / cs, col.name);
  }
  for (int i = 0; i < m; ++i) {
    const auto& row = model.row(i);
    const double rs = result.row_scale[static_cast<std::size_t>(i)];
    result.scaled.add_row(row.lb * rs, row.ub * rs, row.name);
  }
  for (const auto& t : model.entries()) {
    result.scaled.set_coef(t.row, t.col,
                           t.value * result.row_scale[static_cast<std::size_t>(t.row)] *
                               result.col_scale[static_cast<std::size_t>(t.col)]);
  }
  return result;
}

double coefficient_spread(const LpModel& model) {
  double max_abs = 0.0;
  double min_abs = kInf;
  for (const auto& t : model.entries()) {
    const double v = std::fabs(t.value);
    if (v == 0.0) continue;
    max_abs = std::max(max_abs, v);
    min_abs = std::min(min_abs, v);
  }
  if (max_abs == 0.0) return 1.0;
  return max_abs / min_abs;
}

}  // namespace gpumip::lp
