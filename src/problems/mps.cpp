#include "problems/mps.hpp"

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "support/strings.hpp"

namespace gpumip::problems {

namespace {

[[noreturn]] void io_fail(const std::string& message) {
  throw Error(ErrorCode::kIoError, "MPS: " + message);
}

struct RowInfo {
  char type = 'N';  // N, L, G, E
  int index = -1;   // model row index (-1 for the objective N row)
};

}  // namespace

mip::MipModel read_mps(std::istream& in) {
  mip::MipModel model;
  lp::LpModel& lp = model.lp();

  std::map<std::string, RowInfo> rows;
  std::map<std::string, int> cols;
  std::string objective_row;
  std::string section;
  bool in_integer_block = false;
  std::string line;
  bool saw_endata = false;
  // Columns that got an explicit bound (to keep MPS default semantics).
  std::map<int, bool> has_lower_bound;

  auto get_col = [&](const std::string& name, bool integer) {
    auto it = cols.find(name);
    if (it != cols.end()) return it->second;
    const int j = integer ? model.add_int_col(0.0, 0.0, lp::kInf, name)
                          : model.add_col(0.0, 0.0, lp::kInf, name);
    cols[name] = j;
    return j;
  };

  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '*') continue;
    const bool is_header = !std::isspace(static_cast<unsigned char>(line[0]));
    std::vector<std::string> tok = split_ws(line);
    if (tok.empty()) continue;
    if (is_header) {
      const std::string head = to_upper(tok[0]);
      if (head == "NAME") {
        continue;
      } else if (head == "ROWS" || head == "COLUMNS" || head == "RHS" || head == "RANGES" ||
                 head == "BOUNDS") {
        section = head;
        continue;
      } else if (head == "ENDATA") {
        saw_endata = true;
        break;
      } else if (head == "OBJSENSE") {
        section = "OBJSENSE";
        continue;
      } else {
        io_fail("unknown section '" + tok[0] + "'");
      }
    }
    if (section == "OBJSENSE") {
      const std::string s = to_upper(tok[0]);
      if (s == "MAX" || s == "MAXIMIZE") lp.set_sense(lp::Sense::Maximize);
      if (s == "MIN" || s == "MINIMIZE") lp.set_sense(lp::Sense::Minimize);
    } else if (section == "ROWS") {
      if (tok.size() < 2) io_fail("ROWS line needs type and name");
      const char type = static_cast<char>(std::toupper(static_cast<unsigned char>(tok[0][0])));
      const std::string& name = tok[1];
      RowInfo info;
      info.type = type;
      switch (type) {
        case 'N':
          if (objective_row.empty()) objective_row = name;
          info.index = -1;
          break;
        case 'L': info.index = lp.add_row(-lp::kInf, 0.0, name); break;
        case 'G': info.index = lp.add_row(0.0, lp::kInf, name); break;
        case 'E': info.index = lp.add_row(0.0, 0.0, name); break;
        default: io_fail(std::string("bad row type '") + type + "'");
      }
      rows[name] = info;
    } else if (section == "COLUMNS") {
      // MARKER lines toggle integrality.
      if (tok.size() >= 3 && to_upper(tok[1]) == "'MARKER'") {
        const std::string marker = to_upper(tok[2]);
        if (marker == "'INTORG'") in_integer_block = true;
        if (marker == "'INTEND'") in_integer_block = false;
        continue;
      }
      if (tok.size() < 3 || tok.size() % 2 == 0) io_fail("bad COLUMNS line: " + line);
      const int j = get_col(tok[0], in_integer_block);
      for (std::size_t k = 1; k + 1 < tok.size(); k += 2) {
        auto it = rows.find(tok[k]);
        if (it == rows.end()) io_fail("unknown row '" + tok[k] + "'");
        const double value = std::stod(tok[k + 1]);
        if (it->second.index < 0) {
          if (tok[k] == objective_row) lp.col(j).obj = value;
          // other N rows are ignored (free rows)
        } else {
          lp.set_coef(it->second.index, j, value);
        }
      }
    } else if (section == "RHS") {
      if (tok.size() < 3 || tok.size() % 2 == 0) io_fail("bad RHS line: " + line);
      for (std::size_t k = 1; k + 1 < tok.size(); k += 2) {
        auto it = rows.find(tok[k]);
        if (it == rows.end()) io_fail("unknown RHS row '" + tok[k] + "'");
        if (it->second.index < 0) continue;  // objective constant: ignore
        const double value = std::stod(tok[k + 1]);
        lp::RowDef& row = lp.row(it->second.index);
        switch (it->second.type) {
          case 'L': row.ub = value; break;
          case 'G': row.lb = value; break;
          case 'E': row.lb = row.ub = value; break;
          default: break;
        }
      }
    } else if (section == "RANGES") {
      if (tok.size() < 3 || tok.size() % 2 == 0) io_fail("bad RANGES line: " + line);
      for (std::size_t k = 1; k + 1 < tok.size(); k += 2) {
        auto it = rows.find(tok[k]);
        if (it == rows.end()) io_fail("unknown RANGES row '" + tok[k] + "'");
        if (it->second.index < 0) continue;
        const double r = std::stod(tok[k + 1]);
        lp::RowDef& row = lp.row(it->second.index);
        switch (it->second.type) {
          case 'L': row.lb = row.ub - std::fabs(r); break;
          case 'G': row.ub = row.lb + std::fabs(r); break;
          case 'E':
            if (r >= 0) {
              row.ub = row.lb + r;
            } else {
              row.lb = row.ub + r;
            }
            break;
          default: break;
        }
      }
    } else if (section == "BOUNDS") {
      if (tok.size() < 3) io_fail("bad BOUNDS line: " + line);
      const std::string type = to_upper(tok[0]);
      auto it = cols.find(tok[2]);
      if (it == cols.end()) io_fail("unknown BOUNDS column '" + tok[2] + "'");
      lp::ColumnDef& col = lp.col(it->second);
      const double value = tok.size() >= 4 ? std::stod(tok[3]) : 0.0;
      if (type == "UP") {
        col.ub = value;
        // MPS quirk: UP with a negative value and no prior LO makes lb -inf.
        if (value < 0 && !has_lower_bound[it->second]) col.lb = -lp::kInf;
      } else if (type == "LO") {
        col.lb = value;
        has_lower_bound[it->second] = true;
      } else if (type == "FX") {
        col.lb = col.ub = value;
        has_lower_bound[it->second] = true;
      } else if (type == "FR") {
        col.lb = -lp::kInf;
        col.ub = lp::kInf;
      } else if (type == "MI") {
        col.lb = -lp::kInf;
      } else if (type == "PL") {
        col.ub = lp::kInf;
      } else if (type == "BV") {
        col.lb = 0.0;
        col.ub = 1.0;
        model.set_integer(it->second, true);
        has_lower_bound[it->second] = true;
      } else if (type == "UI") {
        col.ub = value;
        model.set_integer(it->second, true);
      } else if (type == "LI") {
        col.lb = value;
        model.set_integer(it->second, true);
        has_lower_bound[it->second] = true;
      } else {
        io_fail("unknown bound type '" + tok[0] + "'");
      }
    } else if (section.empty()) {
      io_fail("data before any section: " + line);
    }
  }
  if (!saw_endata) io_fail("missing ENDATA");
  model.validate();
  return model;
}

mip::MipModel read_mps_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) io_fail("cannot open '" + path + "'");
  return read_mps(in);
}

mip::MipModel read_mps_string(const std::string& text) {
  std::istringstream in(text);
  return read_mps(in);
}

void write_mps(const mip::MipModel& model, std::ostream& out, const std::string& name) {
  const lp::LpModel& lp = model.lp();
  out << "NAME " << name << "\n";
  if (lp.sense() == lp::Sense::Maximize) out << "OBJSENSE\n MAX\n";
  out << "ROWS\n N COST\n";
  auto row_name = [&](int i) {
    const std::string& n = lp.row(i).name;
    return n.empty() ? "R" + std::to_string(i) : n;
  };
  auto col_name = [&](int j) {
    const std::string& n = lp.col(j).name;
    return n.empty() ? "C" + std::to_string(j) : n;
  };
  std::vector<char> row_type(static_cast<std::size_t>(lp.num_rows()), 'E');
  for (int i = 0; i < lp.num_rows(); ++i) {
    const auto& r = lp.row(i);
    char t;
    if (r.lb == r.ub) {
      t = 'E';
    } else if (std::isfinite(r.ub)) {
      t = 'L';  // ranged rows get a RANGES entry
    } else if (std::isfinite(r.lb)) {
      t = 'G';
    } else {
      t = 'L';  // free row: emit as L with +inf rhs... use N instead
    }
    row_type[static_cast<std::size_t>(i)] = t;
    out << " " << t << " " << row_name(i) << "\n";
  }
  out << "COLUMNS\n";
  const sparse::Csc by_col = sparse::csr_to_csc(lp.matrix());
  bool in_int = false;
  int marker = 0;
  for (int j = 0; j < lp.num_cols(); ++j) {
    if (model.is_integer(j) != in_int) {
      out << " MK" << marker++ << " 'MARKER' " << (model.is_integer(j) ? "'INTORG'" : "'INTEND'")
          << "\n";
      in_int = model.is_integer(j);
    }
    if (lp.col(j).obj != 0.0) {
      out << " " << col_name(j) << " COST " << lp.col(j).obj << "\n";
    }
    for (int k = by_col.col_start[static_cast<std::size_t>(j)];
         k < by_col.col_start[static_cast<std::size_t>(j) + 1]; ++k) {
      out << " " << col_name(j) << " "
          << row_name(by_col.row_index[static_cast<std::size_t>(k)]) << " "
          << by_col.values[static_cast<std::size_t>(k)] << "\n";
    }
  }
  if (in_int) out << " MK" << marker++ << " 'MARKER' 'INTEND'\n";
  out << "RHS\n";
  for (int i = 0; i < lp.num_rows(); ++i) {
    const auto& r = lp.row(i);
    double rhs;
    switch (row_type[static_cast<std::size_t>(i)]) {
      case 'L': rhs = r.ub; break;
      case 'G': rhs = r.lb; break;
      default: rhs = r.lb; break;
    }
    if (std::isfinite(rhs) && rhs != 0.0) out << " RHS1 " << row_name(i) << " " << rhs << "\n";
  }
  out << "RANGES\n";
  for (int i = 0; i < lp.num_rows(); ++i) {
    const auto& r = lp.row(i);
    if (row_type[static_cast<std::size_t>(i)] == 'L' && std::isfinite(r.lb) && r.lb != r.ub) {
      out << " RNG1 " << row_name(i) << " " << (r.ub - r.lb) << "\n";
    }
  }
  out << "BOUNDS\n";
  for (int j = 0; j < lp.num_cols(); ++j) {
    const auto& c = lp.col(j);
    if (model.is_integer(j) && c.lb == 0.0 && c.ub == 1.0) {
      out << " BV BND1 " << col_name(j) << "\n";
      continue;
    }
    if (c.lb == c.ub) {
      out << " FX BND1 " << col_name(j) << " " << c.lb << "\n";
      continue;
    }
    if (!std::isfinite(c.lb) && !std::isfinite(c.ub)) {
      out << " FR BND1 " << col_name(j) << "\n";
      continue;
    }
    if (!std::isfinite(c.lb)) out << " MI BND1 " << col_name(j) << "\n";
    if (c.lb != 0.0 && std::isfinite(c.lb)) {
      out << " LO BND1 " << col_name(j) << " " << c.lb << "\n";
    }
    if (std::isfinite(c.ub)) out << " UP BND1 " << col_name(j) << " " << c.ub << "\n";
  }
  out << "ENDATA\n";
}

std::string write_mps_string(const mip::MipModel& model, const std::string& name) {
  std::ostringstream out;
  out.precision(17);
  write_mps(model, out, name);
  return out.str();
}

}  // namespace gpumip::problems
