// E9 — solution methods head-to-head (paper sections 2.3 / 4):
//   (a) exterior point (revised simplex) vs interior point (Mehrotra)
//       across size and density, priced on the device cost model,
//   (b) entirely-GPU IVM branch-and-bound vs explicit-node CPU DFS on
//       permutation flow-shop (the Gmys et al. comparison),
//   (c) frontier-batched GPU knapsack B&B vs host DFS.
#include "bench/common.hpp"
#include "ivm/gpu_bnb.hpp"
#include "ivm/knapsack_bnb.hpp"
#include "lp/interior_point.hpp"
#include "lp/simplex.hpp"
#include "problems/generators.hpp"
#include "support/strings.hpp"
#include "support/timer.hpp"

namespace {

using namespace gpumip;

void simplex_vs_ipm() {
  bench::title("E9-a", "simplex (exterior) vs interior point across density");
  bench::row("  %-12s %-9s %-9s %-9s %-13s %-13s %-10s", "size", "density", "spx-iter",
             "ipm-iter", "spx-sim", "ipm-sim", "agree");
  Rng rng(601);
  for (int size : {40, 100}) {
    for (double density : {0.05, 0.3, 1.0}) {
      lp::LpModel model = problems::sparse_lp(size, size * 3 / 2, density, rng);
      const lp::StandardForm form = lp::build_standard_form(model);
      lp::SimplexSolver spx(form);
      lp::LpResult rs = spx.solve_default();
      lp::InteriorPointSolver ipm(form);
      lp::LpResult ri = ipm.solve_default();
      double spx_sim = 0, ipm_sim = 0;
      {
        gpu::Device device;
        lp::charge_to_device(device, 0, rs.ops, density < 0.3);
        spx_sim = device.synchronize();
      }
      {
        gpu::Device device;
        lp::charge_to_device(device, 0, ri.ops, density < 0.3);
        ipm_sim = device.synchronize();
      }
      const bool agree = rs.status == lp::LpStatus::Optimal &&
                         ri.status == lp::LpStatus::Optimal &&
                         std::abs(rs.objective - ri.objective) < 1e-4 * (1 + std::abs(rs.objective));
      bench::row("  %4dx%-6d %-9.2f %-9ld %-9ld %-13s %-13s %-10s", size, size * 3 / 2, density,
                 rs.iterations, ri.iterations, human_seconds(spx_sim).c_str(),
                 human_seconds(ipm_sim).c_str(), agree ? "yes" : "NO");
    }
  }
  bench::note("expected shape: IPM needs far fewer (but heavier, m^3-Cholesky) iterations;");
  bench::note("simplex iterations grow with size. Both certify identical objectives.");
}

void ivm_comparison() {
  bench::title("E9-b", "flow-shop B&B: CPU explicit nodes vs host IVM vs GPU IVM fleet");
  bench::row("  %-12s %-12s %-10s %-12s %-12s %-10s %-12s", "instance", "engine", "optimum",
             "nodes", "sim-time", "waves", "PCIe-bytes");
  Rng rng(602);
  for (int jobs : {8, 9, 10}) {
    ivm::FlowshopInstance inst = ivm::FlowshopInstance::random(4, jobs, rng);
    const std::string name = "4m x " + std::to_string(jobs) + "j";
    {
      WallTimer t;
      ivm::BnbStats r = ivm::solve_flowshop_cpu(inst);
      // Host cost: bound evaluations at CPU rates.
      const double sim = static_cast<double>(r.nodes_bounded) *
                         (4.0 * inst.machines * inst.jobs / lp::CpuCostModel{}.flops +
                          lp::CpuCostModel{}.per_op_overhead);
      bench::row("  %-12s %-12s %-10.0f %-12ld %-12s %-10s %-12s", name.c_str(), "cpu-dfs",
                 r.best_makespan, r.nodes_bounded, human_seconds(sim).c_str(), "-", "-");
    }
    {
      ivm::BnbStats r = ivm::solve_flowshop_ivm_host(inst);
      const double sim = static_cast<double>(r.nodes_bounded) *
                         (4.0 * inst.machines * inst.jobs / lp::CpuCostModel{}.flops +
                          lp::CpuCostModel{}.per_op_overhead);
      bench::row("  %-12s %-12s %-10.0f %-12ld %-12s %-10s %-12s", name.c_str(), "ivm-host",
                 r.best_makespan, r.nodes_bounded, human_seconds(sim).c_str(), "-", "-");
    }
    for (int fleet : {16, 128}) {
      gpu::Device device;
      ivm::GpuBnbOptions opts;
      opts.num_ivms = fleet;
      ivm::BnbStats r = ivm::solve_flowshop_gpu(inst, device, opts);
      bench::row("  %-12s ivm-gpu-%-4d %-10.0f %-12ld %-12s %-10ld %-12s", name.c_str(), fleet,
                 r.best_makespan, r.nodes_bounded,
                 human_seconds(device.synchronize()).c_str(), r.kernel_waves,
                 human_bytes(device.stats().bytes_h2d + device.stats().bytes_d2h).c_str());
    }
  }
  bench::note("expected shape: all engines agree on the optimum; the GPU fleet explores more");
  bench::note("nodes (weaker pruning order, interval parallelism) but runs them in few");
  bench::note("divergent waves with almost no PCIe traffic — the IVM argument.");
}

void knapsack_comparison() {
  bench::title("E9-c", "knapsack B&B: host DFS vs frontier-batched device engine");
  bench::row("  %-8s %-12s %-12s %-12s %-12s", "items", "optimum", "cpu-nodes", "gpu-nodes",
             "gpu-waves");
  Rng rng(603);
  for (int items : {16, 20, 24}) {
    ivm::KnapsackInstance inst = ivm::KnapsackInstance::random(items, rng);
    ivm::KnapsackResult cpu = ivm::solve_knapsack_cpu(inst);
    gpu::Device device;
    ivm::KnapsackResult gpu_r = ivm::solve_knapsack_gpu(inst, device);
    bench::row("  %-8d %-12.0f %-12ld %-12ld %-12ld%s", items, cpu.best_value, cpu.nodes,
               gpu_r.nodes, gpu_r.kernel_waves,
               cpu.best_value == gpu_r.best_value ? "" : "  MISMATCH");
  }
}

void BM_simplex(benchmark::State& state) {
  Rng rng(604);
  lp::LpModel model = problems::dense_lp(static_cast<int>(state.range(0)),
                                         static_cast<int>(state.range(0)) * 3 / 2, rng);
  const lp::StandardForm form = lp::build_standard_form(model);
  for (auto _ : state) {
    lp::SimplexSolver solver(form);
    lp::LpResult r = solver.solve_default();
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_simplex)->Arg(40)->Arg(80)->Unit(benchmark::kMillisecond);

void BM_ipm(benchmark::State& state) {
  Rng rng(605);
  lp::LpModel model = problems::dense_lp(static_cast<int>(state.range(0)),
                                         static_cast<int>(state.range(0)) * 3 / 2, rng);
  const lp::StandardForm form = lp::build_standard_form(model);
  for (auto _ : state) {
    lp::InteriorPointSolver solver(form);
    lp::LpResult r = solver.solve_default();
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_ipm)->Arg(40)->Arg(80)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  simplex_vs_ipm();
  ivm_comparison();
  knapsack_comparison();
  return gpumip::bench::run_benchmarks(argc, argv);
}
