// Event tracing: ordered, timestamped records of WHAT happened WHEN, per
// thread and per simmpi rank (see DESIGN.md, "Tracing", and docs/TRACING.md).
//
// The metrics layer (obs/metrics.hpp) aggregates — it can say a solve did
// 14 cut round trips, but not whether the device sat idle while they ran.
// This layer records the timeline itself: begin/end spans, instants,
// complete events with explicit simulated start/duration (device transfers
// and kernels), and *flow* events that stitch a simmpi message's send and
// recv into one cross-rank arrow using the per-(source,dest) sequence
// stamps from parallel/schedule.hpp.
//
// Recording model: each thread owns a fixed-capacity ring buffer acquired
// from a process-wide pool on first use and returned at thread exit (rings
// are reused, so the hundreds of short-lived rank threads a test run
// spawns do not grow memory without bound). Writes are plain stores by the
// owning thread — no locks, no atomics on the hot path. When a ring is
// full the oldest event is overwritten and the loss is counted, exported
// as the `gpumip.obs.trace.dropped` counter.
//
// Timestamps: a thread bound to a simmpi rank (trace::RankBinding,
// installed by run_ranks) stamps events with the rank's *simulated* Lamport
// clock, so a fuzzed schedule replayed via GPUMIP_SCHEDULE_REPLAY yields a
// bit-identical event sequence per rank (check/schedule_check.hpp asserts
// this). Unbound threads stamp wall-clock seconds from a process epoch.
// The two clocks are unrelated timelines and are exported as separate
// Chrome trace-event "processes".
//
// Reading/exporting a trace is only meaningful at quiescence (after
// run_ranks joined, or at process exit): snapshot()/export_json() walk
// rings that their owner threads may otherwise still be writing.
//
// Hot paths use the GPUMIP_TRACE_* macros below, which follow the
// GPUMIP_OBS on/off contract of obs/obs.hpp: with -DGPUMIP_OBS=OFF they
// compile to parsed-but-unevaluated no-ops and the event-name literals are
// absent from the binary. Every name used at a macro site is catalogued in
// docs/TRACING.md (gpumip-lint R4 enforces this statically).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gpumip::obs::trace {

enum class EventKind : std::uint8_t {
  kBegin,      ///< span opened (Chrome ph "B")
  kEnd,        ///< span closed (Chrome ph "E")
  kInstant,    ///< point event (Chrome ph "i")
  kComplete,   ///< explicit start+duration on the sim clock (Chrome ph "X")
  kFlowStart,  ///< producer side of a cross-thread arrow (Chrome ph "s")
  kFlowEnd,    ///< consumer side of the same arrow (Chrome ph "f")
};

/// Timeline lane for kComplete events: the simulated device serializes
/// transfers per direction engine and kernels per slot, so each engine is
/// its own row in the exported timeline.
enum class Lane : std::uint8_t { kCpu = 0, kH2D = 1, kD2H = 2, kKernel = 3 };

/// One recorded event. Fixed-size (the name is truncated into an inline
/// buffer) so a ring is a flat array and recording is a bounded copy.
struct TraceEvent {
  static constexpr std::size_t kNameCapacity = 47;
  char name[kNameCapacity + 1] = {};
  EventKind kind = EventKind::kInstant;
  Lane lane = Lane::kCpu;
  /// Timestamp source: simulated clock (simmpi rank clock or device stream
  /// clock) vs. wall clock. The exporter never mixes the two timelines.
  bool sim_time = false;
  std::int16_t rank = -1;    ///< bound simmpi rank; -1 for plain host threads
  std::uint32_t tid = 0;     ///< process-unique recording-thread id
  double ts = 0.0;           ///< seconds (sim or wall, per sim_time)
  double dur = 0.0;          ///< kComplete only
  std::uint64_t flow = 0;    ///< kFlowStart/kFlowEnd correlation id
  std::uint64_t arg = 0;     ///< one numeric payload (bytes, node id, ...)

  std::string_view name_view() const noexcept { return {name}; }
};

/// Events retained per thread ring before overwrite-oldest kicks in.
inline constexpr std::size_t kRingCapacity = 8192;

// ---- recording -------------------------------------------------------------

/// Opens a span on the calling thread (LIFO-nested; close with end()).
void begin(std::string_view name, std::uint64_t arg = 0);
/// Closes the innermost open span (name recalled from the span stack).
void end();
/// Closes the innermost open span, stamping `name` on the end event.
void end(std::string_view name);
void instant(std::string_view name, std::uint64_t arg = 0);
/// Records an interval with explicit *simulated* start/duration, e.g. a
/// device transfer whose engine-serialized window the sim already computed.
void complete(std::string_view name, Lane lane, double sim_start, double duration,
              std::uint64_t arg = 0);
/// Producer / consumer halves of a cross-thread arrow; both sides must
/// derive the same `id` (see flow_key).
void flow_begin(std::string_view name, std::uint64_t id);
void flow_end(std::string_view name, std::uint64_t id);

/// RAII holder for a begin()/end() span whose extent is not a clean
/// lexical scope (e.g. opened inside a wait loop, closed on every exit
/// path). open() is idempotent while the span is open — re-entering a wait
/// loop's open site is not a double begin — and close() is idempotent
/// while it is closed; the destructor closes an open span, so early
/// returns and throws cannot leak a begin (gpumip-lint R12). For spans
/// that ARE a lexical scope, construct with a name (or use
/// GPUMIP_TRACE_SCOPE) and let the destructor do the close. Hot paths use
/// the GPUMIP_TRACE_SPAN_* / GPUMIP_TRACE_SCOPE macros below so the name
/// literal follows the GPUMIP_OBS on/off contract.
class SpanGuard {
 public:
  SpanGuard() noexcept = default;
  explicit SpanGuard(std::string_view name, std::uint64_t arg = 0) { open(name, arg); }
  ~SpanGuard() { close(); }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  void open(std::string_view name, std::uint64_t arg = 0) {
    if (open_) return;
    begin(name, arg);
    name_ = name;
    open_ = true;
  }
  void close() {
    if (!open_) return;
    end(name_);
    open_ = false;
  }
  bool is_open() const noexcept { return open_; }

 private:
  std::string_view name_ = {};  ///< points at the literal passed to open()
  bool open_ = false;
};

/// Mixes (run, source, dest, seq) into a flow correlation id. `run`
/// namespaces concurrent/successive run_ranks worlds within one process so
/// their per-(source,dest) sequence counters cannot collide.
std::uint64_t flow_key(std::uint64_t run, int source, int dest, std::uint64_t seq) noexcept;

/// Next value of the process-global world counter (used by run_ranks as
/// the `run` argument of flow_key).
std::uint64_t next_run_id() noexcept;

// ---- thread binding --------------------------------------------------------

/// Scoped binding of the calling thread to a simmpi rank and its simulated
/// clock. While bound, events carry `rank` and are stamped from
/// `*sim_clock` (which the owning thread alone mutates). Nests safely —
/// the previous binding is restored on destruction.
class RankBinding {
 public:
  RankBinding(int rank, const double* sim_clock) noexcept;
  ~RankBinding();
  RankBinding(const RankBinding&) = delete;
  RankBinding& operator=(const RankBinding&) = delete;

 private:
  int prev_rank_;
  const double* prev_clock_;
};

/// Rank the calling thread is bound to (-1 when unbound).
int bound_rank() noexcept;

// ---- inspection & export (quiescence only) ---------------------------------

/// All retained events, in per-ring recording order (rings in creation
/// order). Callers wanting a global timeline sort by (sim_time, ts).
std::vector<TraceEvent> snapshot();

/// Events lost to ring overwrite since process start (or last reset()).
std::uint64_t dropped() noexcept;

/// Clears every ring and the drop count. Test isolation only; callers must
/// guarantee no thread is concurrently recording.
void reset();

/// The retained trace as a Chrome trace-event / Perfetto JSON document
/// (schema gpumip.trace.v1; load via chrome://tracing or ui.perfetto.dev).
std::string to_json();

/// Writes to_json() to `path`; throws Error(kIoError) on failure.
void export_json(const std::string& path);

/// Exports to the path named by GPUMIP_TRACE_OUT, if set. Returns the path
/// written to ("" when unset). Called by bench mains at exit.
std::string export_if_requested();

}  // namespace gpumip::obs::trace

// ---- hot-path macros (the obs/obs.hpp on/off contract) ---------------------

#ifdef GPUMIP_OBS_ENABLED

#define GPUMIP_TRACE_BEGIN(name, arg) \
  ::gpumip::obs::trace::begin(name, static_cast<std::uint64_t>(arg))
#define GPUMIP_TRACE_END(name) ::gpumip::obs::trace::end(name)
#define GPUMIP_TRACE_INSTANT(name, arg) \
  ::gpumip::obs::trace::instant(name, static_cast<std::uint64_t>(arg))
#define GPUMIP_TRACE_COMPLETE(name, lane, sim_start, duration, arg)            \
  ::gpumip::obs::trace::complete(name, lane, sim_start, duration,              \
                                 static_cast<std::uint64_t>(arg))
#define GPUMIP_TRACE_FLOW_BEGIN(name, id) ::gpumip::obs::trace::flow_begin(name, id)
#define GPUMIP_TRACE_FLOW_END(name, id) ::gpumip::obs::trace::flow_end(name, id)

// RAII span forms. GUARD declares an (initially closed) guard so the open
// can happen mid-scope — e.g. inside a wait loop — while the destructor
// still closes the span on every exit path; SCOPE is the simple
// whole-scope span. gpumip-lint R12 tracks only the raw BEGIN/END macros,
// so these forms are balanced by construction.
#define GPUMIP_TRACE_CONCAT_IMPL(a, b) a##b
#define GPUMIP_TRACE_CONCAT(a, b) GPUMIP_TRACE_CONCAT_IMPL(a, b)
#define GPUMIP_TRACE_SPAN_GUARD(var) ::gpumip::obs::trace::SpanGuard var
#define GPUMIP_TRACE_SPAN_OPEN(var, name, arg) \
  (var).open(name, static_cast<std::uint64_t>(arg))
#define GPUMIP_TRACE_SPAN_CLOSE(var) (var).close()
#define GPUMIP_TRACE_SCOPE(name, arg)                                     \
  ::gpumip::obs::trace::SpanGuard GPUMIP_TRACE_CONCAT(gpumip_trace_scope_, \
                                                      __LINE__)(          \
      name, static_cast<std::uint64_t>(arg))

#else  // !GPUMIP_OBS_ENABLED

// Parsed but never evaluated (the obs.hpp idiom): expressions stay
// semantically checked, the name literal never reaches the binary.
#define GPUMIP_TRACE_BEGIN(name, arg)                   \
  do {                                                  \
    if (false) {                                        \
      static_cast<void>(name);                          \
      static_cast<void>(arg);                           \
    }                                                   \
  } while (false)
#define GPUMIP_TRACE_END(name)                          \
  do {                                                  \
    if (false) static_cast<void>(name);                 \
  } while (false)
#define GPUMIP_TRACE_INSTANT(name, arg) GPUMIP_TRACE_BEGIN(name, arg)
#define GPUMIP_TRACE_COMPLETE(name, lane, sim_start, duration, arg) \
  do {                                                  \
    if (false) {                                        \
      static_cast<void>(name);                          \
      static_cast<void>(lane);                          \
      static_cast<void>(sim_start);                     \
      static_cast<void>(duration);                      \
      static_cast<void>(arg);                           \
    }                                                   \
  } while (false)
#define GPUMIP_TRACE_FLOW_BEGIN(name, id) GPUMIP_TRACE_BEGIN(name, id)
#define GPUMIP_TRACE_FLOW_END(name, id) GPUMIP_TRACE_BEGIN(name, id)

// The guard object still exists (it carries no name until open(), and its
// non-trivial destructor keeps -Wunused-variable quiet); the open/close
// sites are parsed-but-unevaluated, so the name literal never reaches the
// binary.
#define GPUMIP_TRACE_SPAN_GUARD(var) ::gpumip::obs::trace::SpanGuard var
#define GPUMIP_TRACE_SPAN_OPEN(var, name, arg)          \
  do {                                                  \
    if (false) {                                        \
      static_cast<void>(var);                           \
      static_cast<void>(name);                          \
      static_cast<void>(arg);                           \
    }                                                   \
  } while (false)
#define GPUMIP_TRACE_SPAN_CLOSE(var)                    \
  do {                                                  \
    if (false) static_cast<void>(var);                  \
  } while (false)
#define GPUMIP_TRACE_SCOPE(name, arg)                   \
  do {                                                  \
    if (false) {                                        \
      static_cast<void>(name);                          \
      static_cast<void>(arg);                           \
    }                                                   \
  } while (false)

#endif  // GPUMIP_OBS_ENABLED
