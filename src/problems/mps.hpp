// MPS file reader/writer so real instances (e.g. MIPLIB) can be loaded
// when available. Free-format MPS with the common sections: NAME, ROWS,
// COLUMNS (with INTORG/INTEND markers), RHS, RANGES, BOUNDS, ENDATA.
#pragma once

#include <iosfwd>
#include <string>

#include "mip/model.hpp"

namespace gpumip::problems {

/// Parses free-format MPS. Throws Error(kIoError) on malformed input.
[[nodiscard]] mip::MipModel read_mps(std::istream& in);
[[nodiscard]] mip::MipModel read_mps_file(const std::string& path);
[[nodiscard]] mip::MipModel read_mps_string(const std::string& text);

/// Writes free-format MPS.
void write_mps(const mip::MipModel& model, std::ostream& out,
               const std::string& name = "GPUMIP");
[[nodiscard]] std::string write_mps_string(const mip::MipModel& model, const std::string& name = "GPUMIP");

}  // namespace gpumip::problems
