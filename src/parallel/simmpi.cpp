#include "parallel/simmpi.hpp"

#include <atomic>
#include <thread>

#include "check/schedule_check.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "support/assert.hpp"
#include "support/log.hpp"
#include "support/timer.hpp"

namespace gpumip::parallel {

namespace detail {

/// Thrown by blocked primitives when the world is torn down (peer failure
/// or detected deadlock). Distinguished from a rank's own failure so the
/// abnormal-exit report counts only genuinely failed ranks.
struct AbortError : Error {
  explicit AbortError(const std::string& message) : Error(ErrorCode::kInternal, message) {}
};

struct Mailbox {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Message> queue;
};

struct World {
  int size = 0;
  NetworkConfig network;
  std::vector<std::unique_ptr<Mailbox>> mailboxes;
  std::mutex stats_mutex;
  NetworkStats stats;
  /// Set when any rank exits with an exception or the deadlock detector
  /// fires; blocked recv()/barrier() calls on the surviving ranks then
  /// throw instead of waiting forever for a peer that will never send
  /// (run_ranks rethrows the original error after the join). Without this,
  /// a checked-mode invariant failure inside one rank would deadlock the
  /// whole run.
  std::atomic<bool> aborted{false};

  /// Schedule controller: delivery fuzzing, wait-for graph, trace
  /// record/replay (parallel/schedule.hpp).
  Scheduler sched;

  /// Namespaces this world's flow-event correlation ids (obs/trace.hpp):
  /// per-(source,dest) seq counters restart at 1 for every world, so the
  /// run id keeps arrows from successive run_ranks calls distinct.
  std::uint64_t trace_run = 0;

  // Barrier state.
  std::mutex barrier_mutex;
  std::condition_variable barrier_cv;
  int barrier_waiting = 0;
  std::uint64_t barrier_generation = 0;
  double barrier_clock = 0.0;

  /// Aborts the run: every blocked rank wakes and unwinds. Notifications
  /// happen under the corresponding mutex — all waits are predicate waits,
  /// but the predicate check and the sleep are only atomic against
  /// notifiers that hold the same mutex. Never call while holding any
  /// mailbox or barrier mutex.
  void abort_world() {
    aborted.store(true);
    for (auto& box : mailboxes) {
      std::lock_guard<std::mutex> lock(box->mutex);
      box->cv.notify_all();
    }
    {
      std::lock_guard<std::mutex> lock(barrier_mutex);
      barrier_cv.notify_all();
    }
  }
};

}  // namespace detail

int Comm::size() const noexcept { return world_->size; }

void Comm::obs_bind() {
#ifdef GPUMIP_OBS_ENABLED
  // Per-rank families are one labeled instrument per rank — the registry
  // hands back stable references, so binding once per Comm keeps the send
  // path at one relaxed RMW per instrument.
  const std::string rank_str = std::to_string(rank_);
  obs_sent_msgs_ = &obs::counter("gpumip.simmpi.sent.msgs", {{"rank", rank_str}});
  obs_sent_bytes_ = &obs::counter("gpumip.simmpi.sent.bytes", {{"rank", rank_str}});
  obs_idle_seconds_ = &obs::gauge("gpumip.simmpi.recv.idle_seconds", {{"rank", rank_str}});
#endif
}

void Comm::throw_aborted() const {
  if (world_->sched.deadlocked()) {
    throw detail::AbortError(world_->sched.deadlock_report());
  }
  throw detail::AbortError("rank " + std::to_string(rank_) +
                           ": run aborted by a failure on another rank");
}

void Comm::send(int dest, int tag, std::span<const std::byte> payload) {
  // Residual copy path for callers that must keep their buffer; the
  // counter keeps any copy traffic visible next to the C8 byte totals.
  GPUMIP_OBS_ADD("gpumip.simmpi.payload.copy_bytes", payload.size());
  // gpumip-lint: hot-alloc(span overload materializes an owned buffer once; hot senders use the zero-copy overload)
  send(dest, tag, std::vector<std::byte>(payload.begin(), payload.end()));
}

void Comm::send(int dest, int tag, std::vector<std::byte>&& payload) {
  check_arg(dest >= 0 && dest < world_->size, "send: bad destination rank");
  world_->sched.perturb(rank_);
  // gpumip-lint: hot-alloc(lazy once-per-rank sequence table, sized by world size)
  if (send_seq_.empty()) send_seq_.assign(static_cast<std::size_t>(world_->size), 0);
  Message msg;
  msg.source = rank_;
  msg.tag = tag;
  msg.payload = std::move(payload);
  const std::size_t bytes = msg.payload.size();
  msg.send_time = clock_ + world_->network.wire_time(bytes);
  msg.seq = ++send_seq_[static_cast<std::size_t>(dest)];
  {
    std::lock_guard<std::mutex> lock(world_->stats_mutex);
    ++world_->stats.messages;
    world_->stats.bytes += bytes;
  }
  GPUMIP_OBS_COUNT("gpumip.simmpi.msgs");
  GPUMIP_OBS_ADD("gpumip.simmpi.bytes", bytes);
#ifdef GPUMIP_OBS_ENABLED
  if (obs_sent_msgs_ == nullptr) obs_bind();
  obs_sent_msgs_->add(1);
  obs_sent_bytes_->add(bytes);
#endif
  GPUMIP_TRACE_INSTANT("gpumip.simmpi.send", bytes);
  GPUMIP_TRACE_FLOW_BEGIN("gpumip.simmpi.msg",
                          obs::trace::flow_key(world_->trace_run, rank_, dest, msg.seq));
  // Mirror header first: the deadlock detector must never observe a queued
  // message without its header (it could then conclude a receiver is
  // unsatisfiable while its wake-up is materializing).
  world_->sched.on_send(rank_, dest, {rank_, tag, msg.seq, bytes}, clock_);
  detail::Mailbox& box = *world_->mailboxes[static_cast<std::size_t>(dest)];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    // Delivery-order fuzzing: the new message may overtake any suffix of
    // queued messages from OTHER sources (per-source FIFO is the MPI
    // non-overtaking guarantee and the eligibility rule for reordering).
    std::size_t eligible = 0;
    for (auto it = box.queue.rbegin(); it != box.queue.rend(); ++it) {
      if (it->source == msg.source) break;
      ++eligible;
    }
    const std::size_t jump = world_->sched.overtake(dest, eligible);
    // gpumip-lint: hot-alloc(mailbox queue IS the transport; the moved-in message reuses the sender's buffer)
    box.queue.insert(box.queue.end() - static_cast<std::ptrdiff_t>(jump), std::move(msg));
  }
  box.cv.notify_all();
}

namespace {

bool matches(const Message& msg, int source, int tag) {
  return (source < 0 || msg.source == source) && (tag < 0 || msg.tag == tag);
}

/// First queued message satisfying the caller's filter — or, under replay,
/// the exact traced next delivery regardless of queue position.
std::deque<Message>::iterator find_match(std::deque<Message>& queue, int source, int tag,
                                         const DeliveryRecord* expect) {
  for (auto it = queue.begin(); it != queue.end(); ++it) {
    if (expect != nullptr) {
      if (it->source == expect->source && it->seq == expect->seq) return it;
    } else if (matches(*it, source, tag)) {
      return it;
    }
  }
  return queue.end();
}

[[noreturn]] void throw_replay_filter_mismatch(int rank, const Message& msg, int source, int tag) {
  throw Error(ErrorCode::kInternal,
              "schedule replay diverged: rank " + std::to_string(rank) +
                  " traced delivery (src " + std::to_string(msg.source) + ", tag " +
                  std::to_string(msg.tag) + ", seq " + std::to_string(msg.seq) +
                  ") does not satisfy the recv filter (source=" + std::to_string(source) +
                  ", tag=" + std::to_string(tag) + ")");
}

}  // namespace

// gpumip-lint: hot-copy(returned Message moves out of the mailbox (NRVO/move); the payload buffer changes owner, not contents)
Message Comm::recv(int source, int tag) {
  detail::World& world = *world_;
  world.sched.perturb(rank_);
  detail::Mailbox& box = *world.mailboxes[static_cast<std::size_t>(rank_)];
  // The wait span opens on the first blocking pass and must close on every
  // exit — including the replay-mismatch and world-abort throws below — or
  // the exported timeline shows a rank blocked forever. The guard's
  // destructor covers the throw paths; the explicit close keeps the
  // recorded end at the Lamport merge, not at unwind.
  GPUMIP_TRACE_SPAN_GUARD(wait_span);
  for (;;) {
    const DeliveryRecord* expect = world.sched.replay_next(rank_);
    bool got = false;
    Message msg;
    {
      std::lock_guard<std::mutex> lock(box.mutex);
      auto it = find_match(box.queue, source, tag, expect);
      if (it != box.queue.end()) {
        msg = std::move(*it);
        box.queue.erase(it);
        got = true;
      }
    }
    if (got) {
      if (expect != nullptr && !matches(msg, source, tag)) {
        throw_replay_filter_mismatch(rank_, msg, source, tag);
      }
      GPUMIP_ASSERT(msg.source >= 0 && msg.source < world.size,
                    "recv: message from out-of-range rank");
      GPUMIP_ASSERT(msg.send_time >= 0.0, "recv: negative arrival time");
      clock_ = std::max(clock_, msg.send_time);
      world.sched.on_delivered(rank_, msg, clock_);
      GPUMIP_TRACE_FLOW_END("gpumip.simmpi.msg",
                            obs::trace::flow_key(world.trace_run, msg.source, rank_, msg.seq));
      GPUMIP_TRACE_INSTANT("gpumip.simmpi.recv", msg.payload.size());
      // The wait span closes after the Lamport merge, so its simulated
      // duration is exactly the clock jump the blocking delivery caused.
      // Whether a recv blocks at all is schedule-dependent, which is why
      // replay-equality checks skip this one event name.
      GPUMIP_TRACE_SPAN_CLOSE(wait_span);
      return msg;
    }
    if (world.aborted.load()) throw_aborted();
    // Register in the wait-for graph; this block may complete a provable
    // deadlock, in which case the whole world aborts with the dump.
    if (world.sched.on_block_recv(rank_, source, tag, expect, clock_)) {
      world.abort_world();
    }
    GPUMIP_TRACE_SPAN_OPEN(wait_span, "gpumip.simmpi.recv.wait", 0);
    {
#ifdef GPUMIP_OBS_ENABLED
      const WallTimer blocked;
#endif
      std::unique_lock<std::mutex> lock(box.mutex);
      box.cv.wait(lock, [&] {
        return world.aborted.load() ||
               find_match(box.queue, source, tag, expect) != box.queue.end();
      });
      lock.unlock();
#ifdef GPUMIP_OBS_ENABLED
      const double idle = blocked.elapsed();
      GPUMIP_OBS_RECORD("gpumip.simmpi.recv.block_seconds", idle);
      if (obs_idle_seconds_ == nullptr) obs_bind();
      obs_idle_seconds_->add(idle);
#endif
    }
    world.sched.on_unblock(rank_, clock_);
  }
}

bool Comm::try_recv(Message& out, int source, int tag) {
  detail::World& world = *world_;
  world.sched.perturb(rank_);
  // An asynchronous network never guarantees arrival by any particular
  // poll, so reporting "nothing yet" despite a queued message is always a
  // legal schedule — fuzz it.
  if (world.sched.spurious_try_recv_failure(rank_)) return false;
  const DeliveryRecord* expect = world.sched.replay_next(rank_);
  detail::Mailbox& box = *world.mailboxes[static_cast<std::size_t>(rank_)];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    auto it = find_match(box.queue, source, tag, expect);
    if (it == box.queue.end()) return false;
    out = std::move(*it);
    box.queue.erase(it);
  }
  if (expect != nullptr && !matches(out, source, tag)) {
    throw_replay_filter_mismatch(rank_, out, source, tag);
  }
  clock_ = std::max(clock_, out.send_time);
  world.sched.on_delivered(rank_, out, clock_);
  GPUMIP_TRACE_FLOW_END("gpumip.simmpi.msg",
                        obs::trace::flow_key(world.trace_run, out.source, rank_, out.seq));
  GPUMIP_TRACE_INSTANT("gpumip.simmpi.recv", out.payload.size());
  return true;
}

void Comm::barrier() {
  detail::World& world = *world_;
  world.sched.perturb(rank_);
  std::unique_lock<std::mutex> lock(world.barrier_mutex);
  world.barrier_clock = std::max(world.barrier_clock, clock_);
  const std::uint64_t generation = world.barrier_generation;
  if (++world.barrier_waiting == world.size) {
    world.barrier_waiting = 0;
    ++world.barrier_generation;
    // Tell the detector every waiter of this generation is runnable before
    // any wake-up races with a new block registration (barrier_mutex is
    // held across both, and next-generation waiters can only register
    // after this release).
    world.sched.on_barrier_release();
    world.barrier_cv.notify_all();
  } else {
    const bool fire = world.sched.on_block_barrier(rank_, clock_);
    if (fire) {
      // abort_world needs the mailbox/barrier locks; drop ours first.
      lock.unlock();
      world.abort_world();
      lock.lock();
    }
    world.barrier_cv.wait(lock, [&] {
      return world.barrier_generation != generation || world.aborted.load();
    });
    if (world.barrier_generation == generation) {
      lock.unlock();
      world.sched.on_unblock(rank_, clock_);
      throw_aborted();
    }
    world.sched.on_unblock(rank_, clock_);
  }
  clock_ = std::max(clock_, world.barrier_clock + world.network.latency);
}

RunReport run_ranks(int n, const std::function<void(Comm&)>& body, NetworkConfig network) {
  RunOptions options;
  options.network = network;
  return run_ranks(n, body, options);
}

RunReport run_ranks(int n, const std::function<void(Comm&)>& body, const RunOptions& options) {
  check_arg(n >= 1, "run_ranks: need at least one rank");
  detail::World world;
  world.size = n;
  world.network = options.network;
  for (int i = 0; i < n; ++i) world.mailboxes.push_back(std::make_unique<detail::Mailbox>());

  // Environment knobs apply when the caller did not configure the
  // corresponding control explicitly (so a ctest seed sweep reaches every
  // run_ranks in the process without code changes).
  ScheduleConfig schedule = options.schedule;
  DeliveryTrace env_replay;
  const ScheduleEnv& env = schedule_env();
  if (schedule.replay == nullptr && !env.replay_path.empty()) {
    env_replay = load_trace(env.replay_path);
    schedule.replay = &env_replay;
  }
  if (!schedule.fuzz && schedule.replay == nullptr && env.seed.has_value()) {
    schedule.fuzz = true;
    schedule.seed = *env.seed;
  }
  world.sched.init(n, schedule);
  world.trace_run = obs::trace::next_run_id();
  const bool dump_on_failure = !env.trace_path.empty();
  if (dump_on_failure) world.sched.force_recording();

  std::vector<double> clocks(static_cast<std::size_t>(n), 0.0);
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::atomic<int> failed_ranks{0};

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(&world, r);
      // Stamp this thread's trace events from the rank's simulated Lamport
      // clock (only this thread mutates it), keyed by rank for the export.
      const obs::trace::RankBinding trace_bind(r, &comm.clock_);
      bool failed = false;
      bool abort_unwind = false;
      try {
        body(comm);
      } catch (const detail::AbortError&) {
        // Torn down by a peer's failure or a detected deadlock: this rank
        // did not fail, it was unwound. The dump/abort error still wins
        // the rethrow if nothing was recorded yet (deadlock case).
        abort_unwind = true;
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      } catch (...) {
        failed = true;
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      // A normal exit can strand survivors blocked on this rank — that is
      // a protocol bug the detector turns into an abort-with-dump instead
      // of a hang; a failed exit aborts the world outright.
      const bool deadlock = world.sched.on_exit(r, failed || abort_unwind, comm.now());
      if (failed) {
        failed_ranks.fetch_add(1);
        world.abort_world();
      } else if (deadlock) {
        world.abort_world();
      }
      clocks[static_cast<std::size_t>(r)] = comm.now();
    });
  }
  for (auto& t : threads) t.join();

  // The report is truthful on both exits: final rank clocks, traffic
  // counters, and whatever was still sitting in mailboxes when the world
  // came down (on the abort path that includes every in-flight message the
  // dead protocol never consumed).
  RunReport report;
  report.rank_clocks = clocks;
  for (double c : clocks) report.makespan = std::max(report.makespan, c);
  report.network = world.stats;
  for (const auto& box : world.mailboxes) {
    report.network.undelivered += box->queue.size();
  }
  report.failed_ranks = failed_ranks.load();
  report.deadlock_detected = world.sched.deadlocked();
  GPUMIP_OBS_COUNT("gpumip.simmpi.runs");
  GPUMIP_OBS_ADD("gpumip.simmpi.undelivered", report.network.undelivered);
  GPUMIP_OBS_RECORD("gpumip.simmpi.makespan_seconds", report.makespan);
  if (report.network.undelivered > 0 && first_error == nullptr) {
    GPUMIP_LOG(Debug) << "run_ranks: " << report.network.undelivered
                      << " message(s) never received before shutdown";
  }

  DeliveryTrace trace = world.sched.take_trace();
  // Lamport invariant: per-rank delivery clocks never regress, per-source
  // delivery sequence numbers never reorder (checked builds only).
  GPUMIP_VALIDATE(if (!trace.empty()) check::check_delivery_trace(trace));
  if (schedule.record != nullptr) *schedule.record = trace;
  if (options.report_out != nullptr) *options.report_out = report;

  if (first_error) {
    if (dump_on_failure && !trace.empty()) {
      try {
        save_trace(trace, env.trace_path);
        GPUMIP_LOG(Warn) << "run_ranks: failing delivery order written to " << env.trace_path
                         << " (" << trace.size() << " deliveries); replay with "
                         << "GPUMIP_SCHEDULE_REPLAY=" << env.trace_path;
      } catch (const Error& io) {
        GPUMIP_LOG(Error) << "run_ranks: could not write schedule trace: " << io.what();
      }
    }
    std::rethrow_exception(first_error);
  }
  return report;
}

// The empty-payload guards below matter: memcpy/insert with a null source
// pointer is undefined behaviour even for zero bytes (UBSan flags it), and
// empty vectors legitimately cross the wire (e.g. a report with no frontier).

void ByteWriter::write_doubles(std::span<const double> values) {
  write<std::uint64_t>(values.size());
  if (values.empty()) return;
  const auto* p = reinterpret_cast<const std::byte*>(values.data());
  // gpumip-lint: hot-alloc(serialization buffer growth, geometric; take() then moves it into the zero-copy send)
  buffer_.insert(buffer_.end(), p, p + values.size_bytes());
}

void ByteWriter::write_ints(std::span<const int> values) {
  write<std::uint64_t>(values.size());
  if (values.empty()) return;
  const auto* p = reinterpret_cast<const std::byte*>(values.data());
  buffer_.insert(buffer_.end(), p, p + values.size_bytes());
}

std::vector<double> ByteReader::read_doubles() {
  const auto count = read<std::uint64_t>();
  // Division form so a corrupt count header cannot overflow the bound
  // check (count * 8 wraps u64 for count >= 2^61); corruption is a
  // protocol error, not a caller bug.
  check_protocol(count <= (data_.size() - pos_) / sizeof(double),
                 "read_doubles: out of data");
  // gpumip-lint: hot-alloc(decode materializes the vector the caller keeps; sized exactly, allocated once)
  std::vector<double> out(count);
  if (count == 0) return out;
  std::memcpy(out.data(), data_.data() + pos_, count * sizeof(double));
  pos_ += count * sizeof(double);
  return out;
}

std::vector<int> ByteReader::read_ints() {
  const auto count = read<std::uint64_t>();
  check_protocol(count <= (data_.size() - pos_) / sizeof(int),
                 "read_ints: out of data");
  std::vector<int> out(count);
  if (count == 0) return out;
  std::memcpy(out.data(), data_.data() + pos_, count * sizeof(int));
  pos_ += count * sizeof(int);
  return out;
}

}  // namespace gpumip::parallel
