#include <gtest/gtest.h>

#include <cmath>

#include "mip/solver.hpp"
#include "problems/generators.hpp"

namespace gpumip::mip {
namespace {

using problems::RandomMipConfig;

MipResult solve(const MipModel& model, MipOptions opts = {}) {
  BnbSolver solver(model, std::move(opts));
  return solver.solve();
}

TEST(MipModel, BuildersAndIntegrality) {
  MipModel m;
  const int a = m.add_col(1.0);
  const int b = m.add_int_col(1.0, 0, 5);
  const int c = m.add_bin_col(1.0);
  EXPECT_FALSE(m.is_integer(a));
  EXPECT_TRUE(m.is_integer(b));
  EXPECT_TRUE(m.is_integer(c));
  EXPECT_EQ(m.num_integer(), 2);
  EXPECT_TRUE(m.is_integral(linalg::Vector{0.5, 2.0, 1.0}));
  EXPECT_FALSE(m.is_integral(linalg::Vector{0.5, 2.5, 1.0}));
}

TEST(Bnb, SimpleTwoVarInteger) {
  // max x + y st 2x + y <= 5, x + 3y <= 7, x,y int >= 0.
  // LP opt fractional; integer optimum 3 (e.g. x=2,y=1 or x=1, y=2).
  MipModel m;
  m.lp().set_sense(lp::Sense::Maximize);
  const int x = m.add_int_col(1.0, 0, 10), y = m.add_int_col(1.0, 0, 10);
  m.lp().add_row_le({{x, 2.0}, {y, 1.0}}, 5.0);
  m.lp().add_row_le({{x, 1.0}, {y, 3.0}}, 7.0);
  MipResult r = solve(m);
  ASSERT_EQ(r.status, MipStatus::Optimal);
  EXPECT_NEAR(r.objective, 3.0, 1e-7);
  EXPECT_TRUE(m.is_integral(r.x));
  EXPECT_TRUE(m.is_feasible(r.x));
}

TEST(Bnb, KnapsackAgainstDp) {
  // Exact knapsack via DP cross-check (integer weights).
  Rng rng(7);
  const int n = 14;
  std::vector<int> w(n);
  std::vector<double> v(n);
  MipModel m;
  m.lp().set_sense(lp::Sense::Maximize);
  std::vector<lp::Term> row;
  int total = 0;
  for (int j = 0; j < n; ++j) {
    w[static_cast<std::size_t>(j)] = static_cast<int>(rng.uniform_int(1, 12));
    v[static_cast<std::size_t>(j)] = static_cast<double>(rng.uniform_int(1, 30));
    m.add_bin_col(v[static_cast<std::size_t>(j)]);
    row.push_back({j, static_cast<double>(w[static_cast<std::size_t>(j)])});
    total += w[static_cast<std::size_t>(j)];
  }
  const int cap = total / 2;
  m.lp().add_row_le(row, cap);
  // DP.
  std::vector<double> dp(static_cast<std::size_t>(cap) + 1, 0.0);
  for (int j = 0; j < n; ++j) {
    for (int cw = cap; cw >= w[static_cast<std::size_t>(j)]; --cw) {
      dp[static_cast<std::size_t>(cw)] =
          std::max(dp[static_cast<std::size_t>(cw)],
                   dp[static_cast<std::size_t>(cw - w[static_cast<std::size_t>(j)])] +
                       v[static_cast<std::size_t>(j)]);
    }
  }
  MipResult r = solve(m);
  ASSERT_EQ(r.status, MipStatus::Optimal);
  EXPECT_NEAR(r.objective, dp[static_cast<std::size_t>(cap)], 1e-7);
}

TEST(Bnb, InfeasibleMip) {
  MipModel m;
  const int x = m.add_int_col(1.0, 0, 10);
  m.lp().add_row_range({{x, 2.0}}, 3.0, 3.5);  // 2x in [3,3.5] has no integer x
  MipResult r = solve(m);
  EXPECT_EQ(r.status, MipStatus::Infeasible);
  EXPECT_FALSE(r.has_solution);
}

TEST(Bnb, UnboundedMip) {
  MipModel m;
  m.lp().set_sense(lp::Sense::Maximize);
  m.add_int_col(1.0, 0, lp::kInf);
  MipOptions opts;
  opts.enable_cuts = false;
  opts.enable_heuristics = false;
  MipResult r = solve(m, opts);
  EXPECT_EQ(r.status, MipStatus::Unbounded);
}

TEST(Bnb, MixedIntegerContinuous) {
  // max 4x + 3y, x int, y cont; 2x + y <= 10, x + 3y <= 15.
  MipModel m;
  m.lp().set_sense(lp::Sense::Maximize);
  const int x = m.add_int_col(4.0, 0, 10);
  const int y = m.add_col(3.0, 0, 10);
  m.lp().add_row_le({{x, 2.0}, {y, 1.0}}, 10.0);
  m.lp().add_row_le({{x, 1.0}, {y, 3.0}}, 15.0);
  MipResult r = solve(m);
  ASSERT_EQ(r.status, MipStatus::Optimal);
  // x=3 -> y <= min(4, 4) = 4: obj 24; x=4 -> y <= 2: 22; x=3,y=4: 24.
  EXPECT_NEAR(r.objective, 24.0, 1e-6);
  EXPECT_NEAR(r.x[0], 3.0, 1e-6);
  EXPECT_NEAR(r.x[1], 4.0, 1e-6);
}

TEST(Bnb, NodeLimitReported) {
  Rng rng(11);
  RandomMipConfig cfg;
  cfg.rows = 12;
  cfg.cols = 24;
  MipModel m = problems::random_mip(cfg, rng);
  MipOptions opts;
  opts.max_nodes = 2;
  opts.enable_heuristics = false;
  opts.enable_cuts = false;
  MipResult r = solve(m, opts);
  EXPECT_EQ(r.status, MipStatus::NodeLimit);
  EXPECT_LE(r.stats.nodes_evaluated, 2);
}

// The core correctness property: branch-and-bound equals brute-force
// enumeration across random instances, with every option combination.
struct EngineConfig {
  NodeSelection selection;
  BranchRule rule;
  bool cuts;
  bool heuristics;
};

class BnbMatchesEnumeration : public ::testing::TestWithParam<int> {};

TEST_P(BnbMatchesEnumeration, RandomSmallMips) {
  const int param = GetParam();
  Rng rng(1000 + static_cast<std::uint64_t>(param) * 31);
  RandomMipConfig cfg;
  cfg.rows = 4 + param % 4;
  cfg.cols = 5 + param % 3;
  cfg.density = 0.5;
  cfg.integer_fraction = 0.8;
  cfg.bound = 3.0;
  MipModel m = problems::random_mip(cfg, rng);
  MipResult exact = solve_by_enumeration(m);
  ASSERT_EQ(exact.status, MipStatus::Optimal);

  static const EngineConfig kConfigs[] = {
      {NodeSelection::BestFirst, BranchRule::MostFractional, false, false},
      {NodeSelection::DepthFirst, BranchRule::MostFractional, false, true},
      {NodeSelection::GpuLocality, BranchRule::MostFractional, false, false},
      {NodeSelection::BestFirst, BranchRule::Pseudocost, false, false},
      {NodeSelection::BestFirst, BranchRule::Strong, false, false},
      {NodeSelection::BestFirst, BranchRule::MostFractional, true, true},
      {NodeSelection::GpuLocality, BranchRule::Pseudocost, true, true},
  };
  for (const auto& ec : kConfigs) {
    MipOptions opts;
    opts.node_selection = ec.selection;
    opts.branching = ec.rule;
    opts.enable_cuts = ec.cuts;
    opts.enable_heuristics = ec.heuristics;
    MipResult r = solve(m, opts);
    ASSERT_EQ(r.status, MipStatus::Optimal)
        << node_selection_name(ec.selection) << "/" << branch_rule_name(ec.rule);
    EXPECT_NEAR(r.objective, exact.objective, 1e-6)
        << node_selection_name(ec.selection) << "/" << branch_rule_name(ec.rule)
        << " cuts=" << ec.cuts << " heur=" << ec.heuristics;
    EXPECT_TRUE(m.is_integral(r.x));
    EXPECT_TRUE(m.is_feasible(r.x));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BnbMatchesEnumeration, ::testing::Range(0, 8));

TEST(Bnb, ProblemFamiliesSolve) {
  Rng rng(21);
  {
    MipModel m = problems::knapsack(15, rng);
    MipResult r = solve(m);
    ASSERT_EQ(r.status, MipStatus::Optimal);
    EXPECT_TRUE(m.is_feasible(r.x));
  }
  {
    MipModel m = problems::set_cover(12, 8, rng);
    MipResult r = solve(m);
    ASSERT_EQ(r.status, MipStatus::Optimal);
    EXPECT_TRUE(m.is_feasible(r.x));
  }
  {
    MipModel m = problems::generalized_assignment(3, 6, rng);
    MipResult r = solve(m);
    ASSERT_EQ(r.status, MipStatus::Optimal);
    EXPECT_TRUE(m.is_feasible(r.x));
  }
  {
    MipModel m = problems::unit_commitment(3, 4, rng);
    MipResult r = solve(m);
    ASSERT_EQ(r.status, MipStatus::Optimal);
    EXPECT_TRUE(m.is_feasible(r.x));
  }
}

TEST(Anatomy, CountsAreConsistent) {
  Rng rng(31);
  RandomMipConfig cfg;
  cfg.rows = 10;
  cfg.cols = 16;
  MipModel m = problems::random_mip(cfg, rng);
  MipOptions opts;
  opts.enable_cuts = false;
  opts.enable_heuristics = false;
  BnbSolver solver(m, opts);
  MipResult r = solver.solve();
  ASSERT_EQ(r.status, MipStatus::Optimal);
  const TreeAnatomy& anatomy = r.stats.anatomy;
  // Figure 1's invariant: at completion, no node remains active; every node
  // is branched or a classified leaf.
  EXPECT_EQ(anatomy.total_nodes, anatomy.branched + anatomy.leaves());
  // A binary tree: branched nodes have exactly 2 children, so
  // total = 2*branched + 1 (when no child was skipped as empty).
  EXPECT_GE(anatomy.total_nodes, 2 * anatomy.branched);
  EXPECT_GT(anatomy.leaves(), 0);
  EXPECT_GE(anatomy.active_peak, 1);
}

TEST(Anatomy, RenderAsciiShowsStates) {
  MipModel m;
  m.lp().set_sense(lp::Sense::Maximize);
  const int x = m.add_int_col(1.0, 0, 10), y = m.add_int_col(1.0, 0, 10);
  m.lp().add_row_le({{x, 2.0}, {y, 1.0}}, 5.0);
  m.lp().add_row_le({{x, 1.0}, {y, 3.0}}, 7.0);
  MipOptions opts;
  opts.enable_cuts = false;
  opts.enable_heuristics = false;
  BnbSolver solver(m, opts);
  static_cast<void>(solver.solve());
  const std::string art = solver.pool().render_ascii();
  EXPECT_NE(art.find("#0"), std::string::npos);
  EXPECT_NE(art.find("branched"), std::string::npos);
  EXPECT_NE(art.find("feasible"), std::string::npos);
}

TEST(Trace, RecordsPerNodeOps) {
  Rng rng(41);
  RandomMipConfig cfg;
  cfg.rows = 8;
  cfg.cols = 12;
  MipModel m = problems::random_mip(cfg, rng);
  MipOptions opts;
  opts.enable_cuts = false;
  opts.enable_heuristics = false;
  BnbSolver solver(m, opts);
  MipResult r = solver.solve();
  ASSERT_EQ(r.status, MipStatus::Optimal);
  EXPECT_EQ(static_cast<long>(solver.trace().size()), r.stats.nodes_evaluated);
  long total_iters = 0;
  for (const NodeTrace& t : solver.trace()) total_iters += t.ops.iterations;
  EXPECT_EQ(total_iters, r.stats.lp_iterations);
  // The root is never hot; children evaluated right after their parent are.
  EXPECT_FALSE(solver.trace().front().hot);
}

TEST(Trace, GpuLocalityRaisesHotFraction) {
  Rng rng(51);
  RandomMipConfig cfg;
  cfg.rows = 12;
  cfg.cols = 20;
  cfg.bound = 4.0;
  MipModel m = problems::random_mip(cfg, rng);
  auto hot_fraction = [&](NodeSelection sel) {
    MipOptions opts;
    opts.node_selection = sel;
    opts.enable_cuts = false;
    opts.enable_heuristics = false;
    BnbSolver solver(m, opts);
    MipResult r = solver.solve();
    if (r.stats.nodes_evaluated == 0) return 0.0;
    return static_cast<double>(r.stats.hot_nodes) / static_cast<double>(r.stats.nodes_evaluated);
  };
  const double best_first = hot_fraction(NodeSelection::BestFirst);
  const double locality = hot_fraction(NodeSelection::GpuLocality);
  // The GPU-aware policy must reuse the resident matrix strictly more often.
  EXPECT_GT(locality, best_first);
}

TEST(Snapshot, SerializationRoundTrip) {
  ConsistentSnapshot snap;
  snap.incumbent_objective = -12.5;
  snap.incumbent_x = {1.0, 0.0, 3.0};
  snap.nodes_solved_so_far = 42;
  snap.frontier.push_back({{0, 0, 0}, {5, 5, 5}, -20.0, 2});
  snap.frontier.push_back({{1, 0, 0}, {5, 2, 5}, -18.5, 3});
  ConsistentSnapshot back = ConsistentSnapshot::from_string(snap.to_string());
  EXPECT_DOUBLE_EQ(back.incumbent_objective, snap.incumbent_objective);
  EXPECT_EQ(back.incumbent_x, snap.incumbent_x);
  EXPECT_EQ(back.nodes_solved_so_far, 42);
  ASSERT_EQ(back.frontier.size(), 2u);
  EXPECT_DOUBLE_EQ(back.frontier[1].bound, -18.5);
  EXPECT_EQ(back.frontier[1].depth, 3);
  EXPECT_EQ(back.frontier[0].ub, snap.frontier[0].ub);
}

TEST(Snapshot, CorruptInputRejected) {
  EXPECT_THROW(ConsistentSnapshot::from_string("garbage"), Error);
  EXPECT_THROW(ConsistentSnapshot::from_string("gpumip-snapshot-v1\n1 2\n"), Error);
}

TEST(Snapshot, MidSearchSnapshotPreservesOptimum) {
  // Capture snapshots during search; resuming from any of them must reach
  // the same optimum (the paper's consistency definition).
  Rng rng(61);
  RandomMipConfig cfg;
  cfg.rows = 10;
  cfg.cols = 18;
  cfg.bound = 4.0;
  MipModel m = problems::random_mip(cfg, rng);

  std::vector<ConsistentSnapshot> snapshots;
  MipOptions opts;
  opts.enable_cuts = false;  // cuts change the model; keep forms identical
  opts.enable_heuristics = false;
  opts.snapshot_interval = 5;
  opts.on_snapshot = [&](const ConsistentSnapshot& s) { snapshots.push_back(s); };
  BnbSolver solver(m, opts);
  MipResult full = solver.solve();
  ASSERT_EQ(full.status, MipStatus::Optimal);
  ASSERT_FALSE(snapshots.empty());

  MipOptions resume_opts;
  resume_opts.enable_cuts = false;
  resume_opts.enable_heuristics = false;
  for (std::size_t i = 0; i < snapshots.size(); i += std::max<std::size_t>(1, snapshots.size() / 3)) {
    BnbSolver resumed(m, resume_opts);
    MipResult r = resumed.solve_from(snapshots[i]);
    ASSERT_EQ(r.status, MipStatus::Optimal) << "snapshot " << i;
    EXPECT_NEAR(r.objective, full.objective, 1e-6) << "snapshot " << i;
  }
}

TEST(Snapshot, FinalSnapshotIsEmptyFrontierWithIncumbent) {
  MipModel m;
  m.lp().set_sense(lp::Sense::Maximize);
  const int x = m.add_int_col(1.0, 0, 10), y = m.add_int_col(1.0, 0, 10);
  m.lp().add_row_le({{x, 2.0}, {y, 1.0}}, 5.0);
  m.lp().add_row_le({{x, 1.0}, {y, 3.0}}, 7.0);
  BnbSolver solver(m, {});
  MipResult r = solver.solve();
  ASSERT_EQ(r.status, MipStatus::Optimal);
  ConsistentSnapshot snap = solver.capture_snapshot();
  EXPECT_TRUE(snap.frontier.empty());
  EXPECT_TRUE(snap.has_incumbent());
}

TEST(Cuts, GomoryCutsAreValidAndViolated) {
  // Generate cuts at a fractional root; they must cut off the LP point but
  // keep every integer feasible point.
  Rng rng(71);
  RandomMipConfig cfg;
  cfg.rows = 6;
  cfg.cols = 6;
  cfg.density = 0.6;
  cfg.integer_fraction = 1.0;
  cfg.bound = 3.0;
  int checked = 0;
  for (int trial = 0; trial < 8; ++trial) {
    MipModel m = problems::random_mip(cfg, rng);
    const lp::StandardForm form = lp::build_standard_form(m.lp());
    lp::SimplexSolver solver(form);
    lp::LpResult root = solver.solve_default();
    ASSERT_EQ(root.status, lp::LpStatus::Optimal);
    if (m.is_integral(root.x)) continue;
    CutOptions copts;
    copts.min_violation = 1e-6;
    auto cuts = gomory_cuts(m, form, root, copts);
    if (cuts.empty()) continue;
    ++checked;
    // Violation at the LP point.
    for (const Cut& cut : cuts) {
      EXPECT_GT(cut.violation(root.x), 1e-6 / 2);
    }
    // Validity: enumerate all integer points and check none is cut off.
    MipResult exact = solve_by_enumeration(m);
    if (exact.has_solution) {
      for (const Cut& cut : cuts) {
        EXPECT_LT(cut.violation(exact.x), 1e-6)
            << "optimal integer point violates a 'valid' cut";
      }
    }
  }
  EXPECT_GT(checked, 0) << "no trial produced cuts; generator too easy";
}

TEST(Bnb, ForcedLpMethodsAgreeWithEnumeration) {
  // Every node relaxation forced onto one LP backend; all three must land
  // on the enumeration optimum. IPM/PDHG objectives are tol-approximate, so
  // the engine pads prune comparisons (docs/METHODS.md) — agreement here is
  // the end-to-end check that the padding keeps the tree exact.
  Rng rng(4242);
  RandomMipConfig cfg;
  cfg.rows = 6;
  cfg.cols = 7;
  cfg.density = 0.5;
  cfg.integer_fraction = 0.7;
  cfg.bound = 3.0;
  MipModel m = problems::random_mip(cfg, rng);
  MipResult exact = solve_by_enumeration(m);
  ASSERT_EQ(exact.status, MipStatus::Optimal);
  for (lp::LpMethod method :
       {lp::LpMethod::Simplex, lp::LpMethod::InteriorPoint, lp::LpMethod::Pdhg}) {
    MipOptions opts;
    opts.lp_method = method;
    opts.pdhg.tol = 1e-8;
    MipResult r = solve(m, opts);
    ASSERT_EQ(r.status, MipStatus::Optimal) << lp::lp_method_name(method);
    EXPECT_NEAR(r.objective, exact.objective, 1e-4) << lp::lp_method_name(method);
  }
}

TEST(Bnb, EnvOverrideForcesPdhgNodes) {
  Rng rng(4243);
  RandomMipConfig cfg;
  cfg.rows = 5;
  cfg.cols = 6;
  cfg.density = 0.5;
  cfg.integer_fraction = 0.8;
  cfg.bound = 2.0;
  MipModel m = problems::random_mip(cfg, rng);
  MipResult exact = solve_by_enumeration(m);
  ASSERT_EQ(exact.status, MipStatus::Optimal);
  ASSERT_EQ(::setenv("GPUMIP_LP_METHOD", "pdhg", 1), 0);
  MipOptions opts;
  opts.pdhg.tol = 1e-8;
  MipResult r = solve(m, opts);
  ::unsetenv("GPUMIP_LP_METHOD");
  ASSERT_EQ(r.status, MipStatus::Optimal);
  EXPECT_NEAR(r.objective, exact.objective, 1e-4);
}

TEST(Cuts, CoverCutsOnKnapsack) {
  Rng rng(81);
  MipModel m = problems::knapsack(12, rng, 0.4);
  const lp::StandardForm form = lp::build_standard_form(m.lp());
  lp::SimplexSolver solver(form);
  lp::LpResult root = solver.solve_default();
  ASSERT_EQ(root.status, lp::LpStatus::Optimal);
  if (!m.is_integral(root.x)) {
    auto cuts = cover_cuts(m, root.x);
    for (const Cut& cut : cuts) {
      EXPECT_GT(cut.violation(root.x), 0.0);
      // Validity on the true optimum.
      MipResult exact = solve_by_enumeration(m);
      EXPECT_LT(cut.violation(exact.x), 1e-9);
    }
  }
}

TEST(Cuts, PoolDeduplicates) {
  CutPool pool;
  Cut c1{{{0, 1.0}, {1, 2.0}}, 1.0, lp::kInf};
  EXPECT_TRUE(pool.add(c1));
  EXPECT_FALSE(pool.add(c1));
  Cut c2 = c1;
  c2.lb = 2.0;
  EXPECT_TRUE(pool.add(c2));
  EXPECT_EQ(pool.size(), 2u);
}

TEST(Cuts, RootCutsTightenBound) {
  // With pure-integer models the root bound after cuts must be no worse
  // (and usually strictly better) than the plain LP bound.
  Rng rng(91);
  RandomMipConfig cfg;
  cfg.rows = 8;
  cfg.cols = 8;
  cfg.integer_fraction = 1.0;
  cfg.bound = 3.0;
  int improved = 0;
  for (int trial = 0; trial < 6; ++trial) {
    MipModel m = problems::random_mip(cfg, rng);
    MipOptions no_cuts;
    no_cuts.enable_cuts = false;
    no_cuts.enable_heuristics = false;
    MipOptions with_cuts;
    with_cuts.enable_heuristics = false;
    BnbSolver s1(m, no_cuts), s2(m, with_cuts);
    MipResult r1 = s1.solve();
    MipResult r2 = s2.solve();
    ASSERT_EQ(r1.status, MipStatus::Optimal);
    ASSERT_EQ(r2.status, MipStatus::Optimal);
    EXPECT_NEAR(r1.objective, r2.objective, 1e-6);
    // min-form root bounds: cut root >= plain root (tighter).
    if (r2.stats.cuts_added > 0 && r2.stats.root_bound > r1.stats.root_bound + 1e-9) {
      ++improved;
    }
    EXPECT_GE(r2.stats.root_bound, r1.stats.root_bound - 1e-6);
  }
  EXPECT_GT(improved, 0) << "cuts never tightened the root bound";
}

TEST(Heuristics, RoundingFindsObviousSolution) {
  Rng rng(101);
  MipModel m = problems::knapsack(10, rng, 0.9);  // loose capacity: rounding works often
  const lp::StandardForm form = lp::build_standard_form(m.lp());
  lp::SimplexSolver solver(form);
  lp::LpResult root = solver.solve_default();
  ASSERT_EQ(root.status, lp::LpStatus::Optimal);
  HeuristicResult h = rounding_heuristic(m, form, root.x);
  if (h.found) {
    EXPECT_TRUE(m.is_feasible(h.x));
    EXPECT_TRUE(m.is_integral(h.x));
  }
}

TEST(Heuristics, DivingProducesFeasiblePoint) {
  Rng rng(111);
  RandomMipConfig cfg;
  cfg.rows = 8;
  cfg.cols = 14;
  MipModel m = problems::random_mip(cfg, rng);
  const lp::StandardForm form = lp::build_standard_form(m.lp());
  lp::SimplexSolver solver(form);
  lp::LpResult root = solver.solve_default();
  ASSERT_EQ(root.status, lp::LpStatus::Optimal);
  HeuristicResult h = diving_heuristic(m, form, solver, root);
  ASSERT_TRUE(h.found);
  EXPECT_TRUE(m.is_feasible(h.x));
  EXPECT_TRUE(m.is_integral(h.x));
}

TEST(Heuristics, FeasibilityPumpOnSetCover) {
  Rng rng(121);
  MipModel m = problems::set_cover(10, 7, rng);
  HeuristicResult h = feasibility_pump(m);
  if (h.found) {
    EXPECT_TRUE(m.is_feasible(h.x));
    EXPECT_TRUE(m.is_integral(h.x));
  }
}

TEST(Enumeration, RejectsHugeDomains) {
  MipModel m;
  m.add_int_col(1.0, 0.0, 1e6);
  EXPECT_THROW(solve_by_enumeration(m), Error);
}

}  // namespace
}  // namespace gpumip::mip
