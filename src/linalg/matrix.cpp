#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace gpumip::linalg {

Matrix::Matrix(int rows, int cols, double fill)
    : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows) * cols, fill) {
  check_arg(rows >= 0 && cols >= 0, "matrix dimensions must be non-negative");
}

void Matrix::set_col(int c, std::span<const double> values) {
  check_arg(static_cast<int>(values.size()) == rows_, "set_col: size mismatch");
  std::copy(values.begin(), values.end(), col(c).begin());
}

Matrix Matrix::identity(int n) {
  Matrix out(n, n);
  for (int i = 0; i < n; ++i) out(i, i) = 1.0;
  return out;
}

Matrix Matrix::random(int rows, int cols, Rng& rng, double lo, double hi) {
  Matrix out(rows, cols);
  for (std::size_t i = 0; i < out.size(); ++i) out.data()[i] = rng.uniform(lo, hi);
  return out;
}

Matrix Matrix::random_spd(int n, Rng& rng) {
  Matrix m = random(n, n, rng);
  Matrix out(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double sum = 0.0;
      for (int k = 0; k < n; ++k) sum += m(i, k) * m(j, k);
      out(i, j) = sum;
    }
    out(i, i) += n;
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (int c = 0; c < cols_; ++c) {
    for (int r = 0; r < rows_; ++r) out(c, r) = (*this)(r, c);
  }
  return out;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  check_arg(a.same_shape(b), "max_abs_diff: shape mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::fabs(a.data()[i] - b.data()[i]));
  }
  return worst;
}

double max_abs_diff(const Vector& a, const Vector& b) {
  check_arg(a.size() == b.size(), "max_abs_diff: size mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::fabs(a[i] - b[i]));
  }
  return worst;
}

}  // namespace gpumip::linalg
