#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/eta.hpp"
#include "linalg/lu.hpp"
#include "check/invariants.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "sparse/ops.hpp"
#include "support/assert.hpp"
#include "support/log.hpp"

namespace gpumip::lp {

const char* lp_status_name(LpStatus status) noexcept {
  switch (status) {
    case LpStatus::Optimal: return "Optimal";
    case LpStatus::Infeasible: return "Infeasible";
    case LpStatus::Unbounded: return "Unbounded";
    case LpStatus::IterationLimit: return "IterationLimit";
    case LpStatus::NumericalTrouble: return "NumericalTrouble";
  }
  return "Unknown";
}

// Workspace indices: variables 0..n-1 are the standard form's (structural +
// slack); n..n+m-1 are phase-1 artificials (column ±e_i).
struct SimplexSolver::Workspace {
  int m = 0;
  int n = 0;
  int total = 0;
  linalg::Vector lb, ub;          // size total
  std::vector<double> art_sign;   // size m
  linalg::Vector x;               // size total
  std::vector<VarStatus> status;  // size total
  std::vector<int> basic;         // size m
  linalg::Matrix binv;            // m x m explicit inverse
  int etas_since_refactor = 0;
  long iterations = 0;
  int degenerate_streak = 0;
  LpOpStats ops;
  // Per-pivot scratch, sized once in init_workspace so the iteration loop
  // never allocates: compute_duals fills dual_cb/dual_y, ftran_column
  // fills ftran_w, each returning a reference to its buffer.
  linalg::Vector dual_cb;  // size m
  linalg::Vector dual_y;   // size m
  linalg::Vector ftran_w;  // size m
};

SimplexSolver::SimplexSolver(const StandardForm& form, SimplexOptions options)
    : form_(&form), options_(options) {
  check_arg(form.num_vars == static_cast<int>(form.lb.size()), "standard form inconsistent");
}

void SimplexSolver::init_workspace(Workspace& ws, std::span<const double> lb,
                                   std::span<const double> ub) const {
  const int m = form_->num_rows;
  const int n = form_->num_vars;
  check_arg(static_cast<int>(lb.size()) == n && static_cast<int>(ub.size()) == n,
            "solve: bound vector size mismatch");
  ws.m = m;
  ws.n = n;
  ws.total = n + m;
  ws.lb.assign(lb.begin(), lb.end());
  ws.ub.assign(ub.begin(), ub.end());
  for (int j = 0; j < n; ++j) {
    check_arg(ws.lb[static_cast<std::size_t>(j)] <= ws.ub[static_cast<std::size_t>(j)],
              "solve: lb > ub for variable " + std::to_string(j));
  }
  // Artificial bounds start [0, inf); they get fixed to 0 once they leave.
  ws.lb.resize(static_cast<std::size_t>(ws.total), 0.0);
  ws.ub.resize(static_cast<std::size_t>(ws.total), kInf);
  ws.art_sign.assign(static_cast<std::size_t>(m), 1.0);
  ws.x.assign(static_cast<std::size_t>(ws.total), 0.0);
  ws.status.assign(static_cast<std::size_t>(ws.total), VarStatus::AtLower);
  ws.basic.assign(static_cast<std::size_t>(m), -1);
  ws.binv = linalg::Matrix(m, m);
  ws.dual_cb.assign(static_cast<std::size_t>(m), 0.0);
  ws.dual_y.assign(static_cast<std::size_t>(m), 0.0);
  ws.ftran_w.assign(static_cast<std::size_t>(m), 0.0);
  ws.ops.m = m;
  ws.ops.n = n;
  ws.ops.nnz = form_->a_rows.nnz();
}

namespace {

/// Nonbasic resting value for a variable given its status and bounds.
double nonbasic_value(VarStatus status, double lb, double ub) {
  switch (status) {
    case VarStatus::AtLower: return lb;
    case VarStatus::AtUpper: return ub;
    case VarStatus::Free: return 0.0;
    case VarStatus::Basic: break;
  }
  return 0.0;
}

/// Picks a sensible nonbasic status for the bounds.
VarStatus default_status(double lb, double ub) {
  if (std::isfinite(lb)) return VarStatus::AtLower;
  if (std::isfinite(ub)) return VarStatus::AtUpper;
  return VarStatus::Free;
}

}  // namespace

void SimplexSolver::cold_start(Workspace& ws) const {
  // Nonbasic variables to their natural bound, artificials basic.
  for (int v = 0; v < ws.n; ++v) {
    const std::size_t k = static_cast<std::size_t>(v);
    ws.status[k] = default_status(ws.lb[k], ws.ub[k]);
    ws.x[k] = nonbasic_value(ws.status[k], ws.lb[k], ws.ub[k]);
  }
  // Row residuals define the artificial values and signs.
  linalg::Vector residual = form_->b;
  sparse::spmv(-1.0, form_->a_rows, std::span<const double>(ws.x.data(), ws.n), 1.0, residual);
  for (int i = 0; i < ws.m; ++i) {
    const std::size_t k = static_cast<std::size_t>(i);
    ws.art_sign[k] = residual[k] >= 0.0 ? 1.0 : -1.0;
    const int art = ws.n + i;
    ws.basic[k] = art;
    ws.status[static_cast<std::size_t>(art)] = VarStatus::Basic;
    ws.x[static_cast<std::size_t>(art)] = std::fabs(residual[k]);
    ws.binv(i, i) = ws.art_sign[k];  // B = diag(sign) -> B⁻¹ = diag(sign)
  }
}

bool SimplexSolver::try_warm_start(Workspace& ws, const Basis& warm) const {
  if (static_cast<int>(warm.basic.size()) != ws.m ||
      static_cast<int>(warm.status.size()) != ws.n) {
    return false;
  }
  for (int v : warm.basic) {
    if (v < 0 || v >= ws.n) return false;  // basis mentions artificials: unusable
  }
  // Install statuses, repairing ones that no longer match the bounds.
  for (int v = 0; v < ws.n; ++v) {
    const std::size_t k = static_cast<std::size_t>(v);
    VarStatus st = warm.status[k];
    if (st == VarStatus::AtLower && !std::isfinite(ws.lb[k])) st = default_status(ws.lb[k], ws.ub[k]);
    if (st == VarStatus::AtUpper && !std::isfinite(ws.ub[k])) st = default_status(ws.lb[k], ws.ub[k]);
    ws.status[k] = st;
  }
  for (int i = 0; i < ws.m; ++i) {
    ws.basic[static_cast<std::size_t>(i)] = warm.basic[static_cast<std::size_t>(i)];
    ws.status[static_cast<std::size_t>(warm.basic[static_cast<std::size_t>(i)])] =
        VarStatus::Basic;
  }
  for (int v = 0; v < ws.n; ++v) {
    const std::size_t k = static_cast<std::size_t>(v);
    if (ws.status[k] != VarStatus::Basic) {
      ws.x[k] = nonbasic_value(ws.status[k], ws.lb[k], ws.ub[k]);
    }
  }
  for (int i = 0; i < ws.m; ++i) {
    ws.x[static_cast<std::size_t>(ws.n + i)] = 0.0;
    ws.lb[static_cast<std::size_t>(ws.n + i)] = 0.0;
    ws.ub[static_cast<std::size_t>(ws.n + i)] = 0.0;
  }
  try {
    refactorize(ws);
  } catch (const NumericalError&) {
    return false;
  }
  return true;
}

linalg::Matrix SimplexSolver::basis_matrix(const Workspace& ws) const {
  linalg::Matrix b(ws.m, ws.m);
  for (int i = 0; i < ws.m; ++i) {
    const int v = ws.basic[static_cast<std::size_t>(i)];
    if (v >= ws.n) {
      b(v - ws.n, i) = ws.art_sign[static_cast<std::size_t>(v - ws.n)];
    } else {
      const auto& a = form_->a_cols;
      for (int k = a.col_start[static_cast<std::size_t>(v)];
           k < a.col_start[static_cast<std::size_t>(v) + 1]; ++k) {
        b(a.row_index[static_cast<std::size_t>(k)], i) = a.values[static_cast<std::size_t>(k)];
      }
    }
  }
  return b;
}

void SimplexSolver::refactorize(Workspace& ws) const {
  // Paper C3: eta-file length at the moment the file is flushed.
  GPUMIP_OBS_RECORD("gpumip.lp.simplex.eta_length", static_cast<double>(ws.etas_since_refactor));
  GPUMIP_TRACE_INSTANT("gpumip.lp.simplex.refactor", ws.etas_since_refactor);
  // Rebuild B from the basic columns and invert via LU.
  const linalg::Matrix b = basis_matrix(ws);
  linalg::DenseLU lu(b);  // throws NumericalError when basis is singular
  ws.binv = lu.inverse();
  ws.etas_since_refactor = 0;
  ++ws.ops.refactor;
  // Paper C3: a fresh factorization must reproduce B to LU accuracy.
  GPUMIP_VALIDATE(check::check_basis_inverse(b, ws.binv, 1e-6, "(after refactorize)"));
  recompute_basic_values(ws);
}

void SimplexSolver::recompute_basic_values(Workspace& ws) const {
  // x_B = B⁻¹ (b - Σ_{nonbasic j} x_j A_j)
  linalg::Vector rhs = form_->b;
  for (int v = 0; v < ws.total; ++v) {
    const std::size_t k = static_cast<std::size_t>(v);
    if (ws.status[k] == VarStatus::Basic || ws.x[k] == 0.0) continue;
    if (v >= ws.n) {
      rhs[static_cast<std::size_t>(v - ws.n)] -= ws.art_sign[static_cast<std::size_t>(v - ws.n)] * ws.x[k];
    } else {
      const auto& a = form_->a_cols;
      for (int e = a.col_start[k]; e < a.col_start[k + 1]; ++e) {
        rhs[static_cast<std::size_t>(a.row_index[static_cast<std::size_t>(e)])] -=
            a.values[static_cast<std::size_t>(e)] * ws.x[k];
      }
    }
  }
  linalg::Vector xb(static_cast<std::size_t>(ws.m), 0.0);
  linalg::gemv(1.0, ws.binv, rhs, 0.0, xb);
  ++ws.ops.ftran;
  for (int i = 0; i < ws.m; ++i) {
    ws.x[static_cast<std::size_t>(ws.basic[static_cast<std::size_t>(i)])] =
        xb[static_cast<std::size_t>(i)];
  }
}

const linalg::Vector& SimplexSolver::ftran_column(Workspace& ws, int var) const {
  // w = B⁻¹ a_var, exploiting sparsity of a_var. Fills ws.ftran_w in place
  // so the per-pivot path never allocates.
  linalg::Vector& w = ws.ftran_w;
  std::fill(w.begin(), w.end(), 0.0);
  if (var >= ws.n) {
    const int row = var - ws.n;
    const double s = ws.art_sign[static_cast<std::size_t>(row)];
    for (int i = 0; i < ws.m; ++i) w[static_cast<std::size_t>(i)] = s * ws.binv(i, row);
  } else {
    const auto& a = form_->a_cols;
    for (int e = a.col_start[static_cast<std::size_t>(var)];
         e < a.col_start[static_cast<std::size_t>(var) + 1]; ++e) {
      const int r = a.row_index[static_cast<std::size_t>(e)];
      const double v = a.values[static_cast<std::size_t>(e)];
      for (int i = 0; i < ws.m; ++i) w[static_cast<std::size_t>(i)] += v * ws.binv(i, r);
    }
  }
  ++ws.ops.ftran;
  return w;
}

const linalg::Vector& SimplexSolver::compute_duals(Workspace& ws,
                                                   const linalg::Vector& cost) const {
  linalg::Vector& cb = ws.dual_cb;
  for (int i = 0; i < ws.m; ++i) {
    // A basic variable beyond `cost` is an artificial still in the basis
    // after an abnormal stop (iteration limit / singularity during phase 1);
    // its phase-2 cost is zero, it is not an out-of-bounds read.
    const std::size_t v = static_cast<std::size_t>(ws.basic[static_cast<std::size_t>(i)]);
    cb[static_cast<std::size_t>(i)] = v < cost.size() ? cost[v] : 0.0;
  }
  linalg::Vector& y = ws.dual_y;
  linalg::gemv_t(1.0, ws.binv, cb, 0.0, y);
  ++ws.ops.btran;
  return y;
}

double SimplexSolver::reduced_cost(const Workspace& ws, const linalg::Vector& y,
                                   const linalg::Vector& cost, int var) const {
  double d = cost[static_cast<std::size_t>(var)];
  if (var >= ws.n) {
    d -= ws.art_sign[static_cast<std::size_t>(var - ws.n)] *
         y[static_cast<std::size_t>(var - ws.n)];
  } else {
    d -= sparse::column_dot(form_->a_cols, var, y);
  }
  return d;
}

SimplexSolver::PhaseResult SimplexSolver::primal_loop(Workspace& ws,
                                                      const linalg::Vector& cost,
                                                      bool phase_one) {
  const double tol = options_.tol;
  for (;;) {
    if (ws.iterations >= options_.max_iterations) return PhaseResult::IterationLimit;
    if (ws.etas_since_refactor >= options_.refactor_interval) {
      try {
        refactorize(ws);
      } catch (const NumericalError&) {
        return PhaseResult::Singular;
      }
    }
    const linalg::Vector& y = compute_duals(ws, cost);
    ++ws.ops.price_full;
    const bool bland = ws.degenerate_streak > options_.bland_threshold;

    int entering = -1;
    double entering_d = 0.0;
    double best_score = tol;
    for (int v = 0; v < ws.total; ++v) {
      const std::size_t k = static_cast<std::size_t>(v);
      if (ws.status[k] == VarStatus::Basic) continue;
      if (ws.lb[k] == ws.ub[k]) continue;  // fixed (incl. retired artificials)
      if (!phase_one && v >= ws.n) continue;
      const double d = reduced_cost(ws, y, cost, v);
      double score = 0.0;
      if ((ws.status[k] == VarStatus::AtLower || ws.status[k] == VarStatus::Free) && d < -tol) {
        score = -d;
      } else if ((ws.status[k] == VarStatus::AtUpper || ws.status[k] == VarStatus::Free) &&
                 d > tol) {
        score = d;
      }
      if (score <= 0.0) continue;
      if (bland) {
        entering = v;
        entering_d = d;
        break;
      }
      if (score > best_score) {
        best_score = score;
        entering = v;
        entering_d = d;
      }
    }
    if (entering < 0) return PhaseResult::Optimal;

    const std::size_t qk = static_cast<std::size_t>(entering);
    double sigma;
    if (ws.status[qk] == VarStatus::AtLower) {
      sigma = 1.0;
    } else if (ws.status[qk] == VarStatus::AtUpper) {
      sigma = -1.0;
    } else {
      sigma = entering_d < 0.0 ? 1.0 : -1.0;
    }

    const linalg::Vector& w = ftran_column(ws, entering);

    // Ratio test: entering moves by t >= 0 in direction sigma; basics move
    // by dx_i = -sigma * w_i per unit t.
    double t_best = ws.ub[qk] - ws.lb[qk];  // bound-flip limit (may be inf/nan-free)
    if (!std::isfinite(t_best)) t_best = kInf;
    int leaving_row = -1;
    double leaving_pivot = 0.0;
    for (int i = 0; i < ws.m; ++i) {
      const double dx = -sigma * w[static_cast<std::size_t>(i)];
      if (std::fabs(dx) <= options_.pivot_tol) continue;
      const int bv = ws.basic[static_cast<std::size_t>(i)];
      const std::size_t bk = static_cast<std::size_t>(bv);
      double t_i;
      if (dx < 0.0) {
        if (!std::isfinite(ws.lb[bk])) continue;
        t_i = (ws.x[bk] - ws.lb[bk]) / (-dx);
      } else {
        if (!std::isfinite(ws.ub[bk])) continue;
        t_i = (ws.ub[bk] - ws.x[bk]) / dx;
      }
      if (t_i < 0.0) t_i = 0.0;  // clamp tiny drift
      const bool strictly_better = t_i < t_best - 1e-12;
      const bool tie = std::fabs(t_i - t_best) <= 1e-12;
      const double wmag = std::fabs(w[static_cast<std::size_t>(i)]);
      bool take = strictly_better;
      if (!take && tie && leaving_row >= 0) {
        take = bland ? bv < ws.basic[static_cast<std::size_t>(leaving_row)]
                     : wmag > std::fabs(leaving_pivot);
      } else if (!take && tie && leaving_row < 0) {
        take = true;
      }
      if (take) {
        t_best = std::min(t_best, t_i);
        leaving_row = i;
        leaving_pivot = w[static_cast<std::size_t>(i)];
      }
    }

    if (!std::isfinite(t_best)) return PhaseResult::Unbounded;

    ws.degenerate_streak = t_best <= tol ? ws.degenerate_streak + 1 : 0;
    ++ws.iterations;
    ++ws.ops.iterations;
    GPUMIP_OBS_COUNT("gpumip.lp.simplex.iterations");

    // Move basic variables.
    for (int i = 0; i < ws.m; ++i) {
      const double dx = -sigma * w[static_cast<std::size_t>(i)];
      ws.x[static_cast<std::size_t>(ws.basic[static_cast<std::size_t>(i)])] += dx * t_best;
    }

    if (leaving_row < 0) {
      // Bound flip: entering traverses its whole range.
      ws.x[qk] = sigma > 0 ? ws.ub[qk] : ws.lb[qk];
      ws.status[qk] = sigma > 0 ? VarStatus::AtUpper : VarStatus::AtLower;
      ++ws.ops.bound_flips;
      continue;
    }

    const int leaving_var = ws.basic[static_cast<std::size_t>(leaving_row)];
    const std::size_t lk = static_cast<std::size_t>(leaving_var);
    const double dx_leaving = -sigma * w[static_cast<std::size_t>(leaving_row)];
    // Snap the leaving variable exactly to the bound it hit.
    if (dx_leaving < 0.0) {
      ws.x[lk] = ws.lb[lk];
      ws.status[lk] = VarStatus::AtLower;
    } else {
      ws.x[lk] = ws.ub[lk];
      ws.status[lk] = VarStatus::AtUpper;
    }
    if (leaving_var >= ws.n) {
      // Retired artificial: never allow re-entry.
      ws.lb[lk] = 0.0;
      ws.ub[lk] = 0.0;
      ws.x[lk] = 0.0;
      ws.status[lk] = VarStatus::AtLower;
    }
    ws.x[qk] += sigma * t_best;
    ws.status[qk] = VarStatus::Basic;
    ws.basic[static_cast<std::size_t>(leaving_row)] = entering;

    try {
      const linalg::Eta eta = linalg::Eta::from_ftran(w, leaving_row);
      eta.apply_to_matrix(ws.binv);
    } catch (const NumericalError&) {
      return PhaseResult::Singular;
    }
    ++ws.ops.eta_updates;
    ++ws.etas_since_refactor;
    // Paper C3: the eta-updated inverse must still invert the new basis.
    GPUMIP_VALIDATE(check::check_basis_inverse(basis_matrix(ws), ws.binv, 1e-4,
                                               "(after primal eta update)"));
  }
}

LpResult SimplexSolver::finish(Workspace& ws, LpStatus status) const {
  GPUMIP_OBS_COUNT_L("gpumip.lp.solves", {"method", "simplex"});
  GPUMIP_OBS_RECORD("gpumip.lp.simplex.eta_length", static_cast<double>(ws.etas_since_refactor));
  publish_op_stats(ws.ops);
  LpResult result;
  result.status = status;
  result.iterations = ws.iterations;
  result.ops = ws.ops;
  result.x.assign(ws.x.begin(), ws.x.begin() + ws.n);
  const linalg::Vector& cost = form_->c;
  double obj = 0.0;
  for (int v = 0; v < ws.n; ++v) obj += cost[static_cast<std::size_t>(v)] * ws.x[static_cast<std::size_t>(v)];
  result.objective = obj;
  if (ws.m > 0) {
    result.duals = compute_duals(ws, cost);
  }
  result.reduced_costs.assign(static_cast<std::size_t>(ws.n), 0.0);
  if (!result.duals.empty() || ws.m == 0) {
    for (int v = 0; v < ws.n; ++v) {
      result.reduced_costs[static_cast<std::size_t>(v)] =
          ws.m == 0 ? cost[static_cast<std::size_t>(v)]
                    : reduced_cost(ws, result.duals, cost, v);
    }
  }
  result.basis.basic = ws.basic;
  result.basis.status.assign(ws.status.begin(), ws.status.begin() + ws.n);
  // The basis handed to branch-and-bound children must be structurally
  // sound; a degenerate basic artificial can legitimately survive phase 1,
  // so only a fully structural basis is validated against the form.
  GPUMIP_VALIDATE({
    if (status == LpStatus::Optimal &&
        std::all_of(result.basis.basic.begin(), result.basis.basic.end(),
                    [&](int v) { return v < ws.n; })) {
      check::check_basis(*form_, result.basis);
    }
  });
  return result;
}

LpResult SimplexSolver::run_primal(std::span<const double> lb, std::span<const double> ub,
                                   const Basis* warm) {
  Workspace ws;
  init_workspace(ws, lb, ub);

  bool warm_ok = false;
  if (warm != nullptr && !warm->empty()) {
    warm_ok = try_warm_start(ws, *warm);
    if (warm_ok) {
      // Warm basis must also be primal feasible to skip phase 1.
      for (int i = 0; i < ws.m && warm_ok; ++i) {
        const std::size_t bk = static_cast<std::size_t>(ws.basic[static_cast<std::size_t>(i)]);
        if (ws.x[bk] < ws.lb[bk] - 10 * options_.tol || ws.x[bk] > ws.ub[bk] + 10 * options_.tol) {
          warm_ok = false;
        }
      }
    }
    if (!warm_ok) {
      // Reset workspace for a cold start.
      init_workspace(ws, lb, ub);
    }
  }

  if (!warm_ok) {
    cold_start(ws);
    // Phase 1: minimize the sum of artificials.
    linalg::Vector phase1_cost(static_cast<std::size_t>(ws.total), 0.0);
    for (int i = 0; i < ws.m; ++i) phase1_cost[static_cast<std::size_t>(ws.n + i)] = 1.0;
    const PhaseResult p1 = primal_loop(ws, phase1_cost, /*phase_one=*/true);
    if (p1 == PhaseResult::IterationLimit) return finish(ws, LpStatus::IterationLimit);
    if (p1 == PhaseResult::Singular) return finish(ws, LpStatus::NumericalTrouble);
    check_internal(p1 != PhaseResult::Unbounded, "phase 1 cannot be unbounded");
    double infeasibility = 0.0;
    for (int i = 0; i < ws.m; ++i) {
      infeasibility += ws.x[static_cast<std::size_t>(ws.n + i)];
    }
    if (infeasibility > 1e-6) return finish(ws, LpStatus::Infeasible);
    // Fix all artificials at zero for phase 2.
    for (int i = 0; i < ws.m; ++i) {
      const std::size_t k = static_cast<std::size_t>(ws.n + i);
      ws.lb[k] = ws.ub[k] = 0.0;
      if (ws.status[k] != VarStatus::Basic) {
        ws.x[k] = 0.0;
        ws.status[k] = VarStatus::AtLower;
      }
    }
  }

  // Phase 2 on the true objective. Artificial cost entries are zero.
  linalg::Vector cost(static_cast<std::size_t>(ws.total), 0.0);
  std::copy(form_->c.begin(), form_->c.end(), cost.begin());
  const PhaseResult p2 = primal_loop(ws, cost, /*phase_one=*/false);
  switch (p2) {
    case PhaseResult::Optimal: return finish(ws, LpStatus::Optimal);
    case PhaseResult::Unbounded: return finish(ws, LpStatus::Unbounded);
    case PhaseResult::IterationLimit: return finish(ws, LpStatus::IterationLimit);
    case PhaseResult::Singular: return finish(ws, LpStatus::NumericalTrouble);
  }
  return finish(ws, LpStatus::NumericalTrouble);
}

LpResult SimplexSolver::solve(std::span<const double> lb, std::span<const double> ub,
                              const Basis* warm) {
  GPUMIP_OBS_SPAN_L("gpumip.lp.solve.seconds", {"method", "simplex"});
  return run_primal(lb, ub, warm);
}

LpResult SimplexSolver::resolve_dual(std::span<const double> lb, std::span<const double> ub,
                                     const Basis& basis) {
  GPUMIP_OBS_SPAN_L("gpumip.lp.solve.seconds", {"method", "simplex"});
  Workspace ws;
  init_workspace(ws, lb, ub);
  if (!try_warm_start(ws, basis)) {
    return run_primal(lb, ub, nullptr);
  }

  linalg::Vector cost(static_cast<std::size_t>(ws.total), 0.0);
  std::copy(form_->c.begin(), form_->c.end(), cost.begin());

  // Verify dual feasibility of the warm basis; if the reduced costs are off
  // (shouldn't happen when only bounds changed), fall back to primal.
  {
    const linalg::Vector& y = compute_duals(ws, cost);
    ++ws.ops.price_full;
    for (int v = 0; v < ws.n; ++v) {
      const std::size_t k = static_cast<std::size_t>(v);
      if (ws.status[k] == VarStatus::Basic || ws.lb[k] == ws.ub[k]) continue;
      const double d = reduced_cost(ws, y, cost, v);
      const bool bad = (ws.status[k] == VarStatus::AtLower && d < -1e-6) ||
                       (ws.status[k] == VarStatus::AtUpper && d > 1e-6) ||
                       (ws.status[k] == VarStatus::Free && std::fabs(d) > 1e-6);
      if (bad) return run_primal(lb, ub, &basis);
    }
  }

  const double tol = options_.tol;
  int consecutive_pivot_failures = 0;
  for (;;) {
    if (ws.iterations >= options_.max_iterations) return finish(ws, LpStatus::IterationLimit);
    if (ws.etas_since_refactor >= options_.refactor_interval) {
      try {
        refactorize(ws);
      } catch (const NumericalError&) {
        return finish(ws, LpStatus::NumericalTrouble);
      }
    }

    // Leaving row: most primal-infeasible basic variable.
    int row = -1;
    double worst = tol;
    bool increase = false;
    for (int i = 0; i < ws.m; ++i) {
      const std::size_t bk = static_cast<std::size_t>(ws.basic[static_cast<std::size_t>(i)]);
      const double below = ws.lb[bk] - ws.x[bk];
      const double above = ws.x[bk] - ws.ub[bk];
      if (below > worst) {
        worst = below;
        row = i;
        increase = true;
      }
      if (above > worst) {
        worst = above;
        row = i;
        increase = false;
      }
    }
    if (row < 0) return finish(ws, LpStatus::Optimal);

    const linalg::Vector& y = compute_duals(ws, cost);
    // Row r of B⁻¹ (the BTRAN of e_r).
    linalg::Vector rho(static_cast<std::size_t>(ws.m));
    for (int k = 0; k < ws.m; ++k) rho[static_cast<std::size_t>(k)] = ws.binv(row, k);
    ++ws.ops.btran;
    ++ws.ops.price_full;

    int entering = -1;
    double best_ratio = kInf;
    double best_alpha = 0.0;
    for (int v = 0; v < ws.n; ++v) {
      const std::size_t k = static_cast<std::size_t>(v);
      if (ws.status[k] == VarStatus::Basic || ws.lb[k] == ws.ub[k]) continue;
      const double alpha = sparse::column_dot(form_->a_cols, v, rho);
      if (std::fabs(alpha) <= options_.pivot_tol) continue;
      bool admissible;
      if (increase) {
        admissible = (ws.status[k] == VarStatus::AtLower && alpha < 0.0) ||
                     (ws.status[k] == VarStatus::AtUpper && alpha > 0.0) ||
                     ws.status[k] == VarStatus::Free;
      } else {
        admissible = (ws.status[k] == VarStatus::AtLower && alpha > 0.0) ||
                     (ws.status[k] == VarStatus::AtUpper && alpha < 0.0) ||
                     ws.status[k] == VarStatus::Free;
      }
      if (!admissible) continue;
      const double d = reduced_cost(ws, y, cost, v);
      const double ratio = std::fabs(d) / std::fabs(alpha);
      if (ratio < best_ratio - 1e-12 ||
          (ratio < best_ratio + 1e-12 && std::fabs(alpha) > std::fabs(best_alpha))) {
        best_ratio = ratio;
        entering = v;
        best_alpha = alpha;
      }
    }
    if (entering < 0) return finish(ws, LpStatus::Infeasible);

    const linalg::Vector& w = ftran_column(ws, entering);
    const double pivot = w[static_cast<std::size_t>(row)];
    if (std::fabs(pivot) <= options_.pivot_tol) {
      // Numerically inconsistent with the rho-based alpha; refactorize and
      // retry from a clean representation (bounded number of attempts).
      if (++consecutive_pivot_failures > 3) return finish(ws, LpStatus::NumericalTrouble);
      try {
        refactorize(ws);
      } catch (const NumericalError&) {
        return finish(ws, LpStatus::NumericalTrouble);
      }
      continue;
    }
    consecutive_pivot_failures = 0;

    const int leaving_var = ws.basic[static_cast<std::size_t>(row)];
    const std::size_t lk = static_cast<std::size_t>(leaving_var);
    const double target = increase ? ws.lb[lk] : ws.ub[lk];
    const double delta_q = (ws.x[lk] - target) / pivot;

    for (int i = 0; i < ws.m; ++i) {
      ws.x[static_cast<std::size_t>(ws.basic[static_cast<std::size_t>(i)])] -=
          delta_q * w[static_cast<std::size_t>(i)];
    }
    ws.x[static_cast<std::size_t>(entering)] += delta_q;
    ws.x[lk] = target;
    ws.status[lk] = increase ? VarStatus::AtLower : VarStatus::AtUpper;
    ws.status[static_cast<std::size_t>(entering)] = VarStatus::Basic;
    ws.basic[static_cast<std::size_t>(row)] = entering;

    try {
      const linalg::Eta eta = linalg::Eta::from_ftran(w, row);
      eta.apply_to_matrix(ws.binv);
    } catch (const NumericalError&) {
      return finish(ws, LpStatus::NumericalTrouble);
    }
    ++ws.ops.eta_updates;
    ++ws.etas_since_refactor;
    GPUMIP_VALIDATE(check::check_basis_inverse(basis_matrix(ws), ws.binv, 1e-4,
                                               "(after dual eta update)"));
    ++ws.iterations;
    ++ws.ops.iterations;
  }
}

}  // namespace gpumip::lp
