// Observability primitives: counters, gauges, histograms, and the
// process-wide registry that owns them (see DESIGN.md, "Observability").
//
// These are *measurement* instruments, not correctness validators (that is
// check/): a counter records how often a hot path ran, a histogram records
// a distribution (batch sizes, kernel occupancy, span durations), a gauge
// records a last-written or running-maximum value. All mutation paths are
// lock-free atomics so instruments can be bumped from any thread or simmpi
// rank concurrently; registration (first lookup of a name) takes a lock.
//
// Call sites in the solver go through the macros in obs/obs.hpp, which
// compile to nothing when the GPUMIP_OBS CMake option is OFF. The classes
// here are always compiled so tests and exporters work in either build.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

namespace gpumip::obs {

/// True when this translation unit was compiled with observability wiring
/// (the GPUMIP_OBS CMake option; ON by default).
#ifdef GPUMIP_OBS_ENABLED
inline constexpr bool kObsEnabled = true;
#else
inline constexpr bool kObsEnabled = false;
#endif

/// Monotonically increasing event/volume count (messages sent, bytes
/// transferred, refactorizations performed).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written (or accumulated / running-maximum) double. Unlike a
/// Counter it can move in any direction and carries fractional values
/// (hit rates, idle seconds).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  /// Accumulates (CAS loop; gauges are low-frequency instruments).
  void add(double v) noexcept;
  /// Raises the gauge to `v` if `v` is larger (running maximum).
  void set_max(double v) noexcept;
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-footprint log2-bucketed histogram over nonnegative values, with
/// exact count/sum/min/max. Bucket b holds values in (2^(b-kZeroBucket-1),
/// 2^(b-kZeroBucket)]; values <= 0 land in bucket 0. Quantiles are
/// bucket-resolution estimates (within a factor of 2), which is enough to
/// read occupancy, batch-size, and latency distributions.
class Histogram {
 public:
  /// 2^-40 .. 2^47 — covers nanosecond spans through terabyte volumes.
  static constexpr int kBuckets = 88;
  static constexpr int kZeroBucket = 40;

  void record(double v) noexcept;

  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  /// Smallest / largest recorded value; 0 when empty.
  double min() const noexcept;
  double max() const noexcept;
  double mean() const noexcept;
  /// Upper edge of the bucket containing the q-quantile (0 <= q <= 1);
  /// 0 when empty.
  double quantile(double q) const noexcept;
  std::uint64_t bucket_count(int bucket) const noexcept;
  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // Seeded so the first record() wins both races; min()/max() report 0
  // until something was recorded.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// One `key=value` dimension attached to an instrument lookup. Keys must
/// match `[a-z_]+` (enforced; gpumip-lint R4 checks literal call sites);
/// values are free-form and sanitized into the flattened instrument name.
struct Label {
  std::string_view key;
  std::string_view value;
};

/// True when `key` matches the label-key grammar `[a-z_]+`.
bool valid_label_key(std::string_view key) noexcept;

/// Canonical flattened instrument name `name{k1=v1,k2=v2}`: labels sorted
/// by key, values sanitized (characters that would collide with the
/// flattening syntax — `{ } , =`, whitespace, control bytes — become `_`).
/// Throws Error(kInvalidArgument) on a bad or duplicate key.
std::string labeled_name(std::string_view name, std::initializer_list<Label> labels);

/// The documentation form of a labeled family: `name{k1,k2}` (sorted keys,
/// no values). This is the string METRICS.md must backtick and what the
/// v2 export lists under "families".
std::string family_name(std::string_view name, std::initializer_list<Label> labels);

/// Process-wide instrument registry. Instruments are created on first
/// lookup of a name and live for the rest of the process, so call sites
/// may cache the returned reference (the macros in obs/obs.hpp do).
/// Names are dot-separated, lowercase, documented in docs/METRICS.md.
///
/// Labeled lookups (`counter(name, {{"method", "pdhg"}})`) share the same
/// maps under the flattened `name{key=value,...}` form, so the stable
/// reference and locking contracts hold for every label combination; the
/// family (`name{key,...}`) of each labeled instrument is tracked for the
/// v2 export and the METRICS.md glossary gate.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  Counter& counter(std::string_view name, std::initializer_list<Label> labels);
  Gauge& gauge(std::string_view name, std::initializer_list<Label> labels);
  Histogram& histogram(std::string_view name, std::initializer_list<Label> labels);

  /// Sorted names of all registered instruments of each kind (labeled
  /// instruments appear under their flattened `name{k=v,...}` form).
  std::vector<std::string> counter_names() const;
  std::vector<std::string> gauge_names() const;
  std::vector<std::string> histogram_names() const;

  /// Sorted `name{key,...}` family strings of every labeled instrument
  /// registered so far.
  std::vector<std::string> family_names() const;

  /// Lookup by flattened name *without* creating (nullptr when absent).
  /// Readers like the time-series sampler use these so probing a name can
  /// never register a phantom instrument.
  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  /// Zeroes every instrument (registrations survive). Test isolation and
  /// bench phase boundaries only; not thread-safe against concurrent
  /// recording in the sense that racing increments may survive the sweep.
  void reset();

  /// The full registry as a JSON document (schema gpumip.metrics.v2; see
  /// docs/METRICS.md for the layout). The v2 document keeps the v1
  /// counters/gauges/histograms maps — labeled instruments appear as
  /// flattened `name{k=v,...}` keys — and adds a "families" array, so v1
  /// readers (bench_compare.py) keep working unchanged.
  std::string to_json() const;

  /// Writes to_json() to `path` atomically enough for collection scripts
  /// (write + flush + close). Throws Error(kIoError) on any failure.
  void export_json(const std::string& path) const;

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

// ---- convenience free functions over the singleton ----

inline Counter& counter(std::string_view name) { return Registry::instance().counter(name); }
inline Gauge& gauge(std::string_view name) { return Registry::instance().gauge(name); }
inline Histogram& histogram(std::string_view name) {
  return Registry::instance().histogram(name);
}
inline Counter& counter(std::string_view name, std::initializer_list<Label> labels) {
  return Registry::instance().counter(name, labels);
}
inline Gauge& gauge(std::string_view name, std::initializer_list<Label> labels) {
  return Registry::instance().gauge(name, labels);
}
inline Histogram& histogram(std::string_view name, std::initializer_list<Label> labels) {
  return Registry::instance().histogram(name, labels);
}
inline std::string to_json() { return Registry::instance().to_json(); }
inline void export_json(const std::string& path) { Registry::instance().export_json(path); }
inline void reset_all() { Registry::instance().reset(); }

/// Exports to the path named by the GPUMIP_METRICS_OUT environment
/// variable, if set. Returns the path written to ("" when the variable is
/// unset). Used by bench mains and scripts/bench.sh.
std::string export_if_requested();

}  // namespace gpumip::obs
