#include "problems/generators.hpp"

#include <algorithm>
#include <cmath>

namespace gpumip::problems {

using lp::Term;

mip::MipModel knapsack(int items, Rng& rng, double capacity_ratio) {
  check_arg(items > 0, "knapsack: items must be positive");
  mip::MipModel m;
  m.lp().set_sense(lp::Sense::Maximize);
  std::vector<Term> row;
  double total_weight = 0.0;
  for (int j = 0; j < items; ++j) {
    const double value = rng.uniform(1.0, 20.0);
    const double weight = rng.uniform(1.0, 20.0);
    m.add_bin_col(value, "x" + std::to_string(j));
    row.push_back({j, weight});
    total_weight += weight;
  }
  m.lp().add_row_le(row, capacity_ratio * total_weight, "capacity");
  return m;
}

mip::MipModel set_cover(int elements, int sets, Rng& rng, double cover_prob) {
  check_arg(elements > 0 && sets > 0, "set_cover: sizes must be positive");
  mip::MipModel m;
  m.lp().set_sense(lp::Sense::Minimize);
  for (int j = 0; j < sets; ++j) {
    m.add_bin_col(rng.uniform(1.0, 5.0), "s" + std::to_string(j));
  }
  for (int i = 0; i < elements; ++i) {
    std::vector<Term> row;
    for (int j = 0; j < sets; ++j) {
      if (rng.flip(cover_prob)) row.push_back({j, 1.0});
    }
    if (row.empty()) row.push_back({static_cast<int>(rng.index(static_cast<std::size_t>(sets))), 1.0});
    m.lp().add_row_ge(row, 1.0, "e" + std::to_string(i));
  }
  return m;
}

mip::MipModel generalized_assignment(int agents, int jobs, Rng& rng) {
  check_arg(agents > 0 && jobs > 0, "gap: sizes must be positive");
  mip::MipModel m;
  m.lp().set_sense(lp::Sense::Maximize);
  // x[i][j]: agent i takes job j.
  std::vector<std::vector<int>> var(static_cast<std::size_t>(agents));
  std::vector<std::vector<double>> weight(static_cast<std::size_t>(agents));
  for (int i = 0; i < agents; ++i) {
    for (int j = 0; j < jobs; ++j) {
      var[static_cast<std::size_t>(i)].push_back(
          m.add_bin_col(rng.uniform(1.0, 10.0), "x" + std::to_string(i) + "_" + std::to_string(j)));
      weight[static_cast<std::size_t>(i)].push_back(rng.uniform(1.0, 8.0));
    }
  }
  for (int j = 0; j < jobs; ++j) {
    std::vector<Term> row;
    for (int i = 0; i < agents; ++i) row.push_back({var[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)], 1.0});
    m.lp().add_row_eq(row, 1.0, "job" + std::to_string(j));
  }
  // Capacity generous enough that round-robin assignment fits.
  const double cap = 8.0 * (static_cast<double>(jobs) / agents + 1.0);
  for (int i = 0; i < agents; ++i) {
    std::vector<Term> row;
    for (int j = 0; j < jobs; ++j) {
      row.push_back({var[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)],
                     weight[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]});
    }
    m.lp().add_row_le(row, cap, "cap" + std::to_string(i));
  }
  return m;
}

mip::MipModel unit_commitment(int generators, int periods, Rng& rng) {
  check_arg(generators > 0 && periods > 0, "uc: sizes must be positive");
  mip::MipModel m;
  m.lp().set_sense(lp::Sense::Minimize);
  std::vector<double> pmax(static_cast<std::size_t>(generators));
  double total_cap = 0.0;
  for (int g = 0; g < generators; ++g) {
    pmax[static_cast<std::size_t>(g)] = rng.uniform(20.0, 100.0);
    total_cap += pmax[static_cast<std::size_t>(g)];
  }
  // u[g][t] binary, p[g][t] continuous.
  std::vector<std::vector<int>> u(static_cast<std::size_t>(generators)),
      p(static_cast<std::size_t>(generators));
  for (int g = 0; g < generators; ++g) {
    const double fixed_cost = rng.uniform(50.0, 200.0);
    const double var_cost = rng.uniform(5.0, 25.0);
    for (int t = 0; t < periods; ++t) {
      u[static_cast<std::size_t>(g)].push_back(
          m.add_bin_col(fixed_cost, "u" + std::to_string(g) + "_" + std::to_string(t)));
      p[static_cast<std::size_t>(g)].push_back(
          m.add_col(var_cost, 0.0, pmax[static_cast<std::size_t>(g)],
                    "p" + std::to_string(g) + "_" + std::to_string(t)));
    }
  }
  for (int t = 0; t < periods; ++t) {
    // Demand: 30-70% of total capacity, satisfiable.
    const double demand = rng.uniform(0.3, 0.7) * total_cap;
    std::vector<Term> balance;
    for (int g = 0; g < generators; ++g) {
      balance.push_back({p[static_cast<std::size_t>(g)][static_cast<std::size_t>(t)], 1.0});
      // p[g,t] - Pmax u[g,t] <= 0 (output only when committed).
      m.lp().add_row_le({{p[static_cast<std::size_t>(g)][static_cast<std::size_t>(t)], 1.0},
                         {u[static_cast<std::size_t>(g)][static_cast<std::size_t>(t)],
                          -pmax[static_cast<std::size_t>(g)]}},
                        0.0, "link" + std::to_string(g) + "_" + std::to_string(t));
    }
    m.lp().add_row_ge(balance, demand, "demand" + std::to_string(t));
  }
  return m;
}

mip::MipModel random_mip(const RandomMipConfig& config, Rng& rng) {
  check_arg(config.rows > 0 && config.cols > 0, "random_mip: sizes must be positive");
  mip::MipModel m;
  m.lp().set_sense(lp::Sense::Maximize);
  for (int j = 0; j < config.cols; ++j) {
    const double obj = rng.uniform(1.0, 10.0);
    if (rng.flip(config.integer_fraction)) {
      m.add_int_col(obj, 0.0, config.bound, "xi" + std::to_string(j));
    } else {
      m.add_col(obj, 0.0, config.bound, "xc" + std::to_string(j));
    }
  }
  for (int i = 0; i < config.rows; ++i) {
    std::vector<Term> row;
    for (int j = 0; j < config.cols; ++j) {
      if (rng.flip(config.density)) row.push_back({j, rng.uniform(0.5, 3.0)});
    }
    if (row.empty()) row.push_back({static_cast<int>(rng.index(static_cast<std::size_t>(config.cols))), 1.0});
    // rhs keeps a random corner feasible but the LP bound fractional.
    m.lp().add_row_le(row, rng.uniform(2.0, 4.0) * static_cast<double>(row.size()),
                      "r" + std::to_string(i));
  }
  return m;
}

lp::LpModel dense_lp(int rows, int cols, Rng& rng) {
  lp::LpModel m;
  for (int j = 0; j < cols; ++j) m.add_col(rng.uniform(-5.0, -1.0), 0.0, 10.0);
  for (int i = 0; i < rows; ++i) {
    std::vector<Term> row;
    for (int j = 0; j < cols; ++j) row.push_back({j, rng.uniform(0.1, 1.0)});
    m.add_row_le(row, rng.uniform(1.0, 2.0) * cols);
  }
  return m;
}

lp::LpModel sparse_lp(int rows, int cols, double density, Rng& rng) {
  lp::LpModel m;
  for (int j = 0; j < cols; ++j) m.add_col(rng.uniform(-5.0, -1.0), 0.0, 10.0);
  for (int i = 0; i < rows; ++i) {
    std::vector<Term> row;
    for (int j = 0; j < cols; ++j) {
      if (rng.flip(density)) row.push_back({j, rng.uniform(0.1, 1.0)});
    }
    if (row.empty()) row.push_back({static_cast<int>(rng.index(static_cast<std::size_t>(cols))), 1.0});
    m.add_row_le(row, rng.uniform(1.0, 2.0) * static_cast<double>(row.size()) * 3.0);
  }
  return m;
}

}  // namespace gpumip::problems
