// gpumip-lint lexer: the comment/string-aware scan every rule builds on.
//
// One pass over a source file produces a `Scanned` view: a `clean` copy of
// the text with comment bodies and literal contents blanked (same length,
// same line structure, so offsets and line numbers carry over), the string
// literal values keyed by their opening-quote position, and the parsed
// `// gpumip-lint: tag(reason)` waiver annotations. Token-level helpers
// (whole-word search, statement extraction, annotation lookup) live here
// too so the rule modules (lint.cpp, hotpath.cpp) and the declaration
// indexer (index.cpp) share one tokenization of reality.
//
// The scan understands line/block comments, ordinary and char literals
// with escapes, raw string literals with any of the standard encoding
// prefixes (R" / LR" / uR" / u8R" / UR"), and C++14 digit separators
// (1'000'000 does not open a character literal).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "lint.hpp"

namespace gpumip::lint {

bool is_ident_char(char c);
bool is_space(char c);
std::size_t skip_ws(const std::string& s, std::size_t pos);

/// An inline waiver: `// gpumip-lint: <tag>(<reason>)`. Covers the
/// annotation's own line and the line below it.
struct Annotation {
  std::string tag;
  std::string reason;
};

/// One source file after the comment/string-aware scan. `clean` has the
/// same length and line structure as the input, with comment text and
/// literal bodies blanked, so token searches cannot match inside either.
struct Scanned {
  const SourceFile* src = nullptr;
  std::string clean;
  std::vector<std::size_t> line_start;                    // 0-based offsets
  std::unordered_map<std::size_t, std::string> literals;  // opening-quote pos -> value
  std::map<int, std::vector<Annotation>> annotations;     // 1-based line
  std::vector<std::string> lines;                         // original text, 1-based via index+1
  /// Token index: identifier token -> sorted occurrence offsets in `clean`.
  /// Built once by scan() and shared by every rule family, so a rule's
  /// whole-word query is a lookup + binary search instead of a rescan of
  /// the text (the caching that keeps the dataflow rules' per-statement
  /// occurrence checks linear).
  std::unordered_map<std::string, std::vector<std::size_t>> words;
};

/// 1-based line number of byte offset `pos`.
int line_of(const Scanned& f, std::size_t pos);

/// Comment/string-aware scan. Blanks comments and literal bodies in
/// `clean`, records string literal values by position, and parses
/// `// gpumip-lint: tag(reason)` annotations out of comments (malformed
/// annotations become SUP findings).
Scanned scan(const SourceFile& file, std::vector<Finding>& findings);

/// True when `tag` is annotated on `line` or the line above it.
bool has_annotation(const Scanned& f, int line, const std::string& tag);

/// Finds the next whole-word occurrence of `word` in `s` at or after
/// `from`; npos when absent.
std::size_t find_word(const std::string& s, const std::string& word, std::size_t from);

/// Sorted occurrence offsets of identifier token `word` from the token
/// index built by scan(); an empty vector when absent. Prefer this over
/// find_word for whole-file or extent-bounded queries on a Scanned.
const std::vector<std::size_t>& word_positions(const Scanned& f, const std::string& word);

/// The statement around `pos`: text between the previous and next
/// `;`/`{`/`}` in the blanked source. Good enough to ask "does this copy
/// touch a device span".
std::string statement_around(const std::string& clean, std::size_t pos);

}  // namespace gpumip::lint
