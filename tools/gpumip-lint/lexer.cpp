#include "lexer.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace gpumip::lint {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_space(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }

std::size_t skip_ws(const std::string& s, std::size_t pos) {
  while (pos < s.size() && is_space(s[pos])) ++pos;
  return pos;
}

int line_of(const Scanned& f, std::size_t pos) {
  auto it = std::upper_bound(f.line_start.begin(), f.line_start.end(), pos);
  return static_cast<int>(it - f.line_start.begin());
}

namespace {

void parse_annotation(const std::string& comment, int line, Scanned& out,
                      std::vector<Finding>& findings) {
  const std::string marker = "gpumip-lint:";
  std::size_t at = comment.find(marker);
  if (at == std::string::npos) return;
  std::size_t pos = skip_ws(comment, at + marker.size());
  std::string tag;
  while (pos < comment.size() &&
         (std::isalpha(static_cast<unsigned char>(comment[pos])) != 0 || comment[pos] == '-')) {
    tag += comment[pos++];
  }
  pos = skip_ws(comment, pos);
  std::string reason;
  bool closed = false;
  if (pos < comment.size() && comment[pos] == '(') {
    std::size_t close = comment.find(')', pos);
    if (close != std::string::npos) {
      reason = comment.substr(pos + 1, close - pos - 1);
      closed = true;
    }
  }
  // Trim the reason.
  while (!reason.empty() && is_space(reason.front())) reason.erase(reason.begin());
  while (!reason.empty() && is_space(reason.back())) reason.pop_back();
  if (tag.empty() || !closed || reason.empty()) {
    findings.push_back({out.src->path, line, "SUP",
                        "malformed gpumip-lint annotation: expected "
                        "'gpumip-lint: <tag>(<non-empty reason>)'"});
    return;
  }
  out.annotations[line].push_back({tag, reason});
}

/// The maximal identifier-character run ending just before `pos`.
std::string ident_run_before(const std::string& text, std::size_t pos) {
  std::size_t begin = pos;
  while (begin > 0 && is_ident_char(text[begin - 1])) --begin;
  return text.substr(begin, pos - begin);
}

/// True when the `'` at `pos` is a C++14 digit separator (1'000'000,
/// 0xFF'FF): it continues a token that began with a digit. Encoding
/// prefixes of genuine char literals (L'a', u8'a') begin with a letter, so
/// they still open the literal state.
bool is_digit_separator(const std::string& text, std::size_t pos) {
  const std::string run = ident_run_before(text, pos);
  return !run.empty() && std::isdigit(static_cast<unsigned char>(run.front())) != 0;
}

/// True when the `"` at `pos` opens a raw string literal: the identifier
/// run immediately before it is exactly one of the standard raw-string
/// prefixes and is itself a whole token (so an identifier merely *ending*
/// in R, glued to a string by a macro, is not misread as a raw string).
bool opens_raw_string(const std::string& text, std::size_t pos) {
  std::size_t begin = pos;
  while (begin > 0 && is_ident_char(text[begin - 1])) --begin;
  const std::string run = text.substr(begin, pos - begin);
  return run == "R" || run == "LR" || run == "uR" || run == "u8R" || run == "UR";
}

}  // namespace

Scanned scan(const SourceFile& file, std::vector<Finding>& findings) {
  Scanned out;
  out.src = &file;
  const std::string& text = file.content;
  out.clean.assign(text.size(), ' ');
  out.line_start.push_back(0);
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') out.line_start.push_back(i + 1);
  }
  {
    std::istringstream ls(text);
    std::string line;
    while (std::getline(ls, line)) out.lines.push_back(line);
  }

  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string comment, literal, raw_delim;
  std::size_t token_start = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\n') out.clean[i] = '\n';
    switch (state) {
      case State::kCode:
        if (c == '/' && i + 1 < text.size() && text[i + 1] == '/') {
          state = State::kLineComment;
          comment.clear();
          token_start = i;
          ++i;
        } else if (c == '/' && i + 1 < text.size() && text[i + 1] == '*') {
          state = State::kBlockComment;
          comment.clear();
          token_start = i;
          ++i;
        } else if (c == '"' && opens_raw_string(text, i)) {
          // Raw string literal R"delim(...)delim" (any encoding prefix).
          // The delimiter scan is bounded: a missing '(' before end of
          // input (truncated file) degrades to an ordinary string rather
          // than consuming the rest of the file.
          std::size_t j = i + 1;
          std::string delim;
          while (j < text.size() && text[j] != '(' && text[j] != '"' && text[j] != '\n' &&
                 delim.size() < 16) {
            delim += text[j++];
          }
          if (j >= text.size() || text[j] != '(') {
            state = State::kString;
            token_start = i;
            literal.clear();
            out.clean[i] = '"';
            break;
          }
          state = State::kRawString;
          token_start = i;
          literal.clear();
          raw_delim = ")" + delim + "\"";
          out.clean[i] = '"';
          i = j;  // position of '('
        } else if (c == '"') {
          state = State::kString;
          token_start = i;
          literal.clear();
          out.clean[i] = '"';
        } else if (c == '\'' && !is_digit_separator(text, i)) {
          state = State::kChar;
          out.clean[i] = '\'';
        } else {
          out.clean[i] = c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          parse_annotation(comment, line_of(out, token_start), out, findings);
          state = State::kCode;
        } else {
          comment += c;
        }
        break;
      case State::kBlockComment:
        if (c == '*' && i + 1 < text.size() && text[i + 1] == '/') {
          parse_annotation(comment, line_of(out, token_start), out, findings);
          state = State::kCode;
          ++i;
        } else {
          comment += c;
        }
        break;
      case State::kString:
        if (c == '\\' && i + 1 < text.size()) {
          literal += text[i + 1];
          ++i;
        } else if (c == '"') {
          out.clean[i] = '"';
          out.literals[token_start] = literal;
          state = State::kCode;
        } else {
          literal += c;
        }
        break;
      case State::kChar:
        if (c == '\\' && i + 1 < text.size()) {
          ++i;
        } else if (c == '\'') {
          out.clean[i] = '\'';
          state = State::kCode;
        }
        break;
      case State::kRawString:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          out.literals[token_start] = literal;
          i += raw_delim.size() - 1;
          out.clean[i] = '"';
          state = State::kCode;
        } else {
          literal += c;
        }
        break;
    }
  }
  if (state == State::kLineComment) {
    parse_annotation(comment, line_of(out, token_start), out, findings);
  }
  // Token index: one pass over the blanked text records every identifier
  // token's offsets (numbers are skipped — no rule queries them). Offsets
  // are naturally sorted, so extent-bounded queries binary-search.
  for (std::size_t i = 0; i < out.clean.size();) {
    if (!is_ident_char(out.clean[i])) {
      ++i;
      continue;
    }
    const std::size_t begin = i;
    while (i < out.clean.size() && is_ident_char(out.clean[i])) ++i;
    if (std::isdigit(static_cast<unsigned char>(out.clean[begin])) == 0) {
      out.words[out.clean.substr(begin, i - begin)].push_back(begin);
    }
  }
  return out;
}

const std::vector<std::size_t>& word_positions(const Scanned& f, const std::string& word) {
  static const std::vector<std::size_t> kEmpty;
  auto it = f.words.find(word);
  return it == f.words.end() ? kEmpty : it->second;
}

bool has_annotation(const Scanned& f, int line, const std::string& tag) {
  for (int l : {line, line - 1}) {
    auto it = f.annotations.find(l);
    if (it == f.annotations.end()) continue;
    for (const Annotation& a : it->second) {
      if (a.tag == tag) return true;
    }
  }
  return false;
}

std::size_t find_word(const std::string& s, const std::string& word, std::size_t from) {
  for (std::size_t at = s.find(word, from); at != std::string::npos;
       at = s.find(word, at + 1)) {
    const bool left_ok = at == 0 || !is_ident_char(s[at - 1]);
    const std::size_t end = at + word.size();
    const bool right_ok = end >= s.size() || !is_ident_char(s[end]);
    if (left_ok && right_ok) return at;
  }
  return std::string::npos;
}

std::string statement_around(const std::string& clean, std::size_t pos) {
  const std::string stops = ";{}";
  std::size_t begin = clean.find_last_of(stops, pos);
  begin = (begin == std::string::npos) ? 0 : begin + 1;
  std::size_t end = clean.find_first_of(stops, pos);
  if (end == std::string::npos) end = clean.size();
  return clean.substr(begin, end - begin);
}

}  // namespace gpumip::lint
