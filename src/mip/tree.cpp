#include "mip/tree.hpp"

#include <algorithm>
#include <sstream>

#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "support/assert.hpp"
#include "support/error.hpp"

namespace gpumip::mip {

const char* node_state_name(NodeState state) noexcept {
  switch (state) {
    case NodeState::Active: return "active";
    case NodeState::Branched: return "branched";
    case NodeState::FeasibleLeaf: return "feasible";
    case NodeState::InfeasibleLeaf: return "infeasible";
    case NodeState::PrunedLeaf: return "pruned";
  }
  return "?";
}

const char* node_selection_name(NodeSelection policy) noexcept {
  switch (policy) {
    case NodeSelection::BestFirst: return "best-first";
    case NodeSelection::DepthFirst: return "depth-first";
    case NodeSelection::GpuLocality: return "gpu-locality";
  }
  return "?";
}

NodePool::NodePool(NodeSelection policy, double locality_slack)
    : policy_(policy), locality_slack_(locality_slack) {}

int NodePool::push(BnbNode node) {
  GPUMIP_ASSERT(node.parent >= -1 && node.parent < static_cast<int>(nodes_.size()),
                "push: parent id out of range");
  GPUMIP_ASSERT(node.parent < 0 ||
                    nodes_[static_cast<std::size_t>(node.parent)].state == NodeState::Branched,
                "push: child of a parent that never branched (orphan)");
  GPUMIP_ASSERT(node.parent < 0 ||
                    node.bound + 1e-9 >= nodes_[static_cast<std::size_t>(node.parent)].bound,
                "push: child bound regresses below parent bound");
  GPUMIP_ASSERT(node.lb.size() == node.ub.size(), "push: lb/ub size mismatch");
  node.id = static_cast<int>(nodes_.size());
  node.state = NodeState::Active;
  const int id = node.id;
  anatomy_.max_depth = std::max(anatomy_.max_depth, node.depth);
  ++anatomy_.total_nodes;
  nodes_.push_back(std::move(node));
  active_.push_back(id);
  ++active_count_;
  anatomy_.active_peak = std::max<long>(anatomy_.active_peak, static_cast<long>(active_count_));
  GPUMIP_OBS_COUNT("gpumip.mip.tree.pushed");
  GPUMIP_TRACE_INSTANT("gpumip.mip.node.pushed", id);
  GPUMIP_OBS_GAUGE_MAX("gpumip.mip.tree.depth_max", static_cast<double>(anatomy_.max_depth));
  GPUMIP_OBS_GAUGE_MAX("gpumip.mip.tree.frontier_peak", static_cast<double>(anatomy_.active_peak));
  return id;
}

namespace {
/// Removes the element at `pos` from a vector in O(1) (order not preserved).
void swap_erase(std::vector<int>& v, std::size_t pos) {
  v[pos] = v.back();
  v.pop_back();
}
}  // namespace

int NodePool::pop(int last_evaluated, double best_known) {
  // Lazily drop stale entries (nodes re-tagged by prune_worse_than).
  while (!active_.empty() && nodes_[static_cast<std::size_t>(active_.back())].state != NodeState::Active) {
    active_.pop_back();
  }
  if (active_.empty()) return -1;

  auto live = [&](std::size_t pos) {
    return nodes_[static_cast<std::size_t>(active_[pos])].state == NodeState::Active;
  };

  std::size_t chosen = active_.size();  // sentinel
  switch (policy_) {
    case NodeSelection::DepthFirst: {
      for (std::size_t i = active_.size(); i-- > 0;) {
        if (live(i)) {
          chosen = i;
          break;
        }
      }
      break;
    }
    case NodeSelection::GpuLocality: {
      // A child of the last evaluated node keeps the device-resident matrix
      // and factorization hot; take one if its bound is close enough to the
      // best active bound (relative slack).
      const double best_bound = best_active_bound();
      const double slack = locality_slack_ * (1.0 + std::min(std::abs(best_bound),
                                                             std::abs(best_known)));
      for (std::size_t i = active_.size(); i-- > 0;) {
        if (!live(i)) continue;
        const BnbNode& n = nodes_[static_cast<std::size_t>(active_[i])];
        if (n.parent == last_evaluated && n.bound <= best_bound + slack &&
            n.bound < best_known) {
          chosen = i;
          break;
        }
      }
      if (chosen != active_.size()) break;
      [[fallthrough]];
    }
    case NodeSelection::BestFirst: {
      double best = 0.0;
      for (std::size_t i = 0; i < active_.size(); ++i) {
        if (!live(i)) continue;
        const double b = nodes_[static_cast<std::size_t>(active_[i])].bound;
        if (chosen == active_.size() || b < best) {
          best = b;
          chosen = i;
        }
      }
      break;
    }
  }
  if (chosen == active_.size()) return -1;
  const int id = active_[chosen];
  swap_erase(active_, chosen);
  --active_count_;
  return id;
}

double NodePool::best_active_bound() const {
  double best = 1e300;
  for (int id : active_) {
    const BnbNode& n = nodes_[static_cast<std::size_t>(id)];
    if (n.state == NodeState::Active) best = std::min(best, n.bound);
  }
  return best;
}

void NodePool::set_state(int id, NodeState state) {
  GPUMIP_ASSERT(id >= 0 && id < static_cast<int>(nodes_.size()), "set_state: id out of range");
  BnbNode& n = nodes_[static_cast<std::size_t>(id)];
  check_internal(n.state == NodeState::Active || state != NodeState::Active,
                 "cannot re-activate a finished node");
  n.state = state;
  switch (state) {
    case NodeState::Branched: ++anatomy_.branched; break;
    case NodeState::FeasibleLeaf: ++anatomy_.feasible_leaves; break;
    case NodeState::InfeasibleLeaf: ++anatomy_.infeasible_leaves; break;
    case NodeState::PrunedLeaf: ++anatomy_.pruned_leaves; break;
    case NodeState::Active: break;
  }
}

std::vector<int> NodePool::active_ids() const {
  std::vector<int> out;
  for (int id : active_) {
    if (nodes_[static_cast<std::size_t>(id)].state == NodeState::Active) out.push_back(id);
  }
  return out;
}

long NodePool::prune_worse_than(double cutoff) {
  long pruned = 0;
  for (int id : active_) {
    BnbNode& n = nodes_[static_cast<std::size_t>(id)];
    if (n.state == NodeState::Active && n.bound >= cutoff) {
      set_state(id, NodeState::PrunedLeaf);
      GPUMIP_TRACE_INSTANT("gpumip.mip.node.pruned", id);
      ++pruned;
    }
  }
  if (pruned > 0) {
    std::erase_if(active_, [&](int id) {
      return nodes_[static_cast<std::size_t>(id)].state != NodeState::Active;
    });
    active_count_ = active_.size();
    GPUMIP_OBS_ADD("gpumip.mip.tree.pruned", static_cast<std::uint64_t>(pruned));
  }
  return pruned;
}

std::string NodePool::render_ascii(int max_nodes) const {
  std::ostringstream out;
  // children adjacency
  std::vector<std::vector<int>> children(nodes_.size());
  int root = -1;
  for (const BnbNode& n : nodes_) {
    if (n.parent >= 0) {
      children[static_cast<std::size_t>(n.parent)].push_back(n.id);
    } else {
      root = n.id;
    }
  }
  if (root < 0) return "(empty tree)\n";
  int printed = 0;
  // Depth-first with prefix rendering.
  struct Item {
    int id;
    std::string prefix;
    bool last;
  };
  std::vector<Item> stack = {{root, "", true}};
  while (!stack.empty() && printed < max_nodes) {
    const Item item = stack.back();
    stack.pop_back();
    const BnbNode& n = nodes_[static_cast<std::size_t>(item.id)];
    out << item.prefix;
    if (n.parent >= 0) out << (item.last ? "`-- " : "|-- ");
    out << "#" << n.id << " [" << node_state_name(n.state) << "]";
    if (n.branch_var >= 0) {
      out << " x" << n.branch_var << (n.branch_up ? ">=" : "<=")
          << (n.branch_up ? n.lb[static_cast<std::size_t>(n.branch_var)]
                          : n.ub[static_cast<std::size_t>(n.branch_var)]);
    }
    if (n.state != NodeState::Active && n.state != NodeState::InfeasibleLeaf) {
      out << " lp=" << n.lp_objective;
    }
    out << "\n";
    ++printed;
    const std::string child_prefix =
        item.prefix + (n.parent >= 0 ? (item.last ? "    " : "|   ") : "");
    const auto& kids = children[static_cast<std::size_t>(item.id)];
    for (std::size_t i = kids.size(); i-- > 0;) {
      stack.push_back({kids[i], child_prefix, i + 1 == kids.size()});
    }
  }
  if (printed >= max_nodes) out << "... (truncated)\n";
  return out.str();
}

}  // namespace gpumip::mip
