#include "hotpath.hpp"

#include <algorithm>
#include <deque>
#include <set>
#include <sstream>

namespace gpumip::lint {
namespace {

// ---- manifest matching -----------------------------------------------------

bool entry_matches(const HotPathEntry& e, const FunctionDecl& d) {
  if (e.name.size() > 3 && e.name.compare(e.name.size() - 3, 3, "::*") == 0) {
    const std::string prefix = e.name.substr(0, e.name.size() - 1);  // "Class::"
    return d.qualified.size() > prefix.size() &&
           d.qualified.compare(0, prefix.size(), prefix) == 0;
  }
  return e.name == d.name || e.name == d.qualified;
}

/// Finds `token` in `s` honoring identifier boundaries. Tokens containing
/// '<' or ':' (qualified or templated type spellings) match as substrings
/// with an identifier boundary on the left; plain identifiers match as
/// whole words.
std::size_t find_token(const std::string& s, const std::string& token, std::size_t from) {
  if (token.find_first_of("<:") == std::string::npos) return find_word(s, token, from);
  for (std::size_t at = s.find(token, from); at != std::string::npos;
       at = s.find(token, at + 1)) {
    const bool left_ok = at == 0 || !is_ident_char(s[at - 1]);
    const std::size_t end = at + token.size();
    const bool right_ok =
        end >= s.size() || !is_ident_char(s[end]) || !is_ident_char(token.back());
    if (left_ok && right_ok) return at;
  }
  return std::string::npos;
}

/// First non-space offset after `pos`, bounded by `limit`.
std::size_t next_code_char(const std::string& s, std::size_t pos, std::size_t limit) {
  while (pos < limit && is_space(s[pos])) ++pos;
  return pos;
}

// ---- traversal -------------------------------------------------------------

struct Traversal {
  std::vector<int> visited;            ///< decl indices, root first
  std::vector<int> parent;             ///< per decl index: caller decl (-1 for root)
};

std::string chain_string(const Traversal& t, const std::vector<FunctionDecl>& functions,
                         int decl) {
  std::vector<std::string> names;
  for (int at = decl; at != -1; at = t.parent[static_cast<std::size_t>(at)]) {
    names.push_back(functions[static_cast<std::size_t>(at)].qualified);
    if (names.size() > 8) break;  // keep messages readable on deep chains
  }
  std::reverse(names.begin(), names.end());
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += " -> ";
    out += n;
  }
  return out;
}

/// BFS from `root` over the call graph. Other roots are boundaries (their
/// own traversal covers them); stop-matched functions prune; a function
/// that invokes a std::function value conservatively reaches every
/// address-taken function.
Traversal traverse(int root, const std::vector<FunctionDecl>& functions, const CallGraph& graph,
                   const std::vector<char>& is_root, const std::vector<char>& is_stopped) {
  Traversal t;
  t.parent.assign(functions.size(), -1);
  std::vector<char> seen(functions.size(), 0);
  std::deque<int> queue;
  queue.push_back(root);
  seen[static_cast<std::size_t>(root)] = 1;
  while (!queue.empty()) {
    const int f = queue.front();
    queue.pop_front();
    t.visited.push_back(f);
    auto enqueue = [&](int callee) {
      if (seen[static_cast<std::size_t>(callee)] != 0) return;
      if (is_stopped[static_cast<std::size_t>(callee)] != 0) return;
      if (is_root[static_cast<std::size_t>(callee)] != 0 && callee != root) return;
      seen[static_cast<std::size_t>(callee)] = 1;
      t.parent[static_cast<std::size_t>(callee)] = f;
      queue.push_back(callee);
    };
    for (int callee : graph.edges[static_cast<std::size_t>(f)]) enqueue(callee);
    if (graph.calls_function_object[static_cast<std::size_t>(f)] != 0) {
      for (int i = 0; i < static_cast<int>(functions.size()); ++i) {
        if (graph.address_taken[static_cast<std::size_t>(i)] != 0) enqueue(i);
      }
    }
  }
  return t;
}

// ---- site scanners ---------------------------------------------------------

using SiteKey = std::tuple<std::string, std::string, int>;  // rule, file, line

bool emit_once(std::set<SiteKey>& seen, const std::string& rule, const std::string& file,
               int line) {
  return seen.insert({rule, file, line}).second;
}

/// R6: heap-allocation sites inside one function body. Allocations inside
/// a `throw` statement are exempt (the error path is off the hot path);
/// `// gpumip-lint: hot-alloc(reason)` waives a site.
void scan_allocations(const Scanned& f, const FunctionDecl& d, const std::string& chain,
                      std::set<SiteKey>& emitted, std::vector<Finding>& findings) {
  const std::string& clean = f.clean;
  const std::size_t begin = d.body_begin + 1;
  const std::size_t end = d.body_end;
  auto report = [&](std::size_t at, const std::string& what) {
    const int line = line_of(f, at);
    if (has_annotation(f, line, "hot-alloc")) return;
    if (find_word(statement_around(clean, at), "throw", 0) != std::string::npos) return;
    if (!emit_once(emitted, "R6", f.src->path, line)) return;
    findings.push_back(
        {f.src->path, line, "R6",
         "heap allocation (" + what + ") on the hot path [" + chain +
             "]; hoist it out of the loop, reuse a preallocated buffer/arena, or annotate "
             "'// gpumip-lint: hot-alloc(reason)'"});
  };

  for (std::size_t at = find_word(clean, "new", begin); at != std::string::npos && at < end;
       at = find_word(clean, "new", at + 1)) {
    report(at, "'new'");
  }
  for (const char* maker : {"make_unique", "make_shared"}) {
    for (std::size_t at = find_word(clean, maker, begin); at != std::string::npos && at < end;
         at = find_word(clean, maker, at + 1)) {
      report(at, std::string("'") + maker + "'");
    }
  }
  // Container growth through a member call: v.push_back(...), q->insert(...).
  for (const char* grow : {"push_back", "emplace_back", "emplace", "resize", "reserve",
                           "insert", "append", "assign", "push", "push_front"}) {
    for (std::size_t at = find_word(clean, grow, begin); at != std::string::npos && at < end;
         at = find_word(clean, grow, at + 1)) {
      const bool member = (at >= 1 && clean[at - 1] == '.') ||
                          (at >= 2 && clean.compare(at - 2, 2, "->") == 0);
      if (!member) continue;
      const std::size_t after = next_code_char(clean, at + std::string(grow).size(), end);
      if (after >= end || clean[after] != '(') continue;
      report(at, std::string("container growth '.") + grow + "()'");
    }
  }
  // Allocating locals/temporaries of container types, including
  // std::function construction: `Type<...> name(init)`, `Type name = ...`.
  for (const char* type : {"vector", "string", "deque", "unordered_map", "unordered_set",
                           "map", "multimap", "list", "ostringstream", "istringstream",
                           "stringstream", "function", "Vector", "Matrix", "ByteWriter"}) {
    for (std::size_t at = find_word(clean, type, begin); at != std::string::npos && at < end;
         at = find_word(clean, type, at + 1)) {
      std::size_t pos = at + std::string(type).size();
      if (pos < end && clean[pos] == '<') {
        int depth = 0;
        while (pos < end) {
          if (clean[pos] == '<') ++depth;
          else if (clean[pos] == '>' && --depth == 0) { ++pos; break; }
          else if (clean[pos] == ';' || clean[pos] == '{') { depth = -1; break; }
          ++pos;
        }
        if (depth != 0) continue;  // comparison or unbalanced: not a type
      }
      pos = next_code_char(clean, pos, end);
      if (pos >= end) continue;
      const char c = clean[pos];
      if (c == '&' || c == '*' || c == '>' || c == ',' || c == ')' || c == ':') {
        continue;  // reference, pointer, or component of another type
      }
      if (c == '(' || c == '{') {
        // Temporary construction Type(...) — allocation when non-empty.
        const std::size_t inner = next_code_char(clean, pos + 1, end);
        if (inner < end && clean[inner] != ')' && clean[inner] != '}') {
          report(at, std::string("allocating temporary '") + type + "(...)'");
        }
        continue;
      }
      if (is_ident_char(c)) {
        // Declaration `Type name ...`: flag when the initializer can
        // allocate (parenthesized/braced args or assignment).
        std::size_t ne = pos;
        while (ne < end && is_ident_char(clean[ne])) ++ne;
        const std::size_t after_name = next_code_char(clean, ne, end);
        if (after_name >= end) continue;
        const char ic = clean[after_name];
        if (ic == '=') {
          report(at, std::string("allocating local '") + type + " " +
                         clean.substr(pos, ne - pos) + " = ...'");
        } else if (ic == '(' || ic == '{') {
          const std::size_t inner = next_code_char(clean, after_name + 1, end);
          if (inner < end && clean[inner] != ')' && clean[inner] != '}') {
            report(at, std::string("allocating local '") + type + " " +
                           clean.substr(pos, ne - pos) + "(...)'");
          }
        }
      }
    }
  }
}

/// R7: by-value payload types in one function's signature. Waived for the
/// whole signature with `// gpumip-lint: hot-copy(reason)`.
void scan_signature(const Scanned& f, const FunctionDecl& d,
                    const std::vector<std::string>& payload_types, const std::string& chain,
                    std::set<SiteKey>& emitted, std::vector<Finding>& findings) {
  if (payload_types.empty()) return;
  if (has_annotation(f, d.line, "hot-copy")) return;
  const std::string& clean = f.clean;
  auto report = [&](std::size_t at, const std::string& token, const char* how) {
    const int line = line_of(f, at);
    if (has_annotation(f, line, "hot-copy")) return;
    if (!emit_once(emitted, "R7", f.src->path, line)) return;
    findings.push_back(
        {f.src->path, line, "R7",
         std::string("payload type '") + token + "' " + how + " by value on the hot path [" +
             chain +
             "]; pass a view/reference (or move), or annotate "
             "'// gpumip-lint: hot-copy(reason)'"});
  };
  for (const std::string& token : payload_types) {
    // Parameters: payload token not followed by &, *, or a closing context.
    for (std::size_t at = find_token(clean, token, d.params_begin);
         at != std::string::npos && at < d.params_end; at = find_token(clean, token, at + 1)) {
      const std::size_t after = next_code_char(clean, at + token.size(), d.params_end + 1);
      const char c = after <= d.params_end ? clean[after] : ')';
      if (c == '&' || c == '*' || c == '>') continue;  // reference/move/inside another type
      report(at, token, "passed");
    }
    // Return type: payload token with nothing but whitespace before the name.
    for (std::size_t at = find_token(clean, token, d.ret_begin);
         at != std::string::npos && at < d.name_begin; at = find_token(clean, token, at + 1)) {
      const std::size_t after = next_code_char(clean, at + token.size(), d.name_begin);
      if (after >= d.name_begin) {
        report(at, token, "returned");
      }
    }
  }
}

/// R8: blocking sites inside one function body (wave traversals only).
/// Waived per site with `// gpumip-lint: hot-block(reason)`.
void scan_blocking(const Scanned& f, const FunctionDecl& d,
                   const std::vector<std::string>& blocking_names, const std::string& chain,
                   std::set<SiteKey>& emitted, std::vector<Finding>& findings) {
  const std::string& clean = f.clean;
  const std::size_t begin = d.body_begin + 1;
  const std::size_t end = d.body_end;
  auto report = [&](std::size_t at, const std::string& what) {
    const int line = line_of(f, at);
    if (has_annotation(f, line, "hot-block")) return;
    if (!emit_once(emitted, "R8", f.src->path, line)) return;
    findings.push_back(
        {f.src->path, line, "R8",
         "blocking call (" + what + ") reachable from a device-wave critical section [" +
             chain +
             "]; a wave must never wait on host synchronization — restructure or annotate "
             "'// gpumip-lint: hot-block(reason)'"});
  };
  for (const char* word : {"lock_guard", "unique_lock", "scoped_lock", "shared_lock",
                           "ifstream", "ofstream", "fstream", "fopen", "freopen", "getline",
                           "system", "sleep_for", "sleep_until"}) {
    for (std::size_t at = find_word(clean, word, begin); at != std::string::npos && at < end;
         at = find_word(clean, word, at + 1)) {
      report(at, std::string("'") + word + "'");
    }
  }
  // Member-call waits and lock acquisitions: x.lock(), cv.wait(...).
  for (const char* member : {"lock", "wait", "wait_for", "wait_until"}) {
    for (std::size_t at = find_word(clean, member, begin); at != std::string::npos && at < end;
         at = find_word(clean, member, at + 1)) {
      const bool is_member = (at >= 1 && clean[at - 1] == '.') ||
                             (at >= 2 && clean.compare(at - 2, 2, "->") == 0);
      if (!is_member) continue;
      const std::size_t after = next_code_char(clean, at + std::string(member).size(), end);
      if (after >= end || clean[after] != '(') continue;
      report(at, std::string("'.") + member + "()'");
    }
  }
  // Manifest-declared blocking primitives, called directly or as members.
  for (const std::string& name : blocking_names) {
    for (std::size_t at = find_word(clean, name, begin); at != std::string::npos && at < end;
         at = find_word(clean, name, at + 1)) {
      const std::size_t after = next_code_char(clean, at + name.size(), end);
      if (after >= end || clean[after] != '(') continue;
      report(at, "'" + name + "' (declared blocking in the hot-path manifest)");
    }
  }
}

}  // namespace

HotPathManifest parse_hotpaths(const std::string& text, const std::string& path,
                               std::vector<Finding>& findings) {
  HotPathManifest manifest;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    const std::size_t sep = line.find(" -- ");
    if (sep == std::string::npos) {
      findings.push_back({path, lineno, "HOT",
                          "hot-path manifest entry is missing ' -- <justification>'"});
      continue;
    }
    std::istringstream head(line.substr(0, sep));
    HotPathEntry entry;
    head >> entry.kind >> entry.name;
    entry.reason = line.substr(sep + 4);
    while (!entry.reason.empty() && is_space(entry.reason.back())) entry.reason.pop_back();
    entry.line = lineno;
    std::string extra;
    if (entry.kind != "root" && entry.kind != "wave" && entry.kind != "stop" &&
        entry.kind != "payload" && entry.kind != "blocking") {
      findings.push_back({path, lineno, "HOT",
                          "unknown hot-path manifest kind '" + entry.kind +
                              "' (expected root|wave|stop|payload|blocking)"});
      continue;
    }
    if (entry.name.empty() || entry.reason.empty() || (head >> extra)) {
      findings.push_back({path, lineno, "HOT",
                          "hot-path manifest entry needs '<kind> <name> -- <justification>'"});
      continue;
    }
    manifest.entries.push_back(std::move(entry));
  }
  return manifest;
}

void check_hotpaths(const std::vector<Scanned>& files, const HotPathManifest& manifest,
                    const std::string& manifest_path, const std::vector<FunctionDecl>& functions,
                    const CallGraph& graph, std::vector<Finding>& findings) {
  if (manifest.empty()) return;

  std::vector<char> is_root(functions.size(), 0);
  std::vector<char> is_wave(functions.size(), 0);
  std::vector<char> is_stopped(functions.size(), 0);
  std::vector<std::string> payload_types;
  std::vector<std::string> blocking_names;
  for (const HotPathEntry& e : manifest.entries) {
    if (e.kind == "payload") {
      payload_types.push_back(e.name);
      continue;
    }
    if (e.kind == "blocking") {
      blocking_names.push_back(e.name);
      continue;
    }
    bool matched = false;
    for (int i = 0; i < static_cast<int>(functions.size()); ++i) {
      if (!entry_matches(e, functions[static_cast<std::size_t>(i)])) continue;
      matched = true;
      if (e.kind == "stop") {
        is_stopped[static_cast<std::size_t>(i)] = 1;
      } else {
        is_root[static_cast<std::size_t>(i)] = 1;
        if (e.kind == "wave") is_wave[static_cast<std::size_t>(i)] = 1;
      }
    }
    if (!matched) {
      findings.push_back({manifest_path, e.line, "HOT",
                          "hot-path manifest " + e.kind + " entry '" + e.name +
                              "' matches no indexed function definition (stale manifest?)"});
    }
  }

  std::set<SiteKey> emitted;
  for (int root = 0; root < static_cast<int>(functions.size()); ++root) {
    if (is_root[static_cast<std::size_t>(root)] == 0) continue;
    const Traversal t = traverse(root, functions, graph, is_root, is_stopped);
    const FunctionDecl& rd = functions[static_cast<std::size_t>(root)];
    const Scanned& rf = files[static_cast<std::size_t>(rd.file_index)];

    // R9: the root itself must be instrumented (trace or metric site in
    // its own extent — lambdas inside count, they are part of the extent).
    const std::string body =
        rf.clean.substr(rd.body_begin, rd.body_end - rd.body_begin);
    if (body.find("GPUMIP_OBS_") == std::string::npos &&
        body.find("GPUMIP_TRACE_") == std::string::npos &&
        body.find("obs::") == std::string::npos) {
      if (emit_once(emitted, "R9", rf.src->path, rd.line)) {
        findings.push_back(
            {rf.src->path, rd.line, "R9",
             "hot-path root '" + rd.qualified +
                 "' carries no trace/metric instrumentation (no GPUMIP_OBS_*/GPUMIP_TRACE_*/"
                 "obs:: site in its body); instrument it so the paper-claim benches can see it"});
      }
    }

    for (int decl : t.visited) {
      const FunctionDecl& d = functions[static_cast<std::size_t>(decl)];
      const Scanned& f = files[static_cast<std::size_t>(d.file_index)];
      const std::string chain = chain_string(t, functions, decl);
      scan_allocations(f, d, chain, emitted, findings);
      scan_signature(f, d, payload_types, chain, emitted, findings);
      if (is_wave[static_cast<std::size_t>(root)] != 0) {
        scan_blocking(f, d, blocking_names, chain, emitted, findings);
      }
    }
  }
}

}  // namespace gpumip::lint
