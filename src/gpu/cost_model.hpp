// Device cost model.
//
// The simulator prices every device operation (kernel launch, host<->device
// transfer, device<->device message) in simulated seconds from a small set
// of architectural parameters. Absolute values are calibrated loosely to a
// V100-class accelerator (the paper's Summit reference); what the
// experiments depend on is the *ratios* the paper reasons about:
//
//   * dense SIMD kernels approach peak; sparse/divergent kernels do not
//     (paper section 5.4),
//   * a host<->device round trip has a fixed latency floor, so chatty
//     transfer patterns lose (sections 4.3, 5.2, 5.3),
//   * one small LP cannot fill the device; batched launches can
//     (section 5.5).
#pragma once

#include <cstdint>

namespace gpumip::gpu {

/// Architectural parameters of one simulated accelerator.
struct CostModelConfig {
  // Compute.
  double dense_flops = 7.0e12;      ///< effective fp64 throughput, dense kernels
  double sparse_efficiency = 0.06;  ///< fraction of dense_flops sparse kernels reach
  double mem_bandwidth = 0.9e12;    ///< device memory bytes/s
  double launch_overhead = 5.0e-6;  ///< fixed seconds per kernel launch
  double divergence_penalty = 3.0;  ///< slowdown multiplier at full divergence
  int simd_width = 32;              ///< lanes per warp (reporting only)
  int parallel_slots = 16;          ///< kernels that can overlap across streams

  // Host link (PCIe/NVLink class).
  double pcie_latency = 10.0e-6;    ///< seconds per transfer
  double pcie_bandwidth = 24.0e9;   ///< bytes/s

  // Capacity.
  std::uint64_t memory_bytes = 16ull << 30;  ///< device memory capacity

  /// Scales compute/bandwidth while keeping latencies; convenience for
  /// modelling weaker/stronger parts in ablations.
  CostModelConfig scaled(double factor) const;
};

/// Resource demand of one kernel launch, declared by the caller.
struct KernelCost {
  double flops = 0.0;       ///< useful floating-point operations
  double bytes = 0.0;       ///< device-memory traffic (read+write)
  double divergence = 0.0;  ///< 0 = uniform warps, 1 = fully divergent
  double occupancy = 1.0;   ///< fraction of the device this launch can fill
  bool sparse = false;      ///< true -> priced at sparse_efficiency

  /// Cost of a dense kernel touching `n` doubles with `flops` work.
  static KernelCost dense(double flops, double n_doubles);
  /// Cost of a sparse/irregular kernel.
  static KernelCost sparse_irregular(double flops, double n_doubles, double divergence = 0.6);
};

/// Seconds one kernel occupies its share of the device.
double kernel_seconds(const CostModelConfig& cfg, const KernelCost& cost);

/// Seconds to move `bytes` across the host link (one direction).
double transfer_seconds(const CostModelConfig& cfg, std::uint64_t bytes);

}  // namespace gpumip::gpu
