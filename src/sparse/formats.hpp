// Sparse matrix storage: triplet (COO) builder and compressed CSR/CSC.
//
// The MIP constraint matrix is assembled as triplets, compressed once, and
// then consumed by two code paths (paper section 5.4): the dense path
// expands to linalg::Matrix for GPU-friendly kernels; the sparse path works
// on CSR/CSC directly.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"
#include "support/error.hpp"

namespace gpumip::sparse {

/// One nonzero in triplet form.
struct Triplet {
  int row = 0;
  int col = 0;
  double value = 0.0;
};

/// Compressed sparse row. Rows are sorted by column index within each row.
struct Csr {
  int rows = 0;
  int cols = 0;
  std::vector<int> row_start;  // size rows+1
  std::vector<int> col_index;  // size nnz
  std::vector<double> values;  // size nnz

  int nnz() const noexcept { return static_cast<int>(col_index.size()); }
  double density() const noexcept {
    return rows == 0 || cols == 0 ? 0.0
                                  : static_cast<double>(nnz()) / (static_cast<double>(rows) * cols);
  }
};

/// Compressed sparse column (same fields, column-major).
struct Csc {
  int rows = 0;
  int cols = 0;
  std::vector<int> col_start;  // size cols+1
  std::vector<int> row_index;  // size nnz
  std::vector<double> values;

  int nnz() const noexcept { return static_cast<int>(row_index.size()); }
  double density() const noexcept {
    return rows == 0 || cols == 0 ? 0.0
                                  : static_cast<double>(nnz()) / (static_cast<double>(rows) * cols);
  }
};

/// Builds CSR from triplets; duplicate (row,col) entries are summed and
/// exact zeros (after summing) below `drop_tol` are dropped.
Csr csr_from_triplets(int rows, int cols, const std::vector<Triplet>& triplets,
                      double drop_tol = 0.0);

/// Builds CSC from triplets.
Csc csc_from_triplets(int rows, int cols, const std::vector<Triplet>& triplets,
                      double drop_tol = 0.0);

Csc csr_to_csc(const Csr& a);
Csr csc_to_csr(const Csc& a);

/// Transpose as CSR (rows and cols swap).
Csr transpose(const Csr& a);

linalg::Matrix to_dense(const Csr& a);
linalg::Matrix to_dense(const Csc& a);
Csr csr_from_dense(const linalg::Matrix& a, double drop_tol = 0.0);

/// Structural equality + value closeness, for tests.
bool approx_equal(const Csr& a, const Csr& b, double tol);

/// Extracts column j as a dense vector.
linalg::Vector dense_column(const Csc& a, int j);

}  // namespace gpumip::sparse
