// Sparse BLAS kernels (host reference implementations).
#pragma once

#include <span>

#include "sparse/formats.hpp"

namespace gpumip::sparse {

/// y = alpha A x + beta y (CSR).
void spmv(double alpha, const Csr& a, std::span<const double> x, double beta,
          std::span<double> y);

/// y = alpha Aᵀ x + beta y (CSR input).
void spmv_t(double alpha, const Csr& a, std::span<const double> x, double beta,
            std::span<double> y);

/// C = A B with sparse A (CSR) and dense B; dense C.
void spmm(const Csr& a, const linalg::Matrix& b, linalg::Matrix& c);

/// Dot of sparse column j of A (CSC) with a dense vector.
double column_dot(const Csc& a, int j, std::span<const double> x);

/// Row-length statistics used by the device cost model to estimate warp
/// divergence of an SpMV (irregular row lengths -> divergent lanes).
struct RowStats {
  double mean = 0.0;
  double max = 0.0;
  double cv = 0.0;  ///< coefficient of variation (stddev/mean)
};
RowStats row_stats(const Csr& a);

}  // namespace gpumip::sparse
