// Error handling primitives for gpumip.
//
// The library reports unrecoverable contract violations and environmental
// failures via exceptions derived from gpumip::Error, each carrying an
// ErrorCode so callers can dispatch without string matching.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace gpumip {

/// Machine-readable category of a failure.
enum class ErrorCode {
  kInvalidArgument,   ///< caller violated a documented precondition
  kOutOfDeviceMemory, ///< simulated device allocation failed
  kNumericalFailure,  ///< singular matrix, factorization breakdown, ...
  kLimitExceeded,     ///< iteration/node/time budget exhausted unexpectedly
  kIoError,           ///< file parse/write failure
  kProtocolError,     ///< malformed wire payload (truncated/trailing bytes)
  kInternal,          ///< invariant broken inside the library (a bug)
};

/// Human-readable name of an ErrorCode ("InvalidArgument", ...).
const char* error_code_name(ErrorCode code) noexcept;

/// Base exception for all gpumip failures.
class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& message)
      : std::runtime_error(std::string(error_code_name(code)) + ": " + message),
        code_(code) {}

  ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

/// Thrown when a simulated device allocation exceeds capacity.
class DeviceOutOfMemory : public Error {
 public:
  explicit DeviceOutOfMemory(const std::string& message)
      : Error(ErrorCode::kOutOfDeviceMemory, message) {}
};

/// Thrown on numerical breakdown (singular basis, indefinite matrix, ...).
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& message)
      : Error(ErrorCode::kNumericalFailure, message) {}
};

/// Throws Error(kInvalidArgument) with location info when `cond` is false.
void check_arg(bool cond, const std::string& message,
               std::source_location loc = std::source_location::current());

/// Throws Error(kInternal) with location info when `cond` is false.
/// Used for invariants that indicate a library bug, not misuse.
void check_internal(bool cond, const std::string& message,
                    std::source_location loc = std::source_location::current());

/// Throws Error(kProtocolError) with location info when `cond` is false.
/// Used by wire deserializers: a payload that fails structural validation
/// (trailing bytes, impossible length header) is a protocol error, not a
/// caller bug — it signals version skew or corruption between ranks.
void check_protocol(bool cond, const std::string& message,
                    std::source_location loc = std::source_location::current());

}  // namespace gpumip
