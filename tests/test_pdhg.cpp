// Restarted-PDHG backend (lp/pdhg.hpp): agreement with the simplex on the
// LP corpus, the KKT accuracy contract, restart and warm-start behavior,
// certificate detection, and the three-way method policy of
// lp/path_chooser.hpp (docs/METHODS.md).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "lp/model.hpp"
#include "lp/path_chooser.hpp"
#include "lp/pdhg.hpp"
#include "lp/simplex.hpp"
#include "lp/standard_form.hpp"
#include "support/rng.hpp"

namespace gpumip::lp {
namespace {

using linalg::Vector;

LpResult solve_pdhg(const LpModel& model, PdhgOptions opts = {}) {
  const StandardForm form = build_standard_form(model);
  PdhgSolver solver(form, opts);
  return solver.solve_default();
}

/// Objective agreement within the PDHG accuracy contract: the normalized
/// KKT score is below tol, so the objective error is O(tol · scale).
void expect_objective_near(const LpResult& pdhg, double reference, double tol) {
  ASSERT_EQ(pdhg.status, LpStatus::Optimal);
  EXPECT_NEAR(pdhg.objective, reference, tol * (1.0 + std::fabs(reference)));
}

// ---------- corpus agreement with the simplex ----------

TEST(Pdhg, TwoVariableMaximization) {
  LpModel m;
  m.set_sense(Sense::Maximize);
  const int x = m.add_col(3.0), y = m.add_col(5.0);
  m.add_row_le({{x, 1.0}}, 4.0);
  m.add_row_le({{y, 2.0}}, 12.0);
  m.add_row_le({{x, 3.0}, {y, 2.0}}, 18.0);
  const StandardForm form = build_standard_form(m);
  PdhgSolver solver(form);
  LpResult r = solver.solve_default();
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(form.user_objective(r.objective), 36.0, 1e-4);
  EXPECT_NEAR(r.x[0], 2.0, 1e-3);
  EXPECT_NEAR(r.x[1], 6.0, 1e-3);
  // The accuracy contract: feasibility to tol-scale, no basis.
  EXPECT_LT(equality_residual(form, r.x), 1e-4);
  EXPECT_TRUE(within_bounds(form, r.x, 1e-9));  // projection is exact
  EXPECT_TRUE(r.basis.empty());
}

TEST(Pdhg, MinimizationWithGeRows) {
  LpModel m;
  const int x = m.add_col(2.0), y = m.add_col(3.0);
  m.add_row_ge({{x, 1.0}, {y, 1.0}}, 4.0);
  m.add_row_ge({{x, 1.0}, {y, 3.0}}, 6.0);
  expect_objective_near(solve_pdhg(m), 9.0, 1e-4);
}

TEST(Pdhg, EqualityConstraints) {
  LpModel m;
  const int x = m.add_col(1.0, 0, 8), y = m.add_col(2.0, 0, 8), z = m.add_col(3.0, 0, 8);
  m.add_row_eq({{x, 1.0}, {y, 1.0}, {z, 1.0}}, 10.0);
  m.add_row_eq({{x, 1.0}, {y, -1.0}}, 2.0);
  expect_objective_near(solve_pdhg(m), 14.0, 1e-4);
}

TEST(Pdhg, RangedRowAndNegativeBounds) {
  LpModel m;
  const int x = m.add_col(-1.0, 0, 4), y = m.add_col(0.0, 0, 4);
  m.add_row_range({{x, 1.0}, {y, 1.0}}, 2.0, 5.0);
  LpResult r = solve_pdhg(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.x[0], 4.0, 1e-3);

  LpModel m2;
  const int a = m2.add_col(1.0, -5, 5), b = m2.add_col(1.0, -3, 3);
  m2.add_row_ge({{a, 1.0}, {b, 1.0}}, -6.0);
  expect_objective_near(solve_pdhg(m2), -6.0, 1e-4);
}

TEST(Pdhg, FixedVariablesRespected) {
  LpModel m;
  const int x = m.add_col(-1.0, 3, 3);  // fixed at 3
  const int y = m.add_col(-1.0, 0, 10);
  m.add_row_le({{x, 1.0}, {y, 1.0}}, 7.0);
  LpResult r = solve_pdhg(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_DOUBLE_EQ(r.x[0], 3.0);  // projection keeps fixed vars exact
  EXPECT_NEAR(r.x[1], 4.0, 1e-3);
}

TEST(Pdhg, FreeVariables) {
  LpModel m;
  const int x = m.add_col(0.0, -kInf, kInf), y = m.add_col(1.0, -kInf, kInf);
  m.add_row_ge({{y, 1.0}, {x, -1.0}}, -2.0);
  m.add_row_ge({{y, 1.0}, {x, 1.0}}, 0.0);
  expect_objective_near(solve_pdhg(m), -1.0, 1e-4);
}

TEST(Pdhg, BoundsOnlyProblem) {
  LpModel m;
  m.add_col(2.0, -1, 5);
  m.add_col(-3.0, 0, 7);
  expect_objective_near(solve_pdhg(m), 2.0 * -1 + -3.0 * 7, 1e-6);
}

// Property sweep: PDHG objective matches the simplex on random LPs — the
// same generator family the simplex/IPM agreement sweep uses.
class PdhgAgreement : public ::testing::TestWithParam<int> {};

TEST_P(PdhgAgreement, MatchesSimplexObjective) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  LpModel m;
  const int n = 8 + GetParam() % 12;
  const int rows = 5 + GetParam() % 8;
  for (int j = 0; j < n; ++j) m.add_col(rng.uniform(-2.0, 1.0), 0.0, kInf);
  for (int i = 0; i < rows; ++i) {
    std::vector<Term> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.flip(0.5)) terms.push_back({j, rng.uniform(0.1, 1.0)});
    }
    terms.push_back(
        {static_cast<int>(rng.index(static_cast<std::size_t>(n))), rng.uniform(0.5, 1.0)});
    m.add_row_le(terms, rng.uniform(2.0, 10.0));
  }
  {
    std::vector<Term> all;
    for (int j = 0; j < n; ++j) all.push_back({j, 1.0});
    m.add_row_le(all, static_cast<double>(2 * n));
  }
  const StandardForm form = build_standard_form(m);
  LpResult sr = SimplexSolver(form).solve_default();
  ASSERT_EQ(sr.status, LpStatus::Optimal);
  PdhgOptions opts;
  opts.tol = 1e-7;
  LpResult pr = PdhgSolver(form, opts).solve_default();
  ASSERT_EQ(pr.status, LpStatus::Optimal) << "param " << GetParam();
  EXPECT_NEAR(pr.objective, sr.objective, 1e-4 * (1.0 + std::fabs(sr.objective)))
      << "param " << GetParam();
  EXPECT_LT(equality_residual(form, pr.x), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PdhgAgreement, ::testing::Range(0, 12));

// ---------- restarts ----------

TEST(Pdhg, RestartsFireAndAreCounted) {
  // A problem hard enough to need multiple restart cycles.
  Rng rng(1717);
  LpModel m;
  const int n = 40, rows = 25;
  for (int j = 0; j < n; ++j) m.add_col(rng.uniform(-1.0, 1.0), 0.0, 10.0);
  for (int i = 0; i < rows; ++i) {
    std::vector<Term> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.flip(0.3)) terms.push_back({j, rng.uniform(0.1, 2.0)});
    }
    if (terms.empty()) terms.push_back({i % n, 1.0});
    m.add_row_le(terms, rng.uniform(5.0, 20.0));
  }
  LpResult r = solve_pdhg(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_GT(r.ops.restarts, 0);
  EXPECT_GT(r.ops.spmv, 2 * r.ops.iterations);  // 2 per iteration + KKT checks
  EXPECT_EQ(r.ops.iterations, r.iterations);
}

TEST(Pdhg, TighterRestartFactorStillConverges) {
  LpModel m;
  m.set_sense(Sense::Maximize);
  const int x = m.add_col(3.0), y = m.add_col(5.0);
  m.add_row_le({{x, 1.0}}, 4.0);
  m.add_row_le({{y, 2.0}}, 12.0);
  m.add_row_le({{x, 3.0}, {y, 2.0}}, 18.0);
  PdhgOptions aggressive;
  aggressive.restart_factor = 0.9;  // restart almost every time progress shows
  aggressive.restart_max_interval = 200;
  expect_objective_near(solve_pdhg(m, aggressive), -36.0, 1e-4);
}

// ---------- warm start ----------

TEST(Pdhg, WarmStartFromOptimumIsCheap) {
  Rng rng(2121);
  LpModel m;
  const int n = 24, rows = 16;
  for (int j = 0; j < n; ++j) m.add_col(rng.uniform(-1.0, 1.0), 0.0, 10.0);
  for (int i = 0; i < rows; ++i) {
    std::vector<Term> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.flip(0.4)) terms.push_back({j, rng.uniform(0.1, 1.0)});
    }
    if (terms.empty()) terms.push_back({i % n, 1.0});
    m.add_row_le(terms, rng.uniform(5.0, 15.0));
  }
  const StandardForm form = build_standard_form(m);
  PdhgSolver solver(form);
  LpResult cold = solver.solve_default();
  ASSERT_EQ(cold.status, LpStatus::Optimal);

  PdhgWarmStart warm{cold.x, cold.duals};
  LpResult rewarm = solver.solve(form.lb, form.ub, &warm);
  ASSERT_EQ(rewarm.status, LpStatus::Optimal);
  EXPECT_NEAR(rewarm.objective, cold.objective, 1e-5 * (1.0 + std::fabs(cold.objective)));
  EXPECT_LT(rewarm.iterations, std::max<long>(cold.iterations / 4, 2));
}

TEST(Pdhg, WarmStartAfterBoundTighteningBeatsColdStart) {
  // The branch-and-bound pattern: tighten one variable bound, restart from
  // the parent's iterates (projected into the child box).
  Rng rng(2323);
  LpModel m;
  const int n = 24, rows = 16;
  for (int j = 0; j < n; ++j) m.add_col(rng.uniform(-1.0, 1.0), 0.0, 10.0);
  for (int i = 0; i < rows; ++i) {
    std::vector<Term> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.flip(0.4)) terms.push_back({j, rng.uniform(0.1, 1.0)});
    }
    if (terms.empty()) terms.push_back({i % n, 1.0});
    m.add_row_le(terms, rng.uniform(5.0, 15.0));
  }
  const StandardForm form = build_standard_form(m);
  PdhgSolver solver(form);
  LpResult root = solver.solve_default();
  ASSERT_EQ(root.status, LpStatus::Optimal);

  Vector lb = form.lb, ub = form.ub;
  ub[0] = std::max(0.0, std::floor(root.x[0] - 0.5));  // branching-like cut
  PdhgWarmStart warm{root.x, root.duals};
  LpResult warm_child = solver.solve(lb, ub, &warm);
  LpResult cold_child = solver.solve(lb, ub, nullptr);
  ASSERT_EQ(warm_child.status, LpStatus::Optimal);
  ASSERT_EQ(cold_child.status, LpStatus::Optimal);
  EXPECT_NEAR(warm_child.objective, cold_child.objective,
              1e-4 * (1.0 + std::fabs(cold_child.objective)));
  EXPECT_LT(warm_child.iterations, cold_child.iterations);
}

// ---------- infeasible / unbounded ----------

TEST(Pdhg, InfeasibleDetected) {
  LpModel m;
  const int x = m.add_col(1.0, 0, 10);
  m.add_row_ge({{x, 1.0}}, 5.0);
  m.add_row_le({{x, 1.0}}, 3.0);
  EXPECT_EQ(solve_pdhg(m).status, LpStatus::Infeasible);
}

TEST(Pdhg, InfeasibleEqualitySystem) {
  LpModel m;
  const int x = m.add_col(0.0), y = m.add_col(0.0);
  m.add_row_eq({{x, 1.0}, {y, 1.0}}, 2.0);
  m.add_row_eq({{x, 1.0}, {y, 1.0}}, 3.0);
  EXPECT_EQ(solve_pdhg(m).status, LpStatus::Infeasible);
}

TEST(Pdhg, UnboundedDetected) {
  LpModel m;
  const int x = m.add_col(-1.0);  // min -x, x >= 0 unconstrained above
  const int y = m.add_col(1.0);
  m.add_row_ge({{x, 1.0}, {y, 1.0}}, 1.0);
  EXPECT_EQ(solve_pdhg(m).status, LpStatus::Unbounded);
}

TEST(Pdhg, IterationLimitReported) {
  Rng rng(31);
  LpModel m;
  const int n = 30, rows = 20;
  for (int j = 0; j < n; ++j) m.add_col(rng.uniform(-1.0, 1.0), 0.0, 10.0);
  for (int i = 0; i < rows; ++i) {
    std::vector<Term> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.flip(0.4)) terms.push_back({j, rng.uniform(0.1, 1.0)});
    }
    if (terms.empty()) terms.push_back({i % n, 1.0});
    m.add_row_le(terms, rng.uniform(5.0, 15.0));
  }
  PdhgOptions tiny;
  tiny.max_iterations = 8;  // far too few
  tiny.tol = 1e-12;
  LpResult r = solve_pdhg(m, tiny);
  EXPECT_EQ(r.status, LpStatus::IterationLimit);
  EXPECT_EQ(r.iterations, 8);
}

// ---------- three-way method policy ----------

sparse::Csr random_csr(int m, int n, double density, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<sparse::Triplet> t;
  for (int i = 0; i < m; ++i) {
    t.push_back({i, static_cast<int>(rng.index(static_cast<std::size_t>(n))), 1.0});
    for (int j = 0; j < n; ++j) {
      if (rng.flip(density)) t.push_back({i, j, rng.uniform(0.1, 1.0)});
    }
  }
  return sparse::csr_from_triplets(m, n, t);
}

TEST(MethodChooser, WarmBasisAlwaysSimplex) {
  const sparse::Csr big_sparse = random_csr(512, 768, 0.01, 7);
  MethodContext ctx;
  ctx.warm_basis = true;
  ctx.batch_size = 64;  // even under batching, a basis wins
  EXPECT_EQ(choose_method(big_sparse, ctx), LpMethod::Simplex);
}

TEST(MethodChooser, ColdSmallDenseIsSimplex) {
  const sparse::Csr small_dense = random_csr(32, 48, 0.5, 8);
  MethodContext ctx;
  EXPECT_EQ(choose_method(small_dense, ctx), LpMethod::Simplex);
}

TEST(MethodChooser, ColdLargeDenseIsInteriorPoint) {
  const sparse::Csr large_dense = random_csr(256, 384, 0.4, 9);
  MethodContext ctx;
  EXPECT_EQ(choose_method(large_dense, ctx), LpMethod::InteriorPoint);
}

TEST(MethodChooser, ColdHugeSparseIsPdhg) {
  // Sequential cold PDHG only pays at the scale where IPM's dense
  // factorization stops being an option (pdhg_min_rows).
  const sparse::Csr huge_sparse = random_csr(4096, 6144, 0.002, 10);
  MethodContext ctx;
  EXPECT_EQ(choose_method(huge_sparse, ctx), LpMethod::Pdhg);
}

TEST(MethodChooser, BatchOccupancyLowersPdhgBar) {
  // Mid-sized sparse instance: sequentially it is not worth PDHG's launch
  // count, but inside a big lockstep batch it is.
  const sparse::Csr mid_sparse = random_csr(96, 144, 0.02, 11);
  MethodContext sequential;
  EXPECT_NE(choose_method(mid_sparse, sequential), LpMethod::Pdhg);
  MethodContext batched;
  batched.batch_size = 64;
  EXPECT_EQ(choose_method(mid_sparse, batched), LpMethod::Pdhg);
}

TEST(MethodChooser, WarmIteratesLowerPdhgSizeBar) {
  const sparse::Csr mid_sparse = random_csr(96, 144, 0.02, 12);
  MethodContext cold;
  EXPECT_NE(choose_method(mid_sparse, cold), LpMethod::Pdhg);
  MethodContext warm;
  warm.warm_iterates = true;
  EXPECT_EQ(choose_method(mid_sparse, warm), LpMethod::Pdhg);
}

TEST(MethodChooser, TightToleranceDisqualifiesPdhg) {
  const sparse::Csr large_sparse = random_csr(512, 768, 0.005, 13);
  MethodContext ctx;
  ctx.batch_size = 64;  // a context that would otherwise pick PDHG
  ASSERT_EQ(choose_method(large_sparse, ctx), LpMethod::Pdhg);
  ctx.tol = 1e-10;  // tighter than first-order methods can certify
  EXPECT_NE(choose_method(large_sparse, ctx), LpMethod::Pdhg);
}

TEST(MethodChooser, EnvOverrideForcesMethod) {
  const sparse::Csr small_dense = random_csr(16, 24, 0.5, 14);
  MethodContext ctx;
  ASSERT_EQ(choose_method(small_dense, ctx), LpMethod::Simplex);
  ::setenv("GPUMIP_LP_METHOD", "pdhg", 1);
  EXPECT_EQ(choose_method(small_dense, ctx), LpMethod::Pdhg);
  EXPECT_TRUE(lp_method_override().has_value());
  ::setenv("GPUMIP_LP_METHOD", "interior_point", 1);
  EXPECT_EQ(choose_method(small_dense, ctx), LpMethod::InteriorPoint);
  ::setenv("GPUMIP_LP_METHOD", "bogus", 1);
  EXPECT_FALSE(lp_method_override().has_value());
  EXPECT_EQ(choose_method(small_dense, ctx), LpMethod::Simplex);
  ::unsetenv("GPUMIP_LP_METHOD");
}

TEST(MethodChooser, NamesAreStable) {
  // docs/METHODS.md and GPUMIP_LP_METHOD both key on these exact strings
  // (check.sh's methods-doc gate greps them out of this switch).
  EXPECT_STREQ(lp_method_name(LpMethod::Simplex), "simplex");
  EXPECT_STREQ(lp_method_name(LpMethod::InteriorPoint), "interior_point");
  EXPECT_STREQ(lp_method_name(LpMethod::Pdhg), "pdhg");
}

}  // namespace
}  // namespace gpumip::lp
