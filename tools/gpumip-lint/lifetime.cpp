#include "lifetime.hpp"

#include <algorithm>
#include <map>
#include <tuple>

#include "dataflow.hpp"

namespace gpumip::lint {
namespace {

constexpr std::size_t npos = std::string::npos;

/// Methods that leave a moved-from / stale variable freshly initialized.
const std::set<std::string>& reinit_methods() {
  static const std::set<std::string> k = {"clear", "assign", "resize", "reset", "swap"};
  return k;
}

/// Methods whose result aliases the receiver's storage (R11 derivation).
const std::set<std::string>& deriving_methods() {
  static const std::set<std::string> k = {"allot", "span",  "as",  "subspan",
                                          "first", "last", "data"};
  return k;
}

/// Methods that invalidate every view previously derived from the
/// receiver (DeviceArena contract: reset/release/reserve-coalescing).
const std::set<std::string>& invalidating_methods() {
  static const std::set<std::string> k = {"reset", "release", "reserve"};
  return k;
}

/// How one whole-word occurrence of a tracked variable participates in
/// its statement.
enum class Occ {
  kSkip,  ///< not this variable: member of another object, qualified name
  kUse,   ///< reads the (possibly stale) value
  kKill,  ///< redeclaration, assignment target, or reinitializing call
};

Occ classify(const std::string& s, std::size_t at, std::size_t len, std::size_t stmt_end) {
  std::size_t q = at;
  while (q > 0 && is_space(s[q - 1])) --q;
  if (q > 0) {
    const char prev = s[q - 1];
    if (prev == '.') return Occ::kSkip;  // other.var
    if (prev == '>' && q >= 2 && s[q - 2] == '-') return Occ::kSkip;  // p->var
    if (prev == ':' && q >= 2 && s[q - 2] == ':') return Occ::kSkip;  // T::var
    // Declarations kill: `Type var`, `vector<T> var`, `Type& var`.
    if (is_ident_char(prev) || prev == '>') return Occ::kKill;
    if (prev == '&' || prev == '*') {
      std::size_t r = q - 1;
      while (r > 0 && (s[r - 1] == '&' || s[r - 1] == '*' || is_space(s[r - 1]))) --r;
      if (r > 0 && (is_ident_char(s[r - 1]) || s[r - 1] == '>')) return Occ::kKill;
    }
  }
  std::size_t p = skip_ws(s, at + len);
  if (p < stmt_end && p < s.size()) {
    if (s[p] == '=' && (p + 1 >= s.size() || s[p + 1] != '=')) return Occ::kKill;
    const bool dot = s[p] == '.';
    const bool arrow = s[p] == '-' && p + 1 < s.size() && s[p + 1] == '>';
    if (dot || arrow) {
      std::size_t m = p + (dot ? 1 : 2);
      std::string method;
      while (m < s.size() && is_ident_char(s[m])) method += s[m++];
      if (reinit_methods().count(method) != 0) return Occ::kKill;
    }
  }
  return Occ::kUse;
}

bool in_carved(const Cfg& cfg, std::size_t pos) {
  for (const auto& [b, e] : cfg.carved) {
    if (pos >= b && pos < e) return true;
  }
  return false;
}

/// Matching ')' for the '(' at `pos`, bounded by `end`.
std::size_t match_paren(const std::string& s, std::size_t pos, std::size_t end) {
  int depth = 0;
  for (std::size_t i = pos; i < end; ++i) {
    if (s[i] == '(') ++depth;
    if (s[i] == ')' && --depth == 0) return i;
  }
  return end;
}

/// Runs all three rules over one graph: a combined transfer function (the
/// rules use disjoint key prefixes: "m:" moved, "a:" arena-stale, "$span"
/// open-depth set), one fixpoint, then a reporting replay per node. All
/// occurrence queries go through the Scanned token index, so each is a
/// binary search over that word's sites rather than a text scan.
class LifetimeChecker {
 public:
  LifetimeChecker(const Scanned& f, const Cfg& cfg, const std::set<std::string>& resetters)
      : f_(f), s_(f.clean), cfg_(cfg), resetters_(resetters) {
    find_moves();
    find_sources();
    derive_closure();
  }

  bool has_facts() const {
    return !moves_.empty() || !root_of_.empty() || has_span_sites();
  }

  void run(std::vector<Finding>& findings) {
    AbstractState entry;
    entry["$span"] = 1u;  // depth 0 is the only possible depth on entry
    const Transfer quiet = [this](const CfgStmt& st, AbstractState& state) {
      transfer(st, state, nullptr);
    };
    const std::vector<AbstractState> in = fixpoint(cfg_, entry, quiet);
    for (std::size_t n = 0; n < cfg_.nodes.size(); ++n) {
      AbstractState state = in[n];
      for (const CfgStmt& st : cfg_.nodes[n].stmts) transfer(st, state, &findings);
    }
  }

 private:
  const Scanned& f_;
  const std::string& s_;
  const Cfg& cfg_;
  const std::set<std::string>& resetters_;
  std::map<std::string, std::set<std::size_t>> moves_;   // var -> std::move arg offsets
  std::set<std::string> sources_;                        // arena/buffer receivers
  std::map<std::string, std::string> root_of_;           // derived var -> source
  std::map<std::string, std::vector<std::string>> family_;  // source -> derived vars
  std::set<std::tuple<int, std::string, std::string>> reported_;  // line, rule, key

  /// Calls fn(offset) for each indexed occurrence of `word` in [b, e),
  /// outside carved (lambda) ranges.
  template <typename Fn>
  void each_word(const std::string& word, std::size_t b, std::size_t e, Fn&& fn) const {
    const std::vector<std::size_t>& pos = word_positions(f_, word);
    for (auto it = std::lower_bound(pos.begin(), pos.end(), b);
         it != pos.end() && *it < e; ++it) {
      if (!in_carved(cfg_, *it)) fn(*it);
    }
  }

  // -- pre-passes over the graph's extent ------------------------------

  void find_moves() {
    each_word("move", cfg_.body_begin, cfg_.body_end, [&](std::size_t at) {
      if (at < 5 || s_.compare(at - 5, 5, "std::") != 0) return;
      std::size_t p = skip_ws(s_, at + 4);
      if (p >= s_.size() || s_[p] != '(') return;
      p = skip_ws(s_, p + 1);
      const std::size_t b = p;
      while (p < s_.size() && is_ident_char(s_[p])) ++p;
      if (p == b) return;
      // Only a bare local/member name: std::move(*it) / move(a.b) /
      // move(v[i]) denote sub-objects the tracker cannot name.
      const std::size_t q = skip_ws(s_, p);
      if (q >= s_.size() || s_[q] != ')') return;
      moves_[s_.substr(b, p - b)].insert(b);
    });
  }

  void find_sources() {
    for (const char* method : {"allot", "span"}) {
      each_word(method, cfg_.body_begin, cfg_.body_end, [&](std::size_t at) {
        // Must be a member call on a simple identifier receiver.
        std::size_t recv_end = at;
        if (recv_end >= 1 && s_[recv_end - 1] == '.') {
          recv_end -= 1;
        } else if (recv_end >= 2 && s_.compare(recv_end - 2, 2, "->") == 0) {
          recv_end -= 2;
        } else {
          return;
        }
        const std::size_t after = skip_ws(s_, at + std::string(method).size());
        if (after >= s_.size() || (s_[after] != '(' && s_[after] != '<')) return;
        std::size_t b = recv_end;
        while (b > 0 && is_ident_char(s_[b - 1])) --b;
        if (b == recv_end) return;
        if (b > 0 && (s_[b - 1] == '.' || s_[b - 1] == '>' || s_[b - 1] == ':')) return;
        sources_.insert(s_.substr(b, recv_end - b));
      });
    }
  }

  /// `blk = arena.allot(...)`, `auto xs = buf.span()`, `p = blk.as<T>()`:
  /// the assignment's target becomes a tracked view of the source.
  /// Iterated to closure so chains (arena -> block -> pointer) resolve.
  void derive_closure() {
    for (int round = 0; round < 4; ++round) {
      bool changed = false;
      std::vector<std::string> known(sources_.begin(), sources_.end());
      for (const auto& [d, r] : root_of_) known.push_back(d);
      for (const std::string& var : known) {
        each_word(var, cfg_.body_begin, cfg_.body_end, [&](std::size_t at) {
          std::size_t p = at + var.size();
          std::size_t m = 0;
          if (p < s_.size() && s_[p] == '.') {
            m = p + 1;
          } else if (p + 1 < s_.size() && s_.compare(p, 2, "->") == 0) {
            m = p + 2;
          } else {
            return;
          }
          std::string method;
          while (m < s_.size() && is_ident_char(s_[m])) method += s_[m++];
          if (deriving_methods().count(method) == 0) return;
          const std::size_t after = skip_ws(s_, m);
          if (after >= s_.size() || (s_[after] != '(' && s_[after] != '<')) return;
          // LHS of the enclosing assignment, if any.
          const std::size_t stmt_b = s_.find_last_of(";{}", at);
          const std::size_t begin = stmt_b == npos ? 0 : stmt_b + 1;
          std::size_t eq = npos;
          for (std::size_t i = begin; i < at; ++i) {
            if (s_[i] != '=') continue;
            if (i + 1 < at && s_[i + 1] == '=') {
              ++i;
              continue;
            }
            if (i > 0 && std::string("=<>!+-*/%&|^").find(s_[i - 1]) != npos) continue;
            eq = i;
          }
          if (eq == npos) return;
          std::size_t le = eq;
          while (le > begin && is_space(s_[le - 1])) --le;
          std::size_t lb = le;
          while (lb > begin && is_ident_char(s_[lb - 1])) --lb;
          if (lb == le) return;
          if (lb > 0 && (s_[lb - 1] == '.' || s_[lb - 1] == ':')) return;
          const std::string lhs = s_.substr(lb, le - lb);
          const std::string root =
              sources_.count(var) != 0 ? var : root_of_.at(var);
          if (lhs == root || root_of_.count(lhs) != 0) return;
          root_of_[lhs] = root;
          changed = true;
        });
      }
      if (!changed) break;
    }
    for (const auto& [d, r] : root_of_) family_[r].push_back(d);
  }

  bool has_span_sites() const {
    for (const char* w : {"GPUMIP_TRACE_BEGIN", "GPUMIP_TRACE_END"}) {
      const std::vector<std::size_t>& pos = word_positions(f_, w);
      for (auto it = std::lower_bound(pos.begin(), pos.end(), cfg_.body_begin);
           it != pos.end() && *it < cfg_.body_end; ++it) {
        if (!in_carved(cfg_, *it)) return true;
      }
    }
    return false;
  }

  // -- transfer (shared between fixpoint and reporting replay) ---------

  void report(std::vector<Finding>* out, int line, const std::string& rule,
              const std::string& key, const std::string& tag, const std::string& message) {
    if (out == nullptr) return;
    if (has_annotation(f_, line, tag)) return;
    if (!reported_.insert({line, rule, key}).second) return;
    out->push_back({f_.src->path, line, rule, message});
  }

  void transfer(const CfgStmt& st, AbstractState& state, std::vector<Finding>* out) {
    // R10: tracked moved-from locals.
    for (const auto& [var, move_sites] : moves_) {
      bool used = false, killed = false, moved = false;
      std::size_t use_at = 0;
      each_word(var, st.begin, st.end, [&](std::size_t at) {
        if (move_sites.count(at) != 0) {
          moved = true;
          return;
        }
        const Occ o = classify(s_, at, var.size(), st.end);
        if (o == Occ::kKill) {
          killed = true;
        } else if (o == Occ::kUse && !used) {
          used = true;
          use_at = at;
        }
      });
      const std::string key = "m:" + var;
      auto it = state.find(key);
      if (used && it != state.end() && (it->second & 1u) != 0) {
        const int line = line_of(f_, use_at);
        report(out, line, "R10", key, "moved-ok",
               "'" + var + "' may already have been consumed by std::move on some path "
               "to this use; reassign/clear it on every moving path first, or annotate "
               "'// gpumip-lint: moved-ok(reason)'");
      }
      if (killed) state[key] = 0;
      if (moved) state[key] |= 1u;
    }

    // R11: views of reset arenas/buffers.
    for (const auto& [var, root] : root_of_) {
      bool used = false, killed = false;
      std::size_t use_at = 0;
      each_word(var, st.begin, st.end, [&](std::size_t at) {
        const Occ o = classify(s_, at, var.size(), st.end);
        if (o == Occ::kKill) {
          killed = true;
        } else if (o == Occ::kUse && !used) {
          used = true;
          use_at = at;
        }
      });
      const std::string key = "a:" + var;
      auto it = state.find(key);
      if (used && it != state.end() && (it->second & 1u) != 0) {
        const int line = line_of(f_, use_at);
        report(out, line, "R11", key, "arena-ok",
               "'" + var + "' derives from '" + root +
                   "', which may have been reset/released on some path to this use — "
                   "the block/span no longer owns its storage (gpu/arena.hpp contract); "
                   "re-derive it after the reset or annotate "
                   "'// gpumip-lint: arena-ok(reason)'");
      }
      if (killed) state[key] = 0;
    }
    // Direct invalidation: `source.reset()` / `.release()` / `.reserve(`.
    for (const std::string& src : sources_) {
      if (family_.count(src) == 0) continue;
      each_word(src, st.begin, st.end, [&](std::size_t at) {
        std::size_t p = at + src.size();
        std::size_t m = 0;
        if (p < s_.size() && s_[p] == '.') {
          m = p + 1;
        } else if (p + 1 < s_.size() && s_.compare(p, 2, "->") == 0) {
          m = p + 2;
        } else {
          return;
        }
        std::string method;
        while (m < s_.size() && is_ident_char(s_[m])) method += s_[m++];
        if (invalidating_methods().count(method) == 0) return;
        if (skip_ws(s_, m) >= s_.size() || s_[skip_ws(s_, m)] != '(') return;
        for (const std::string& d : family_.at(src)) state["a:" + d] |= 1u;
      });
    }
    // Interprocedural invalidation: a call-graph-proven resetter taking a
    // tracked source as an argument.
    if (!sources_.empty() && !family_.empty()) {
      for (const std::string& fn : resetters_) {
        each_word(fn, st.begin, st.end, [&](std::size_t at) {
          const std::size_t open = skip_ws(s_, at + fn.size());
          if (open >= st.end || s_[open] != '(') return;
          const std::size_t close = match_paren(s_, open, st.end);
          for (const auto& [src, fam] : family_) {
            bool passed = false;
            each_word(src, open + 1, close, [&](std::size_t) { passed = true; });
            if (!passed) continue;
            for (const std::string& d : fam) state["a:" + d] |= 1u;
          }
        });
      }
    }

    // R12: raw trace-span depth tracking.
    std::uint32_t mask = 0;
    {
      auto it = state.find("$span");
      if (it != state.end()) mask = it->second;
    }
    std::vector<std::pair<std::size_t, int>> events;
    for (const char* w : {"GPUMIP_TRACE_BEGIN", "GPUMIP_TRACE_END"}) {
      const int delta = std::string(w) == "GPUMIP_TRACE_BEGIN" ? +1 : -1;
      each_word(w, st.begin, st.end, [&](std::size_t at) { events.push_back({at, delta}); });
    }
    std::sort(events.begin(), events.end());
    for (const auto& [pos, delta] : events) {
      if (delta > 0) {
        mask = ((mask << 1) & 0xFFFFu) | (mask & 0x8000u);  // saturate deep nests
      } else {
        if ((mask & 1u) != 0) {
          const int line = line_of(f_, pos);
          report(out, line, "R12", "$end", "span-ok",
                 std::string("GPUMIP_TRACE_END with no GPUMIP_TRACE_BEGIN open on ") +
                     (mask == 1u ? "any" : "some") +
                     " path (e.g. switch fallthrough or a branch that skipped the "
                     "begin); balance the span on every path, or use "
                     "trace::SpanGuard / GPUMIP_TRACE_SCOPE, or annotate "
                     "'// gpumip-lint: span-ok(reason)'");
        }
        mask = (mask >> 1) | (mask & 1u);
      }
    }
    if ((st.kind == StmtKind::kReturn || st.kind == StmtKind::kThrow ||
         st.kind == StmtKind::kNoreturnCall) &&
        (mask & ~1u) != 0) {
      const bool synthetic = st.begin == st.end;
      const int line = line_of(f_, synthetic ? cfg_.body_end : st.begin);
      const char* how = st.kind == StmtKind::kThrow
                            ? "this throw"
                            : st.kind == StmtKind::kNoreturnCall
                                  ? "this noreturn call"
                                  : synthetic ? "falling off the end of the function"
                                              : "this return";
      report(out, line, "R12", "$exit", "span-ok",
             std::string("a GPUMIP_TRACE_BEGIN span may still be open when leaving via ") +
                 how + "; close it on every exit path or hold it in a "
                 "trace::SpanGuard / GPUMIP_TRACE_SCOPE, or annotate "
                 "'// gpumip-lint: span-ok(reason)'");
    }
    state["$span"] = mask;
  }
};

}  // namespace

std::set<std::string> collect_resetters(const std::vector<Scanned>& files,
                                        const std::vector<FunctionDecl>& functions,
                                        const CallGraph& graph) {
  const std::size_t n = functions.size();
  std::vector<char> resets(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const FunctionDecl& fd = functions[i];
    const Scanned& f = files[static_cast<std::size_t>(fd.file_index)];
    const std::string body = f.clean.substr(fd.body_begin, fd.body_end - fd.body_begin);
    for (const char* pat : {".reset()", "->reset()", ".release()", "->release()"}) {
      if (body.find(pat) != npos) {
        resets[i] = 1;
        break;
      }
    }
  }
  // A caller of a resetter is a resetter: propagate to fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < n && i < graph.edges.size(); ++i) {
      if (resets[i] != 0) continue;
      for (int j : graph.edges[i]) {
        if (resets[static_cast<std::size_t>(j)] != 0) {
          resets[i] = 1;
          changed = true;
          break;
        }
      }
    }
  }
  std::set<std::string> names;
  for (std::size_t i = 0; i < n; ++i) {
    if (resets[i] != 0) names.insert(functions[i].name);
  }
  return names;
}

void check_lifetimes(const std::vector<Scanned>& files,
                     const std::vector<FunctionDecl>& functions, const CallGraph& graph,
                     const std::set<std::string>& noreturn_names,
                     std::vector<Finding>& findings) {
  const std::set<std::string> resetters = collect_resetters(files, functions, graph);
  for (const FunctionDecl& fd : functions) {
    const Scanned& f = files[static_cast<std::size_t>(fd.file_index)];
    const std::vector<Cfg> graphs =
        build_cfgs(f.clean, fd.body_begin, fd.body_end, noreturn_names);
    for (const Cfg& cfg : graphs) {
      LifetimeChecker checker(f, cfg, resetters);
      if (!checker.has_facts()) continue;  // nothing tracked: skip the fixpoint
      checker.run(findings);
    }
  }
}

}  // namespace gpumip::lint
