// The paper's four parallel execution strategies (section 3), realized as
// cost-faithful replays of a branch-and-bound run over the simulated
// device(s):
//
//  S1 GpuOnly        — tree AND LP solves resident on the device; fails
//                      honestly (OOM) when the tree outgrows device memory;
//                      tree manipulation pays divergent-kernel prices.
//  S2 CpuOrchestrated— tree in host memory, device only accelerates each
//                      node's LP; bound/basis deltas cross the bus per
//                      node; host tree handling serializes with the device.
//  S3 Hybrid         — as S2 but host work (tree, cuts, heuristics)
//                      overlaps device work (many-core CPU + GPU).
//  S4 BigMip         — the LP matrix is column-partitioned over several
//                      devices; every simplex iteration is a distributed
//                      operation (pricing in parallel, basis ops on device
//                      0, broadcasts in between). The only strategy that
//                      works when one LP matrix exceeds a single device.
//
// All four solve the SAME search (numerics on the host), so they reach the
// same optimum; what differs — and what experiment E1 measures — is the
// simulated time, transfer volume, and memory footprint.
#pragma once

#include <string>

#include "gpu/device.hpp"
#include "mip/solver.hpp"
#include "parallel/simmpi.hpp"

namespace gpumip::parallel {

enum class Strategy { S1_GpuOnly, S2_CpuOrchestrated, S3_Hybrid, S4_BigMip };

const char* strategy_name(Strategy strategy) noexcept;

struct StrategyConfig {
  gpu::CostModelConfig device;  ///< per-device architecture
  int devices = 1;              ///< S4 shards across this many devices
  NetworkConfig interconnect;   ///< device-to-device link (S4)
  mip::MipOptions mip;
  lp::CpuCostModel cpu;
};

struct StrategyReport {
  Strategy strategy = Strategy::S2_CpuOrchestrated;
  mip::MipResult result;
  bool completed = false;        ///< false: strategy infeasible on this hw
  std::string failure;           ///< why (e.g. device OOM for the tree)
  double sim_seconds = 0.0;      ///< simulated end-to-end time
  double device_seconds = 0.0;   ///< device busy time (max over devices)
  double host_seconds = 0.0;     ///< host compute time
  double network_seconds = 0.0;  ///< device-to-device communication (S4)
  std::uint64_t bytes_h2d = 0;
  std::uint64_t bytes_d2h = 0;
  std::uint64_t transfers = 0;
  std::uint64_t device_peak_bytes = 0;  ///< max over devices
};

/// Runs `strategy` on `model`. The search itself always completes (host
/// numerics); `completed=false` plus `failure` indicate the strategy could
/// not have executed on the configured hardware (e.g. S1 tree OOM), with
/// costs reported up to the failure point.
StrategyReport run_strategy(Strategy strategy, const mip::MipModel& model,
                            const StrategyConfig& config);

/// Bytes needed to keep one LP-relaxation matrix (dense) plus basis inverse
/// on a device — the per-problem footprint strategies S1-S3 must fit.
std::uint64_t lp_device_footprint(const lp::StandardForm& form);

}  // namespace gpumip::parallel
