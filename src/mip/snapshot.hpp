// Consistent snapshots of the branch-and-bound search (paper section 2.1).
//
// A consistent snapshot is a set of frontier nodes (given by their bound
// vectors) plus the incumbent, such that re-solving from exactly those
// nodes preserves the optimal solution. Sequentially this is just the
// active set between node evaluations; in a parallel run the supervisor
// must additionally account for in-flight and in-transit nodes (see
// parallel/supervisor.hpp). Snapshots serialize to a portable text format
// for checkpoint/restart.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace gpumip::mip {

struct SnapshotNode {
  linalg::Vector lb, ub;  ///< full standard-form bound vectors
  double bound = -1e300;  ///< known lower bound (min form)
  int depth = 0;
};

struct ConsistentSnapshot {
  double incumbent_objective = 1e300;  ///< min form; 1e300 = none
  linalg::Vector incumbent_x;          ///< structural variables
  std::vector<SnapshotNode> frontier;
  long nodes_solved_so_far = 0;

  bool has_incumbent() const noexcept { return incumbent_objective < 1e299; }

  void serialize(std::ostream& out) const;
  [[nodiscard]] static ConsistentSnapshot deserialize(std::istream& in);

  /// Round-trip convenience for tests.
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] static ConsistentSnapshot from_string(const std::string& text);
};

}  // namespace gpumip::mip
