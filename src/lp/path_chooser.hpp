// Runtime dense-vs-sparse code-path decision (paper section 5.4): the
// "super-MIP-solver" inspects the user's matrix at solve time and routes to
// the dense-GPU or sparse-hybrid linear algebra path.
#pragma once

#include "sparse/formats.hpp"

namespace gpumip::lp {

enum class CodePath {
  DenseGpu,      ///< dense kernels on the device
  SparseHybrid,  ///< sparse kernels, setup stages on the CPU
};

const char* code_path_name(CodePath path) noexcept;

struct PathChooserOptions {
  /// Below this density the sparse path wins on the device model. The
  /// default matches the measured crossover of the cost model (bench E6):
  /// the sparse kernel's efficiency/divergence penalty (~3.3x per nonzero
  /// vs the bandwidth-bound dense kernel) puts the break-even near 30%.
  double density_threshold = 0.30;
  /// Matrices smaller than this are always dense (latency dominates).
  int small_dimension = 64;
};

/// Decides the code path for a constraint matrix.
CodePath choose_path(const sparse::Csr& a, const PathChooserOptions& options = {});

}  // namespace gpumip::lp
