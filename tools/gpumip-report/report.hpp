// gpumip-report: per-solve profile assembly and regression attribution
// (scripts/check.sh gate 10; docs/TRACING.md "Report workflow").
//
// The observability layer exports three complementary documents — a
// metrics snapshot (docs/METRICS.md, gpumip.metrics.v1/v2), a sim-clock
// time series (gpumip.timeseries.v1, src/obs/sampler.hpp), and a
// trace-event timeline (gpumip.trace.v1, analyzed by gpumip-trace). This
// tool merges them into one profile that attributes where the makespan
// went in terms of the paper's claim categories:
//
//   transfer  — H2D/D2H volume and staging      (gpumip.gpu.xfer.*)
//   c3_basis  — basis maintenance / refactors   (gpumip.lp.ops.*)
//   c4_cuts   — cut separation round trips      (gpumip.mip.cuts.*)
//   c5_memory — node pool, reuse, allocation    (gpumip.gpu.alloc/free, reuse)
//   c6_method — per-node LP method choice       (gpumip.lp.method/solves/solve.*)
//   c7_batch  — batched-LP wave shape           (gpumip.lp.batch.*)
//   c8_scale  — scale-out protocol traffic      (gpumip.simmpi.*, supervisor)
//
// Given TWO runs (bench-baseline or raw metrics documents), `attribute`
// ranks the categories by how much of the metric delta they explain —
// scripts/bench.sh --compare runs it whenever the comparator finds a
// regression, so "gate 8 failed" arrives with a named culprit instead of
// a wall of counter diffs.
//
// Engine is a static library (tests/test_report.cpp drives it with
// in-memory documents); the CLI in main.cpp wraps it, mirroring
// tools/gpumip-trace.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "analyze.hpp"  // tracetool::Trace / Report for the timeline leg

namespace gpumip::reporttool {

// ---- input documents -------------------------------------------------------

/// Flattened metrics snapshot: one map per instrument kind, histogram
/// values folded to (count, sum). Accepts both gpumip.metrics.v1 and v2
/// (v2 adds the labeled-family index; the maps themselves are unchanged,
/// so v1 consumers keep working — this parser reads either).
struct MetricsSnapshot {
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, std::pair<double, double>> histograms;  ///< count, sum
  std::string schema;
  bool enabled = false;
};

bool parse_metrics(const std::string& json, MetricsSnapshot& out, std::string& error);

/// A gpumip.bench-baseline.v1 document: bench name -> snapshot
/// (scripts/bench.sh merges per-bench metrics exports into this form).
struct BenchDoc {
  std::map<std::string, MetricsSnapshot> benches;
};

bool parse_bench_doc(const std::string& json, BenchDoc& out, std::string& error);

/// Either input form for the two-run attribution: a bench-baseline
/// document or a single metrics export (wrapped as one bench named "run").
bool parse_run(const std::string& json, BenchDoc& out, std::string& error);

/// A gpumip.timeseries.v1 document (src/obs/sampler.hpp export).
struct TimeSeries {
  double period = 0.0;
  std::uint64_t dropped = 0;
  std::vector<std::string> columns;        ///< flattened "name:kind"
  std::vector<double> ts;                  ///< row timestamps
  std::vector<std::vector<double>> rows;   ///< per-row column values
};

bool parse_timeseries(const std::string& json, TimeSeries& out, std::string& error);

// ---- claim-category mapping ------------------------------------------------

/// Category id for a metric name ("transfer", "c3_basis", ..., "other"),
/// or "" for names excluded from attribution entirely: the observability
/// layer's own bookkeeping (gpumip.obs.*, including trace-ring drops and
/// sampler overhead) and host-timing noise (*.idle_seconds, checkpoint
/// hits) — the same skip list scripts/bench_compare.py applies. Labels
/// are ignored for categorization: `gpumip.lp.solves{method=pdhg}` maps
/// where `gpumip.lp.solves` does.
std::string category_of(const std::string& metric_name);

/// All category ids in report order (excludes the "" exclusion marker).
const std::vector<std::string>& category_ids();

// ---- single-run profile ----------------------------------------------------

struct CategoryTotal {
  std::string category;
  long metrics = 0;      ///< distinct counter/gauge names contributing
  double total = 0.0;    ///< sum of counter/gauge values (mixed units; a
                         ///< volume indicator, not a physical quantity)
};

/// One run's merged view: metric mass per category, plus (when present)
/// the trace's makespan / per-rank split and the time-series shape.
struct Profile {
  std::vector<CategoryTotal> categories;  ///< report order, incl. zeros
  bool has_trace = false;
  tracetool::Report trace;                ///< valid when has_trace
  bool has_timeseries = false;
  std::size_t timeseries_rows = 0;
  double timeseries_span = 0.0;           ///< last ts - first ts
};

Profile build_profile(const BenchDoc& run, const tracetool::Trace* trace,
                      const TimeSeries* series);

// ---- two-run attribution ---------------------------------------------------

struct MetricDelta {
  std::string bench;
  std::string name;
  double base = 0.0;
  double current = 0.0;
  double score = 0.0;  ///< |current-base| / max(|base|, floor)
};

struct CategoryDelta {
  std::string category;
  double score = 0.0;               ///< sum of member metric scores
  std::vector<MetricDelta> top;     ///< largest contributors, descending
};

struct Attribution {
  std::vector<CategoryDelta> ranked;  ///< descending by score; zero-score
                                      ///< categories are omitted
  long metrics_compared = 0;
};

/// Ranks which claim categories explain the metric delta between two
/// runs. Metrics on the exclusion list contribute nothing; a metric
/// missing from one side is scored against zero.
Attribution attribute(const BenchDoc& base, const BenchDoc& current);

// ---- rendering -------------------------------------------------------------

std::string format_profile(const Profile& profile);
std::string format_attribution(const Attribution& attribution);

/// Built-in known-answer fixtures: document parsing (metrics v1 + v2,
/// bench baselines, time series), category mapping, exclusion list, and
/// an embedded doubled-H2D regression whose attribution must rank the
/// transfer category first. Prints one line per expectation; returns
/// false if any fails.
bool run_self_check(std::ostream& out);

}  // namespace gpumip::reporttool
