// gpumip-report CLI — scripts/check.sh gate 10 entry point.
//
//   gpumip-report --self-check
//   gpumip-report --attribute BASE.json CURRENT.json [--expect-top CATEGORY]
//   gpumip-report --metrics RUN.json [--timeseries TS.json] [--trace TRACE.json]
//
// --self-check runs the engine's known-answer fixtures (parsing, category
// mapping, exclusion list, the embedded doubled-H2D drill).
//
// --attribute loads two runs (bench-baseline documents from scripts/bench.sh
// or raw metrics exports) and prints which claim categories explain the
// delta, ranked. With --expect-top, exits 1 unless the top-ranked category
// matches — gate 10 uses this against the committed fixture pair, and
// scripts/bench.sh --compare uses the plain form to annotate regressions.
//
// --metrics builds a single-run profile, optionally merging a time-series
// export and a trace-event timeline into the same report.
//
// Exit status: 0 clean, 1 failed self-check / unexpected top category,
// 2 usage/IO/parse error.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "report.hpp"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

int usage_error(const std::string& what) {
  std::cerr << "gpumip-report: " << what << " (see --help)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gpumip::reporttool;

  bool self_check = false;
  std::vector<std::string> attribute_paths;
  std::string expect_top;
  std::string metrics_path;
  std::string timeseries_path;
  std::string trace_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "gpumip-report: " << arg << " needs " << what << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--self-check") {
      self_check = true;
    } else if (arg == "--attribute") {
      const char* base = next("BASE.json CURRENT.json");
      if (base == nullptr) return 2;
      const char* current = next("CURRENT.json");
      if (current == nullptr) return 2;
      attribute_paths = {base, current};
    } else if (arg == "--expect-top") {
      const char* category = next("a category id");
      if (category == nullptr) return 2;
      expect_top = category;
    } else if (arg == "--metrics") {
      const char* path = next("a metrics/bench-baseline JSON path");
      if (path == nullptr) return 2;
      metrics_path = path;
    } else if (arg == "--timeseries") {
      const char* path = next("a gpumip.timeseries.v1 JSON path");
      if (path == nullptr) return 2;
      timeseries_path = path;
    } else if (arg == "--trace") {
      const char* path = next("a trace-event JSON path");
      if (path == nullptr) return 2;
      trace_path = path;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: gpumip-report --self-check\n"
                   "       gpumip-report --attribute BASE.json CURRENT.json"
                   " [--expect-top CATEGORY]\n"
                   "       gpumip-report --metrics RUN.json [--timeseries TS.json]"
                   " [--trace TRACE.json]\n";
      return 0;
    } else {
      return usage_error("unknown argument " + arg);
    }
  }

  bool ok = true;
  if (self_check) {
    std::cout << "==> gpumip-report self-check (known-answer fixtures)\n";
    ok = run_self_check(std::cout);
  }

  if (!attribute_paths.empty()) {
    std::string base_text;
    std::string cur_text;
    if (!read_file(attribute_paths[0], base_text)) {
      return usage_error("cannot read " + attribute_paths[0]);
    }
    if (!read_file(attribute_paths[1], cur_text)) {
      return usage_error("cannot read " + attribute_paths[1]);
    }
    BenchDoc base;
    BenchDoc current;
    std::string error;
    if (!parse_run(base_text, base, error)) {
      return usage_error(attribute_paths[0] + ": " + error);
    }
    if (!parse_run(cur_text, current, error)) {
      return usage_error(attribute_paths[1] + ": " + error);
    }
    const Attribution attribution = attribute(base, current);
    std::cout << "==> " << attribute_paths[0] << " vs " << attribute_paths[1] << "\n"
              << format_attribution(attribution);
    if (!expect_top.empty()) {
      const bool match =
          !attribution.ranked.empty() && attribution.ranked.front().category == expect_top;
      std::cout << "  [" << (match ? "PASS" : "FAIL") << "] top-ranked category is "
                << expect_top << "\n";
      if (!match) ok = false;
    }
  } else if (!expect_top.empty()) {
    return usage_error("--expect-top requires --attribute");
  }

  if (!metrics_path.empty()) {
    std::string text;
    if (!read_file(metrics_path, text)) return usage_error("cannot read " + metrics_path);
    BenchDoc run;
    std::string error;
    if (!parse_run(text, run, error)) return usage_error(metrics_path + ": " + error);

    TimeSeries series;
    const TimeSeries* series_ptr = nullptr;
    if (!timeseries_path.empty()) {
      std::string ts_text;
      if (!read_file(timeseries_path, ts_text)) {
        return usage_error("cannot read " + timeseries_path);
      }
      if (!parse_timeseries(ts_text, series, error)) {
        return usage_error(timeseries_path + ": " + error);
      }
      series_ptr = &series;
    }

    gpumip::tracetool::Trace trace;
    const gpumip::tracetool::Trace* trace_ptr = nullptr;
    if (!trace_path.empty()) {
      std::string trace_text;
      if (!read_file(trace_path, trace_text)) {
        return usage_error("cannot read " + trace_path);
      }
      if (!gpumip::tracetool::parse_trace(trace_text, trace, error)) {
        return usage_error(trace_path + ": " + error);
      }
      trace_ptr = &trace;
    }

    const Profile profile = build_profile(run, trace_ptr, series_ptr);
    std::cout << "==> " << metrics_path << "\n" << format_profile(profile);
  } else if (!timeseries_path.empty() || !trace_path.empty()) {
    return usage_error("--timeseries/--trace require --metrics");
  }

  if (!self_check && attribute_paths.empty() && metrics_path.empty()) {
    return usage_error("nothing to do");
  }
  return ok ? 0 : 1;
}
