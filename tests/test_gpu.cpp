#include <gtest/gtest.h>

#include <vector>

#include "gpu/arena.hpp"
#include "gpu/device.hpp"

namespace gpumip::gpu {
namespace {

CostModelConfig small_config() {
  CostModelConfig cfg;
  cfg.memory_bytes = 1 << 20;  // 1 MiB device for OOM tests
  return cfg;
}

TEST(CostModel, TransferHasLatencyFloor) {
  CostModelConfig cfg;
  EXPECT_GT(transfer_seconds(cfg, 0), 0.0);
  EXPECT_NEAR(transfer_seconds(cfg, 0), cfg.pcie_latency, 1e-12);
  // Doubling bytes roughly doubles the bandwidth term.
  const double t1 = transfer_seconds(cfg, 1 << 26) - cfg.pcie_latency;
  const double t2 = transfer_seconds(cfg, 1 << 27) - cfg.pcie_latency;
  EXPECT_NEAR(t2 / t1, 2.0, 1e-9);
}

TEST(CostModel, SparseKernelsAreSlowerThanDense) {
  CostModelConfig cfg;
  const double flops = 1e9;
  const double dense = kernel_seconds(cfg, KernelCost::dense(flops, 1e6));
  const double sparse = kernel_seconds(cfg, KernelCost::sparse_irregular(flops, 1e6));
  EXPECT_GT(sparse, dense * 3.0);  // efficiency gap + divergence penalty
}

TEST(CostModel, LaunchOverheadDominatesTinyKernels) {
  CostModelConfig cfg;
  const double t = kernel_seconds(cfg, KernelCost::dense(10.0, 10.0));
  EXPECT_NEAR(t, cfg.launch_overhead, cfg.launch_overhead * 0.01);
}

TEST(CostModel, OccupancyScalesThroughput) {
  CostModelConfig cfg;
  KernelCost full = KernelCost::dense(1e10, 0);
  KernelCost half = full;
  half.occupancy = 0.5;
  EXPECT_NEAR(kernel_seconds(cfg, half) / kernel_seconds(cfg, full), 2.0, 0.01);
}

TEST(Device, AllocTracksCapacityAndPeak) {
  Device dev(small_config());
  auto a = dev.alloc(512 * 1024, "a");
  EXPECT_EQ(dev.stats().allocated_bytes, 512u * 1024);
  {
    auto b = dev.alloc(256 * 1024, "b");
    EXPECT_EQ(dev.stats().allocated_bytes, 768u * 1024);
  }
  EXPECT_EQ(dev.stats().allocated_bytes, 512u * 1024);
  EXPECT_EQ(dev.stats().peak_allocated_bytes, 768u * 1024);
}

TEST(Device, OverCapacityThrows) {
  Device dev(small_config());
  auto a = dev.alloc(900 * 1024);
  EXPECT_THROW(dev.alloc(200 * 1024), DeviceOutOfMemory);
  // After the failed alloc the accounting is unchanged.
  EXPECT_EQ(dev.stats().allocated_bytes, 900u * 1024);
}

TEST(Device, BufferMoveTransfersOwnership) {
  Device dev(small_config());
  DeviceBuffer a = dev.alloc(1024);
  DeviceBuffer b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(dev.stats().allocated_bytes, 1024u);
}

TEST(Device, RoundTripCopyPreservesData) {
  Device dev;
  std::vector<double> host = {1.0, 2.0, 3.0, 4.5};
  auto buf = dev.alloc_doubles(host.size());
  dev.upload(0, buf, host);
  std::vector<double> back(host.size(), 0.0);
  dev.download(0, buf, back);
  EXPECT_EQ(host, back);
  EXPECT_EQ(dev.stats().transfers_h2d, 1u);
  EXPECT_EQ(dev.stats().transfers_d2h, 1u);
  EXPECT_EQ(dev.stats().bytes_h2d, host.size() * sizeof(double));
}

TEST(Device, OutOfRangeCopyThrows) {
  Device dev;
  auto buf = dev.alloc_doubles(4);
  std::vector<double> host(8, 1.0);
  EXPECT_THROW(dev.upload(0, buf, host), Error);
}

TEST(Device, KernelsOnOneStreamSerialize) {
  Device dev;
  KernelCost cost = KernelCost::dense(7e9, 0);  // ~1 ms each
  dev.launch(0, cost, {});
  dev.launch(0, cost, {});
  const double t = dev.synchronize();
  const double one = kernel_seconds(dev.config(), cost);
  EXPECT_NEAR(t, 2 * one, one * 0.01);
}

TEST(Device, KernelsOnTwoStreamsOverlap) {
  Device dev;
  const StreamId s1 = dev.create_stream();
  KernelCost cost = KernelCost::dense(7e9, 0);
  dev.launch(0, cost, {});
  dev.launch(s1, cost, {});
  const double t = dev.synchronize();
  const double one = kernel_seconds(dev.config(), cost);
  EXPECT_NEAR(t, one, one * 0.01);
}

TEST(Device, ParallelSlotsBoundOverlap) {
  CostModelConfig cfg;
  cfg.parallel_slots = 2;
  Device dev(cfg);
  std::vector<StreamId> streams = {0};
  for (int i = 0; i < 3; ++i) streams.push_back(dev.create_stream());
  KernelCost cost = KernelCost::dense(7e9, 0);
  for (StreamId s : streams) dev.launch(s, cost, {});
  const double t = dev.synchronize();
  const double one = kernel_seconds(dev.config(), cost);
  // 4 kernels, 2 slots -> 2 serial waves.
  EXPECT_NEAR(t, 2 * one, one * 0.05);
}

TEST(Device, TransfersUseSerialCopyEngines) {
  Device dev;
  auto buf = dev.alloc_doubles(1 << 20);
  std::vector<double> host(1 << 20, 1.0);
  const StreamId s1 = dev.create_stream();
  dev.upload(0, buf, host);
  dev.upload(s1, buf, host);  // same direction: must queue behind engine
  const double t = dev.synchronize();
  const double one = transfer_seconds(dev.config(), host.size() * sizeof(double));
  EXPECT_NEAR(t, 2 * one, one * 0.01);
}

TEST(Device, EventsOrderAcrossStreams) {
  Device dev;
  const StreamId s1 = dev.create_stream();
  KernelCost cost = KernelCost::dense(7e9, 0);
  dev.launch(0, cost, {});
  Event e = dev.record(0);
  dev.wait(s1, e);
  dev.launch(s1, cost, {});
  const double one = kernel_seconds(dev.config(), cost);
  EXPECT_NEAR(dev.synchronize(), 2 * one, one * 0.01);
}

TEST(Device, KernelBodyRunsEagerly) {
  Device dev;
  int ran = 0;
  dev.launch(0, KernelCost::dense(1, 1), [&] { ran = 1; });
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(dev.stats().kernels, 1u);
}

TEST(Device, ResetStatsKeepsAllocations) {
  Device dev;
  auto buf = dev.alloc_doubles(128);
  dev.launch(0, KernelCost::dense(1e6, 0), {});
  dev.synchronize();
  dev.reset_stats();
  EXPECT_EQ(dev.stats().kernels, 0u);
  EXPECT_EQ(dev.stats().allocated_bytes, 128 * sizeof(double));
  EXPECT_EQ(dev.now(), 0.0);
}

TEST(Device, InvalidStreamRejected) {
  Device dev;
  EXPECT_THROW(dev.launch(5, KernelCost::dense(1, 1), {}), Error);
  EXPECT_THROW(dev.record(-1), Error);
}

TEST(Arena, AllotBumpsWithinOneReservedSlab) {
  Device dev(small_config());
  DeviceArena arena(dev, "t");
  arena.reserve(4096);
  EXPECT_EQ(dev.stats().allocations, 1u);
  EXPECT_EQ(arena.slab_count(), 1u);
  DeviceArena::Block a = arena.allot(100);
  DeviceArena::Block b = arena.allot(100);
  EXPECT_EQ(a.slab, b.slab);
  EXPECT_EQ(a.offset % 64, 0u);
  EXPECT_EQ(b.offset % 64, 0u);
  EXPECT_GE(b.offset, a.offset + 100);
  // No further device allocations: both blocks came from the slab.
  EXPECT_EQ(dev.stats().allocations, 1u);
  EXPECT_EQ(arena.used_bytes(), 256u);  // two 100-byte allots, 64-aligned
}

TEST(Arena, ResetReusesCapacityWithoutNewDeviceAllocations) {
  Device dev(small_config());
  DeviceArena arena(dev, "t");
  for (int i = 0; i < 8; ++i) (void)arena.allot(512);
  const std::uint64_t after_first_round = dev.stats().allocations;
  EXPECT_GE(after_first_round, 1u);
  for (int round = 0; round < 4; ++round) {
    arena.reset();
    for (int i = 0; i < 8; ++i) (void)arena.allot(512);
  }
  // Steady state: round-one capacity serves every later round untouched.
  EXPECT_EQ(dev.stats().allocations, after_first_round);
  EXPECT_EQ(arena.high_water_bytes(), 8u * 512);
}

TEST(Arena, GrowthKeepsEarlierBlocksValid) {
  Device dev(small_config());
  DeviceArena arena(dev, "t");
  DeviceArena::Block first = arena.allot(8 * sizeof(double));
  first.as<double>()[0] = 42.0;
  // Force growth onto a second slab; the first block must still read back.
  (void)arena.allot(64 * 1024);
  EXPECT_EQ(arena.slab_count(), 2u);
  EXPECT_EQ(first.as<double>()[0], 42.0);
  // reserve() after reset coalesces back to a single exactly-sized slab.
  arena.reset();
  arena.reserve(arena.capacity_bytes());
  EXPECT_EQ(arena.slab_count(), 1u);
}

TEST(Arena, OverCapacityThrowsAndReleaseAudits) {
  Device dev(small_config());
  DeviceArena arena(dev, "t");
  EXPECT_THROW(arena.reserve(2 << 20), DeviceOutOfMemory);
  (void)arena.allot(1024);
  arena.release();
  EXPECT_NO_THROW(dev.audit());
}

TEST(Arena, ReserveWithOutstandingBlocksThrows) {
  Device dev(small_config());
  DeviceArena arena(dev, "t");
  (void)arena.allot(128);
  EXPECT_THROW(arena.reserve(4096), Error);
}

}  // namespace
}  // namespace gpumip::gpu
