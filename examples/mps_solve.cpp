// Command-line MPS solver: loads an MPS file (or writes a demo instance if
// none is given) and solves it, printing the Figure-1 style tree census
// and the simulated platform accounting.
//
//   ./mps_solve [file.mps] [strategy: s1|s2|s3|s4]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/gpumip.hpp"
#include "support/strings.hpp"

int main(int argc, char** argv) {
  using namespace gpumip;

  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    // No file given: write a demo knapsack instance and solve that.
    path = "/tmp/gpumip_demo.mps";
    Rng rng(3);
    mip::MipModel demo = problems::knapsack(12, rng);
    std::ofstream out(path);
    problems::write_mps(demo, out, "DEMO_KNAPSACK");
    std::printf("no input given; wrote demo instance to %s\n", path.c_str());
  }

  SolverOptions opts;
  if (argc > 2) {
    const std::string s = argv[2];
    if (s == "s1") opts.strategy = parallel::Strategy::S1_GpuOnly;
    if (s == "s2") opts.strategy = parallel::Strategy::S2_CpuOrchestrated;
    if (s == "s3") opts.strategy = parallel::Strategy::S3_Hybrid;
    if (s == "s4") {
      opts.strategy = parallel::Strategy::S4_BigMip;
      opts.devices = 4;
    }
  }

  Solver solver(opts);
  SolveReport report;
  try {
    report = solver.solve_mps_file(path);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  std::printf("strategy    : %s\n", parallel::strategy_name(solver.options().strategy));
  std::printf("status      : %s\n", mip::mip_status_name(report.status));
  if (report.has_solution) std::printf("objective   : %.6f (gap %.2e)\n", report.objective, report.gap);
  std::printf("lp code path: %s\n", lp::code_path_name(report.lp_path));
  std::printf("presolve    : -%d rows, -%d cols\n", report.presolve_rows_removed,
              report.presolve_cols_removed);
  std::printf("tree census : %ld total = %ld branched + %ld feasible + %ld infeasible + %ld pruned"
              " (peak frontier %ld, depth %d)\n",
              report.anatomy.total_nodes, report.anatomy.branched,
              report.anatomy.feasible_leaves, report.anatomy.infeasible_leaves,
              report.anatomy.pruned_leaves, report.anatomy.active_peak,
              report.anatomy.max_depth);
  std::printf("simulated   : %s total | device %s | host %s | %s transferred | peak mem %s\n",
              human_seconds(report.sim_seconds).c_str(),
              human_seconds(report.device_seconds).c_str(),
              human_seconds(report.host_seconds).c_str(),
              human_bytes(report.bytes_transferred).c_str(),
              human_bytes(report.device_peak_bytes).c_str());
  if (!report.strategy_completed) {
    std::printf("NOTE: strategy infeasible on configured hardware: %s\n",
                report.strategy_failure.c_str());
  }
  return report.status == mip::MipStatus::Optimal ? 0 : 1;
}
