// gpumip — public API.
//
// One include gives you the whole system:
//
//   #include "core/gpumip.hpp"
//
//   gpumip::mip::MipModel model;
//   ... build columns/rows ...
//   gpumip::Solver solver;                       // default: strategy S2
//   gpumip::SolveReport report = solver.solve(model);
//
// The Solver facade wraps the branch-and-bound engine, LP backends, root
// cuts/heuristics, the execution strategies (paper section 3), and the
// simulated-device accounting. Lower layers remain fully usable directly:
//   lp::SimplexSolver / lp::InteriorPointSolver   — LP engines
//   mip::BnbSolver                                — sequential B&B/B&C
//   parallel::solve_supervised                    — UG-style scale-out
//   parallel::run_strategy                        — S1..S4 cost replay
//   ivm::solve_flowshop_gpu                       — entirely-GPU permutation B&B
#pragma once

#include <optional>
#include <string>

#include "lp/interior_point.hpp"
#include "lp/path_chooser.hpp"
#include "lp/presolve.hpp"
#include "lp/scaling.hpp"
#include "lp/simplex.hpp"
#include "mip/solver.hpp"
#include "parallel/strategies.hpp"
#include "parallel/supervisor.hpp"
#include "problems/generators.hpp"
#include "problems/mps.hpp"

namespace gpumip {

/// Where the LP relaxations run (paper section 5.4's two code paths, plus
/// an automatic chooser).
enum class LpBackend {
  Auto,         ///< runtime density decision (lp::choose_path)
  DenseGpu,     ///< dense kernels on the simulated device
  SparseHybrid, ///< sparse kernels, setup on the CPU
};

struct SolverOptions {
  parallel::Strategy strategy = parallel::Strategy::S2_CpuOrchestrated;
  LpBackend lp_backend = LpBackend::Auto;
  bool presolve = true;
  mip::MipOptions mip;                  ///< engine knobs (branching, cuts, ...)
  gpu::CostModelConfig device;          ///< simulated accelerator
  int devices = 1;                      ///< >1 enables S4 sharding
  lp::CpuCostModel cpu;
  /// Scale out over a supervisor-worker fleet when workers > 0.
  int workers = 0;
  parallel::SupervisorOptions supervisor;
};

struct SolveReport {
  mip::MipStatus status = mip::MipStatus::Infeasible;
  bool has_solution = false;
  double objective = 0.0;     ///< in the model's own sense
  linalg::Vector x;           ///< structural variable values
  double bound = 0.0;
  double gap = 0.0;

  lp::CodePath lp_path = lp::CodePath::DenseGpu;  ///< chosen code path
  mip::MipStats stats;
  mip::TreeAnatomy anatomy;   ///< Figure-1 style tree census

  // Simulated-platform accounting (from the strategy replay).
  double sim_seconds = 0.0;
  double device_seconds = 0.0;
  double host_seconds = 0.0;
  std::uint64_t bytes_transferred = 0;
  std::uint64_t device_peak_bytes = 0;
  bool strategy_completed = true;
  std::string strategy_failure;

  // Scale-out accounting (when workers > 0).
  double parallel_makespan = 0.0;
  std::vector<long> worker_nodes;

  int presolve_rows_removed = 0;
  int presolve_cols_removed = 0;
};

/// The facade. Stateless between solves; safe to reuse.
class Solver {
 public:
  explicit Solver(SolverOptions options = {});

  /// Solves a MIP (or pure LP: no integer columns) end to end.
  SolveReport solve(const mip::MipModel& model) const;

  /// Convenience: load an MPS file and solve it.
  SolveReport solve_mps_file(const std::string& path) const;

  const SolverOptions& options() const noexcept { return options_; }

 private:
  SolverOptions options_;
};

/// Library version string.
const char* version() noexcept;

}  // namespace gpumip
