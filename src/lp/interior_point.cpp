#include "lp/interior_point.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "obs/obs.hpp"
#include "sparse/ops.hpp"
#include "sparse/sparse_cholesky.hpp"

namespace gpumip::lp {

namespace {

/// How each original variable maps into the nonnegative-form columns.
struct VarMap {
  enum class Kind { Shifted, Mirrored, Split } kind = Kind::Shifted;
  int col = -1;       // primary column
  int col_neg = -1;   // negative part (Split)
  double offset = 0;  // x = offset + x' (Shifted) or offset - x' (Mirrored)
};

/// min cᵀx, Ax = b, x >= 0 equivalent of (form, lb, ub).
struct NonnegForm {
  sparse::Csr a;
  sparse::Csc a_cols;
  linalg::Vector b, c;
  double obj_offset = 0.0;
  std::vector<VarMap> map;  // per original variable
  int orig_rows = 0;
};

NonnegForm to_nonneg(const StandardForm& form, std::span<const double> lb,
                     std::span<const double> ub) {
  const int m = form.num_rows;
  const int n = form.num_vars;
  check_arg(static_cast<int>(lb.size()) == n && static_cast<int>(ub.size()) == n,
            "interior point: bound size mismatch");
  NonnegForm out;
  out.orig_rows = m;
  out.map.resize(static_cast<std::size_t>(n));
  out.b.assign(form.b.begin(), form.b.end());

  std::vector<sparse::Triplet> triplets;
  int next_col = 0;
  int next_row = m;
  std::vector<std::pair<int, double>> ub_rows;  // (column, range) for x' + w = range

  for (int j = 0; j < n; ++j) {
    const std::size_t k = static_cast<std::size_t>(j);
    VarMap& vm = out.map[k];
    const bool has_lb = std::isfinite(lb[k]);
    const bool has_ub = std::isfinite(ub[k]);
    auto copy_column = [&](int dst_col, double scale) {
      const auto& a = form.a_cols;
      for (int e = a.col_start[k]; e < a.col_start[k + 1]; ++e) {
        triplets.push_back({a.row_index[static_cast<std::size_t>(e)], dst_col,
                            scale * a.values[static_cast<std::size_t>(e)]});
      }
    };
    if (has_lb) {
      vm.kind = VarMap::Kind::Shifted;
      vm.col = next_col++;
      vm.offset = lb[k];
      copy_column(vm.col, 1.0);
      out.c.push_back(form.c[k]);
      out.obj_offset += form.c[k] * lb[k];
      if (lb[k] != 0.0) {
        const auto& a = form.a_cols;
        for (int e = a.col_start[k]; e < a.col_start[k + 1]; ++e) {
          out.b[static_cast<std::size_t>(a.row_index[static_cast<std::size_t>(e)])] -=
              a.values[static_cast<std::size_t>(e)] * lb[k];
        }
      }
      if (has_ub) ub_rows.push_back({vm.col, ub[k] - lb[k]});
    } else if (has_ub) {
      // x = ub - x', x' >= 0.
      vm.kind = VarMap::Kind::Mirrored;
      vm.col = next_col++;
      vm.offset = ub[k];
      copy_column(vm.col, -1.0);
      out.c.push_back(-form.c[k]);
      out.obj_offset += form.c[k] * ub[k];
      if (ub[k] != 0.0) {
        const auto& a = form.a_cols;
        for (int e = a.col_start[k]; e < a.col_start[k + 1]; ++e) {
          out.b[static_cast<std::size_t>(a.row_index[static_cast<std::size_t>(e)])] -=
              a.values[static_cast<std::size_t>(e)] * ub[k];
        }
      }
    } else {
      // Free: x = x+ - x-.
      vm.kind = VarMap::Kind::Split;
      vm.col = next_col++;
      vm.col_neg = next_col++;
      copy_column(vm.col, 1.0);
      copy_column(vm.col_neg, -1.0);
      out.c.push_back(form.c[k]);
      out.c.push_back(-form.c[k]);
    }
  }
  // Upper-bound rows: x'_j + w = range.
  for (const auto& [col, range] : ub_rows) {
    const int w = next_col++;
    triplets.push_back({next_row, col, 1.0});
    triplets.push_back({next_row, w, 1.0});
    out.c.push_back(0.0);
    out.b.push_back(range);
    ++next_row;
  }
  out.a = sparse::csr_from_triplets(next_row, next_col, triplets);
  out.a_cols = sparse::csr_to_csc(out.a);
  return out;
}

double inf_norm(std::span<const double> v) {
  double worst = 0.0;
  for (double x : v) worst = std::max(worst, std::fabs(x));
  return worst;
}

/// Solves (A diag(d) Aᵀ + ridge I) out = rhs. Dense or sparse Cholesky by
/// `dense` flag. Throws NumericalError when hopeless.
linalg::Vector solve_normal_equations(const NonnegForm& nf, const linalg::Vector& d,
                                      const linalg::Vector& rhs, bool dense, LpOpStats& ops,
                                      const linalg::Vector* rhs2, linalg::Vector* out2) {
  const int m = nf.a.rows;
  // A D Aᵀ is PD whenever A has full row rank (every row owns a slack), so
  // start unregularized; escalate the ridge only on an actual breakdown. A
  // ridge scaled to max |M| would swamp the small d_j entries near
  // convergence and stall the iteration.
  if (dense) {
    linalg::Matrix mmat(m, m);
    // M = Σ_j d_j a_j a_jᵀ via the column view.
    for (int j = 0; j < nf.a.cols; ++j) {
      const auto& a = nf.a_cols;
      const double dj = d[static_cast<std::size_t>(j)];
      if (dj == 0.0) continue;
      for (int e1 = a.col_start[static_cast<std::size_t>(j)];
           e1 < a.col_start[static_cast<std::size_t>(j) + 1]; ++e1) {
        const int r1 = a.row_index[static_cast<std::size_t>(e1)];
        const double v1 = dj * a.values[static_cast<std::size_t>(e1)];
        for (int e2 = a.col_start[static_cast<std::size_t>(j)];
             e2 < a.col_start[static_cast<std::size_t>(j) + 1]; ++e2) {
          mmat(r1, a.row_index[static_cast<std::size_t>(e2)]) +=
              v1 * a.values[static_cast<std::size_t>(e2)];
        }
      }
    }
    double ridge = 0.0;
    for (int attempt = 0; attempt < 5; ++attempt) {
      try {
        linalg::DenseCholesky chol(mmat, ridge);
        ++ops.cholesky;
        if (rhs2 != nullptr && out2 != nullptr) *out2 = chol.solve(*rhs2);
        return chol.solve(rhs);
      } catch (const NumericalError&) {
        ridge = ridge == 0.0 ? 1e-12 * (1.0 + inf_norm({mmat.data(), mmat.size()}))
                             : ridge * 1e4;
      }
    }
    throw NumericalError("interior point: dense normal equations not PD");
  }
  // Sparse path.
  std::vector<sparse::Triplet> triplets;
  for (int j = 0; j < nf.a.cols; ++j) {
    const auto& a = nf.a_cols;
    const double dj = d[static_cast<std::size_t>(j)];
    if (dj == 0.0) continue;
    for (int e1 = a.col_start[static_cast<std::size_t>(j)];
         e1 < a.col_start[static_cast<std::size_t>(j) + 1]; ++e1) {
      const int r1 = a.row_index[static_cast<std::size_t>(e1)];
      const double v1 = dj * a.values[static_cast<std::size_t>(e1)];
      for (int e2 = a.col_start[static_cast<std::size_t>(j)];
           e2 < a.col_start[static_cast<std::size_t>(j) + 1]; ++e2) {
        triplets.push_back({r1, a.row_index[static_cast<std::size_t>(e2)],
                            v1 * a.values[static_cast<std::size_t>(e2)]});
      }
    }
  }
  double max_entry = 0.0;
  for (const auto& t : triplets) max_entry = std::max(max_entry, std::fabs(t.value));
  double ridge = 0.0;
  for (int attempt = 0; attempt < 5; ++attempt) {
    try {
      std::vector<sparse::Triplet> with_ridge = triplets;
      if (ridge > 0.0) {
        for (int i = 0; i < m; ++i) with_ridge.push_back({i, i, ridge});
      }
      sparse::SparseCholesky chol(sparse::csc_from_triplets(m, m, with_ridge));
      ++ops.cholesky;
      if (rhs2 != nullptr && out2 != nullptr) *out2 = chol.solve(*rhs2);
      return chol.solve(rhs);
    } catch (const NumericalError&) {
      ridge = ridge == 0.0 ? 1e-12 * (1.0 + max_entry) : ridge * 1e4;
    }
  }
  throw NumericalError("interior point: sparse normal equations not PD");
}

}  // namespace

InteriorPointSolver::InteriorPointSolver(const StandardForm& form, InteriorPointOptions options)
    : form_(&form), options_(options) {}

LpResult InteriorPointSolver::solve(std::span<const double> lb, std::span<const double> ub) {
  GPUMIP_OBS_COUNT_L("gpumip.lp.solves", {"method", "interior_point"});
  GPUMIP_OBS_SPAN_L("gpumip.lp.solve.seconds", {"method", "interior_point"});
  const NonnegForm nf = to_nonneg(*form_, lb, ub);
  const int m = nf.a.rows;
  const int n = nf.a.cols;

  LpResult result;
  result.ops.m = m;
  result.ops.n = n;
  result.ops.nnz = nf.a.nnz();

  const bool dense = options_.force_dense ||
                     (!options_.force_sparse && nf.a.density() >= options_.dense_threshold);

  auto matvec = [&](const linalg::Vector& x) {  // A x
    linalg::Vector y(static_cast<std::size_t>(m), 0.0);
    sparse::spmv(1.0, nf.a, x, 0.0, y);
    ++result.ops.matvec_n;
    return y;
  };
  auto matvec_t = [&](const linalg::Vector& y) {  // Aᵀ y
    linalg::Vector x(static_cast<std::size_t>(n), 0.0);
    sparse::spmv_t(1.0, nf.a, y, 0.0, x);
    ++result.ops.matvec_n;
    return x;
  };

  // --- Mehrotra starting point ---
  linalg::Vector x(static_cast<std::size_t>(n), 1.0);
  linalg::Vector s(static_cast<std::size_t>(n), 1.0);
  linalg::Vector y(static_cast<std::size_t>(m), 0.0);
  try {
    linalg::Vector ones_d(static_cast<std::size_t>(n), 1.0);
    const linalg::Vector ac = matvec(nf.c);
    linalg::Vector yhat;
    const linalg::Vector xb =
        solve_normal_equations(nf, ones_d, nf.b, dense, result.ops, &ac, &yhat);
    linalg::Vector xhat = matvec_t(xb);
    linalg::Vector shat = nf.c;
    const linalg::Vector aty = matvec_t(yhat);
    for (int j = 0; j < n; ++j) shat[static_cast<std::size_t>(j)] -= aty[static_cast<std::size_t>(j)];
    double dx = 0.0, ds = 0.0;
    for (double v : xhat) dx = std::max(dx, -1.5 * v);
    for (double v : shat) ds = std::max(ds, -1.5 * v);
    for (double& v : xhat) v += dx;
    for (double& v : shat) v += ds;
    double xs = 0.0, sum_x = 0.0, sum_s = 0.0;
    for (int j = 0; j < n; ++j) {
      xs += xhat[static_cast<std::size_t>(j)] * shat[static_cast<std::size_t>(j)];
      sum_x += xhat[static_cast<std::size_t>(j)];
      sum_s += shat[static_cast<std::size_t>(j)];
    }
    if (sum_s > 1e-12 && sum_x > 1e-12 && xs > 0) {
      const double dxp = 0.5 * xs / sum_s;
      const double dsp = 0.5 * xs / sum_x;
      for (int j = 0; j < n; ++j) {
        x[static_cast<std::size_t>(j)] = xhat[static_cast<std::size_t>(j)] + dxp;
        s[static_cast<std::size_t>(j)] = shat[static_cast<std::size_t>(j)] + dsp;
      }
      y = yhat;
    }
  } catch (const NumericalError&) {
    // keep the all-ones start
  }
  for (int j = 0; j < n; ++j) {
    x[static_cast<std::size_t>(j)] = std::max(x[static_cast<std::size_t>(j)], 1e-2);
    s[static_cast<std::size_t>(j)] = std::max(s[static_cast<std::size_t>(j)], 1e-2);
  }

  const double bnorm = 1.0 + inf_norm(nf.b);
  const double cnorm = 1.0 + inf_norm(nf.c);
  LpStatus status = LpStatus::IterationLimit;
  double best_mu = kInf;
  int stalled = 0;

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    ++result.ops.iterations;
    // Residuals.
    linalg::Vector rb = nf.b;
    {
      const linalg::Vector ax = matvec(x);
      for (int i = 0; i < m; ++i) rb[static_cast<std::size_t>(i)] -= ax[static_cast<std::size_t>(i)];
    }
    linalg::Vector rc = nf.c;
    {
      const linalg::Vector aty = matvec_t(y);
      for (int j = 0; j < n; ++j) {
        rc[static_cast<std::size_t>(j)] -= aty[static_cast<std::size_t>(j)] + s[static_cast<std::size_t>(j)];
      }
    }
    double mu = 0.0;
    for (int j = 0; j < n; ++j) mu += x[static_cast<std::size_t>(j)] * s[static_cast<std::size_t>(j)];
    mu /= n;

    double cx = 0.0;
    for (int j = 0; j < n; ++j) cx += nf.c[static_cast<std::size_t>(j)] * x[static_cast<std::size_t>(j)];
    const double rel_gap = mu / (1.0 + std::fabs(cx));
    if (inf_norm(rb) / bnorm < options_.tol && inf_norm(rc) / cnorm < options_.tol &&
        rel_gap < options_.tol) {
      status = LpStatus::Optimal;
      break;
    }
    if (!std::isfinite(mu) || mu > 1e14) {
      status = LpStatus::NumericalTrouble;
      break;
    }
    // Stall detection: when the duality gap stops improving at the noise
    // floor but the iterate already satisfies a loose tolerance, accept it
    // (a degenerate optimal face — common on synthetic LPs).
    stalled = mu > 0.95 * best_mu ? stalled + 1 : 0;
    best_mu = std::min(best_mu, mu);
    if (stalled >= 8 && inf_norm(rb) / bnorm < 1e3 * options_.tol &&
        inf_norm(rc) / cnorm < 1e3 * options_.tol && rel_gap < 1e4 * options_.tol) {
      status = LpStatus::Optimal;
      break;
    }

    linalg::Vector d(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      d[static_cast<std::size_t>(j)] = x[static_cast<std::size_t>(j)] / s[static_cast<std::size_t>(j)];
    }

    auto assemble_rhs = [&](const linalg::Vector& rmu) {
      // rhs_y = rb + A (D rc - S⁻¹ rmu)
      linalg::Vector tmp(static_cast<std::size_t>(n));
      for (int j = 0; j < n; ++j) {
        const std::size_t k = static_cast<std::size_t>(j);
        tmp[k] = d[k] * rc[k] - rmu[k] / s[k];
      }
      linalg::Vector rhs = matvec(tmp);
      for (int i = 0; i < m; ++i) rhs[static_cast<std::size_t>(i)] += rb[static_cast<std::size_t>(i)];
      return rhs;
    };
    auto recover_steps = [&](const linalg::Vector& dy, const linalg::Vector& rmu,
                             linalg::Vector& dx_out, linalg::Vector& ds_out) {
      const linalg::Vector atdy = matvec_t(dy);
      dx_out.resize(static_cast<std::size_t>(n));
      ds_out.resize(static_cast<std::size_t>(n));
      for (int j = 0; j < n; ++j) {
        const std::size_t k = static_cast<std::size_t>(j);
        ds_out[k] = rc[k] - atdy[k];
        dx_out[k] = (rmu[k] - x[k] * ds_out[k]) / s[k];
      }
    };
    auto step_length = [&](const linalg::Vector& v, const linalg::Vector& dv) {
      double alpha = 1.0 / options_.step_scale;
      for (int j = 0; j < n; ++j) {
        const std::size_t k = static_cast<std::size_t>(j);
        if (dv[k] < 0.0) alpha = std::min(alpha, -v[k] / dv[k]);
      }
      return std::min(1.0, options_.step_scale * alpha);
    };

    try {
      // Affine (predictor).
      linalg::Vector rmu_aff(static_cast<std::size_t>(n));
      for (int j = 0; j < n; ++j) {
        const std::size_t k = static_cast<std::size_t>(j);
        rmu_aff[k] = -x[k] * s[k];
      }
      const linalg::Vector rhs_aff = assemble_rhs(rmu_aff);
      linalg::Vector dy_aff =
          solve_normal_equations(nf, d, rhs_aff, dense, result.ops, nullptr, nullptr);
      linalg::Vector dx_aff, ds_aff;
      recover_steps(dy_aff, rmu_aff, dx_aff, ds_aff);
      const double ap_aff = step_length(x, dx_aff);
      const double ad_aff = step_length(s, ds_aff);
      double mu_aff = 0.0;
      for (int j = 0; j < n; ++j) {
        const std::size_t k = static_cast<std::size_t>(j);
        mu_aff += (x[k] + ap_aff * dx_aff[k]) * (s[k] + ad_aff * ds_aff[k]);
      }
      mu_aff /= n;
      const double sigma = std::pow(std::clamp(mu_aff / mu, 0.0, 1.0), 3.0);

      // Corrector (combined direction).
      linalg::Vector rmu(static_cast<std::size_t>(n));
      for (int j = 0; j < n; ++j) {
        const std::size_t k = static_cast<std::size_t>(j);
        rmu[k] = -x[k] * s[k] + sigma * mu - dx_aff[k] * ds_aff[k];
      }
      const linalg::Vector rhs = assemble_rhs(rmu);
      linalg::Vector dy = solve_normal_equations(nf, d, rhs, dense, result.ops, nullptr, nullptr);
      linalg::Vector dx, ds;
      recover_steps(dy, rmu, dx, ds);
      const double ap = step_length(x, dx);
      const double ad = step_length(s, ds);
      for (int j = 0; j < n; ++j) {
        const std::size_t k = static_cast<std::size_t>(j);
        x[k] += ap * dx[k];
        s[k] += ad * ds[k];
      }
      for (int i = 0; i < m; ++i) {
        y[static_cast<std::size_t>(i)] += ad * dy[static_cast<std::size_t>(i)];
      }
    } catch (const NumericalError&) {
      status = LpStatus::NumericalTrouble;
      break;
    }
  }

  // Map back to standard-form variables.
  result.status = status;
  result.iterations = result.ops.iterations;
  result.x.assign(static_cast<std::size_t>(form_->num_vars), 0.0);
  for (int j = 0; j < form_->num_vars; ++j) {
    const VarMap& vm = nf.map[static_cast<std::size_t>(j)];
    double value = 0.0;
    switch (vm.kind) {
      case VarMap::Kind::Shifted:
        value = vm.offset + x[static_cast<std::size_t>(vm.col)];
        break;
      case VarMap::Kind::Mirrored:
        value = vm.offset - x[static_cast<std::size_t>(vm.col)];
        break;
      case VarMap::Kind::Split:
        value = x[static_cast<std::size_t>(vm.col)] - x[static_cast<std::size_t>(vm.col_neg)];
        break;
    }
    result.x[static_cast<std::size_t>(j)] = value;
  }
  double obj = 0.0;
  for (int j = 0; j < form_->num_vars; ++j) {
    obj += form_->c[static_cast<std::size_t>(j)] * result.x[static_cast<std::size_t>(j)];
  }
  result.objective = obj;
  result.duals.assign(y.begin(), y.begin() + form_->num_rows);
  result.reduced_costs.assign(static_cast<std::size_t>(form_->num_vars), 0.0);
  for (int j = 0; j < form_->num_vars; ++j) {
    result.reduced_costs[static_cast<std::size_t>(j)] =
        form_->c[static_cast<std::size_t>(j)] -
        sparse::column_dot(form_->a_cols, j, result.duals);
  }
  return result;
}

}  // namespace gpumip::lp
