// Counter registry for the invariant-checking subsystem.
//
// Every validator in check/ bumps a per-subsystem counter on entry, so tests
// (and scripts/check.sh runs) can assert that checked-mode instrumentation
// actually executed rather than silently compiling out. Counters are global
// and thread-safe; reset_counters() is for test isolation only.
#pragma once

#include <cstdint>

namespace gpumip::check {

/// Which validator family ran (indexes the counter table).
enum class Subsystem : int {
  kTree = 0,      ///< check_tree: B&B tree structure
  kSnapshot,      ///< check_snapshot: consistent-snapshot coverage
  kBasis,         ///< check_basis / check_basis_inverse: factorization reuse
  kSparse,        ///< check_sparse: CSR/CSC structure
  kLedger,        ///< device-memory ledger audits
  kMessages,      ///< simmpi supervisor<->worker message audits
  kSchedule,      ///< schedule determinism + delivery-trace validators
  kCount_,        // sentinel
};

const char* subsystem_name(Subsystem s) noexcept;

/// Bumps the run counter for `s` (called by every validator on entry).
void count_check(Subsystem s) noexcept;

/// Bumps the failure counter for `s` (called just before a validator throws).
void count_failure(Subsystem s) noexcept;

/// How many times validators of `s` have run since start/reset.
[[nodiscard]] std::uint64_t checks_run(Subsystem s) noexcept;

/// How many validator invocations of `s` found a violation.
[[nodiscard]] std::uint64_t checks_failed(Subsystem s) noexcept;

/// Total validator invocations across all subsystems.
[[nodiscard]] std::uint64_t checks_run_total() noexcept;

/// Zeroes all counters (test isolation).
void reset_counters() noexcept;

}  // namespace gpumip::check
