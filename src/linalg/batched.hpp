// MAGMA-style batched dense routines (paper sections 4.3, 5.5).
//
// A batched routine applies the same operation to many small independent
// matrices in ONE kernel launch: the launch overhead is paid once and the
// combined work can fill the device even when each matrix alone cannot.
// The contrast with looping dev_* calls over streams is exactly experiment
// E7's subject.
#pragma once

#include <vector>

#include "linalg/device_blas.hpp"

namespace gpumip::linalg {

/// A batch of equally-sized square matrices resident on the device.
class DeviceBatch {
 public:
  DeviceBatch() = default;

  /// Allocates a batch of `count` n x n matrices.
  DeviceBatch(gpu::Device& device, int count, int n, std::string label = "batch");

  /// Uploads all matrices in one H2D transfer.
  static DeviceBatch upload(gpu::Device& device, gpu::StreamId stream,
                            const std::vector<Matrix>& mats, std::string label = "batch");

  /// Downloads matrix `i` (charges one D2H per call).
  Matrix download_one(gpu::StreamId stream, int i) const;

  int count() const noexcept { return count_; }
  int n() const noexcept { return n_; }
  bool valid() const noexcept { return buffer_.valid(); }
  gpu::Device* device() const noexcept { return buffer_.device(); }

  double* matrix_data(int i) {
    return buffer_.as<double>().data() + static_cast<std::size_t>(i) * n_ * n_;
  }
  const double* matrix_data(int i) const {
    return buffer_.as<double>().data() + static_cast<std::size_t>(i) * n_ * n_;
  }

 private:
  gpu::DeviceBuffer buffer_;
  int count_ = 0;
  int n_ = 0;
};

/// Batched LU: factors every matrix in one launch; returns pivots per
/// matrix. Indices of matrices found singular are reported in `singular`
/// (they are left partially factored); throws nothing for per-item
/// failures so one bad matrix does not poison the batch.
std::vector<std::vector<int>> batched_getrf(gpu::StreamId stream, DeviceBatch& batch,
                                            std::vector<int>* singular = nullptr);

/// Batched solve: one launch solving lu[i] x = b[i] for all i.
/// `rhs` holds count contiguous vectors of length n.
void batched_getrs(gpu::StreamId stream, const DeviceBatch& lu,
                   const std::vector<std::vector<int>>& pivots, DeviceVector& rhs);

/// Batched GEMV in one launch: y[i] = A[i] x[i] for all i.
void batched_gemv(gpu::StreamId stream, const DeviceBatch& batch, const DeviceVector& x,
                  DeviceVector& y);

}  // namespace gpumip::linalg
