// Simplex basis description — the warm-start currency passed between a
// branch-and-bound parent and its children (paper section 5.3: reuse of
// the factorized matrix across tree nodes).
#pragma once

#include <cstdint>
#include <vector>

namespace gpumip::lp {

enum class VarStatus : std::uint8_t {
  Basic,
  AtLower,
  AtUpper,
  Free,  ///< nonbasic free variable (sits at 0)
};

struct Basis {
  std::vector<int> basic;           ///< size m: variable basic in each row
  std::vector<VarStatus> status;    ///< size num_vars

  bool empty() const noexcept { return basic.empty(); }

  bool operator==(const Basis& other) const = default;
};

}  // namespace gpumip::lp
