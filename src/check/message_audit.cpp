#include "check/message_audit.hpp"

#include "check/registry.hpp"
#include "support/error.hpp"

namespace gpumip::check {

std::uint64_t MessageAuditor::shipped(int dest) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t id = next_id_++;
  entries_[id].dest = dest;
  return id;
}

void MessageAuditor::delivered(std::uint64_t id, int rank) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    // gpumip-lint: hot-alloc(anomaly strings record a conservation violation; the clean path never allocates here)
    anomalies_.push_back("delivery of unknown subproblem id " + std::to_string(id) +
                         " at rank " + std::to_string(rank));
    return;
  }
  if (++it->second.deliveries > 1) {
    // gpumip-lint: hot-alloc(anomaly strings record a conservation violation; the clean path never allocates here)
    anomalies_.push_back("subproblem " + std::to_string(id) + " delivered " +
                         std::to_string(it->second.deliveries) + " times (last at rank " +
                         std::to_string(rank) + ")");
  }
}

void MessageAuditor::completed(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    // gpumip-lint: hot-alloc(anomaly strings record a conservation violation; the clean path never allocates here)
    anomalies_.push_back("completion for unknown subproblem id " + std::to_string(id));
    return;
  }
  if (++it->second.completions > 1) {
    // gpumip-lint: hot-alloc(anomaly strings record a conservation violation; the clean path never allocates here)
    anomalies_.push_back("subproblem " + std::to_string(id) + " completed " +
                         std::to_string(it->second.completions) + " times");
  }
}

long MessageAuditor::in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  long open = 0;
  for (const auto& [id, entry] : entries_) {
    if (entry.completions == 0) ++open;
  }
  return open;
}

long MessageAuditor::anomalies() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<long>(anomalies_.size());
}

std::uint64_t MessageAuditor::total_shipped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_id_ - 1;
}

std::string MessageAuditor::report() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [id, entry] : entries_) {
    if (entry.completions == 0) {
      out += "lost subproblem " + std::to_string(id) + " (shipped to rank " +
             std::to_string(entry.dest) +
             (entry.deliveries == 0 ? ", never delivered" : ", delivered but no result") + "); ";
    }
  }
  for (const std::string& a : anomalies_) out += a + "; ";
  return out;
}

void MessageAuditor::finalize() const {
  count_check(Subsystem::kMessages);
  // gpumip-lint: hot-alloc(finalize runs once at shutdown; the report string is the audit verdict)
  const std::string what = report();
  if (!what.empty()) {
    count_failure(Subsystem::kMessages);
    throw Error(ErrorCode::kInternal, "message audit failed: " + what);
  }
}

}  // namespace gpumip::check
