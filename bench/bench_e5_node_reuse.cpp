// E5 — matrix reuse across tree nodes (paper section 5.3, claim C5).
//
// A GPU-aware node-selection policy keeps evaluating children of the node
// whose matrix/basis is already device-resident, instead of jumping
// best-first across the tree. The bench compares the policies on identical
// MIPs: hot-node fraction, transfer volume per node, and simulated time
// under strategy S2.
#include "bench/common.hpp"
#include "parallel/strategies.hpp"
#include "problems/generators.hpp"
#include "support/strings.hpp"

namespace {

using namespace gpumip;

void compare_policies(std::uint64_t seed) {
  Rng rng(seed);
  problems::RandomMipConfig cfg;
  cfg.rows = 12;
  cfg.cols = 22;
  cfg.bound = 4.0;
  mip::MipModel model = problems::random_mip(cfg, rng);

  bench::row("  instance seed=%llu (%d cols, %d rows)", static_cast<unsigned long long>(seed),
             model.num_cols(), model.num_rows());
  bench::row("  %-14s %-9s %-8s %-10s %-14s %-12s %-12s", "policy", "obj", "nodes",
             "hot-frac", "H2D/node", "sim", "vs-best-first");
  double baseline = 0.0;
  for (auto policy : {mip::NodeSelection::BestFirst, mip::NodeSelection::DepthFirst,
                      mip::NodeSelection::GpuLocality}) {
    parallel::StrategyConfig config;
    config.mip.enable_cuts = false;
    config.mip.enable_heuristics = false;
    config.mip.node_selection = policy;
    parallel::StrategyReport r =
        parallel::run_strategy(parallel::Strategy::S2_CpuOrchestrated, model, config);
    const long nodes = std::max<long>(1, r.result.stats.nodes_evaluated);
    const double hot = static_cast<double>(r.result.stats.hot_nodes) / nodes;
    const double h2d_per_node = static_cast<double>(r.bytes_h2d) / nodes;
    if (policy == mip::NodeSelection::BestFirst) baseline = r.sim_seconds;
    bench::row("  %-14s %-9.3f %-8ld %-10.2f %-10s %-14s %.2fx",
               mip::node_selection_name(policy), r.result.objective,
               r.result.stats.nodes_evaluated, hot, human_bytes(static_cast<std::uint64_t>(h2d_per_node)).c_str(),
               human_seconds(r.sim_seconds).c_str(), baseline / r.sim_seconds);
  }
}

void print_experiment() {
  bench::title("E5", "GPU-locality-aware node selection vs best/depth-first (strategy S2)");
  for (std::uint64_t seed : {201u, 202u, 203u}) compare_policies(seed);
  bench::note("expected shape: gpu-locality raises the hot-node fraction ~15-40x over");
  bench::note("best-first and cuts H2D bytes per node ~3x (no bounds/basis reload, one");
  bench::note("refactorization saved per hot node). The measured trade-off: locality");
  bench::note("explores more nodes than best-first (worse bound order), so on these small");
  bench::note("LPs — where a node costs only a few kernel launches — best-first still wins");
  bench::note("end-to-end. The policy pays off when the per-node transfer+refactor saving");
  bench::note("outweighs the node premium, i.e. for the large device-resident matrices the");
  bench::note("paper targets (m^3 refactorization, MB-scale bound vectors). Exactly the");
  bench::note("'qualitatively different scheduling' trade-off section 5.3 calls out.");
}

void BM_policy(benchmark::State& state) {
  Rng rng(204);
  problems::RandomMipConfig cfg;
  cfg.rows = 10;
  cfg.cols = 18;
  cfg.bound = 3.0;
  mip::MipModel model = problems::random_mip(cfg, rng);
  parallel::StrategyConfig config;
  config.mip.enable_cuts = false;
  config.mip.node_selection = static_cast<mip::NodeSelection>(state.range(0));
  double hot = 0.0;
  for (auto _ : state) {
    parallel::StrategyReport r =
        parallel::run_strategy(parallel::Strategy::S2_CpuOrchestrated, model, config);
    hot = static_cast<double>(r.result.stats.hot_nodes) /
          std::max<long>(1, r.result.stats.nodes_evaluated);
    benchmark::DoNotOptimize(r.sim_seconds);
  }
  state.counters["hot_fraction"] = hot;
}
BENCHMARK(BM_policy)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  return gpumip::bench::run_benchmarks(argc, argv);
}
