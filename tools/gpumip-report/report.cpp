#include "report.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <ostream>
#include <sstream>

#include "json.hpp"

namespace gpumip::reporttool {

namespace {

using tracetool::JsonReader;
using tracetool::JsonValue;
using tracetool::number_or;
using tracetool::string_or;

bool number_map(const JsonValue* obj, std::map<std::string, double>& out, std::string& error,
                const char* what) {
  out.clear();
  if (obj == nullptr) return true;  // absent map = empty map
  if (obj->type != JsonValue::Type::kObject) {
    error = std::string(what) + " is not an object";
    return false;
  }
  for (const auto& [name, v] : obj->object) {
    if (v.type != JsonValue::Type::kNumber) {
      error = std::string(what) + " entry '" + name + "' is not a number";
      return false;
    }
    out[name] = v.number;
  }
  return true;
}

bool snapshot_from(const JsonValue& root, MetricsSnapshot& out, std::string& error) {
  out = MetricsSnapshot{};
  if (root.type != JsonValue::Type::kObject) {
    error = "metrics document is not an object";
    return false;
  }
  out.schema = string_or(root.find("schema"), "");
  if (const JsonValue* enabled = root.find("enabled");
      enabled != nullptr && enabled->type == JsonValue::Type::kBool) {
    out.enabled = enabled->boolean;
  }
  if (!number_map(root.find("counters"), out.counters, error, "counters")) return false;
  if (!number_map(root.find("gauges"), out.gauges, error, "gauges")) return false;
  if (const JsonValue* hists = root.find("histograms"); hists != nullptr) {
    if (hists->type != JsonValue::Type::kObject) {
      error = "histograms is not an object";
      return false;
    }
    for (const auto& [name, h] : hists->object) {
      if (h.type != JsonValue::Type::kObject) {
        error = "histogram '" + name + "' is not an object";
        return false;
      }
      out.histograms[name] = {number_or(h.find("count"), 0.0), number_or(h.find("sum"), 0.0)};
    }
  }
  return true;
}

constexpr double kScoreFloor = 1e-9;  // slack for baselines at or near zero

/// Family part of a possibly-labeled metric name: everything before '{'.
std::string strip_labels(const std::string& name) {
  const std::size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::char_traits<char>::length(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// Rewrite `name{...,rank=R,...}` without its rank pair (empty label sets
/// drop the braces). Which rank serves which node is race-dependent, so
/// two correct runs shuffle the per-rank splits freely; only the summed
/// family total is replay-stable evidence.
std::string drop_rank_label(const std::string& name) {
  const std::size_t open = name.find('{');
  if (open == std::string::npos || name.back() != '}') return name;
  std::string kept;
  std::size_t pos = open + 1;
  const std::size_t end = name.size() - 1;
  while (pos < end) {
    std::size_t comma = name.find(',', pos);
    if (comma == std::string::npos || comma > end) comma = end;
    const std::string pair = name.substr(pos, comma - pos);
    if (pair.rfind("rank=", 0) != 0) {
      if (!kept.empty()) kept += ',';
      kept += pair;
    }
    pos = comma + 1;
  }
  const std::string base = name.substr(0, open);
  return kept.empty() ? base : base + "{" + kept + "}";
}

/// Sum rank-labeled splits into their family total before scoring.
std::map<std::string, double> aggregate_rank_splits(
    const std::map<std::string, double>& values) {
  std::map<std::string, double> out;
  for (const auto& [name, value] : values) out[drop_rank_label(name)] += value;
  return out;
}

}  // namespace

bool parse_metrics(const std::string& json, MetricsSnapshot& out, std::string& error) {
  JsonValue root;
  if (!JsonReader(json).parse(root, error)) return false;
  if (!snapshot_from(root, out, error)) return false;
  if (out.schema != "gpumip.metrics.v1" && out.schema != "gpumip.metrics.v2") {
    error = "unexpected metrics schema '" + out.schema + "'";
    return false;
  }
  return true;
}

bool parse_bench_doc(const std::string& json, BenchDoc& out, std::string& error) {
  JsonValue root;
  if (!JsonReader(json).parse(root, error)) return false;
  if (string_or(root.find("schema"), "") != "gpumip.bench-baseline.v1") {
    error = "unexpected baseline schema '" + string_or(root.find("schema"), "") + "'";
    return false;
  }
  const JsonValue* benches = root.find("benches");
  if (benches == nullptr || benches->type != JsonValue::Type::kObject) {
    error = "document has no benches object";
    return false;
  }
  out.benches.clear();
  for (const auto& [bench, doc] : benches->object) {
    MetricsSnapshot snap;
    if (!snapshot_from(doc, snap, error)) {
      error = "bench '" + bench + "': " + error;
      return false;
    }
    snap.enabled = true;  // the merge script refuses disabled exports
    out.benches[bench] = std::move(snap);
  }
  if (out.benches.empty()) {
    error = "baseline document has no benches";
    return false;
  }
  return true;
}

bool parse_run(const std::string& json, BenchDoc& out, std::string& error) {
  JsonValue root;
  if (!JsonReader(json).parse(root, error)) return false;
  const std::string schema = string_or(root.find("schema"), "");
  if (schema == "gpumip.bench-baseline.v1") return parse_bench_doc(json, out, error);
  MetricsSnapshot snap;
  if (!parse_metrics(json, snap, error)) return false;
  out.benches.clear();
  out.benches["run"] = std::move(snap);
  return true;
}

bool parse_timeseries(const std::string& json, TimeSeries& out, std::string& error) {
  JsonValue root;
  if (!JsonReader(json).parse(root, error)) return false;
  if (string_or(root.find("schema"), "") != "gpumip.timeseries.v1") {
    error = "unexpected time-series schema '" + string_or(root.find("schema"), "") + "'";
    return false;
  }
  out = TimeSeries{};
  out.period = number_or(root.find("period"), 0.0);
  out.dropped = static_cast<std::uint64_t>(number_or(root.find("dropped"), 0.0));
  const JsonValue* columns = root.find("columns");
  if (columns == nullptr || columns->type != JsonValue::Type::kArray) {
    error = "document has no columns array";
    return false;
  }
  for (const JsonValue& col : columns->array) {
    out.columns.push_back(string_or(col.find("name"), "?") + ":" +
                          string_or(col.find("kind"), "?"));
  }
  const JsonValue* rows = root.find("rows");
  if (rows == nullptr || rows->type != JsonValue::Type::kArray) {
    error = "document has no rows array";
    return false;
  }
  for (const JsonValue& row : rows->array) {
    out.ts.push_back(number_or(row.find("ts"), 0.0));
    std::vector<double> values;
    if (const JsonValue* vs = row.find("values");
        vs != nullptr && vs->type == JsonValue::Type::kArray) {
      for (const JsonValue& v : vs->array) values.push_back(v.number);
    }
    if (values.size() != out.columns.size()) {
      error = "row " + std::to_string(out.rows.size()) + " has " +
              std::to_string(values.size()) + " values for " +
              std::to_string(out.columns.size()) + " columns";
      return false;
    }
    out.rows.push_back(std::move(values));
  }
  return true;
}

const std::vector<std::string>& category_ids() {
  static const std::vector<std::string> kIds = {
      "transfer", "c3_basis", "c4_cuts", "c5_memory",
      "c6_method", "c7_batch", "c8_scale", "other",
  };
  return kIds;
}

std::string category_of(const std::string& metric_name) {
  const std::string name = strip_labels(metric_name);
  // Exclusions first: the observability layer's own bookkeeping (trace
  // drops, sampler overhead) and host-timing noise must not be blamed for
  // a solver regression — same stance as scripts/bench_compare.py.
  if (starts_with(name, "gpumip.obs.")) return "";
  if (ends_with(name, ".idle_seconds")) return "";
  if (name == "gpumip.supervisor.checkpoints") return "";

  if (starts_with(name, "gpumip.gpu.xfer.")) return "transfer";
  if (starts_with(name, "gpumip.lp.ops.")) return "c3_basis";
  if (starts_with(name, "gpumip.mip.cuts.") || starts_with(name, "gpumip.cuts.")) {
    return "c4_cuts";
  }
  if (starts_with(name, "gpumip.gpu.alloc") || starts_with(name, "gpumip.gpu.free") ||
      starts_with(name, "gpumip.gpu.arena") || starts_with(name, "gpumip.mip.reuse.") ||
      starts_with(name, "gpumip.mip.pool.")) {
    return "c5_memory";
  }
  if (starts_with(name, "gpumip.lp.batch.")) return "c7_batch";
  if (starts_with(name, "gpumip.lp.method") || starts_with(name, "gpumip.lp.solve") ||
      starts_with(name, "gpumip.lp.pdhg.") || starts_with(name, "gpumip.lp.ipm.") ||
      starts_with(name, "gpumip.lp.simplex.")) {
    return "c6_method";
  }
  if (starts_with(name, "gpumip.simmpi.") || starts_with(name, "gpumip.supervisor.")) {
    return "c8_scale";
  }
  return "other";
}

Profile build_profile(const BenchDoc& run, const tracetool::Trace* trace,
                      const TimeSeries* series) {
  Profile profile;
  std::map<std::string, CategoryTotal> totals;
  for (const std::string& id : category_ids()) totals[id].category = id;
  for (const auto& [bench, snap] : run.benches) {
    auto account = [&totals](const std::map<std::string, double>& values) {
      for (const auto& [name, value] : values) {
        const std::string cat = category_of(name);
        if (cat.empty()) continue;
        ++totals[cat].metrics;
        totals[cat].total += value;
      }
    };
    account(snap.counters);
    account(snap.gauges);
  }
  for (const std::string& id : category_ids()) profile.categories.push_back(totals[id]);

  if (trace != nullptr) {
    profile.has_trace = true;
    profile.trace = tracetool::analyze(*trace);
  }
  if (series != nullptr) {
    profile.has_timeseries = true;
    profile.timeseries_rows = series->ts.size();
    if (series->ts.size() >= 2) {
      profile.timeseries_span = series->ts.back() - series->ts.front();
    }
  }
  return profile;
}

Attribution attribute(const BenchDoc& base, const BenchDoc& current) {
  Attribution out;
  std::map<std::string, CategoryDelta> per_category;

  auto score_kind = [&](const std::string& bench, const std::map<std::string, double>& raw_base,
                        const std::map<std::string, double>& raw_cur) {
    // Per-rank splits are summed into their family total first: rank
    // assignment is race-dependent across correct runs, and a 49-byte
    // rank shard doubling would otherwise outscore a real regression.
    const std::map<std::string, double> base_map = aggregate_rank_splits(raw_base);
    const std::map<std::string, double> cur_map = aggregate_rank_splits(raw_cur);
    // Union of names: a metric missing from one side scores against zero
    // (appearing or vanishing entirely is itself a signal).
    std::vector<std::string> names;
    for (const auto& [name, v] : base_map) names.push_back(name);
    for (const auto& [name, v] : cur_map) {
      if (base_map.find(name) == base_map.end()) names.push_back(name);
    }
    for (const std::string& name : names) {
      const std::string cat = category_of(name);
      if (cat.empty()) continue;
      const auto b = base_map.find(name);
      const auto c = cur_map.find(name);
      const double base_value = b == base_map.end() ? 0.0 : b->second;
      const double cur_value = c == cur_map.end() ? 0.0 : c->second;
      const double delta = std::fabs(cur_value - base_value);
      ++out.metrics_compared;
      if (delta == 0.0) continue;
      MetricDelta md;
      md.bench = bench;
      md.name = name;
      md.base = base_value;
      md.current = cur_value;
      md.score = delta / std::max(std::fabs(base_value), kScoreFloor);
      CategoryDelta& cd = per_category[cat];
      cd.category = cat;
      cd.score += md.score;
      cd.top.push_back(std::move(md));
    }
  };

  for (const auto& [bench, base_snap] : base.benches) {
    const auto cur_it = current.benches.find(bench);
    static const MetricsSnapshot kEmpty;
    const MetricsSnapshot& cur_snap = cur_it == current.benches.end() ? kEmpty : cur_it->second;
    score_kind(bench, base_snap.counters, cur_snap.counters);
    score_kind(bench, base_snap.gauges, cur_snap.gauges);
  }
  for (const auto& [bench, cur_snap] : current.benches) {
    if (base.benches.find(bench) != base.benches.end()) continue;
    static const MetricsSnapshot kEmpty;
    score_kind(bench, kEmpty.counters, cur_snap.counters);
    score_kind(bench, kEmpty.gauges, cur_snap.gauges);
  }

  for (auto& [cat, cd] : per_category) {
    std::sort(cd.top.begin(), cd.top.end(),
              [](const MetricDelta& a, const MetricDelta& b) { return a.score > b.score; });
    if (cd.top.size() > 3) cd.top.resize(3);
    out.ranked.push_back(std::move(cd));
  }
  std::sort(out.ranked.begin(), out.ranked.end(),
            [](const CategoryDelta& a, const CategoryDelta& b) { return a.score > b.score; });
  return out;
}

std::string format_profile(const Profile& profile) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(6);
  out << "claim categories (counter/gauge mass per paper claim):\n";
  for (const CategoryTotal& ct : profile.categories) {
    out << "  " << ct.category << ": " << ct.metrics << " metric(s), total " << ct.total
        << "\n";
  }
  if (profile.has_trace) {
    out << "timeline (gpumip-trace analysis):\n";
    out << "  makespan " << profile.trace.makespan_seconds << "s, "
        << profile.trace.critical_path.size() << " critical hop(s)\n";
    for (const tracetool::RankBreakdown& rb : profile.trace.ranks) {
      out << "  rank " << rb.rank << ": busy " << rb.busy_seconds << "s, blocked "
          << rb.blocked_seconds << "s, idle " << rb.idle_seconds << "s\n";
    }
  }
  if (profile.has_timeseries) {
    out << "time series: " << profile.timeseries_rows << " row(s) spanning "
        << profile.timeseries_span << "s\n";
  }
  return out.str();
}

std::string format_attribution(const Attribution& attribution) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(6);
  out << "attribution (" << attribution.metrics_compared << " metrics compared, "
      << attribution.ranked.size() << " categor(ies) moved):\n";
  int rank = 0;
  for (const CategoryDelta& cd : attribution.ranked) {
    out << "  #" << ++rank << " " << cd.category << " score " << cd.score << "\n";
    for (const MetricDelta& md : cd.top) {
      out << "       " << md.bench << ": " << md.name << " " << md.base << " -> " << md.current
          << " (score " << md.score << ")\n";
    }
  }
  if (attribution.ranked.empty()) out << "  (no attributable metric moved)\n";
  return out.str();
}

// ---- self-check fixtures ---------------------------------------------------

namespace {

/// Metrics v2 export exercising labels, families, and every histogram
/// field the parser folds away.
const char* kMetricsV2Fixture = R"json({
  "schema": "gpumip.metrics.v2",
  "enabled": true,
  "families": [
    "gpumip.lp.solves{method}"
  ],
  "counters": {
    "gpumip.gpu.xfer.h2d.bytes": 4096,
    "gpumip.lp.solves{method=pdhg}": 7,
    "gpumip.lp.solves{method=simplex}": 21,
    "gpumip.obs.trace.dropped": 5
  },
  "gauges": {
    "gpumip.mip.reuse.hit_rate": 0.75
  },
  "histograms": {
    "gpumip.lp.solve.seconds{method=simplex}": {"count": 21, "sum": 0.42, "min": 0.01,
      "max": 0.05, "mean": 0.02, "p50": 0.02, "p90": 0.04, "p99": 0.05}
  }
})json";

/// Two-bench baseline with known category masses.
const char* kBaselineFixture = R"json({
  "schema": "gpumip.bench-baseline.v1",
  "benches": {
    "e1": {
      "counters": {
        "gpumip.gpu.xfer.h2d.bytes": 1000,
        "gpumip.gpu.xfer.d2h.bytes": 500,
        "gpumip.lp.ops.refactor": 40,
        "gpumip.mip.cuts.generated": 12,
        "gpumip.obs.trace.dropped": 9
      },
      "gauges": {"gpumip.mip.reuse.hit_rate": 0.5}
    },
    "e8": {
      "counters": {
        "gpumip.simmpi.sent.bytes{rank=0}": 2048,
        "gpumip.supervisor.checkpoints": 3
      },
      "gauges": {"gpumip.simmpi.recv.idle_seconds{rank=1}": 1.25}
    }
  }
})json";

/// The committed-drill shape: same run with H2D volume doubled and one
/// benign 1% wobble elsewhere. Attribution must rank transfer first.
const char* kRegressionFixture = R"json({
  "schema": "gpumip.bench-baseline.v1",
  "benches": {
    "e1": {
      "counters": {
        "gpumip.gpu.xfer.h2d.bytes": 2000,
        "gpumip.gpu.xfer.d2h.bytes": 500,
        "gpumip.lp.ops.refactor": 40,
        "gpumip.mip.cuts.generated": 12,
        "gpumip.obs.trace.dropped": 999
      },
      "gauges": {"gpumip.mip.reuse.hit_rate": 0.505}
    },
    "e8": {
      "counters": {
        "gpumip.simmpi.sent.bytes{rank=0}": 2048,
        "gpumip.supervisor.checkpoints": 30
      },
      "gauges": {"gpumip.simmpi.recv.idle_seconds{rank=1}": 99.0}
    }
  }
})json";

/// Rank-aggregation pair: the per-rank byte split shuffles (race-dependent
/// dispatch) while the family total stays put; only the H2D move is real.
const char* kRankJitterBase = R"json({
  "schema": "gpumip.bench-baseline.v1",
  "benches": {
    "e8": {
      "counters": {
        "gpumip.simmpi.sent.bytes{rank=0}": 49,
        "gpumip.simmpi.sent.bytes{rank=1}": 322,
        "gpumip.gpu.xfer.h2d.bytes": 1000
      }
    }
  }
})json";

const char* kRankJitterCurrent = R"json({
  "schema": "gpumip.bench-baseline.v1",
  "benches": {
    "e8": {
      "counters": {
        "gpumip.simmpi.sent.bytes{rank=0}": 322,
        "gpumip.simmpi.sent.bytes{rank=1}": 49,
        "gpumip.gpu.xfer.h2d.bytes": 1100
      }
    }
  }
})json";

const char* kTimeSeriesFixture = R"json({
  "schema": "gpumip.timeseries.v1",
  "period": 0.001,
  "dropped": 0,
  "columns": [
    {"name": "gpumip.supervisor.dispatched", "kind": "counter"}
  ],
  "rows": [
    {"ts": 0.001, "sim": true, "values": [2]},
    {"ts": 0.002, "sim": true, "values": [3]},
    {"ts": 0.004, "sim": true, "values": [1]}
  ]
})json";

bool near(double a, double b) { return std::fabs(a - b) < 1e-12; }

}  // namespace

bool run_self_check(std::ostream& out) {
  bool ok = true;
  auto expect = [&](bool cond, const std::string& what) {
    out << "  [" << (cond ? "PASS" : "FAIL") << "] " << what << "\n";
    if (!cond) ok = false;
  };

  std::string error;

  MetricsSnapshot snap;
  expect(parse_metrics(kMetricsV2Fixture, snap, error), "metrics v2 parses (" + error + ")");
  expect(snap.enabled && snap.schema == "gpumip.metrics.v2", "v2 schema + enabled decoded");
  expect(snap.counters.size() == 4 &&
             near(snap.counters.at("gpumip.lp.solves{method=pdhg}"), 7.0),
         "labeled counters decoded");
  expect(snap.histograms.size() == 1 &&
             near(snap.histograms.at("gpumip.lp.solve.seconds{method=simplex}").second, 0.42),
         "histogram folded to (count, sum)");

  expect(category_of("gpumip.gpu.xfer.h2d.bytes") == "transfer" &&
             category_of("gpumip.lp.ops.refactor") == "c3_basis" &&
             category_of("gpumip.mip.cuts.generated") == "c4_cuts" &&
             category_of("gpumip.gpu.alloc.calls") == "c5_memory" &&
             category_of("gpumip.lp.solves{method=pdhg}") == "c6_method" &&
             category_of("gpumip.lp.batch.occupancy") == "c7_batch" &&
             category_of("gpumip.simmpi.sent.bytes{rank=0}") == "c8_scale" &&
             category_of("gpumip.mip.nodes") == "other",
         "category mapping covers the claim families");
  expect(category_of("gpumip.obs.trace.dropped").empty() &&
             category_of("gpumip.obs.sampler.samples").empty() &&
             category_of("gpumip.simmpi.recv.idle_seconds{rank=1}").empty() &&
             category_of("gpumip.supervisor.checkpoints").empty(),
         "obs bookkeeping and host-timing noise excluded");

  BenchDoc base;
  BenchDoc regression;
  expect(parse_bench_doc(kBaselineFixture, base, error), "baseline parses (" + error + ")");
  expect(parse_bench_doc(kRegressionFixture, regression, error),
         "regression parses (" + error + ")");
  expect(base.benches.size() == 2, "two benches decoded");

  const Profile profile = build_profile(base, nullptr, nullptr);
  double transfer_mass = 0.0;
  for (const CategoryTotal& ct : profile.categories) {
    if (ct.category == "transfer") transfer_mass = ct.total;
  }
  expect(near(transfer_mass, 1500.0), "profile sums transfer mass 1500");

  const Attribution attribution = attribute(base, regression);
  expect(!attribution.ranked.empty(), "attribution found moved categories");
  expect(!attribution.ranked.empty() && attribution.ranked.front().category == "transfer",
         "doubled H2D volume ranks transfer first");
  expect(!attribution.ranked.empty() && !attribution.ranked.front().top.empty() &&
             attribution.ranked.front().top.front().name == "gpumip.gpu.xfer.h2d.bytes",
         "top contributor is the H2D byte counter");
  for (const CategoryDelta& cd : attribution.ranked) {
    for (const MetricDelta& md : cd.top) {
      expect(category_of(md.name) != "", "no excluded metric leaked into attribution");
    }
  }

  const Attribution clean = attribute(base, base);
  expect(clean.ranked.empty(), "identical runs attribute to nothing");

  // Rank shuffles between two correct runs must cancel in the family
  // total: opposing per-rank jitter scores zero, the real H2D move wins.
  BenchDoc jitter_base, jitter_cur;
  expect(parse_bench_doc(kRankJitterBase, jitter_base, error) &&
             parse_bench_doc(kRankJitterCurrent, jitter_cur, error),
         "rank-jitter fixtures parse (" + error + ")");
  const Attribution jittered = attribute(jitter_base, jitter_cur);
  expect(jittered.ranked.size() == 1 && jittered.ranked.front().category == "transfer",
         "opposing rank jitter aggregates away; only transfer moves");
  bool c8_seen = false;
  for (const CategoryDelta& cd : jittered.ranked) c8_seen |= cd.category == "c8_scale";
  expect(!c8_seen, "race-shuffled rank splits do not move c8_scale");

  TimeSeries series;
  expect(parse_timeseries(kTimeSeriesFixture, series, error),
         "time series parses (" + error + ")");
  expect(series.columns.size() == 1 && series.rows.size() == 3 && near(series.ts.back(), 0.004),
         "time-series columns and rows decoded");
  const Profile with_series = build_profile(base, nullptr, &series);
  expect(with_series.has_timeseries && near(with_series.timeseries_span, 0.003),
         "profile reports time-series span");

  // Degenerate inputs must be rejected, not misreported.
  MetricsSnapshot bad;
  expect(!parse_metrics("{\"schema\": \"gpumip.metrics.v9\", \"counters\": {}}", bad, error),
         "unknown metrics schema rejected");
  BenchDoc bad_doc;
  expect(!parse_bench_doc("{\"schema\": \"gpumip.bench-baseline.v1\"}", bad_doc, error),
         "baseline without benches rejected");
  TimeSeries bad_series;
  expect(!parse_timeseries(
             "{\"schema\": \"gpumip.timeseries.v1\", \"columns\": [], "
             "\"rows\": [{\"ts\": 0, \"values\": [1]}]}",
             bad_series, error),
         "row/column arity mismatch rejected");
  return ok;
}

}  // namespace gpumip::reporttool
