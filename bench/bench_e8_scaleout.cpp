// E8 — supervisor-worker scale-out (paper sections 2.2/2.3, claim C8).
//
// UG/ParaSCIP-style coordination over simmpi ranks: speedup vs worker
// count, ramp-up share, load-balance quality, message volume, and the cost
// of periodic checkpointing.
#include <cmath>
#include <memory>

#include "bench/common.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "parallel/supervisor.hpp"
#include "problems/generators.hpp"
#include "support/strings.hpp"

namespace {

using namespace gpumip;

mip::MipModel instance(std::uint64_t seed) {
  Rng rng(seed);
  problems::RandomMipConfig cfg;
  cfg.rows = 16;
  cfg.cols = 28;
  cfg.bound = 4.0;
  return problems::random_mip(cfg, rng);
}

double balance_cv(const std::vector<long>& nodes) {
  if (nodes.empty()) return 0.0;
  double mean = 0.0;
  for (long n : nodes) mean += static_cast<double>(n);
  mean /= static_cast<double>(nodes.size());
  if (mean == 0.0) return 0.0;
  double var = 0.0;
  for (long n : nodes) var += (n - mean) * (n - mean);
  return std::sqrt(var / static_cast<double>(nodes.size())) / mean;
}

void print_experiment() {
  bench::title("E8", "scale-out: speedup, ramp-up, load balance, traffic");
  mip::MipModel model = instance(501);
  bench::row("  instance: %d cols, %d rows", model.num_cols(), model.num_rows());
  bench::row("  %-9s %-10s %-12s %-9s %-10s %-10s %-9s %-10s", "workers", "obj",
             "makespan", "speedup", "ramp-up%", "balance-cv", "msgs", "bytes");
  double base = 0.0;
  for (int workers : {1, 2, 4, 8, 16, 32}) {
    parallel::SupervisorOptions opts;
    opts.workers = workers;
    opts.worker_node_budget = 15;
    opts.ramp_up_nodes = 4L * workers;
    opts.mip.enable_cuts = false;
    opts.model_worker_device = true;  // arena-backed per-node LP residency
    // The tree-growth-over-time curve for EXPERIMENTS.md: at one
    // representative worker count, attach a sampler ticked on the
    // supervisor rank's sim clock (bit-identical under schedule replay)
    // and export it when GPUMIP_TIMESERIES_OUT is set. Constructed here —
    // after the smaller worker counts have registered every supervisor
    // and simmpi family — so the default registry-wide columns are
    // complete. The period scales off the single-worker makespan.
    std::unique_ptr<obs::Sampler> sampler;
    if (workers == 8 && base > 0.0) {
      obs::SamplerOptions sopts;
      sopts.period = base / 128.0;
      sampler = std::make_unique<obs::Sampler>(sopts);
      opts.sampler = sampler.get();
    }
    parallel::SupervisorResult r = parallel::solve_supervised(model, opts);
    if (workers == 1) base = r.makespan;
    if (sampler) {
      const std::string path = sampler->export_if_requested();
      if (!path.empty()) {
        bench::row("  time series (workers=8): %zu rows -> %s", sampler->rows().size(),
                   path.c_str());
      }
    }
    bench::row("  %-9d %-10.3f %-12s %-9.2f %-10.1f %-10.2f %-9llu %-10s", workers,
               r.result.objective, human_seconds(r.makespan).c_str(), base / r.makespan,
               100.0 * r.ramp_up_seconds / r.makespan, balance_cv(r.worker_nodes),
               static_cast<unsigned long long>(r.network.messages),
               human_bytes(r.network.bytes).c_str());
  }
  bench::note("expected shape: near-linear speedup at small worker counts, flattening as");
  bench::note("ramp-up (serial) and the shrinking frontier starve workers; message volume");
  bench::note("grows with workers (the coordination overhead the paper attributes to UG).");
}

void checkpoint_overhead() {
  bench::title("E8-b", "checkpointing overhead");
  mip::MipModel model = instance(502);
  for (int interval : {0, 8, 2}) {
    parallel::SupervisorOptions opts;
    opts.workers = 4;
    opts.worker_node_budget = 15;
    opts.ramp_up_nodes = 16;
    opts.mip.enable_cuts = false;
    long checkpoints = 0;
    if (interval > 0) {
      opts.checkpoint_interval = interval;
      opts.on_checkpoint = [&](const mip::ConsistentSnapshot&) { ++checkpoints; };
    }
    parallel::SupervisorResult r = parallel::solve_supervised(model, opts);
    bench::row("  interval=%-3d -> %ld checkpoints, makespan %s, obj %.3f", interval,
               checkpoints, human_seconds(r.makespan).c_str(), r.result.objective);
  }
}

void budget_sweep() {
  bench::title("E8-c", "worker node-budget (load-balancing granularity)");
  mip::MipModel model = instance(503);
  bench::row("  %-9s %-12s %-12s %-10s %-9s", "budget", "makespan", "dispatched",
             "balance-cv", "msgs");
  for (long budget : {5, 15, 50, 200}) {
    parallel::SupervisorOptions opts;
    opts.workers = 8;
    opts.worker_node_budget = budget;
    opts.ramp_up_nodes = 32;
    opts.mip.enable_cuts = false;
    parallel::SupervisorResult r = parallel::solve_supervised(model, opts);
    bench::row("  %-9ld %-12s %-12ld %-10.2f %-9llu", budget,
               human_seconds(r.makespan).c_str(), r.subproblems_dispatched,
               balance_cv(r.worker_nodes),
               static_cast<unsigned long long>(r.network.messages));
  }
  bench::note("small budgets balance load at the price of traffic; large budgets starve");
  bench::note("late-arriving workers — the supervisor's classic granularity trade-off.");
}

void arena_ablation() {
  bench::title("E8-d", "per-node device allocs: naive alloc/free vs worker arena");
  mip::MipModel model = instance(505);
  bench::row("  %-9s %-12s %-14s %-12s", "arena", "makespan", "alloc-calls", "nodes");
  for (bool arena : {false, true}) {
    parallel::SupervisorOptions opts;
    opts.workers = 8;
    opts.worker_node_budget = 15;
    opts.ramp_up_nodes = 32;
    opts.mip.enable_cuts = false;
    opts.model_worker_device = true;
    opts.worker_arena = arena;
    const double before = obs::counter("gpumip.gpu.alloc.calls").value();
    parallel::SupervisorResult r = parallel::solve_supervised(model, opts);
    const double allocs = obs::counter("gpumip.gpu.alloc.calls").value() - before;
    long nodes = 0;
    for (long n : r.worker_nodes) nodes += n;
    bench::row("  %-9s %-12s %-14.0f %-12ld", arena ? "on" : "off",
               human_seconds(r.makespan).c_str(), allocs, nodes);
  }
  bench::note("the arena path reserves one slab per worker and suballocates node LPs from");
  bench::note("it (ROADMAP item 4): alloc calls collapse from O(nodes) to O(workers).");
}

void BM_supervised(benchmark::State& state) {
  mip::MipModel model = instance(504);
  parallel::SupervisorOptions opts;
  opts.workers = static_cast<int>(state.range(0));
  opts.worker_node_budget = 15;
  opts.mip.enable_cuts = false;
  double makespan = 0.0;
  for (auto _ : state) {
    parallel::SupervisorResult r = parallel::solve_supervised(model, opts);
    makespan = r.makespan;
    benchmark::DoNotOptimize(r.result.objective);
  }
  state.counters["sim_makespan_us"] = makespan * 1e6;
}
BENCHMARK(BM_supervised)->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  checkpoint_overhead();
  budget_sweep();
  arena_ablation();
  return gpumip::bench::run_benchmarks(argc, argv);
}
