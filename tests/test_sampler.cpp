// Tests for the sim-clock time-series sampler (src/obs/sampler.hpp):
// period-boundary semantics, delta/level column kinds, explicit-column
// resolution, drop accounting, JSON layout, thread-local binding, and —
// the load-bearing property — bit-identical sim-stamped rows under
// schedule replay of a supervised solve.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "parallel/supervisor.hpp"
#include "problems/generators.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace gpumip {
namespace {

using obs::ColumnKind;
using obs::Sampler;
using obs::SamplerOptions;

SamplerOptions explicit_columns(std::vector<std::string> names, double period = 1.0) {
  SamplerOptions options;
  options.period = period;
  options.columns = std::move(names);
  return options;
}

TEST(SamplerTicks, RowsAppearOnlyAtPeriodBoundaries) {
  obs::counter("test.sampler.ticks.c").reset();
  Sampler sampler(explicit_columns({"test.sampler.ticks.c"}, 1.0));
  ASSERT_EQ(sampler.columns().size(), 1u);

  sampler.tick_sim(0.0);  // anchors the grid, no row
  EXPECT_TRUE(sampler.rows().empty());
  sampler.tick_sim(0.5);  // boundary at 1.0 not crossed yet
  EXPECT_TRUE(sampler.rows().empty());
  obs::counter("test.sampler.ticks.c").add(3);
  sampler.tick_sim(1.25);
  ASSERT_EQ(sampler.rows().size(), 1u);
  EXPECT_DOUBLE_EQ(sampler.rows()[0].ts, 1.0);  // stamped at the boundary
  EXPECT_TRUE(sampler.rows()[0].sim_time);
  EXPECT_DOUBLE_EQ(sampler.rows()[0].values[0], 3.0);

  // A tick that crosses several boundaries coalesces into ONE row stamped
  // at the last crossed boundary.
  obs::counter("test.sampler.ticks.c").add(2);
  sampler.tick_sim(5.75);
  ASSERT_EQ(sampler.rows().size(), 2u);
  EXPECT_DOUBLE_EQ(sampler.rows()[1].ts, 5.0);
  EXPECT_DOUBLE_EQ(sampler.rows()[1].values[0], 2.0);
}

TEST(SamplerColumns, KindsResolveAndDeltasVsLevels) {
  obs::counter("test.sampler.kinds.c").reset();
  obs::gauge("test.sampler.kinds.g").set(0.0);
  obs::histogram("test.sampler.kinds.h").reset();
  obs::counter("test.sampler.kinds.c").add(10);
  obs::gauge("test.sampler.kinds.g").set(4.0);
  obs::histogram("test.sampler.kinds.h").record(2.0);

  Sampler sampler(explicit_columns(
      {"test.sampler.kinds.c", "test.sampler.kinds.g", "test.sampler.kinds.h"}));
  // The histogram expands into count+sum columns.
  ASSERT_EQ(sampler.columns().size(), 4u);
  EXPECT_EQ(sampler.columns()[0].kind, ColumnKind::Counter);
  EXPECT_EQ(sampler.columns()[1].kind, ColumnKind::Gauge);
  EXPECT_EQ(sampler.columns()[2].kind, ColumnKind::HistCount);
  EXPECT_EQ(sampler.columns()[3].kind, ColumnKind::HistSum);

  obs::counter("test.sampler.kinds.c").add(5);
  obs::gauge("test.sampler.kinds.g").set(7.5);
  obs::histogram("test.sampler.kinds.h").record(3.0);
  obs::histogram("test.sampler.kinds.h").record(5.0);
  sampler.sample_now(1.0, true);

  const auto& row = sampler.rows().at(0);
  EXPECT_DOUBLE_EQ(row.values[0], 5.0);  // counter: delta since baseline
  EXPECT_DOUBLE_EQ(row.values[1], 7.5);  // gauge: level, not delta
  EXPECT_DOUBLE_EQ(row.values[2], 2.0);  // hist count delta
  EXPECT_DOUBLE_EQ(row.values[3], 8.0);  // hist sum delta

  // Nothing changed: the next row is all zeros except the gauge level.
  sampler.sample_now(2.0, true);
  const auto& row2 = sampler.rows().at(1);
  EXPECT_DOUBLE_EQ(row2.values[0], 0.0);
  EXPECT_DOUBLE_EQ(row2.values[1], 7.5);
  EXPECT_DOUBLE_EQ(row2.values[2], 0.0);
}

TEST(SamplerColumns, MissingInstrumentsReadZeroAndAreNotCreated) {
  Sampler sampler(explicit_columns({"test.sampler.phantom.never"}));
  sampler.sample_now(1.0, true);
  EXPECT_DOUBLE_EQ(sampler.rows().at(0).values.at(0), 0.0);
  // Probing must not have registered a phantom instrument.
  EXPECT_EQ(obs::Registry::instance().find_counter("test.sampler.phantom.never"), nullptr);
}

TEST(SamplerLimits, RowsBeyondMaxSamplesAreDroppedAndCounted) {
  SamplerOptions options = explicit_columns({"test.sampler.limit.c"});
  options.max_samples = 2;
  Sampler sampler(options);
  for (int i = 0; i < 5; ++i) sampler.sample_now(static_cast<double>(i), true);
  EXPECT_EQ(sampler.rows().size(), 2u);
  EXPECT_EQ(sampler.dropped(), 3u);
}

TEST(SamplerLimits, BadPeriodIsRejected) {
  SamplerOptions options;
  options.period = 0.0;
  EXPECT_THROW(Sampler{options}, Error);
}

TEST(SamplerJson, SchemaColumnsAndRows) {
  obs::counter("test.sampler.json.c").reset();
  Sampler sampler(explicit_columns({"test.sampler.json.c"}));
  obs::counter("test.sampler.json.c").add(2);
  sampler.sample_now(0.5, true);
  sampler.tick_wall();

  const std::string json = sampler.to_json();
  EXPECT_NE(json.find("\"schema\": \"gpumip.timeseries.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"period\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"test.sampler.json.c\", \"kind\": \"counter\""),
            std::string::npos);
  EXPECT_NE(json.find("\"ts\": 0.5, \"sim\": true, \"values\": [2]"), std::string::npos);
}

TEST(SamplerBind, TickBoundRoutesToTheBoundSamplerOnly) {
  obs::counter("test.sampler.bind.c").reset();
  Sampler::tick_bound(100.0);  // unbound: must be a harmless no-op
  EXPECT_EQ(Sampler::bound(), nullptr);

  Sampler outer(explicit_columns({"test.sampler.bind.c"}));
  {
    Sampler::Bind bind_outer(outer);
    EXPECT_EQ(Sampler::bound(), &outer);
    Sampler inner(explicit_columns({"test.sampler.bind.c"}));
    {
      Sampler::Bind bind_inner(inner);
      EXPECT_EQ(Sampler::bound(), &inner);
      inner.tick_sim(0.0);
      Sampler::tick_bound(2.5);
      EXPECT_EQ(inner.rows().size(), 1u);
      EXPECT_TRUE(outer.rows().empty());
    }
    EXPECT_EQ(Sampler::bound(), &outer);  // nesting restores the previous
  }
  EXPECT_EQ(Sampler::bound(), nullptr);
}

TEST(SamplerDefaults, RegistryWideColumnsCoverSolverInstrumentsOnly) {
  obs::counter("gpumip.test_sampler.default.c").add(1);
  obs::counter("test.sampler.default.other").add(1);
  Sampler sampler{SamplerOptions{}};
  bool saw_solver = false;
  for (const auto& col : sampler.columns()) {
    EXPECT_EQ(col.name.rfind("gpumip.", 0), 0u) << col.name;
    if (col.name == "gpumip.test_sampler.default.c") saw_solver = true;
  }
  EXPECT_TRUE(saw_solver);
}

// The tentpole determinism property: a supervised solve under a recorded
// schedule, replayed, produces bit-identical sim-stamped rows. The sampled
// columns are the supervisor rank's own progress counters — mutated only
// on the sampling thread's deterministic path (the ownership contract in
// docs/METRICS.md).
TEST(SamplerReplay, SupervisedRowsAreBitIdenticalUnderScheduleReplay) {
  Rng rng(77);
  problems::RandomMipConfig cfg;
  cfg.rows = 14;
  cfg.cols = 26;
  cfg.bound = 4.0;
  const mip::MipModel m = problems::random_mip(cfg, rng);

  const std::vector<std::string> columns = {
      "gpumip.supervisor.dispatched",
      "gpumip.supervisor.completed",
      "gpumip.supervisor.checkpoints",
  };
  const double period = 1e-4;

  auto run_with = [&](parallel::DeliveryTrace* record, const parallel::DeliveryTrace* replay,
                      std::uint64_t seed) {
    Sampler sampler(explicit_columns(columns, period));
    parallel::SupervisorOptions opts;
    opts.workers = 3;
    opts.worker_node_budget = 8;
    opts.ramp_up_nodes = 12;
    opts.mip.enable_cuts = false;
    opts.sampler = &sampler;
    opts.schedule.fuzz = replay == nullptr;
    opts.schedule.seed = replay == nullptr ? seed : 0;
    opts.schedule.record = record;
    opts.schedule.replay = replay;
    parallel::SupervisorResult r = parallel::solve_supervised(m, opts);
    EXPECT_EQ(r.result.status, mip::MipStatus::Optimal);
    return sampler;
  };

  for (std::uint64_t seed : {3u, 1017u}) {
    parallel::DeliveryTrace recorded;
    const Sampler first = run_with(&recorded, nullptr, seed);
    ASSERT_FALSE(recorded.empty());
    const Sampler second = run_with(nullptr, &recorded, seed);

    if (!obs::kObsEnabled) continue;  // counters never move in OFF builds
    ASSERT_FALSE(first.rows().empty()) << "seed " << seed;
    ASSERT_EQ(first.rows().size(), second.rows().size()) << "seed " << seed;
    for (std::size_t i = 0; i < first.rows().size(); ++i) {
      const auto& a = first.rows()[i];
      const auto& b = second.rows()[i];
      // Bit-identical, not approximately equal: memcmp on the doubles.
      EXPECT_EQ(std::memcmp(&a.ts, &b.ts, sizeof(double)), 0)
          << "seed " << seed << " row " << i << ": " << a.ts << " vs " << b.ts;
      EXPECT_TRUE(a.sim_time);
      ASSERT_EQ(a.values.size(), b.values.size());
      for (std::size_t j = 0; j < a.values.size(); ++j) {
        EXPECT_EQ(std::memcmp(&a.values[j], &b.values[j], sizeof(double)), 0)
            << "seed " << seed << " row " << i << " col " << j;
      }
    }
  }
}

}  // namespace
}  // namespace gpumip
