#include "lp/path_chooser.hpp"

#include <algorithm>

namespace gpumip::lp {

const char* code_path_name(CodePath path) noexcept {
  switch (path) {
    case CodePath::DenseGpu: return "DenseGpu";
    case CodePath::SparseHybrid: return "SparseHybrid";
  }
  return "Unknown";
}

CodePath choose_path(const sparse::Csr& a, const PathChooserOptions& options) {
  if (std::min(a.rows, a.cols) <= options.small_dimension) return CodePath::DenseGpu;
  return a.density() >= options.density_threshold ? CodePath::DenseGpu
                                                  : CodePath::SparseHybrid;
}

}  // namespace gpumip::lp
