#include "linalg/cholesky.hpp"

#include <cmath>

#include "linalg/blas.hpp"

namespace gpumip::linalg {

DenseCholesky::DenseCholesky(const Matrix& a, double ridge) : l_(a) {
  check_arg(a.rows() == a.cols(), "Cholesky requires a square matrix");
  const int n = a.rows();
  if (ridge != 0.0) {
    for (int i = 0; i < n; ++i) l_(i, i) += ridge;
  }
  for (int j = 0; j < n; ++j) {
    double diag = l_(j, j);
    for (int k = 0; k < j; ++k) diag -= l_(j, k) * l_(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      l_ = Matrix();
      throw NumericalError("Cholesky: matrix not positive definite at column " +
                           std::to_string(j));
    }
    const double ljj = std::sqrt(diag);
    l_(j, j) = ljj;
    for (int i = j + 1; i < n; ++i) {
      double sum = l_(i, j);
      for (int k = 0; k < j; ++k) sum -= l_(i, k) * l_(j, k);
      l_(i, j) = sum / ljj;
    }
    for (int i = 0; i < j; ++i) l_(i, j) = 0.0;  // keep strictly lower form clean
  }
}

Vector DenseCholesky::solve(std::span<const double> b) const {
  check_arg(valid(), "Cholesky::solve on empty factorization");
  check_arg(static_cast<int>(b.size()) == order(), "Cholesky::solve: size mismatch");
  Vector x(b.begin(), b.end());
  trsv_lower(l_, x, /*unit_diagonal=*/false);
  trsv_lower_t(l_, x, /*unit_diagonal=*/false);
  return x;
}

}  // namespace gpumip::linalg
