// Schedule-space validators (header-only, like the structural validators in
// invariants.hpp: no link dependency on the modules they inspect).
//
// PR 1's validators prove properties of one state; these prove properties
// ACROSS executions: a parallel solve must produce the same answer under
// every legal message-delivery order (order-independence, the property the
// paper's consistent-snapshot argument in §2.1 leans on), and every run's
// delivery trace must respect the simmpi concurrency model (Lamport clocks
// never regress, per-source FIFO never violated).
//
// Usage (see tests/test_schedule.cpp and scripts/check.sh):
//
//   check::check_schedule_determinism(
//       [&](std::uint64_t seed) { return outcome_of(solve_under(seed)); },
//       seeds);
//
// Outcomes are compared bit-for-bit: the supervised search is exhaustive,
// so the incumbent objective/bound/point must not depend on which schedule
// the fuzzer produced. Any divergence throws Error(kInternal) naming the
// two seeds.
#pragma once

#include <cmath>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "check/registry.hpp"
#include "obs/trace.hpp"
#include "parallel/schedule.hpp"
#include "support/error.hpp"

namespace gpumip::check {

/// The order-independent fingerprint of one parallel solve.
struct ScheduleOutcome {
  bool has_solution = false;
  double objective = 0.0;
  double bound = 0.0;
  std::vector<double> x;

  friend bool operator==(const ScheduleOutcome& a, const ScheduleOutcome& b) {
    // Bit-identical comparison on purpose: these are outputs of the same
    // deterministic numeric search, only the message schedule differed.
    return a.has_solution == b.has_solution && a.objective == b.objective &&
           a.bound == b.bound && a.x == b.x;
  }

  std::string to_string() const {
    std::ostringstream out;
    out.precision(17);
    out << (has_solution ? "solution" : "no-solution") << " objective=" << objective
        << " bound=" << bound << " |x|=" << x.size();
    return out.str();
  }
};

/// Runs `run(seed)` for every seed and throws Error(kInternal) on the first
/// outcome that differs from the first seed's outcome. `run` must return a
/// ScheduleOutcome (or something convertible to one).
template <typename RunFn>
void check_schedule_determinism(RunFn&& run, std::span<const std::uint64_t> seeds) {
  count_check(Subsystem::kSchedule);
  check_arg(!seeds.empty(), "check_schedule_determinism: need at least one seed");
  std::optional<ScheduleOutcome> reference;
  std::uint64_t reference_seed = 0;
  for (const std::uint64_t seed : seeds) {
    ScheduleOutcome outcome = run(seed);
    if (!reference.has_value()) {
      reference = std::move(outcome);
      reference_seed = seed;
      continue;
    }
    if (!(outcome == *reference)) {
      count_failure(Subsystem::kSchedule);
      throw Error(ErrorCode::kInternal,
                  "schedule determinism violated: seed " + std::to_string(reference_seed) +
                      " -> " + reference->to_string() + " but seed " + std::to_string(seed) +
                      " -> " + outcome.to_string());
    }
  }
}

/// Structural validation of one recorded delivery order:
///  * per-rank Lamport monotonicity — a receiver's simulated clock never
///    regresses across its deliveries (recv merges with max(), advance()
///    only adds nonnegative charges, so a regression means clock
///    accounting is broken);
///  * per-(source, rank) FIFO — sequence numbers are delivered strictly
///    increasing, i.e. the fuzzer's reordering stayed inside the
///    eligibility rule (MPI non-overtaking);
///  * well-formed records (ranks in range when `world_size` is given,
///    nonzero seq, finite clocks).
inline void check_delivery_trace(const parallel::DeliveryTrace& trace, int world_size = -1) {
  count_check(Subsystem::kSchedule);
  auto fail = [](const std::string& message) {
    count_failure(Subsystem::kSchedule);
    throw Error(ErrorCode::kInternal, "delivery trace: " + message);
  };
  std::map<int, double> last_clock;                             // rank -> clock
  std::map<std::pair<int, int>, std::uint64_t> last_seq;        // (source, rank) -> seq
  for (std::size_t i = 0; i < trace.deliveries.size(); ++i) {
    const parallel::DeliveryRecord& record = trace.deliveries[i];
    const std::string at = " (record " + std::to_string(i) + ")";
    if (record.rank < 0 || record.source < 0) fail("negative rank or source" + at);
    if (world_size >= 0 && (record.rank >= world_size || record.source >= world_size)) {
      fail("rank or source out of range" + at);
    }
    if (record.seq == 0) fail("zero sequence number" + at);
    if (!std::isfinite(record.clock) || record.clock < 0.0) {
      fail("non-finite or negative clock" + at);
    }
    auto [clock_it, clock_new] = last_clock.try_emplace(record.rank, record.clock);
    if (!clock_new) {
      if (record.clock < clock_it->second) {
        fail("Lamport clock regressed at rank " + std::to_string(record.rank) + at);
      }
      clock_it->second = record.clock;
    }
    auto [seq_it, seq_new] =
        last_seq.try_emplace({record.source, record.rank}, record.seq);
    if (!seq_new) {
      if (record.seq <= seq_it->second) {
        fail("per-source FIFO violated: source " + std::to_string(record.source) + " -> rank " +
             std::to_string(record.rank) + " delivered seq " + std::to_string(record.seq) +
             " after seq " + std::to_string(seq_it->second) + at);
      }
      seq_it->second = record.seq;
    }
  }
}

/// Replay-equality of two event traces (obs/trace.hpp): a run recorded
/// under the schedule fuzzer and its GPUMIP_SCHEDULE_REPLAY re-execution
/// must produce bit-identical per-rank simulated timelines. Rank-bound
/// events are stamped from the Lamport clock, so with the same delivery
/// order every (kind, name, ts, dur, arg) tuple must match exactly.
///
/// Excluded by design:
///  * `gpumip.simmpi.recv.wait` spans — whether a recv BLOCKS (as opposed
///    to which message it returns) depends on host thread timing, not on
///    the recorded schedule;
///  * wall-clock and unbound-thread events — not part of the simulated
///    timeline contract.
///
/// Callers pass trace::snapshot() of each run and must trace::reset()
/// between the runs so ring reuse cannot interleave the two timelines.
inline void check_trace_replay_equality(std::span<const obs::trace::TraceEvent> recorded,
                                        std::span<const obs::trace::TraceEvent> replayed) {
  count_check(Subsystem::kSchedule);
  auto fail = [](const std::string& message) {
    count_failure(Subsystem::kSchedule);
    throw Error(ErrorCode::kInternal, "trace replay equality: " + message);
  };

  auto per_rank = [](std::span<const obs::trace::TraceEvent> events) {
    std::map<int, std::vector<const obs::trace::TraceEvent*>> out;
    for (const obs::trace::TraceEvent& ev : events) {
      if (!ev.sim_time || ev.rank < 0) continue;
      if (ev.name_view() == "gpumip.simmpi.recv.wait") continue;
      out[ev.rank].push_back(&ev);
    }
    return out;
  };
  const auto a = per_rank(recorded);
  const auto b = per_rank(replayed);
  if (a.size() != b.size()) {
    fail("recorded run has " + std::to_string(a.size()) + " ranks, replay has " +
         std::to_string(b.size()));
  }
  for (const auto& [rank, events] : a) {
    const auto it = b.find(rank);
    if (it == b.end()) fail("rank " + std::to_string(rank) + " missing from replay");
    const auto& other = it->second;
    const std::size_t n = std::min(events.size(), other.size());
    for (std::size_t i = 0; i < n; ++i) {
      const obs::trace::TraceEvent& x = *events[i];
      const obs::trace::TraceEvent& y = *other[i];
      // flow ids are namespaced by a process-global run counter and differ
      // between the two runs by construction; everything else must match.
      if (x.kind != y.kind || x.name_view() != y.name_view() || x.ts != y.ts ||
          x.dur != y.dur || x.arg != y.arg || x.lane != y.lane) {
        std::ostringstream what;
        what.precision(17);
        what << "rank " << rank << " diverges at event " << i << ": recorded ("
             << x.name_view() << ", kind " << static_cast<int>(x.kind) << ", ts " << x.ts
             << ", arg " << x.arg << ") vs replay (" << y.name_view() << ", kind "
             << static_cast<int>(y.kind) << ", ts " << y.ts << ", arg " << y.arg << ")";
        fail(what.str());
      }
    }
    if (events.size() != other.size()) {
      fail("rank " + std::to_string(rank) + " recorded " + std::to_string(events.size()) +
           " events but replayed " + std::to_string(other.size()));
    }
  }
}

}  // namespace gpumip::check
