// gpumip-lint forward dataflow: a small may-analysis framework over the
// CFGs built by cfg.hpp.
//
// The lattice is a map from rule-defined fact keys (a tracked variable, a
// span-depth slot) to 32-bit masks whose bits the rule interprets; join is
// key-wise OR, so a bit survives when ANY path sets it — findings are
// "may happen on some path" claims, matching the tool's over-approximate
// philosophy (extra findings need a justified waiver; missed ones would be
// unsound). Absent keys are bottom (0), which makes the empty map the
// initial state of unreachable nodes for free. The fixpoint is a classic
// worklist iteration; it terminates because states only grow (OR is
// monotone) and the key/bit space is finite, with a step cap as a backstop.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cfg.hpp"

namespace gpumip::lint {

/// Fact key -> bitmask. Rules define the bits (lifetime.cpp: "moved",
/// "invalidated", the set of possible open-span depths).
using AbstractState = std::map<std::string, std::uint32_t>;

/// ORs `src` into `dst`; true when `dst` gained any bit.
bool join_into(AbstractState& dst, const AbstractState& src);

/// Statement transfer function: updates `state` in place.
using Transfer = std::function<void(const CfgStmt&, AbstractState&)>;

/// Forward worklist fixpoint over `cfg` starting from `entry_state` at the
/// entry node. Returns each node's IN state (join over predecessors' OUT
/// states); unreachable nodes keep the empty (bottom) state. Rules report
/// afterwards by replaying `transfer` over each node from its IN state.
std::vector<AbstractState> fixpoint(const Cfg& cfg, const AbstractState& entry_state,
                                    const Transfer& transfer);

}  // namespace gpumip::lint
