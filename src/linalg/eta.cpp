#include "linalg/eta.hpp"

#include <cmath>

namespace gpumip::linalg {

Eta Eta::from_ftran(std::span<const double> y, int r, double tol) {
  check_arg(r >= 0 && r < static_cast<int>(y.size()), "Eta::from_ftran: bad pivot row");
  const double yr = y[static_cast<std::size_t>(r)];
  if (std::fabs(yr) < tol) {
    throw NumericalError("eta update: pivot element " + std::to_string(yr) + " too small");
  }
  Eta eta;
  eta.pivot_row = r;
  // gpumip-lint: hot-alloc(one eta column per pivot IS the product-form representation; freed at refactorization)
  eta.column.resize(y.size());
  const double inv = 1.0 / yr;
  for (std::size_t i = 0; i < y.size(); ++i) eta.column[i] = -y[i] * inv;
  eta.column[static_cast<std::size_t>(r)] = inv;
  return eta;
}

void Eta::apply(std::span<double> x) const {
  check_arg(x.size() == column.size(), "Eta::apply: size mismatch");
  const std::size_t r = static_cast<std::size_t>(pivot_row);
  const double xr = x[r];
  if (xr == 0.0) return;
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += column[i] * xr;
  x[r] = column[r] * xr;  // overwrite: row r gets η_r · x_r only
}

void Eta::apply_transpose(std::span<double> y) const {
  check_arg(y.size() == column.size(), "Eta::apply_transpose: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) sum += y[i] * column[i];
  // (yᵀE)_j = y_j for j != r; only entry r changes.
  // Note the diagonal of E at (r,r) is η_r, already inside `sum`; entries
  // j != r keep their identity diagonal, but y_r also contributed through
  // E_{r r}: the correct value is Σ_i y_i E_{i r} = Σ_i y_i η_i = sum.
  y[static_cast<std::size_t>(pivot_row)] = sum;
}

void Eta::apply_to_matrix(Matrix& m) const {
  check_arg(m.rows() == static_cast<int>(column.size()), "Eta::apply_to_matrix: shape mismatch");
  for (int c = 0; c < m.cols(); ++c) {
    auto col = m.col(c);
    const double xr = col[static_cast<std::size_t>(pivot_row)];
    if (xr == 0.0) continue;
    for (std::size_t i = 0; i < col.size(); ++i) col[i] += column[i] * xr;
    col[static_cast<std::size_t>(pivot_row)] = column[static_cast<std::size_t>(pivot_row)] * xr;
  }
}

void EtaFile::ftran(std::span<double> x) const {
  for (const Eta& eta : etas_) eta.apply(x);
}

void EtaFile::btran(std::span<double> y) const {
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) it->apply_transpose(y);
}

}  // namespace gpumip::linalg
