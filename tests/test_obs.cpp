// Tests for the observability layer (src/obs): instrument arithmetic, the
// process-wide registry, span nesting, thread/rank safety of concurrent
// increments under the simmpi schedule fuzzer, JSON export round-trip, and
// the clean-failure path of export_json.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "parallel/simmpi.hpp"
#include "support/error.hpp"

namespace gpumip {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;

TEST(ObsCounter, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsGauge, SetAddAndRunningMax) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.set_max(0.5);  // lower: no change
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.set_max(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(ObsHistogram, CountSumMinMaxMean) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);  // empty: reported as 0, not +inf
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  h.record(4.0);
  h.record(16.0);
  h.record(1.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 21.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 16.0);
  EXPECT_DOUBLE_EQ(h.mean(), 7.0);
}

TEST(ObsHistogram, BucketResolutionQuantiles) {
  Histogram h;
  // 100 values in (0.5, 1], 10 in (512, 1024]: p50 resolves to the small
  // bucket's upper edge, p99+ to the large one, both clamped into
  // [min, max] of the recorded data.
  for (int i = 0; i < 100; ++i) h.record(1.0);
  for (int i = 0; i < 10; ++i) h.record(1000.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0);
  EXPECT_GE(h.quantile(0.995), 512.0);
  EXPECT_LE(h.quantile(0.995), 1000.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_LE(h.quantile(1.0), 1000.0);
}

TEST(ObsHistogram, NonpositiveValuesLandInZeroBucket) {
  Histogram h;
  h.record(0.0);
  h.record(-5.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
}

TEST(ObsRegistry, SameNameSameInstrumentDistinctKinds) {
  Counter& c1 = obs::counter("test.obs.registry.shared");
  Counter& c2 = obs::counter("test.obs.registry.shared");
  EXPECT_EQ(&c1, &c2);
  // The same name may exist independently as each instrument kind.
  Gauge& g = obs::gauge("test.obs.registry.shared");
  Histogram& h = obs::histogram("test.obs.registry.shared");
  c1.add(3);
  g.set(1.25);
  h.record(2.0);
  EXPECT_EQ(c2.value(), 3u);
  EXPECT_DOUBLE_EQ(g.value(), 1.25);
  EXPECT_EQ(h.count(), 1u);

  std::vector<std::string> names = obs::Registry::instance().counter_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "test.obs.registry.shared"), names.end());
}

TEST(ObsRegistry, ReferencesSurviveFurtherRegistration) {
  Counter& before = obs::counter("test.obs.stable.a");
  before.add(7);
  // Force rehash-like pressure: many new registrations must not move the
  // earlier instrument (call sites cache references).
  for (int i = 0; i < 200; ++i) {
    obs::counter("test.obs.stable.filler." + std::to_string(i)).add(1);
  }
  EXPECT_EQ(obs::counter("test.obs.stable.a").value(), 7u);
  EXPECT_EQ(&obs::counter("test.obs.stable.a"), &before);
}

TEST(ObsSpan, NestingDepthIsTracked) {
  EXPECT_EQ(obs::Span::active_depth(), 0);
  {
    obs::Span outer("test.obs.span.outer");
    EXPECT_EQ(outer.depth(), 1);
    EXPECT_EQ(obs::Span::active_depth(), 1);
    {
      obs::Span inner("test.obs.span.inner");
      EXPECT_EQ(inner.depth(), 2);
      EXPECT_EQ(obs::Span::active_depth(), 2);
    }
    EXPECT_EQ(obs::Span::active_depth(), 1);
  }
  EXPECT_EQ(obs::Span::active_depth(), 0);
  EXPECT_EQ(obs::histogram("test.obs.span.outer").count(), 1u);
  EXPECT_EQ(obs::histogram("test.obs.span.inner").count(), 1u);
  EXPECT_GE(obs::histogram("test.obs.span.outer").min(), 0.0);
}

TEST(ObsMacros, MatchCompileTimeSwitch) {
  Counter& c = obs::counter("test.obs.macro.count");
  const std::uint64_t before = c.value();
  GPUMIP_OBS_COUNT("test.obs.macro.count");
  GPUMIP_OBS_ADD("test.obs.macro.count", 9);
  if (obs::kObsEnabled) {
    EXPECT_EQ(c.value(), before + 10);
  } else {
    EXPECT_EQ(c.value(), before);  // macros are no-ops in OFF builds
  }
}

// Concurrent increments from simmpi ranks under the schedule fuzzer: the
// fuzzer injects yield points and perturbs delivery, so the rank threads
// interleave differently per seed while the totals must stay exact.
TEST(ObsConcurrency, RankSafeUnderScheduleFuzz) {
  constexpr int kRanks = 4;
  constexpr int kRounds = 200;
  Counter& hits = obs::counter("test.obs.concurrent.hits");
  Histogram& dist = obs::histogram("test.obs.concurrent.dist");
  const std::uint64_t hits0 = hits.value();
  const std::uint64_t dist0 = dist.count();

  for (std::uint64_t seed : {1u, 42u, 7919u}) {
    parallel::RunOptions options;
    options.schedule.fuzz = true;
    options.schedule.seed = seed;
    parallel::run_ranks(kRanks, [&](parallel::Comm& comm) {
      for (int i = 0; i < kRounds; ++i) {
        hits.add(1);
        dist.record(static_cast<double>(comm.rank() + 1));
        if (comm.rank() > 0) {
          std::vector<std::byte> payload(8);
          comm.send(0, 1, payload);
        }
      }
      if (comm.rank() == 0) {
        for (int m = 0; m < (kRanks - 1) * kRounds; ++m) comm.recv();
      }
    }, options);
  }

  EXPECT_EQ(hits.value() - hits0, 3ull * kRanks * kRounds);
  EXPECT_EQ(dist.count() - dist0, 3ull * kRanks * kRounds);
  EXPECT_DOUBLE_EQ(dist.min(), 1.0);
  EXPECT_DOUBLE_EQ(dist.max(), static_cast<double>(kRanks));
}

TEST(ObsJson, ExportRoundTrip) {
  obs::counter("test.obs.json.counter").add(5);
  obs::gauge("test.obs.json.gauge").set(0.75);
  obs::histogram("test.obs.json.hist").record(8.0);

  const std::string json = obs::to_json();
  EXPECT_NE(json.find("\"schema\": \"gpumip.metrics.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"test.obs.json.counter\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"test.obs.json.gauge\": 0.75"), std::string::npos);
  EXPECT_NE(json.find("\"test.obs.json.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);

  const std::string path =
      (std::filesystem::temp_directory_path() / "gpumip_test_obs_export.json").string();
  obs::export_json(path);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) contents.append(buf, n);
  std::fclose(f);
  std::filesystem::remove(path);
  EXPECT_EQ(contents, json);  // to_json() ends with a trailing newline
}

TEST(ObsJson, ExportFailsCleanlyOnUnwritablePath) {
  try {
    obs::export_json("/nonexistent-dir-gpumip/metrics.json");
    FAIL() << "export_json should have thrown";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIoError);
    EXPECT_NE(std::string(e.what()).find("metrics"), std::string::npos);
  }
}

TEST(ObsJson, DisabledFlagReflectsBuild) {
  const std::string json = obs::to_json();
  const std::string expect = obs::kObsEnabled ? "\"enabled\": true" : "\"enabled\": false";
  EXPECT_NE(json.find(expect), std::string::npos);
}

}  // namespace
}  // namespace gpumip
