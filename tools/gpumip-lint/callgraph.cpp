#include "callgraph.hpp"

#include <algorithm>
#include <cctype>
#include <set>

namespace gpumip::lint {
namespace {

/// Container-protocol members: a `.begin()` / `->end()` site is an STL
/// iterator call, not a call into a same-named repo function (the obs
/// tracing API has free functions named begin/end that are only ever
/// invoked through the GPUMIP_TRACE_* macros, which the unpreprocessed
/// token stream never sees as calls anyway).
bool is_container_protocol(const std::string& name) {
  static const std::set<std::string> kProtocol = {
      "begin", "end", "cbegin", "cend", "rbegin", "rend", "data", "size", "empty", "count",
  };
  return kProtocol.count(name) != 0;
}

/// Keywords that appear as `name (` call-lookalikes inside bodies.
bool is_call_keyword(const std::string& name) {
  static const std::set<std::string> kKeywords = {
      "if",      "for",     "while",       "switch",      "catch",       "return",
      "sizeof",  "alignof", "decltype",    "constexpr",   "new",         "delete",
      "throw",   "requires", "static_assert", "alignas",  "noexcept",    "defined",
      "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast", "do", "else",
      "co_await", "co_return", "co_yield", "case",
  };
  return kKeywords.count(name) != 0;
}

/// From `pos` (pointing at '<'), skips a balanced template-argument list.
/// Returns the offset one past the '>' — or npos when the '<' is a plain
/// comparison (balance fails or a statement boundary intervenes).
std::size_t skip_template_args(const std::string& s, std::size_t pos) {
  int depth = 0;
  for (std::size_t i = pos; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '<') ++depth;
    else if (c == '>' && --depth == 0) return i + 1;
    else if (c == ';' || c == '{' || c == '}') return std::string::npos;
  }
  return std::string::npos;
}

/// Names of variables declared with a std::function type anywhere in
/// `text` (a signature + body slice): `std::function<R(Args)> name`,
/// including `const std::function<...>&` parameters.
std::vector<std::string> function_object_names(const std::string& text) {
  std::vector<std::string> names;
  for (std::size_t at = find_word(text, "function", 0); at != std::string::npos;
       at = find_word(text, "function", at + 1)) {
    if (at < 5 || text.compare(at - 5, 5, "std::") != 0) continue;
    std::size_t pos = skip_ws(text, at + 8);
    if (pos >= text.size() || text[pos] != '<') continue;
    pos = skip_template_args(text, pos);
    if (pos == std::string::npos) continue;
    pos = skip_ws(text, pos);
    while (pos < text.size() && (text[pos] == '&' || text[pos] == '*')) {
      pos = skip_ws(text, pos + 1);
    }
    std::string name;
    while (pos < text.size() && is_ident_char(text[pos])) name += text[pos++];
    if (!name.empty() && std::isdigit(static_cast<unsigned char>(name[0])) == 0 &&
        name != "const") {
      names.push_back(std::move(name));
    }
  }
  return names;
}

}  // namespace

std::unordered_map<std::string, std::vector<int>> function_name_map(
    const std::vector<FunctionDecl>& functions) {
  std::unordered_map<std::string, std::vector<int>> map;
  for (int i = 0; i < static_cast<int>(functions.size()); ++i) {
    const FunctionDecl& d = functions[static_cast<std::size_t>(i)];
    map[d.name].push_back(i);
    if (d.qualified != d.name) map[d.qualified].push_back(i);
  }
  return map;
}

CallGraph build_call_graph(const std::vector<Scanned>& files,
                           const std::vector<FunctionDecl>& functions) {
  CallGraph graph;
  graph.edges.assign(functions.size(), {});
  graph.address_taken.assign(functions.size(), 0);
  graph.calls_function_object.assign(functions.size(), 0);
  std::unordered_map<std::string, std::vector<int>> by_name;
  for (int i = 0; i < static_cast<int>(functions.size()); ++i) {
    by_name[functions[static_cast<std::size_t>(i)].name].push_back(i);
  }

  // One token walk per file: every identifier is either a direct call
  // (followed by '(' or by template args then '('), in which case the
  // enclosing function gains edges to the whole overload set — or a bare
  // mention of a known function name, which marks that set address-taken.
  for (int fi = 0; fi < static_cast<int>(files.size()); ++fi) {
    const std::string& clean = files[static_cast<std::size_t>(fi)].clean;
    std::size_t i = 0;
    while (i < clean.size()) {
      if (!is_ident_char(clean[i])) {
        ++i;
        continue;
      }
      const std::size_t start = i;
      while (i < clean.size() && is_ident_char(clean[i])) ++i;
      if (std::isdigit(static_cast<unsigned char>(clean[start])) != 0) continue;
      const std::string name = clean.substr(start, i - start);
      auto it = by_name.find(name);
      std::size_t after = skip_ws(clean, i);
      bool is_call = after < clean.size() && clean[after] == '(';
      if (!is_call && after < clean.size() && clean[after] == '<') {
        const std::size_t past = skip_template_args(clean, after);
        is_call = past != std::string::npos && past < clean.size() && clean[past] == '(';
      }
      if (!is_call) {
        if (it != by_name.end()) {
          for (int callee : it->second) {
            graph.address_taken[static_cast<std::size_t>(callee)] = 1;
          }
        }
        continue;
      }
      if (it == by_name.end() || is_call_keyword(name)) continue;
      // `std::foo(...)` can never resolve to a repo function — dropping
      // these sites kills the std::min/std::max/std::copy name merges.
      if (start >= 5 && clean.compare(start - 5, 5, "std::") == 0) continue;
      const bool member_site = (start >= 1 && clean[start - 1] == '.') ||
                               (start >= 2 && clean.compare(start - 2, 2, "->") == 0);
      if (member_site && is_container_protocol(name)) continue;
      const int caller = enclosing_function(functions, fi, start);
      if (caller < 0) continue;
      // A function's own definition header sits outside its body extent,
      // so `caller` here is genuinely the surrounding function.
      for (int callee : it->second) {
        std::vector<int>& out = graph.edges[static_cast<std::size_t>(caller)];
        if (std::find(out.begin(), out.end(), callee) == out.end()) out.push_back(callee);
      }
    }
  }

  // std::function dispatch: a declared function-object name that is later
  // invoked makes the declaring function an indirect caller.
  for (int i = 0; i < static_cast<int>(functions.size()); ++i) {
    const FunctionDecl& d = functions[static_cast<std::size_t>(i)];
    const std::string& clean = files[static_cast<std::size_t>(d.file_index)].clean;
    const std::string slice = clean.substr(d.params_begin, d.body_end - d.params_begin);
    for (const std::string& var : function_object_names(slice)) {
      const std::string body = clean.substr(d.body_begin, d.body_end - d.body_begin);
      for (std::size_t at = find_word(body, var, 0); at != std::string::npos;
           at = find_word(body, var, at + 1)) {
        const std::size_t after = skip_ws(body, at + var.size());
        if (after < body.size() && body[after] == '(') {
          graph.calls_function_object[static_cast<std::size_t>(i)] = 1;
          break;
        }
      }
      if (graph.calls_function_object[static_cast<std::size_t>(i)] != 0) break;
    }
  }
  return graph;
}

}  // namespace gpumip::lint
