#include <gtest/gtest.h>

#include <set>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "support/timer.hpp"

namespace gpumip {
namespace {

TEST(Error, CodesHaveNames) {
  EXPECT_STREQ(error_code_name(ErrorCode::kInvalidArgument), "InvalidArgument");
  EXPECT_STREQ(error_code_name(ErrorCode::kOutOfDeviceMemory), "OutOfDeviceMemory");
  EXPECT_STREQ(error_code_name(ErrorCode::kNumericalFailure), "NumericalFailure");
  EXPECT_STREQ(error_code_name(ErrorCode::kInternal), "Internal");
}

TEST(Error, CheckArgThrowsWithLocation) {
  EXPECT_NO_THROW(check_arg(true, "fine"));
  try {
    check_arg(false, "must fail");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidArgument);
    EXPECT_NE(std::string(e.what()).find("must fail"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_support.cpp"), std::string::npos);
  }
}

TEST(Error, DeviceOutOfMemoryIsAnError) {
  try {
    throw DeviceOutOfMemory("buffer too big");
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kOutOfDeviceMemory);
  }
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000000), b.uniform_int(0, 1000000));
  }
}

TEST(Rng, UniformRespectsRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIntCoversEndpoints) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 3));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_TRUE(seen.contains(0));
  EXPECT_TRUE(seen.contains(3));
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(11);
  auto perm = rng.permutation(50);
  std::set<int> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 49);
}

TEST(Rng, InvalidArgumentsThrow) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(1.0, 1.0), Error);
  EXPECT_THROW(rng.uniform_int(2, 1), Error);
  EXPECT_THROW(rng.index(0), Error);
  EXPECT_THROW(rng.flip(1.5), Error);
}

TEST(Strings, HumanBytes) {
  EXPECT_EQ(human_bytes(512), "512 B");
  EXPECT_EQ(human_bytes(2048), "2.00 KiB");
  EXPECT_EQ(human_bytes(3ull << 30), "3.00 GiB");
}

TEST(Strings, HumanSeconds) {
  EXPECT_EQ(human_seconds(2.5), "2.500 s");
  EXPECT_EQ(human_seconds(0.0015), "1.50 ms");
  EXPECT_EQ(human_seconds(2.5e-6), "2.50 us");
}

TEST(Strings, SplitAndTrim) {
  EXPECT_EQ(split_ws("  a  bb\tccc \n").size(), 3u);
  EXPECT_EQ(trim("  hello \t"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_TRUE(starts_with("ROWS section", "ROWS"));
  EXPECT_FALSE(starts_with("RO", "ROWS"));
  EXPECT_EQ(to_upper("mIxEd"), "MIXED");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Timer, MeasuresElapsed) {
  WallTimer t;
  EXPECT_GE(t.elapsed(), 0.0);
  t.reset();
  EXPECT_LT(t.elapsed(), 1.0);
}

}  // namespace
}  // namespace gpumip
