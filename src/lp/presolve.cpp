#include "lp/presolve.hpp"

#include <cmath>

namespace gpumip::lp {

namespace {
constexpr double kFeasTol = 1e-9;
}

linalg::Vector PresolveResult::postsolve(std::span<const double> reduced_x) const {
  linalg::Vector out(col_map.size(), 0.0);
  for (std::size_t j = 0; j < col_map.size(); ++j) {
    out[j] = col_map[j] >= 0 ? reduced_x[static_cast<std::size_t>(col_map[j])] : fixed_value[j];
  }
  return out;
}

PresolveResult presolve(const LpModel& model, const std::vector<bool>& integer_cols) {
  model.validate();
  const int n = model.num_cols();
  const int m = model.num_rows();
  check_arg(integer_cols.empty() || static_cast<int>(integer_cols.size()) == n,
            "presolve: integer flag size mismatch");

  // Working copies of bounds; entries as row-wise adjacency.
  std::vector<double> col_lb(static_cast<std::size_t>(n)), col_ub(static_cast<std::size_t>(n));
  std::vector<double> row_lb(static_cast<std::size_t>(m)), row_ub(static_cast<std::size_t>(m));
  for (int j = 0; j < n; ++j) {
    col_lb[static_cast<std::size_t>(j)] = model.col(j).lb;
    col_ub[static_cast<std::size_t>(j)] = model.col(j).ub;
  }
  for (int i = 0; i < m; ++i) {
    row_lb[static_cast<std::size_t>(i)] = model.row(i).lb;
    row_ub[static_cast<std::size_t>(i)] = model.row(i).ub;
  }
  const sparse::Csr a = model.matrix();

  PresolveResult result;
  std::vector<bool> col_fixed(static_cast<std::size_t>(n), false);
  std::vector<bool> row_removed(static_cast<std::size_t>(m), false);

  auto round_int_bounds = [&](int j) {
    if (!integer_cols.empty() && integer_cols[static_cast<std::size_t>(j)]) {
      col_lb[static_cast<std::size_t>(j)] = std::ceil(col_lb[static_cast<std::size_t>(j)] - kFeasTol);
      col_ub[static_cast<std::size_t>(j)] = std::floor(col_ub[static_cast<std::size_t>(j)] + kFeasTol);
    }
  };
  for (int j = 0; j < n; ++j) round_int_bounds(j);

  bool changed = true;
  int sweeps = 0;
  while (changed && sweeps < 10) {
    changed = false;
    ++sweeps;
    for (int i = 0; i < m; ++i) {
      if (row_removed[static_cast<std::size_t>(i)]) continue;
      // Gather the live entries of this row.
      int live = 0;
      int single_col = -1;
      double single_coef = 0.0;
      double fixed_activity = 0.0;
      for (int k = a.row_start[static_cast<std::size_t>(i)];
           k < a.row_start[static_cast<std::size_t>(i) + 1]; ++k) {
        const int j = a.col_index[static_cast<std::size_t>(k)];
        const double v = a.values[static_cast<std::size_t>(k)];
        if (col_fixed[static_cast<std::size_t>(j)] ||
            col_lb[static_cast<std::size_t>(j)] == col_ub[static_cast<std::size_t>(j)]) {
          fixed_activity += v * col_lb[static_cast<std::size_t>(j)];
          continue;
        }
        ++live;
        single_col = j;
        single_coef = v;
      }
      const double lo = row_lb[static_cast<std::size_t>(i)] - fixed_activity;
      const double hi = row_ub[static_cast<std::size_t>(i)] - fixed_activity;
      if (live == 0) {
        // Empty (or fully fixed) row: feasibility check then removal.
        if (lo > kFeasTol || hi < -kFeasTol) {
          result.infeasible = true;
          result.col_map.assign(static_cast<std::size_t>(n), -1);
          result.fixed_value.assign(static_cast<std::size_t>(n), 0.0);
          result.row_map.assign(static_cast<std::size_t>(m), -1);
          return result;
        }
        row_removed[static_cast<std::size_t>(i)] = true;
        changed = true;
      } else if (live == 1) {
        // Singleton row: it is just a bound on single_col.
        const std::size_t jk = static_cast<std::size_t>(single_col);
        double new_lb = col_lb[jk];
        double new_ub = col_ub[jk];
        if (single_coef > 0) {
          if (std::isfinite(lo)) new_lb = std::max(new_lb, lo / single_coef);
          if (std::isfinite(hi)) new_ub = std::min(new_ub, hi / single_coef);
        } else {
          if (std::isfinite(hi)) new_lb = std::max(new_lb, hi / single_coef);
          if (std::isfinite(lo)) new_ub = std::min(new_ub, lo / single_coef);
        }
        if (new_lb > col_lb[jk] + kFeasTol || new_ub < col_ub[jk] - kFeasTol) {
          col_lb[jk] = std::max(col_lb[jk], new_lb);
          col_ub[jk] = std::min(col_ub[jk], new_ub);
          round_int_bounds(single_col);
          ++result.bounds_tightened;
          changed = true;
        }
        if (col_lb[jk] > col_ub[jk] + kFeasTol) {
          result.infeasible = true;
          result.col_map.assign(static_cast<std::size_t>(n), -1);
          result.fixed_value.assign(static_cast<std::size_t>(n), 0.0);
          result.row_map.assign(static_cast<std::size_t>(m), -1);
          return result;
        }
        row_removed[static_cast<std::size_t>(i)] = true;
        changed = true;
      }
    }
    for (int j = 0; j < n; ++j) {
      const std::size_t jk = static_cast<std::size_t>(j);
      if (!col_fixed[jk] && col_lb[jk] == col_ub[jk]) {
        col_fixed[jk] = true;
        changed = true;
      }
    }
  }

  // Build the reduced model.
  result.col_map.assign(static_cast<std::size_t>(n), -1);
  result.fixed_value.assign(static_cast<std::size_t>(n), 0.0);
  result.row_map.assign(static_cast<std::size_t>(m), -1);
  result.reduced.set_sense(model.sense());
  for (int j = 0; j < n; ++j) {
    const std::size_t jk = static_cast<std::size_t>(j);
    if (col_fixed[jk]) {
      result.fixed_value[jk] = col_lb[jk];
      ++result.cols_removed;
    } else {
      result.col_map[jk] = result.reduced.add_col(model.col(j).obj, col_lb[jk], col_ub[jk],
                                                  model.col(j).name);
    }
  }
  for (int i = 0; i < m; ++i) {
    if (row_removed[static_cast<std::size_t>(i)]) {
      ++result.rows_removed;
      continue;
    }
    // Adjust for fixed columns' contribution.
    double fixed_activity = 0.0;
    for (int k = a.row_start[static_cast<std::size_t>(i)];
         k < a.row_start[static_cast<std::size_t>(i) + 1]; ++k) {
      const int j = a.col_index[static_cast<std::size_t>(k)];
      if (col_fixed[static_cast<std::size_t>(j)]) {
        fixed_activity += a.values[static_cast<std::size_t>(k)] *
                          result.fixed_value[static_cast<std::size_t>(j)];
      }
    }
    const double lb = std::isfinite(row_lb[static_cast<std::size_t>(i)])
                          ? row_lb[static_cast<std::size_t>(i)] - fixed_activity
                          : -kInf;
    const double ub = std::isfinite(row_ub[static_cast<std::size_t>(i)])
                          ? row_ub[static_cast<std::size_t>(i)] - fixed_activity
                          : kInf;
    result.row_map[static_cast<std::size_t>(i)] =
        result.reduced.add_row(lb, ub, model.row(i).name);
  }
  for (const auto& t : model.entries()) {
    const int rr = result.row_map[static_cast<std::size_t>(t.row)];
    const int cc = result.col_map[static_cast<std::size_t>(t.col)];
    if (rr >= 0 && cc >= 0) result.reduced.set_coef(rr, cc, t.value);
  }
  return result;
}

}  // namespace gpumip::lp
