#include "mip/branching.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace gpumip::mip {

const char* branch_rule_name(BranchRule rule) noexcept {
  switch (rule) {
    case BranchRule::MostFractional: return "most-fractional";
    case BranchRule::Pseudocost: return "pseudocost";
    case BranchRule::Strong: return "strong";
  }
  return "?";
}

void PseudocostTable::init(int num_vars, std::span<const double> objective) {
  up_sum_.assign(static_cast<std::size_t>(num_vars), 0.0);
  down_sum_.assign(static_cast<std::size_t>(num_vars), 0.0);
  up_count_.assign(static_cast<std::size_t>(num_vars), 0);
  down_count_.assign(static_cast<std::size_t>(num_vars), 0);
  initial_.assign(static_cast<std::size_t>(num_vars), 1.0);
  for (int j = 0; j < num_vars && j < static_cast<int>(objective.size()); ++j) {
    initial_[static_cast<std::size_t>(j)] = 1.0 + std::fabs(objective[static_cast<std::size_t>(j)]);
  }
}

void PseudocostTable::update(int var, bool up, double objective_delta, double fractionality) {
  if (fractionality < 1e-9) return;
  const std::size_t k = static_cast<std::size_t>(var);
  const double per_unit = std::max(0.0, objective_delta) / fractionality;
  if (up) {
    up_sum_[k] += per_unit;
    ++up_count_[k];
  } else {
    down_sum_[k] += per_unit;
    ++down_count_[k];
  }
}

double PseudocostTable::score(int var, double frac) const {
  const std::size_t k = static_cast<std::size_t>(var);
  const double up = up_count_[k] > 0 ? up_sum_[k] / up_count_[k] : initial_[k];
  const double down = down_count_[k] > 0 ? down_sum_[k] / down_count_[k] : initial_[k];
  const double eps = 1e-6;
  return std::max(up * (1.0 - frac), eps) * std::max(down * frac, eps);
}

long PseudocostTable::observations(int var) const {
  const std::size_t k = static_cast<std::size_t>(var);
  return up_count_[k] + down_count_[k];
}

std::vector<std::pair<int, double>> fractional_vars(std::span<const double> x,
                                                    const std::vector<bool>& integer_cols,
                                                    double int_tol) {
  std::vector<std::pair<int, double>> out;
  for (std::size_t j = 0; j < integer_cols.size() && j < x.size(); ++j) {
    if (!integer_cols[j]) continue;
    const double frac = x[j] - std::floor(x[j]);
    const double dist = std::min(frac, 1.0 - frac);
    if (dist > int_tol) out.push_back({static_cast<int>(j), frac});
  }
  return out;
}

int select_branch_var(BranchRule rule, std::span<const double> x,
                      const std::vector<bool>& integer_cols, double int_tol,
                      const PseudocostTable* pseudocosts,
                      const std::function<double(int, bool)>& strong_probe,
                      int strong_candidates) {
  auto fracs = fractional_vars(x, integer_cols, int_tol);
  if (fracs.empty()) return -1;

  switch (rule) {
    case BranchRule::MostFractional: {
      int best = -1;
      double best_dist = -1.0;
      for (const auto& [j, frac] : fracs) {
        const double dist = std::min(frac, 1.0 - frac);
        if (dist > best_dist) {
          best_dist = dist;
          best = j;
        }
      }
      return best;
    }
    case BranchRule::Pseudocost: {
      check_arg(pseudocosts != nullptr, "pseudocost rule needs a table");
      int best = -1;
      double best_score = -1.0;
      for (const auto& [j, frac] : fracs) {
        const double s = pseudocosts->score(j, frac);
        if (s > best_score) {
          best_score = s;
          best = j;
        }
      }
      return best;
    }
    case BranchRule::Strong: {
      check_arg(static_cast<bool>(strong_probe), "strong rule needs a probe");
      // Rank candidates by fractionality, probe the top few.
      std::sort(fracs.begin(), fracs.end(), [](const auto& a, const auto& b) {
        const double da = std::min(a.second, 1.0 - a.second);
        const double db = std::min(b.second, 1.0 - b.second);
        return da > db;
      });
      const int k = std::min<int>(strong_candidates, static_cast<int>(fracs.size()));
      int best = fracs.front().first;
      double best_score = -1.0;
      for (int i = 0; i < k; ++i) {
        const int j = fracs[static_cast<std::size_t>(i)].first;
        const double down = strong_probe(j, false);
        const double up = strong_probe(j, true);
        // Product of degradations (infeasible child = very strong).
        const double cap = 1e9;
        const double score = std::min(down, cap) * std::min(up, cap);
        if (score > best_score) {
          best_score = score;
          best = j;
        }
      }
      return best;
    }
  }
  return fracs.front().first;
}

}  // namespace gpumip::mip
