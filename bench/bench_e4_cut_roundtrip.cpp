// E4 — cut-generation round trip (paper section 5.2, claim C4).
//
// Until GPU cut generators exist, each cut round costs: download the
// current relaxation state (D2H), separate cuts on the CPU, upload the new
// rows (H2D), update the device matrix, re-solve. The bench measures that
// loop on the simulated device across matrix sizes and cut batch sizes —
// showing the latency floor and how batching cuts amortizes it.
#include "bench/common.hpp"
#include "linalg/device_blas.hpp"
#include "lp/simplex.hpp"
#include "mip/cuts.hpp"
#include "problems/generators.hpp"
#include "support/strings.hpp"

namespace {

using namespace gpumip;

/// Simulated cost of one cut round on an m x n dense relaxation with
/// `cuts_per_round` cuts incorporated at once.
struct RoundCost {
  double download = 0.0;
  double host_separation = 0.0;
  double upload = 0.0;
  double device_update = 0.0;
  double total() const { return download + host_separation + upload + device_update; }
};

RoundCost cut_round(gpu::Device& device, int m, int n, int cuts_per_round) {
  RoundCost cost;
  const std::size_t mn = static_cast<std::size_t>(m) * n;
  gpu::DeviceBuffer matrix = device.alloc_doubles(mn + static_cast<std::size_t>(cuts_per_round) * n,
                                                  "e4.matrix");
  std::vector<double> host(mn);
  device.reset_stats();

  // D2H: fetch the relaxation (solution + the rows the separator inspects).
  double t0 = device.synchronize();
  device.copy_d2h(0, matrix, host.data(), mn * sizeof(double));
  cost.download = device.synchronize() - t0;

  // Host separation cost (charged at CPU rates: one pass over the matrix
  // per cut family).
  lp::CpuCostModel cpu;
  cost.host_separation = 2.0 * static_cast<double>(mn) / cpu.sparse_flops +
                         cuts_per_round * 1e-6;

  // H2D: ship only the generated rows.
  t0 = device.synchronize();
  device.copy_h2d(0, matrix, host.data(),
                  static_cast<std::size_t>(cuts_per_round) * n * sizeof(double),
                  mn * sizeof(double));
  // Device-side incorporation: append rows + refresh factors (m² kernel).
  gpu::KernelCost update = gpu::KernelCost::dense(2.0 * m * n, static_cast<double>(mn));
  update.occupancy = linalg::occupancy_for_elements(mn);
  device.launch(0, update, {});
  const double t1 = device.synchronize();
  cost.upload = 0.0;  // folded into device_update below
  cost.device_update = t1 - t0;
  return cost;
}

void print_experiment() {
  bench::title("E4", "cut incorporation round trip (device->host->device)");
  bench::row("  %-10s %-8s %-12s %-12s %-12s %-14s %-14s", "size", "cuts", "download",
             "separation", "incorporate", "total", "per-cut");
  for (int m : {64, 256}) {
    const int n = 2 * m;
    for (int cuts : {1, 4, 16, 64}) {
      gpu::Device device;
      const RoundCost c = cut_round(device, m, n, cuts);
      bench::row("  %4dx%-5d %-8d %-12s %-12s %-12s %-14s %-14s", m, n, cuts,
                 human_seconds(c.download).c_str(), human_seconds(c.host_separation).c_str(),
                 human_seconds(c.device_update).c_str(), human_seconds(c.total()).c_str(),
                 human_seconds(c.total() / cuts).c_str());
    }
  }
  bench::note("expected shape: per-cut cost falls sharply with batch size (PCIe latency and");
  bench::note("the matrix download amortize); the D2H fetch dominates small matrices.");
}

void real_cut_rounds() {
  bench::title("E4-b", "real GMI separation on the solver (root cut loop)");
  Rng rng(91);
  problems::RandomMipConfig cfg;
  cfg.rows = 10;
  cfg.cols = 12;
  cfg.integer_fraction = 1.0;
  cfg.bound = 3.0;
  for (int trial = 0; trial < 3; ++trial) {
    mip::MipModel model = problems::random_mip(cfg, rng);
    const lp::StandardForm form = lp::build_standard_form(model.lp());
    lp::SimplexSolver solver(form);
    lp::LpResult root = solver.solve_default();
    if (root.status != lp::LpStatus::Optimal) continue;
    mip::CutOptions copts;
    copts.max_cuts = 16;
    auto cuts = mip::gomory_cuts(model, form, root, copts);
    double max_violation = 0.0;
    for (const auto& cut : cuts) max_violation = std::max(max_violation, cut.violation(root.x));
    bench::row("  trial %d: LP obj %-10.4f -> %zu GMI cuts, max violation %.4f", trial,
               root.objective, cuts.size(), max_violation);
  }
}

void BM_cut_round(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int cuts = static_cast<int>(state.range(1));
  gpu::Device device;
  double sim = 0.0;
  for (auto _ : state) {
    sim = cut_round(device, m, 2 * m, cuts).total();
    benchmark::DoNotOptimize(sim);
  }
  state.counters["sim_us"] = sim * 1e6;
}
BENCHMARK(BM_cut_round)->Args({64, 1})->Args({64, 16})->Args({256, 16})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  real_cut_rounds();
  return gpumip::bench::run_benchmarks(argc, argv);
}
