#include "sparse/sparse_cholesky.hpp"

#include <cmath>

namespace gpumip::sparse {

SparseCholesky::SparseCholesky(const Csc& a, double ridge) {
  check_arg(a.rows == a.cols, "SparseCholesky: square matrix required");
  n_ = a.rows;
  l_cols_.resize(static_cast<std::size_t>(n_));
  diag_.assign(static_cast<std::size_t>(n_), 0.0);

  std::vector<double> x(static_cast<std::size_t>(n_), 0.0);
  std::vector<bool> mark(static_cast<std::size_t>(n_), false);
  std::vector<int> touched;

  // Column-by-column left-looking: for column j, compute
  //   L(j:n, j) = (A(j:n, j) - Σ_{k<j, L(j,k)!=0} L(j,k) · L(j:n, k)) / L(j,j).
  // L(j, k) values are found incrementally: entry (j) appended to column k
  // when column j of L is finalized, so columns < j are complete here.
  std::vector<std::vector<Entry>> l_rows(static_cast<std::size_t>(n_));  // L by rows, k<j part
  for (int j = 0; j < n_; ++j) {
    touched.clear();
    double ajj = ridge;
    for (int k = a.col_start[static_cast<std::size_t>(j)];
         k < a.col_start[static_cast<std::size_t>(j) + 1]; ++k) {
      const int r = a.row_index[static_cast<std::size_t>(k)];
      if (r == j) {
        ajj += a.values[static_cast<std::size_t>(k)];
      } else if (r > j) {
        x[static_cast<std::size_t>(r)] = a.values[static_cast<std::size_t>(k)];
        if (!mark[static_cast<std::size_t>(r)]) {
          mark[static_cast<std::size_t>(r)] = true;
          touched.push_back(r);
        }
      }
    }
    // Subtract contributions of earlier columns k with L(j,k) != 0.
    double sum_sq = 0.0;
    for (const Entry& ljk : l_rows[static_cast<std::size_t>(j)]) {
      const int k = ljk.row;  // column index k < j
      const double v = ljk.value;
      sum_sq += v * v;
      for (const Entry& e : l_cols_[static_cast<std::size_t>(k)]) {
        if (e.row <= j) continue;
        if (!mark[static_cast<std::size_t>(e.row)]) {
          mark[static_cast<std::size_t>(e.row)] = true;
          touched.push_back(e.row);
          x[static_cast<std::size_t>(e.row)] = 0.0;
        }
        x[static_cast<std::size_t>(e.row)] -= v * e.value;
      }
    }
    const double d2 = ajj - sum_sq;
    if (d2 <= 0.0 || !std::isfinite(d2)) {
      n_ = 0;
      throw NumericalError("SparseCholesky: not positive definite at column " +
                           std::to_string(j));
    }
    const double djj = std::sqrt(d2);
    diag_[static_cast<std::size_t>(j)] = djj;
    for (int r : touched) {
      mark[static_cast<std::size_t>(r)] = false;
      const double v = x[static_cast<std::size_t>(r)];
      x[static_cast<std::size_t>(r)] = 0.0;
      if (v == 0.0) continue;
      const double lrj = v / djj;
      l_cols_[static_cast<std::size_t>(j)].push_back({r, lrj});
      l_rows[static_cast<std::size_t>(r)].push_back({j, lrj});
    }
  }
}

linalg::Vector SparseCholesky::solve(std::span<const double> b) const {
  check_arg(valid(), "SparseCholesky::solve on empty factorization");
  check_arg(static_cast<int>(b.size()) == n_, "SparseCholesky::solve: size mismatch");
  linalg::Vector y(b.begin(), b.end());
  // Forward: L y = b.
  for (int j = 0; j < n_; ++j) {
    const double yj = y[static_cast<std::size_t>(j)] / diag_[static_cast<std::size_t>(j)];
    y[static_cast<std::size_t>(j)] = yj;
    if (yj == 0.0) continue;
    for (const Entry& e : l_cols_[static_cast<std::size_t>(j)]) {
      y[static_cast<std::size_t>(e.row)] -= e.value * yj;
    }
  }
  // Backward: Lᵀ x = y.
  for (int j = n_ - 1; j >= 0; --j) {
    double sum = y[static_cast<std::size_t>(j)];
    for (const Entry& e : l_cols_[static_cast<std::size_t>(j)]) {
      sum -= e.value * y[static_cast<std::size_t>(e.row)];
    }
    y[static_cast<std::size_t>(j)] = sum / diag_[static_cast<std::size_t>(j)];
  }
  return y;
}

long SparseCholesky::factor_nnz() const noexcept {
  long nnz = n_;
  for (const auto& col : l_cols_) nnz += static_cast<long>(col.size());
  return nnz;
}

}  // namespace gpumip::sparse
