// gpumip-lint control-flow graphs: per-function basic blocks and edges,
// built over the declaration indexer's body extents (index.hpp).
//
// Like the rest of the tool this is a token-level approximation (no
// libclang): statements are split on top-level `;`/braces of the blanked
// text, `if`/`else`, `while`/`for`/`do`, `switch` (with fallthrough
// between case sections), `break`/`continue`/`return`/`throw` and calls to
// [[noreturn]] functions all get real edges, and `try`/`catch` routes both
// the pre-try and end-of-try states into each handler. Lambda bodies are
// carved out of the enclosing graph and returned as separate graphs —
// defining a lambda executes nothing, so its statements must not pollute
// the enclosing function's paths — while the capture list stays in the
// enclosing statement (capturing a local IS evaluated at the definition
// site). The graphs feed the forward dataflow engine (dataflow.hpp) that
// powers the path-sensitive lifetime rules R10-R12 (lifetime.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lexer.hpp"

namespace gpumip::lint {

enum class StmtKind : std::uint8_t {
  kPlain,         ///< expression/declaration statement or loop init/step
  kCond,          ///< if/while/for/switch condition text (read-only branch)
  kReturn,        ///< return/co_return; also the synthetic end-of-body exit
  kThrow,         ///< throw statement (edge to exit)
  kNoreturnCall,  ///< leading call to a [[noreturn]] function (edge to exit)
};

/// One statement: a [begin,end) range of the blanked source. Ranges listed
/// in Cfg::carved (lambda bodies) may overlap a statement and must be
/// masked out when scanning its text.
struct CfgStmt {
  std::size_t begin = 0;
  std::size_t end = 0;
  StmtKind kind = StmtKind::kPlain;
};

struct CfgNode {
  std::vector<CfgStmt> stmts;
  std::vector<int> succ;  ///< successor node indices, deduplicated
};

/// One control-flow graph: a function body or a lambda body.
struct Cfg {
  std::size_t body_begin = 0;  ///< offset of the region's '{'
  std::size_t body_end = 0;    ///< offset of the matching '}'
  int entry = 0;
  /// Virtual exit: every return/throw/noreturn-call edge lands here, plus
  /// a synthetic kReturn statement when control can fall off the end.
  int exit = 1;
  std::vector<CfgNode> nodes;
  /// Lambda-body ranges nested in this graph's statements: text inside
  /// them belongs to a separate graph, not to the statement spanning them.
  std::vector<std::pair<std::size_t, std::size_t>> carved;
};

/// Unqualified names of every function declared [[noreturn]] anywhere in
/// `files`, seeded with the std terminators (abort, terminate, _Exit).
/// Name-based like the call graph: any call spelled `name(...)` as a whole
/// statement is treated as diverging.
std::set<std::string> collect_noreturn_names(const std::vector<Scanned>& files);

/// Builds the CFG for the brace-delimited body [body_begin..body_end] of
/// `clean` (a Scanned::clean text) plus one graph per lambda body nested
/// inside. The function's own graph comes first.
std::vector<Cfg> build_cfgs(const std::string& clean, std::size_t body_begin,
                            std::size_t body_end,
                            const std::set<std::string>& noreturn_names);

}  // namespace gpumip::lint
