#include "support/error.hpp"

#include "support/assert.hpp"

namespace gpumip {

const char* error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kInvalidArgument: return "InvalidArgument";
    case ErrorCode::kOutOfDeviceMemory: return "OutOfDeviceMemory";
    case ErrorCode::kNumericalFailure: return "NumericalFailure";
    case ErrorCode::kLimitExceeded: return "LimitExceeded";
    case ErrorCode::kIoError: return "IoError";
    case ErrorCode::kProtocolError: return "ProtocolError";
    case ErrorCode::kInternal: return "Internal";
  }
  return "Unknown";
}

namespace {
std::string with_location(const std::string& message, const std::source_location& loc) {
  return message + " [" + loc.file_name() + ":" + std::to_string(loc.line()) + "]";
}
}  // namespace

void check_arg(bool cond, const std::string& message, std::source_location loc) {
  if (!cond) throw Error(ErrorCode::kInvalidArgument, with_location(message, loc));
}

void check_internal(bool cond, const std::string& message, std::source_location loc) {
  if (!cond) throw Error(ErrorCode::kInternal, with_location(message, loc));
}

void check_protocol(bool cond, const std::string& message, std::source_location loc) {
  if (!cond) throw Error(ErrorCode::kProtocolError, with_location(message, loc));
}

namespace detail {

void assert_fail(const char* condition, const std::string& message, const char* file, int line) {
  throw Error(ErrorCode::kInternal, "invariant violated: " + message + " (" + condition + ") [" +
                                        file + ":" + std::to_string(line) + "]");
}

}  // namespace detail

}  // namespace gpumip
