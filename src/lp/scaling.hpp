// Geometric-mean scaling of the constraint matrix. Scaling is one of the
// "setup stage" transforms the hybrid strategy runs on the CPU before
// uploading the matrix to the device.
#pragma once

#include "lp/model.hpp"

namespace gpumip::lp {

struct ScalingResult {
  LpModel scaled;
  linalg::Vector row_scale;  ///< rows of A were multiplied by these
  linalg::Vector col_scale;  ///< columns of A were multiplied by these

  /// Maps a solution of the scaled model back to original variables:
  /// x_orig[j] = x_scaled[j] * col_scale[j].
  linalg::Vector unscale_solution(std::span<const double> scaled_x) const;
};

/// Alternating row/column geometric-mean scaling (`passes` sweeps).
ScalingResult geometric_scaling(const LpModel& model, int passes = 3);

/// max |a_ij| / min |a_ij| over nonzeros — the spread scaling reduces.
double coefficient_spread(const LpModel& model);

}  // namespace gpumip::lp
