#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "ivm/flowshop.hpp"
#include "ivm/gpu_bnb.hpp"
#include "ivm/ivm.hpp"
#include "ivm/knapsack_bnb.hpp"

namespace gpumip::ivm {
namespace {

TEST(Factoradic, RankDigitsRoundTrip) {
  for (int n : {1, 3, 5, 8}) {
    const std::uint64_t total = Factoradic::factorial(n);
    for (std::uint64_t r = 0; r < total; r += std::max<std::uint64_t>(1, total / 50)) {
      EXPECT_EQ(Factoradic::rank(Factoradic::digits(r, n), n), r);
    }
  }
}

TEST(Factoradic, FactorialValues) {
  EXPECT_EQ(Factoradic::factorial(0), 1u);
  EXPECT_EQ(Factoradic::factorial(5), 120u);
  EXPECT_EQ(Factoradic::factorial(20), 2432902008176640000ull);
  EXPECT_THROW(Factoradic::factorial(21), Error);
}

TEST(Ivm, FullTraversalVisitsEveryPermutationOnce) {
  // Walk the whole tree descending everywhere; leaves must enumerate all
  // n! permutations in lexicographic Lehmer order.
  const int n = 5;
  Ivm ivm(n, 0, Factoradic::factorial(n));
  std::vector<std::vector<int>> leaves;
  while (!ivm.exhausted()) {
    if (ivm.at_leaf()) {
      leaves.push_back(ivm.prefix());
      ivm.advance();
    } else {
      ivm.descend();
    }
  }
  EXPECT_EQ(leaves.size(), 120u);
  // Every leaf is a permutation; all distinct.
  std::sort(leaves.begin(), leaves.end());
  EXPECT_EQ(std::adjacent_find(leaves.begin(), leaves.end()), leaves.end());
  for (const auto& perm : leaves) {
    std::vector<int> sorted = perm;
    std::sort(sorted.begin(), sorted.end());
    std::vector<int> expect(static_cast<std::size_t>(n));
    std::iota(expect.begin(), expect.end(), 0);
    EXPECT_EQ(sorted, expect);
  }
}

TEST(Ivm, AdvancePrunesWholeSubtree) {
  const int n = 4;
  Ivm ivm(n, 0, Factoradic::factorial(n));
  // At the root (depth 0, first child), advancing skips 3! permutations.
  const std::uint64_t before = ivm.position_rank();
  ivm.advance();
  EXPECT_EQ(ivm.position_rank() - before, Factoradic::factorial(3));
}

TEST(Ivm, IntervalRestrictsTraversal) {
  const int n = 4;
  // Only the second half of the tree.
  Ivm ivm(n, 12, 24);
  long leaves = 0;
  while (!ivm.exhausted()) {
    if (ivm.at_leaf()) {
      ++leaves;
      ivm.advance();
    } else {
      ivm.descend();
    }
  }
  EXPECT_EQ(leaves, 12);
}

TEST(Ivm, SplitPartitionsWork) {
  const int n = 5;
  Ivm left(n, 0, Factoradic::factorial(n));
  Ivm right = left.split();
  long leaves = 0;
  for (Ivm* ivm : {&left, &right}) {
    while (!ivm->exhausted()) {
      if (ivm->at_leaf()) {
        ++leaves;
        ivm->advance();
      } else {
        ivm->descend();
      }
    }
  }
  EXPECT_EQ(leaves, 120);
}

TEST(Flowshop, MakespanKnownExample) {
  // 2 machines, 3 jobs; processing times chosen so permutation (0,1,2) has
  // makespan computable by hand: m0: 3,2,4 ; m1: 2,5,1.
  FlowshopInstance inst;
  inst.machines = 2;
  inst.jobs = 3;
  inst.processing = {3, 2, 4, 2, 5, 1};
  // Order 0,1,2: m0 completes 3,5,9; m1: max(3)+2=5, max(5,5)+5=10, max(9,10)+1=11.
  EXPECT_DOUBLE_EQ(inst.makespan(std::vector<int>{0, 1, 2}), 11.0);
}

TEST(Flowshop, LowerBoundIsValidAndTightAtLeaves) {
  Rng rng(5);
  FlowshopInstance inst = FlowshopInstance::random(3, 6, rng);
  std::vector<int> perm(6);
  std::iota(perm.begin(), perm.end(), 0);
  // Bound of any prefix must not exceed the makespan of any completion.
  do {
    const double full = inst.makespan(perm);
    for (int d = 1; d <= 6; ++d) {
      const double lb = inst.lower_bound(std::span<const int>(perm.data(), static_cast<std::size_t>(d)));
      EXPECT_LE(lb, full + 1e-9) << "prefix len " << d;
    }
  } while (std::next_permutation(perm.begin(), perm.end()) &&
           perm[0] < 2 /* limit runtime: subsets of permutations */);
  // At a complete permutation the bound equals the makespan.
  std::iota(perm.begin(), perm.end(), 0);
  EXPECT_DOUBLE_EQ(inst.lower_bound(perm), inst.makespan(perm));
}

TEST(Flowshop, GreedyUpperBoundIsAchievable) {
  Rng rng(6);
  FlowshopInstance inst = FlowshopInstance::random(3, 7, rng);
  const double ub = inst.greedy_upper_bound();
  BnbStats exact = solve_flowshop_cpu(inst);
  EXPECT_GE(ub + 1e-9, exact.best_makespan);
}

TEST(Bnb, CpuMatchesBruteForce) {
  Rng rng(7);
  FlowshopInstance inst = FlowshopInstance::random(3, 6, rng);
  // Brute force.
  std::vector<int> perm(6);
  std::iota(perm.begin(), perm.end(), 0);
  double best = 1e300;
  do {
    best = std::min(best, inst.makespan(perm));
  } while (std::next_permutation(perm.begin(), perm.end()));
  BnbStats r = solve_flowshop_cpu(inst);
  EXPECT_DOUBLE_EQ(r.best_makespan, best);
  EXPECT_DOUBLE_EQ(inst.makespan(r.best_permutation), best);
}

TEST(Bnb, IvmHostMatchesCpu) {
  Rng rng(8);
  for (int trial = 0; trial < 4; ++trial) {
    FlowshopInstance inst = FlowshopInstance::random(2 + trial % 3, 6 + trial % 2, rng);
    BnbStats cpu = solve_flowshop_cpu(inst);
    BnbStats ivm = solve_flowshop_ivm_host(inst);
    EXPECT_DOUBLE_EQ(ivm.best_makespan, cpu.best_makespan) << "trial " << trial;
  }
}

TEST(Bnb, GpuFleetMatchesCpuAndStaysOnDevice) {
  Rng rng(9);
  FlowshopInstance inst = FlowshopInstance::random(3, 7, rng);
  BnbStats cpu = solve_flowshop_cpu(inst);
  gpu::Device device;
  GpuBnbOptions opts;
  opts.num_ivms = 16;
  BnbStats gpu_r = solve_flowshop_gpu(inst, device, opts);
  EXPECT_DOUBLE_EQ(gpu_r.best_makespan, cpu.best_makespan);
  // S1's signature: exactly one upload (instance) and one download (result).
  EXPECT_EQ(device.stats().transfers_h2d, 1u);
  EXPECT_EQ(device.stats().transfers_d2h, 1u);
  EXPECT_GT(device.stats().kernels, 0u);
  EXPECT_GT(gpu_r.steals, 0);
}

TEST(Bnb, GpuFleetSizeSweepsConsistent) {
  Rng rng(10);
  FlowshopInstance inst = FlowshopInstance::random(2, 6, rng);
  BnbStats reference = solve_flowshop_cpu(inst);
  for (int fleet : {1, 4, 32}) {
    gpu::Device device;
    GpuBnbOptions opts;
    opts.num_ivms = fleet;
    BnbStats r = solve_flowshop_gpu(inst, device, opts);
    EXPECT_DOUBLE_EQ(r.best_makespan, reference.best_makespan) << "fleet " << fleet;
  }
}

TEST(Bnb, MoreIvmsFewerWaves) {
  Rng rng(11);
  FlowshopInstance inst = FlowshopInstance::random(3, 8, rng);
  gpu::Device d1, d2;
  GpuBnbOptions small, large;
  small.num_ivms = 2;
  large.num_ivms = 64;
  const BnbStats r_small = solve_flowshop_gpu(inst, d1, small);
  const BnbStats r_large = solve_flowshop_gpu(inst, d2, large);
  EXPECT_DOUBLE_EQ(r_small.best_makespan, r_large.best_makespan);
  EXPECT_LT(r_large.kernel_waves, r_small.kernel_waves);
}

TEST(Knapsack, CpuMatchesDp) {
  Rng rng(12);
  for (int trial = 0; trial < 5; ++trial) {
    KnapsackInstance inst = KnapsackInstance::random(16, rng);
    const double dp = knapsack_dp(inst);
    KnapsackResult r = solve_knapsack_cpu(inst);
    EXPECT_DOUBLE_EQ(r.best_value, dp) << "trial " << trial;
    // Chosen set must be consistent with the reported value and capacity.
    double v = 0.0, w = 0.0;
    for (int i : r.chosen) {
      v += inst.value[static_cast<std::size_t>(i)];
      w += inst.weight[static_cast<std::size_t>(i)];
    }
    EXPECT_DOUBLE_EQ(v, r.best_value);
    EXPECT_LE(w, inst.capacity + 1e-9);
  }
}

TEST(Knapsack, GpuMatchesCpu) {
  Rng rng(13);
  KnapsackInstance inst = KnapsackInstance::random(18, rng);
  gpu::Device device;
  KnapsackResult cpu = solve_knapsack_cpu(inst);
  KnapsackResult gpu_r = solve_knapsack_gpu(inst, device);
  EXPECT_DOUBLE_EQ(gpu_r.best_value, cpu.best_value);
  EXPECT_GT(device.stats().kernels, 0u);
  // Frontier-synchronous engine does far fewer, bigger launches.
  EXPECT_LT(gpu_r.kernel_waves, cpu.nodes);
}

}  // namespace
}  // namespace gpumip::ivm
