#include "mip/snapshot.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <istream>
#include <limits>
#include <sstream>

#include "support/error.hpp"

namespace gpumip::mip {

namespace {

void write_vector(std::ostream& out, const linalg::Vector& v) {
  out << v.size();
  for (double x : v) out << ' ' << x;
  out << '\n';
}

/// Token reader over the snapshot text format. Tracks the 1-based line
/// number of the token being consumed so malformed or truncated input can
/// be reported with its location; every failure throws Error(kIoError).
class SnapshotReader {
 public:
  explicit SnapshotReader(std::istream& in) : in_(in) {}

  [[noreturn]] void fail(const std::string& what, const std::string& got = "") {
    throw Error(ErrorCode::kIoError,
                "snapshot: " + what + (got.empty() ? "" : " (got '" + got + "')") +
                    " at line " + std::to_string(line_) + ", " + context_);
  }

  /// Names the section being parsed, for error messages.
  void set_context(std::string context) { context_ = std::move(context); }

  /// Next whitespace-delimited token; fails on end of input.
  std::string token() {
    // Skip whitespace, counting newlines so errors carry the line number.
    int c = in_.get();
    while (c != std::istream::traits_type::eof() &&
           std::isspace(static_cast<unsigned char>(c)) != 0) {
      if (c == '\n') ++line_;
      c = in_.get();
    }
    if (c == std::istream::traits_type::eof()) fail("truncated input, expected more data");
    std::string tok;
    while (c != std::istream::traits_type::eof() &&
           std::isspace(static_cast<unsigned char>(c)) == 0) {
      tok.push_back(static_cast<char>(c));
      c = in_.get();
    }
    if (c == '\n') ++line_;
    return tok;
  }

  /// Reads one double, accepting "inf"/"-inf"/"nan" tokens (bound vectors
  /// routinely contain infinities; istream's num_get rejects them).
  double number() {
    const std::string tok = token();
    char* end = nullptr;
    const double value = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("expected a number", tok);
    return value;
  }

  /// Reads a non-negative integer count bounded by `limit`.
  long count(long limit) {
    const std::string tok = token();
    char* end = nullptr;
    const long value = std::strtol(tok.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') fail("expected a count", tok);
    if (value < 0) fail("negative count", tok);
    if (value > limit) fail("count " + tok + " exceeds sanity limit " + std::to_string(limit));
    return value;
  }

  linalg::Vector vector(long limit) {
    const long n = count(limit);
    linalg::Vector v(static_cast<std::size_t>(n));
    for (double& x : v) x = number();
    return v;
  }

 private:
  std::istream& in_;
  long line_ = 1;
  std::string context_ = "header";
};

constexpr long kMaxVectorLen = 1L << 26;
constexpr long kMaxFrontier = 1L << 24;

}  // namespace

void ConsistentSnapshot::serialize(std::ostream& out) const {
  out << std::setprecision(17);
  out << "gpumip-snapshot-v1\n";
  out << incumbent_objective << ' ' << nodes_solved_so_far << '\n';
  write_vector(out, incumbent_x);
  out << frontier.size() << '\n';
  for (const SnapshotNode& node : frontier) {
    out << node.bound << ' ' << node.depth << '\n';
    write_vector(out, node.lb);
    write_vector(out, node.ub);
  }
}

ConsistentSnapshot ConsistentSnapshot::deserialize(std::istream& in) {
  SnapshotReader r(in);
  const std::string magic = r.token();
  if (magic != "gpumip-snapshot-v1") r.fail("bad magic", magic);

  ConsistentSnapshot snap;
  r.set_context("incumbent");
  snap.incumbent_objective = r.number();
  if (std::isnan(snap.incumbent_objective)) r.fail("incumbent objective is NaN");
  snap.nodes_solved_so_far = r.count(std::numeric_limits<long>::max());
  snap.incumbent_x = r.vector(kMaxVectorLen);

  r.set_context("frontier header");
  const long frontier_count = r.count(kMaxFrontier);
  snap.frontier.resize(static_cast<std::size_t>(frontier_count));
  std::size_t expected_len = 0;
  for (long i = 0; i < frontier_count; ++i) {
    r.set_context("frontier node " + std::to_string(i));
    SnapshotNode& node = snap.frontier[static_cast<std::size_t>(i)];
    node.bound = r.number();
    if (std::isnan(node.bound)) r.fail("node bound is NaN");
    node.depth = static_cast<int>(r.count(1L << 30));
    node.lb = r.vector(kMaxVectorLen);
    node.ub = r.vector(kMaxVectorLen);
    // A node with mismatched or inconsistent bound vectors would silently
    // corrupt a restarted search; reject it here rather than mid-solve.
    if (node.lb.size() != node.ub.size()) r.fail("lb/ub length mismatch");
    if (i == 0) expected_len = node.lb.size();
    if (node.lb.size() != expected_len) r.fail("bound vector length differs from first node");
    for (std::size_t j = 0; j < node.lb.size(); ++j) {
      if (std::isnan(node.lb[j]) || std::isnan(node.ub[j])) r.fail("NaN bound entry");
      if (node.lb[j] > node.ub[j] + 1e-9) {
        r.fail("crossed bounds at variable " + std::to_string(j));
      }
    }
  }
  return snap;
}

std::string ConsistentSnapshot::to_string() const {
  std::ostringstream out;
  serialize(out);
  return out.str();
}

ConsistentSnapshot ConsistentSnapshot::from_string(const std::string& text) {
  std::istringstream in(text);
  return deserialize(in);
}

}  // namespace gpumip::mip
