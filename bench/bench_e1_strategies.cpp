// E1 — the four parallel execution strategies (paper section 3, claim C1).
//
// Scenario A (matrix fits one device): the paper predicts S2/S3 are the
// effective designs; S1 suffers divergent tree kernels and dies on device
// memory as trees grow; S4 pays per-iteration interconnect synchronization
// it does not need.
// Scenario B (matrix exceeds one device): only S4 (Big-MIP) can run at all.
#include "bench/common.hpp"
#include "parallel/strategies.hpp"
#include "problems/generators.hpp"
#include "support/strings.hpp"

namespace {

using namespace gpumip;

void report_line(const parallel::StrategyReport& r) {
  bench::row("  %-22s %-9s sim=%-12s dev=%-12s host=%-12s xfer=%-11s peak=%-11s %s",
             parallel::strategy_name(r.strategy),
             r.completed ? "ok" : "FAILS",
             human_seconds(r.sim_seconds).c_str(), human_seconds(r.device_seconds).c_str(),
             human_seconds(r.host_seconds).c_str(),
             human_bytes(r.bytes_h2d + r.bytes_d2h).c_str(),
             human_bytes(r.device_peak_bytes).c_str(),
             r.completed ? "" : "(device OOM)");
}

void scenario_a() {
  bench::title("E1-A", "strategies on a MIP whose matrix fits one device");
  Rng rng(41);
  problems::RandomMipConfig cfg;
  cfg.rows = 14;
  cfg.cols = 24;
  cfg.bound = 4.0;
  mip::MipModel model = problems::random_mip(cfg, rng);

  parallel::StrategyConfig config;
  config.mip.enable_cuts = false;
  config.devices = 4;
  double reference = 0.0;
  for (auto strategy : {parallel::Strategy::S1_GpuOnly, parallel::Strategy::S2_CpuOrchestrated,
                        parallel::Strategy::S3_Hybrid, parallel::Strategy::S4_BigMip}) {
    parallel::StrategyReport r = parallel::run_strategy(strategy, model, config);
    if (reference == 0.0) reference = r.result.objective;
    report_line(r);
    if (std::abs(r.result.objective - reference) > 1e-6) bench::note("OBJECTIVE MISMATCH!");
  }
  bench::note("expected shape: S2/S3 fastest (S3 <= S2); S1 pays divergent tree kernels;");
  bench::note("S4 pays interconnect sync per simplex iteration.");
}

void scenario_a_small_device() {
  bench::title("E1-A'", "same MIP, device memory too small for S1's tree");
  Rng rng(41);
  problems::RandomMipConfig cfg;
  cfg.rows = 14;
  cfg.cols = 24;
  cfg.bound = 4.0;
  mip::MipModel model = problems::random_mip(cfg, rng);
  const lp::StandardForm form = lp::build_standard_form(model.lp());

  parallel::StrategyConfig config;
  config.mip.enable_cuts = false;
  config.device.memory_bytes = parallel::lp_device_footprint(form) + 2048;
  for (auto strategy : {parallel::Strategy::S1_GpuOnly, parallel::Strategy::S2_CpuOrchestrated}) {
    report_line(parallel::run_strategy(strategy, model, config));
  }
  bench::note("expected shape: S1 fails (tree cannot fit), S2 unaffected (tree on host).");
}

void scenario_b() {
  bench::title("E1-B", "Big-MIP: LP matrix exceeds a single device");
  Rng rng(43);
  problems::RandomMipConfig cfg;
  cfg.rows = 20;
  cfg.cols = 40;
  cfg.bound = 2.0;
  cfg.integer_fraction = 0.4;
  mip::MipModel model = problems::random_mip(cfg, rng);
  const lp::StandardForm form = lp::build_standard_form(model.lp());

  parallel::StrategyConfig config;
  config.mip.enable_cuts = false;
  config.mip.max_nodes = 200;
  config.devices = 4;
  config.device.memory_bytes = parallel::lp_device_footprint(form) * 6 / 10;
  for (auto strategy : {parallel::Strategy::S2_CpuOrchestrated, parallel::Strategy::S3_Hybrid,
                        parallel::Strategy::S4_BigMip}) {
    report_line(parallel::run_strategy(strategy, model, config));
  }
  bench::note("expected shape: S2/S3 fail on allocation; S4 shards columns and completes.");
}

void BM_run_strategy(benchmark::State& state) {
  Rng rng(41);
  problems::RandomMipConfig cfg;
  cfg.rows = 12;
  cfg.cols = 20;
  cfg.bound = 3.0;
  mip::MipModel model = problems::random_mip(cfg, rng);
  parallel::StrategyConfig config;
  config.mip.enable_cuts = false;
  const auto strategy = static_cast<parallel::Strategy>(state.range(0));
  double sim = 0.0;
  for (auto _ : state) {
    parallel::StrategyReport r = parallel::run_strategy(strategy, model, config);
    sim = r.sim_seconds;
    benchmark::DoNotOptimize(r.result.objective);
  }
  state.counters["sim_seconds"] = sim;
}
BENCHMARK(BM_run_strategy)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  scenario_a();
  scenario_a_small_device();
  scenario_b();
  return gpumip::bench::run_benchmarks(argc, argv);
}
