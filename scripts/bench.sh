#!/usr/bin/env bash
# Recorded-baseline harness for the experiment benches (see EXPERIMENTS.md
# and docs/METRICS.md). Builds a Release tree with the observability layer
# ON, runs a fixed set of bench binaries in table-only mode
# (--benchmark_filter='$^' skips the google-benchmark wall-time loops; the
# printed series come from simulated clocks), harvests each binary's
# GPUMIP_METRICS_OUT export, and merges everything into one versioned JSON
# document (schema gpumip.bench-baseline.v1).
#
# The merged file doubles as the committed baseline (BENCH_baseline.json):
# counters and gauges are driven by the simulated device/network clocks and
# are deterministic run-to-run; histograms of host wall time (span metrics,
# idle time) are a recorded snapshot of the machine that produced the file.
#
# Usage: scripts/bench.sh [out.json] [jobs]
#        scripts/bench.sh --compare [baseline.json] [jobs]
#   out.json  merged baseline path        (default: BENCH_baseline.json)
#   jobs      parallel build jobs         (default: nproc)
#
# --compare reruns the suite into build-bench/current.json and diffs it
# against the committed baseline with scripts/bench_compare.py (tight
# tolerances on the deterministic device/LP/MIP ledgers, loose on protocol
# traffic, histograms skipped). Nonzero exit = regression; scripts/check.sh
# gate 8 runs this mode.
set -eu -o pipefail

cd "$(dirname "$0")/.."
BUILD=build-bench
MODE=baseline
BASELINE=
if [ "${1:-}" = "--compare" ]; then
  MODE=compare
  BASELINE="${2:-BENCH_baseline.json}"
  JOBS="${3:-$(nproc)}"
  OUT="$BUILD/current.json"
else
  OUT="${1:-BENCH_baseline.json}"
  JOBS="${2:-$(nproc)}"
fi

# The suite: every paper claim the baseline must witness, with margin.
#   e1  strategies        -> gpumip.gpu.xfer.{h2d,d2h}.bytes on full solves
#   e3  basis updates     -> C3 transfer ledger (H2D volume per update rule)
#   e4  cut round trip    -> C4 cut counts + payload bytes
#   e5  node reuse        -> C5 gpumip.lp.ops.refactor + gpumip.mip.reuse.hit_rate
#   e7  batching          -> C7 gpumip.lp.batch.size / gpumip.lp.batch.occupancy
#   e8  scale-out         -> per-rank simmpi message counts/bytes + idle
BENCHES="e1_strategies e3_basis_updates e4_cut_roundtrip e5_node_reuse e7_batching e8_scaleout"

echo "==> [bench] configure ($BUILD, Release, GPUMIP_OBS=ON)"
cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release -DGPUMIP_OBS=ON \
  >"$BUILD.configure.log" 2>&1

echo "==> [bench] build"
targets=()
for b in $BENCHES; do targets+=("bench_$b"); done
cmake --build "$BUILD" -j "$JOBS" --target "${targets[@]}" >"$BUILD.build.log" 2>&1

METRICS_DIR="$BUILD/metrics"
mkdir -p "$METRICS_DIR"
for b in $BENCHES; do
  echo "==> [bench] run bench_$b (tables + metrics export)"
  GPUMIP_METRICS_OUT="$METRICS_DIR/$b.json" \
    "./$BUILD/bench/bench_$b" --benchmark_filter='$^' \
    >"$METRICS_DIR/$b.out" 2>&1
done

echo "==> [bench] merge + validate -> $OUT"
python3 - "$OUT" "$METRICS_DIR" $BENCHES <<'PY'
import json, re, sys

out_path, metrics_dir, benches = sys.argv[1], sys.argv[2], sys.argv[3:]

merged = {
    "schema": "gpumip.bench-baseline.v1",
    "metrics_schema": "gpumip.metrics.v2",
    "benches": {},
}
for b in benches:
    with open(f"{metrics_dir}/{b}.json") as f:
        doc = json.load(f)
    # v2 adds labeled names + a "families" index; the per-kind maps are
    # shape-compatible with v1, so both merge identically.
    if doc.get("schema") not in ("gpumip.metrics.v1", "gpumip.metrics.v2"):
        sys.exit(f"bench {b}: unexpected metrics schema {doc.get('schema')!r}")
    if not doc.get("enabled", False):
        sys.exit(f"bench {b}: metrics export says observability is disabled; "
                 "rebuild with -DGPUMIP_OBS=ON")
    merged["benches"][b] = {
        "counters": doc["counters"],
        "gauges": doc["gauges"],
        "histograms": doc["histograms"],
    }

# Acceptance floor: the baseline must witness each paper-claim metric in at
# least one bench, and carry at least three benches overall.
def present(kind, pattern):
    rx = re.compile(pattern)
    return [b for b, m in merged["benches"].items()
            if any(rx.fullmatch(k) for k in m[kind])]

required = [
    ("counters", r"gpumip\.gpu\.xfer\.h2d\.bytes"),
    ("counters", r"gpumip\.gpu\.xfer\.d2h\.bytes"),
    ("counters", r"gpumip\.lp\.ops\.refactor"),
    ("gauges", r"gpumip\.mip\.reuse\.hit_rate"),
    ("histograms", r"gpumip\.lp\.batch\.occupancy(\{[^}]*\})?"),
    ("counters", r"gpumip\.simmpi\.sent\.bytes\{rank=\d+\}"),
    ("counters", r"gpumip\.lp\.solves\{method=[a-z_]+\}"),
    ("counters", r"gpumip\.gpu\.alloc\.calls"),
]
missing = [pat for kind, pat in required if not present(kind, pat)]
if missing:
    sys.exit("baseline is missing required metrics: " + ", ".join(missing))
if len(merged["benches"]) < 3:
    sys.exit("baseline needs at least three benches")

with open(out_path, "w") as f:
    json.dump(merged, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"    {len(merged['benches'])} benches, "
      f"{sum(len(m['counters']) + len(m['gauges']) + len(m['histograms']) for m in merged['benches'].values())} metrics")
PY

if [ "$MODE" = compare ]; then
  echo "==> [bench] compare against $BASELINE"
  if ! python3 scripts/bench_compare.py "$BASELINE" "$OUT"; then
    # A regression: before failing, say WHICH paper-claim category moved.
    # gpumip-report ranks claim categories (transfer, C3..C8) by the
    # labeled-metric deltas between the two runs (docs/TRACING.md).
    echo "==> [bench] regression — attributing with gpumip-report"
    cmake --build "$BUILD" -j "$JOBS" --target gpumip-report \
      >>"$BUILD.build.log" 2>&1
    "./$BUILD/tools/gpumip-report/gpumip-report" --attribute "$BASELINE" "$OUT" || true
    exit 1
  fi
fi

echo "==> [bench] OK ($OUT)"
