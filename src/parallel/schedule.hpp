// Schedule controller for the simmpi runtime (DESIGN.md, "simmpi
// concurrency model").
//
// The OS thread scheduler only ever shows one interleaving of rank threads
// per run, so ordering bugs in message-passing protocols survive arbitrary
// amounts of conventional testing. This layer makes the schedule itself a
// controllable, observable input:
//
//  * fuzzing  — a seeded controller perturbs message delivery order among
//    eligible messages (any reordering that preserves per-source FIFO, the
//    MPI non-overtaking rule) and injects yield points at send/recv/barrier
//    so a seed sweep explores many distinct delivery orders;
//  * deadlock detection — ranks blocked in recv()/barrier() register in a
//    wait-for graph; when no blocked rank can ever be satisfied (a cycle of
//    specific-source waits, a wait on an exited rank, or global quiescence
//    with nonempty waiters) the world aborts with a per-rank dump instead
//    of hanging ctest;
//  * record/replay — every delivery is appended to a DeliveryTrace which
//    can be serialized and later replayed exactly: each rank is forced to
//    consume messages in the recorded (source, seq) order, reproducing a
//    failing schedule deterministically.
//
// Environment knobs (read once per process, applied by run_ranks when the
// caller did not configure a schedule explicitly):
//   GPUMIP_SCHEDULE_SEED=N     enable fuzzing with seed N
//   GPUMIP_SCHEDULE_TRACE=path on abnormal termination, write the delivery
//                              trace of the failing run to `path`
//   GPUMIP_SCHEDULE_REPLAY=path replay the delivery order stored at `path`
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <random>
#include <string>
#include <vector>

namespace gpumip::parallel {

struct Message;  // simmpi.hpp

/// One observed message delivery: rank `rank` consumed the `seq`-th message
/// sent by `source` to it (per-(source,dest) sequence numbers start at 1).
/// `clock` is the receiver's simulated clock just after the Lamport merge.
struct DeliveryRecord {
  int rank = -1;
  int source = -1;
  int tag = 0;
  std::uint64_t seq = 0;
  double clock = 0.0;
};

/// Ordered log of every delivery in one run_ranks execution. The global
/// order is informational; replay enforces each rank's subsequence (which
/// fully determines the execution of a deterministic protocol).
struct DeliveryTrace {
  std::vector<DeliveryRecord> deliveries;

  bool empty() const noexcept { return deliveries.empty(); }
  std::size_t size() const noexcept { return deliveries.size(); }
};

/// Text round-trip (clocks serialized as hex-floats, so replay sees the
/// exact bits). deserialize/load throw Error(kIoError) on malformed input.
[[nodiscard]] std::string serialize_trace(const DeliveryTrace& trace);
[[nodiscard]] DeliveryTrace deserialize_trace(const std::string& text);
void save_trace(const DeliveryTrace& trace, const std::string& path);
[[nodiscard]] DeliveryTrace load_trace(const std::string& path);

/// Per-run schedule controls, passed to run_ranks.
struct ScheduleConfig {
  /// Perturb delivery order (seeded) and inject yield points.
  bool fuzz = false;
  std::uint64_t seed = 0;
  /// In fuzz mode, probability that try_recv reports "nothing yet" even
  /// when a matching message is queued (always legal in an asynchronous
  /// network; exercises polling loops).
  double spurious_try_recv = 0.25;
  /// Abort-with-dump on provable deadlock instead of hanging. The detector
  /// is purely conservative: it fires only when no blocked rank can ever
  /// be satisfied, so leaving it on costs nothing but the bookkeeping.
  bool detect_deadlock = true;
  /// Replay: force each rank to consume messages in this recorded order
  /// (prefix; once a rank's trace is exhausted it runs unconstrained).
  const DeliveryTrace* replay = nullptr;
  /// Record: append every delivery of this run here (caller-owned).
  DeliveryTrace* record = nullptr;
};

/// Process-wide schedule knobs from the environment (parsed once).
struct ScheduleEnv {
  std::optional<std::uint64_t> seed;
  std::string trace_path;   ///< failure-trace destination ("" = off)
  std::string replay_path;  ///< trace to replay ("" = off)
};
const ScheduleEnv& schedule_env();

namespace detail {

/// Mailbox-mirror header used by the deadlock detector (message existence
/// and identity without touching the per-rank mailbox locks).
struct MsgHeader {
  int source = -1;
  int tag = 0;
  std::uint64_t seq = 0;
  std::size_t bytes = 0;
};

/// The seeded hook inside detail::World: owns the wait-for graph, the
/// mailbox mirrors, the delivery trace, and the fuzzing RNGs.
///
/// Locking: all on_* event hooks and the detector take the internal mutex.
/// perturb()/spurious_try_recv_failure() use a per-rank RNG touched only by
/// the owning rank thread; overtake() uses a per-destination RNG that is
/// only ever called under that destination's mailbox mutex.
class Scheduler {
 public:
  void init(int n, const ScheduleConfig& config);

  bool fuzzing() const noexcept { return config_.fuzz; }
  bool replaying() const noexcept { return config_.replay != nullptr; }
  bool recording() const noexcept { return record_internally_; }
  /// Record deliveries even without a caller-supplied sink (failure dump).
  void force_recording() { record_internally_ = true; }

  /// Yield-injection point at send/recv/barrier entry (fuzz mode only).
  void perturb(int rank);
  /// Seeded spurious failure for try_recv (fuzz mode only).
  bool spurious_try_recv_failure(int rank);
  /// How many of the `eligible` reorderable tail messages the new message
  /// overtakes on insertion; uniform in [0, eligible]. Call under the
  /// destination mailbox mutex.
  std::size_t overtake(int dest, std::size_t eligible);

  /// Next forced delivery for `rank` under replay; nullptr when the rank's
  /// recorded subsequence is exhausted (or not replaying).
  const DeliveryRecord* replay_next(int rank) const;

  // --- event hooks (wait-for graph + mirror + trace maintenance) ---------
  void on_send(int rank, int dest, const MsgHeader& header, double clock);
  void on_delivered(int rank, const Message& msg, double clock);
  /// Registers `rank` blocked in recv; returns true when this block
  /// completes a provable deadlock (caller must abort the world).
  bool on_block_recv(int rank, int source, int tag, const DeliveryRecord* expect, double clock);
  /// Registers `rank` blocked in a barrier; same deadlock contract.
  bool on_block_barrier(int rank, double clock);
  /// Barrier released: every barrier-blocked rank is logically runnable.
  void on_barrier_release();
  void on_unblock(int rank, double clock);
  /// Rank left its body (normally or by exception); may expose a deadlock
  /// among the survivors — same contract as on_block_recv.
  bool on_exit(int rank, bool failed, double clock);

  bool deadlocked() const;
  /// Per-rank dump (blocked site, mailbox contents, simulated clock) of
  /// the detected deadlock; empty when none fired.
  std::string deadlock_report() const;

  /// The recorded trace (valid after all ranks joined).
  DeliveryTrace take_trace();

 private:
  enum class Phase { Running, BlockedRecv, BlockedBarrier, Exited };

  struct RankState {
    Phase phase = Phase::Running;
    int want_source = -1;            ///< valid when BlockedRecv
    int want_tag = -1;               ///< valid when BlockedRecv
    std::uint64_t want_seq = 0;      ///< nonzero: replay wants this exact message
    bool failed = false;             ///< exited via exception
    double clock = 0.0;              ///< last known simulated clock
    std::vector<MsgHeader> inbox;    ///< mirror of the rank's mailbox
    std::size_t replay_pos = 0;      ///< cursor into replay_plan_
  };

  bool header_satisfies(const MsgHeader& header, const RankState& state) const;
  /// Wait-for-graph fixpoint; fires at most once. Caller holds mutex_.
  bool detect_locked();
  std::string describe_rank_locked(int rank) const;

  ScheduleConfig config_;
  int size_ = 0;
  bool record_internally_ = false;

  mutable std::mutex mutex_;
  std::vector<RankState> ranks_;
  DeliveryTrace trace_;
  bool deadlock_fired_ = false;
  std::string deadlock_report_;

  std::vector<std::vector<DeliveryRecord>> replay_plan_;  ///< per-rank subsequence
  std::vector<std::mt19937_64> yield_rngs_;   ///< owner-thread only
  std::vector<std::mt19937_64> insert_rngs_;  ///< under dest mailbox mutex
};

}  // namespace detail

}  // namespace gpumip::parallel
