// gpumip-lint protocol analysis: wire-format symmetry (R13) and
// tag-protocol coverage (R14) over the simmpi serialization layer.
//
// Every simmpi message is a hand-written ByteWriter/ByteReader pair, and
// nothing in the type system ties the two sides together: a serializer can
// write a field the deserializer never reads, write it as a different
// type, or guard it behind a branch the other side does not mirror — and
// the bug only surfaces as a corrupted decode (or worse, a silently
// misaligned one) at runtime. R13 makes the symmetry machine-checked: it
// pairs each serializer with its deserializer by naming convention
// (encode_/decode_, serialize_/deserialize_, write_/read_, save_/load_),
// extracts the typed operation sequence (write<T>/read<T>,
// write_doubles/read_doubles, write_ints/read_ints) along every CFG path
// of both bodies, and compares the path sets: mismatched types, field
// counts, or branch/loop asymmetries are findings. An untyped `w.write(x)`
// (deduced T) is a wildcard that matches any scalar read.
//
// R14 covers the dispatch layer above the bytes: (a) every message tag
// passed to a send site must be examined by some receive/dispatch handler
// somewhere in the scanned set (an `== tag` / `!= tag` comparison, a
// `case tag:` label, or a recv-site argument) — a tag that is only ever
// sent is a dead or mistyped protocol leg; and (b) every function that
// constructs a ByteReader (a top-level deserializer) must check
// `exhausted()` before returning, so trailing bytes in a payload are a
// typed protocol error instead of silent acceptance.
//
// Both rules share the `wire-ok` inline waiver.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "callgraph.hpp"
#include "index.hpp"
#include "lexer.hpp"
#include "lint.hpp"

namespace gpumip::lint {

/// Runs R13 + R14 over the scanned set. `functions`/`graph` are the shared
/// declaration index and call graph built by run_lint; `noreturn_names`
/// feeds the CFG builder for the per-path sequence extraction.
void check_protocol(const std::vector<Scanned>& files,
                    const std::vector<FunctionDecl>& functions, const CallGraph& graph,
                    const std::set<std::string>& noreturn_names,
                    std::vector<Finding>& findings);

}  // namespace gpumip::lint
