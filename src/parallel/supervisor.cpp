#include "parallel/supervisor.hpp"

#include <algorithm>
#include <deque>
#include <optional>

#include "check/invariants.hpp"
#include "check/message_audit.hpp"
#include "gpu/arena.hpp"
#include "gpu/device.hpp"
#include "obs/obs.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "support/assert.hpp"
#include "support/log.hpp"

namespace gpumip::parallel {

namespace {

enum Tag : int {
  kTagRequest = 1,  // worker -> supervisor: idle, wants work
  kTagWork = 2,     // supervisor -> worker: one subproblem
  kTagResult = 3,   // worker -> supervisor: assignment outcome
  kTagStop = 4,     // supervisor -> worker: shut down
};

struct Subproblem {
  linalg::Vector lb, ub;
  double bound = -1e300;
  int depth = 0;
};

std::vector<std::byte> encode_subproblem(const Subproblem& sub, double cutoff,
                                         std::uint64_t track_id) {
  ByteWriter w;
  w.write(track_id);
  w.write(cutoff);
  w.write(sub.bound);
  w.write(sub.depth);
  w.write_doubles(sub.lb);
  w.write_doubles(sub.ub);
  return std::move(w).take();
}

struct WorkItem {
  std::uint64_t track_id = 0;  ///< message-audit tracking id
  double cutoff;
  Subproblem sub;
};

WorkItem decode_subproblem(std::span<const std::byte> payload) {
  ByteReader r(payload);
  WorkItem item;
  item.track_id = r.read<std::uint64_t>();
  item.cutoff = r.read<double>();
  item.sub.bound = r.read<double>();
  item.sub.depth = r.read<int>();
  item.sub.lb = r.read_doubles();
  item.sub.ub = r.read_doubles();
  check_protocol(r.exhausted(), "decode_subproblem: trailing bytes after payload");
  return item;
}

struct WorkerReport {
  std::uint64_t track_id = 0;  ///< echo of the assignment's tracking id
  bool improved = false;
  double objective = 0.0;
  linalg::Vector x;
  std::vector<Subproblem> frontier;  // unsolved remainder (node budget hit)
  long nodes = 0;
  double busy_seconds = 0.0;
};

std::vector<std::byte> encode_report(const WorkerReport& report) {
  ByteWriter w;
  w.write(report.track_id);
  w.write<std::uint8_t>(report.improved ? 1 : 0);
  w.write(report.objective);
  w.write_doubles(report.x);
  w.write(report.nodes);
  w.write(report.busy_seconds);
  w.write<std::uint64_t>(report.frontier.size());
  for (const Subproblem& sub : report.frontier) {
    w.write(sub.bound);
    w.write(sub.depth);
    w.write_doubles(sub.lb);
    w.write_doubles(sub.ub);
  }
  return std::move(w).take();
}

WorkerReport decode_report(std::span<const std::byte> payload) {
  ByteReader r(payload);
  WorkerReport report;
  report.track_id = r.read<std::uint64_t>();
  report.improved = r.read<std::uint8_t>() != 0;
  report.objective = r.read<double>();
  report.x = r.read_doubles();
  report.nodes = r.read<long>();
  report.busy_seconds = r.read<double>();
  const auto count = r.read<std::uint64_t>();
  // gpumip-lint: hot-alloc(decode materializes the worker's returned frontier; sized exactly from the header)
  report.frontier.resize(count);
  for (Subproblem& sub : report.frontier) {
    sub.bound = r.read<double>();
    sub.depth = r.read<int>();
    sub.lb = r.read_doubles();
    sub.ub = r.read_doubles();
  }
  check_protocol(r.exhausted(), "decode_report: trailing bytes after payload");
  return report;
}

SupervisorResult run_supervised(const mip::MipModel& model,
                                const mip::ConsistentSnapshot* resume,
                                const SupervisorOptions& options) {
  check_arg(options.workers >= 1, "supervisor: need at least one worker");
  SupervisorResult out;
  // gpumip-lint: hot-alloc(per-worker result tables sized once at startup, before any dispatch)
  out.worker_nodes.assign(static_cast<std::size_t>(options.workers), 0);
  // gpumip-lint: hot-alloc(per-worker result tables sized once at startup, before any dispatch)
  out.worker_busy.assign(static_cast<std::size_t>(options.workers), 0.0);

  // ---- supervisor-side ramp-up (sequential, before ranks start) ----
  // Run the root (with cuts + heuristics per options) under a node budget,
  // stopping once the frontier is wide enough; its snapshot seeds the pool.
  mip::MipOptions ramp_opts = options.mip;
  ramp_opts.max_nodes = options.ramp_up_nodes;
  mip::BnbSolver ramp_solver(model, ramp_opts);

  mip::ConsistentSnapshot seed;
  double incumbent_obj = 1e300;
  linalg::Vector incumbent_x;
  bool solved_in_ramp_up = false;
  mip::MipResult ramp_result;

  if (resume != nullptr) {
    seed = *resume;
    if (seed.has_incumbent()) {
      incumbent_obj = seed.incumbent_objective;
      incumbent_x = seed.incumbent_x;
    }
    // A resume still needs the engine's standard form: run a zero-node
    // solve to build it (cuts must match the original run: mip.enable_cuts
    // must be false for resumable runs; documented in the header).
  } else {
    ramp_result = ramp_solver.solve();
    if (ramp_result.status == mip::MipStatus::NodeLimit) {
      seed = ramp_solver.capture_snapshot();
      if (seed.has_incumbent()) {
        incumbent_obj = seed.incumbent_objective;
        incumbent_x = seed.incumbent_x;
      }
    } else {
      solved_in_ramp_up = true;
    }
    // Simulated ramp-up cost: the supervisor's own LP work.
    out.ramp_up_seconds =
        lp::cpu_seconds(ramp_result.stats.total_ops) * options.rate_scale;
  }

  if (solved_in_ramp_up) {
    out.result = ramp_result;
    out.makespan = out.ramp_up_seconds;
    return out;
  }

  // Workers all search the same strengthened model.
  const mip::MipModel& working_model =
      resume != nullptr ? model : ramp_solver.working_model();

  std::deque<Subproblem> pool;
  for (const mip::SnapshotNode& node : seed.frontier) {
    // gpumip-lint: hot-alloc(the subproblem pool IS the search state; its size is the frontier width, not the node count)
    pool.push_back({node.lb, node.ub, node.bound, node.depth});
  }

  const int ranks = options.workers + 1;
  long dispatched_total = 0;
  long checkpoints = 0;
  // Every subproblem shipped supervisor->worker is tracked; at shutdown the
  // auditor proves none was lost or double-delivered (checked builds throw,
  // release builds log).
  check::MessageAuditor auditor;

  auto body = [&](Comm& comm) {
    if (comm.rank() == 0) {
      // ------------- supervisor -------------
      // The sampler (if any) lives on this rank's thread and is ticked
      // with the supervisor's sim clock: every sampled row is stamped at
      // a deterministic boundary of the simulated timeline.
      std::optional<obs::Sampler::Bind> sampler_bind;
      // gpumip-lint: hot-alloc(in-place optional::emplace of the Bind guard, once before the dispatch loop)
      if (options.sampler != nullptr) sampler_bind.emplace(*options.sampler);
      comm.advance(out.ramp_up_seconds);
      GPUMIP_OBS_SAMPLE_TICK(comm.now());
      int outstanding = 0;
      std::vector<int> waiting;  // idle workers with no work yet
      int stopped = 0;
      long completed = 0;

      auto best_pool_node = [&]() {
        std::size_t best = 0;
        for (std::size_t i = 1; i < pool.size(); ++i) {
          if (pool[i].bound < pool[best].bound) best = i;
        }
        return best;
      };
      auto dispatch = [&](int worker) {
        const std::size_t idx = best_pool_node();
        Subproblem sub = std::move(pool[idx]);
        pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(idx));
        const std::uint64_t track_id = auditor.shipped(worker);
        comm.send(worker, kTagWork, encode_subproblem(sub, incumbent_obj, track_id));
        ++outstanding;
        ++dispatched_total;
        GPUMIP_OBS_COUNT("gpumip.supervisor.dispatched");
#ifdef GPUMIP_OBS_ENABLED
        // Per-worker dispatch counts as a rank dimension on the family
        // (low frequency: one lookup per dispatched subproblem).
        obs::counter("gpumip.supervisor.dispatched", {{"rank", std::to_string(worker)}}).add(1);
#endif
        GPUMIP_TRACE_INSTANT("gpumip.supervisor.dispatch", static_cast<std::uint64_t>(worker));
      };
      auto emit_checkpoint = [&] {
        if (options.checkpoint_interval <= 0 || !options.on_checkpoint) return;
        if (completed == 0 || completed % options.checkpoint_interval != 0) return;
        // Consistent parallel snapshot: queued nodes only would LOSE the
        // in-flight assignments; since outstanding work is unfinished, the
        // snapshot is only emitted when nothing is in flight. (The
        // supervisor could also retain dispatched copies; we keep the
        // stronger quiesced-point semantics and emit opportunistically.)
        if (outstanding != 0) return;
        mip::ConsistentSnapshot snap;
        snap.incumbent_objective = incumbent_obj;
        snap.incumbent_x = incumbent_x;
        snap.nodes_solved_so_far = completed;
        for (const Subproblem& sub : pool) {
          // gpumip-lint: hot-alloc(checkpoint snapshot copies the live frontier by design (C2 coverage proof))
          snap.frontier.push_back({sub.lb, sub.ub, sub.bound, sub.depth});
        }
        // Paper C2: the emitted snapshot must cover the live search — the
        // in-flight count is part of the validated condition.
        GPUMIP_VALIDATE(check::check_snapshot(snap, nullptr, outstanding));
        options.on_checkpoint(snap);
        ++checkpoints;
        GPUMIP_OBS_COUNT("gpumip.supervisor.checkpoints");
        GPUMIP_TRACE_INSTANT("gpumip.supervisor.checkpoint", static_cast<std::uint64_t>(completed));
      };

      while (stopped < options.workers) {
        Message msg = comm.recv();
        GPUMIP_OBS_SAMPLE_TICK(comm.now());
        if (msg.tag == kTagResult) {
          --outstanding;
          ++completed;
          WorkerReport report = decode_report(msg.payload);
          auditor.completed(report.track_id);
          out.worker_nodes[static_cast<std::size_t>(msg.source - 1)] += report.nodes;
          out.worker_busy[static_cast<std::size_t>(msg.source - 1)] += report.busy_seconds;
          GPUMIP_OBS_COUNT("gpumip.supervisor.completed");
          GPUMIP_TRACE_INSTANT("gpumip.supervisor.result", static_cast<std::uint64_t>(msg.source));
          GPUMIP_OBS_RECORD("gpumip.supervisor.worker_busy_seconds", report.busy_seconds);
#ifdef GPUMIP_OBS_ENABLED
          // Same distribution split by worker rank, so gpumip-report can
          // attribute busy-time skew to a specific rank.
          obs::histogram("gpumip.supervisor.worker_busy_seconds",
                         {{"rank", std::to_string(msg.source)}})
              .record(report.busy_seconds);
#endif
          if (report.improved && report.objective < incumbent_obj - 1e-12) {
            incumbent_obj = report.objective;
            incumbent_x = report.x;
            // Prune the pool against the new incumbent.
            std::erase_if(pool, [&](const Subproblem& sub) {
              return sub.bound >= incumbent_obj - 1e-9;
            });
          }
          for (Subproblem& sub : report.frontier) {
            // gpumip-lint: hot-alloc(surviving subproblems move into the pool; bound vectors are moved, not copied)
            if (sub.bound < incumbent_obj - 1e-9) pool.push_back(std::move(sub));
          }
          emit_checkpoint();
          continue;
        }
        check_internal(msg.tag == kTagRequest, "supervisor: unexpected tag");
        if (!pool.empty()) {
          dispatch(msg.source);
        } else if (outstanding > 0) {
          // gpumip-lint: hot-alloc(idle-worker list bounded by the worker count)
          waiting.push_back(msg.source);
        } else {
          comm.send(msg.source, kTagStop, std::span<const std::byte>{});
          ++stopped;
        }
        // Serve newly available work to waiting workers.
        while (!waiting.empty() && !pool.empty()) {
          const int worker = waiting.back();
          waiting.pop_back();
          dispatch(worker);
        }
        // If the pool drained and nothing is outstanding, release waiters.
        if (pool.empty() && outstanding == 0) {
          for (int worker : waiting) {
            comm.send(worker, kTagStop, std::span<const std::byte>{});
            ++stopped;
          }
          waiting.clear();
        }
      }
    } else {
      // ------------- worker -------------
      // Per-worker device residency (ROADMAP item 4): each worker rank
      // owns a Device (and, unless disabled, an arena) threaded through
      // every BnbSolver it runs, so per-node relaxations charge real
      // footprints. One rank = one thread, so no sharing hazard.
      std::optional<gpu::Device> wdevice;
      std::optional<gpu::DeviceArena> warena;
      if (options.model_worker_device) {
        // gpumip-lint: hot-alloc(one Device per worker rank at startup, before any node is received)
        wdevice.emplace();
        // gpumip-lint: hot-alloc(one arena per worker rank; it amortizes per-node allocations away)
        if (options.worker_arena) warena.emplace(*wdevice, "worker.node.lp");
      }
      for (;;) {
        comm.send(0, kTagRequest, std::span<const std::byte>{});
        Message msg = comm.recv(0);
        if (msg.tag == kTagStop) break;
        check_internal(msg.tag == kTagWork, "worker: unexpected tag");
        const WorkItem item = decode_subproblem(msg.payload);
        auditor.delivered(item.track_id, comm.rank());

        mip::ConsistentSnapshot task;
        task.incumbent_objective = item.cutoff;
        // gpumip-lint: hot-alloc(one-node snapshot seeding the worker's solver; one per dispatched subproblem)
        task.frontier.push_back({item.sub.lb, item.sub.ub, item.sub.bound, item.sub.depth});

        mip::MipOptions wopts = options.mip;
        wopts.enable_cuts = false;  // the model is already strengthened
        wopts.max_nodes = options.worker_node_budget;
        wopts.initial_cutoff = item.cutoff;
        wopts.relax_device = wdevice ? &*wdevice : nullptr;
        wopts.relax_arena = warena ? &*warena : nullptr;
        // Span closes after the advance() below, so its simulated duration
        // is the subproblem's compute time — the per-rank "busy" segments
        // gpumip-trace aggregates.
        GPUMIP_TRACE_BEGIN("gpumip.worker.subproblem", item.track_id);
        mip::BnbSolver solver(working_model, wopts);
        mip::MipResult r = solver.solve_from(task);

        WorkerReport report;
        report.track_id = item.track_id;
        report.nodes = r.stats.nodes_evaluated;
        report.busy_seconds = lp::cpu_seconds(r.stats.total_ops) * options.rate_scale;
        comm.advance(report.busy_seconds);
        GPUMIP_TRACE_END("gpumip.worker.subproblem");
        if (r.has_solution) {
          // r.objective is user-sense; convert back to min form via the
          // model sense for supervisor-side comparison.
          const double min_obj =
              working_model.lp().sense() == lp::Sense::Maximize ? -r.objective : r.objective;
          report.improved = true;
          report.objective = min_obj;
          report.x = r.x;
        }
        if (r.status == mip::MipStatus::NodeLimit) {
          mip::ConsistentSnapshot rest = solver.capture_snapshot();
          for (const mip::SnapshotNode& node : rest.frontier) {
            // gpumip-lint: hot-alloc(unfinished frontier rides back to the supervisor in the report payload)
            report.frontier.push_back({node.lb, node.ub, node.bound, node.depth});
          }
        }
        comm.send(0, kTagResult, encode_report(report));
      }
    }
  };

  RunOptions run_options;
  run_options.network = options.network;
  run_options.schedule = options.schedule;
  RunReport run = run_ranks(ranks, body, run_options);

  // Shutdown audit: every shipped subproblem must have come back exactly
  // once. Checked builds fail hard; release builds log and continue.
  if constexpr (kCheckedBuild) {
    auditor.finalize();
  } else if (auditor.in_flight() != 0 || auditor.anomalies() != 0) {
    GPUMIP_LOG(Warn) << "supervisor message audit: " << auditor.report();
  }

  out.makespan = run.makespan;
  out.network = run.network;
  out.subproblems_dispatched = dispatched_total;
  out.checkpoints_emitted = checkpoints;

  // Final result assembly (supervisor state).
  const lp::StandardForm form = lp::build_standard_form(working_model.lp());
  out.result.has_solution = !incumbent_x.empty();
  out.result.status =
      out.result.has_solution ? mip::MipStatus::Optimal : mip::MipStatus::Infeasible;
  if (out.result.has_solution) {
    out.result.objective = form.user_objective(incumbent_obj);
    out.result.bound = out.result.objective;
    out.result.x = incumbent_x;
  }
  for (long n : out.worker_nodes) out.result.stats.nodes_evaluated += n;
  return out;
}

}  // namespace

SupervisorResult solve_supervised(const mip::MipModel& model, const SupervisorOptions& options) {
  return run_supervised(model, nullptr, options);
}

SupervisorResult resume_supervised(const mip::MipModel& model,
                                   const mip::ConsistentSnapshot& snapshot,
                                   const SupervisorOptions& options) {
  return run_supervised(model, &snapshot, options);
}

}  // namespace gpumip::parallel
