// Integer-Vector-Matrix (IVM) encoding of a permutation branch-and-bound
// tree (Gmys et al., cited by the paper in section 2.3 as the viable
// representation for an entirely-GPU B&B). A node is not a heap object but
// a position vector — a Lehmer/factoradic code — so a whole depth-first
// traversal lives in O(n) integers, and a work interval [begin, end) in
// factoradic rank can be split for stealing with pure integer arithmetic.
#pragma once

#include <cstdint>
#include <vector>

#include "support/error.hpp"

namespace gpumip::ivm {

/// Factoradic rank arithmetic for permutations of n <= 20 (20! < 2^62).
class Factoradic {
 public:
  /// digits[d] in [0, n-d); rank = Σ digits[d] * (n-1-d)!.
  static std::uint64_t rank(const std::vector<int>& digits, int n);
  static std::vector<int> digits(std::uint64_t rank, int n);
  static std::uint64_t factorial(int n);
};

/// One IVM: a DFS cursor over the permutation tree restricted to the
/// factoradic interval [position, end).
class Ivm {
 public:
  Ivm() = default;
  Ivm(int n, std::uint64_t begin_rank, std::uint64_t end_rank);

  int n() const noexcept { return n_; }
  bool exhausted() const noexcept { return exhausted_; }
  int depth() const noexcept { return depth_; }

  /// Jobs selected along the current prefix (depth()+1 entries).
  std::vector<int> prefix() const;

  /// The current position as a factoradic rank (deeper digits zero).
  std::uint64_t position_rank() const;
  std::uint64_t end_rank() const noexcept { return end_rank_; }

  /// Remaining subtree size (number of full permutations still covered).
  std::uint64_t remaining() const;

  /// Descend: expand the current prefix by its first child.
  void descend();

  /// Prune the current subtree: advance to the next sibling (carrying up).
  void advance();

  /// Splits the remaining interval in half; this IVM keeps the first half,
  /// the returned IVM owns the second. Requires remaining() >= 2.
  Ivm split();

  /// True when the current prefix is a complete permutation.
  bool at_leaf() const noexcept { return depth_ == n_ - 1; }

 private:
  void check_exhausted();

  int n_ = 0;
  int depth_ = 0;
  std::vector<int> pos_;   // factoradic digits; pos_[d] < n-d
  std::uint64_t end_rank_ = 0;
  bool exhausted_ = true;
};

}  // namespace gpumip::ivm
