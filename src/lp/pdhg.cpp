#include "lp/pdhg.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "sparse/ops.hpp"

namespace gpumip::lp {

// kInf comes from lp/model.hpp (via standard_form.hpp).

/// All solve-lifetime buffers, allocated once in solve() so the iteration
/// loop (the gpumip-lint R6 root) stays allocation-free.
struct PdhgSolver::Workspace {
  std::span<const double> lb, ub;

  linalg::Vector x, y;        ///< current iterates
  linalg::Vector x_next;      ///< primal update target (previous x after swap)
  linalg::Vector at_y;        ///< n scratch: Aᵀy, extrapolated primal, rays
  linalg::Vector ax;          ///< m scratch: A·(candidate / extrapolated / ray)
  linalg::Vector dy;          ///< m scratch: dual drift ray
  linalg::Vector x_sum, y_sum;  ///< running iterate sums since last restart
  linalg::Vector x_avg, y_avg;  ///< average-iterate candidate
  linalg::Vector x_anchor, y_anchor;  ///< iterates at the last restart (drift base)
  linalg::Vector best_x, best_y;      ///< best-scored candidate seen so far
  linalg::Vector tau, sigma;          ///< per-column / per-row step sizes

  double b_scale = 1.0;  ///< 1 + ‖b‖_inf
  double c_scale = 1.0;  ///< 1 + ‖c‖_inf
  long iteration = 0;
  long since_restart = 0;
  double last_restart_score = kInf;
  double best_score = kInf;
  double best_objective = 0.0;
  bool warm = false;
  LpOpStats ops;
};

PdhgSolver::PdhgSolver(const StandardForm& form, PdhgOptions options)
    : form_(&form), options_(options) {}

void PdhgSolver::init_workspace(Workspace& ws, std::span<const double> lb,
                                std::span<const double> ub, const PdhgWarmStart* warm) const {
  const StandardForm& form = *form_;
  const int m = form.num_rows;
  const int n = form.num_vars;
  ws.lb = lb;
  ws.ub = ub;

  ws.x.assign(n, 0.0);
  ws.y.assign(m, 0.0);
  ws.x_next.assign(n, 0.0);
  ws.at_y.assign(n, 0.0);
  ws.ax.assign(m, 0.0);
  ws.dy.assign(m, 0.0);
  ws.x_sum.assign(n, 0.0);
  ws.y_sum.assign(m, 0.0);
  ws.x_avg.assign(n, 0.0);
  ws.y_avg.assign(m, 0.0);
  ws.tau.assign(n, 0.0);
  ws.sigma.assign(m, 0.0);

  // Diagonal preconditioning from the matrix 1-norms (Pock–Chambolle α=1):
  // τ_j = s/‖A_{·j}‖₁, σ_i = s/‖A_{i·}‖₁ is convergent for s ≤ 1. Empty
  // rows/columns are uncoupled — any positive step works there, and the
  // drift-ray certificates below turn their unbounded walks into verdicts.
  const sparse::Csr& a = form.a_rows;
  for (int i = 0; i < m; ++i) {
    double row_norm = 0.0;
    for (int k = a.row_start[i]; k < a.row_start[i + 1]; ++k) {
      const double mag = std::abs(a.values[k]);
      row_norm += mag;
      ws.tau[a.col_index[k]] += mag;
    }
    ws.sigma[i] = options_.step_scale / (row_norm > 0.0 ? row_norm : 1.0);
  }
  for (int j = 0; j < n; ++j) {
    ws.tau[j] = options_.step_scale / (ws.tau[j] > 0.0 ? ws.tau[j] : 1.0);
  }

  ws.b_scale = 1.0;
  for (double v : form.b) ws.b_scale = std::max(ws.b_scale, 1.0 + std::abs(v));
  ws.c_scale = 1.0;
  for (double v : form.c) ws.c_scale = std::max(ws.c_scale, 1.0 + std::abs(v));

  // Starting point: the parent's iterates when provided (projected into the
  // child's bounds — branching tightened them), else the projection of 0.
  const bool warm_x = warm != nullptr && static_cast<int>(warm->x.size()) == n;
  const bool warm_y = warm != nullptr && static_cast<int>(warm->y.size()) == m;
  ws.warm = warm_x || warm_y;
  for (int j = 0; j < n; ++j) {
    const double seed = warm_x ? warm->x[j] : 0.0;
    ws.x[j] = std::min(std::max(seed, lb[j]), ub[j]);
  }
  if (warm_y) {
    std::copy(warm->y.begin(), warm->y.end(), ws.y.begin());
  }

  ws.x_anchor = ws.x;
  ws.y_anchor = ws.y;
  ws.best_x = ws.x;
  ws.best_y = ws.y;

  ws.ops.m = m;
  ws.ops.n = n;
  ws.ops.nnz = static_cast<long>(a.values.size());

  // Score the starting point so the first restart decision has a baseline
  // and an IterationLimit exit always has a candidate to report.
  ws.best_score = evaluate_kkt(ws, ws.x, ws.y, &ws.best_objective);
  ws.last_restart_score = ws.best_score;
}

double PdhgSolver::evaluate_kkt(Workspace& ws, std::span<const double> x,
                                std::span<const double> y, double* objective) const {
  const StandardForm& form = *form_;
  const int m = form.num_rows;
  const int n = form.num_vars;

  // Primal residual ‖Ax − b‖_inf (x is box-feasible by projection).
  sparse::spmv(1.0, form.a_rows, x, 0.0, ws.ax);
  double res_p = 0.0;
  for (int i = 0; i < m; ++i) res_p = std::max(res_p, std::abs(ws.ax[i] - form.b[i]));

  // Dual objective with box bounds: d = bᵀy + Σ_j inf over [l,u] of r_j x_j
  // with r = c − Aᵀy. Where the needed bound is infinite the term is
  // clipped and the clipped magnitude IS the dual infeasibility.
  sparse::spmv_t(1.0, form.a_rows, y, 0.0, ws.at_y);
  double dual_obj = 0.0;
  for (int i = 0; i < m; ++i) dual_obj += form.b[i] * y[i];
  double res_d = 0.0;
  double primal_obj = 0.0;
  for (int j = 0; j < n; ++j) {
    primal_obj += form.c[j] * x[j];
    const double r = form.c[j] - ws.at_y[j];
    if (r > 0.0) {
      if (ws.lb[j] > -kInf) {
        dual_obj += ws.lb[j] * r;
      } else {
        res_d = std::max(res_d, r);
      }
    } else if (r < 0.0) {
      if (ws.ub[j] < kInf) {
        dual_obj += ws.ub[j] * r;
      } else {
        res_d = std::max(res_d, -r);
      }
    }
  }
  const double gap =
      std::abs(primal_obj - dual_obj) / (1.0 + std::abs(primal_obj) + std::abs(dual_obj));

  ws.ops.spmv += 2;
  ws.ops.matvec_n += 2;
  if (objective != nullptr) *objective = primal_obj;
  const double score = std::max({res_p / ws.b_scale, res_d / ws.c_scale, gap});
  return std::isfinite(score) ? score : kInf;
}

std::optional<LpStatus> PdhgSolver::check_certificates(Workspace& ws) const {
  // The iterate drift since the last restart approximates the divergence
  // ray of an infeasible/unbounded instance. Wait until the direction has
  // had time to settle, then test it as an approximate Farkas certificate.
  if (ws.since_restart < 100) return std::nullopt;
  const StandardForm& form = *form_;
  const int m = form.num_rows;
  const int n = form.num_vars;
  const double ctol = options_.certificate_tol;

  // Primal ray dx = x − x_anchor (normalized): if A·dx ≈ 0, dx respects the
  // recession cone of the box, and cᵀdx < 0, the LP is unbounded below.
  double norm = 0.0;
  for (int j = 0; j < n; ++j) {
    ws.x_next[j] = ws.x[j] - ws.x_anchor[j];
    norm = std::max(norm, std::abs(ws.x_next[j]));
  }
  if (norm > 1e-3 * static_cast<double>(ws.since_restart)) {
    bool in_cone = true;
    double obj_dir = 0.0;
    for (int j = 0; j < n; ++j) {
      ws.x_next[j] /= norm;
      obj_dir += form.c[j] * ws.x_next[j];
      if (ws.x_next[j] > ctol && ws.ub[j] < kInf) in_cone = false;
      if (ws.x_next[j] < -ctol && ws.lb[j] > -kInf) in_cone = false;
    }
    sparse::spmv(1.0, form.a_rows, ws.x_next, 0.0, ws.ax);
    double ray_res = 0.0;
    for (int i = 0; i < m; ++i) ray_res = std::max(ray_res, std::abs(ws.ax[i]));
    ws.ops.spmv += 1;
    ws.ops.matvec_n += 1;
    if (in_cone && ray_res <= ctol * ws.b_scale && obj_dir < -ctol) {
      return LpStatus::Unbounded;
    }
  }

  // Dual ray dy = y − y_anchor (normalized): with r = Aᵀdy, the instance is
  // infeasible when bᵀdy − sup_{l≤x≤u} rᵀx > 0 (Farkas) — the sup must be
  // finite, so r may only load on the finite bound sides.
  norm = 0.0;
  for (int i = 0; i < m; ++i) {
    ws.dy[i] = ws.y[i] - ws.y_anchor[i];
    norm = std::max(norm, std::abs(ws.dy[i]));
  }
  if (norm > 1e-3 * static_cast<double>(ws.since_restart)) {
    double value = 0.0;
    for (int i = 0; i < m; ++i) {
      ws.dy[i] /= norm;
      value += form.b[i] * ws.dy[i];
    }
    sparse::spmv_t(1.0, form.a_rows, ws.dy, 0.0, ws.at_y);
    bool bounded = true;
    for (int j = 0; j < n; ++j) {
      const double r = ws.at_y[j];
      if (r > ctol) {
        if (ws.ub[j] < kInf) {
          value -= r * ws.ub[j];
        } else {
          bounded = false;
        }
      } else if (r < -ctol) {
        if (ws.lb[j] > -kInf) {
          value -= r * ws.lb[j];
        } else {
          bounded = false;
        }
      }
    }
    ws.ops.spmv += 1;
    ws.ops.matvec_n += 1;
    if (bounded && value > ctol * ws.b_scale) {
      return LpStatus::Infeasible;
    }
  }
  return std::nullopt;
}

LpStatus PdhgSolver::iterate_loop(Workspace& ws) const {
  const StandardForm& form = *form_;
  const int m = form.num_rows;
  const int n = form.num_vars;

  while (ws.iteration < options_.max_iterations) {
    // x⁺ = proj_[l,u](x − τ ∘ (c − Aᵀy))
    sparse::spmv_t(1.0, form.a_rows, ws.y, 0.0, ws.at_y);
    for (int j = 0; j < n; ++j) {
      const double step = ws.x[j] - ws.tau[j] * (form.c[j] - ws.at_y[j]);
      ws.x_next[j] = std::min(std::max(step, ws.lb[j]), ws.ub[j]);
    }
    // y⁺ = y + σ ∘ (b − A(2x⁺ − x)); the extrapolation reuses the Aᵀy buffer.
    for (int j = 0; j < n; ++j) ws.at_y[j] = 2.0 * ws.x_next[j] - ws.x[j];
    sparse::spmv(1.0, form.a_rows, ws.at_y, 0.0, ws.ax);
    for (int i = 0; i < m; ++i) ws.y[i] += ws.sigma[i] * (form.b[i] - ws.ax[i]);
    std::swap(ws.x, ws.x_next);

    for (int j = 0; j < n; ++j) ws.x_sum[j] += ws.x[j];
    for (int i = 0; i < m; ++i) ws.y_sum[i] += ws.y[i];
    ++ws.iteration;
    ++ws.since_restart;
    ws.ops.iterations += 1;
    ws.ops.spmv += 2;
    ws.ops.matvec_n += 4;
    GPUMIP_OBS_COUNT("gpumip.lp.pdhg.iterations");

    if (ws.since_restart % options_.check_interval != 0) continue;

    // Score both candidates: the last iterate and the running average (the
    // ergodic sequence — PDHG's average converges faster than its tail).
    const double inv = 1.0 / static_cast<double>(ws.since_restart);
    for (int j = 0; j < n; ++j) ws.x_avg[j] = ws.x_sum[j] * inv;
    for (int i = 0; i < m; ++i) ws.y_avg[i] = ws.y_sum[i] * inv;
    double obj_cur = 0.0;
    double obj_avg = 0.0;
    const double score_cur = evaluate_kkt(ws, ws.x, ws.y, &obj_cur);
    const double score_avg = evaluate_kkt(ws, ws.x_avg, ws.y_avg, &obj_avg);
    const bool avg_better = score_avg < score_cur;
    const double score = avg_better ? score_avg : score_cur;
    const linalg::Vector& cand_x = avg_better ? ws.x_avg : ws.x;
    const linalg::Vector& cand_y = avg_better ? ws.y_avg : ws.y;

    if (score < ws.best_score) {
      ws.best_score = score;
      ws.best_objective = avg_better ? obj_avg : obj_cur;
      std::copy(cand_x.begin(), cand_x.end(), ws.best_x.begin());
      std::copy(cand_y.begin(), cand_y.end(), ws.best_y.begin());
    }
    if (score <= options_.tol) return LpStatus::Optimal;

    if (const auto verdict = check_certificates(ws)) return *verdict;

    // Restart to the better candidate once it has decayed enough relative
    // to the last restart point, or when a restart is overdue.
    if (score <= options_.restart_factor * ws.last_restart_score ||
        ws.since_restart >= options_.restart_max_interval) {
      if (&cand_x != &ws.x) std::copy(cand_x.begin(), cand_x.end(), ws.x.begin());
      if (&cand_y != &ws.y) std::copy(cand_y.begin(), cand_y.end(), ws.y.begin());
      std::copy(ws.x.begin(), ws.x.end(), ws.x_anchor.begin());
      std::copy(ws.y.begin(), ws.y.end(), ws.y_anchor.begin());
      std::fill(ws.x_sum.begin(), ws.x_sum.end(), 0.0);
      std::fill(ws.y_sum.begin(), ws.y_sum.end(), 0.0);
      ws.since_restart = 0;
      ws.last_restart_score = score;
      ws.ops.restarts += 1;
      GPUMIP_OBS_COUNT("gpumip.lp.pdhg.restarts");
      GPUMIP_TRACE_INSTANT("gpumip.lp.pdhg.restart", ws.iteration);
    }
  }
  return LpStatus::IterationLimit;
}

LpResult PdhgSolver::finish(Workspace& ws, LpStatus status) const {
  const StandardForm& form = *form_;
  LpResult result;
  result.status = status;
  result.objective = ws.best_objective;
  result.x = std::move(ws.best_x);
  result.duals = std::move(ws.best_y);
  result.reduced_costs.assign(form.num_vars, 0.0);
  sparse::spmv_t(1.0, form.a_rows, result.duals, 0.0, ws.at_y);
  for (int j = 0; j < form.num_vars; ++j) {
    result.reduced_costs[j] = form.c[j] - ws.at_y[j];
  }
  ws.ops.spmv += 1;
  result.iterations = ws.iteration;
  result.ops = ws.ops;
  // No basis: PDHG is basis-free; result.basis stays empty and consumers
  // that need one (cut separators) must not be routed here (path_chooser).
  GPUMIP_OBS_COUNT_L("gpumip.lp.solves", {"method", "pdhg"});
  if (ws.warm) GPUMIP_OBS_COUNT("gpumip.lp.pdhg.warm_starts");
  publish_op_stats(result.ops);
  return result;
}

LpResult PdhgSolver::solve(std::span<const double> lb, std::span<const double> ub,
                           const PdhgWarmStart* warm) {
  GPUMIP_OBS_SPAN_L("gpumip.lp.solve.seconds", {"method", "pdhg"});
  Workspace ws;
  init_workspace(ws, lb, ub, warm);
  const LpStatus status = iterate_loop(ws);
  return finish(ws, status);
}

}  // namespace gpumip::lp
