#include "lp/path_chooser.hpp"

#include <algorithm>
#include <cstdlib>
#include <string_view>

#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace gpumip::lp {

const char* code_path_name(CodePath path) noexcept {
  switch (path) {
    case CodePath::DenseGpu: return "DenseGpu";
    case CodePath::SparseHybrid: return "SparseHybrid";
  }
  return "Unknown";
}

CodePath choose_path(const sparse::Csr& a, const PathChooserOptions& options) {
  if (std::min(a.rows, a.cols) <= options.small_dimension) return CodePath::DenseGpu;
  return a.density() >= options.density_threshold ? CodePath::DenseGpu
                                                  : CodePath::SparseHybrid;
}

const char* lp_method_name(LpMethod method) noexcept {
  switch (method) {
    case LpMethod::Simplex: return "simplex";
    case LpMethod::InteriorPoint: return "interior_point";
    case LpMethod::Pdhg: return "pdhg";
  }
  return "unknown";
}

std::optional<LpMethod> lp_method_override() {
  const char* raw = std::getenv("GPUMIP_LP_METHOD");
  if (raw == nullptr) return std::nullopt;
  const std::string_view name(raw);
  if (name == "simplex") return LpMethod::Simplex;
  if (name == "interior_point") return LpMethod::InteriorPoint;
  if (name == "pdhg") return LpMethod::Pdhg;
  return std::nullopt;
}

namespace {

void record_choice(LpMethod method, bool forced) {
  // One counter family with a method dimension (rather than a name per
  // method): the switch keeps each site's labels literal so the macro can
  // cache the lookup.
  switch (method) {
    case LpMethod::Simplex:
      GPUMIP_OBS_COUNT_L("gpumip.lp.method.chosen", {"method", "simplex"});
      break;
    case LpMethod::InteriorPoint:
      GPUMIP_OBS_COUNT_L("gpumip.lp.method.chosen", {"method", "interior_point"});
      break;
    case LpMethod::Pdhg:
      GPUMIP_OBS_COUNT_L("gpumip.lp.method.chosen", {"method", "pdhg"});
      break;
  }
  if (forced) GPUMIP_OBS_COUNT("gpumip.lp.method.forced");
  // arg encodes the method ordinal so the trace shows the flips themselves.
  GPUMIP_TRACE_INSTANT("gpumip.lp.method.choice", static_cast<int>(method));
}

}  // namespace

LpMethod choose_method(const sparse::Csr& a, const MethodContext& ctx,
                       const MethodChoiceOptions& options) {
  if (const auto forced = lp_method_override()) {
    record_choice(*forced, /*forced=*/true);
    return *forced;
  }
  if (ctx.forced) {
    record_choice(*ctx.forced, /*forced=*/true);
    return *ctx.forced;
  }

  const double density = a.density();
  const bool sparse_enough = density <= options.pdhg_density_max;
  const bool accuracy_ok = ctx.tol >= options.pdhg_tol_min;
  LpMethod method = LpMethod::Simplex;

  if (ctx.warm_basis) {
    // Dual simplex from the parent basis is a handful of cheap iterations;
    // nothing beats it regardless of shape (paper section 5.3).
    method = LpMethod::Simplex;
  } else if (ctx.batch_size >= options.batch_occupancy_min && sparse_enough &&
             accuracy_ok && a.rows >= options.pdhg_batched_min_rows) {
    // Lockstep waves amortize the launch latency over the whole batch and
    // move K·nnz bytes where simplex waves move K·m² — PDHG's home turf.
    method = LpMethod::Pdhg;
  } else if (sparse_enough && accuracy_ok &&
             a.rows >= (ctx.warm_iterates ? options.pdhg_batched_min_rows
                                          : options.pdhg_min_rows)) {
    // Sequential PDHG still wins when the instance is large and sparse
    // enough that factorizations dominate; parent iterates lower the bar.
    method = LpMethod::Pdhg;
  } else if (a.rows >= options.ipm_min_rows) {
    // Cold, large, not sparse enough for PDHG: few heavy IPM kernels beat
    // thousands of simplex iterations.
    method = LpMethod::InteriorPoint;
  } else {
    method = LpMethod::Simplex;
  }

  record_choice(method, /*forced=*/false);
  return method;
}

}  // namespace gpumip::lp
