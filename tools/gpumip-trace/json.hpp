// Minimal JSON DOM shared by the analysis tools (gpumip-trace,
// gpumip-report). All inputs are machine-written and bounded — metrics
// exports, time-series exports, trace-event files, bench baselines — so a
// small recursive-descent reader keeps the tools dependency-free (same
// stance as gpumip-lint's lexer). Extracted from gpumip-trace/analyze.cpp
// so gpumip-report can parse the same documents without a second copy.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace gpumip::tracetool {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const std::string& key) const {
    if (type != Type::kObject) return nullptr;
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  /// Parses the whole document into `out`. Returns false and sets `error`
  /// (with a byte offset) on malformed input or trailing characters.
  bool parse(JsonValue& out, std::string& error);

 private:
  void skip_ws();
  bool fail(const std::string& what);
  bool expect(char c);
  bool literal(const char* word, std::size_t len);
  bool string(std::string& out);
  bool value(JsonValue& out);

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

/// `v->number` when `v` is a number, else `fallback`.
double number_or(const JsonValue* v, double fallback);

/// `v->str` when `v` is a string, else `fallback`.
std::string string_or(const JsonValue* v, const std::string& fallback);

}  // namespace gpumip::tracetool
