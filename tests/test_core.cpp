#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/gpumip.hpp"

namespace gpumip {
namespace {

using problems::RandomMipConfig;

mip::MipModel small_mip() {
  mip::MipModel m;
  m.lp().set_sense(lp::Sense::Maximize);
  const int x = m.add_int_col(1.0, 0, 10), y = m.add_int_col(1.0, 0, 10);
  m.lp().add_row_le({{x, 2.0}, {y, 1.0}}, 5.0);
  m.lp().add_row_le({{x, 1.0}, {y, 3.0}}, 7.0);
  return m;
}

TEST(Facade, SolvesSmallMip) {
  Solver solver;
  SolveReport report = solver.solve(small_mip());
  EXPECT_EQ(report.status, mip::MipStatus::Optimal);
  EXPECT_TRUE(report.has_solution);
  EXPECT_NEAR(report.objective, 3.0, 1e-6);
  EXPECT_TRUE(report.strategy_completed);
  EXPECT_GT(report.sim_seconds, 0.0);
  EXPECT_GT(report.bytes_transferred, 0u);
}

TEST(Facade, PureLpWorksToo) {
  mip::MipModel m;
  m.lp().set_sense(lp::Sense::Maximize);
  const int x = m.add_col(3.0), y = m.add_col(5.0);
  m.lp().add_row_le({{x, 1.0}}, 4.0);
  m.lp().add_row_le({{y, 2.0}}, 12.0);
  m.lp().add_row_le({{x, 3.0}, {y, 2.0}}, 18.0);
  Solver solver;
  SolveReport report = solver.solve(m);
  EXPECT_EQ(report.status, mip::MipStatus::Optimal);
  EXPECT_NEAR(report.objective, 36.0, 1e-6);
}

TEST(Facade, PresolveMapsSolutionBack) {
  mip::MipModel m = small_mip();
  // Add a fixed column that contributes 7 to the (maximization) objective.
  const int fixed = m.add_col(7.0, 1.0, 1.0);
  (void)fixed;
  SolverOptions opts;
  opts.presolve = true;
  Solver solver(opts);
  SolveReport report = solver.solve(m);
  EXPECT_EQ(report.status, mip::MipStatus::Optimal);
  EXPECT_GT(report.presolve_cols_removed, 0);
  ASSERT_EQ(static_cast<int>(report.x.size()), m.num_cols());
  EXPECT_NEAR(report.x[2], 1.0, 1e-9);
  EXPECT_NEAR(report.objective, 3.0 + 7.0, 1e-6);
}

TEST(Facade, PresolveDetectsInfeasibility) {
  mip::MipModel m;
  const int x = m.add_int_col(1.0, 0, 4);
  m.lp().add_row_ge({{x, 1.0}}, 5.0);
  Solver solver;
  EXPECT_EQ(solver.solve(m).status, mip::MipStatus::Infeasible);
}

TEST(Facade, StrategySelectionWorks) {
  for (auto strategy : {parallel::Strategy::S1_GpuOnly, parallel::Strategy::S3_Hybrid,
                        parallel::Strategy::S4_BigMip}) {
    SolverOptions opts;
    opts.strategy = strategy;
    opts.devices = 2;
    Solver solver(opts);
    SolveReport report = solver.solve(small_mip());
    EXPECT_EQ(report.status, mip::MipStatus::Optimal) << parallel::strategy_name(strategy);
    EXPECT_NEAR(report.objective, 3.0, 1e-6);
  }
}

TEST(Facade, BackendOverrideRespected) {
  SolverOptions opts;
  opts.lp_backend = LpBackend::SparseHybrid;
  Solver solver(opts);
  SolveReport report = solver.solve(small_mip());
  EXPECT_EQ(report.lp_path, lp::CodePath::SparseHybrid);
}

TEST(Facade, AutoBackendPicksDenseForSmall) {
  Solver solver;
  SolveReport report = solver.solve(small_mip());
  EXPECT_EQ(report.lp_path, lp::CodePath::DenseGpu);
}

TEST(Facade, SupervisedModeMatchesSequential) {
  Rng rng(500);
  RandomMipConfig cfg;
  cfg.rows = 10;
  cfg.cols = 16;
  cfg.bound = 4.0;
  mip::MipModel m = problems::random_mip(cfg, rng);
  Solver sequential;
  SolveReport seq = sequential.solve(m);
  SolverOptions par_opts;
  par_opts.workers = 3;
  par_opts.mip.enable_cuts = false;
  par_opts.supervisor.worker_node_budget = 25;
  Solver par(par_opts);
  SolveReport pr = par.solve(m);
  ASSERT_EQ(seq.status, mip::MipStatus::Optimal);
  ASSERT_EQ(pr.status, mip::MipStatus::Optimal);
  EXPECT_NEAR(pr.objective, seq.objective, 1e-6);
  EXPECT_GT(pr.parallel_makespan, 0.0);
}

TEST(Facade, MpsFileEndToEnd) {
  const std::string path = "/tmp/gpumip_facade_test.mps";
  {
    std::ofstream out(path);
    problems::write_mps(small_mip(), out);
  }
  Solver solver;
  SolveReport report = solver.solve_mps_file(path);
  EXPECT_EQ(report.status, mip::MipStatus::Optimal);
  EXPECT_NEAR(report.objective, 3.0, 1e-6);
  std::remove(path.c_str());
}

TEST(Facade, AnatomyIsReported) {
  SolverOptions opts;
  opts.mip.enable_cuts = false;
  opts.mip.enable_heuristics = false;
  opts.presolve = false;
  Solver solver(opts);
  SolveReport report = solver.solve(small_mip());
  EXPECT_GT(report.anatomy.total_nodes, 0);
  EXPECT_EQ(report.anatomy.total_nodes, report.anatomy.branched + report.anatomy.leaves());
}

TEST(Facade, VersionString) {
  EXPECT_NE(std::string(version()).find("gpumip"), std::string::npos);
}

}  // namespace
}  // namespace gpumip
