// gpumip-lint engine tests (tools/gpumip-lint/): one seeded-violation
// fixture per rule R1-R5 proving the rule fires, the matching clean fixture
// proving it stays quiet, and the suppression-file round trip. These are
// the same contracts scripts/check.sh gate 7 enforces over src/.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "lint.hpp"

namespace lint = gpumip::lint;

namespace {

lint::Options doc_options() {
  lint::Options options;
  options.metrics_doc =
      "| `gpumip.test.documented.total` | — | — | fixture |\n"
      "| `gpumip.test.documented.seconds` | s | — | fixture |\n";
  options.have_metrics_doc = true;
  return options;
}

std::vector<lint::Finding> lint_one(const std::string& path, const std::string& content,
                                    const lint::Options& options) {
  std::vector<lint::Suppression> none;
  return lint::run_lint({{path, content}}, options, none);
}

bool has_rule(const std::vector<lint::Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const lint::Finding& f) { return f.rule == rule; });
}

}  // namespace

// ---- R1: memory-space confinement -----------------------------------------

TEST(LintR1, RawDeviceAccessOutsideDeviceContextFires) {
  const auto findings = lint_one("src/mip/fixture.cpp",
                                 "void f(B& b) { auto s = b.as<double>(); }\n", doc_options());
  ASSERT_TRUE(has_rule(findings, "R1"));
  EXPECT_EQ(findings[0].line, 1);
}

TEST(LintR1, DeviceContextFilesAreExempt) {
  const std::string code = "void f(B& b) { auto s = b.as<double>(); }\n";
  for (const char* path : {"src/linalg/batched.cpp", "src/linalg/device_blas.hpp",
                           "src/sparse/device_sparse.cpp", "src/gpu/device.cpp"}) {
    EXPECT_FALSE(has_rule(lint_one(path, code, doc_options()), "R1")) << path;
  }
  // Stem matching is exact: a lookalike file is NOT exempt.
  EXPECT_TRUE(has_rule(lint_one("src/gpu/device_other.cpp", code, doc_options()), "R1"));
}

TEST(LintR1, AnnotationWithReasonWaives) {
  const auto findings =
      lint_one("src/mip/fixture.cpp",
               "// gpumip-lint: device-context(inspects staged kernel input)\n"
               "void f(B& b) { auto s = b.as<double>(); }\n",
               doc_options());
  EXPECT_FALSE(has_rule(findings, "R1"));
}

TEST(LintR1, MalformedAnnotationIsItselfAFinding) {
  const auto findings = lint_one("src/mip/fixture.cpp",
                                 "// gpumip-lint: device-context()\n"
                                 "void f() {}\n",
                                 doc_options());
  EXPECT_TRUE(has_rule(findings, "SUP"));
}

// ---- R2: transfer accounting ----------------------------------------------

TEST(LintR2, RawByteCopyOutsideTransferEngineFires) {
  for (const char* prim : {"std::memcpy(d, s, n)", "memmove(d, s, n)", "std::memset(d, 0, n)"}) {
    const std::string code = std::string("void f() { ") + prim + "; }\n";
    EXPECT_TRUE(has_rule(lint_one("src/lp/fixture.cpp", code, doc_options()), "R2")) << prim;
  }
}

TEST(LintR2, TransferEngineIsExempt) {
  const auto findings =
      lint_one("src/gpu/device.cpp", "void f() { std::memcpy(d, s, n); }\n", doc_options());
  EXPECT_FALSE(has_rule(findings, "R2"));
}

TEST(LintR2, TypedCopyIntoDeviceSpanFires) {
  const auto findings = lint_one(
      "src/lp/fixture.cpp",
      "void f(B& b) { std::copy(v.begin(), v.end(), b.as<double>().data()); }\n", doc_options());
  EXPECT_TRUE(has_rule(findings, "R2"));
}

TEST(LintR2, HostToHostCopyIsQuiet) {
  const auto findings = lint_one(
      "src/lp/fixture.cpp", "void f() { std::copy(v.begin(), v.end(), w.begin()); }\n",
      doc_options());
  EXPECT_TRUE(findings.empty());
}

TEST(LintR2, CommentAndStringMentionsAreIgnored) {
  const auto findings = lint_one("src/lp/fixture.cpp",
                                 "// memcpy would be wrong here\n"
                                 "const char* kDoc = \"std::memcpy\";\n",
                                 doc_options());
  EXPECT_TRUE(findings.empty());
}

// ---- R3: error contract ----------------------------------------------------

TEST(LintR3, RawStdExceptionFires) {
  EXPECT_TRUE(has_rule(lint_one("src/lp/fixture.cpp",
                                "void f() { throw std::runtime_error(\"boom\"); }\n",
                                doc_options()),
                       "R3"));
  EXPECT_TRUE(has_rule(
      lint_one("src/lp/fixture.cpp", "void f() { throw \"bare\"; }\n", doc_options()), "R3"));
}

TEST(LintR3, DeclaredErrorSubclassIsQuiet) {
  const auto findings = lint_one("src/lp/fixture.cpp",
                                 "struct FixtureError : Error {};\n"
                                 "void f() { throw FixtureError(); }\n",
                                 doc_options());
  EXPECT_FALSE(has_rule(findings, "R3"));
}

TEST(LintR3, SubclassHierarchyIsTransitiveAcrossFiles) {
  // Base declared in one file, derived thrown in another: the collection
  // pass is global, like the real Error hierarchy in support/error.hpp.
  std::vector<lint::Suppression> none;
  const auto findings = lint::run_lint(
      {{"src/support/fixture.hpp", "class MidError : public Error {};\n"},
       {"src/lp/fixture.cpp",
        "struct LeafError : public MidError {};\n"
        "void f() { throw detail::LeafError(\"x\"); }\n"}},
      doc_options(), none);
  EXPECT_FALSE(has_rule(findings, "R3"));
}

TEST(LintR3, RethrowIsQuiet) {
  const auto findings = lint_one(
      "src/lp/fixture.cpp", "void f() { try { g(); } catch (...) { throw; } }\n", doc_options());
  EXPECT_TRUE(findings.empty());
}

// ---- R4: metric-name grammar ----------------------------------------------

TEST(LintR4, NameOutsideGpumipNamespaceFires) {
  EXPECT_TRUE(has_rule(lint_one("src/lp/fixture.cpp",
                                "void f() { GPUMIP_OBS_COUNT(\"lp.fixture.calls\"); }\n",
                                doc_options()),
                       "R4"));
  // Too few components and illegal characters also break the grammar.
  EXPECT_TRUE(has_rule(
      lint_one("src/lp/fixture.cpp", "void f() { GPUMIP_OBS_COUNT(\"gpumip.only\"); }\n",
               doc_options()),
      "R4"));
  EXPECT_TRUE(has_rule(lint_one("src/lp/fixture.cpp",
                                "void f() { GPUMIP_OBS_COUNT(\"gpumip.Fixture.Calls\"); }\n",
                                doc_options()),
                       "R4"));
}

TEST(LintR4, UndocumentedNameFires) {
  EXPECT_TRUE(has_rule(lint_one("src/lp/fixture.cpp",
                                "void f() { GPUMIP_OBS_COUNT(\"gpumip.fixture.undocumented\"); }\n",
                                doc_options()),
                       "R4"));
}

TEST(LintR4, DocumentedConformingNameIsQuiet) {
  const auto findings = lint_one(
      "src/lp/fixture.cpp",
      "void f() { GPUMIP_OBS_COUNT(\"gpumip.test.documented.total\"); }\n"
      "void g() { GPUMIP_OBS_RECORD(\"gpumip.test.documented.seconds\", 0.5); }\n",
      doc_options());
  EXPECT_TRUE(findings.empty());
}

TEST(LintR4, RegistryLookupsAreCheckedToo) {
  EXPECT_TRUE(has_rule(lint_one("src/lp/fixture.cpp",
                                "void f() { obs::counter(\"lp.fixture.calls\").add(1); }\n",
                                doc_options()),
                       "R4"));
}

TEST(LintR4, DynamicNamesAreSkipped) {
  // Rank-indexed names are assembled at runtime; only literals are
  // statically checkable (the runtime export check in gate 6 covers these).
  const auto findings = lint_one(
      "src/lp/fixture.cpp", "void f() { obs::counter(prefix + \".sent.msgs\").add(1); }\n",
      doc_options());
  EXPECT_TRUE(findings.empty());
}

// ---- Suppressions ----------------------------------------------------------

TEST(LintSuppress, JustifiedEntrySilencesAndIsMarkedUsed) {
  std::vector<lint::Finding> parse_findings;
  auto sups = lint::parse_suppressions(
      "# comment line\n"
      "R2 lp/fixture.cpp std::memcpy -- host-only fixture serialization\n",
      "(suppressions)", parse_findings);
  ASSERT_TRUE(parse_findings.empty());
  ASSERT_EQ(sups.size(), 1u);
  const auto findings = lint::run_lint(
      {{"src/lp/fixture.cpp", "void f() { std::memcpy(d, s, n); }\n"}}, doc_options(), sups);
  EXPECT_TRUE(findings.empty());
  EXPECT_TRUE(sups[0].used);
}

TEST(LintSuppress, StaleEntryIsAFinding) {
  std::vector<lint::Finding> parse_findings;
  auto sups = lint::parse_suppressions("R2 lp/fixture.cpp std::memcpy -- excuse with no offender\n",
                                       "(suppressions)", parse_findings);
  const auto findings =
      lint::run_lint({{"src/lp/clean.cpp", "void f() {}\n"}}, doc_options(), sups);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "SUP");
  EXPECT_NE(findings[0].message.find("stale"), std::string::npos);
}

TEST(LintSuppress, MissingJustificationIsRejected) {
  std::vector<lint::Finding> parse_findings;
  auto sups =
      lint::parse_suppressions("R2 lp/fixture.cpp std::memcpy\n", "(suppressions)", parse_findings);
  EXPECT_TRUE(sups.empty());
  ASSERT_EQ(parse_findings.size(), 1u);
  EXPECT_EQ(parse_findings[0].rule, "SUP");
}

TEST(LintSuppress, WrongRuleOrFileDoesNotMatch) {
  std::vector<lint::Finding> parse_findings;
  auto sups = lint::parse_suppressions(
      "R1 lp/fixture.cpp std::memcpy -- wrong rule\n"
      "R2 mip/other.cpp std::memcpy -- wrong file\n",
      "(suppressions)", parse_findings);
  const auto findings = lint::run_lint(
      {{"src/lp/fixture.cpp", "void f() { std::memcpy(d, s, n); }\n"}}, doc_options(), sups);
  // The R2 finding survives and both entries are reported stale.
  EXPECT_TRUE(has_rule(findings, "R2"));
  EXPECT_EQ(std::count_if(findings.begin(), findings.end(),
                          [](const lint::Finding& f) { return f.rule == "SUP"; }),
            2);
}

// ---- R5: standalone headers -------------------------------------------------

#ifndef GPUMIP_TEST_CXX
#define GPUMIP_TEST_CXX "c++"
#endif

TEST(LintR5, MissingIncludeFiresAndSelfContainedHeaderIsQuiet) {
  namespace fs = std::filesystem;
  const fs::path root = fs::temp_directory_path() / "gpumip_lint_r5";
  fs::create_directories(root / "sub");
  {
    std::ofstream bad(root / "sub" / "bad.hpp");
    bad << "void f(std::string s);\n";  // needs <string> but does not include it
    std::ofstream good(root / "sub" / "good.hpp");
    good << "#include <string>\nvoid g(std::string s);\n";
  }
  const auto findings = lint::check_headers_standalone(
      {"sub/bad.hpp", "sub/good.hpp"}, root.string(), GPUMIP_TEST_CXX,
      (root / "scratch").string());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R5");
  EXPECT_NE(findings[0].file.find("bad.hpp"), std::string::npos);
  fs::remove_all(root);
}

// ---- The shipped gate inputs ----------------------------------------------

TEST(LintGate, SelfTestFixturesAllBehave) {
  std::ostringstream report;
  EXPECT_TRUE(lint::run_self_test(report)) << report.str();
}
