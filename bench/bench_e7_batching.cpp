// E7 — concurrent solution of many small problems (paper section 5.5,
// claim C7).
//
// One small LP cannot fill the device: launch overhead and low occupancy
// dominate. Three execution modes for a batch of K small basis solves
// (LU factor + triangular solves, the kernel core of a relaxation):
//   (a) one-at-a-time on a single stream,
//   (b) round-robin across concurrent streams (CUDA-streams style),
//   (c) a single MAGMA-style batched launch.
// Simulated throughput vs K shows the streams ceiling (parallel_slots) and
// the batched mode's occupancy win; the memory ceiling bounds K.
#include <memory>

#include "bench/common.hpp"
#include "linalg/batched.hpp"
#include "lp/batched_lp.hpp"
#include "obs/sampler.hpp"
#include "problems/generators.hpp"
#include "support/strings.hpp"

namespace {

using namespace gpumip;
using linalg::Matrix;

std::vector<Matrix> make_batch(int count, int n, Rng& rng) {
  std::vector<Matrix> mats;
  for (int i = 0; i < count; ++i) {
    Matrix a = Matrix::random(n, n, rng);
    for (int d = 0; d < n; ++d) a(d, d) += 4.0;
    mats.push_back(std::move(a));
  }
  return mats;
}

// All three modes start from device-resident data (matrices uploaded and
// stats reset before timing): the comparison isolates kernel execution —
// launch overhead, occupancy, and stream concurrency — as in section 5.5.

double run_sequential(const std::vector<Matrix>& mats) {
  gpu::Device device;
  std::vector<linalg::DeviceMatrix> dmats;
  std::vector<linalg::DeviceVector> rhs;
  for (const Matrix& m : mats) {
    dmats.push_back(linalg::DeviceMatrix::upload(device, 0, m));
    rhs.emplace_back(device, m.rows());
  }
  device.synchronize();
  device.reset_stats();
  for (std::size_t i = 0; i < dmats.size(); ++i) {
    auto pivots = linalg::dev_getrf(0, dmats[i]);
    linalg::dev_getrs(0, dmats[i], pivots, rhs[i]);
  }
  return device.synchronize();
}

double run_streams(const std::vector<Matrix>& mats, int streams) {
  gpu::Device device;
  std::vector<gpu::StreamId> ids = {0};
  for (int s = 1; s < streams; ++s) ids.push_back(device.create_stream());
  std::vector<linalg::DeviceMatrix> dmats;
  std::vector<linalg::DeviceVector> rhs;
  for (const Matrix& m : mats) {
    dmats.push_back(linalg::DeviceMatrix::upload(device, 0, m));
    rhs.emplace_back(device, m.rows());
  }
  device.synchronize();
  device.reset_stats();
  for (std::size_t i = 0; i < dmats.size(); ++i) {
    const gpu::StreamId stream = ids[i % ids.size()];
    auto pivots = linalg::dev_getrf(stream, dmats[i]);
    linalg::dev_getrs(stream, dmats[i], pivots, rhs[i]);
  }
  return device.synchronize();
}

double run_batched(const std::vector<Matrix>& mats) {
  gpu::Device device;
  auto batch = linalg::DeviceBatch::upload(device, 0, mats);
  linalg::DeviceVector rhs(device, batch.n() * batch.count());
  device.synchronize();
  device.reset_stats();
  auto pivots = linalg::batched_getrf(0, batch);
  linalg::batched_getrs(0, batch, pivots, rhs);
  return device.synchronize();
}

void print_experiment() {
  bench::title("E7", "small-problem concurrency: sequential vs streams vs batched");
  const int n = 24;
  bench::row("  basis size m=%d; throughput in problems per simulated second", n);
  bench::row("  %-7s %-16s %-16s %-16s %-14s %-14s", "K", "sequential", "16-streams",
             "batched", "streams/seq", "batched/seq");
  Rng rng(401);
  for (int k : {1, 4, 16, 64, 256, 1024}) {
    auto mats = make_batch(k, n, rng);
    const double t_seq = run_sequential(mats);
    const double t_str = run_streams(mats, 16);
    const double t_bat = run_batched(mats);
    bench::row("  %-7d %-16.0f %-16.0f %-16.0f %-14.1f %-14.1f", k, k / t_seq, k / t_str,
               k / t_bat, t_seq / t_str, t_seq / t_bat);
  }
  bench::note("expected shape: streams help up to parallel_slots (16x); the batched launch");
  bench::note("keeps winning beyond that because one big kernel reaches full occupancy and");
  bench::note("pays launch overhead and transfer latency once.");
}

void memory_ceiling() {
  bench::title("E7-b", "device-memory ceiling on the batch size");
  const int n = 64;
  bench::row("  %-14s %-12s", "device-memory", "max-batch(m=64)");
  for (std::uint64_t mem : {64ull << 20, 1ull << 30, 16ull << 30}) {
    const std::uint64_t per_problem = static_cast<std::uint64_t>(n) * n * sizeof(double) +
                                      static_cast<std::uint64_t>(n) * sizeof(double);
    bench::row("  %-14s %llu", human_bytes(mem).c_str(),
               static_cast<unsigned long long>(mem / per_problem));
  }
  bench::note("the paper's example: a 1 GiB relaxation on a 64 GiB device leaves room for");
  bench::note("dozens of concurrent branch-and-cut node solves.");
}

void whole_relaxations() {
  bench::title("E7-c", "whole LP relaxations: sequential vs streams vs lockstep waves");
  bench::row("  %-7s %-14s %-14s %-14s %-10s %-12s", "K", "sequential", "16-streams",
             "lockstep", "waves", "kernels(seq/lock)");
  Rng rng(403);
  for (int k : {4, 16, 64}) {
    std::vector<std::unique_ptr<lp::StandardForm>> storage;
    std::vector<const lp::StandardForm*> views;
    for (int i = 0; i < k; ++i) {
      lp::LpModel model = problems::dense_lp(10, 15, rng);
      storage.push_back(std::make_unique<lp::StandardForm>(lp::build_standard_form(model)));
      views.push_back(storage.back().get());
    }
    gpu::Device d1, d2, d3;
    const auto seq = lp::solve_batched(views, d1, lp::BatchMode::Sequential);
    const auto str = lp::solve_batched(views, d2, lp::BatchMode::Streams);
    const auto lock = lp::solve_batched(views, d3, lp::BatchMode::Lockstep);
    bench::row("  %-7d %-14s %-14s %-14s %-10ld %llu/%llu", k,
               human_seconds(seq.sim_seconds).c_str(), human_seconds(str.sim_seconds).c_str(),
               human_seconds(lock.sim_seconds).c_str(), lock.waves,
               static_cast<unsigned long long>(seq.kernels),
               static_cast<unsigned long long>(lock.kernels));
  }
  bench::note("the lockstep mode is the paper's 'batch-style processing of linear algebra");
  bench::note("calls': one kernel per operation type per wave instead of 4 per iteration");
  bench::note("per problem — fewer, fatter launches.");
}

void first_order_lockstep() {
  bench::title("E7-d", "lockstep backends on sparse sibling relaxations: simplex vs PDHG");
  bench::row("  %-7s %-14s %-14s %-12s %-12s %-18s", "K", "spx-lockstep", "pdhg-lockstep",
             "spx-waves", "pdhg-waves", "kernels(spx/pdhg)");
  Rng rng(404);
  lp::PdhgOptions popts;
  popts.tol = 1e-4;
  lp::LpModel base = problems::sparse_lp(48, 72, 0.05, rng);
  const lp::StandardForm base_form = lp::build_standard_form(base);
  double pdhg_prev_sim = 0.0;
  for (int k : {16, 64, 192}) {
    std::vector<std::unique_ptr<lp::StandardForm>> storage;
    std::vector<const lp::StandardForm*> views;
    for (int i = 0; i < k; ++i) {
      auto form = std::make_unique<lp::StandardForm>(base_form);
      const std::size_t j = rng.index(static_cast<std::size_t>(base.num_cols()));
      if (form->ub[j] > form->lb[j]) {
        form->ub[j] = form->lb[j] + 0.8 * (form->ub[j] - form->lb[j]);
      }
      storage.push_back(std::move(form));
      views.push_back(storage.back().get());
    }
    gpu::Device d1, d2;
    const auto spx = lp::solve_batched(views, d1, lp::BatchMode::Lockstep);
    lp::BatchedLpReport pdhg;
    if (k == 192) {
      // The wave-size-over-time curve for EXPERIMENTS.md E7: sample the
      // registry on the simulated device clock while the largest PDHG
      // batch runs, exporting when GPUMIP_TIMESERIES_OUT is set. Default
      // (registry-wide) columns resolve at construction, which is why the
      // sampler is built only now — after the earlier sections and the
      // smaller K have registered every batch/method family. Each
      // gpu::Device clock starts at 0, so the sampler wraps exactly one
      // solve. The period scales off the previous K's makespan so the row
      // count stays resolution-independent of the simulated cost model.
      obs::SamplerOptions sopts;
      sopts.period = pdhg_prev_sim > 0.0 ? pdhg_prev_sim / 64.0 : 1e-4;
      obs::Sampler sampler(sopts);
      obs::Sampler::Bind bind(sampler);
      pdhg = lp::solve_batched_pdhg(views, d2, popts);
      const std::string path = sampler.export_if_requested();
      if (!path.empty()) {
        bench::row("  time series: %zu rows -> %s", sampler.rows().size(), path.c_str());
      }
    } else {
      pdhg = lp::solve_batched_pdhg(views, d2, popts);
    }
    pdhg_prev_sim = pdhg.sim_seconds;
    bench::row("  %-7d %-14s %-14s %-12ld %-12ld %llu/%llu", k,
               human_seconds(spx.sim_seconds).c_str(), human_seconds(pdhg.sim_seconds).c_str(),
               spx.waves, pdhg.waves, static_cast<unsigned long long>(spx.kernels),
               static_cast<unsigned long long>(pdhg.kernels));
  }
  bench::note("PDHG runs several times more waves, but each wave is ONE fused sparse");
  bench::note("launch moving K*nnz bytes; a simplex wave is four dense launches moving K*m^2.");
  bench::note("bench_e9_methods E9-d places this trade on the full method-crossover surface.");
}

void BM_mode(benchmark::State& state) {
  Rng rng(402);
  auto mats = make_batch(static_cast<int>(state.range(1)), 24, rng);
  double sim = 0.0;
  for (auto _ : state) {
    switch (state.range(0)) {
      case 0: sim = run_sequential(mats); break;
      case 1: sim = run_streams(mats, 16); break;
      default: sim = run_batched(mats); break;
    }
    benchmark::DoNotOptimize(sim);
  }
  state.counters["sim_problems_per_s"] = static_cast<double>(state.range(1)) / sim;
}
BENCHMARK(BM_mode)->Args({0, 64})->Args({1, 64})->Args({2, 64})->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  memory_ceiling();
  whole_relaxations();
  first_order_lockstep();
  return gpumip::bench::run_benchmarks(argc, argv);
}
