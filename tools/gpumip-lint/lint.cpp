#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <unordered_map>

namespace gpumip::lint {
namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_space(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }

std::size_t skip_ws(const std::string& s, std::size_t pos) {
  while (pos < s.size() && is_space(s[pos])) ++pos;
  return pos;
}

/// An inline waiver: `// gpumip-lint: <tag>(<reason>)`. Covers the
/// annotation's own line and the line below it.
struct Annotation {
  std::string tag;
  std::string reason;
};

/// One source file after the comment/string-aware scan. `clean` has the
/// same length and line structure as the input, with comment text and
/// literal bodies blanked, so token searches cannot match inside either.
struct Scanned {
  const SourceFile* src = nullptr;
  std::string clean;
  std::vector<std::size_t> line_start;                    // 0-based offsets
  std::unordered_map<std::size_t, std::string> literals;  // opening-quote pos -> value
  std::map<int, std::vector<Annotation>> annotations;     // 1-based line
  std::vector<std::string> lines;                         // original text, 1-based via index+1
};

int line_of(const Scanned& f, std::size_t pos) {
  auto it = std::upper_bound(f.line_start.begin(), f.line_start.end(), pos);
  return static_cast<int>(it - f.line_start.begin());
}

void parse_annotation(const std::string& comment, int line, Scanned& out,
                      std::vector<Finding>& findings) {
  const std::string marker = "gpumip-lint:";
  std::size_t at = comment.find(marker);
  if (at == std::string::npos) return;
  std::size_t pos = skip_ws(comment, at + marker.size());
  std::string tag;
  while (pos < comment.size() &&
         (std::isalpha(static_cast<unsigned char>(comment[pos])) != 0 || comment[pos] == '-')) {
    tag += comment[pos++];
  }
  pos = skip_ws(comment, pos);
  std::string reason;
  bool closed = false;
  if (pos < comment.size() && comment[pos] == '(') {
    std::size_t close = comment.find(')', pos);
    if (close != std::string::npos) {
      reason = comment.substr(pos + 1, close - pos - 1);
      closed = true;
    }
  }
  // Trim the reason.
  while (!reason.empty() && is_space(reason.front())) reason.erase(reason.begin());
  while (!reason.empty() && is_space(reason.back())) reason.pop_back();
  if (tag.empty() || !closed || reason.empty()) {
    findings.push_back({out.src->path, line, "SUP",
                        "malformed gpumip-lint annotation: expected "
                        "'gpumip-lint: <tag>(<non-empty reason>)'"});
    return;
  }
  out.annotations[line].push_back({tag, reason});
}

/// Comment/string-aware scan. Blanks comments and literal bodies in
/// `clean`, records string literal values by position, and parses
/// `// gpumip-lint: tag(reason)` annotations out of comments.
Scanned scan(const SourceFile& file, std::vector<Finding>& findings) {
  Scanned out;
  out.src = &file;
  const std::string& text = file.content;
  out.clean.assign(text.size(), ' ');
  out.line_start.push_back(0);
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') out.line_start.push_back(i + 1);
  }
  {
    std::istringstream ls(text);
    std::string line;
    while (std::getline(ls, line)) out.lines.push_back(line);
  }

  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string comment, literal, raw_delim;
  std::size_t token_start = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\n') out.clean[i] = '\n';
    switch (state) {
      case State::kCode:
        if (c == '/' && i + 1 < text.size() && text[i + 1] == '/') {
          state = State::kLineComment;
          comment.clear();
          token_start = i;
          ++i;
        } else if (c == '/' && i + 1 < text.size() && text[i + 1] == '*') {
          state = State::kBlockComment;
          comment.clear();
          token_start = i;
          ++i;
        } else if (c == '"' && i >= 1 && text[i - 1] == 'R') {
          // Raw string literal R"delim(...)delim".
          state = State::kRawString;
          token_start = i;
          literal.clear();
          raw_delim.clear();
          std::size_t j = i + 1;
          while (j < text.size() && text[j] != '(') raw_delim += text[j++];
          raw_delim = ")" + raw_delim + "\"";
          out.clean[i] = '"';
          i = j;  // position of '('
        } else if (c == '"') {
          state = State::kString;
          token_start = i;
          literal.clear();
          out.clean[i] = '"';
        } else if (c == '\'') {
          state = State::kChar;
          out.clean[i] = '\'';
        } else {
          out.clean[i] = c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          parse_annotation(comment, line_of(out, token_start), out, findings);
          state = State::kCode;
        } else {
          comment += c;
        }
        break;
      case State::kBlockComment:
        if (c == '*' && i + 1 < text.size() && text[i + 1] == '/') {
          parse_annotation(comment, line_of(out, token_start), out, findings);
          state = State::kCode;
          ++i;
        } else {
          comment += c;
        }
        break;
      case State::kString:
        if (c == '\\' && i + 1 < text.size()) {
          literal += text[i + 1];
          ++i;
        } else if (c == '"') {
          out.clean[i] = '"';
          out.literals[token_start] = literal;
          state = State::kCode;
        } else {
          literal += c;
        }
        break;
      case State::kChar:
        if (c == '\\' && i + 1 < text.size()) {
          ++i;
        } else if (c == '\'') {
          out.clean[i] = '\'';
          state = State::kCode;
        }
        break;
      case State::kRawString:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          out.literals[token_start] = literal;
          i += raw_delim.size() - 1;
          out.clean[i] = '"';
          state = State::kCode;
        } else {
          literal += c;
        }
        break;
    }
  }
  if (state == State::kLineComment) {
    parse_annotation(comment, line_of(out, token_start), out, findings);
  }
  return out;
}

bool has_annotation(const Scanned& f, int line, const std::string& tag) {
  for (int l : {line, line - 1}) {
    auto it = f.annotations.find(l);
    if (it == f.annotations.end()) continue;
    for (const Annotation& a : it->second) {
      if (a.tag == tag) return true;
    }
  }
  return false;
}

/// True when `path` names a file of the confinement stem `stem`, i.e. the
/// path contains "<stem>." — "gpu/device" matches gpu/device.cpp and
/// gpu/device.hpp but not gpu/device_other.cpp.
bool matches_stem(const std::string& path, const std::string& stem) {
  std::size_t at = path.find(stem + ".");
  if (at == std::string::npos) return false;
  return at == 0 || path[at - 1] == '/';
}

bool in_device_context(const std::string& path, const Options& options) {
  return std::any_of(options.device_context.begin(), options.device_context.end(),
                     [&](const std::string& stem) { return matches_stem(path, stem); });
}

/// Finds the next whole-word occurrence of `word` in `s` at or after
/// `from`; npos when absent.
std::size_t find_word(const std::string& s, const std::string& word, std::size_t from) {
  for (std::size_t at = s.find(word, from); at != std::string::npos;
       at = s.find(word, at + 1)) {
    const bool left_ok = at == 0 || !is_ident_char(s[at - 1]);
    const std::size_t end = at + word.size();
    const bool right_ok = end >= s.size() || !is_ident_char(s[end]);
    if (left_ok && right_ok) return at;
  }
  return std::string::npos;
}

/// The statement around `pos`: text between the previous and next
/// `;`/`{`/`}` in the blanked source. Good enough to ask "does this copy
/// touch a device span".
std::string statement_around(const std::string& clean, std::size_t pos) {
  const std::string stops = ";{}";
  std::size_t begin = clean.find_last_of(stops, pos);
  begin = (begin == std::string::npos) ? 0 : begin + 1;
  std::size_t end = clean.find_first_of(stops, pos);
  if (end == std::string::npos) end = clean.size();
  return clean.substr(begin, end - begin);
}

bool mentions_device_span(const std::string& text) {
  return text.find(".as<") != std::string::npos || text.find("->as<") != std::string::npos;
}

// ---- R1: memory-space confinement -----------------------------------------

void check_r1(const Scanned& f, const Options& options, std::vector<Finding>& findings) {
  if (in_device_context(f.src->path, options)) return;
  for (const char* pattern : {".as<", "->as<"}) {
    const std::string needle(pattern);
    for (std::size_t at = f.clean.find(needle); at != std::string::npos;
         at = f.clean.find(needle, at + 1)) {
      const int line = line_of(f, at);
      if (has_annotation(f, line, "device-context")) continue;
      findings.push_back(
          {f.src->path, line, "R1",
           "raw device-side access DeviceBuffer::as<T>() outside the device context "
           "(kernel/transfer-engine files); route through the typed wrappers or annotate "
           "'// gpumip-lint: device-context(reason)'"});
    }
  }
}

// ---- R2: transfer accounting ----------------------------------------------

void check_r2(const Scanned& f, const Options& options, std::vector<Finding>& findings) {
  const std::string& path = f.src->path;
  if (path.size() >= options.transfer_engine.size() &&
      path.compare(path.size() - options.transfer_engine.size(), options.transfer_engine.size(),
                   options.transfer_engine) == 0) {
    return;  // the transfer engine itself: the one audited home of raw copies
  }
  // (a) Untyped byte copies are invisible to the H2D/D2H ledger, so they
  // are banned everywhere outside the transfer engine.
  for (const char* prim : {"memcpy", "memmove", "memset"}) {
    for (std::size_t at = find_word(f.clean, prim, 0); at != std::string::npos;
         at = find_word(f.clean, prim, at + 1)) {
      const int line = line_of(f, at);
      if (has_annotation(f, line, "host-only")) continue;
      findings.push_back(
          {path, line, "R2",
           std::string("raw byte copy '") + prim +
               "' outside the Device transfer engine bypasses the H2D/D2H ledger; use "
               "Device::copy_h2d/copy_d2h (or typed std algorithms for host-only data and "
               "annotate '// gpumip-lint: host-only(reason)')"});
    }
  }
  // (b) Typed copy algorithms whose statement touches a raw device span
  // move bytes across the host/device boundary without charging the copy
  // engine. Device-context files are exempt: their kernel bodies shuffle
  // device-resident data by design.
  if (in_device_context(path, options)) return;
  for (const char* algo : {"copy", "copy_n", "fill", "fill_n"}) {
    for (std::size_t at = find_word(f.clean, algo, 0); at != std::string::npos;
         at = find_word(f.clean, algo, at + 1)) {
      if (at < 2 || f.clean.compare(at - 2, 2, "::") != 0) continue;  // only std:: algorithms
      const std::string stmt = statement_around(f.clean, at);
      if (!mentions_device_span(stmt)) continue;
      const int line = line_of(f, at);
      if (has_annotation(f, line, "host-only")) continue;
      findings.push_back(
          {path, line, "R2",
           std::string("'std::") + algo +
               "' over a device span bypasses transfer accounting; stage through a host "
               "buffer and Device::copy_h2d/copy_d2h"});
    }
  }
}

// ---- R3: error contract ----------------------------------------------------

/// Scans every file for `class/struct X : ... Base` declarations and
/// returns the transitive set of gpumip::Error subclasses (seeded with
/// Error itself). Lightweight semantic matching: qualified bases compare
/// by their last component.
std::set<std::string> collect_error_classes(const std::vector<Scanned>& files) {
  struct Decl {
    std::string name;
    std::vector<std::string> bases;
  };
  std::vector<Decl> decls;
  for (const Scanned& f : files) {
    for (const char* kw : {"class", "struct"}) {
      for (std::size_t at = find_word(f.clean, kw, 0); at != std::string::npos;
           at = find_word(f.clean, kw, at + 1)) {
        std::size_t pos = skip_ws(f.clean, at + std::string(kw).size());
        std::string name;
        while (pos < f.clean.size() && is_ident_char(f.clean[pos])) name += f.clean[pos++];
        if (name.empty()) continue;
        pos = skip_ws(f.clean, pos);
        if (f.clean.compare(pos, 5, "final") == 0) pos = skip_ws(f.clean, pos + 5);
        if (pos >= f.clean.size() || f.clean[pos] != ':' ||
            (pos + 1 < f.clean.size() && f.clean[pos + 1] == ':')) {
          continue;  // no base clause (fwd decl, template param, etc.)
        }
        std::size_t brace = f.clean.find('{', pos);
        std::size_t semi = f.clean.find(';', pos);
        if (brace == std::string::npos || semi < brace) continue;
        Decl d;
        d.name = name;
        std::string base_clause = f.clean.substr(pos + 1, brace - pos - 1);
        std::istringstream bs(base_clause);
        std::string piece;
        while (std::getline(bs, piece, ',')) {
          // Last identifier component of the base name, sans qualifiers.
          std::string last;
          for (std::size_t i = 0; i < piece.size(); ++i) {
            if (is_ident_char(piece[i])) {
              last += piece[i];
            } else if (piece[i] == '<') {
              break;  // ignore template arguments
            } else if (!last.empty() && piece[i] == ':') {
              last.clear();  // qualifier: keep only the final component
            } else if (!last.empty() && is_space(piece[i])) {
              // A later word replaces an access specifier (public/virtual).
              if (last == "public" || last == "private" || last == "protected" ||
                  last == "virtual") {
                last.clear();
              }
            }
          }
          if (last == "public" || last == "private" || last == "protected" || last == "virtual") {
            last.clear();
          }
          if (!last.empty()) d.bases.push_back(last);
        }
        decls.push_back(std::move(d));
      }
    }
  }
  std::set<std::string> errors = {"Error"};
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Decl& d : decls) {
      if (errors.count(d.name) != 0) continue;
      for (const std::string& b : d.bases) {
        if (errors.count(b) != 0) {
          errors.insert(d.name);
          changed = true;
          break;
        }
      }
    }
  }
  return errors;
}

void check_r3(const Scanned& f, const std::set<std::string>& error_classes,
              std::vector<Finding>& findings) {
  for (std::size_t at = find_word(f.clean, "throw", 0); at != std::string::npos;
       at = find_word(f.clean, "throw", at + 1)) {
    std::size_t pos = skip_ws(f.clean, at + 5);
    if (pos >= f.clean.size()) break;
    const int line = line_of(f, at);
    if (f.clean[pos] == ';') continue;  // rethrow of the in-flight exception
    if (has_annotation(f, line, "error-contract")) continue;
    // Parse the thrown expression's leading qualified name.
    std::string last;
    bool any_component = false;
    while (pos < f.clean.size()) {
      if (is_ident_char(f.clean[pos])) {
        last += f.clean[pos++];
      } else if (f.clean.compare(pos, 2, "::") == 0) {
        last.clear();
        any_component = true;
        pos += 2;
      } else {
        break;
      }
    }
    (void)any_component;
    if (!last.empty() && error_classes.count(last) != 0) continue;
    std::string what = last.empty() ? "a non-class expression" : "'" + last + "'";
    findings.push_back(
        {f.src->path, line, "R3",
         "throw of " + what +
             " violates the error contract: every failure must be a gpumip::Error "
             "subclass carrying an ErrorCode (support/error.hpp) so callers can "
             "dispatch on code() without string matching"});
  }
}

// ---- R4: metric-name grammar ----------------------------------------------

/// gpumip metric grammar: `gpumip.` then >= 2 further dot-separated
/// components of [a-z0-9_]+, each starting with a letter or digit.
bool valid_metric_name(const std::string& name) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : name) {
    if (c == '.') {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  parts.push_back(cur);
  if (parts.size() < 3 || parts[0] != "gpumip") return false;
  for (std::size_t i = 1; i < parts.size(); ++i) {
    if (parts[i].empty()) return false;
    for (char c : parts[i]) {
      if ((std::islower(static_cast<unsigned char>(c)) == 0 &&
           std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '_')) {
        return false;
      }
    }
  }
  return true;
}

/// Shared engine for both R4 name families: metric names (GPUMIP_OBS_* /
/// obs registry calls, documented in docs/METRICS.md) and trace event names
/// (GPUMIP_TRACE_* sites, documented in docs/TRACING.md). Same grammar,
/// separate catalogs.
void check_r4_names(const Scanned& f, const std::vector<std::string>& sites,
                    bool registry_needs_obs_prefix, const std::string& kind,
                    const std::string& doc_name, bool have_doc, const std::string& doc,
                    std::vector<Finding>& findings) {
  for (const std::string& site : sites) {
    const bool is_registry_call = site == "counter" || site == "gauge" || site == "histogram";
    for (std::size_t at = find_word(f.clean, site, 0); at != std::string::npos;
         at = find_word(f.clean, site, at + 1)) {
      if (is_registry_call && registry_needs_obs_prefix) {
        // Only the obs registry lookups, not arbitrary identifiers.
        if (at < 5 || f.clean.compare(at - 5, 5, "obs::") != 0) continue;
      }
      std::size_t pos = skip_ws(f.clean, at + site.size());
      if (pos >= f.clean.size() || f.clean[pos] != '(') continue;
      pos = skip_ws(f.clean, pos + 1);
      if (pos >= f.clean.size() || f.clean[pos] != '"') continue;  // dynamic name: not checkable
      auto lit = f.literals.find(pos);
      if (lit == f.literals.end()) continue;
      const std::string& name = lit->second;
      const int line = line_of(f, at);
      if (has_annotation(f, line, "metric-name")) continue;
      if (!valid_metric_name(name)) {
        findings.push_back(
            {f.src->path, line, "R4",
             kind + " name '" + name +
                 "' violates the grammar gpumip.[a-z_]+(.[a-z_0-9]+)+ — every exported "
                 "name is namespaced under gpumip. (" + doc_name + ")"});
        continue;
      }
      if (have_doc && doc.find("`" + name + "`") == std::string::npos) {
        findings.push_back(
            {f.src->path, line, "R4",
             kind + " name '" + name + "' is not documented in " + doc_name +
                 "; every name a hot path can export must appear (backticked) in the "
                 "catalog"});
      }
    }
  }
}

void check_r4(const Scanned& f, const Options& options, std::vector<Finding>& findings) {
  static const std::vector<std::string> kMetricSites = {
      "GPUMIP_OBS_COUNT", "GPUMIP_OBS_ADD",    "GPUMIP_OBS_GAUGE_SET",
      "GPUMIP_OBS_GAUGE_MAX", "GPUMIP_OBS_RECORD", "GPUMIP_OBS_SPAN",
      "counter", "gauge", "histogram",
  };
  static const std::vector<std::string> kTraceSites = {
      "GPUMIP_TRACE_BEGIN",      "GPUMIP_TRACE_END",      "GPUMIP_TRACE_INSTANT",
      "GPUMIP_TRACE_COMPLETE",   "GPUMIP_TRACE_FLOW_BEGIN", "GPUMIP_TRACE_FLOW_END",
  };
  check_r4_names(f, kMetricSites, /*registry_needs_obs_prefix=*/true, "metric",
                 "docs/METRICS.md", options.have_metrics_doc, options.metrics_doc, findings);
  check_r4_names(f, kTraceSites, /*registry_needs_obs_prefix=*/true, "trace event",
                 "docs/TRACING.md", options.have_tracing_doc, options.tracing_doc, findings);
}

}  // namespace

std::vector<Suppression> parse_suppressions(const std::string& text, const std::string& path,
                                            std::vector<Finding>& findings) {
  std::vector<Suppression> out;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::size_t sep = line.find(" -- ");
    if (sep == std::string::npos) {
      findings.push_back({path, lineno, "SUP",
                          "suppression entry is missing ' -- <justification>'"});
      continue;
    }
    std::string head = line.substr(0, sep);
    std::string justification = line.substr(sep + 4);
    while (!justification.empty() && is_space(justification.back())) justification.pop_back();
    std::istringstream hs(head);
    Suppression s;
    hs >> s.rule >> s.path_suffix;
    std::getline(hs, s.needle);
    std::size_t ns = s.needle.find_first_not_of(" \t");
    s.needle = (ns == std::string::npos) ? "" : s.needle.substr(ns);
    s.justification = justification;
    s.line = lineno;
    if (s.rule.empty() || s.path_suffix.empty() || s.needle.empty()) {
      findings.push_back({path, lineno, "SUP",
                          "suppression entry needs '<rule> <path-suffix> <line-substring> -- "
                          "<justification>'"});
      continue;
    }
    if (s.justification.empty()) {
      findings.push_back({path, lineno, "SUP", "suppression justification must be non-empty"});
      continue;
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<Finding> run_lint(const std::vector<SourceFile>& files, const Options& options,
                              std::vector<Suppression>& suppressions) {
  std::vector<Finding> findings;
  std::vector<Scanned> scanned;
  scanned.reserve(files.size());
  for (const SourceFile& file : files) scanned.push_back(scan(file, findings));

  const std::set<std::string> error_classes = collect_error_classes(scanned);
  for (const Scanned& f : scanned) {
    check_r1(f, options, findings);
    check_r2(f, options, findings);
    check_r3(f, error_classes, findings);
    check_r4(f, options, findings);
  }

  // Apply the suppression file: a finding survives unless an entry matches
  // its rule, file suffix, and offending source line.
  auto source_line = [&](const Finding& fi) -> std::string {
    for (const Scanned& f : scanned) {
      if (f.src->path == fi.file && fi.line >= 1 &&
          static_cast<std::size_t>(fi.line) <= f.lines.size()) {
        return f.lines[static_cast<std::size_t>(fi.line - 1)];
      }
    }
    return "";
  };
  std::vector<Finding> kept;
  for (Finding& fi : findings) {
    bool suppressed = false;
    if (fi.rule != "SUP") {
      for (Suppression& s : suppressions) {
        if (s.rule == fi.rule && fi.file.size() >= s.path_suffix.size() &&
            fi.file.compare(fi.file.size() - s.path_suffix.size(), s.path_suffix.size(),
                            s.path_suffix) == 0 &&
            source_line(fi).find(s.needle) != std::string::npos) {
          s.used = true;
          suppressed = true;
          break;
        }
      }
    }
    if (!suppressed) kept.push_back(std::move(fi));
  }
  // Stale entries are findings too: a suppression must not outlive the
  // code it excuses.
  for (const Suppression& s : suppressions) {
    if (!s.used) {
      kept.push_back({"(suppressions)", s.line, "SUP",
                      "stale suppression (matched no finding): " + s.rule + " " + s.path_suffix +
                          " '" + s.needle + "'"});
    }
  }
  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
  });
  return kept;
}

std::vector<Finding> check_headers_standalone(const std::vector<std::string>& headers,
                                              const std::string& include_dir,
                                              const std::string& compiler,
                                              const std::string& scratch_dir) {
  namespace fs = std::filesystem;
  std::vector<Finding> findings;
  fs::create_directories(scratch_dir);
  for (const std::string& header : headers) {
    std::string mangled = header;
    std::replace(mangled.begin(), mangled.end(), '/', '_');
    const fs::path tu = fs::path(scratch_dir) / (mangled + ".standalone.cpp");
    const fs::path log = fs::path(scratch_dir) / (mangled + ".log");
    {
      std::ofstream out(tu);
      out << "// generated by gpumip-lint R5: the header must compile alone\n"
          << "#include \"" << header << "\"\n";
    }
    const std::string cmd = compiler + " -std=c++20 -fsyntax-only -I \"" + include_dir +
                            "\" \"" + tu.string() + "\" > \"" + log.string() + "\" 2>&1";
    const int rc = std::system(cmd.c_str());  // NOLINT: deliberate tool invocation
    if (rc == 0) continue;
    std::string detail;
    {
      std::ifstream in(log);
      std::string line;
      int kept_lines = 0;
      while (std::getline(in, line) && kept_lines < 6) {
        detail += "\n    " + line;
        ++kept_lines;
      }
    }
    findings.push_back({include_dir + "/" + header, 1, "R5",
                        "header is not self-contained (fails to compile as its own "
                        "translation unit):" + detail});
  }
  return findings;
}

namespace {

/// Runs the engine over one fixture and reports whether `rule` fired.
bool fires(const std::string& path, const std::string& content, const std::string& rule,
           const Options& options) {
  std::vector<Suppression> none;
  std::vector<Finding> findings = run_lint({{path, content}}, options, none);
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

}  // namespace

bool run_self_test(std::ostream& out) {
  Options options;
  options.metrics_doc = "| `gpumip.test.documented.total` | — | — | fixture |\n";
  options.have_metrics_doc = true;
  options.tracing_doc = "| `gpumip.test.documented.event` | i | — | fixture |\n";
  options.have_tracing_doc = true;
  int failed = 0;
  auto expect = [&](bool ok, const std::string& what) {
    out << "    [" << (ok ? "ok" : "FAIL") << "] " << what << "\n";
    if (!ok) ++failed;
  };

  // R1: raw device access fires outside the device context, is quiet
  // inside it, and the inline annotation waives it.
  const std::string r1 = "void f(B& b) { auto s = b.as<double>(); }\n";
  expect(fires("src/mip/fixture.cpp", r1, "R1", options), "R1 fires outside device context");
  expect(!fires("src/linalg/device_blas.cpp", r1, "R1", options),
         "R1 quiet in a device-context file");
  expect(!fires("src/mip/fixture.cpp",
                "// gpumip-lint: device-context(fixture kernel body)\n" + r1, "R1", options),
         "R1 waived by device-context annotation");

  // R2a: raw byte copies fire outside the transfer engine only.
  const std::string r2 = "void f() { std::memcpy(d, s, n); }\n";
  expect(fires("src/lp/fixture.cpp", r2, "R2", options), "R2 fires on memcpy outside engine");
  expect(!fires("src/gpu/device.cpp", r2, "R2", options), "R2 quiet in the transfer engine");
  expect(!fires("src/lp/fixture.cpp",
                "// gpumip-lint: host-only(fixture serializer)\n" + r2, "R2", options),
         "R2 waived by host-only annotation");
  // R2b: typed algorithms over a device span.
  expect(fires("src/lp/fixture.cpp",
               "void f(B& b) { std::copy(v.begin(), v.end(), b.as<double>().data()); }\n", "R2",
               options),
         "R2 fires on std::copy into a device span");
  expect(!fires("src/lp/fixture.cpp", "void f() { std::copy(v.begin(), v.end(), w.begin()); }\n",
                "R2", options),
         "R2 quiet on host-to-host std::copy");

  // R3: raw std exceptions fire; locally declared Error subclasses do not.
  expect(fires("src/lp/fixture.cpp", "void f() { throw std::runtime_error(\"x\"); }\n", "R3",
               options),
         "R3 fires on std::runtime_error");
  expect(fires("src/lp/fixture.cpp", "void f() { throw \"bare literal\"; }\n", "R3", options),
         "R3 fires on a literal throw");
  expect(!fires("src/lp/fixture.cpp",
                "struct FixtureError : Error {};\n"
                "void f() { throw FixtureError(); }\n",
                "R3", options),
         "R3 quiet on a declared Error subclass");
  expect(!fires("src/lp/fixture.cpp", "void f() { try { g(); } catch (...) { throw; } }\n", "R3",
                options),
         "R3 quiet on rethrow");

  // R4: grammar violations and undocumented names fire; documented
  // conforming names do not.
  expect(fires("src/lp/fixture.cpp", "void f() { GPUMIP_OBS_COUNT(\"lp.fixture.calls\"); }\n",
               "R4", options),
         "R4 fires on a name outside the gpumip. namespace");
  expect(fires("src/lp/fixture.cpp",
               "void f() { GPUMIP_OBS_COUNT(\"gpumip.fixture.undocumented\"); }\n", "R4", options),
         "R4 fires on an undocumented name");
  expect(!fires("src/lp/fixture.cpp",
                "void f() { GPUMIP_OBS_COUNT(\"gpumip.test.documented.total\"); }\n", "R4",
                options),
         "R4 quiet on a documented conforming name");

  // R4 trace-event surface: GPUMIP_TRACE_* sites check the same grammar
  // against the docs/TRACING.md catalog instead of docs/METRICS.md.
  expect(fires("src/lp/fixture.cpp", "void f() { GPUMIP_TRACE_INSTANT(\"lp.fixture.event\", 0); }\n",
               "R4", options),
         "R4 fires on a trace name outside the gpumip. namespace");
  expect(fires("src/lp/fixture.cpp",
               "void f() { GPUMIP_TRACE_BEGIN(\"gpumip.fixture.undocumented\", 0); }\n", "R4",
               options),
         "R4 fires on an undocumented trace name");
  expect(fires("src/lp/fixture.cpp",
               "void f() { GPUMIP_TRACE_INSTANT(\"gpumip.test.documented.total\", 0); }\n", "R4",
               options),
         "R4 keeps the trace and metric catalogs separate");
  expect(!fires("src/lp/fixture.cpp",
                "void f() { GPUMIP_TRACE_INSTANT(\"gpumip.test.documented.event\", 0); }\n", "R4",
                options),
         "R4 quiet on a documented trace name");
  expect(!fires("src/lp/fixture.cpp",
                "// gpumip-lint: metric-name(fixture dynamic event)\n"
                "void f() { GPUMIP_TRACE_INSTANT(\"gpumip.fixture.undocumented\", 0); }\n",
                "R4", options),
         "R4 trace finding waived by metric-name annotation");

  // Suppression round trip: a matching entry silences the finding and is
  // marked used; an unmatched entry is reported stale.
  {
    std::vector<Finding> parse_findings;
    std::vector<Suppression> sups = parse_suppressions(
        "R2 lp/fixture.cpp std::memcpy -- fixture: host-only serialization\n", "(suppressions)",
        parse_findings);
    std::vector<Finding> findings = run_lint({{"src/lp/fixture.cpp", r2}}, options, sups);
    expect(parse_findings.empty() && findings.empty() && sups.size() == 1 && sups[0].used,
           "suppression with justification silences the finding");
  }
  {
    std::vector<Finding> parse_findings;
    std::vector<Suppression> sups = parse_suppressions(
        "R2 lp/fixture.cpp std::memcpy -- excuse without offender\n", "(suppressions)",
        parse_findings);
    std::vector<Finding> findings =
        run_lint({{"src/lp/clean.cpp", "void f() {}\n"}}, options, sups);
    expect(findings.size() == 1 && findings[0].rule == "SUP",
           "stale suppression is itself a finding");
  }
  {
    std::vector<Finding> parse_findings;
    parse_suppressions("R2 lp/fixture.cpp std::memcpy\n", "(suppressions)", parse_findings);
    expect(parse_findings.size() == 1 && parse_findings[0].rule == "SUP",
           "suppression without justification is rejected");
  }

  out << (failed == 0 ? "    self-test: all fixtures behaved\n"
                      : "    self-test: FIXTURE FAILURES\n");
  return failed == 0;
}

}  // namespace gpumip::lint
