// Entirely-GPU branch-and-bound (strategy S1) on permutation flow-shop via
// the IVM tree encoding — the one regime where the paper's related work
// found GPU-resident trees practical. Compares against the classic
// explicit-node CPU engine.
//
//   ./flowshop_gpu_only [machines] [jobs] [ivms] [seed]
#include <cstdio>
#include <cstdlib>

#include "ivm/gpu_bnb.hpp"
#include "support/strings.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  using namespace gpumip;
  const int machines = argc > 1 ? std::atoi(argv[1]) : 4;
  const int jobs = argc > 2 ? std::atoi(argv[2]) : 9;
  const int ivms = argc > 3 ? std::atoi(argv[3]) : 64;
  const std::uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 42;

  Rng rng(seed);
  ivm::FlowshopInstance instance = ivm::FlowshopInstance::random(machines, jobs, rng);
  std::printf("flow shop: %d machines x %d jobs, greedy UB = %.0f\n", machines, jobs,
              instance.greedy_upper_bound());

  WallTimer timer;
  ivm::BnbStats cpu = ivm::solve_flowshop_cpu(instance);
  const double cpu_wall = timer.elapsed();
  std::printf("\n[CPU explicit-node DFS]\n");
  std::printf("  optimum %.0f | %ld nodes bounded, %ld pruned | wall %s\n", cpu.best_makespan,
              cpu.nodes_bounded, cpu.nodes_pruned, human_seconds(cpu_wall).c_str());

  gpu::Device device;
  ivm::GpuBnbOptions opts;
  opts.num_ivms = ivms;
  timer.reset();
  ivm::BnbStats gpu_r = ivm::solve_flowshop_gpu(instance, device, opts);
  const double gpu_wall = timer.elapsed();
  std::printf("\n[GPU-only IVM fleet, %d IVMs]\n", ivms);
  std::printf("  optimum %.0f | %ld nodes bounded | %ld kernel waves | %ld interval steals\n",
              gpu_r.best_makespan, gpu_r.nodes_bounded, gpu_r.kernel_waves, gpu_r.steals);
  std::printf("  simulated device time %s | H2D transfers: %llu (%s) | D2H: %llu (%s)\n",
              human_seconds(device.synchronize()).c_str(),
              static_cast<unsigned long long>(device.stats().transfers_h2d),
              human_bytes(device.stats().bytes_h2d).c_str(),
              static_cast<unsigned long long>(device.stats().transfers_d2h),
              human_bytes(device.stats().bytes_d2h).c_str());
  std::printf("  (host wall %s — the simulator itself)\n", human_seconds(gpu_wall).c_str());

  std::printf("\nbest permutation:");
  for (int j : gpu_r.best_permutation) std::printf(" %d", j);
  std::printf("\n");
  return gpu_r.best_makespan == cpu.best_makespan ? 0 : 1;
}
