#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "lp/batched_lp.hpp"
#include "problems/generators.hpp"

namespace gpumip::lp {
namespace {

struct Batch {
  std::vector<std::unique_ptr<StandardForm>> storage;
  std::vector<const StandardForm*> views;
};

Batch make_batch(int count, std::uint64_t seed) {
  Rng rng(seed);
  Batch batch;
  for (int i = 0; i < count; ++i) {
    LpModel model = problems::dense_lp(8 + i % 4, 12 + i % 5, rng);
    batch.storage.push_back(std::make_unique<StandardForm>(build_standard_form(model)));
    batch.views.push_back(batch.storage.back().get());
  }
  return batch;
}

TEST(BatchedLp, AllModesProduceIdenticalResults) {
  Batch batch = make_batch(12, 11);
  std::vector<double> reference;
  for (BatchMode mode : {BatchMode::Sequential, BatchMode::Streams, BatchMode::Lockstep}) {
    gpu::Device device;
    BatchedLpReport report = solve_batched(batch.views, device, mode);
    ASSERT_EQ(report.results.size(), batch.views.size()) << batch_mode_name(mode);
    if (reference.empty()) {
      for (const LpResult& r : report.results) {
        EXPECT_EQ(r.status, LpStatus::Optimal);
        reference.push_back(r.objective);
      }
    } else {
      for (std::size_t i = 0; i < report.results.size(); ++i) {
        EXPECT_NEAR(report.results[i].objective, reference[i], 1e-9)
            << batch_mode_name(mode) << " problem " << i;
      }
    }
    EXPECT_GT(report.sim_seconds, 0.0);
  }
}

TEST(BatchedLp, StreamsOverlapBeatsSequential) {
  Batch batch = make_batch(32, 13);
  gpu::Device d1, d2;
  BatchedLpReport seq = solve_batched(batch.views, d1, BatchMode::Sequential);
  BatchedLpReport str = solve_batched(batch.views, d2, BatchMode::Streams);
  EXPECT_LT(str.sim_seconds, seq.sim_seconds);
  EXPECT_EQ(seq.kernels, str.kernels);  // same work, different schedule
}

TEST(BatchedLp, LockstepUsesFarFewerKernels) {
  Batch batch = make_batch(32, 17);
  gpu::Device d1, d2;
  BatchedLpReport seq = solve_batched(batch.views, d1, BatchMode::Sequential);
  BatchedLpReport lock = solve_batched(batch.views, d2, BatchMode::Lockstep);
  EXPECT_LT(lock.kernels, seq.kernels / 4);
  EXPECT_GT(lock.waves, 0);
  EXPECT_LT(lock.sim_seconds, seq.sim_seconds);
}

TEST(BatchedLp, CapacityIsEnforced) {
  Batch batch = make_batch(8, 19);
  gpu::CostModelConfig tiny;
  tiny.memory_bytes = 4 * 1024;  // cannot hold 8 relaxations
  gpu::Device device(tiny);
  EXPECT_THROW(solve_batched(batch.views, device, BatchMode::Lockstep), DeviceOutOfMemory);
}

TEST(BatchedLp, InputValidation) {
  gpu::Device device;
  EXPECT_THROW(solve_batched({}, device, BatchMode::Sequential), Error);
  Batch batch = make_batch(1, 23);
  EXPECT_THROW(solve_batched(batch.views, device, BatchMode::Streams, {}, 0), Error);
  std::vector<const StandardForm*> with_null = {nullptr};
  EXPECT_THROW(solve_batched(with_null, device, BatchMode::Sequential), Error);
}

TEST(BatchedLp, PersistentArenaMakesRepeatBatchesAllocationFree) {
  Batch batch = make_batch(8, 31);
  gpu::Device device;
  gpu::DeviceArena arena(device, "batch.lp");
  BatchedLpReport first = solve_batched(batch.views, device, arena, BatchMode::Lockstep);
  // The up-front reserve sizes one exact slab for the whole batch
  // (solve_batched calls reset_stats, so assert through the live ledger).
  EXPECT_EQ(device.live_allocations(), 1u);
  EXPECT_EQ(arena.slab_count(), 1u);
  const std::size_t capacity_after_first = arena.capacity_bytes();
  for (int round = 0; round < 3; ++round) {
    BatchedLpReport again = solve_batched(batch.views, device, arena, BatchMode::Lockstep);
    ASSERT_EQ(again.results.size(), first.results.size());
    EXPECT_NEAR(again.results[0].objective, first.results[0].objective, 1e-12);
  }
  // Steady state (ROADMAP item 4): the first batch's slab serves every
  // later batch — no new device allocations, no capacity growth.
  EXPECT_EQ(device.live_allocations(), 1u);
  EXPECT_EQ(arena.slab_count(), 1u);
  EXPECT_EQ(arena.capacity_bytes(), capacity_after_first);
}

TEST(BatchedLp, ThrowawayArenaOverloadStillSolves) {
  Batch batch = make_batch(4, 37);
  gpu::Device device;
  BatchedLpReport r = solve_batched(batch.views, device, BatchMode::Sequential);
  ASSERT_EQ(r.results.size(), 4u);
  // The throwaway arena freed its slab on return: ledger clean, no leaks.
  EXPECT_EQ(device.live_allocations(), 0u);
  EXPECT_NO_THROW(device.audit());
}

TEST(BatchedLp, SingleProblemDegeneratesGracefully) {
  Batch batch = make_batch(1, 29);
  gpu::Device device;
  BatchedLpReport r = solve_batched(batch.views, device, BatchMode::Lockstep);
  EXPECT_EQ(r.results.size(), 1u);
  EXPECT_EQ(r.results[0].status, LpStatus::Optimal);
}

// ---------------------------------------------------------------------------
// solve_batched_pdhg — the first-order lockstep path. The suite name joins
// scripts/check.sh gate 4's schedule-fuzzer filter: the device wave schedule
// is perturbed by GPUMIP_SCHEDULE_SEED, and these tests prove the results
// stay bit-identical to sequential PdhgSolver calls regardless.
// ---------------------------------------------------------------------------

Batch make_sparse_batch(int count, std::uint64_t seed) {
  Rng rng(seed);
  Batch batch;
  for (int i = 0; i < count; ++i) {
    LpModel model = problems::sparse_lp(24 + i % 5, 36 + i % 7, 0.15, rng);
    batch.storage.push_back(std::make_unique<StandardForm>(build_standard_form(model)));
    batch.views.push_back(batch.storage.back().get());
  }
  return batch;
}

TEST(BatchedPdhg, BitIdenticalToSequentialSolves) {
  Batch batch = make_sparse_batch(12, 41);
  gpu::Device device;
  BatchedLpReport batched = solve_batched_pdhg(batch.views, device);
  ASSERT_EQ(batched.results.size(), batch.views.size());
  for (std::size_t i = 0; i < batch.views.size(); ++i) {
    PdhgSolver solo(*batch.views[i]);
    const LpResult expect = solo.solve_default();
    const LpResult& got = batched.results[i];
    EXPECT_EQ(got.status, expect.status) << "problem " << i;
    // Exact equality, not NEAR: the batched path runs the same host
    // arithmetic in the same order as a sequential solve.
    EXPECT_EQ(got.objective, expect.objective) << "problem " << i;
    EXPECT_EQ(got.ops.iterations, expect.ops.iterations) << "problem " << i;
    ASSERT_EQ(got.x.size(), expect.x.size());
    for (std::size_t j = 0; j < got.x.size(); ++j) {
      EXPECT_EQ(got.x[j], expect.x[j]) << "problem " << i << " x[" << j << "]";
    }
  }
}

TEST(BatchedPdhg, WavesTrackTheSlowestInstance) {
  Batch batch = make_sparse_batch(8, 43);
  gpu::Device device;
  BatchedLpReport r = solve_batched_pdhg(batch.views, device);
  long slowest = 0;
  for (const LpResult& res : r.results) {
    EXPECT_EQ(res.status, LpStatus::Optimal);
    slowest = std::max(slowest, res.ops.iterations);
  }
  // One wave per lockstep iteration until the last straggler converges;
  // each wave is one fused launch (plus periodic batched KKT checks), so
  // the kernel count sits just above the wave count — nowhere near the
  // 4-kernels-per-wave a simplex lockstep pays.
  EXPECT_EQ(r.waves, slowest);
  EXPECT_GE(r.kernels, static_cast<std::uint64_t>(r.waves));
  EXPECT_LT(r.kernels, static_cast<std::uint64_t>(2 * r.waves));
  EXPECT_GT(r.sim_seconds, 0.0);
}

TEST(BatchedPdhg, PersistentArenaSteadyState) {
  Batch batch = make_sparse_batch(6, 47);
  gpu::Device device;
  gpu::DeviceArena arena(device, "batch.pdhg");
  BatchedLpReport first = solve_batched_pdhg(batch.views, device, arena);
  EXPECT_EQ(device.live_allocations(), 1u);
  EXPECT_EQ(arena.slab_count(), 1u);
  const std::size_t capacity_after_first = arena.capacity_bytes();
  for (int round = 0; round < 3; ++round) {
    BatchedLpReport again = solve_batched_pdhg(batch.views, device, arena);
    ASSERT_EQ(again.results.size(), first.results.size());
    EXPECT_EQ(again.results[0].objective, first.results[0].objective);
  }
  EXPECT_EQ(device.live_allocations(), 1u);
  EXPECT_EQ(arena.slab_count(), 1u);
  EXPECT_EQ(arena.capacity_bytes(), capacity_after_first);
}

TEST(BatchedPdhg, CapacityIsEnforced) {
  Batch batch = make_sparse_batch(8, 53);
  gpu::CostModelConfig tiny;
  tiny.memory_bytes = 4 * 1024;  // cannot hold 8 CSR images + iterates
  gpu::Device device(tiny);
  EXPECT_THROW(solve_batched_pdhg(batch.views, device), DeviceOutOfMemory);
}

TEST(BatchedPdhg, InputValidation) {
  gpu::Device device;
  EXPECT_THROW(solve_batched_pdhg({}, device), Error);
  std::vector<const StandardForm*> with_null = {nullptr};
  EXPECT_THROW(solve_batched_pdhg(with_null, device), Error);
}

}  // namespace
}  // namespace gpumip::lp
