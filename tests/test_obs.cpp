// Tests for the observability layer (src/obs): instrument arithmetic, the
// process-wide registry, span nesting, thread/rank safety of concurrent
// increments under the simmpi schedule fuzzer, JSON export round-trip, and
// the clean-failure path of export_json.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "parallel/simmpi.hpp"
#include "support/error.hpp"

namespace gpumip {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;

TEST(ObsCounter, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsGauge, SetAddAndRunningMax) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.set_max(0.5);  // lower: no change
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.set_max(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(ObsHistogram, CountSumMinMaxMean) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);  // empty: reported as 0, not +inf
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  h.record(4.0);
  h.record(16.0);
  h.record(1.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 21.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 16.0);
  EXPECT_DOUBLE_EQ(h.mean(), 7.0);
}

TEST(ObsHistogram, BucketResolutionQuantiles) {
  Histogram h;
  // 100 values in (0.5, 1], 10 in (512, 1024]: p50 resolves to the small
  // bucket's upper edge, p99+ to the large one, both clamped into
  // [min, max] of the recorded data.
  for (int i = 0; i < 100; ++i) h.record(1.0);
  for (int i = 0; i < 10; ++i) h.record(1000.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0);
  EXPECT_GE(h.quantile(0.995), 512.0);
  EXPECT_LE(h.quantile(0.995), 1000.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_LE(h.quantile(1.0), 1000.0);
}

TEST(ObsHistogram, NonpositiveValuesLandInZeroBucket) {
  Histogram h;
  h.record(0.0);
  h.record(-5.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
}

TEST(ObsRegistry, SameNameSameInstrumentDistinctKinds) {
  Counter& c1 = obs::counter("test.obs.registry.shared");
  Counter& c2 = obs::counter("test.obs.registry.shared");
  EXPECT_EQ(&c1, &c2);
  // The same name may exist independently as each instrument kind.
  Gauge& g = obs::gauge("test.obs.registry.shared");
  Histogram& h = obs::histogram("test.obs.registry.shared");
  c1.add(3);
  g.set(1.25);
  h.record(2.0);
  EXPECT_EQ(c2.value(), 3u);
  EXPECT_DOUBLE_EQ(g.value(), 1.25);
  EXPECT_EQ(h.count(), 1u);

  std::vector<std::string> names = obs::Registry::instance().counter_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "test.obs.registry.shared"), names.end());
}

TEST(ObsRegistry, ReferencesSurviveFurtherRegistration) {
  Counter& before = obs::counter("test.obs.stable.a");
  before.add(7);
  // Force rehash-like pressure: many new registrations must not move the
  // earlier instrument (call sites cache references).
  for (int i = 0; i < 200; ++i) {
    obs::counter("test.obs.stable.filler." + std::to_string(i)).add(1);
  }
  EXPECT_EQ(obs::counter("test.obs.stable.a").value(), 7u);
  EXPECT_EQ(&obs::counter("test.obs.stable.a"), &before);
}

TEST(ObsLabels, FlattenSortsKeysAndSanitizesValues) {
  EXPECT_EQ(obs::labeled_name("test.obs.flat", {}), "test.obs.flat");
  EXPECT_EQ(obs::labeled_name("test.obs.flat", {{"method", "pdhg"}}),
            "test.obs.flat{method=pdhg}");
  // Label order at the call site does not matter: keys are sorted.
  EXPECT_EQ(obs::labeled_name("test.obs.flat", {{"rank", "3"}, {"method", "pdhg"}}),
            "test.obs.flat{method=pdhg,rank=3}");
  // Values are free-form but syntax bytes are sanitized to '_'.
  EXPECT_EQ(obs::labeled_name("test.obs.flat", {{"instance", "a=b,c{d}"}}),
            "test.obs.flat{instance=a_b_c_d_}");
  EXPECT_EQ(obs::family_name("test.obs.flat", {{"rank", "3"}, {"method", "pdhg"}}),
            "test.obs.flat{method,rank}");
}

TEST(ObsLabels, BadKeysAreRejected) {
  for (const char* key : {"", "Rank", "rank3", "ra-nk", "ra.nk"}) {
    EXPECT_FALSE(obs::valid_label_key(key)) << key;
    EXPECT_THROW(obs::labeled_name("test.obs.badkey", {{key, "v"}}), Error) << key;
  }
  EXPECT_TRUE(obs::valid_label_key("rank"));
  EXPECT_TRUE(obs::valid_label_key("wave_kind"));
  EXPECT_THROW(obs::labeled_name("test.obs.dupkey", {{"rank", "1"}, {"rank", "2"}}), Error);
}

TEST(ObsLabels, LabeledLookupIsStableAndOrderInsensitive) {
  Counter& c1 = obs::counter("test.obs.labeled.c", {{"method", "pdhg"}, {"rank", "1"}});
  Counter& c2 = obs::counter("test.obs.labeled.c", {{"rank", "1"}, {"method", "pdhg"}});
  EXPECT_EQ(&c1, &c2);
  Counter& other = obs::counter("test.obs.labeled.c", {{"method", "pdhg"}, {"rank", "2"}});
  EXPECT_NE(&c1, &other);
  c1.add(4);
  other.add(1);
  EXPECT_EQ(c2.value(), 4u);

  // Labeled instruments appear under their flattened names, and the family
  // index records the documentation form.
  const auto names = obs::Registry::instance().counter_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "test.obs.labeled.c{method=pdhg,rank=1}"),
            names.end());
  const auto families = obs::Registry::instance().family_names();
  EXPECT_NE(std::find(families.begin(), families.end(), "test.obs.labeled.c{method,rank}"),
            families.end());
}

TEST(ObsLabels, ReferencesSurviveLabelSetChurn) {
  Counter& before = obs::counter("test.obs.labeled.stable", {{"method", "simplex"}});
  before.add(7);
  // Registering many sibling label sets must not move the earlier
  // instrument (call sites cache labeled references too).
  for (int i = 0; i < 200; ++i) {
    obs::counter("test.obs.labeled.stable", {{"method", "m" + std::string(1, 'a' + i % 26)},
                                             {"rank", std::to_string(i)}})
        .add(1);
  }
  EXPECT_EQ(obs::counter("test.obs.labeled.stable", {{"method", "simplex"}}).value(), 7u);
  EXPECT_EQ(&obs::counter("test.obs.labeled.stable", {{"method", "simplex"}}), &before);
}

TEST(ObsLabels, GaugeAndHistogramKindsSupportLabels) {
  Gauge& g = obs::gauge("test.obs.labeled.g", {{"rank", "0"}});
  Histogram& h = obs::histogram("test.obs.labeled.h", {{"method", "pdhg"}});
  g.set(2.5);
  h.record(4.0);
  EXPECT_DOUBLE_EQ(obs::gauge("test.obs.labeled.g", {{"rank", "0"}}).value(), 2.5);
  EXPECT_EQ(obs::histogram("test.obs.labeled.h", {{"method", "pdhg"}}).count(), 1u);
  const std::string json = obs::to_json();
  EXPECT_NE(json.find("\"test.obs.labeled.g{rank=0}\""), std::string::npos);
  EXPECT_NE(json.find("\"test.obs.labeled.h{method=pdhg}\""), std::string::npos);
}

TEST(ObsLabels, LabeledMacrosMatchCompileTimeSwitch) {
  Counter& c = obs::counter("test.obs.labeled.macro", {{"method", "pdhg"}});
  const std::uint64_t before = c.value();
  GPUMIP_OBS_COUNT_L("test.obs.labeled.macro", {"method", "pdhg"});
  GPUMIP_OBS_ADD_L("test.obs.labeled.macro", 9, {"method", "pdhg"});
  GPUMIP_OBS_RECORD_L("test.obs.labeled.macro.h", 2.0, {"method", "pdhg"}, {"rank", "0"});
  if (obs::kObsEnabled) {
    EXPECT_EQ(c.value(), before + 10);
    EXPECT_EQ(obs::histogram("test.obs.labeled.macro.h", {{"method", "pdhg"}, {"rank", "0"}})
                  .count(),
              1u);
  } else {
    EXPECT_EQ(c.value(), before);  // macros are no-ops in OFF builds
  }
}

// Concurrent creation of *distinct* label sets in one family from many
// ranks: registration takes the unique lock, lookups the shared lock; the
// TSan preset runs this test too.
TEST(ObsLabels, ConcurrentLabelSetCreationIsSafe) {
  constexpr int kRanks = 8;
  constexpr int kRounds = 50;
  parallel::RunOptions options;
  options.schedule.fuzz = true;
  options.schedule.seed = 1234;
  parallel::run_ranks(kRanks, [&](parallel::Comm& comm) {
    const std::string rank_str = std::to_string(comm.rank());
    for (int i = 0; i < kRounds; ++i) {
      // Every rank races both on creating its own label sets and on
      // looking up a shared one.
      obs::counter("test.obs.labeled.race",
                   {{"rank", rank_str}, {"round", std::to_string(i)}})
          .add(1);
      obs::counter("test.obs.labeled.race", {{"rank", "shared"}}).add(1);
    }
  }, options);
  EXPECT_EQ(obs::counter("test.obs.labeled.race", {{"rank", "shared"}}).value(),
            static_cast<std::uint64_t>(kRanks) * kRounds);
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(obs::counter("test.obs.labeled.race",
                           {{"rank", std::to_string(r)}, {"round", "0"}})
                  .value(),
              1u);
  }
}

TEST(ObsSpan, NestingDepthIsTracked) {
  EXPECT_EQ(obs::Span::active_depth(), 0);
  {
    obs::Span outer("test.obs.span.outer");
    EXPECT_EQ(outer.depth(), 1);
    EXPECT_EQ(obs::Span::active_depth(), 1);
    {
      obs::Span inner("test.obs.span.inner");
      EXPECT_EQ(inner.depth(), 2);
      EXPECT_EQ(obs::Span::active_depth(), 2);
    }
    EXPECT_EQ(obs::Span::active_depth(), 1);
  }
  EXPECT_EQ(obs::Span::active_depth(), 0);
  EXPECT_EQ(obs::histogram("test.obs.span.outer").count(), 1u);
  EXPECT_EQ(obs::histogram("test.obs.span.inner").count(), 1u);
  EXPECT_GE(obs::histogram("test.obs.span.outer").min(), 0.0);
}

TEST(ObsMacros, MatchCompileTimeSwitch) {
  Counter& c = obs::counter("test.obs.macro.count");
  const std::uint64_t before = c.value();
  GPUMIP_OBS_COUNT("test.obs.macro.count");
  GPUMIP_OBS_ADD("test.obs.macro.count", 9);
  if (obs::kObsEnabled) {
    EXPECT_EQ(c.value(), before + 10);
  } else {
    EXPECT_EQ(c.value(), before);  // macros are no-ops in OFF builds
  }
}

// Concurrent increments from simmpi ranks under the schedule fuzzer: the
// fuzzer injects yield points and perturbs delivery, so the rank threads
// interleave differently per seed while the totals must stay exact.
TEST(ObsConcurrency, RankSafeUnderScheduleFuzz) {
  constexpr int kRanks = 4;
  constexpr int kRounds = 200;
  Counter& hits = obs::counter("test.obs.concurrent.hits");
  Histogram& dist = obs::histogram("test.obs.concurrent.dist");
  const std::uint64_t hits0 = hits.value();
  const std::uint64_t dist0 = dist.count();

  for (std::uint64_t seed : {1u, 42u, 7919u}) {
    parallel::RunOptions options;
    options.schedule.fuzz = true;
    options.schedule.seed = seed;
    parallel::run_ranks(kRanks, [&](parallel::Comm& comm) {
      for (int i = 0; i < kRounds; ++i) {
        hits.add(1);
        dist.record(static_cast<double>(comm.rank() + 1));
        if (comm.rank() > 0) {
          std::vector<std::byte> payload(8);
          comm.send(0, 1, payload);
        }
      }
      if (comm.rank() == 0) {
        for (int m = 0; m < (kRanks - 1) * kRounds; ++m) comm.recv();
      }
    }, options);
  }

  EXPECT_EQ(hits.value() - hits0, 3ull * kRanks * kRounds);
  EXPECT_EQ(dist.count() - dist0, 3ull * kRanks * kRounds);
  EXPECT_DOUBLE_EQ(dist.min(), 1.0);
  EXPECT_DOUBLE_EQ(dist.max(), static_cast<double>(kRanks));
}

TEST(ObsJson, ExportRoundTrip) {
  obs::counter("test.obs.json.counter").add(5);
  obs::gauge("test.obs.json.gauge").set(0.75);
  obs::histogram("test.obs.json.hist").record(8.0);

  const std::string json = obs::to_json();
  EXPECT_NE(json.find("\"schema\": \"gpumip.metrics.v2\""), std::string::npos);
  EXPECT_NE(json.find("\"families\""), std::string::npos);
  EXPECT_NE(json.find("\"test.obs.json.counter\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"test.obs.json.gauge\": 0.75"), std::string::npos);
  EXPECT_NE(json.find("\"test.obs.json.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);

  const std::string path =
      (std::filesystem::temp_directory_path() / "gpumip_test_obs_export.json").string();
  obs::export_json(path);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) contents.append(buf, n);
  std::fclose(f);
  std::filesystem::remove(path);
  EXPECT_EQ(contents, json);  // to_json() ends with a trailing newline
}

TEST(ObsJson, ExportFailsCleanlyOnUnwritablePath) {
  try {
    obs::export_json("/nonexistent-dir-gpumip/metrics.json");
    FAIL() << "export_json should have thrown";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIoError);
    EXPECT_NE(std::string(e.what()).find("metrics"), std::string::npos);
  }
}

TEST(ObsJson, DisabledFlagReflectsBuild) {
  const std::string json = obs::to_json();
  const std::string expect = obs::kObsEnabled ? "\"enabled\": true" : "\"enabled\": false";
  EXPECT_NE(json.find(expect), std::string::npos);
}

}  // namespace
}  // namespace gpumip
