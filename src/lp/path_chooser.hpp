// Runtime method- and code-path decisions (paper sections 2.3, 5.4 and
// claims C6/C7): the "super-MIP-solver" inspects the instance at solve time
// and routes it twice —
//
//   1. choose_method(): WHICH LP algorithm solves it (dual simplex,
//      interior point, or restarted PDHG). The three-way decision table
//      lives in docs/METHODS.md; it keys on warm-start availability, batch
//      occupancy, matrix density, and size.
//   2. choose_path(): WHERE the chosen method's linear algebra runs
//      (dense-GPU kernels vs sparse-hybrid).
//
// Every choose_method() decision is exported as gpumip.lp.method.* counters
// and a gpumip.lp.method.choice trace instant so bench_e9_methods can show
// the crossover surface rather than assert it.
#pragma once

#include <optional>

#include "sparse/formats.hpp"

namespace gpumip::lp {

enum class CodePath {
  DenseGpu,      ///< dense kernels on the device
  SparseHybrid,  ///< sparse kernels, setup stages on the CPU
};

const char* code_path_name(CodePath path) noexcept;

struct PathChooserOptions {
  /// Below this density the sparse path wins on the device model. The
  /// default matches the measured crossover of the cost model (bench E6):
  /// the sparse kernel's efficiency/divergence penalty (~3.3x per nonzero
  /// vs the bandwidth-bound dense kernel) puts the break-even near 30%.
  double density_threshold = 0.30;
  /// Matrices smaller than this are always dense (latency dominates).
  int small_dimension = 64;
};

/// Decides the code path for a constraint matrix.
CodePath choose_path(const sparse::Csr& a, const PathChooserOptions& options = {});

// ---- three-way LP method selection -----------------------------------------

enum class LpMethod {
  Simplex,        ///< (dual) simplex: exact vertex + basis, warm-start king
  InteriorPoint,  ///< Mehrotra predictor-corrector: few heavy iterations
  Pdhg,           ///< restarted PDHG: matrix-free, batches into lockstep waves
};

/// Stable lowercase names ("simplex", "interior_point", "pdhg") — the values
/// of GPUMIP_LP_METHOD and the vocabulary of docs/METHODS.md (check.sh's
/// methods-doc gate asserts every name below appears there).
const char* lp_method_name(LpMethod method) noexcept;

/// Per-solve facts the decision keys on, beyond the matrix itself.
struct MethodContext {
  bool warm_basis = false;     ///< a parent basis is available (dual simplex)
  bool warm_iterates = false;  ///< parent primal/dual iterates (PDHG warm start)
  int batch_size = 1;          ///< instances solved together in lockstep
  double tol = 1e-6;           ///< accuracy the caller needs
  /// Programmatic pin (e.g. mip::MipOptions::lp_method). Routing it through
  /// choose_method instead of branching at the caller keeps the
  /// every-decision-is-recorded contract: the pin still emits the
  /// gpumip.lp.method.* counters (as forced) and the choice trace instant.
  /// GPUMIP_LP_METHOD outranks it.
  std::optional<LpMethod> forced;
};

struct MethodChoiceOptions {
  /// PDHG is only competitive when its per-wave nnz traffic undercuts the
  /// competition; above this density the SpMV advantage is gone.
  double pdhg_density_max = 0.05;
  /// Sequential PDHG pays thousands of kernel launches, so a cold
  /// single-instance solve only prefers it at the scale where IPM's dense
  /// factorization stops fitting/paying (bench_e9_methods E9-a: IPM wins
  /// every cold sequential cell up to hundreds of rows).
  int pdhg_min_rows = 4096;
  /// Batched lockstep amortizes launches across the batch; with at least
  /// this many instances in flight PDHG's bar drops to pdhg_batched_min_rows.
  int batch_occupancy_min = 16;
  int pdhg_batched_min_rows = 48;
  /// Above this row count a cold solve prefers interior point: ~10 heavy
  /// Cholesky iterations launch two orders of magnitude fewer kernels than
  /// the pivot-by-pivot simplex, and the crossover arrives early
  /// (bench_e9_methods E9-a). Tiny instances stay on simplex, whose warm
  /// restarts dominate real branch-and-bound work anyway.
  int ipm_min_rows = 48;
  /// Accuracy below which first-order methods are ruled out entirely.
  double pdhg_tol_min = 1e-8;
};

/// Decides which LP method solves an instance of matrix `a` under `ctx`.
/// Decision table (docs/METHODS.md, "Choosing a method"):
///   1. GPUMIP_LP_METHOD env var ("simplex"/"interior_point"/"pdhg") wins,
///      then a ctx.forced programmatic pin; both are counted as forced.
///   2. warm basis -> Simplex (dual simplex reuse beats everything).
///   3. batched (>= batch_occupancy_min) and sparse and not tiny -> Pdhg.
///   4. large and sparse (>= pdhg_min_rows, <= pdhg_density_max) -> Pdhg
///      (warm iterates lower the size bar to pdhg_batched_min_rows).
///   5. large (>= ipm_min_rows) -> InteriorPoint.
///   6. otherwise -> Simplex.
/// Tolerances tighter than pdhg_tol_min disqualify Pdhg at steps 3-4.
LpMethod choose_method(const sparse::Csr& a, const MethodContext& ctx,
                       const MethodChoiceOptions& options = {});

/// The GPUMIP_LP_METHOD override if set to a valid method name.
std::optional<LpMethod> lp_method_override();

}  // namespace gpumip::lp
