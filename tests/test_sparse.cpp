#include <gtest/gtest.h>

#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"
#include "sparse/device_sparse.hpp"
#include "sparse/formats.hpp"
#include "sparse/ops.hpp"
#include "sparse/ordering.hpp"
#include "sparse/sparse_cholesky.hpp"
#include "sparse/sparse_lu.hpp"

namespace gpumip::sparse {
namespace {

using linalg::Matrix;
using linalg::Vector;
using linalg::max_abs_diff;

/// Random sparse matrix with guaranteed nonzero diagonal.
Csr random_sparse(int n, double density, Rng& rng) {
  std::vector<Triplet> triplets;
  for (int i = 0; i < n; ++i) triplets.push_back({i, i, rng.uniform(2.0, 4.0)});
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      if (r != c && rng.flip(density)) triplets.push_back({r, c, rng.uniform(-1.0, 1.0)});
    }
  }
  return csr_from_triplets(n, n, triplets);
}

Csr random_spd_sparse(int n, double density, Rng& rng) {
  // A = B + Bᵀ + (row-sum dominance) I, guaranteed SPD by diagonal dominance.
  Matrix dense(n, n, 0.0);
  for (int r = 0; r < n; ++r) {
    for (int c = r + 1; c < n; ++c) {
      if (rng.flip(density)) {
        const double v = rng.uniform(-1.0, 1.0);
        dense(r, c) = v;
        dense(c, r) = v;
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (int j = 0; j < n; ++j) row_sum += std::fabs(dense(i, j));
    dense(i, i) = row_sum + 1.0;
  }
  return csr_from_dense(dense);
}

TEST(Formats, TripletsRoundTrip) {
  std::vector<Triplet> t = {{0, 1, 2.0}, {2, 0, -1.0}, {1, 1, 3.0}, {0, 1, 0.5}};
  Csr a = csr_from_triplets(3, 3, t);
  EXPECT_EQ(a.nnz(), 3);  // duplicates summed
  Matrix d = to_dense(a);
  EXPECT_DOUBLE_EQ(d(0, 1), 2.5);
  EXPECT_DOUBLE_EQ(d(2, 0), -1.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
}

TEST(Formats, DuplicateCancellationDropsEntry) {
  std::vector<Triplet> t = {{0, 0, 1.0}, {0, 0, -1.0}, {1, 1, 2.0}};
  Csr a = csr_from_triplets(2, 2, t);
  EXPECT_EQ(a.nnz(), 1);
}

TEST(Formats, OutOfRangeTripletThrows) {
  EXPECT_THROW(csr_from_triplets(2, 2, {{2, 0, 1.0}}), Error);
  EXPECT_THROW(csr_from_triplets(2, 2, {{0, -1, 1.0}}), Error);
}

TEST(Formats, CsrCscRoundTrip) {
  Rng rng(5);
  Csr a = random_sparse(20, 0.2, rng);
  Csr back = csc_to_csr(csr_to_csc(a));
  EXPECT_TRUE(approx_equal(a, back, 0.0));
}

TEST(Formats, TransposeMatchesDense) {
  Rng rng(7);
  Csr a = random_sparse(15, 0.3, rng);
  EXPECT_LT(max_abs_diff(to_dense(transpose(a)), to_dense(a).transposed()), 1e-15);
}

TEST(Formats, DenseRoundTrip) {
  Rng rng(9);
  Csr a = random_sparse(12, 0.25, rng);
  EXPECT_TRUE(approx_equal(a, csr_from_dense(to_dense(a)), 0.0));
}

TEST(Formats, DensityComputation) {
  Csr a = csr_from_triplets(4, 5, {{0, 0, 1}, {1, 2, 1}, {3, 4, 1}});
  EXPECT_DOUBLE_EQ(a.density(), 3.0 / 20.0);
}

TEST(Formats, DenseColumnExtraction) {
  Rng rng(11);
  Csr a = random_sparse(10, 0.3, rng);
  Csc csc = csr_to_csc(a);
  Matrix d = to_dense(a);
  for (int j = 0; j < 10; ++j) {
    Vector col = dense_column(csc, j);
    for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(col[static_cast<std::size_t>(i)], d(i, j));
  }
}

TEST(Ops, SpmvMatchesDenseGemv) {
  Rng rng(13);
  Csr a = random_sparse(25, 0.15, rng);
  Vector x(25), y1(25, 1.0), y2(25, 1.0);
  for (auto& v : x) v = rng.uniform(-1, 1);
  spmv(2.0, a, x, 0.5, y1);
  linalg::gemv(2.0, to_dense(a), x, 0.5, y2);
  EXPECT_LT(max_abs_diff(y1, y2), 1e-12);
}

TEST(Ops, SpmvTransposeMatchesDense) {
  Rng rng(17);
  Csr a = random_sparse(18, 0.2, rng);
  Vector x(18), y1(18, 0.0), y2(18, 0.0);
  for (auto& v : x) v = rng.uniform(-1, 1);
  spmv_t(1.0, a, x, 0.0, y1);
  linalg::gemv_t(1.0, to_dense(a), x, 0.0, y2);
  EXPECT_LT(max_abs_diff(y1, y2), 1e-12);
}

TEST(Ops, SpmmMatchesGemm) {
  Rng rng(19);
  Csr a = random_sparse(10, 0.3, rng);
  Matrix b = Matrix::random(10, 4, rng);
  Matrix c1(10, 4), c2(10, 4);
  spmm(a, b, c1);
  linalg::gemm(1.0, to_dense(a), b, 0.0, c2);
  EXPECT_LT(max_abs_diff(c1, c2), 1e-12);
}

TEST(Ops, ColumnDot) {
  Rng rng(23);
  Csr a = random_sparse(8, 0.4, rng);
  Csc csc = csr_to_csc(a);
  Vector x(8);
  for (auto& v : x) v = rng.uniform(-1, 1);
  Matrix d = to_dense(a);
  for (int j = 0; j < 8; ++j) {
    double expected = 0.0;
    for (int i = 0; i < 8; ++i) expected += d(i, j) * x[static_cast<std::size_t>(i)];
    EXPECT_NEAR(column_dot(csc, j, x), expected, 1e-12);
  }
}

TEST(Ops, RowStatsDetectIrregularity) {
  // Regular: every row has 2 entries; irregular: one dense row.
  std::vector<Triplet> reg, irr;
  for (int r = 0; r < 10; ++r) {
    reg.push_back({r, r, 1.0});
    reg.push_back({r, (r + 1) % 10, 1.0});
    irr.push_back({r, r, 1.0});
  }
  for (int c = 0; c < 10; ++c) irr.push_back({0, c, 1.0});
  const RowStats rs = row_stats(csr_from_triplets(10, 10, reg));
  const RowStats is = row_stats(csr_from_triplets(10, 10, irr));
  EXPECT_NEAR(rs.cv, 0.0, 1e-12);
  EXPECT_GT(is.cv, 0.5);
}

TEST(Ordering, RcmIsPermutation) {
  Rng rng(29);
  Csr a = random_sparse(30, 0.1, rng);
  auto perm = rcm_ordering(a);
  std::vector<bool> seen(30, false);
  for (int v : perm) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 30);
    EXPECT_FALSE(seen[static_cast<std::size_t>(v)]);
    seen[static_cast<std::size_t>(v)] = true;
  }
}

TEST(Ordering, RcmReducesBandwidthOfShuffledBandMatrix) {
  // Build a tridiagonal matrix, shuffle it, and check RCM restores a small
  // bandwidth.
  const int n = 40;
  Rng rng(31);
  std::vector<Triplet> t;
  for (int i = 0; i < n; ++i) {
    t.push_back({i, i, 4.0});
    if (i + 1 < n) {
      t.push_back({i, i + 1, -1.0});
      t.push_back({i + 1, i, -1.0});
    }
  }
  Csr band = csr_from_triplets(n, n, t);
  auto shuffle_perm = rng.permutation(n);
  Csr shuffled = permute_symmetric(band, shuffle_perm);
  const int before = bandwidth(shuffled);
  Csr reordered = permute_symmetric(shuffled, rcm_ordering(shuffled));
  const int after = bandwidth(reordered);
  EXPECT_GT(before, 5);
  EXPECT_LE(after, 2);
}

TEST(Ordering, MinDegreeReducesFillOnArrowMatrix) {
  // Arrow matrix: dense first row/column. Natural order fills completely;
  // eliminating the arrow head last avoids all fill.
  const int n = 25;
  std::vector<Triplet> t;
  for (int i = 0; i < n; ++i) t.push_back({i, i, 4.0});
  for (int i = 1; i < n; ++i) {
    t.push_back({0, i, -1.0});
    t.push_back({i, 0, -1.0});
  }
  Csr arrow = csr_from_triplets(n, n, t);
  const long fill_natural = symbolic_fill(arrow);
  Csr reordered = permute_symmetric(arrow, min_degree_ordering(arrow));
  const long fill_md = symbolic_fill(reordered);
  EXPECT_GT(fill_natural, 100);
  EXPECT_EQ(fill_md, 0);
}

TEST(SparseLU, SolvesRandomSystems) {
  Rng rng(37);
  for (int n : {1, 5, 30, 80}) {
    Csr a = random_sparse(n, 0.15, rng);
    SparseLU lu(csr_to_csc(a));
    Vector xtrue(static_cast<std::size_t>(n));
    for (auto& v : xtrue) v = rng.uniform(-2, 2);
    Vector b(static_cast<std::size_t>(n), 0.0);
    spmv(1.0, a, xtrue, 0.0, b);
    EXPECT_LT(max_abs_diff(lu.solve(b), xtrue), 1e-8) << "n=" << n;
  }
}

TEST(SparseLU, MatchesDenseLUOnDenseMatrix) {
  Rng rng(41);
  Matrix dense = Matrix::random(20, 20, rng);
  for (int i = 0; i < 20; ++i) dense(i, i) += 5.0;
  SparseLU slu(csr_to_csc(csr_from_dense(dense)));
  linalg::DenseLU dlu(dense);
  Vector b(20);
  for (auto& v : b) v = rng.uniform(-1, 1);
  EXPECT_LT(max_abs_diff(slu.solve(b), dlu.solve(b)), 1e-9);
}

TEST(SparseLU, RequiresPivoting) {
  // Zero diagonal forces row exchange: [[0,1],[1,0]].
  Csr a = csr_from_triplets(2, 2, {{0, 1, 1.0}, {1, 0, 1.0}});
  SparseLU lu(csr_to_csc(a));
  Vector b = {3.0, 7.0};
  Vector x = lu.solve(b);
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SparseLU, SingularThrows) {
  Csr a = csr_from_triplets(3, 3, {{0, 0, 1.0}, {1, 1, 1.0}});  // empty last row/col
  EXPECT_THROW(SparseLU{csr_to_csc(a)}, NumericalError);
}

TEST(SparseLU, FillIsBoundedOnTridiagonal) {
  const int n = 50;
  std::vector<Triplet> t;
  for (int i = 0; i < n; ++i) {
    t.push_back({i, i, 4.0});
    if (i + 1 < n) {
      t.push_back({i, i + 1, -1.0});
      t.push_back({i + 1, i, -1.0});
    }
  }
  SparseLU lu(csc_from_triplets(n, n, t));
  // Tridiagonal LU has at most ~3n nonzeros (no pivoting needed thanks to
  // diagonal dominance; partial pivoting keeps it within a small multiple).
  EXPECT_LT(lu.factor_nnz(), 5 * n);
}

TEST(SparseCholesky, SolvesSpdSystems) {
  Rng rng(43);
  for (int n : {1, 6, 25, 60}) {
    Csr a = random_spd_sparse(n, 0.1, rng);
    SparseCholesky chol(csr_to_csc(a));
    Vector xtrue(static_cast<std::size_t>(n));
    for (auto& v : xtrue) v = rng.uniform(-1, 1);
    Vector b(static_cast<std::size_t>(n), 0.0);
    spmv(1.0, a, xtrue, 0.0, b);
    EXPECT_LT(max_abs_diff(chol.solve(b), xtrue), 1e-8) << "n=" << n;
  }
}

TEST(SparseCholesky, MatchesDenseCholesky) {
  Rng rng(47);
  Csr a = random_spd_sparse(15, 0.3, rng);
  SparseCholesky schol(csr_to_csc(a));
  linalg::DenseCholesky dchol(to_dense(a));
  Vector b(15);
  for (auto& v : b) v = rng.uniform(-1, 1);
  EXPECT_LT(max_abs_diff(schol.solve(b), dchol.solve(b)), 1e-9);
}

TEST(SparseCholesky, IndefiniteThrows) {
  Csr a = csr_from_triplets(2, 2, {{0, 0, 1.0}, {0, 1, 2.0}, {1, 0, 2.0}, {1, 1, 1.0}});
  EXPECT_THROW(SparseCholesky{csr_to_csc(a)}, NumericalError);
}

TEST(SparseCholesky, OrderingReducesFactorFill) {
  // Arrow matrix again: min-degree ordering should give near-zero fill.
  const int n = 30;
  std::vector<Triplet> t;
  for (int i = 0; i < n; ++i) t.push_back({i, i, static_cast<double>(n)});
  for (int i = 1; i < n; ++i) {
    t.push_back({0, i, -1.0});
    t.push_back({i, 0, -1.0});
  }
  Csr arrow = csr_from_triplets(n, n, t);
  SparseCholesky natural(csr_to_csc(arrow));
  Csr reordered = permute_symmetric(arrow, min_degree_ordering(arrow));
  SparseCholesky ordered(csr_to_csc(reordered));
  EXPECT_GT(natural.factor_nnz(), ordered.factor_nnz() * 3);
}

TEST(DeviceSparse, UploadDownloadRoundTrip) {
  gpu::Device dev;
  Rng rng(53);
  Csr a = random_sparse(20, 0.2, rng);
  auto da = DeviceCsr::upload(dev, 0, a);
  EXPECT_TRUE(approx_equal(da.download(0), a, 0.0));
  EXPECT_EQ(dev.stats().transfers_h2d, 3u);  // rowptr + colidx + values
}

TEST(DeviceSparse, SpmvMatchesHostAndChargesSparseRates) {
  gpu::Device dev;
  Rng rng(59);
  Csr a = random_sparse(40, 0.1, rng);
  Vector x(40), y_host(40, 0.0);
  for (auto& v : x) v = rng.uniform(-1, 1);
  spmv(1.0, a, x, 0.0, y_host);
  auto da = DeviceCsr::upload(dev, 0, a);
  auto dx = linalg::DeviceVector::upload(dev, 0, x);
  linalg::DeviceVector dy(dev, 40);
  dy.assign(0, Vector(40, 0.0));
  dev_spmv(0, 1.0, da, dx, 0.0, dy);
  EXPECT_LT(max_abs_diff(dy.download(0), y_host), 1e-12);
  EXPECT_GE(dev.stats().kernels, 1u);
}

TEST(DeviceSparse, SparseSpmvSlowerThanDenseGemvSameShape) {
  // The paper's section 5.4 asymmetry: same logical matvec, the sparse
  // kernel is charged more per flop.
  Rng rng(61);
  const int n = 200;
  Csr sp = random_sparse(n, 0.9, rng);  // nearly dense in CSR form
  Matrix dn = to_dense(sp);

  gpu::Device dev_sparse, dev_dense;
  Vector x(static_cast<std::size_t>(n), 1.0);
  {
    auto da = DeviceCsr::upload(dev_sparse, 0, sp);
    auto dx = linalg::DeviceVector::upload(dev_sparse, 0, x);
    linalg::DeviceVector dy(dev_sparse, n);
    dy.assign(0, Vector(static_cast<std::size_t>(n), 0.0));
    dev_sparse.reset_stats();
    dev_spmv(0, 1.0, da, dx, 0.0, dy);
    dev_sparse.synchronize();
  }
  {
    auto da = linalg::DeviceMatrix::upload(dev_dense, 0, dn);
    auto dx = linalg::DeviceVector::upload(dev_dense, 0, x);
    linalg::DeviceVector dy(dev_dense, n);
    dy.assign(0, Vector(static_cast<std::size_t>(n), 0.0));
    dev_dense.reset_stats();
    linalg::dev_gemv(0, 1.0, da, dx, 0.0, dy);
    dev_dense.synchronize();
  }
  EXPECT_GT(dev_sparse.stats().kernel_seconds, dev_dense.stats().kernel_seconds);
}

}  // namespace
}  // namespace gpumip::sparse
