#include "ivm/flowshop.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace gpumip::ivm {

FlowshopInstance FlowshopInstance::random(int machines, int jobs, Rng& rng, double lo,
                                          double hi) {
  check_arg(machines > 0 && jobs > 0, "flowshop: sizes must be positive");
  FlowshopInstance inst;
  inst.machines = machines;
  inst.jobs = jobs;
  inst.processing.resize(static_cast<std::size_t>(machines) * jobs);
  for (double& v : inst.processing) v = std::floor(rng.uniform(lo, hi + 1.0));
  return inst;
}

double FlowshopInstance::makespan(std::span<const int> permutation) const {
  check_arg(static_cast<int>(permutation.size()) == jobs, "makespan: incomplete permutation");
  std::vector<double> completion(static_cast<std::size_t>(machines), 0.0);
  for (int j : permutation) {
    completion[0] += p(0, j);
    for (int m = 1; m < machines; ++m) {
      completion[static_cast<std::size_t>(m)] =
          std::max(completion[static_cast<std::size_t>(m)],
                   completion[static_cast<std::size_t>(m - 1)]) +
          p(m, j);
    }
  }
  return completion[static_cast<std::size_t>(machines - 1)];
}

double FlowshopInstance::lower_bound(std::span<const int> prefix) const {
  // Completion times of the prefix.
  std::vector<double> completion(static_cast<std::size_t>(machines), 0.0);
  std::vector<bool> used(static_cast<std::size_t>(jobs), false);
  for (int j : prefix) {
    check_arg(j >= 0 && j < jobs && !used[static_cast<std::size_t>(j)], "bad prefix");
    used[static_cast<std::size_t>(j)] = true;
    completion[0] += p(0, j);
    for (int m = 1; m < machines; ++m) {
      completion[static_cast<std::size_t>(m)] =
          std::max(completion[static_cast<std::size_t>(m)],
                   completion[static_cast<std::size_t>(m - 1)]) +
          p(m, j);
    }
  }
  if (static_cast<int>(prefix.size()) == jobs) {
    return completion[static_cast<std::size_t>(machines - 1)];
  }
  // One-machine bound (Ignall-Schrage): machine m must still process all
  // unscheduled jobs, and the last of them needs its tail through the
  // remaining machines.
  double bound = completion[static_cast<std::size_t>(machines - 1)];
  for (int m = 0; m < machines; ++m) {
    double work = 0.0;
    double min_tail = std::numeric_limits<double>::infinity();
    for (int j = 0; j < jobs; ++j) {
      if (used[static_cast<std::size_t>(j)]) continue;
      work += p(m, j);
      double tail = 0.0;
      for (int k = m + 1; k < machines; ++k) tail += p(k, j);
      min_tail = std::min(min_tail, tail);
    }
    if (work == 0.0) continue;
    bound = std::max(bound, completion[static_cast<std::size_t>(m)] + work + min_tail);
  }
  return bound;
}

double FlowshopInstance::greedy_upper_bound() const { return makespan(greedy_sequence()); }

std::vector<int> FlowshopInstance::greedy_sequence() const {
  // NEH-lite: order jobs by decreasing total work, insert each at the best
  // position of the partial sequence.
  std::vector<int> order(static_cast<std::size_t>(jobs));
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> total(static_cast<std::size_t>(jobs), 0.0);
  for (int j = 0; j < jobs; ++j) {
    for (int m = 0; m < machines; ++m) total[static_cast<std::size_t>(j)] += p(m, j);
  }
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return total[static_cast<std::size_t>(a)] > total[static_cast<std::size_t>(b)]; });
  std::vector<int> seq;
  for (int j : order) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_pos = 0;
    for (std::size_t pos = 0; pos <= seq.size(); ++pos) {
      std::vector<int> trial = seq;
      trial.insert(trial.begin() + static_cast<std::ptrdiff_t>(pos), j);
      // Partial makespan of the trial sequence.
      std::vector<double> completion(static_cast<std::size_t>(machines), 0.0);
      for (int job : trial) {
        completion[0] += p(0, job);
        for (int m = 1; m < machines; ++m) {
          completion[static_cast<std::size_t>(m)] =
              std::max(completion[static_cast<std::size_t>(m)],
                       completion[static_cast<std::size_t>(m - 1)]) +
              p(m, job);
        }
      }
      const double cmax = completion[static_cast<std::size_t>(machines - 1)];
      if (cmax < best) {
        best = cmax;
        best_pos = pos;
      }
    }
    seq.insert(seq.begin() + static_cast<std::ptrdiff_t>(best_pos), j);
  }
  return seq;
}

}  // namespace gpumip::ivm
