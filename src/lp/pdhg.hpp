// Restarted primal-dual hybrid gradient (PDHG) LP solver — the matrix-free
// first-order backend (ROADMAP item 1, paper claims C6/C7; method after
// PDLP / Blin et al., "Batched First-Order Methods for Parallel LP Solving
// in MIP").
//
// Works directly on the standard form
//
//     min cᵀx   s.t.  Ax = b,  l ≤ x ≤ u
//
// through the saddle point  min_x max_y  cᵀx + yᵀ(b − Ax):
//
//     x⁺ = proj_[l,u](x − τ ∘ (c − Aᵀy))          (one SpMVᵀ + vector ops)
//     y⁺ = y + σ ∘ (b − A(2x⁺ − x))               (one SpMV  + vector ops)
//
// with diagonal step sizes from the matrix row/column 1-norms
// (Chambolle–Pock diagonal preconditioning: τ_j = s/‖A_{·j}‖₁,
// σ_i = s/‖A_{i·}‖₁, convergent for s ≤ 1). The only matrix operations are
// SpMV and SpMVᵀ over the existing CSR — no factorization, no basis, no
// fill-in — which is why hundreds of instances batch into lockstep device
// waves (lp/batched_lp) and why the per-instance device footprint is
// pdhg_lp_device_bytes, not dense_lp_device_bytes.
//
// Restarts: the solver tracks the running average of the iterates (the
// ergodic sequence, which converges faster than the last iterate) and
// every check_interval iterations scores both candidates with the
// normalized KKT residual (primal residual, dual residual, duality gap).
// When the better candidate has decayed below restart_factor × the score
// at the last restart — or a restart is overdue — the iteration restarts
// from that candidate. This is the PDLP restart scheme that turns PDHG's
// O(1/k) tail into linear convergence on LPs.
//
// Accuracy contract (docs/METHODS.md): a result of status Optimal is
// tol-accurate in the normalized KKT sense, NOT a vertex solution — there
// is no basis, reduced costs come from the final duals, and callers that
// prune on the objective must pad by tol (mip::BnbSolver does). Infeasible
// and Unbounded are certified from the iterate drift ray (an approximate
// Farkas certificate), the standard first-order detection.
#pragma once

#include <optional>
#include <span>

#include "lp/result.hpp"
#include "lp/standard_form.hpp"

namespace gpumip::lp {

struct PdhgOptions {
  double tol = 1e-6;            ///< normalized KKT target (res_p, res_d, gap)
  long max_iterations = 100000;
  int check_interval = 40;      ///< iterations between KKT / restart checks
  double step_scale = 0.95;     ///< s in τ_j = s/‖A_{·j}‖₁, σ_i = s/‖A_{i·}‖₁
  double restart_factor = 0.5;  ///< restart when score ≤ factor × last restart score
  long restart_max_interval = 2000;  ///< force a restart after this many iterations
  double certificate_tol = 1e-6;     ///< relative tolerance of the Farkas ray checks
};

/// Parent iterates to warm-start from (spans must outlive the solve call).
/// Sizes: x over all standard-form variables, y over rows. Empty spans mean
/// a cold start on that side.
struct PdhgWarmStart {
  std::span<const double> x;
  std::span<const double> y;
};

class PdhgSolver {
 public:
  explicit PdhgSolver(const StandardForm& form, PdhgOptions options = {});

  /// Solves under the given variable bounds (sizes = form.num_vars),
  /// optionally warm-started from a parent's primal/dual iterates.
  [[nodiscard]] LpResult solve(std::span<const double> lb, std::span<const double> ub,
                               const PdhgWarmStart* warm = nullptr);

  /// Solve with the form's own bounds.
  [[nodiscard]] LpResult solve_default() { return solve(form_->lb, form_->ub, nullptr); }

  const PdhgOptions& options() const noexcept { return options_; }

 private:
  struct Workspace;

  void init_workspace(Workspace& ws, std::span<const double> lb, std::span<const double> ub,
                      const PdhgWarmStart* warm) const;
  /// The per-iteration hot path (gpumip-lint root: allocation-free; all
  /// buffers live in the preallocated Workspace).
  LpStatus iterate_loop(Workspace& ws) const;
  /// Normalized KKT score (max of primal residual, dual residual, gap) of
  /// one candidate point; also reports its primal objective.
  double evaluate_kkt(Workspace& ws, std::span<const double> x, std::span<const double> y,
                      double* objective) const;
  /// Farkas-ray tests on the iterate drift since the last restart.
  std::optional<LpStatus> check_certificates(Workspace& ws) const;
  LpResult finish(Workspace& ws, LpStatus status) const;

  const StandardForm* form_;
  PdhgOptions options_;
};

}  // namespace gpumip::lp
