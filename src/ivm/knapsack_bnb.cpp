#include "ivm/knapsack_bnb.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/device_blas.hpp"

namespace gpumip::ivm {

KnapsackInstance KnapsackInstance::random(int items, Rng& rng, double capacity_ratio) {
  check_arg(items > 0, "knapsack: items must be positive");
  KnapsackInstance inst;
  double total = 0.0;
  for (int i = 0; i < items; ++i) {
    inst.value.push_back(static_cast<double>(rng.uniform_int(1, 40)));
    inst.weight.push_back(static_cast<double>(rng.uniform_int(1, 20)));
    total += inst.weight.back();
  }
  inst.capacity = std::floor(capacity_ratio * total);
  return inst;
}

namespace {

/// Items sorted by value density; shared by both engines.
struct SortedView {
  std::vector<int> order;  // original indices, densest first
  explicit SortedView(const KnapsackInstance& inst) {
    order.resize(static_cast<std::size_t>(inst.items()));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return inst.value[static_cast<std::size_t>(a)] / inst.weight[static_cast<std::size_t>(a)] >
             inst.value[static_cast<std::size_t>(b)] / inst.weight[static_cast<std::size_t>(b)];
    });
  }
};

/// Greedy fractional upper bound for the subproblem: items from sorted
/// position `depth` onward, remaining capacity `cap`, accumulated `value`.
double fractional_bound(const KnapsackInstance& inst, const SortedView& view, int depth,
                        double cap, double value) {
  double bound = value;
  for (std::size_t k = static_cast<std::size_t>(depth); k < view.order.size(); ++k) {
    const int i = view.order[k];
    const double w = inst.weight[static_cast<std::size_t>(i)];
    const double v = inst.value[static_cast<std::size_t>(i)];
    if (w <= cap) {
      cap -= w;
      bound += v;
    } else {
      bound += v * (cap / w);
      break;
    }
  }
  return bound;
}

struct Node {
  int depth = 0;        // position in the sorted order
  double cap = 0.0;     // remaining capacity
  double value = 0.0;   // accumulated value
  std::uint64_t mask = 0;  // chosen items as a bitmask over sorted positions
};

}  // namespace

KnapsackResult solve_knapsack_cpu(const KnapsackInstance& instance) {
  check_arg(instance.items() <= 63, "knapsack engines support up to 63 items");
  const SortedView view(instance);
  KnapsackResult result;
  double best = 0.0;
  std::uint64_t best_mask = 0;
  std::vector<Node> stack = {{0, instance.capacity, 0.0, 0}};
  while (!stack.empty()) {
    const Node node = stack.back();
    stack.pop_back();
    ++result.nodes;
    if (fractional_bound(instance, view, node.depth, node.cap, node.value) <= best) continue;
    if (node.depth == instance.items()) {
      if (node.value > best) {
        best = node.value;
        best_mask = node.mask;
      }
      continue;
    }
    const int item = view.order[static_cast<std::size_t>(node.depth)];
    // Exclude branch first so include (usually better) is explored first.
    stack.push_back({node.depth + 1, node.cap, node.value, node.mask});
    if (instance.weight[static_cast<std::size_t>(item)] <= node.cap) {
      Node take = node;
      take.depth = node.depth + 1;
      take.cap -= instance.weight[static_cast<std::size_t>(item)];
      take.value += instance.value[static_cast<std::size_t>(item)];
      take.mask |= 1ull << node.depth;
      if (take.value > best) {
        best = take.value;
        best_mask = take.mask;
      }
      stack.push_back(take);
    }
  }
  result.best_value = best;
  for (int d = 0; d < instance.items(); ++d) {
    if (best_mask & (1ull << d)) result.chosen.push_back(view.order[static_cast<std::size_t>(d)]);
  }
  std::sort(result.chosen.begin(), result.chosen.end());
  return result;
}

KnapsackResult solve_knapsack_gpu(const KnapsackInstance& instance, gpu::Device& device,
                                  int max_frontier) {
  check_arg(instance.items() <= 63, "knapsack engines support up to 63 items");
  const SortedView view(instance);
  KnapsackResult result;

  // Device residency: instance arrays + a double-buffered frontier.
  gpu::DeviceBuffer d_inst = device.alloc(
      instance.value.size() * 2 * sizeof(double) + sizeof(double), "ks.instance");
  {
    std::vector<double> packed = instance.value;
    packed.insert(packed.end(), instance.weight.begin(), instance.weight.end());
    packed.push_back(instance.capacity);
    device.copy_h2d(0, d_inst, packed.data(), packed.size() * sizeof(double));
  }
  gpu::DeviceBuffer d_frontier =
      device.alloc(static_cast<std::size_t>(max_frontier) * sizeof(Node) * 2, "ks.frontier");
  (void)d_frontier;

  double best = 0.0;
  std::uint64_t best_mask = 0;
  std::vector<Node> frontier = {{0, instance.capacity, 0.0, 0}};
  while (!frontier.empty()) {
    ++result.kernel_waves;
    std::vector<Node> next;
    // One batched kernel: bound + expand every frontier node.
    gpu::KernelCost cost;
    cost.flops = 3.0 * static_cast<double>(frontier.size()) * instance.items();
    cost.bytes = static_cast<double>(frontier.size()) * sizeof(Node) * 2;
    cost.divergence = 0.4;  // take/skip split diverges within warps
    cost.occupancy =
        linalg::occupancy_for_elements(frontier.size() * static_cast<std::size_t>(instance.items()));
    device.launch(0, cost, [&] {
      for (const Node& node : frontier) {
        ++result.nodes;
        if (fractional_bound(instance, view, node.depth, node.cap, node.value) <= best) continue;
        if (node.depth == instance.items()) {
          if (node.value > best) {
            best = node.value;
            best_mask = node.mask;
          }
          continue;
        }
        const int item = view.order[static_cast<std::size_t>(node.depth)];
        next.push_back({node.depth + 1, node.cap, node.value, node.mask});
        if (instance.weight[static_cast<std::size_t>(item)] <= node.cap) {
          Node take = node;
          take.depth = node.depth + 1;
          take.cap -= instance.weight[static_cast<std::size_t>(item)];
          take.value += instance.value[static_cast<std::size_t>(item)];
          take.mask |= 1ull << node.depth;
          if (take.value > best) {
            best = take.value;
            best_mask = take.mask;
          }
          next.push_back(take);
        }
      }
    });
    // Frontier overflow control: keep the most promising nodes (beam-style
    // truncation never drops the optimum because bounds are rechecked, but
    // a full B&B must not truncate — instead we sort so that the deepest
    // nodes finish first and the frontier stays bounded).
    if (static_cast<int>(next.size()) > max_frontier) {
      std::nth_element(next.begin(), next.begin() + max_frontier, next.end(),
                       [](const Node& a, const Node& b) { return a.depth > b.depth; });
      // Process the overflow depth-first on the spot (host fallback would
      // break the all-on-device story; instead run extra waves over splits).
      std::vector<Node> overflow(next.begin() + max_frontier, next.end());
      next.resize(static_cast<std::size_t>(max_frontier));
      frontier = std::move(next);
      frontier.insert(frontier.end(), overflow.begin(), overflow.end());
      continue;
    }
    frontier = std::move(next);
  }
  result.best_value = best;
  for (int d = 0; d < instance.items(); ++d) {
    if (best_mask & (1ull << d)) result.chosen.push_back(view.order[static_cast<std::size_t>(d)]);
  }
  std::sort(result.chosen.begin(), result.chosen.end());
  device.synchronize();
  return result;
}

double knapsack_dp(const KnapsackInstance& instance) {
  const int cap = static_cast<int>(instance.capacity);
  check_arg(std::fabs(instance.capacity - cap) < 1e-9, "knapsack_dp needs integer capacity");
  std::vector<double> dp(static_cast<std::size_t>(cap) + 1, 0.0);
  for (int i = 0; i < instance.items(); ++i) {
    const int w = static_cast<int>(instance.weight[static_cast<std::size_t>(i)]);
    check_arg(std::fabs(instance.weight[static_cast<std::size_t>(i)] - w) < 1e-9,
              "knapsack_dp needs integer weights");
    for (int c = cap; c >= w; --c) {
      dp[static_cast<std::size_t>(c)] =
          std::max(dp[static_cast<std::size_t>(c)],
                   dp[static_cast<std::size_t>(c - w)] + instance.value[static_cast<std::size_t>(i)]);
    }
  }
  return dp[static_cast<std::size_t>(cap)];
}

}  // namespace gpumip::ivm
