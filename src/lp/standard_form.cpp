#include "lp/standard_form.hpp"

#include <cmath>

#include "sparse/ops.hpp"

namespace gpumip::lp {

StandardForm build_standard_form(const LpModel& model) {
  model.validate();
  StandardForm form;
  form.num_rows = model.num_rows();
  form.num_struct = model.num_cols();
  form.obj_sign = model.sense() == Sense::Minimize ? 1.0 : -1.0;

  // Count slacks first to size the variable space.
  form.slack_of_row.assign(static_cast<std::size_t>(form.num_rows), -1);
  int next_var = form.num_struct;
  for (int i = 0; i < form.num_rows; ++i) {
    const RowDef& r = model.row(i);
    const bool equality = r.lb == r.ub && std::isfinite(r.lb);
    if (!equality) form.slack_of_row[static_cast<std::size_t>(i)] = next_var++;
  }
  form.num_vars = next_var;

  form.c.assign(static_cast<std::size_t>(form.num_vars), 0.0);
  form.lb.assign(static_cast<std::size_t>(form.num_vars), 0.0);
  form.ub.assign(static_cast<std::size_t>(form.num_vars), kInf);
  form.b.assign(static_cast<std::size_t>(form.num_rows), 0.0);

  for (int j = 0; j < form.num_struct; ++j) {
    const ColumnDef& cdef = model.col(j);
    form.c[static_cast<std::size_t>(j)] = form.obj_sign * cdef.obj;
    form.lb[static_cast<std::size_t>(j)] = cdef.lb;
    form.ub[static_cast<std::size_t>(j)] = cdef.ub;
  }

  std::vector<sparse::Triplet> triplets = model.entries();
  for (int i = 0; i < form.num_rows; ++i) {
    const RowDef& r = model.row(i);
    const int slack = form.slack_of_row[static_cast<std::size_t>(i)];
    if (slack < 0) {  // equality
      check_arg(std::isfinite(r.lb), "free row cannot be an equality");
      form.b[static_cast<std::size_t>(i)] = r.lb;
      continue;
    }
    const std::size_t s = static_cast<std::size_t>(slack);
    const bool has_lb = std::isfinite(r.lb);
    const bool has_ub = std::isfinite(r.ub);
    if (has_ub) {
      // aᵀy + s = U, s in [0, U-L] (or [0, inf) if L = -inf)
      triplets.push_back({i, slack, 1.0});
      form.b[static_cast<std::size_t>(i)] = r.ub;
      form.lb[s] = 0.0;
      form.ub[s] = has_lb ? r.ub - r.lb : kInf;
    } else if (has_lb) {
      // aᵀy - s = L, s in [0, inf)
      triplets.push_back({i, slack, -1.0});
      form.b[static_cast<std::size_t>(i)] = r.lb;
      form.lb[s] = 0.0;
      form.ub[s] = kInf;
    } else {
      // Free row: aᵀy - s = 0 with free s (the row never binds).
      triplets.push_back({i, slack, -1.0});
      form.b[static_cast<std::size_t>(i)] = 0.0;
      form.lb[s] = -kInf;
      form.ub[s] = kInf;
    }
  }

  form.a_rows = sparse::csr_from_triplets(form.num_rows, form.num_vars, triplets);
  form.a_cols = sparse::csr_to_csc(form.a_rows);
  return form;
}

double equality_residual(const StandardForm& form, std::span<const double> x) {
  check_arg(static_cast<int>(x.size()) == form.num_vars, "equality_residual: size mismatch");
  linalg::Vector ax(static_cast<std::size_t>(form.num_rows), 0.0);
  sparse::spmv(1.0, form.a_rows, x, 0.0, ax);
  double worst = 0.0;
  for (int i = 0; i < form.num_rows; ++i) {
    worst = std::max(worst, std::fabs(ax[static_cast<std::size_t>(i)] -
                                      form.b[static_cast<std::size_t>(i)]));
  }
  return worst;
}

bool within_bounds(const StandardForm& form, std::span<const double> x, double tol) {
  for (int j = 0; j < form.num_vars; ++j) {
    const std::size_t k = static_cast<std::size_t>(j);
    if (x[k] < form.lb[k] - tol || x[k] > form.ub[k] + tol) return false;
  }
  return true;
}

}  // namespace gpumip::lp
