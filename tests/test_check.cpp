// Seeded-corruption tests for the invariant-checking subsystem: each test
// plants one specific inconsistency (orphaned tree node, stale eta file,
// unsorted CSR indices, leaked device block, dropped simmpi message, ...)
// and asserts the matching validator fires with ErrorCode::kInternal.
#include <gtest/gtest.h>

#include "check/invariants.hpp"
#include "check/message_audit.hpp"
#include "check/registry.hpp"
#include "gpu/device.hpp"
#include "mip/solver.hpp"
#include "parallel/supervisor.hpp"
#include "support/assert.hpp"

namespace gpumip {
namespace {

using check::Subsystem;

template <typename Fn>
void expect_internal(Fn&& fn) {
  try {
    fn();
    FAIL() << "expected Error(kInternal), nothing was thrown";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInternal) << e.what();
  }
}

// ---------------------------------------------------------------------------
// Macros & registry
// ---------------------------------------------------------------------------

TEST(CheckedMode, AssertTogglesWithBuildMode) {
  EXPECT_NO_THROW(GPUMIP_ASSERT(true, "never fires"));
  if constexpr (kCheckedBuild) {
    expect_internal([] { GPUMIP_ASSERT(false, "seeded failure"); });
    expect_internal([] { GPUMIP_INVARIANT(1 == 2, "seeded failure"); });
  } else {
    EXPECT_NO_THROW(GPUMIP_ASSERT(false, "compiled out"));
    EXPECT_NO_THROW(GPUMIP_INVARIANT(1 == 2, "compiled out"));
  }
}

TEST(CheckedMode, RegistryCountsRunsAndFailures) {
  // Build first, reset second: in checked builds csr_from_triplets itself
  // validates its output, which would otherwise count an extra run.
  const sparse::Csr ok = sparse::csr_from_triplets(2, 2, {{0, 0, 1.0}, {1, 1, 2.0}});
  check::reset_counters();
  check::check_sparse(ok);
  EXPECT_EQ(check::checks_run(Subsystem::kSparse), 1u);
  EXPECT_EQ(check::checks_failed(Subsystem::kSparse), 0u);

  sparse::Csr bad = ok;
  bad.col_index = {1, 0};
  bad.row_start = {0, 2, 2};
  expect_internal([&] { check::check_sparse(bad); });
  EXPECT_EQ(check::checks_failed(Subsystem::kSparse), 1u);
  EXPECT_GE(check::checks_run_total(), 2u);
}

// ---------------------------------------------------------------------------
// Sparse structure (seeded corruption: unsorted CSR indices)
// ---------------------------------------------------------------------------

TEST(CheckSparse, UnsortedCsrIndicesFire) {
  sparse::Csr a;
  a.rows = 1;
  a.cols = 3;
  a.row_start = {0, 2};
  a.col_index = {2, 0};  // unsorted within the row
  a.values = {1.0, 2.0};
  expect_internal([&] { check::check_sparse(a); });
}

TEST(CheckSparse, DuplicateIndexAndBadRowStartFire) {
  sparse::Csr dup;
  dup.rows = 1;
  dup.cols = 3;
  dup.row_start = {0, 2};
  dup.col_index = {1, 1};  // duplicate entry
  dup.values = {1.0, 2.0};
  expect_internal([&] { check::check_sparse(dup); });

  sparse::Csr bad_start;
  bad_start.rows = 2;
  bad_start.cols = 2;
  bad_start.row_start = {0, 2, 1};  // not monotone
  bad_start.col_index = {0, 1};
  bad_start.values = {1.0, 1.0};
  expect_internal([&] { check::check_sparse(bad_start); });
}

TEST(CheckSparse, ValidFormatsPass) {
  const sparse::Csr a = sparse::csr_from_triplets(3, 4, {{0, 1, 1.0}, {2, 0, -2.0}, {2, 3, 4.0}});
  EXPECT_NO_THROW(check::check_sparse(a));
  EXPECT_NO_THROW(check::check_sparse(sparse::csr_to_csc(a)));
}

// ---------------------------------------------------------------------------
// Tree structure (seeded corruption: orphaned node, bound regression)
// ---------------------------------------------------------------------------

mip::BnbNode make_node(int parent, int depth, double bound) {
  mip::BnbNode n;
  n.parent = parent;
  n.depth = depth;
  n.bound = bound;
  n.lb = {0.0};
  n.ub = {1.0};
  return n;
}

TEST(CheckTree, OrphanedOpenNodeFires) {
  mip::NodePool pool;
  expect_internal([&] {
    pool.push(make_node(-1, 0, -1e300));
    pool.node(0).bound = 1.0;
    pool.set_state(0, mip::NodeState::Branched);
    pool.push(make_node(0, 1, 2.0));  // legitimate child
    // Retire the parent to a leaf state while its child is still open: the
    // child is now orphaned. (In checked builds the set_state/pop machinery
    // may fire first; either way the corruption must not survive check_tree.)
    pool.set_state(0, mip::NodeState::PrunedLeaf);
    check::check_tree(pool);
  });
}

TEST(CheckTree, BoundRegressionFires) {
  mip::NodePool pool;
  expect_internal([&] {
    pool.push(make_node(-1, 0, 5.0));
    pool.set_state(0, mip::NodeState::Branched);
    pool.push(make_node(0, 1, 1.0));  // child bound below parent bound
    check::check_tree(pool);
  });
}

TEST(CheckTree, HealthySolveTreePasses) {
  mip::MipModel m;
  m.lp().set_sense(lp::Sense::Maximize);
  const int x = m.add_int_col(1.0, 0, 10), y = m.add_int_col(1.0, 0, 10);
  m.lp().add_row_le({{x, 2.0}, {y, 1.0}}, 5.0);
  m.lp().add_row_le({{x, 1.0}, {y, 3.0}}, 7.0);
  mip::BnbSolver solver(m);
  ASSERT_EQ(solver.solve().status, mip::MipStatus::Optimal);
  EXPECT_NO_THROW(check::check_tree(solver.pool()));
  EXPECT_NO_THROW(check::check_snapshot(solver.capture_snapshot()));
}

// ---------------------------------------------------------------------------
// Snapshot consistency (paper C2)
// ---------------------------------------------------------------------------

TEST(CheckSnapshot, InFlightNodesFire) {
  mip::ConsistentSnapshot snap;
  expect_internal([&] { check::check_snapshot(snap, nullptr, /*in_flight=*/3); });
}

TEST(CheckSnapshot, CrossedBoundsFire) {
  mip::ConsistentSnapshot snap;
  snap.frontier.push_back({{2.0}, {1.0}, 0.0, 1});  // lb > ub
  expect_internal([&] { check::check_snapshot(snap); });
}

TEST(CheckSnapshot, NodeAboveIncumbentFires) {
  mip::ConsistentSnapshot snap;
  snap.incumbent_objective = 1.0;
  snap.incumbent_x = {0.0};
  snap.frontier.push_back({{0.0}, {1.0}, 7.0, 1});  // worse than the incumbent
  expect_internal([&] { check::check_snapshot(snap); });
}

TEST(CheckSnapshot, IncumbentOutsideBoundsFires) {
  lp::LpModel m;
  const int x = m.add_col(1.0, 0.0, 10.0);
  m.add_row_le({{x, 1.0}}, 5.0);
  const lp::StandardForm form = lp::build_standard_form(m);

  mip::ConsistentSnapshot snap;
  snap.incumbent_objective = 0.0;
  snap.incumbent_x = {-3.0};  // below the structural lower bound
  expect_internal([&] { check::check_snapshot(snap, &form); });
}

// ---------------------------------------------------------------------------
// Basis / eta file (paper C3: rank-1 update reuse)
// ---------------------------------------------------------------------------

struct BasisFixture {
  lp::LpModel model;
  lp::StandardForm form;
  lp::Basis slack_basis;

  BasisFixture() {
    const int x = model.add_col(1.0, 0.0, 10.0);
    model.add_row_le({{x, 1.0}}, 5.0);
    model.add_row_le({{x, 2.0}}, 8.0);
    form = lp::build_standard_form(model);
    // Slack basis: B is the identity.
    slack_basis.basic = {1, 2};
    slack_basis.status = {lp::VarStatus::AtLower, lp::VarStatus::Basic, lp::VarStatus::Basic};
  }
};

TEST(CheckBasis, StructuralCorruptionFires) {
  BasisFixture fx;
  EXPECT_NO_THROW(check::check_basis(fx.form, fx.slack_basis));

  lp::Basis dup = fx.slack_basis;
  dup.basic = {1, 1};  // same variable basic in two rows
  expect_internal([&] { check::check_basis(fx.form, dup); });

  lp::Basis mislabeled = fx.slack_basis;
  mislabeled.status[1] = lp::VarStatus::AtLower;  // basic var not flagged Basic
  expect_internal([&] { check::check_basis(fx.form, mislabeled); });
}

TEST(CheckBasis, StaleEtaFileFires) {
  BasisFixture fx;
  const linalg::Matrix identity = linalg::Matrix::identity(2);
  linalg::EtaFile etas;
  // Fresh factorization, no updates: B = I, B⁻¹ = I — residual is zero.
  EXPECT_NO_THROW(check::check_basis(fx.form, fx.slack_basis, identity, etas));

  // A leftover eta from some other node's pivot: the replayed inverse no
  // longer inverts this node's basis.
  linalg::Eta stale;
  stale.pivot_row = 0;
  stale.column = {0.25, -0.5};
  etas.push(stale);
  expect_internal([&] { check::check_basis(fx.form, fx.slack_basis, identity, etas); });
}

TEST(CheckBasis, DriftedInverseFires) {
  const linalg::Matrix b = linalg::Matrix::identity(3);
  linalg::Matrix drifted = b;
  drifted(1, 1) = 1.5;  // corrupted entry: no longer B⁻¹
  EXPECT_NO_THROW(check::check_basis_inverse(b, b));
  expect_internal([&] { check::check_basis_inverse(b, drifted); });
}

// ---------------------------------------------------------------------------
// Device memory ledger (leaks / double frees at teardown)
// ---------------------------------------------------------------------------

TEST(DeviceLedger, LeakedBlockFires) {
  gpu::Device device;
  EXPECT_NO_THROW(device.audit());
  {
    const gpu::DeviceBuffer buf = device.alloc(1024, "leaked-block");
    EXPECT_EQ(device.live_allocations(), 1u);
    // Audit before the block is returned: exactly the teardown-leak shape.
    expect_internal([&] { device.audit(); });
  }
  EXPECT_EQ(device.live_allocations(), 0u);
  EXPECT_NO_THROW(device.audit());
}

TEST(DeviceLedger, DoubleFreeFires) {
  gpu::Device device;
  std::uint64_t id = 0;
  std::size_t bytes = 0;
  {
    const gpu::DeviceBuffer buf = device.alloc_doubles(16, "victim");
    id = buf.alloc_id();
    bytes = buf.size_bytes();
  }  // first (legitimate) free
  EXPECT_NO_THROW(device.audit());
  device.inject_free(id, bytes);  // second free of the same allocation
  EXPECT_EQ(device.stats().double_frees, 1u);
  expect_internal([&] { device.audit(); });
}

TEST(DeviceLedger, MoveTransfersOwnership) {
  gpu::Device device;
  gpu::DeviceBuffer a = device.alloc(64, "a");
  const std::uint64_t id = a.alloc_id();
  gpu::DeviceBuffer b = std::move(a);
  EXPECT_EQ(b.alloc_id(), id);
  EXPECT_EQ(a.alloc_id(), 0u);  // NOLINT(bugprone-use-after-move): moved-from is defined empty
  EXPECT_EQ(device.live_allocations(), 1u);
  b = gpu::DeviceBuffer();  // releases
  EXPECT_EQ(device.live_allocations(), 0u);
  EXPECT_NO_THROW(device.audit());
}

// ---------------------------------------------------------------------------
// simmpi message audit (lost / double-delivered subproblems)
// ---------------------------------------------------------------------------

TEST(MessageAudit, DroppedSubproblemFires) {
  check::MessageAuditor auditor;
  const std::uint64_t id = auditor.shipped(/*dest=*/1);
  auditor.delivered(id, 1);
  // The worker never reports back: the subproblem is lost in shutdown.
  EXPECT_EQ(auditor.in_flight(), 1);
  expect_internal([&] { auditor.finalize(); });
}

TEST(MessageAudit, DoubleDeliveryFires) {
  check::MessageAuditor auditor;
  const std::uint64_t id = auditor.shipped(1);
  auditor.delivered(id, 1);
  auditor.delivered(id, 2);  // the same assignment evaluated twice
  auditor.completed(id);
  EXPECT_EQ(auditor.anomalies(), 1);
  expect_internal([&] { auditor.finalize(); });
}

TEST(MessageAudit, CleanProtocolPasses) {
  check::MessageAuditor auditor;
  for (int i = 0; i < 5; ++i) {
    const std::uint64_t id = auditor.shipped(1 + i % 2);
    auditor.delivered(id, 1 + i % 2);
    auditor.completed(id);
  }
  EXPECT_EQ(auditor.in_flight(), 0);
  EXPECT_EQ(auditor.anomalies(), 0);
  EXPECT_NO_THROW(auditor.finalize());
  EXPECT_EQ(auditor.total_shipped(), 5u);
}

TEST(MessageAudit, RankFailurePropagatesInsteadOfDeadlocking) {
  // A checked-mode invariant failure inside one rank must abort the whole
  // run: peers blocked in recv() get woken and run_ranks rethrows the
  // original error (before abort propagation this scenario hung forever).
  try {
    parallel::run_ranks(2, [](parallel::Comm& comm) {
      if (comm.rank() == 0) {
        throw Error(ErrorCode::kInternal, "seeded rank failure");
      }
      comm.recv();  // waits for a message rank 0 will never send
    });
    FAIL() << "expected the seeded rank failure to propagate";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInternal) << e.what();
    EXPECT_NE(std::string(e.what()).find("seeded rank failure"), std::string::npos) << e.what();
  }
}

TEST(MessageAudit, SupervisedSolveShipsEveryNodeExactlyOnce) {
  // End-to-end: a supervised run with the auditor wired through the real
  // protocol must finish (checked builds would throw on any lost node).
  mip::MipModel m;
  m.lp().set_sense(lp::Sense::Maximize);
  const int x = m.add_int_col(3.0, 0, 4), y = m.add_int_col(2.0, 0, 4);
  m.lp().add_row_le({{x, 2.0}, {y, 1.0}}, 7.0);
  m.lp().add_row_le({{x, 1.0}, {y, 3.0}}, 9.0);
  parallel::SupervisorOptions opts;
  opts.workers = 2;
  opts.ramp_up_nodes = 2;
  opts.worker_node_budget = 4;
  const parallel::SupervisorResult r = parallel::solve_supervised(m, opts);
  EXPECT_EQ(r.result.status, mip::MipStatus::Optimal);
}

// ---------------------------------------------------------------------------
// Snapshot deserialize hardening (kIoError with line context)
// ---------------------------------------------------------------------------

void expect_io_error(const std::string& text, const std::string& fragment) {
  try {
    static_cast<void>(mip::ConsistentSnapshot::from_string(text));
    FAIL() << "expected Error(kIoError) for: " << text;
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIoError) << e.what();
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("line"), std::string::npos) << e.what();
  }
}

TEST(SnapshotHardening, MalformedInputThrowsIoErrorWithLineContext) {
  expect_io_error("garbage", "bad magic");
  expect_io_error("gpumip-snapshot-v1\n1 2\n", "truncated");
  expect_io_error("gpumip-snapshot-v1\nnot-a-number 0\n0\n0\n", "expected a number");
  expect_io_error("gpumip-snapshot-v1\n1 0\n0\n999999999999\n", "sanity limit");
  // Crossed bounds inside frontier node 0: lb = {5}, ub = {3}.
  expect_io_error("gpumip-snapshot-v1\n1 0\n0\n1\n0 1\n1 5\n1 3\n", "crossed bounds");
  // Frontier nodes whose bound vectors disagree in length.
  expect_io_error("gpumip-snapshot-v1\n1 0\n0\n2\n0 1\n1 0\n1 1\n0 1\n2 0 0\n2 1 1\n",
                  "length differs");
}

TEST(SnapshotHardening, RoundTripStillWorks) {
  mip::ConsistentSnapshot snap;
  snap.incumbent_objective = -3.5;
  snap.incumbent_x = {1.0, 2.0};
  snap.nodes_solved_so_far = 42;
  snap.frontier.push_back({{0.0, -1e300}, {1.0, 1e300}, -7.25, 3});
  snap.frontier.push_back({{0.5, 0.0}, {2.0, 4.0}, -6.0, 4});
  const mip::ConsistentSnapshot back = mip::ConsistentSnapshot::from_string(snap.to_string());
  EXPECT_DOUBLE_EQ(back.incumbent_objective, -3.5);
  EXPECT_EQ(back.nodes_solved_so_far, 42);
  ASSERT_EQ(back.frontier.size(), 2u);
  EXPECT_DOUBLE_EQ(back.frontier[0].bound, -7.25);
  EXPECT_EQ(back.frontier[1].depth, 4);
  EXPECT_NO_THROW(check::check_snapshot(back));
}

}  // namespace
}  // namespace gpumip
