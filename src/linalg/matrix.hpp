// Dense column-major matrix and vector types.
//
// Column-major layout matches the access pattern of the simplex basis
// operations (FTRAN touches one column at a time) and of the BLAS-style
// kernels the device model prices.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace gpumip::linalg {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols, double fill = 0.0);

  int rows() const noexcept { return rows_; }
  int cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  double& operator()(int r, int c) {
    return data_[static_cast<std::size_t>(c) * rows_ + r];
  }
  double operator()(int r, int c) const {
    return data_[static_cast<std::size_t>(c) * rows_ + r];
  }

  double* data() noexcept { return data_.data(); }
  const double* data() const noexcept { return data_.data(); }

  /// Contiguous view of column c.
  std::span<double> col(int c) {
    return {data_.data() + static_cast<std::size_t>(c) * rows_, static_cast<std::size_t>(rows_)};
  }
  std::span<const double> col(int c) const {
    return {data_.data() + static_cast<std::size_t>(c) * rows_, static_cast<std::size_t>(rows_)};
  }

  void set_col(int c, std::span<const double> values);

  static Matrix identity(int n);
  static Matrix random(int rows, int cols, Rng& rng, double lo = -1.0, double hi = 1.0);
  /// Random symmetric positive definite (A = M Mᵀ + n·I).
  static Matrix random_spd(int n, Rng& rng);

  Matrix transposed() const;

  bool same_shape(const Matrix& other) const noexcept {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

/// Max |a_ij - b_ij|; shapes must match.
double max_abs_diff(const Matrix& a, const Matrix& b);
double max_abs_diff(const Vector& a, const Vector& b);

}  // namespace gpumip::linalg
