#include "mip/solver.hpp"

#include <cmath>

#include "check/invariants.hpp"
#include "gpu/arena.hpp"
#include "gpu/device.hpp"
#include "lp/op_stats.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "support/assert.hpp"
#include "support/log.hpp"

namespace gpumip::mip {

const char* mip_status_name(MipStatus status) noexcept {
  switch (status) {
    case MipStatus::Optimal: return "Optimal";
    case MipStatus::Infeasible: return "Infeasible";
    case MipStatus::Unbounded: return "Unbounded";
    case MipStatus::NodeLimit: return "NodeLimit";
  }
  return "Unknown";
}

double MipResult::gap() const {
  if (!has_solution) return 1e300;
  const double denom = 1.0 + std::fabs(objective);
  return std::fabs(objective - bound) / denom;
}

BnbSolver::BnbSolver(const MipModel& model, MipOptions options)
    : model_(model), options_(std::move(options)) {
  model_.validate();
}

BnbSolver::~BnbSolver() = default;

const NodePool& BnbSolver::pool() const {
  check_arg(pool_ != nullptr, "pool() before solve()");
  return *pool_;
}

void BnbSolver::root_cut_loop() {
  // Cut-and-branch: strengthen the root formulation, then branch on the
  // fixed matrix (the per-node cut round-trip costs are studied separately
  // in experiment E4).
  CutPool pool;
  for (int round = 0; round < options_.cut_rounds; ++round) {
    // Each round is a traced span: its duration IS the device→host→device
    // round-trip latency the paper's C4 tension is about (gpumip-trace
    // aggregates these into the cut-latency report).
    GPUMIP_TRACE_SCOPE("gpumip.mip.cuts.round", round);
    form_ = std::make_unique<lp::StandardForm>(lp::build_standard_form(model_.lp()));
    lp_solver_ = std::make_unique<lp::SimplexSolver>(*form_, options_.lp);
    lp::LpResult root = lp_solver_->solve_default();
    stats_.total_ops.add(root.ops);
    stats_.lp_iterations += root.iterations;
    if (root.status != lp::LpStatus::Optimal || model_.is_integral(root.x, options_.int_tol)) {
      return;
    }

    std::vector<Cut> cuts = gomory_cuts(model_, *form_, root, options_.cuts);
    std::vector<Cut> covers = cover_cuts(model_, root.x, options_.cuts);
    cuts.insert(cuts.end(), covers.begin(), covers.end());
    int added = 0;
    std::uint64_t cut_payload = 0;  // bytes a real GPU solver would upload
    for (const Cut& cut : cuts) {
      if (!pool.add(cut)) continue;
      model_.lp().add_row_range(cut.terms, cut.lb, cut.ub, "cut");
      ++added;
      cut_payload += cut.terms.size() * (sizeof(int) + sizeof(double)) + 2 * sizeof(double);
    }
    if (added == 0) {
      return;
    }
    stats_.cuts_added += added;
    stats_.cut_rounds_used = round + 1;
    // Paper C4: one separation round = download the relaxation solution,
    // upload the surviving cut rows.
    GPUMIP_OBS_COUNT("gpumip.mip.cuts.roundtrips");
    GPUMIP_OBS_ADD("gpumip.mip.cuts.generated", static_cast<std::uint64_t>(added));
    GPUMIP_OBS_ADD("gpumip.mip.cuts.bytes_d2h",
                   static_cast<std::uint64_t>(root.x.size() * sizeof(double)));
    GPUMIP_OBS_ADD("gpumip.mip.cuts.bytes_h2d", cut_payload);
  }
  // Rebuild once more so the form includes the last round's cuts.
  form_ = std::make_unique<lp::StandardForm>(lp::build_standard_form(model_.lp()));
  lp_solver_ = std::make_unique<lp::SimplexSolver>(*form_, options_.lp);
}

MipResult BnbSolver::solve() { return run(nullptr); }

MipResult BnbSolver::solve_from(const ConsistentSnapshot& snapshot) { return run(&snapshot); }

ConsistentSnapshot BnbSolver::capture_snapshot() const {
  check_arg(pool_ != nullptr, "capture_snapshot before solve()");
  ConsistentSnapshot snap;
  snap.incumbent_objective = incumbent_obj_;
  snap.incumbent_x = incumbent_x_;
  snap.nodes_solved_so_far = stats_.nodes_evaluated;
  for (int id : pool_->active_ids()) {
    const BnbNode& n = pool_->node(id);
    snap.frontier.push_back({n.lb, n.ub, n.bound, n.depth});
  }
  GPUMIP_VALIDATE(check::check_snapshot(snap, form_.get()));
  return snap;
}

MipResult BnbSolver::run(const ConsistentSnapshot* snapshot) {
  GPUMIP_OBS_SPAN("gpumip.mip.solve");
  MipResult result;
  trace_.clear();
  stats_ = MipStats{};
  incumbent_obj_ = options_.initial_cutoff;  // external bound, no solution yet
  incumbent_x_.clear();

  if (options_.enable_cuts && snapshot == nullptr) {
    root_cut_loop();
  }
  if (form_ == nullptr) {
    form_ = std::make_unique<lp::StandardForm>(lp::build_standard_form(model_.lp()));
    lp_solver_ = std::make_unique<lp::SimplexSolver>(*form_, options_.lp);
  }
  // The alternative relaxation backends work on the same (cut-strengthened)
  // form. Root cut separation itself stays on the simplex path: the GMI
  // separator needs a basis, which the basis-free methods cannot supply.
  ipm_solver_ = std::make_unique<lp::InteriorPointSolver>(*form_, options_.ipm);
  pdhg_solver_ = std::make_unique<lp::PdhgSolver>(*form_, options_.pdhg);
  pool_ = std::make_unique<NodePool>(options_.node_selection, options_.locality_slack);
  pseudocosts_.init(form_->num_vars, form_->c);


  if (snapshot != nullptr) {
    if (snapshot->has_incumbent()) {
      incumbent_obj_ = snapshot->incumbent_objective;
      incumbent_x_ = snapshot->incumbent_x;
    }
    for (const SnapshotNode& sn : snapshot->frontier) {
      check_arg(static_cast<int>(sn.lb.size()) == form_->num_vars,
                "snapshot does not match this model's standard form");
      BnbNode node;
      node.parent = -1;
      node.depth = sn.depth;
      node.bound = sn.bound;
      node.lb = sn.lb;
      node.ub = sn.ub;
      pool_->push(std::move(node));
    }
  } else {
    BnbNode root;
    root.parent = -1;
    root.depth = 0;
    root.bound = -1e300;
    root.lb = form_->lb;
    root.ub = form_->ub;
    pool_->push(std::move(root));
  }

  auto try_incumbent = [&](double obj, std::span<const double> x_struct) {
    if (obj < incumbent_obj_ - 1e-12) {
      incumbent_obj_ = obj;
      incumbent_x_.assign(x_struct.begin(), x_struct.end());
      pool_->prune_worse_than(incumbent_obj_ - 1e-9);
      GPUMIP_OBS_COUNT("gpumip.mip.incumbent.updates");
      return true;
    }
    return false;
  };

  int last_evaluated = -1;
  bool hit_node_limit = false;

  long last_snapshot_at = 0;
  while (!pool_->active_empty()) {
    if (stats_.nodes_evaluated >= options_.max_nodes) {
      hit_node_limit = true;
      break;
    }
    // Consistent snapshot point: between node evaluations the active set is
    // exactly the frontier — no node is in flight (paper section 2.1). It
    // must be taken BEFORE popping: a popped-but-unbranched node would be
    // lost, which is precisely the in-flight hazard the paper describes.
    if (options_.snapshot_interval > 0 && options_.on_snapshot &&
        stats_.nodes_evaluated - last_snapshot_at >= options_.snapshot_interval) {
      last_snapshot_at = stats_.nodes_evaluated;
      GPUMIP_VALIDATE(check::check_tree(*pool_));
      options_.on_snapshot(capture_snapshot());
    }
    // Gap-based stop.
    if (incumbent_obj_ < 1e299) {
      const double best_bound = pool_->best_active_bound();
      if ((incumbent_obj_ - best_bound) / (1.0 + std::fabs(incumbent_obj_)) <=
          options_.gap_tol) {
        pool_->prune_worse_than(-1e300 + 1.0);  // everything left is within gap
        break;
      }
    }
    const int id = pool_->pop(last_evaluated, incumbent_obj_);
    if (id < 0) break;
    BnbNode& node = pool_->node(id);

    // Bound-based prune without an LP solve.
    if (node.bound >= incumbent_obj_ - 1e-9) {
      pool_->set_state(id, NodeState::PrunedLeaf);
      GPUMIP_TRACE_INSTANT("gpumip.mip.node.pruned", id);
      continue;
    }

    // Evaluate: the three-way method policy of docs/METHODS.md picks the
    // relaxation backend per node (options_.lp_method forces one;
    // GPUMIP_LP_METHOD overrides both).
    lp::MethodContext method_ctx;
    method_ctx.warm_basis = !node.warm_basis.empty();
    method_ctx.warm_iterates = !node.warm_x.empty() || !node.warm_y.empty();
    method_ctx.batch_size = 1;
    method_ctx.tol = options_.pdhg.tol;
    method_ctx.forced = options_.lp_method;
    const lp::LpMethod method =
        lp::choose_method(form_->a_rows, method_ctx, options_.method_choice);
    // Device-residency modeling (ROADMAP item 4): charge this node's
    // relaxation footprint before solving. With an arena the reset+allot
    // pair reuses the warm slab (zero Device::alloc calls in steady
    // state); without one every node pays a real alloc/free round trip —
    // the difference the e8 bench and gpumip.gpu.alloc.calls witness.
    gpu::DeviceBuffer node_residency;
    if (options_.relax_device != nullptr) {
      const std::uint64_t footprint =
          method == lp::LpMethod::Pdhg
              ? lp::pdhg_lp_device_bytes(form_->num_rows, form_->num_vars,
                                         static_cast<long>(form_->a_rows.nnz()))
              : lp::dense_lp_device_bytes(form_->num_rows, form_->num_vars);
      if (options_.relax_arena != nullptr) {
        options_.relax_arena->reset();
        (void)options_.relax_arena->allot(static_cast<std::size_t>(footprint));
      } else {
        // gpumip-lint: hot-alloc(naive per-node device residency is the modeled baseline the arena path is measured against)
        node_residency =
            options_.relax_device->alloc(static_cast<std::size_t>(footprint), "node.lp");
      }
    }
    lp::LpResult lp_result;
    switch (method) {
      case lp::LpMethod::Simplex:
        lp_result = node.warm_basis.empty()
                        ? lp_solver_->solve(node.lb, node.ub, nullptr)
                        : lp_solver_->resolve_dual(node.lb, node.ub, node.warm_basis);
        break;
      case lp::LpMethod::InteriorPoint:
        lp_result = ipm_solver_->solve(node.lb, node.ub);
        break;
      case lp::LpMethod::Pdhg: {
        const lp::PdhgWarmStart warm{node.warm_x, node.warm_y};
        lp_result = pdhg_solver_->solve(node.lb, node.ub,
                                        method_ctx.warm_iterates ? &warm : nullptr);
        break;
      }
    }
    // First-order / interior-point bounds are tol-approximate, not
    // vertex-exact: pad every pruning comparison so an approximate bound
    // can never cut off the true optimum (docs/METHODS.md, accuracy
    // contracts).
    const double bound_pad =
        method == lp::LpMethod::Simplex
            ? 0.0
            : (method == lp::LpMethod::Pdhg ? options_.pdhg.tol : options_.ipm.tol) *
                  (1.0 + std::fabs(lp_result.objective));

    NodeTrace tr;
    tr.node_id = id;
    tr.parent = node.parent;
    tr.hot = node.parent >= 0 && node.parent == last_evaluated;
    tr.lp_status = lp_result.status;
    tr.ops = lp_result.ops;
    trace_.push_back(tr);
    if (tr.hot) {
      ++stats_.hot_nodes;
      GPUMIP_OBS_COUNT("gpumip.mip.nodes.reuse_hits");
    }
    stats_.total_ops.add(lp_result.ops);
    stats_.lp_iterations += lp_result.iterations;
    ++stats_.nodes_evaluated;
    GPUMIP_OBS_COUNT("gpumip.mip.nodes.evaluated");
    GPUMIP_TRACE_INSTANT("gpumip.mip.node.evaluated", id);
    last_evaluated = id;
    node.lp_objective = lp_result.objective;

    if (lp_result.status == lp::LpStatus::Infeasible) {
      pool_->set_state(id, NodeState::InfeasibleLeaf);
      continue;
    }
    if (lp_result.status == lp::LpStatus::Unbounded) {
      result.status = MipStatus::Unbounded;
      return result;
    }
    if (lp_result.status != lp::LpStatus::Optimal) {
      // Numerical trouble / iteration limit: treat conservatively as a leaf
      // we cannot prune by bound (keeps correctness on the safe side: we
      // only lose optimality certification if this ever triggers).
      GPUMIP_LOG(Warn) << "node " << id << " LP ended " << lp::lp_status_name(lp_result.status);
      pool_->set_state(id, NodeState::InfeasibleLeaf);
      continue;
    }

    // Pseudocost bookkeeping: this node is a child of `parent` through
    // branch_var; record the observed degradation.
    if (node.parent >= 0 && node.branch_var >= 0) {
      const BnbNode& parent = pool_->node(node.parent);
      const double delta = lp_result.objective - parent.lp_objective;
      // Fractionality of the parent's LP value on the branch variable is
      // not stored per node; 0.5 is the standard stand-in.
      pseudocosts_.update(node.branch_var, node.branch_up, delta, 0.5);
    }

    if (lp_result.objective - bound_pad >= incumbent_obj_ - 1e-9) {
      pool_->set_state(id, NodeState::PrunedLeaf);
      GPUMIP_TRACE_INSTANT("gpumip.mip.node.pruned", id);
      continue;
    }

    if (model_.is_integral(lp_result.x, options_.int_tol)) {
      pool_->set_state(id, NodeState::FeasibleLeaf);
      try_incumbent(lp_result.objective,
                    std::span<const double>(lp_result.x.data(),
                                            static_cast<std::size_t>(model_.num_cols())));
      continue;
    }

    // Heuristics at the root.
    if (options_.enable_heuristics && node.parent < 0) {
      HeuristicResult h = rounding_heuristic(model_, *form_, lp_result.x, options_.int_tol);
      if (!h.found) {
        h = diving_heuristic(model_, *form_, *lp_solver_, lp_result, 2 * model_.num_cols() + 10,
                             options_.int_tol);
      }
      if (h.found && try_incumbent(h.objective, h.x)) {
        ++stats_.heuristic_incumbents;
      }
    }
    if (node.parent < 0) stats_.root_bound = lp_result.objective;

    // Branch. Strong branching probes need a basis to dual-resolve from;
    // basis-free methods fall back to the score-only rules inside
    // select_branch_var.
    std::function<double(int, bool)> strong_probe;
    if (options_.branching == BranchRule::Strong && !lp_result.basis.empty()) {
      strong_probe = [&](int var, bool up) {
        linalg::Vector lb2 = node.lb, ub2 = node.ub;
        const double v = lp_result.x[static_cast<std::size_t>(var)];
        if (up) {
          lb2[static_cast<std::size_t>(var)] = std::ceil(v);
        } else {
          ub2[static_cast<std::size_t>(var)] = std::floor(v);
        }
        lp::SimplexOptions probe_opts = options_.lp;
        probe_opts.max_iterations = 50;
        lp::SimplexSolver probe(*form_, probe_opts);
        lp::LpResult r = probe.resolve_dual(lb2, ub2, lp_result.basis);
        stats_.total_ops.add(r.ops);
        if (r.status == lp::LpStatus::Infeasible) return 1e30;
        if (r.status != lp::LpStatus::Optimal && r.status != lp::LpStatus::IterationLimit) {
          return 0.0;
        }
        return std::max(0.0, r.objective - lp_result.objective);
      };
    }
    const int var = select_branch_var(options_.branching, lp_result.x, model_.integer_flags(),
                                      options_.int_tol, &pseudocosts_, strong_probe);
    check_internal(var >= 0, "no fractional variable in a non-integral node");
    const double value = lp_result.x[static_cast<std::size_t>(var)];

    BnbNode down;
    down.parent = id;
    down.depth = node.depth + 1;
    down.branch_var = var;
    down.branch_up = false;
    down.bound = lp_result.objective - bound_pad;
    down.lb = node.lb;
    down.ub = node.ub;
    down.ub[static_cast<std::size_t>(var)] = std::floor(value);
    down.warm_basis = lp_result.basis;
    if (method == lp::LpMethod::Pdhg) {
      // Basis-free warm-start currency: children restart PDHG from the
      // parent's primal/dual iterates (projected into their bounds).
      down.warm_x = lp_result.x;
      down.warm_y = lp_result.duals;
    }

    BnbNode up = down;
    up.branch_up = true;
    up.ub = node.ub;
    up.lb = node.lb;
    up.lb[static_cast<std::size_t>(var)] = std::ceil(value);

    pool_->set_state(id, NodeState::Branched);
    GPUMIP_TRACE_INSTANT("gpumip.mip.node.branched", id);
    if (down.lb[static_cast<std::size_t>(var)] <= down.ub[static_cast<std::size_t>(var)] + 1e-9) {
      pool_->push(std::move(down));
    }
    if (up.lb[static_cast<std::size_t>(var)] <= up.ub[static_cast<std::size_t>(var)] + 1e-9) {
      pool_->push(std::move(up));
    }
  }

  // Assemble the result.
  GPUMIP_VALIDATE(check::check_tree(*pool_));
  stats_.anatomy = pool_->anatomy();
#ifdef GPUMIP_OBS_ENABLED
  // Paper C5: fraction of evaluated nodes whose parent matrix was still
  // device-resident. Cumulative across all solves in this process.
  {
    const std::uint64_t hits = ::gpumip::obs::counter("gpumip.mip.nodes.reuse_hits").value();
    const std::uint64_t evals = ::gpumip::obs::counter("gpumip.mip.nodes.evaluated").value();
    GPUMIP_OBS_GAUGE_SET("gpumip.mip.reuse.hit_rate",
                         evals == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(evals));
  }
#endif
  result.stats = stats_;
  result.has_solution = !incumbent_x_.empty();
  if (hit_node_limit) {
    result.status = MipStatus::NodeLimit;
  } else {
    result.status = result.has_solution ? MipStatus::Optimal : MipStatus::Infeasible;
  }
  const double best_bound =
      pool_->active_empty() ? incumbent_obj_ : std::min(pool_->best_active_bound(), incumbent_obj_);
  result.bound = form_->user_objective(best_bound);
  if (result.has_solution) {
    result.objective = form_->user_objective(incumbent_obj_);
    result.x = incumbent_x_;
  }
  return result;
}

MipResult solve_by_enumeration(const MipModel& model, double int_tol) {
  model.validate();
  MipResult result;
  const lp::StandardForm form = lp::build_standard_form(model.lp());
  // Enumerate assignments of integer variables within their bounds.
  std::vector<int> int_vars;
  for (int j = 0; j < model.num_cols(); ++j) {
    if (model.is_integer(j)) int_vars.push_back(j);
  }
  for (int j : int_vars) {
    check_arg(std::isfinite(model.lp().col(j).lb) && std::isfinite(model.lp().col(j).ub),
              "enumeration requires bounded integer variables");
    check_arg(model.lp().col(j).ub - model.lp().col(j).lb <= 64,
              "enumeration domain too large");
  }
  double best = 1e300;
  linalg::Vector best_x;
  lp::SimplexSolver solver(form);

  std::function<void(std::size_t, linalg::Vector&, linalg::Vector&)> recurse =
      [&](std::size_t idx, linalg::Vector& lb, linalg::Vector& ub) {
        if (idx == int_vars.size()) {
          lp::LpResult r = solver.solve(lb, ub, nullptr);
          if (r.status == lp::LpStatus::Optimal && r.objective < best - 1e-12) {
            best = r.objective;
            best_x.assign(r.x.begin(), r.x.begin() + model.num_cols());
          }
          return;
        }
        const int j = int_vars[idx];
        const std::size_t k = static_cast<std::size_t>(j);
        const double lo = std::ceil(model.lp().col(j).lb - int_tol);
        const double hi = std::floor(model.lp().col(j).ub + int_tol);
        const double save_lb = lb[k], save_ub = ub[k];
        for (double v = lo; v <= hi + 1e-9; v += 1.0) {
          lb[k] = ub[k] = v;
          recurse(idx + 1, lb, ub);
        }
        lb[k] = save_lb;
        ub[k] = save_ub;
      };
  linalg::Vector lb = form.lb, ub = form.ub;
  recurse(0, lb, ub);

  result.has_solution = best < 1e299;
  result.status = result.has_solution ? MipStatus::Optimal : MipStatus::Infeasible;
  if (result.has_solution) {
    result.objective = form.user_objective(best);
    result.bound = result.objective;
    result.x = best_x;
  }
  return result;
}

}  // namespace gpumip::mip
