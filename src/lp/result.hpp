// LP solve outcome types.
#pragma once

#include <string>

#include "linalg/matrix.hpp"
#include "lp/basis.hpp"
#include "lp/op_stats.hpp"

namespace gpumip::lp {

enum class LpStatus {
  Optimal,
  Infeasible,
  Unbounded,
  IterationLimit,
  NumericalTrouble,
};

const char* lp_status_name(LpStatus status) noexcept;

struct LpResult {
  LpStatus status = LpStatus::NumericalTrouble;
  double objective = 0.0;          ///< minimization objective (standard form)
  linalg::Vector x;                ///< values for all standard-form variables
  linalg::Vector duals;            ///< row duals y
  linalg::Vector reduced_costs;    ///< per-variable reduced costs
  Basis basis;                     ///< final basis (valid when Optimal)
  long iterations = 0;
  LpOpStats ops;                   ///< linear-algebra recipe of this solve
};

}  // namespace gpumip::lp
