// F1 — Figure 1 reproduction: the branch-and-bound solution tree.
//
// The paper's only figure shows a B&B tree whose nodes end up tagged
// branched / feasible / infeasible / pruned, with no node left active at
// completion. This bench solves three instance families, prints the tree
// census (and the rendered tree for a small instance), and verifies the
// figure's invariant: total = branched + classified leaves, active = 0.
#include "bench/common.hpp"
#include "mip/solver.hpp"
#include "problems/generators.hpp"

namespace {

using namespace gpumip;

mip::MipOptions plain_options() {
  mip::MipOptions opts;
  opts.enable_cuts = false;       // keep the raw tree shape visible
  opts.enable_heuristics = false;
  return opts;
}

void census(const std::string& name, const mip::MipModel& model) {
  mip::BnbSolver solver(model, plain_options());
  mip::MipResult r = solver.solve();
  const mip::TreeAnatomy& a = r.stats.anatomy;
  bench::row("  %-16s %8s obj=%-10.3f nodes=%-5ld branched=%-5ld feas=%-4ld infeas=%-4ld "
             "pruned=%-4ld peak-frontier=%-4ld depth=%-3d consistent=%s",
             name.c_str(), mip::mip_status_name(r.status), r.objective, a.total_nodes,
             a.branched, a.feasible_leaves, a.infeasible_leaves, a.pruned_leaves,
             a.active_peak, a.max_depth,
             a.total_nodes == a.branched + a.leaves() ? "yes" : "NO");
}

void print_experiment() {
  bench::title("F1", "solution-tree anatomy (paper Figure 1)");
  Rng rng(2021);
  census("knapsack-18", problems::knapsack(18, rng));
  problems::RandomMipConfig cfg;
  cfg.rows = 10;
  cfg.cols = 16;
  cfg.bound = 3.0;
  census("random-mip", problems::random_mip(cfg, rng));
  census("set-cover", problems::set_cover(14, 10, rng));
  census("gap-3x6", problems::generalized_assignment(3, 6, rng));

  // Rendered tree of a tiny instance (the figure itself).
  mip::MipModel m;
  m.lp().set_sense(lp::Sense::Maximize);
  const int x = m.add_int_col(1.0, 0, 10), y = m.add_int_col(1.0, 0, 10);
  m.lp().add_row_le({{x, 2.0}, {y, 1.0}}, 5.0);
  m.lp().add_row_le({{x, 1.0}, {y, 3.0}}, 7.0);
  mip::BnbSolver solver(m, plain_options());
  static_cast<void>(solver.solve());
  bench::note("rendered tree (max x+y st 2x+y<=5, x+3y<=7):");
  std::printf("%s", solver.pool().render_ascii().c_str());
}

void BM_solve_random_mip(benchmark::State& state) {
  Rng rng(static_cast<std::uint64_t>(state.range(0)));
  problems::RandomMipConfig cfg;
  cfg.rows = 10;
  cfg.cols = static_cast<int>(state.range(0));
  cfg.bound = 3.0;
  mip::MipModel model = problems::random_mip(cfg, rng);
  long nodes = 0;
  for (auto _ : state) {
    mip::BnbSolver solver(model, plain_options());
    mip::MipResult r = solver.solve();
    nodes = r.stats.nodes_evaluated;
    benchmark::DoNotOptimize(r.objective);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_solve_random_mip)->Arg(12)->Arg(16)->Arg(20)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  return gpumip::bench::run_benchmarks(argc, argv);
}
