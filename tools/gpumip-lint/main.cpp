// gpumip-lint CLI — scripts/check.sh gate 7 entry point.
//
//   gpumip-lint --self-test
//   gpumip-lint [--metrics-doc docs/METRICS.md]
//               [--tracing-doc docs/TRACING.md]
//               [--suppressions tools/gpumip-lint/suppressions.txt]
//               [--hotpaths tools/gpumip-lint/hotpaths.txt]
//               [--header-check --include-dir src --compiler c++ --scratch DIR]
//               [--jobs N]
//               file.cpp file.hpp ...
//
// Exit status: 0 clean, 1 unsuppressed findings (or failed self-test),
// 2 usage/environment error. Findings print as `file:line: [Rn] message`,
// one per line, so editors and CI logs can jump straight to the site.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

void print_findings(const std::vector<gpumip::lint::Finding>& findings) {
  for (const gpumip::lint::Finding& f : findings) {
    std::cerr << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c) & 0xFF);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Machine-readable report, schema `gpumip.lint.v1`: every finding
/// (including suppression-waived ones, flagged `"waived": true`) plus the
/// per-phase wall times. Stable field set; consumers must ignore unknown
/// fields.
void print_json(std::ostream& out, const std::vector<gpumip::lint::Finding>& findings,
                const std::vector<gpumip::lint::Finding>& waived,
                const gpumip::lint::RunStats& stats) {
  out << "{\n  \"schema\": \"gpumip.lint.v1\",\n"
      << "  \"clean\": " << (findings.empty() ? "true" : "false") << ",\n"
      << "  \"findings\": [";
  bool first = true;
  auto emit = [&](const gpumip::lint::Finding& f, bool is_waived) {
    out << (first ? "" : ",") << "\n    {\"rule\": \"" << json_escape(f.rule)
        << "\", \"file\": \"" << json_escape(f.file) << "\", \"line\": " << f.line
        << ", \"waived\": " << (is_waived ? "true" : "false") << ", \"message\": \""
        << json_escape(f.message) << "\"}";
    first = false;
  };
  for (const auto& f : findings) emit(f, false);
  for (const auto& f : waived) emit(f, true);
  // The scan phase reports its parallelism: scan_serial_ms is the sum of
  // per-file scan times (what one thread would have paid), so
  // scan_serial_ms / scan_ms is the realized speedup at scan_jobs threads.
  out << (first ? "" : "\n  ") << "],\n"
      << "  \"stats\": {\"files\": " << stats.files << ", \"functions\": " << stats.functions
      << ", \"scan_ms\": " << stats.scan_ms << ", \"scan_serial_ms\": " << stats.scan_serial_ms
      << ", \"scan_jobs\": " << stats.scan_jobs << ", \"rules_ms\": " << stats.rules_ms
      << ", \"index_ms\": " << stats.index_ms << ", \"hotpath_ms\": " << stats.hotpath_ms
      << ", \"lifetime_ms\": " << stats.lifetime_ms << ", \"protocol_ms\": " << stats.protocol_ms
      << ", \"determinism_ms\": " << stats.determinism_ms << "}\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gpumip::lint;

  std::string metrics_doc_path;
  std::string tracing_doc_path;
  std::string suppressions_path;
  std::string hotpaths_path;
  std::string include_dir;
  std::string compiler = "c++";
  std::string scratch = "build-lint-scratch";
  std::size_t jobs = 0;  // 0 = hardware concurrency (capped in the engine)
  bool header_check = false;
  bool self_test = false;
  std::string format = "text";
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "gpumip-lint: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--metrics-doc") {
      metrics_doc_path = value("--metrics-doc");
    } else if (arg == "--tracing-doc") {
      tracing_doc_path = value("--tracing-doc");
    } else if (arg == "--suppressions") {
      suppressions_path = value("--suppressions");
    } else if (arg == "--hotpaths") {
      hotpaths_path = value("--hotpaths");
    } else if (arg == "--jobs") {
      jobs = static_cast<std::size_t>(std::strtoul(value("--jobs").c_str(), nullptr, 10));
    } else if (arg == "--header-check") {
      header_check = true;
    } else if (arg == "--include-dir") {
      include_dir = value("--include-dir");
    } else if (arg == "--compiler") {
      compiler = value("--compiler");
    } else if (arg == "--scratch") {
      scratch = value("--scratch");
    } else if (arg == "--format") {
      format = value("--format");
      if (format != "text" && format != "json") {
        std::cerr << "gpumip-lint: --format must be 'text' or 'json'\n";
        return 2;
      }
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json") {
        std::cerr << "gpumip-lint: --format must be 'text' or 'json'\n";
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: gpumip-lint [--self-test] [--metrics-doc FILE] "
                   "[--tracing-doc FILE] [--suppressions FILE]\n"
                   "                   [--hotpaths FILE] [--jobs N] [--format text|json]\n"
                   "                   [--header-check --include-dir DIR [--compiler CXX] "
                   "[--scratch DIR]]\n"
                   "                   files...\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "gpumip-lint: unknown option " << arg << "\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  if (self_test) {
    std::cout << "==> gpumip-lint self-test (seeded-violation fixtures)\n";
    return run_self_test(std::cout) ? 0 : 1;
  }

  Options options;
  options.jobs = jobs;
  if (!metrics_doc_path.empty()) {
    if (!read_file(metrics_doc_path, options.metrics_doc)) {
      std::cerr << "gpumip-lint: cannot read metrics doc " << metrics_doc_path << "\n";
      return 2;
    }
    options.have_metrics_doc = true;
  }
  if (!tracing_doc_path.empty()) {
    if (!read_file(tracing_doc_path, options.tracing_doc)) {
      std::cerr << "gpumip-lint: cannot read tracing doc " << tracing_doc_path << "\n";
      return 2;
    }
    options.have_tracing_doc = true;
  }
  if (!hotpaths_path.empty()) {
    if (!read_file(hotpaths_path, options.hotpaths)) {
      std::cerr << "gpumip-lint: cannot read hot-path manifest " << hotpaths_path << "\n";
      return 2;
    }
    options.have_hotpaths = true;
    options.hotpaths_path = hotpaths_path;
  }

  std::vector<Finding> findings;
  std::vector<Suppression> suppressions;
  if (!suppressions_path.empty()) {
    std::string text;
    if (!read_file(suppressions_path, text)) {
      std::cerr << "gpumip-lint: cannot read suppression file " << suppressions_path << "\n";
      return 2;
    }
    suppressions = parse_suppressions(text, suppressions_path, findings);
  }

  std::vector<SourceFile> files;
  std::vector<std::string> headers;  // include_dir-relative, for --header-check
  for (const std::string& path : paths) {
    SourceFile file;
    file.path = path;
    if (!read_file(path, file.content)) {
      std::cerr << "gpumip-lint: cannot read " << path << "\n";
      return 2;
    }
    if (header_check && path.size() > 4 && path.compare(path.size() - 4, 4, ".hpp") == 0) {
      std::string rel = path;
      const std::string prefix = include_dir + "/";
      if (rel.compare(0, prefix.size(), prefix) == 0) rel = rel.substr(prefix.size());
      headers.push_back(rel);
    }
    files.push_back(std::move(file));
  }
  if (files.empty()) {
    std::cerr << "gpumip-lint: no input files (see --help)\n";
    return 2;
  }

  RunStats stats;
  std::vector<Finding> waived;
  std::vector<Finding> lint_findings = run_lint(files, options, suppressions, &stats, &waived);
  findings.insert(findings.end(), lint_findings.begin(), lint_findings.end());

  if (header_check) {
    if (include_dir.empty()) {
      std::cerr << "gpumip-lint: --header-check needs --include-dir\n";
      return 2;
    }
    std::vector<Finding> header_findings =
        check_headers_standalone(headers, include_dir, compiler, scratch, jobs);
    findings.insert(findings.end(), header_findings.begin(), header_findings.end());
  }

  print_findings(findings);
  if (format == "json") {
    // Findings went to stderr above; stdout carries only the JSON document
    // so scripts can redirect it whole.
    print_json(std::cout, findings, waived, stats);
    return findings.empty() ? 0 : 1;
  }
  std::cout << "gpumip-lint: timing scan " << stats.scan_ms << "ms ("
            << stats.scan_jobs << " jobs, serial-equivalent " << stats.scan_serial_ms
            << "ms), token rules " << stats.rules_ms << "ms, index+graph " << stats.index_ms
            << "ms, hotpath " << stats.hotpath_ms << "ms, lifetime " << stats.lifetime_ms
            << "ms, protocol " << stats.protocol_ms << "ms, determinism "
            << stats.determinism_ms << "ms (" << stats.files << " files, " << stats.functions
            << " functions)\n";
  if (findings.empty()) {
    std::cout << "gpumip-lint: " << files.size() << " files clean"
              << (suppressions.empty()
                      ? std::string()
                      : " (" + std::to_string(suppressions.size()) + " justified suppressions)")
              << (header_check ? ", " + std::to_string(headers.size()) + " headers standalone"
                               : std::string())
              << "\n";
    return 0;
  }
  std::cerr << "gpumip-lint: " << findings.size() << " finding(s)\n";
  return 1;
}
