// gpumip-lint path-sensitive lifetime rules (R10-R12), powered by the CFG
// builder (cfg.hpp) and the forward dataflow engine (dataflow.hpp).
//
//  * R10 use-after-move — a local is read on some path after being passed
//    to `std::move(x)` with no intervening reassignment / redeclaration /
//    reinitializing call (`clear()`, `assign()`, ...). Guards the
//    single-owner discipline the zero-copy paths force (SimMpi::send
//    rvalue overload, ByteWriter::take() &&). Waiver: moved-ok(reason).
//  * R11 arena/buffer use-after-reset — a value derived from a
//    DeviceArena allocation (`allot`) or a device span (`span`, `as`,
//    `subspan`, `first`, `last`, `data`) is used on some path after its
//    source was invalidated by `reset()`/`release()`/`reserve()` — either
//    directly or through a call to any function the call graph proves can
//    reset (transitively). Waiver: arena-ok(reason).
//  * R12 unbalanced instrumentation spans — a raw GPUMIP_TRACE_BEGIN
//    without a matching GPUMIP_TRACE_END on some early-return / throw /
//    noreturn-call path (or an END that can run with no span open, e.g.
//    via switch fallthrough). RAII forms (obs::Span, trace::SpanGuard,
//    GPUMIP_TRACE_SCOPE) are exempt by construction. Waiver:
//    span-ok(reason).
//
// All three are may-analyses: a finding means SOME path exhibits the
// hazard. Lambda bodies are separate graphs (cfg.hpp), so a span opened in
// a function and closed in a lambda it defines is two findings, not zero.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "callgraph.hpp"
#include "cfg.hpp"
#include "index.hpp"
#include "lexer.hpp"

namespace gpumip::lint {

/// Unqualified names of functions that can (transitively, via the call
/// graph) invalidate an arena/buffer: their body contains a `.reset()` /
/// `.release()` call, or they call such a function. Exposed for tests.
std::set<std::string> collect_resetters(const std::vector<Scanned>& files,
                                        const std::vector<FunctionDecl>& functions,
                                        const CallGraph& graph);

/// Runs R10-R12 over every indexed function (and every lambda inside it as
/// its own graph), appending findings.
void check_lifetimes(const std::vector<Scanned>& files,
                     const std::vector<FunctionDecl>& functions, const CallGraph& graph,
                     const std::set<std::string>& noreturn_names,
                     std::vector<Finding>& findings);

}  // namespace gpumip::lint
