// Branch-and-bound engines for permutation flow-shop:
//
//  * solve_flowshop_cpu  — classic explicit-node DFS (the "linked list"
//    representation the IVM work contrasts against),
//  * solve_flowshop_gpu  — strategy S1, entirely-GPU: a fleet of IVMs lives
//    in device memory, each simulation step launches decode/bound/advance
//    kernels over all active IVMs, idle IVMs steal intervals on-device, and
//    the host only sees the initial upload and the final result download.
//
// Both return identical optima; the benches compare their timelines.
#pragma once

#include "gpu/device.hpp"
#include "ivm/flowshop.hpp"
#include "ivm/ivm.hpp"

namespace gpumip::ivm {

struct BnbStats {
  long nodes_bounded = 0;
  long nodes_pruned = 0;
  long leaves_evaluated = 0;
  long steals = 0;
  long kernel_waves = 0;     ///< GPU engine: lockstep kernel iterations
  double best_makespan = 0;
  std::vector<int> best_permutation;
};

struct GpuBnbOptions {
  int num_ivms = 64;         ///< IVMs resident on the device
  long max_waves = 1000000;  ///< safety valve
  bool use_initial_ub = true;
};

/// Explicit-node DFS on the host.
BnbStats solve_flowshop_cpu(const FlowshopInstance& instance, bool use_initial_ub = true);

/// IVM DFS on the host (same traversal as the GPU engine, single cursor) —
/// isolates the data-structure effect from the parallelism effect.
BnbStats solve_flowshop_ivm_host(const FlowshopInstance& instance, bool use_initial_ub = true);

/// Entirely-GPU IVM engine on the simulated device.
BnbStats solve_flowshop_gpu(const FlowshopInstance& instance, gpu::Device& device,
                            const GpuBnbOptions& options = {});

}  // namespace gpumip::ivm
