// Bump arena over simulated device memory (ROADMAP item 4: arena reuse for
// per-node device allocations).
//
// Repeated batch evaluations used to pay one Device::alloc per problem per
// call; every allocation is a ledger insert plus capacity accounting, and
// the churn shows up directly in the C5/C7 measurements. The arena amortizes
// that: it holds one or more slabs of device memory and serves sub-spans by
// bumping a cursor. reset() rewinds the cursor without returning capacity to
// the device, so the next batch reuses the same slabs with zero allocations
// in the steady state.
//
// Growth policy: allot() that does not fit appends a new slab (geometric,
// at least doubling total capacity) — existing blocks stay valid because
// old slabs are never freed while in use. reserve() with no outstanding
// blocks coalesces everything into a single exactly-sized slab first, so a
// caller that knows its total up front gets one slab and no overshoot.
// Capacity failures surface as the Device's own DeviceOutOfMemory.
//
// Metrics (docs/METRICS.md): gpumip.gpu.arena.grows / .slab_bytes count
// real device allocations; gpumip.gpu.arena.reuse_bytes counts bytes served
// from already-held capacity (the saving).
#pragma once

#include <cstddef>
#include <deque>
#include <span>
#include <string>

#include "gpu/device.hpp"

namespace gpumip::gpu {

class DeviceArena {
 public:
  /// Non-owning view of arena memory: a sub-span of one slab. Valid until
  /// the arena is reset, re-reserved, or destroyed.
  struct Block {
    DeviceBuffer* slab = nullptr;
    std::size_t offset = 0;
    std::size_t bytes = 0;

    template <typename T>
    std::span<T> as() {
      // gpumip-lint: device-context(Block::as is itself the typed wrapper: it narrows the slab's device span to this block for kernel bodies)
      return slab->as<T>().subspan(offset / sizeof(T), bytes / sizeof(T));
    }
  };

  /// Every allot is rounded up to this alignment (cache-line-style).
  static constexpr std::size_t kAlignment = 64;

  /// Bytes one allot(bytes) actually consumes of arena capacity; callers
  /// sizing a reserve() for N blocks should sum this, not the raw bytes.
  static constexpr std::size_t aligned_size(std::size_t bytes) noexcept {
    const std::size_t n = bytes == 0 ? 1 : bytes;
    return (n + kAlignment - 1) & ~(kAlignment - 1);
  }

  explicit DeviceArena(Device& device, std::string label = "arena");
  DeviceArena(const DeviceArena&) = delete;
  DeviceArena& operator=(const DeviceArena&) = delete;

  /// Ensures total capacity of at least `bytes`. Only legal with no
  /// outstanding blocks (right after construction or reset()); coalesces
  /// multiple slabs into one exactly-sized slab.
  void reserve(std::size_t bytes);

  /// Serves `bytes` of device memory (64-byte aligned), growing if needed.
  Block allot(std::size_t bytes);

  /// Rewinds the cursor; capacity is retained for the next batch. All
  /// previously returned blocks become invalid.
  void reset() noexcept;

  /// Returns all slabs to the device (the teardown audit sees no leaks).
  void release() noexcept;

  std::size_t capacity_bytes() const noexcept { return capacity_; }
  std::size_t used_bytes() const noexcept { return used_; }
  std::size_t high_water_bytes() const noexcept { return high_water_; }
  std::size_t slab_count() const noexcept { return slabs_.size(); }

 private:
  void grow(std::size_t min_bytes);

  Device* device_;
  std::string label_;
  // deque, not vector: growth must never relocate existing slabs — returned
  // Blocks hold pointers into them.
  std::deque<DeviceBuffer> slabs_;
  std::size_t cursor_slab_ = 0;   ///< slab currently being bumped
  std::size_t cursor_offset_ = 0; ///< next free byte within that slab
  std::size_t capacity_ = 0;      ///< sum of slab sizes
  std::size_t used_ = 0;          ///< bytes served since last reset
  std::size_t high_water_ = 0;    ///< max used_ over the arena's lifetime
};

}  // namespace gpumip::gpu
