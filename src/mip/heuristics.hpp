// Primal heuristics: cheap searches for good incumbents. In the hybrid
// strategy (paper section 3, strategy 3) these run on spare CPU cores while
// the GPU grinds LP relaxations.
#pragma once

#include "lp/simplex.hpp"
#include "mip/model.hpp"

namespace gpumip::mip {

struct HeuristicResult {
  bool found = false;
  linalg::Vector x;       ///< structural variable values
  double objective = 0.0; ///< min-form objective
};

/// Rounds the LP point to the nearest integers and accepts if feasible.
HeuristicResult rounding_heuristic(const MipModel& model, const lp::StandardForm& form,
                                   std::span<const double> lp_x, double int_tol = 1e-6);

/// Fractional diving: repeatedly fix the most fractional variable to its
/// nearest integer and dual-resolve; backtracks once per level on
/// infeasibility.
HeuristicResult diving_heuristic(const MipModel& model, const lp::StandardForm& form,
                                 lp::SimplexSolver& solver, const lp::LpResult& relaxation,
                                 int max_dives = 100, double int_tol = 1e-6);

/// Objective feasibility pump (simplified): alternates between rounding and
/// re-solving an LP whose objective is a blend of the true objective and
/// the L1 distance to the rounded point.
HeuristicResult feasibility_pump(const MipModel& model, int max_rounds = 15,
                                 double int_tol = 1e-6);

}  // namespace gpumip::mip
