// Concurrent solution of many small LP relaxations on one device (paper
// section 5.5, both execution structures it proposes):
//
//  * StreamMode — "multiple ranks / asynchronous launches": each problem's
//    kernel recipe is replayed on its own stream; overlap is bounded by the
//    device's concurrent-kernel slots.
//  * LockstepMode — "batch-style processing of linear algebra calls": the
//    i-th iteration of every still-active problem executes as ONE batched
//    kernel per operation type (FTRAN/BTRAN/price/update waves), MAGMA
//    style. Occupancy grows with the number of active problems; stragglers
//    keep iterating in later (smaller) waves.
//
// Numerics run on the host (SimplexSolver per problem); the device timeline
// is replayed from each solve's per-iteration structure, so results are
// exact and the timing model is consistent with the rest of the library.
#pragma once

#include <vector>

#include "gpu/arena.hpp"
#include "gpu/device.hpp"
#include "lp/pdhg.hpp"
#include "lp/simplex.hpp"

namespace gpumip::lp {

enum class BatchMode {
  Sequential,  ///< one problem at a time on stream 0 (baseline)
  Streams,     ///< round-robin across device streams
  Lockstep,    ///< batched kernel waves across active problems
};

const char* batch_mode_name(BatchMode mode) noexcept;

struct BatchedLpReport {
  std::vector<LpResult> results;   ///< per-problem results (exact)
  double sim_seconds = 0.0;        ///< simulated device makespan
  std::uint64_t kernels = 0;       ///< kernel launches issued
  long waves = 0;                  ///< Lockstep: number of kernel waves
};

/// Solves every standard form under its own bounds and replays the device
/// cost in the chosen mode. All forms must be small enough to co-reside on
/// the device (throws DeviceOutOfMemory otherwise). Device residency for
/// the batch comes from `arena` (reset on entry): callers evaluating batch
/// after batch hold one arena so the steady state performs no device
/// allocations at all (ROADMAP item 4).
[[nodiscard]] BatchedLpReport solve_batched(const std::vector<const StandardForm*>& problems,
                              gpu::Device& device, gpu::DeviceArena& arena, BatchMode mode,
                              const SimplexOptions& options = {}, int streams = 16);

/// Convenience overload owning a throwaway arena (one device allocation per
/// call instead of one per problem).
[[nodiscard]] BatchedLpReport solve_batched(const std::vector<const StandardForm*>& problems,
                              gpu::Device& device, BatchMode mode,
                              const SimplexOptions& options = {}, int streams = 16);

/// The first-order contender (Blin et al., paper claims C6/C7): every
/// instance is solved by restarted PDHG (exact host numerics, identical
/// results to sequential PdhgSolver calls), and the device timeline is
/// replayed as lockstep iteration waves. Each wave — SpMVᵀ, primal
/// update/project, SpMV, dual update across all active instances — fuses
/// into a single batched launch, because a PDHG iteration contains no
/// host-side decision (a simplex pivot does: the ratio test feeds the next
/// pivot's structure, so its waves cannot fuse). The host only syncs at the
/// periodic batched KKT check. A wave moves K·nnz sparse bytes where the
/// simplex lockstep wave moves K·m² dense bytes; launch amortization plus
/// that byte asymmetry is the crossover argument of docs/METHODS.md.
/// Residency is pdhg_lp_device_bytes per instance from `arena` (reset on
/// entry).
[[nodiscard]] BatchedLpReport solve_batched_pdhg(
    const std::vector<const StandardForm*>& problems, gpu::Device& device,
    gpu::DeviceArena& arena, const PdhgOptions& options = {});

/// Convenience overload owning a throwaway arena.
[[nodiscard]] BatchedLpReport solve_batched_pdhg(
    const std::vector<const StandardForm*>& problems, gpu::Device& device,
    const PdhgOptions& options = {});

}  // namespace gpumip::lp
