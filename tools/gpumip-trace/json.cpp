#include "json.hpp"

#include <cctype>

namespace gpumip::tracetool {

bool JsonReader::parse(JsonValue& out, std::string& error) {
  pos_ = 0;
  error_.clear();
  if (!value(out)) {
    error = "offset " + std::to_string(pos_) + ": " + error_;
    return false;
  }
  skip_ws();
  if (pos_ != text_.size()) {
    error = "offset " + std::to_string(pos_) + ": trailing characters after document";
    return false;
  }
  return true;
}

void JsonReader::skip_ws() {
  while (pos_ < text_.size()) {
    const char c = text_[pos_];
    if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
    ++pos_;
  }
}

bool JsonReader::fail(const std::string& what) {
  if (error_.empty()) error_ = what;
  return false;
}

bool JsonReader::expect(char c) {
  skip_ws();
  if (pos_ >= text_.size() || text_[pos_] != c) {
    return fail(std::string("expected '") + c + "'");
  }
  ++pos_;
  return true;
}

bool JsonReader::literal(const char* word, std::size_t len) {
  if (text_.compare(pos_, len, word) != 0) return fail("bad literal");
  pos_ += len;
  return true;
}

bool JsonReader::string(std::string& out) {
  if (!expect('"')) return false;
  out.clear();
  while (pos_ < text_.size()) {
    const char c = text_[pos_++];
    if (c == '"') return true;
    if (c == '\\') {
      if (pos_ >= text_.size()) return fail("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          // The exporters never emit non-ASCII; decode the code unit and
          // keep the low byte (enough to round-trip what we write).
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4U;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a') + 10U;
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A') + 10U;
            } else {
              return fail("bad \\u escape");
            }
          }
          out.push_back(static_cast<char>(code & 0x7FU));
          break;
        }
        default: return fail("unknown escape");
      }
    } else {
      out.push_back(c);
    }
  }
  return fail("unterminated string");
}

bool JsonReader::value(JsonValue& out) {  // NOLINT(misc-no-recursion)
  skip_ws();
  if (pos_ >= text_.size()) return fail("unexpected end of input");
  const char c = text_[pos_];
  if (c == '{') {
    ++pos_;
    out.type = JsonValue::Type::kObject;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      std::string key;
      if (!string(key)) return false;
      if (!expect(':')) return false;
      JsonValue member;
      if (!value(member)) return false;
      out.object.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return expect('}');
    }
  }
  if (c == '[') {
    ++pos_;
    out.type = JsonValue::Type::kArray;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue element;
      if (!value(element)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return expect(']');
    }
  }
  if (c == '"') {
    out.type = JsonValue::Type::kString;
    return string(out.str);
  }
  if (c == 't') {
    out.type = JsonValue::Type::kBool;
    out.boolean = true;
    return literal("true", 4);
  }
  if (c == 'f') {
    out.type = JsonValue::Type::kBool;
    out.boolean = false;
    return literal("false", 5);
  }
  if (c == 'n') {
    out.type = JsonValue::Type::kNull;
    return literal("null", 4);
  }
  // number
  const std::size_t start = pos_;
  if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
  while (pos_ < text_.size() &&
         (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 || text_[pos_] == '.' ||
          text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' || text_[pos_] == '-')) {
    ++pos_;
  }
  if (pos_ == start) return fail("unexpected character");
  out.type = JsonValue::Type::kNumber;
  try {
    out.number = std::stod(text_.substr(start, pos_ - start));
  } catch (...) {
    return fail("bad number");
  }
  return true;
}

double number_or(const JsonValue* v, double fallback) {
  return (v != nullptr && v->type == JsonValue::Type::kNumber) ? v->number : fallback;
}

std::string string_or(const JsonValue* v, const std::string& fallback) {
  return (v != nullptr && v->type == JsonValue::Type::kString) ? v->str : fallback;
}

}  // namespace gpumip::tracetool
