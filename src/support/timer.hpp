// Wall-clock timer for host-side measurements (benchmarks report both
// wall time and the simulated device clock; see gpu/sim_clock.hpp).
#pragma once

#include <chrono>

namespace gpumip {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double elapsed() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  // The one sanctioned wall-clock read: WallTimer feeds benchmark reports
  // and busy-time accounting only, never solver decisions or the sim lane,
  // so its readings cannot diverge a replayed schedule.
  // gpumip-lint: determinism-ok(host-lane wall timer; readings go to reports, never into solve-path decisions or the replayed schedule)
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace gpumip
