// Structural validators for the solver's core data structures.
//
// Each validator walks one data structure and throws Error(kInternal) on the
// first violated invariant (after bumping the failure counter for its
// subsystem, see check/registry.hpp). Validators are deliberately O(whole
// structure): they are meant to run under GPUMIP_CHECKED builds (wrapped in
// GPUMIP_VALIDATE at the instrumented call sites) and in seeded-corruption
// tests, never on release hot paths.
//
// The invariants mirror the paper's correctness hazards:
//  * check_tree       — bound monotonicity parent->child, no orphaned open
//                       nodes, anatomy/counter consistency (Figure 1 state).
//  * check_snapshot   — a consistent snapshot's frontier is well formed and
//                       the incumbent respects its own bounds (section 2.1).
//  * check_basis      — basis/status cross-consistency, and the
//                       ‖B·(B⁻¹x) − x‖ residual of an explicit inverse
//                       maintained by rank-1 eta updates (sections 4.3/5.1).
//  * check_sparse     — CSR/CSC structure: monotone starts, sorted unique
//                       indices, in-range dims, finite values.
#pragma once

#include <cmath>
#include <string>
#include <vector>

#include "check/registry.hpp"
#include "linalg/eta.hpp"
#include "linalg/matrix.hpp"
#include "lp/basis.hpp"
#include "lp/standard_form.hpp"
#include "mip/snapshot.hpp"
#include "mip/tree.hpp"
#include "sparse/formats.hpp"
#include "support/error.hpp"

namespace gpumip::check {

namespace detail {

[[noreturn]] inline void fail(Subsystem s, const std::string& message) {
  count_failure(s);
  throw Error(ErrorCode::kInternal,
              std::string(subsystem_name(s)) + " invariant violated: " + message);
}

inline void require(bool cond, Subsystem s, const std::string& message) {
  if (!cond) fail(s, message);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Sparse formats (paper C6)
// ---------------------------------------------------------------------------

/// Validates CSR structure: row_start monotone from 0 to nnz, column indices
/// sorted strictly increasing within each row (sorted, no duplicates) and in
/// [0, cols), all values finite.
inline void check_sparse(const sparse::Csr& a) {
  count_check(Subsystem::kSparse);
  using detail::require;
  const Subsystem s = Subsystem::kSparse;
  require(a.rows >= 0 && a.cols >= 0, s, "negative dimensions");
  require(a.row_start.size() == static_cast<std::size_t>(a.rows) + 1, s,
          "row_start size != rows+1");
  require(a.row_start.empty() || a.row_start.front() == 0, s, "row_start[0] != 0");
  require(a.col_index.size() == a.values.size(), s, "col_index/values size mismatch");
  require(a.row_start.empty() ||
              a.row_start.back() == static_cast<int>(a.col_index.size()),
          s, "row_start[rows] != nnz");
  for (int i = 0; i < a.rows; ++i) {
    const int begin = a.row_start[static_cast<std::size_t>(i)];
    const int end = a.row_start[static_cast<std::size_t>(i) + 1];
    require(begin <= end, s, "row_start not monotone at row " + std::to_string(i));
    for (int k = begin; k < end; ++k) {
      const int col = a.col_index[static_cast<std::size_t>(k)];
      require(col >= 0 && col < a.cols,
              s, "column index out of range in row " + std::to_string(i));
      require(k == begin || a.col_index[static_cast<std::size_t>(k) - 1] < col,
              s, "unsorted or duplicate column index in row " + std::to_string(i));
      require(std::isfinite(a.values[static_cast<std::size_t>(k)]),
              s, "non-finite value in row " + std::to_string(i));
    }
  }
}

/// Validates CSC structure (mirror of the CSR checks, column-major).
inline void check_sparse(const sparse::Csc& a) {
  count_check(Subsystem::kSparse);
  using detail::require;
  const Subsystem s = Subsystem::kSparse;
  require(a.rows >= 0 && a.cols >= 0, s, "negative dimensions");
  require(a.col_start.size() == static_cast<std::size_t>(a.cols) + 1, s,
          "col_start size != cols+1");
  require(a.col_start.empty() || a.col_start.front() == 0, s, "col_start[0] != 0");
  require(a.row_index.size() == a.values.size(), s, "row_index/values size mismatch");
  require(a.col_start.empty() ||
              a.col_start.back() == static_cast<int>(a.row_index.size()),
          s, "col_start[cols] != nnz");
  for (int j = 0; j < a.cols; ++j) {
    const int begin = a.col_start[static_cast<std::size_t>(j)];
    const int end = a.col_start[static_cast<std::size_t>(j) + 1];
    require(begin <= end, s, "col_start not monotone at col " + std::to_string(j));
    for (int k = begin; k < end; ++k) {
      const int row = a.row_index[static_cast<std::size_t>(k)];
      require(row >= 0 && row < a.rows,
              s, "row index out of range in col " + std::to_string(j));
      require(k == begin || a.row_index[static_cast<std::size_t>(k) - 1] < row,
              s, "unsorted or duplicate row index in col " + std::to_string(j));
      require(std::isfinite(a.values[static_cast<std::size_t>(k)]),
              s, "non-finite value in col " + std::to_string(j));
    }
  }
}

// ---------------------------------------------------------------------------
// Branch-and-bound tree
// ---------------------------------------------------------------------------

/// Validates the whole node pool: parent links in range and acyclic (parent
/// id < child id by construction), every child's parent is Branched (no
/// orphaned open nodes under a retired parent), child bounds are monotone
/// non-decreasing along the parent link (min form), and the anatomy counters
/// match a fresh recount. Call only at consistent points (between node
/// evaluations), where no node is in flight.
inline void check_tree(const mip::NodePool& pool, double tol = 1e-9) {
  count_check(Subsystem::kTree);
  using detail::require;
  const Subsystem s = Subsystem::kTree;
  mip::TreeAnatomy recount;
  recount.max_depth = 0;
  long active = 0;
  for (int id = 0; id < pool.size(); ++id) {
    const mip::BnbNode& n = pool.node(id);
    require(n.id == id, s, "node " + std::to_string(id) + " stores id " + std::to_string(n.id));
    require(n.parent >= -1 && n.parent < pool.size(),
            s, "node " + std::to_string(id) + " parent out of range");
    require(n.parent < id, s,
            "node " + std::to_string(id) + " precedes its parent (cycle)");
    require(n.lb.size() == n.ub.size(), s,
            "node " + std::to_string(id) + " lb/ub size mismatch");
    if (n.parent >= 0) {
      const mip::BnbNode& p = pool.node(n.parent);
      require(p.state == mip::NodeState::Branched, s,
              "orphaned node " + std::to_string(id) + ": parent " +
                  std::to_string(n.parent) + " is " + mip::node_state_name(p.state) +
                  ", not branched");
      require(n.depth == p.depth + 1, s,
              "node " + std::to_string(id) + " depth != parent depth + 1");
      require(n.bound + tol >= p.bound, s,
              "bound regression: node " + std::to_string(id) + " bound " +
                  std::to_string(n.bound) + " < parent bound " + std::to_string(p.bound));
    }
    recount.max_depth = std::max(recount.max_depth, n.depth);
    ++recount.total_nodes;
    switch (n.state) {
      case mip::NodeState::Active: ++active; break;
      case mip::NodeState::Branched: ++recount.branched; break;
      case mip::NodeState::FeasibleLeaf: ++recount.feasible_leaves; break;
      case mip::NodeState::InfeasibleLeaf: ++recount.infeasible_leaves; break;
      case mip::NodeState::PrunedLeaf: ++recount.pruned_leaves; break;
    }
  }
  const mip::TreeAnatomy& a = pool.anatomy();
  require(a.total_nodes == recount.total_nodes, s, "anatomy total_nodes stale");
  require(a.branched == recount.branched, s, "anatomy branched count stale");
  require(a.feasible_leaves == recount.feasible_leaves, s, "anatomy feasible count stale");
  require(a.infeasible_leaves == recount.infeasible_leaves, s, "anatomy infeasible count stale");
  require(a.pruned_leaves == recount.pruned_leaves, s, "anatomy pruned count stale");
  require(static_cast<long>(pool.active_size()) == active, s,
          "active counter (" + std::to_string(pool.active_size()) +
              ") != live active nodes (" + std::to_string(active) + ")");
  require(recount.total_nodes == a.branched + a.leaves() + active, s,
          "node states do not partition the tree");
}

// ---------------------------------------------------------------------------
// Consistent snapshots (paper C2)
// ---------------------------------------------------------------------------

/// Validates a consistent snapshot: every frontier node has matching,
/// ordered bound vectors; node bounds do not exceed the incumbent (worse
/// nodes must have been pruned before capture); and when the standard form
/// is supplied, vector sizes match it and the incumbent point respects its
/// structural bounds. `in_flight` is the number of nodes currently assigned
/// to workers — a parallel snapshot is only consistent when it is zero
/// (section 2.1's in-flight hazard).
inline void check_snapshot(const mip::ConsistentSnapshot& snap,
                           const lp::StandardForm* form = nullptr, long in_flight = 0,
                           double tol = 1e-6) {
  count_check(Subsystem::kSnapshot);
  using detail::require;
  const Subsystem s = Subsystem::kSnapshot;
  require(in_flight == 0, s,
          "snapshot captured with " + std::to_string(in_flight) +
              " in-flight nodes: frontier does not cover the live search");
  require(snap.nodes_solved_so_far >= 0, s, "negative nodes_solved_so_far");
  std::size_t expected_len = form != nullptr ? static_cast<std::size_t>(form->num_vars) : 0;
  for (std::size_t i = 0; i < snap.frontier.size(); ++i) {
    const mip::SnapshotNode& node = snap.frontier[i];
    require(node.lb.size() == node.ub.size(), s,
            "frontier node " + std::to_string(i) + " lb/ub size mismatch");
    if (expected_len == 0) expected_len = node.lb.size();
    require(node.lb.size() == expected_len, s,
            "frontier node " + std::to_string(i) + " bound vector length differs");
    for (std::size_t j = 0; j < node.lb.size(); ++j) {
      require(node.lb[j] <= node.ub[j] + tol, s,
              "frontier node " + std::to_string(i) + " has crossed bounds at var " +
                  std::to_string(j));
    }
    require(node.depth >= 0, s, "frontier node " + std::to_string(i) + " negative depth");
    require(!(node.bound > snap.incumbent_objective + tol), s,
            "frontier node " + std::to_string(i) +
                " bound exceeds the incumbent (should have been pruned)");
  }
  // An incumbent objective without a point is a bound-only cutoff (e.g. a
  // worker inheriting the supervisor's global incumbent value): nothing to
  // cross-check. A stored point, however, must match the structural space.
  if (snap.has_incumbent() && form != nullptr && !snap.incumbent_x.empty()) {
    require(static_cast<int>(snap.incumbent_x.size()) == form->num_struct, s,
            "incumbent_x length != structural variable count");
    for (int j = 0; j < form->num_struct; ++j) {
      const double v = snap.incumbent_x[static_cast<std::size_t>(j)];
      require(std::isfinite(v), s, "incumbent has non-finite entry at var " + std::to_string(j));
      require(v >= form->lb[static_cast<std::size_t>(j)] - tol &&
                  v <= form->ub[static_cast<std::size_t>(j)] + tol,
              s, "incumbent violates structural bounds at var " + std::to_string(j));
    }
  }
}

// ---------------------------------------------------------------------------
// Simplex basis & eta-updated inverse (paper C3)
// ---------------------------------------------------------------------------

/// Validates basis/status cross-consistency against a standard form:
/// exactly num_rows basic variables, each in range, flagged Basic, and
/// distinct; exactly num_rows Basic entries in `status`.
inline void check_basis(const lp::StandardForm& form, const lp::Basis& basis) {
  count_check(Subsystem::kBasis);
  using detail::require;
  const Subsystem s = Subsystem::kBasis;
  require(basis.basic.size() == static_cast<std::size_t>(form.num_rows), s,
          "basic size != num_rows");
  require(basis.status.size() == static_cast<std::size_t>(form.num_vars), s,
          "status size != num_vars");
  std::vector<char> seen(static_cast<std::size_t>(form.num_vars), 0);
  for (std::size_t i = 0; i < basis.basic.size(); ++i) {
    const int v = basis.basic[i];
    require(v >= 0 && v < form.num_vars, s,
            "basic variable out of range in row " + std::to_string(i));
    require(!seen[static_cast<std::size_t>(v)], s,
            "variable " + std::to_string(v) + " basic in two rows");
    seen[static_cast<std::size_t>(v)] = 1;
    require(basis.status[static_cast<std::size_t>(v)] == lp::VarStatus::Basic, s,
            "basic variable " + std::to_string(v) + " not flagged Basic");
  }
  long basic_count = 0;
  for (lp::VarStatus st : basis.status) {
    if (st == lp::VarStatus::Basic) ++basic_count;
  }
  require(basic_count == form.num_rows, s, "Basic status count != num_rows");
}

/// Residual ‖B·(B⁻¹x) − x‖∞ for the probe x = (1,…,1): measures how far the
/// maintained explicit inverse has drifted from the true basis matrix.
inline double basis_inverse_residual(const linalg::Matrix& b, const linalg::Matrix& binv) {
  const int m = b.rows();
  linalg::Vector y(static_cast<std::size_t>(m), 0.0);
  for (int j = 0; j < m; ++j) {       // y = B⁻¹ · 1
    const auto col = binv.col(j);
    for (int i = 0; i < m; ++i) y[static_cast<std::size_t>(i)] += col[static_cast<std::size_t>(i)];
  }
  linalg::Vector z(static_cast<std::size_t>(m), 0.0);
  for (int j = 0; j < m; ++j) {       // z = B · y
    const auto col = b.col(j);
    const double yj = y[static_cast<std::size_t>(j)];
    if (yj == 0.0) continue;
    for (int i = 0; i < m; ++i) {
      z[static_cast<std::size_t>(i)] += col[static_cast<std::size_t>(i)] * yj;
    }
  }
  double err = 0.0;
  double scale = 1.0;
  for (int i = 0; i < m; ++i) {
    err = std::max(err, std::fabs(z[static_cast<std::size_t>(i)] - 1.0));
    scale = std::max(scale, std::fabs(y[static_cast<std::size_t>(i)]));
  }
  return err / scale;
}

/// Throws when the maintained inverse no longer inverts `b` to within
/// `tol` (relative residual). `b` and `binv` must be square and same-shape.
inline void check_basis_inverse(const linalg::Matrix& b, const linalg::Matrix& binv,
                                double tol = 1e-6, const char* where = "") {
  count_check(Subsystem::kBasis);
  using detail::require;
  const Subsystem s = Subsystem::kBasis;
  require(b.rows() == b.cols() && binv.rows() == binv.cols() && b.rows() == binv.rows(), s,
          std::string("basis/inverse shape mismatch ") + where);
  const double residual = basis_inverse_residual(b, binv);
  require(residual <= tol, s,
          "eta-updated inverse drifted: residual " + std::to_string(residual) +
              " > tol " + std::to_string(tol) + " " + where);
}

/// Builds the basis matrix B from `form` columns for `basis.basic`, applies
/// the eta file to a copy of `base_inverse`, and residual-checks the result
/// — the end-to-end "is this eta file still valid for this basis?" check a
/// warm-started child performs on the factorization it inherited.
inline void check_basis(const lp::StandardForm& form, const lp::Basis& basis,
                        const linalg::Matrix& base_inverse, const linalg::EtaFile& etas,
                        double tol = 1e-6) {
  check_basis(form, basis);
  const int m = form.num_rows;
  linalg::Matrix b(m, m);
  for (int i = 0; i < m; ++i) {
    const int v = basis.basic[static_cast<std::size_t>(i)];
    for (int k = form.a_cols.col_start[static_cast<std::size_t>(v)];
         k < form.a_cols.col_start[static_cast<std::size_t>(v) + 1]; ++k) {
      b(form.a_cols.row_index[static_cast<std::size_t>(k)], i) =
          form.a_cols.values[static_cast<std::size_t>(k)];
    }
  }
  linalg::Matrix binv = base_inverse;
  for (const linalg::Eta& eta : etas.etas()) eta.apply_to_matrix(binv);
  check_basis_inverse(b, binv, tol, "(eta file replay)");
}

}  // namespace gpumip::check
