#include "protocol.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <map>

#include "cfg.hpp"

namespace gpumip::lint {
namespace {

constexpr std::size_t npos = std::string::npos;

/// Distinct write/read op sequences per side are capped: a body whose CFG
/// yields more paths than this is skipped (documented limitation) rather
/// than half-compared.
constexpr std::size_t kMaxPaths = 64;

// ---- R13: wire-format symmetry ---------------------------------------------

/// One serialization operation. `type` is the normalized explicit template
/// argument of write<T>/read<T>; empty means deduced (`w.write(x)`), which
/// matches any scalar on the other side.
struct WireOp {
  enum class Kind : std::uint8_t { kScalar, kDoubles, kInts };
  std::size_t at = 0;
  Kind kind = Kind::kScalar;
  std::string type;
};

std::string normalize_type(const std::string& raw) {
  std::string out;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (is_space(raw[i])) continue;
    out += raw[i];
  }
  if (out.compare(0, 5, "std::") == 0) out = out.substr(5);
  return out;
}

std::string describe(const WireOp& op, bool write_side) {
  const char* verb = write_side ? "write" : "read";
  switch (op.kind) {
    case WireOp::Kind::kDoubles: return std::string(verb) + "_doubles";
    case WireOp::Kind::kInts: return std::string(verb) + "_ints";
    case WireOp::Kind::kScalar: break;
  }
  if (op.type.empty()) return std::string(verb) + "(<deduced>)";
  return std::string(verb) + "<" + op.type + ">";
}

/// True when the word occurrence at `at` is a member call (`.op` / `->op`).
bool is_member_call(const std::string& s, std::size_t at) {
  if (at == 0) return false;
  const char prev = s[at - 1];
  if (prev == '.') return !(at >= 2 && s[at - 2] == '.');  // not "..."
  return prev == '>' && at >= 2 && s[at - 2] == '-';
}

/// Collects the wire ops of one side inside [begin,end) of `f.clean`, in
/// textual order. `write_side` selects the write_* or read_* vocabulary.
std::vector<WireOp> collect_ops(const Scanned& f, std::size_t begin, std::size_t end,
                                bool write_side) {
  const std::string& s = f.clean;
  std::vector<WireOp> ops;
  struct Vocab {
    const char* word;
    WireOp::Kind kind;
  };
  const Vocab vocab[3] = {
      {write_side ? "write" : "read", WireOp::Kind::kScalar},
      {write_side ? "write_doubles" : "read_doubles", WireOp::Kind::kDoubles},
      {write_side ? "write_ints" : "read_ints", WireOp::Kind::kInts},
  };
  for (const Vocab& v : vocab) {
    const std::vector<std::size_t>& sites = word_positions(f, v.word);
    auto it = std::lower_bound(sites.begin(), sites.end(), begin);
    for (; it != sites.end() && *it < end; ++it) {
      const std::size_t at = *it;
      if (!is_member_call(s, at)) continue;
      std::size_t pos = at + std::string(v.word).size();
      WireOp op;
      op.at = at;
      op.kind = v.kind;
      if (v.kind == WireOp::Kind::kScalar && pos < s.size() && s[pos] == '<') {
        // Explicit template argument: write<std::uint64_t>(...).
        int depth = 0;
        std::size_t close = pos;
        while (close < end) {
          if (s[close] == '<') ++depth;
          if (s[close] == '>' && --depth == 0) break;
          ++close;
        }
        if (close >= end) continue;
        op.type = normalize_type(s.substr(pos + 1, close - pos - 1));
        pos = close + 1;
      }
      pos = skip_ws(s, pos);
      if (pos >= s.size() || s[pos] != '(') continue;  // not a call
      ops.push_back(std::move(op));
    }
  }
  std::sort(ops.begin(), ops.end(),
            [](const WireOp& a, const WireOp& b) { return a.at < b.at; });
  return ops;
}

/// Enumerates entry->exit node paths of `cfg` with every directed edge used
/// at most once per path (so each loop contributes its zero- and
/// one-iteration variants). Returns false when the path set exceeds
/// kMaxPaths — the caller then skips the comparison.
bool enumerate_paths(const Cfg& cfg, std::vector<std::vector<int>>& out) {
  std::vector<int> path = {cfg.entry};
  std::set<std::pair<int, int>> used;
  bool ok = true;
  auto dfs = [&](auto&& self, int node) -> void {
    if (!ok) return;
    if (node == cfg.exit) {
      if (out.size() >= kMaxPaths) {
        ok = false;
        return;
      }
      out.push_back(path);
      return;
    }
    for (int next : cfg.nodes[static_cast<std::size_t>(node)].succ) {
      const std::pair<int, int> edge{node, next};
      if (used.count(edge) != 0) continue;
      used.insert(edge);
      path.push_back(next);
      self(self, next);
      path.pop_back();
      used.erase(edge);
    }
  };
  dfs(dfs, cfg.entry);
  return ok;
}

bool in_carved(const Cfg& cfg, std::size_t pos) {
  for (const auto& [b, e] : cfg.carved) {
    if (pos >= b && pos < e) return true;
  }
  return false;
}

/// The distinct wire-op sequences along the CFG paths of one function
/// body. Empty optional-style: `ok` false means the path set was too
/// large to enumerate.
struct PathSequences {
  bool ok = true;
  std::vector<std::vector<WireOp>> seqs;  ///< deduplicated, sorted for pairing
};

PathSequences path_sequences(const Scanned& f, const FunctionDecl& fn,
                             const std::set<std::string>& noreturn_names, bool write_side) {
  PathSequences out;
  const std::vector<Cfg> cfgs = build_cfgs(f.clean, fn.body_begin, fn.body_end, noreturn_names);
  if (cfgs.empty()) return out;
  const Cfg& cfg = cfgs.front();  // lambda graphs are skipped (carved below)
  std::vector<WireOp> ops = collect_ops(f, fn.body_begin, fn.body_end, write_side);
  ops.erase(std::remove_if(ops.begin(), ops.end(),
                           [&](const WireOp& op) { return in_carved(cfg, op.at); }),
            ops.end());
  std::vector<std::vector<int>> paths;
  if (!enumerate_paths(cfg, paths)) {
    out.ok = false;
    return out;
  }
  std::set<std::string> seen;
  for (const std::vector<int>& path : paths) {
    std::vector<WireOp> seq;
    for (int node : path) {
      for (const CfgStmt& st : cfg.nodes[static_cast<std::size_t>(node)].stmts) {
        auto lo = std::lower_bound(ops.begin(), ops.end(), st.begin,
                                   [](const WireOp& op, std::size_t b) { return op.at < b; });
        for (; lo != ops.end() && lo->at < st.end; ++lo) seq.push_back(*lo);
      }
    }
    // Dedup by shape: paths that differ only in op-free branches collapse.
    std::string key;
    for (const WireOp& op : seq) {
      key += static_cast<char>('0' + static_cast<int>(op.kind));
      key += op.type;
      key += '|';
    }
    if (seen.insert(key).second) out.seqs.push_back(std::move(seq));
  }
  // Sort by (length, kind string) so the two sides pair up positionally;
  // wildcard types deliberately do not participate in the sort key.
  std::sort(out.seqs.begin(), out.seqs.end(),
            [](const std::vector<WireOp>& a, const std::vector<WireOp>& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              for (std::size_t i = 0; i < a.size(); ++i) {
                if (a[i].kind != b[i].kind) return a[i].kind < b[i].kind;
              }
              return false;
            });
  return out;
}

/// True when ops at the same position are compatible: vector ops must match
/// exactly, scalars match when either side deduced its type or the
/// normalized types agree.
bool ops_match(const WireOp& w, const WireOp& r) {
  if (w.kind != r.kind) return false;
  if (w.kind != WireOp::Kind::kScalar) return true;
  if (w.type.empty() || r.type.empty()) return true;
  return w.type == r.type;
}

/// Known serializer->deserializer naming conventions.
const char* counterpart_name(const std::string& name, std::string& out) {
  static const std::pair<const char*, const char*> kPairs[] = {
      {"encode", "decode"},
      {"serialize", "deserialize"},
      {"write", "read"},
      {"save", "load"},
  };
  for (const auto& [w, r] : kPairs) {
    const std::string prefix(w);
    if (name.size() > prefix.size() && name.compare(0, prefix.size(), prefix) == 0) {
      out = r + name.substr(prefix.size());
      return w;
    }
  }
  return nullptr;
}

/// Whole-word presence of `word` inside [begin,end) of `f`.
bool word_in_extent(const Scanned& f, const std::string& word, std::size_t begin,
                    std::size_t end) {
  const std::vector<std::size_t>& sites = word_positions(f, word);
  auto it = std::lower_bound(sites.begin(), sites.end(), begin);
  return it != sites.end() && *it < end;
}

void check_r13(const std::vector<Scanned>& files, const std::vector<FunctionDecl>& functions,
               const std::set<std::string>& noreturn_names, std::vector<Finding>& findings) {
  // A serializer drives a ByteWriter and issues write ops; a deserializer
  // drives a ByteReader and issues read ops. The ByteWriter/ByteReader
  // word gate keeps unrelated write()/read() vocabularies (iostreams,
  // files) out of the rule.
  auto is_side = [&](const FunctionDecl& fn, bool write_side) {
    const Scanned& f = files[static_cast<std::size_t>(fn.file_index)];
    if (!word_in_extent(f, write_side ? "ByteWriter" : "ByteReader", fn.name_begin,
                        fn.body_end)) {
      return false;
    }
    return !collect_ops(f, fn.body_begin, fn.body_end, write_side).empty();
  };

  std::map<std::string, std::vector<std::size_t>> by_name;
  for (std::size_t i = 0; i < functions.size(); ++i) {
    by_name[functions[i].name].push_back(i);
  }

  for (const FunctionDecl& ser : functions) {
    std::string reader_name;
    if (counterpart_name(ser.name, reader_name) == nullptr) continue;
    if (!is_side(ser, /*write_side=*/true)) continue;
    auto candidates = by_name.find(reader_name);
    if (candidates == by_name.end()) continue;
    const FunctionDecl* deser = nullptr;
    for (std::size_t idx : candidates->second) {
      if (is_side(functions[idx], /*write_side=*/false)) {
        // Prefer a same-file counterpart; fall back to the first match.
        if (deser == nullptr || functions[idx].file_index == ser.file_index) {
          deser = &functions[idx];
        }
      }
    }
    if (deser == nullptr) continue;

    const Scanned& wf = files[static_cast<std::size_t>(ser.file_index)];
    const Scanned& rf = files[static_cast<std::size_t>(deser->file_index)];
    if (has_annotation(wf, ser.line, "wire-ok") || has_annotation(rf, deser->line, "wire-ok")) {
      continue;
    }
    const PathSequences w = path_sequences(wf, ser, noreturn_names, /*write_side=*/true);
    const PathSequences r = path_sequences(rf, *deser, noreturn_names, /*write_side=*/false);
    if (!w.ok || !r.ok) continue;  // path explosion: skipped, see docs/LINT.md

    const std::string pair_label = "serializer '" + ser.name + "' and deserializer '" +
                                   deser->name + "' (" + rf.src->path + ":" +
                                   std::to_string(deser->line) + ")";
    if (w.seqs.size() != r.seqs.size()) {
      findings.push_back(
          {wf.src->path, ser.line, "R13",
           "wire-format asymmetry: " + pair_label + " disagree on branch/loop structure — " +
               std::to_string(w.seqs.size()) + " distinct write sequence(s) vs " +
               std::to_string(r.seqs.size()) +
               " read sequence(s) across their CFG paths; mirror the control flow on both "
               "sides or annotate '// gpumip-lint: wire-ok(reason)'"});
      continue;
    }
    for (std::size_t p = 0; p < w.seqs.size(); ++p) {
      const std::vector<WireOp>& ws = w.seqs[p];
      const std::vector<WireOp>& rs = r.seqs[p];
      if (ws.size() != rs.size()) {
        findings.push_back(
            {wf.src->path, ser.line, "R13",
             "wire-format asymmetry: " + pair_label + " — one path writes " +
                 std::to_string(ws.size()) + " field(s) but reads " +
                 std::to_string(rs.size()) +
                 "; every written field must be read back in order (or annotate "
                 "'// gpumip-lint: wire-ok(reason)')"});
        break;
      }
      bool reported = false;
      for (std::size_t k = 0; k < ws.size(); ++k) {
        if (ops_match(ws[k], rs[k])) continue;
        findings.push_back(
            {wf.src->path, line_of(wf, ws[k].at), "R13",
             "wire-format asymmetry: " + pair_label + " — field " + std::to_string(k + 1) +
                 " is " + describe(ws[k], true) + " on the wire but " + describe(rs[k], false) +
                 " on decode; the byte layouts differ, so every later field misaligns (or "
                 "annotate '// gpumip-lint: wire-ok(reason)')"});
        reported = true;
        break;
      }
      if (reported) break;
    }
  }
}

// ---- R14: tag-protocol coverage --------------------------------------------

/// The trailing identifier of a (possibly qualified) expression like
/// `kTagWork` or `Tag::kTagWork`; empty when the text is not a name.
std::string trailing_identifier(const std::string& expr) {
  std::size_t end = expr.size();
  while (end > 0 && is_space(expr[end - 1])) --end;
  std::size_t begin = end;
  while (begin > 0 && is_ident_char(expr[begin - 1])) --begin;
  if (begin == end) return "";
  // Reject anything with trailing operators/calls after the name.
  for (std::size_t i = 0; i < begin; ++i) {
    if (!is_space(expr[i]) && !is_ident_char(expr[i]) && expr[i] != ':') return "";
  }
  std::string name = expr.substr(begin, end - begin);
  if (std::isdigit(static_cast<unsigned char>(name[0])) != 0) return "";
  return name;
}

/// One tag send site.
struct TagSite {
  std::string tag;
  std::size_t file = 0;
  int line = 0;
};

/// Collects `<obj>.send(dest, TAG, ...)` sites and the tag identifier of
/// each (qualified names keep their last component).
std::vector<TagSite> collect_send_tags(const std::vector<Scanned>& files) {
  std::vector<TagSite> out;
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const Scanned& f = files[fi];
    const std::string& s = f.clean;
    for (std::size_t at : word_positions(f, "send")) {
      if (!is_member_call(s, at)) continue;
      std::size_t pos = skip_ws(s, at + 4);
      if (pos >= s.size() || s[pos] != '(') continue;
      // Split the argument list on depth-0 commas; the tag is argument 2.
      std::size_t arg_begin = pos + 1;
      int depth = 1;
      int arg_index = 0;
      std::string tag_text;
      for (std::size_t i = pos + 1; i < s.size() && depth > 0; ++i) {
        const char c = s[i];
        if (c == '(' || c == '[' || c == '{') ++depth;
        if (c == ')' || c == ']' || c == '}') --depth;
        if ((c == ',' && depth == 1) || (depth == 0 && c == ')')) {
          if (arg_index == 1) tag_text = s.substr(arg_begin, i - arg_begin);
          ++arg_index;
          arg_begin = i + 1;
        }
      }
      const std::string tag = trailing_identifier(tag_text);
      if (tag.empty()) continue;  // literal or computed tag: not checkable
      out.push_back({tag, fi, line_of(f, at)});
    }
  }
  return out;
}

/// True when some occurrence of `tag` anywhere in the scanned set sits in a
/// handler context: compared with ==/!=, a case label, or inside a
/// recv/try_recv call's statement.
bool tag_is_handled(const std::vector<Scanned>& files, const std::string& tag) {
  for (const Scanned& f : files) {
    const std::string& s = f.clean;
    for (std::size_t at : word_positions(f, tag)) {
      std::size_t q = at;
      while (q > 0 && is_space(s[q - 1])) --q;
      if (q >= 2 && s[q - 2] == '=' && s[q - 1] == '=') return true;  // x == TAG
      if (q >= 2 && s[q - 2] == '!' && s[q - 1] == '=') return true;  // x != TAG
      if (q >= 4 && s.compare(q - 4, 4, "case") == 0 &&
          (q == 4 || !is_ident_char(s[q - 5]))) {
        return true;  // case TAG:
      }
      std::size_t p = skip_ws(s, at + tag.size());
      if (p + 1 < s.size() && (s[p] == '=' || s[p] == '!') && s[p + 1] == '=') {
        return true;  // TAG == x
      }
      const std::string stmt = statement_around(s, at);
      if (stmt.find("recv") != npos && stmt.find(".send") == npos &&
          stmt.find("->send") == npos) {
        return true;  // recv(source, TAG)-style filtered receive
      }
    }
  }
  return false;
}

void check_r14_tags(const std::vector<Scanned>& files, std::vector<Finding>& findings) {
  std::set<std::string> reported;
  for (const TagSite& site : collect_send_tags(files)) {
    const Scanned& f = files[site.file];
    if (has_annotation(f, site.line, "wire-ok")) continue;
    if (tag_is_handled(files, site.tag)) continue;
    if (!reported.insert(site.tag).second) continue;
    findings.push_back(
        {f.src->path, site.line, "R14",
         "message tag '" + site.tag +
             "' is sent here but no receive/dispatch site ever examines it (no '== " +
             site.tag + "', 'case " + site.tag +
             ":', or filtered recv anywhere in the scanned set); a tag only ever sent is a "
             "dead or mistyped protocol leg (or annotate '// gpumip-lint: wire-ok(reason)')"});
  }
}

void check_r14_exhausted(const std::vector<Scanned>& files,
                         const std::vector<FunctionDecl>& functions,
                         std::vector<Finding>& findings) {
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const Scanned& f = files[fi];
    const std::string& s = f.clean;
    for (std::size_t at : word_positions(f, "ByteReader")) {
      // Skip type-position uses: class/ctor declarations, references,
      // template arguments, qualified member definitions.
      std::size_t q = at;
      while (q > 0 && is_space(s[q - 1])) --q;
      if (q > 0 && (s[q - 1] == '~' || is_ident_char(s[q - 1]))) {
        std::size_t r0 = q;
        while (r0 > 0 && is_ident_char(s[r0 - 1])) --r0;
        const std::string prev = s.substr(r0, q - r0);
        if (prev == "class" || prev == "struct" || prev == "explicit" || prev == "friend" ||
            prev == "typename" || prev == "using") {
          continue;
        }
      }
      bool is_decl_name = false;
      for (const FunctionDecl& fn : functions) {
        if (fn.file_index == static_cast<int>(fi) && fn.name_begin == at) {
          is_decl_name = true;  // the ByteReader ctor / a qualified member
          break;
        }
      }
      if (is_decl_name) continue;
      std::size_t pos = skip_ws(s, at + std::string("ByteReader").size());
      if (pos >= s.size()) continue;
      if (!is_ident_char(s[pos])) continue;  // refs, ByteReader::..., templates
      // `ByteReader r(...)` / `ByteReader r{...}` / `ByteReader r = ...`:
      // a top-level deserializer owns the payload view.
      const int fn_idx = enclosing_function(functions, static_cast<int>(fi), at);
      if (fn_idx < 0) continue;  // class-scope member declaration
      const FunctionDecl& fn = functions[static_cast<std::size_t>(fn_idx)];
      if (word_in_extent(f, "exhausted", fn.body_begin, fn.body_end)) continue;
      const int line = line_of(f, at);
      if (has_annotation(f, line, "wire-ok")) continue;
      findings.push_back(
          {f.src->path, line, "R14",
           "'" + fn.name +
               "' constructs a ByteReader but never checks exhausted(): a payload with "
               "trailing bytes (version skew, corrupted length header) decodes silently; "
               "end the deserializer with an exhausted() check that raises a typed "
               "protocol error (or annotate '// gpumip-lint: wire-ok(reason)')"});
    }
  }
}

}  // namespace

void check_protocol(const std::vector<Scanned>& files,
                    const std::vector<FunctionDecl>& functions, const CallGraph& graph,
                    const std::set<std::string>& noreturn_names,
                    std::vector<Finding>& findings) {
  (void)graph;  // reserved: call-graph-scoped handler reachability
  check_r13(files, functions, noreturn_names, findings);
  check_r14_tags(files, findings);
  check_r14_exhausted(files, functions, findings);
}

}  // namespace gpumip::lint
