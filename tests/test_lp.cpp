#include <gtest/gtest.h>

#include <cmath>

#include "lp/interior_point.hpp"
#include "lp/model.hpp"
#include "lp/path_chooser.hpp"
#include "lp/presolve.hpp"
#include "lp/scaling.hpp"
#include "lp/simplex.hpp"
#include "lp/standard_form.hpp"
#include "sparse/ops.hpp"

namespace gpumip::lp {
namespace {

using linalg::Vector;

LpResult solve_simplex(const LpModel& model, SimplexOptions opts = {}) {
  const StandardForm form = build_standard_form(model);
  SimplexSolver solver(form, opts);
  return solver.solve_default();
}

/// Verifies optimality conditions of a simplex result on a standard form:
/// feasibility, bound compliance, and reduced-cost signs.
void expect_optimal_kkt(const StandardForm& form, const LpResult& result) {
  ASSERT_EQ(result.status, LpStatus::Optimal);
  EXPECT_LT(equality_residual(form, result.x), 1e-6);
  EXPECT_TRUE(within_bounds(form, result.x, 1e-6));
  for (int j = 0; j < form.num_vars; ++j) {
    const std::size_t k = static_cast<std::size_t>(j);
    if (form.lb[k] == form.ub[k]) continue;
    switch (result.basis.status[k]) {
      case VarStatus::AtLower:
        EXPECT_GT(result.reduced_costs[k], -1e-6) << "var " << j;
        break;
      case VarStatus::AtUpper:
        EXPECT_LT(result.reduced_costs[k], 1e-6) << "var " << j;
        break;
      case VarStatus::Free:
        EXPECT_NEAR(result.reduced_costs[k], 0.0, 1e-6) << "var " << j;
        break;
      case VarStatus::Basic:
        EXPECT_NEAR(result.reduced_costs[k], 0.0, 1e-5) << "var " << j;
        break;
    }
  }
}

// ---------- textbook problems with known optima ----------

TEST(Simplex, TwoVariableMaximization) {
  // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0. Optimum 36 at (2,6).
  LpModel m;
  m.set_sense(Sense::Maximize);
  const int x = m.add_col(3.0), y = m.add_col(5.0);
  m.add_row_le({{x, 1.0}}, 4.0);
  m.add_row_le({{y, 2.0}}, 12.0);
  m.add_row_le({{x, 3.0}, {y, 2.0}}, 18.0);
  const StandardForm form = build_standard_form(m);
  SimplexSolver solver(form);
  LpResult r = solver.solve_default();
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(form.user_objective(r.objective), 36.0, 1e-8);
  EXPECT_NEAR(r.x[0], 2.0, 1e-8);
  EXPECT_NEAR(r.x[1], 6.0, 1e-8);
  expect_optimal_kkt(form, r);
}

TEST(Simplex, MinimizationWithGeRows) {
  // min 2x + 3y st x + y >= 4, x + 3y >= 6, x,y >= 0. Optimum at (3,1): 9.
  LpModel m;
  const int x = m.add_col(2.0), y = m.add_col(3.0);
  m.add_row_ge({{x, 1.0}, {y, 1.0}}, 4.0);
  m.add_row_ge({{x, 1.0}, {y, 3.0}}, 6.0);
  LpResult r = solve_simplex(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, 9.0, 1e-8);
  EXPECT_NEAR(r.x[0], 3.0, 1e-8);
  EXPECT_NEAR(r.x[1], 1.0, 1e-8);
}

TEST(Simplex, EqualityConstraints) {
  // min x + 2y + 3z st x + y + z = 10, x - y = 2, bounds 0..8.
  // Optimum: maximize x, then y: x=6? Check: x - y = 2 -> x = y + 2.
  // x + y + z = 10 -> z = 8 - 2y. min (y+2) + 2y + 3(8-2y) = 26 - 3y,
  // maximize y: y <= 8, z >= 0 -> y <= 4, x = y+2 <= 8 ok. y=4: x=6,z=0, obj 14.
  LpModel m;
  const int x = m.add_col(1.0, 0, 8), y = m.add_col(2.0, 0, 8), z = m.add_col(3.0, 0, 8);
  m.add_row_eq({{x, 1.0}, {y, 1.0}, {z, 1.0}}, 10.0);
  m.add_row_eq({{x, 1.0}, {y, -1.0}}, 2.0);
  LpResult r = solve_simplex(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, 14.0, 1e-8);
  EXPECT_NEAR(r.x[0], 6.0, 1e-8);
  EXPECT_NEAR(r.x[1], 4.0, 1e-8);
  EXPECT_NEAR(r.x[2], 0.0, 1e-8);
}

TEST(Simplex, RangedRow) {
  // min -x st 2 <= x + y <= 5, 0 <= x,y <= 4. Optimum x=4 (y in [0,1] slack).
  LpModel m;
  const int x = m.add_col(-1.0, 0, 4), y = m.add_col(0.0, 0, 4);
  m.add_row_range({{x, 1.0}, {y, 1.0}}, 2.0, 5.0);
  LpResult r = solve_simplex(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.x[0], 4.0, 1e-8);
}

TEST(Simplex, NegativeLowerBounds) {
  // min x + y with x in [-5, 5], y in [-3, 3], x + y >= -6. Optimum (-5,-1)?
  // x+y >= -6 binds: obj = -6. Any split works; objective must be -6.
  LpModel m;
  const int x = m.add_col(1.0, -5, 5), y = m.add_col(1.0, -3, 3);
  m.add_row_ge({{x, 1.0}, {y, 1.0}}, -6.0);
  LpResult r = solve_simplex(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, -6.0, 1e-8);
}

TEST(Simplex, FreeVariable) {
  // min y st y >= x - 2, y >= -x, x free, y free. Optimum y = -1 at x = 1.
  LpModel m;
  const int x = m.add_col(0.0, -kInf, kInf), y = m.add_col(1.0, -kInf, kInf);
  m.add_row_ge({{y, 1.0}, {x, -1.0}}, -2.0);  // y - x >= -2
  m.add_row_ge({{y, 1.0}, {x, 1.0}}, 0.0);    // y + x >= 0
  LpResult r = solve_simplex(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, -1.0, 1e-8);
  EXPECT_NEAR(r.x[0], 1.0, 1e-8);
}

TEST(Simplex, InfeasibleDetected) {
  LpModel m;
  const int x = m.add_col(1.0, 0, 10);
  m.add_row_ge({{x, 1.0}}, 5.0);
  m.add_row_le({{x, 1.0}}, 3.0);
  EXPECT_EQ(solve_simplex(m).status, LpStatus::Infeasible);
}

TEST(Simplex, InfeasibleEqualitySystem) {
  LpModel m;
  const int x = m.add_col(0.0), y = m.add_col(0.0);
  m.add_row_eq({{x, 1.0}, {y, 1.0}}, 2.0);
  m.add_row_eq({{x, 1.0}, {y, 1.0}}, 3.0);
  EXPECT_EQ(solve_simplex(m).status, LpStatus::Infeasible);
}

TEST(Simplex, UnboundedDetected) {
  LpModel m;
  const int x = m.add_col(-1.0);  // min -x, x >= 0 unconstrained above
  const int y = m.add_col(1.0);
  m.add_row_ge({{x, 1.0}, {y, 1.0}}, 1.0);
  EXPECT_EQ(solve_simplex(m).status, LpStatus::Unbounded);
}

TEST(Simplex, FixedVariablesRespected) {
  LpModel m;
  const int x = m.add_col(-1.0, 3, 3);  // fixed at 3
  const int y = m.add_col(-1.0, 0, 10);
  m.add_row_le({{x, 1.0}, {y, 1.0}}, 7.0);
  LpResult r = solve_simplex(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.x[0], 3.0, 1e-9);
  EXPECT_NEAR(r.x[1], 4.0, 1e-8);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic degenerate corner: several constraints meet at the optimum.
  LpModel m;
  const int x = m.add_col(-0.75), y = m.add_col(150.0), z = m.add_col(-0.02), w = m.add_col(6.0);
  m.add_row_le({{x, 0.25}, {y, -60.0}, {z, -0.04}, {w, 9.0}}, 0.0);
  m.add_row_le({{x, 0.5}, {y, -90.0}, {z, -0.02}, {w, 3.0}}, 0.0);
  m.add_row_le({{z, 1.0}}, 1.0);
  LpResult r = solve_simplex(m);
  // Beale's cycling example: must terminate at optimum -0.05.
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, -0.05, 1e-8);
}

TEST(Simplex, EmptyProblemAndBoundsOnly) {
  LpModel m;
  m.add_col(2.0, -1, 5);   // min 2x -> x = -1
  m.add_col(-3.0, 0, 7);   // min -3y -> y = 7
  LpResult r = solve_simplex(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, 2.0 * -1 + -3.0 * 7, 1e-9);
}

TEST(Simplex, BoundFlipPath) {
  // Encourage a bound flip: box variable with a loose row.
  LpModel m;
  const int x = m.add_col(-1.0, 0, 2);
  const int y = m.add_col(-1.0, 0, 2);
  m.add_row_le({{x, 1.0}, {y, 1.0}}, 10.0);  // never binds
  LpResult r = solve_simplex(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, -4.0, 1e-9);
}

// ---------- warm start and dual simplex ----------

TEST(Simplex, WarmStartReducesIterations) {
  Rng rng(101);
  LpModel m;
  const int n = 30, rows = 20;
  for (int j = 0; j < n; ++j) m.add_col(rng.uniform(-1.0, 1.0), 0.0, 10.0);
  for (int i = 0; i < rows; ++i) {
    std::vector<Term> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.flip(0.4)) terms.push_back({j, rng.uniform(0.1, 1.0)});
    }
    if (terms.empty()) terms.push_back({i % n, 1.0});
    m.add_row_le(terms, rng.uniform(5.0, 15.0));
  }
  const StandardForm form = build_standard_form(m);
  SimplexSolver solver(form);
  LpResult cold = solver.solve_default();
  ASSERT_EQ(cold.status, LpStatus::Optimal);
  LpResult warm = solver.solve(form.lb, form.ub, &cold.basis);
  ASSERT_EQ(warm.status, LpStatus::Optimal);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-7);
  EXPECT_LT(warm.iterations, std::max<long>(cold.iterations / 4, 2));
}

TEST(DualSimplex, ResolveAfterBoundTightening) {
  // Solve, then tighten a bound on a basic variable and dual-resolve; the
  // result must match a cold solve under the new bounds.
  LpModel m;
  m.set_sense(Sense::Maximize);
  const int x = m.add_col(3.0, 0, 10), y = m.add_col(5.0, 0, 10);
  m.add_row_le({{x, 1.0}}, 4.0);
  m.add_row_le({{y, 2.0}}, 12.0);
  m.add_row_le({{x, 3.0}, {y, 2.0}}, 18.0);
  const StandardForm form = build_standard_form(m);
  SimplexSolver solver(form);
  LpResult root = solver.solve_default();
  ASSERT_EQ(root.status, LpStatus::Optimal);

  // Tighten x <= 1 (branching-like change).
  Vector lb = form.lb, ub = form.ub;
  ub[0] = 1.0;
  LpResult dual = solver.resolve_dual(lb, ub, root.basis);
  LpResult cold = solver.solve(lb, ub, nullptr);
  ASSERT_EQ(dual.status, LpStatus::Optimal);
  ASSERT_EQ(cold.status, LpStatus::Optimal);
  EXPECT_NEAR(dual.objective, cold.objective, 1e-7);
  EXPECT_NEAR(form.user_objective(dual.objective), 33.0, 1e-7);  // x=1, y=6
}

TEST(DualSimplex, DetectsChildInfeasibility) {
  LpModel m;
  const int x = m.add_col(1.0, 0, 10), y = m.add_col(1.0, 0, 10);
  m.add_row_ge({{x, 1.0}, {y, 1.0}}, 15.0);
  const StandardForm form = build_standard_form(m);
  SimplexSolver solver(form);
  LpResult root = solver.solve_default();
  ASSERT_EQ(root.status, LpStatus::Optimal);
  Vector lb = form.lb, ub = form.ub;
  ub[0] = 2.0;
  ub[1] = 2.0;  // x + y <= 4 < 15: infeasible child
  EXPECT_EQ(solver.resolve_dual(lb, ub, root.basis).status, LpStatus::Infeasible);
}

TEST(DualSimplex, RandomizedAgreementWithColdSolve) {
  Rng rng(202);
  for (int trial = 0; trial < 10; ++trial) {
    LpModel m;
    const int n = 12, rows = 8;
    for (int j = 0; j < n; ++j) m.add_col(rng.uniform(-2.0, 2.0), 0.0, 5.0);
    for (int i = 0; i < rows; ++i) {
      std::vector<Term> terms;
      for (int j = 0; j < n; ++j) {
        if (rng.flip(0.5)) terms.push_back({j, rng.uniform(0.2, 1.5)});
      }
      if (terms.empty()) terms.push_back({i % n, 1.0});
      m.add_row_le(terms, rng.uniform(4.0, 12.0));
    }
    const StandardForm form = build_standard_form(m);
    SimplexSolver solver(form);
    LpResult root = solver.solve_default();
    ASSERT_EQ(root.status, LpStatus::Optimal) << "trial " << trial;
    // Tighten a random variable's upper bound below its LP value.
    Vector lb = form.lb, ub = form.ub;
    const int j = static_cast<int>(rng.index(static_cast<std::size_t>(n)));
    ub[static_cast<std::size_t>(j)] = std::max(0.0, std::floor(root.x[static_cast<std::size_t>(j)] - 0.5));
    LpResult dual = solver.resolve_dual(lb, ub, root.basis);
    LpResult cold = solver.solve(lb, ub, nullptr);
    ASSERT_EQ(dual.status, cold.status) << "trial " << trial;
    if (cold.status == LpStatus::Optimal) {
      EXPECT_NEAR(dual.objective, cold.objective, 1e-6) << "trial " << trial;
    }
  }
}

// ---------- interior point ----------

TEST(InteriorPoint, MatchesSimplexOnTextbookLp) {
  LpModel m;
  m.set_sense(Sense::Maximize);
  const int x = m.add_col(3.0), y = m.add_col(5.0);
  m.add_row_le({{x, 1.0}}, 4.0);
  m.add_row_le({{y, 2.0}}, 12.0);
  m.add_row_le({{x, 3.0}, {y, 2.0}}, 18.0);
  const StandardForm form = build_standard_form(m);
  InteriorPointSolver ipm(form);
  LpResult r = ipm.solve_default();
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(form.user_objective(r.objective), 36.0, 1e-5);
  EXPECT_NEAR(r.x[0], 2.0, 1e-4);
  EXPECT_NEAR(r.x[1], 6.0, 1e-4);
}

TEST(InteriorPoint, HandlesBoundedVariables) {
  LpModel m;
  const int x = m.add_col(-1.0, 0.0, 2.5), y = m.add_col(-2.0, 1.0, 3.0);
  m.add_row_le({{x, 1.0}, {y, 1.0}}, 4.0);
  const StandardForm form = build_standard_form(m);
  LpResult simplex_r = SimplexSolver(form).solve_default();
  LpResult ipm_r = InteriorPointSolver(form).solve_default();
  ASSERT_EQ(simplex_r.status, LpStatus::Optimal);
  ASSERT_EQ(ipm_r.status, LpStatus::Optimal);
  EXPECT_NEAR(ipm_r.objective, simplex_r.objective, 1e-5);
}

TEST(InteriorPoint, HandlesFreeVariablesAndEqualities) {
  LpModel m;
  const int x = m.add_col(1.0, -kInf, kInf), y = m.add_col(2.0, 0.0, kInf);
  m.add_row_eq({{x, 1.0}, {y, 1.0}}, 3.0);
  m.add_row_ge({{x, 1.0}}, -1.0);
  const StandardForm form = build_standard_form(m);
  LpResult simplex_r = SimplexSolver(form).solve_default();
  LpResult ipm_r = InteriorPointSolver(form).solve_default();
  ASSERT_EQ(simplex_r.status, LpStatus::Optimal);
  ASSERT_EQ(ipm_r.status, LpStatus::Optimal);
  EXPECT_NEAR(ipm_r.objective, simplex_r.objective, 1e-5);
}

TEST(InteriorPoint, DenseAndSparsePathsAgree) {
  Rng rng(303);
  LpModel m;
  const int n = 20, rows = 14;
  for (int j = 0; j < n; ++j) m.add_col(rng.uniform(-1.0, 0.0), 0.0, 4.0);
  for (int i = 0; i < rows; ++i) {
    std::vector<Term> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.flip(0.3)) terms.push_back({j, rng.uniform(0.2, 1.0)});
    }
    if (terms.empty()) terms.push_back({i % n, 1.0});
    m.add_row_le(terms, rng.uniform(3.0, 9.0));
  }
  const StandardForm form = build_standard_form(m);
  InteriorPointOptions dense_opts;
  dense_opts.force_dense = true;
  InteriorPointOptions sparse_opts;
  sparse_opts.force_sparse = true;
  LpResult rd = InteriorPointSolver(form, dense_opts).solve_default();
  LpResult rs = InteriorPointSolver(form, sparse_opts).solve_default();
  ASSERT_EQ(rd.status, LpStatus::Optimal);
  ASSERT_EQ(rs.status, LpStatus::Optimal);
  EXPECT_NEAR(rd.objective, rs.objective, 1e-5);
}

// ---------- property test: simplex vs IPM on random LPs ----------

class RandomLpAgreement : public ::testing::TestWithParam<int> {};

TEST_P(RandomLpAgreement, SimplexAndIpmAgree) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  LpModel m;
  const int n = 8 + GetParam() % 12;
  const int rows = 5 + GetParam() % 8;
  for (int j = 0; j < n; ++j) m.add_col(rng.uniform(-2.0, 1.0), 0.0, kInf);
  for (int i = 0; i < rows; ++i) {
    std::vector<Term> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.flip(0.5)) terms.push_back({j, rng.uniform(0.1, 1.0)});
    }
    terms.push_back({static_cast<int>(rng.index(static_cast<std::size_t>(n))), rng.uniform(0.5, 1.0)});
    m.add_row_le(terms, rng.uniform(2.0, 10.0));
  }
  // Every column must appear in some row, else a negative-cost column is
  // unbounded; add a capping row over all columns.
  {
    std::vector<Term> all;
    for (int j = 0; j < n; ++j) all.push_back({j, 1.0});
    m.add_row_le(all, static_cast<double>(2 * n));
  }
  const StandardForm form = build_standard_form(m);
  LpResult sr = SimplexSolver(form).solve_default();
  LpResult ir = InteriorPointSolver(form).solve_default();
  ASSERT_EQ(sr.status, LpStatus::Optimal);
  ASSERT_EQ(ir.status, LpStatus::Optimal);
  EXPECT_NEAR(sr.objective, ir.objective, 1e-4 * (1.0 + std::fabs(sr.objective)));
  expect_optimal_kkt(form, sr);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomLpAgreement, ::testing::Range(0, 12));

// ---------- op accounting ----------

TEST(OpStats, SimplexRecordsWork) {
  LpModel m;
  m.set_sense(Sense::Maximize);
  const int x = m.add_col(3.0), y = m.add_col(5.0);
  m.add_row_le({{x, 1.0}}, 4.0);
  m.add_row_le({{y, 2.0}}, 12.0);
  m.add_row_le({{x, 3.0}, {y, 2.0}}, 18.0);
  LpResult r = solve_simplex(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_GT(r.ops.iterations, 0);
  EXPECT_GT(r.ops.ftran, 0);
  EXPECT_GT(r.ops.btran, 0);
  EXPECT_GT(r.ops.price_full, 0);
  EXPECT_EQ(r.ops.m, 3);
  EXPECT_GT(cpu_seconds(r.ops), 0.0);
}

TEST(OpStats, ChargeToDeviceLaunchesKernels) {
  LpOpStats stats;
  stats.m = 50;
  stats.n = 100;
  stats.nnz = 500;
  stats.ftran = 10;
  stats.btran = 10;
  stats.price_full = 10;
  stats.eta_updates = 9;
  stats.refactor = 1;
  gpu::Device dev;
  charge_to_device(dev, 0, stats, /*sparse_pricing=*/true);
  EXPECT_EQ(dev.stats().kernels, 10u + 10 + 10 + 9 + 1);
  EXPECT_GT(dev.synchronize(), 0.0);
}

// ---------- presolve ----------

TEST(Presolve, FixedColumnSubstitution) {
  LpModel m;
  const int x = m.add_col(1.0, 2.0, 2.0);  // fixed
  const int y = m.add_col(1.0, 0.0, 10.0);
  m.add_row_le({{x, 1.0}, {y, 1.0}}, 5.0);
  PresolveResult pr = presolve(m);
  ASSERT_FALSE(pr.infeasible);
  EXPECT_EQ(pr.cols_removed, 1);
  EXPECT_EQ(pr.reduced.num_cols(), 1);
  // After substituting x = 2, the row is the singleton y <= 3, which
  // presolve absorbs into the column bound and removes.
  EXPECT_EQ(pr.reduced.num_rows(), 0);
  EXPECT_NEAR(pr.reduced.col(0).ub, 3.0, 1e-12);
  Vector full = pr.postsolve(Vector{1.5});
  EXPECT_NEAR(full[0], 2.0, 1e-12);
  EXPECT_NEAR(full[1], 1.5, 1e-12);
}

TEST(Presolve, SingletonRowBecomesBound) {
  LpModel m;
  const int x = m.add_col(-1.0, 0.0, 100.0);
  m.add_row_le({{x, 2.0}}, 10.0);  // x <= 5
  PresolveResult pr = presolve(m);
  ASSERT_FALSE(pr.infeasible);
  EXPECT_EQ(pr.rows_removed, 1);
  EXPECT_NEAR(pr.reduced.col(0).ub, 5.0, 1e-12);
}

TEST(Presolve, DetectsInfeasibleBounds) {
  LpModel m;
  const int x = m.add_col(0.0, 0.0, 4.0);
  m.add_row_ge({{x, 1.0}}, 5.0);  // x >= 5 vs x <= 4
  EXPECT_TRUE(presolve(m).infeasible);
}

TEST(Presolve, IntegerBoundRounding) {
  LpModel m;
  const int x = m.add_col(0.0, 0.0, 10.0);
  m.add_row_le({{x, 2.0}}, 7.0);  // x <= 3.5 -> integer: x <= 3
  PresolveResult pr = presolve(m, {true});
  ASSERT_FALSE(pr.infeasible);
  EXPECT_NEAR(pr.reduced.col(0).ub, 3.0, 1e-12);
}

TEST(Presolve, PreservesOptimum) {
  Rng rng(404);
  LpModel m;
  const int n = 10;
  for (int j = 0; j < n; ++j) m.add_col(rng.uniform(-1.0, 1.0), 0.0, 5.0);
  m.col(3).lb = m.col(3).ub = 2.0;  // a fixed var
  for (int i = 0; i < 6; ++i) {
    std::vector<Term> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.flip(0.4)) terms.push_back({j, rng.uniform(0.2, 1.0)});
    }
    if (terms.empty()) terms.push_back({i % n, 1.0});
    m.add_row_le(terms, rng.uniform(4.0, 12.0));
  }
  m.add_row_le({{5, 1.0}}, 2.0);  // singleton
  LpResult direct = solve_simplex(m);
  PresolveResult pr = presolve(m);
  ASSERT_FALSE(pr.infeasible);
  LpResult reduced = solve_simplex(pr.reduced);
  ASSERT_EQ(direct.status, LpStatus::Optimal);
  ASSERT_EQ(reduced.status, LpStatus::Optimal);
  // Same objective once the fixed column's cost contribution is added back.
  Vector full = pr.postsolve(std::span<const double>(reduced.x.data(), pr.reduced.num_cols()));
  EXPECT_NEAR(m.objective_value(full), direct.objective, 1e-6);
}

// ---------- scaling ----------

TEST(Scaling, ReducesSpreadAndPreservesOptimum) {
  LpModel m;
  m.set_sense(Sense::Maximize);
  const int x = m.add_col(3.0), y = m.add_col(5.0);
  m.add_row_le({{x, 1e-3}}, 4e-3);
  m.add_row_le({{y, 2e3}}, 12e3);
  m.add_row_le({{x, 3.0}, {y, 2.0}}, 18.0);
  const double spread_before = coefficient_spread(m);
  ScalingResult sr = geometric_scaling(m);
  EXPECT_LT(coefficient_spread(sr.scaled), spread_before);
  const StandardForm form_scaled = build_standard_form(sr.scaled);
  LpResult r = SimplexSolver(form_scaled).solve_default();
  ASSERT_EQ(r.status, LpStatus::Optimal);
  Vector orig = sr.unscale_solution(std::span<const double>(r.x.data(), 2));
  EXPECT_NEAR(orig[0], 2.0, 1e-7);
  EXPECT_NEAR(orig[1], 6.0, 1e-7);
}

// ---------- path chooser ----------

TEST(PathChooser, RoutesByDensityAndSize) {
  Rng rng(505);
  // Small matrix: always dense regardless of sparsity.
  std::vector<sparse::Triplet> t;
  for (int i = 0; i < 20; ++i) t.push_back({i, i, 1.0});
  EXPECT_EQ(choose_path(sparse::csr_from_triplets(20, 20, t)), CodePath::DenseGpu);
  // Large sparse: sparse path.
  t.clear();
  for (int i = 0; i < 300; ++i) t.push_back({i, i, 1.0});
  EXPECT_EQ(choose_path(sparse::csr_from_triplets(300, 300, t)), CodePath::SparseHybrid);
  // Large dense: dense path.
  t.clear();
  for (int i = 0; i < 300; ++i) {
    for (int j = 0; j < 300; j += 3) t.push_back({i, j, 1.0});
  }
  EXPECT_EQ(choose_path(sparse::csr_from_triplets(300, 300, t)), CodePath::DenseGpu);
}

// ---------- standard form ----------

TEST(StandardForm, ShapesAndSlacks) {
  LpModel m;
  const int x = m.add_col(1.0);
  m.add_row_le({{x, 1.0}}, 5.0);
  m.add_row_ge({{x, 1.0}}, 1.0);
  m.add_row_eq({{x, 1.0}}, 3.0);
  m.add_row_range({{x, 1.0}}, 1.0, 4.0);
  const StandardForm form = build_standard_form(m);
  EXPECT_EQ(form.num_rows, 4);
  EXPECT_EQ(form.num_struct, 1);
  EXPECT_EQ(form.num_vars, 4);  // 1 struct + 3 slacks (equality has none)
  EXPECT_EQ(form.slack_of_row[2], -1);
  // Ranged slack has range ub - lb = 3.
  const int s3 = form.slack_of_row[3];
  EXPECT_NEAR(form.ub[static_cast<std::size_t>(s3)] - form.lb[static_cast<std::size_t>(s3)], 3.0,
              1e-12);
}

TEST(StandardForm, MaximizationNegatesObjective) {
  LpModel m;
  m.set_sense(Sense::Maximize);
  m.add_col(7.0);
  const StandardForm form = build_standard_form(m);
  EXPECT_DOUBLE_EQ(form.c[0], -7.0);
  EXPECT_DOUBLE_EQ(form.user_objective(-14.0), 14.0);
}

}  // namespace
}  // namespace gpumip::lp
